// Root-level benchmarks: one testing.B benchmark per table and figure of
// the paper's evaluation, over representative dataset analogs. The full
// 12-dataset sweeps live in cmd/qbs-bench; these benchmarks are the
// quick-turnaround versions wired into `go test -bench=.`.
//
// Mapping (see DESIGN.md §5 for the complete per-experiment index):
//
//	Table 1  -> BenchmarkTable1Stats
//	Table 2  -> BenchmarkTable2Build*, BenchmarkTable2Query*
//	Table 3  -> BenchmarkTable3LabelSize
//	Figure 7 -> BenchmarkFig7DistanceDistribution
//	Figure 8 -> BenchmarkFig8PairCoverage
//	Figure 9 -> BenchmarkFig9LabelSizeSweep
//	Figure 10-> BenchmarkFig10ConstructionSweep
//	Figure 11-> BenchmarkFig11QuerySweep
//	§6.5     -> BenchmarkAblationTraversal
//	§5.3     -> BenchmarkAblationParallelLabelling
//	§8       -> BenchmarkAblationLandmarkStrategies
package qbs_test

import (
	"sync"
	"testing"

	"qbs"
	"qbs/internal/bfs"
	"qbs/internal/core"
	"qbs/internal/datasets"
	"qbs/internal/dcore"
	"qbs/internal/graph"
	"qbs/internal/ppl"
	"qbs/internal/workload"
)

// benchScale keeps `go test -bench=.` fast while preserving the
// structural contrasts; cmd/qbs-bench raises it for full runs.
const benchScale = 0.08

// benchKeys are the representative analogs: a sparse social graph with
// hubs (DO), a hub-extreme one (YT) and the flat-degree one (FR).
var benchKeys = []string{"DO", "YT", "FR"}

var (
	benchGraphsOnce sync.Once
	benchGraphs     map[string]*graph.Graph
	benchIndexes    map[string]*core.Index
	benchPairs      map[string][]workload.Pair
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchGraphsOnce.Do(func() {
		benchGraphs = map[string]*graph.Graph{}
		benchIndexes = map[string]*core.Index{}
		benchPairs = map[string][]workload.Pair{}
		for _, key := range benchKeys {
			spec, err := datasets.ByKey(key)
			if err != nil {
				panic(err)
			}
			g := spec.Generate(benchScale)
			benchGraphs[key] = g
			benchIndexes[key] = core.MustBuild(g, core.Options{NumLandmarks: 20})
			benchPairs[key] = workload.SamplePairs(g, 256, 2021)
		}
	})
}

// --- Table 1 ---

func BenchmarkTable1Stats(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		g := benchGraphs[key]
		b.Run(key, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := graph.ComputeStats(g)
				if st.NumVertices == 0 {
					b.Fatal("empty stats")
				}
			}
		})
	}
}

// --- Table 2: construction ---

func BenchmarkTable2BuildQbSP(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		g := benchGraphs[key]
		b.Run(key, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.MustBuild(g, core.Options{NumLandmarks: 20})
			}
		})
	}
}

func BenchmarkTable2BuildQbSSequential(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		g := benchGraphs[key]
		b.Run(key, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustBuild(g, core.Options{NumLandmarks: 20, Parallelism: 1})
			}
		})
	}
}

func BenchmarkTable2BuildPPL(b *testing.B) {
	benchSetup(b)
	// PPL is the paper's scalability wall; bench only the smallest analog.
	g := benchGraphs["DO"]
	b.Run("DO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ppl.MustBuild(g, ppl.Options{})
		}
	})
}

func BenchmarkTable2BuildParentPPL(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["DO"]
	b.Run("DO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ppl.MustBuild(g, ppl.Options{WithParents: true})
		}
	})
}

// --- Table 2: query time ---

func BenchmarkTable2QueryQbS(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		ix, pairs := benchIndexes[key], benchPairs[key]
		b.Run(key, func(b *testing.B) {
			sr := core.NewSearcher(ix)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				sr.Query(p.U, p.V)
			}
		})
	}
}

func BenchmarkTable2QueryPPL(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["DO"]
	ix := ppl.MustBuild(g, ppl.Options{})
	pairs := benchPairs["DO"]
	b.Run("DO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			ix.Query(p.U, p.V)
		}
	})
}

func BenchmarkTable2QueryParentPPL(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["DO"]
	ix := ppl.MustBuild(g, ppl.Options{WithParents: true})
	pairs := benchPairs["DO"]
	b.Run("DO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			ix.Query(p.U, p.V)
		}
	})
}

func BenchmarkTable2QueryBiBFS(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		g, pairs := benchGraphs[key], benchPairs[key]
		b.Run(key, func(b *testing.B) {
			searcher := bfs.NewBidirectional(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				searcher.Query(p.U, p.V)
			}
		})
	}
}

// --- Table 3 ---

func BenchmarkTable3LabelSize(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		g := benchGraphs[key]
		b.Run(key, func(b *testing.B) {
			var l, d int64
			for i := 0; i < b.N; i++ {
				ix := core.MustBuild(g, core.Options{NumLandmarks: 20})
				l, d = ix.SizeLabelsBytes(), ix.SizeDeltaBytes()
			}
			b.ReportMetric(float64(l), "size(L)_bytes")
			b.ReportMetric(float64(d), "size(Δ)_bytes")
		})
	}
}

// --- Figure 7 ---

func BenchmarkFig7DistanceDistribution(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		g, pairs := benchGraphs[key], benchPairs[key]
		b.Run(key, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				dd := workload.MeasureDistances(g, pairs)
				mean = dd.Mean
			}
			b.ReportMetric(mean, "mean_distance")
		})
	}
}

// --- Figure 8 ---

func BenchmarkFig8PairCoverage(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		ix, pairs := benchIndexes[key], benchPairs[key]
		b.Run(key, func(b *testing.B) {
			sr := core.NewSearcher(ix)
			var covered, total int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				_, st := sr.QueryWithStats(p.U, p.V)
				if st.Coverage != core.CoverageTrivial {
					total++
					if st.Coverage != core.CoverageNone {
						covered++
					}
				}
			}
			if total > 0 {
				b.ReportMetric(float64(covered)/float64(total), "pair_coverage")
			}
		})
	}
}

// --- Figure 9 ---

func BenchmarkFig9LabelSizeSweep(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["DO"]
	for _, r := range []int{20, 60, 100} {
		b.Run(sweepName(r), func(b *testing.B) {
			var size int64
			for i := 0; i < b.N; i++ {
				ix := core.MustBuild(g, core.Options{NumLandmarks: r})
				size = ix.SizeLabelsBytes() + ix.SizeDeltaBytes()
			}
			b.ReportMetric(float64(size), "index_bytes")
		})
	}
}

// --- Figure 10 ---

func BenchmarkFig10ConstructionSweep(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["DO"]
	for _, r := range []int{5, 20, 60, 100} {
		b.Run(sweepName(r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustBuild(g, core.Options{NumLandmarks: r})
			}
		})
	}
}

// --- Figure 11 ---

func BenchmarkFig11QuerySweep(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["DO"]
	pairs := benchPairs["DO"]
	for _, r := range []int{5, 20, 60, 100} {
		ix := core.MustBuild(g, core.Options{NumLandmarks: r})
		b.Run(sweepName(r), func(b *testing.B) {
			sr := core.NewSearcher(ix)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				sr.Query(p.U, p.V)
			}
		})
	}
}

// --- Ablations ---

func BenchmarkAblationTraversal(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		g, ix, pairs := benchGraphs[key], benchIndexes[key], benchPairs[key]
		b.Run(key, func(b *testing.B) {
			sr := core.NewSearcher(ix)
			bib := bfs.NewBidirectional(g)
			var qbsArcs, bibArcs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				_, st := sr.QueryWithStats(p.U, p.V)
				qbsArcs += st.ArcsScanned
				_, st2 := bib.Query(p.U, p.V)
				bibArcs += st2.ArcsScanned
			}
			if bibArcs > 0 {
				b.ReportMetric(100*(1-float64(qbsArcs)/float64(bibArcs)), "arc_reduction_%")
			}
		})
	}
}

func BenchmarkAblationParallelLabelling(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["YT"]
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(sweepName(threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustBuild(g, core.Options{NumLandmarks: 20, Parallelism: threads, SkipDelta: true})
			}
		})
	}
}

func BenchmarkAblationLandmarkStrategies(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["DO"]
	pairs := benchPairs["DO"]
	for _, s := range []qbs.Strategy{qbs.StrategyDegree, qbs.StrategyRandom, qbs.StrategyCoverage} {
		ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 20, Strategy: s, Seed: 7})
		b.Run(string(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				ix.Query(p.U, p.V)
			}
		})
	}
}

// --- memory-layout ablation (vertex relabeling for locality) ---

func BenchmarkAblationRelabel(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["YT"]
	variants := map[string]*graph.Graph{"original": g}
	byDeg, _, _ := graph.RelabelByDegree(g)
	variants["degree-ordered"] = byDeg
	byBFS, _, _ := graph.RelabelByBFS(g)
	variants["bfs-ordered"] = byBFS
	for _, name := range []string{"original", "degree-ordered", "bfs-ordered"} {
		vg := variants[name]
		ix := core.MustBuild(vg, core.Options{NumLandmarks: 20})
		pairs := workload.SamplePairs(vg, 256, 2021)
		b.Run(name, func(b *testing.B) {
			sr := core.NewSearcher(ix)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				sr.Query(p.U, p.V)
			}
		})
	}
}

// --- §2 directed extension ---

func BenchmarkDirectedQuery(b *testing.B) {
	g := graph.DirectedScaleFree(20000, 3, 2021)
	ix := dcore.MustBuild(g, dcore.Options{NumLandmarks: 20})
	pairs := newDeterministicPairs(g.NumVertices(), 256)
	sr := dcore.NewSearcher(ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sr.Query(p[0], p[1])
	}
}

func BenchmarkDirectedBiBFS(b *testing.B) {
	g := graph.DirectedScaleFree(20000, 3, 2021)
	searcher := bfs.NewDiBidirectional(g)
	r := newDeterministicPairs(g.NumVertices(), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := r[i%len(r)]
		searcher.Query(p[0], p[1])
	}
}

func newDeterministicPairs(n, count int) [][2]graph.V {
	out := make([][2]graph.V, count)
	state := uint64(0x9E3779B97F4A7C15)
	next := func() int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for i := range out {
		out[i] = [2]graph.V{graph.V(next()), graph.V(next())}
	}
	return out
}

func sweepName(r int) string {
	switch {
	case r < 10:
		return "R=00" + string(rune('0'+r))
	case r < 100:
		return "R=0" + itoa(r)
	default:
		return "R=" + itoa(r)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
