// Package qbs is a Go implementation of Query-by-Sketch (QbS), the
// shortest-path-graph query engine of
//
//	Ye Wang, Qing Wang, Henning Koehler, Yu Lin.
//	"Query-by-Sketch: Scaling Shortest Path Graph Queries on Very Large
//	Networks." SIGMOD 2021.
//
// A shortest path graph SPG(u, v) is the subgraph containing exactly all
// shortest paths between u and v. QbS answers such queries with three
// phases: an offline labelling built from a small set of landmarks, a
// per-query sketch computed from the labelling, and a sketch-guided
// bidirectional search on the landmark-sparsified graph.
//
// # Quick start
//
//	g := qbs.NewBuilder(5)
//	g.AddEdge(0, 1)
//	g.AddEdge(1, 2)
//	g.AddEdge(0, 3)
//	g.AddEdge(3, 2)
//	g.AddEdge(2, 4)
//	graph := g.MustBuild()
//
//	index, err := qbs.BuildIndex(graph, qbs.Options{NumLandmarks: 2})
//	if err != nil { ... }
//	spg := index.Query(0, 4)        // all shortest 0–4 paths
//	fmt.Println(spg.Dist, spg.Edges())
//
// Index queries are safe for concurrent use; the index itself is
// immutable after BuildIndex.
package qbs

import (
	"runtime"
	"sync"
	"sync/atomic"

	"qbs/internal/bfs"
	"qbs/internal/core"
	"qbs/internal/graph"
)

// Re-exported graph types. The library operates on immutable undirected
// unweighted graphs in CSR form with dense int32 vertex ids.
type (
	// V is a vertex identifier in [0, NumVertices).
	V = graph.V
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Graph is an immutable undirected graph.
	Graph = graph.Graph
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// SPG is a shortest path graph: the answer to a query.
	SPG = graph.SPG
)

// InfDist marks an infinite distance (disconnected pair).
const InfDist = graph.InfDist

// NewBuilder creates a graph builder over n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// LoadEdgeListFile reads a whitespace-separated edge list (SNAP/KONECT
// style, '#'/'%' comments), symmetrising directed inputs. It returns the
// graph and the original ids of the densified vertices.
func LoadEdgeListFile(path string) (*Graph, []int64, error) {
	return graph.ReadEdgeListFile(path)
}

// Strategy selects how landmarks are chosen.
type Strategy string

const (
	// StrategyDegree picks the highest-degree vertices (paper default).
	StrategyDegree Strategy = "degree"
	// StrategyRandom picks uniform random vertices.
	StrategyRandom Strategy = "random"
	// StrategyCoverage greedily maximises 2-hop neighbourhood coverage.
	StrategyCoverage Strategy = "coverage"
	// StrategyBetweenness ranks vertices by sampled shortest-path
	// betweenness (Brandes on a source sample).
	StrategyBetweenness Strategy = "betweenness"
)

func (s Strategy) fn() core.LandmarkStrategy {
	switch s {
	case StrategyRandom:
		return core.Random
	case StrategyCoverage:
		return core.ByCoverage
	case StrategyBetweenness:
		return core.ByApproxBetweenness
	default:
		return core.ByDegree
	}
}

// Options configures BuildIndex.
type Options struct {
	// NumLandmarks is |R| (default 20, the paper's setting).
	NumLandmarks int
	// Strategy selects landmarks (default StrategyDegree).
	Strategy Strategy
	// Landmarks overrides selection with an explicit set.
	Landmarks []V
	// Parallelism bounds labelling workers (0 = GOMAXPROCS; 1 =
	// sequential, the paper's QbS vs QbS-P distinction).
	Parallelism int
	// Seed feeds randomized strategies.
	Seed int64
}

// IndexStats reports construction cost and size accounting.
type IndexStats = core.BuildStats

// QueryStats reports per-query internals (distances, bound, coverage
// classification, traversal counters).
type QueryStats = core.QueryStats

// Sketch is the per-query summary structure (Definition 4.5).
type Sketch = core.Sketch

// Index is an immutable QbS index over a graph. All methods are safe for
// concurrent use.
type Index struct {
	core *core.Index
	pool sync.Pool
}

// BuildIndex constructs a QbS index: landmark selection, the labelling
// scheme of Algorithm 2 (parallel across landmarks), meta-graph APSP and
// the landmark-pair shortest path graphs Δ.
func BuildIndex(g *Graph, opts Options) (*Index, error) {
	cix, err := core.Build(g, core.Options{
		NumLandmarks: opts.NumLandmarks,
		Strategy:     opts.Strategy.fn(),
		Landmarks:    opts.Landmarks,
		Parallelism:  opts.Parallelism,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	ix := &Index{core: cix}
	ix.pool.New = func() any { return core.NewSearcher(cix) }
	return ix, nil
}

// MustBuildIndex is BuildIndex that panics on error.
func MustBuildIndex(g *Graph, opts Options) *Index {
	ix, err := BuildIndex(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}

// Query answers SPG(u, v): the subgraph of exactly all shortest u–v
// paths, with Dist set to d_G(u, v) (InfDist when disconnected).
func (ix *Index) Query(u, v V) *SPG {
	sr := ix.pool.Get().(*core.Searcher)
	defer ix.pool.Put(sr)
	return sr.Query(u, v)
}

// QueryWithStats answers SPG(u, v) and reports query internals.
func (ix *Index) QueryWithStats(u, v V) (*SPG, QueryStats) {
	sr := ix.pool.Get().(*core.Searcher)
	defer ix.pool.Put(sr)
	return sr.QueryWithStats(u, v)
}

// Distance returns d_G(u, v) using the sketch-guided search without path
// extraction.
func (ix *Index) Distance(u, v V) int32 {
	sr := ix.pool.Get().(*core.Searcher)
	defer ix.pool.Put(sr)
	return sr.Distance(u, v)
}

// Sketch computes the query sketch S_uv (for introspection; Query
// computes it internally).
func (ix *Index) Sketch(u, v V) *Sketch { return ix.core.Sketch(u, v) }

// Pair is one query pair for QueryBatch.
type Pair struct{ U, V V }

// QueryBatch answers many queries concurrently with up to parallelism
// workers (0 = GOMAXPROCS, capped at the batch size). Results align
// with the input slice. Each worker draws a searcher from the index's
// pool, so repeated batches reuse workspaces.
func (ix *Index) QueryBatch(pairs []Pair, parallelism int) []*SPG {
	out := make([]*SPG, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(pairs) {
		parallelism = len(pairs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := ix.pool.Get().(*core.Searcher)
			defer ix.pool.Put(sr)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				out[i] = sr.Query(pairs[i].U, pairs[i].V)
			}
		}()
	}
	wg.Wait()
	return out
}

// Landmarks returns the landmark vertices in rank order.
func (ix *Index) Landmarks() []V { return ix.core.Landmarks() }

// IsLandmark reports whether v is a landmark.
func (ix *Index) IsLandmark(v V) bool { return ix.core.IsLandmark(v) }

// Stats returns construction statistics.
func (ix *Index) Stats() IndexStats { return ix.core.Stats() }

// SizeLabelsBytes is the paper's size(L) accounting: |R| bytes/vertex.
func (ix *Index) SizeLabelsBytes() int64 { return ix.core.SizeLabelsBytes() }

// SizeDeltaBytes is the paper's size(Δ): 8 bytes per precomputed
// landmark-pair shortest-path edge.
func (ix *Index) SizeDeltaBytes() int64 { return ix.core.SizeDeltaBytes() }

// Graph returns the indexed graph.
func (ix *Index) Graph() *Graph { return ix.core.Graph() }

// Coverage classification constants for QueryStats.Coverage (Figure 8).
const (
	CoverageNone    = core.CoverageNone
	CoverageSome    = core.CoverageSome
	CoverageAll     = core.CoverageAll
	CoverageTrivial = core.CoverageTrivial
)

// SaveFile writes the index to disk. The graph is not embedded; LoadIndexFile
// must be given the same graph.
func (ix *Index) SaveFile(path string) error { return ix.core.SaveFile(path) }

// LoadIndexFile reads an index previously saved with SaveFile, binding it
// to g (validated against the vertex and arc counts recorded at save
// time).
func LoadIndexFile(g *Graph, path string) (*Index, error) {
	cix, err := core.LoadFile(g, path)
	if err != nil {
		return nil, err
	}
	ix := &Index{core: cix}
	ix.pool.New = func() any { return core.NewSearcher(cix) }
	return ix, nil
}

// BiBFS answers SPG(u, v) by plain bidirectional BFS over the full graph
// — the paper's search-based baseline, requiring no index. For repeated
// queries prefer an Index; for one-off queries BiBFS avoids construction
// cost entirely.
func BiBFS(g *Graph, u, v V) *SPG { return bfs.BiBFS(g, u, v) }

// OracleSPG computes SPG(u, v) by two full BFS sweeps — the simple
// reference implementation (slow, allocation-heavy; used for testing and
// verification).
func OracleSPG(g *Graph, u, v V) *SPG { return bfs.OracleSPG(g, u, v) }
