// Package qbs is a Go implementation of Query-by-Sketch (QbS), the
// shortest-path-graph query engine of
//
//	Ye Wang, Qing Wang, Henning Koehler, Yu Lin.
//	"Query-by-Sketch: Scaling Shortest Path Graph Queries on Very Large
//	Networks." SIGMOD 2021.
//
// A shortest path graph SPG(u, v) is the subgraph containing exactly all
// shortest paths between u and v. QbS answers such queries with three
// phases: an offline labelling built from a small set of landmarks, a
// per-query sketch computed from the labelling, and a sketch-guided
// bidirectional search on the landmark-sparsified graph.
//
// # Quick start
//
//	g := qbs.NewBuilder(5)
//	g.AddEdge(0, 1)
//	g.AddEdge(1, 2)
//	g.AddEdge(0, 3)
//	g.AddEdge(3, 2)
//	g.AddEdge(2, 4)
//	graph := g.MustBuild()
//
//	index, err := qbs.BuildIndex(graph, qbs.Options{NumLandmarks: 2})
//	if err != nil { ... }
//	spg := index.Query(0, 4)        // all shortest 0–4 paths
//	fmt.Println(spg.Dist, spg.Edges())
//
// Index queries are safe for concurrent use; the index itself is
// immutable after BuildIndex.
package qbs

import (
	"context"
	"errors"
	"sync"

	"qbs/internal/bfs"
	"qbs/internal/core"
	"qbs/internal/dynamic"
	"qbs/internal/graph"
	"qbs/internal/obs"
	"qbs/internal/store"
)

// Re-exported graph types. The library operates on immutable undirected
// unweighted graphs in CSR form with dense int32 vertex ids.
type (
	// V is a vertex identifier in [0, NumVertices).
	V = graph.V
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Graph is an immutable undirected graph.
	Graph = graph.Graph
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// SPG is a shortest path graph: the answer to a query.
	SPG = graph.SPG
)

// InfDist marks an infinite distance (disconnected pair).
const InfDist = graph.InfDist

// NewBuilder creates a graph builder over n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// LoadEdgeListFile reads a whitespace-separated edge list (SNAP/KONECT
// style, '#'/'%' comments), symmetrising directed inputs. It returns the
// graph and the original ids of the densified vertices.
func LoadEdgeListFile(path string) (*Graph, []int64, error) {
	return graph.ReadEdgeListFile(path)
}

// Strategy selects how landmarks are chosen.
type Strategy string

const (
	// StrategyDegree picks the highest-degree vertices (paper default).
	StrategyDegree Strategy = "degree"
	// StrategyRandom picks uniform random vertices.
	StrategyRandom Strategy = "random"
	// StrategyCoverage greedily maximises 2-hop neighbourhood coverage.
	StrategyCoverage Strategy = "coverage"
	// StrategyBetweenness ranks vertices by sampled shortest-path
	// betweenness (Brandes on a source sample).
	StrategyBetweenness Strategy = "betweenness"
)

func (s Strategy) fn() core.LandmarkStrategy {
	switch s {
	case StrategyRandom:
		return core.Random
	case StrategyCoverage:
		return core.ByCoverage
	case StrategyBetweenness:
		return core.ByApproxBetweenness
	default:
		return core.ByDegree
	}
}

// Options configures BuildIndex.
type Options struct {
	// NumLandmarks is |R| (default 20, the paper's setting).
	NumLandmarks int
	// Strategy selects landmarks (default StrategyDegree).
	Strategy Strategy
	// Landmarks overrides selection with an explicit set.
	Landmarks []V
	// Parallelism bounds labelling workers (0 = GOMAXPROCS; 1 =
	// sequential, the paper's QbS vs QbS-P distinction).
	Parallelism int
	// Seed feeds randomized strategies.
	Seed int64
}

// IndexStats reports construction cost and size accounting.
type IndexStats = core.BuildStats

// QueryStats reports per-query internals (distances, bound, coverage
// classification, traversal counters).
type QueryStats = core.QueryStats

// Sketch is the per-query summary structure (Definition 4.5).
type Sketch = core.Sketch

// Index is an immutable QbS index over a graph. All methods are safe for
// concurrent use.
type Index struct {
	core *core.Index
	pool sync.Pool
}

// BuildIndex constructs a QbS index: landmark selection, the labelling
// scheme of Algorithm 2 (parallel across landmarks), meta-graph APSP and
// the landmark-pair shortest path graphs Δ.
func BuildIndex(g *Graph, opts Options) (*Index, error) {
	cix, err := core.Build(g, core.Options{
		NumLandmarks: opts.NumLandmarks,
		Strategy:     opts.Strategy.fn(),
		Landmarks:    opts.Landmarks,
		Parallelism:  opts.Parallelism,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	ix := &Index{core: cix}
	ix.pool.New = func() any { return core.NewSearcher(cix) }
	return ix, nil
}

// MustBuildIndex is BuildIndex that panics on error.
func MustBuildIndex(g *Graph, opts Options) *Index {
	ix, err := BuildIndex(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}

// Query answers SPG(u, v): the subgraph of exactly all shortest u–v
// paths, with Dist set to d_G(u, v) (InfDist when disconnected).
func (ix *Index) Query(u, v V) *SPG {
	sr := ix.pool.Get().(*core.Searcher)
	defer ix.pool.Put(sr)
	return sr.Query(u, v)
}

// QueryInto answers SPG(u, v) into a caller-owned result, resetting it
// first, and returns dst. Reusing one SPG across queries keeps the warm
// query path free of heap allocations (the result buffer is recycled at
// its high-water mark); serving loops that answer-and-encode should
// prefer it over Query.
//
//qbs:zeroalloc
func (ix *Index) QueryInto(dst *SPG, u, v V) *SPG {
	sr := ix.pool.Get().(*core.Searcher)
	defer ix.pool.Put(sr)
	sr.QueryInto(dst, u, v)
	return dst
}

// QueryWithStats answers SPG(u, v) and reports query internals.
func (ix *Index) QueryWithStats(u, v V) (*SPG, QueryStats) {
	sr := ix.pool.Get().(*core.Searcher)
	defer ix.pool.Put(sr)
	return sr.QueryWithStats(u, v)
}

// Distance returns d_G(u, v) using the sketch-guided search without path
// extraction.
func (ix *Index) Distance(u, v V) int32 {
	sr := ix.pool.Get().(*core.Searcher)
	defer ix.pool.Put(sr)
	return sr.Distance(u, v)
}

// Sketch computes the query sketch S_uv (for introspection; Query
// computes it internally).
func (ix *Index) Sketch(u, v V) *Sketch { return ix.core.Sketch(u, v) }

// Pair is one query pair for QueryBatch.
type Pair struct{ U, V V }

// QueryBatch answers many queries concurrently with up to parallelism
// workers (0 = GOMAXPROCS, capped at the batch size). Results align
// with the input slice. Each worker draws a searcher from the index's
// pool and answers into per-chunk result arenas, so repeated batches
// reuse workspaces and steady-state queries stay off the allocator.
//
// A query that panics (e.g. an out-of-range vertex id) does not bring
// the batch down: its slot is left nil and all remaining results are
// returned.
func (ix *Index) QueryBatch(pairs []Pair, parallelism int) []*SPG {
	out := make([]*SPG, len(pairs))
	core.QueryBatchInto(out, parallelism,
		func(i int) (V, V) { return pairs[i].U, pairs[i].V },
		func() *core.Searcher { return ix.pool.Get().(*core.Searcher) },
		func(sr *core.Searcher) { ix.pool.Put(sr) })
	return out
}

// Landmarks returns the landmark vertices in rank order.
func (ix *Index) Landmarks() []V { return ix.core.Landmarks() }

// IsLandmark reports whether v is a landmark.
func (ix *Index) IsLandmark(v V) bool { return ix.core.IsLandmark(v) }

// Stats returns construction statistics.
func (ix *Index) Stats() IndexStats { return ix.core.Stats() }

// SizeLabelsBytes is the paper's size(L) accounting: |R| bytes/vertex.
func (ix *Index) SizeLabelsBytes() int64 { return ix.core.SizeLabelsBytes() }

// SizeDeltaBytes is the paper's size(Δ): 8 bytes per precomputed
// landmark-pair shortest-path edge.
func (ix *Index) SizeDeltaBytes() int64 { return ix.core.SizeDeltaBytes() }

// Graph returns the indexed graph.
func (ix *Index) Graph() *Graph { return ix.core.Graph() }

// Coverage classification constants for QueryStats.Coverage (Figure 8).
const (
	CoverageNone    = core.CoverageNone
	CoverageSome    = core.CoverageSome
	CoverageAll     = core.CoverageAll
	CoverageTrivial = core.CoverageTrivial
)

// SaveFile writes the index to disk. The graph is not embedded; LoadIndexFile
// must be given the same graph.
func (ix *Index) SaveFile(path string) error { return ix.core.SaveFile(path) }

// LoadIndexFile reads an index previously saved with SaveFile, binding it
// to g (validated against the vertex and arc counts recorded at save
// time).
func LoadIndexFile(g *Graph, path string) (*Index, error) {
	cix, err := core.LoadFile(g, path)
	if err != nil {
		return nil, err
	}
	ix := &Index{core: cix}
	ix.pool.New = func() any { return core.NewSearcher(cix) }
	return ix, nil
}

// ErrDiameterTooLarge is returned when a graph (or a graph update) would
// push some landmark distance beyond the 254-hop label representation
// limit.
var ErrDiameterTooLarge = core.ErrDiameterTooLarge

// DynamicOptions configures BuildDynamicIndex.
type DynamicOptions struct {
	// Index carries the landmark selection settings (NumLandmarks,
	// Strategy, Landmarks, Seed) plus Parallelism, which sets the
	// traverse pool width for the initial build, compaction rebuilds and
	// budget-blown column re-BFSes (incremental repairs stay sequential).
	Index Options
	// RepairBudget caps the affected-vertex set of a deletion repair
	// before falling back to a full single-landmark re-BFS (0 = auto).
	RepairBudget int
	// CompactFraction sets the overlay-drift fraction that triggers an
	// asynchronous compaction rebuild (0 = default 0.25, negative =
	// disabled). See DynamicIndex.Compact.
	CompactFraction float64
}

// DynamicStats reports dynamic-index maintenance counters.
type DynamicStats = dynamic.Stats

// DynamicIndex is a QbS index over a mutable graph: AddEdge and
// RemoveEdge repair the landmark labelling incrementally instead of
// rebuilding, and publish a new immutable snapshot per update. Queries
// are lock-free — they resolve the snapshot current at call time and
// never block on writers — so the read hot path matches the immutable
// Index. Writers are serialised internally; all methods are safe for
// concurrent use.
//
// The vertex set is fixed at construction; only edges change. Updates
// that would make some vertex sit more than 254 hops from a landmark are
// rejected with ErrDiameterTooLarge (the labelling stores one distance
// byte per landmark), leaving the index unchanged.
type DynamicIndex struct {
	d  *dynamic.Index
	st *store.Store // non-nil when the index is backed by a durable store
}

// BuildDynamicIndex constructs a live-mutable QbS index over the current
// edges of g. Construction costs the same as BuildIndex; subsequent
// updates cost orders of magnitude less than a rebuild.
func BuildDynamicIndex(g *Graph, opts DynamicOptions) (*DynamicIndex, error) {
	d, err := dynamic.New(g, selectLandmarks(g, opts.Index), dynamic.Options{
		RepairBudget:    opts.RepairBudget,
		CompactFraction: opts.CompactFraction,
		Parallelism:     opts.Index.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{d: d}, nil
}

// selectLandmarks resolves the landmark set from Options (an explicit
// set, or the configured strategy over the clamped count).
func selectLandmarks(g *Graph, opts Options) []V {
	if opts.Landmarks != nil {
		return opts.Landmarks
	}
	k := core.ClampLandmarks(opts.NumLandmarks, g.NumVertices())
	return opts.Strategy.fn()(g, k, opts.Seed)
}

// UpdateResult reports the outcome of one edge update: whether the
// graph changed, plus the epoch and edge count the write published
// (captured atomically with the write, so concurrent writers cannot
// skew them).
type UpdateResult = dynamic.Result

// AddEdge inserts the undirected edge {u, v} and incrementally repairs
// the index. It reports whether the graph changed (false when the edge
// already exists).
func (di *DynamicIndex) AddEdge(u, v V) (bool, error) { return di.d.AddEdge(u, v) }

// ApplyEdge inserts (insert=true) or removes the undirected edge {u, v}
// and returns the published epoch and edge count along with whether the
// graph changed — for callers that echo snapshot coordinates back to
// clients.
func (di *DynamicIndex) ApplyEdge(u, v V, insert bool) (UpdateResult, error) {
	return di.d.ApplyEdge(u, v, insert)
}

// ApplyEdgeCtx is ApplyEdge wired into the request's trace: when ctx
// carries an obs.Trace with an active span buffer, the WAL append and
// any budget-blown column re-BFSes are recorded as child spans of the
// request. Behaviour is otherwise identical to ApplyEdge.
func (di *DynamicIndex) ApplyEdgeCtx(ctx context.Context, u, v V, insert bool) (UpdateResult, error) {
	var tb *obs.TraceBuf
	if tr := obs.FromContext(ctx); tr != nil {
		tb = tr.Spans
	}
	return di.d.ApplyEdgeTraced(u, v, insert, tb)
}

// RemoveEdge deletes the undirected edge {u, v} and incrementally
// repairs the index. It reports whether the graph changed (false when
// the edge does not exist).
func (di *DynamicIndex) RemoveEdge(u, v V) (bool, error) { return di.d.RemoveEdge(u, v) }

// Query answers SPG(u, v) against the current snapshot.
func (di *DynamicIndex) Query(u, v V) *SPG { return di.d.Query(u, v) }

// QueryInto answers SPG(u, v) against the current snapshot into a
// caller-owned result; see Index.QueryInto for the reuse contract.
//
//qbs:zeroalloc
func (di *DynamicIndex) QueryInto(dst *SPG, u, v V) *SPG { return di.d.QueryInto(dst, u, v) }

// QueryWithStats answers SPG(u, v) with query internals.
func (di *DynamicIndex) QueryWithStats(u, v V) (*SPG, QueryStats) {
	return di.d.QueryWithStats(u, v)
}

// Distance returns d_G(u, v) on the current snapshot.
func (di *DynamicIndex) Distance(u, v V) int32 { return di.d.Distance(u, v) }

// Sketch computes the query sketch on the current snapshot.
func (di *DynamicIndex) Sketch(u, v V) *Sketch { return di.d.Sketch(u, v) }

// QueryBatch answers many queries concurrently against one consistent
// snapshot: every answer reflects the same epoch even if writers land
// updates mid-batch. parallelism 0 means GOMAXPROCS.
func (di *DynamicIndex) QueryBatch(pairs []Pair, parallelism int) []*SPG {
	ps := make([][2]V, len(pairs))
	for i, p := range pairs {
		ps[i] = [2]V{p.U, p.V}
	}
	return di.d.QueryBatch(ps, parallelism)
}

// Epoch returns the current snapshot number. It advances by one per
// applied update (and per compaction), so clients can detect staleness.
func (di *DynamicIndex) Epoch() uint64 { return di.d.Epoch() }

// EpochEdges returns the current epoch and edge count as one consistent
// pair (resolved from a single snapshot).
func (di *DynamicIndex) EpochEdges() (uint64, int) { return di.d.EpochEdges() }

// NumVertices returns |V| (fixed at construction).
func (di *DynamicIndex) NumVertices() int { return di.d.NumVertices() }

// NumEdges returns the current undirected edge count.
func (di *DynamicIndex) NumEdges() int { return di.d.NumEdges() }

// HasEdge reports whether {u, v} exists in the current snapshot.
func (di *DynamicIndex) HasEdge(u, v V) bool { return di.d.HasEdge(u, v) }

// Landmarks returns the landmark set, fixed for the index's lifetime.
func (di *DynamicIndex) Landmarks() []V { return di.d.Landmarks() }

// DynamicStats returns maintenance counters (repairs, fallbacks,
// compactions, overlay pressure).
func (di *DynamicIndex) DynamicStats() DynamicStats { return di.d.Stats() }

// SizeLabelsBytes is the paper's size(L) accounting for the current
// snapshot.
func (di *DynamicIndex) SizeLabelsBytes() int64 { return di.d.CurrentIndex().SizeLabelsBytes() }

// SizeDeltaBytes is the paper's size(Δ) accounting for the current
// snapshot.
func (di *DynamicIndex) SizeDeltaBytes() int64 { return di.d.CurrentIndex().SizeDeltaBytes() }

// Compact synchronously rebuilds the CSR base and labelling from the
// current graph, resetting overlay drift. Compaction also happens
// automatically (and asynchronously, off the write path) once the
// overlay covers more than DynamicOptions.CompactFraction of vertices.
func (di *DynamicIndex) Compact() error { return di.d.Compact() }

// WaitCompaction blocks until any in-flight asynchronous compaction has
// finished.
func (di *DynamicIndex) WaitCompaction() { di.d.WaitCompaction() }

// StoreOptions configures the durable store behind CreateStore and
// OpenStore.
type StoreOptions struct {
	// Index carries the landmark selection settings used by CreateStore
	// (NumLandmarks, Strategy, Landmarks, Seed); OpenStore ignores it —
	// the landmark set is part of the persisted snapshot.
	Index Options
	// RepairBudget and CompactFraction tune the dynamic index exactly as
	// in DynamicOptions.
	RepairBudget    int
	CompactFraction float64
	// SyncEvery batches write-ahead-log fsyncs: the log is synced after
	// this many updates (and always at checkpoint and Close). <= 1 syncs
	// every update — full durability, the default; larger values trade
	// the last few updates on power loss for write throughput. (A plain
	// process crash loses nothing either way: the OS still holds the
	// written log tail.)
	SyncEvery int
	// SegmentBytes rotates WAL segments past this size (0 = 64 MiB).
	SegmentBytes int64
	// ReadOnly opens the store without attaching the log: queries only,
	// no Checkpoint, and the data directory is left untouched.
	ReadOnly bool
	// MMap maps the snapshot read-only instead of reading it into memory
	// — the fastest open path; the mapping lives until process exit.
	MMap bool
}

func (o StoreOptions) storeOptions() store.Options {
	return store.Options{
		Dynamic: dynamic.Options{
			RepairBudget:    o.RepairBudget,
			CompactFraction: o.CompactFraction,
			Parallelism:     o.Index.Parallelism,
		},
		SyncEvery:    o.SyncEvery,
		SegmentBytes: o.SegmentBytes,
		ReadOnly:     o.ReadOnly,
		MMap:         o.MMap,
	}
}

// CreateStore builds a dynamic index over g (costing one BuildIndex)
// and initialises dir as its durable home: the freshly built state is
// written as a snapshot and every subsequent update is logged to a
// write-ahead log before it is acknowledged, so the index survives any
// crash. dir must not already contain a store.
func CreateStore(dir string, g *Graph, opts StoreOptions) (*DynamicIndex, error) {
	d, err := dynamic.New(g, selectLandmarks(g, opts.Index), dynamic.Options{
		RepairBudget:    opts.RepairBudget,
		CompactFraction: opts.CompactFraction,
		Parallelism:     opts.Index.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	st, err := store.Create(dir, d, opts.storeOptions())
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{d: d, st: st}, nil
}

// OpenStore recovers the index persisted in dir: the newest valid
// snapshot is loaded without recomputation (labels, distances, the
// graph and Δ are adopted zero-copy from the file arena) and any logged
// updates beyond it are replayed through the incremental repair path.
// The recovered index is bit-identical to the pre-crash one — including
// its epoch — and, unless opts.ReadOnly, continues logging new updates.
// Opening is typically orders of magnitude faster than rebuilding.
func OpenStore(dir string, opts StoreOptions) (*DynamicIndex, error) {
	st, err := store.Open(dir, opts.storeOptions())
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{d: st.Index(), st: st}, nil
}

// StoreExists reports whether dir already contains a durable store.
func StoreExists(dir string) bool { return store.Exists(dir) }

// Durable reports whether the index is backed by a durable store (built
// by CreateStore/OpenStore rather than BuildDynamicIndex).
func (di *DynamicIndex) Durable() bool { return di.st != nil }

// Checkpoint persists the current state as a new snapshot, points the
// store at it and prunes write-ahead-log segments the snapshot covers.
// Writers are not blocked: updates landing during the snapshot write
// simply stay in the log. It returns the epoch persisted, and an error
// on a non-durable or read-only index.
func (di *DynamicIndex) Checkpoint() (uint64, error) {
	if di.st == nil {
		return 0, errNotDurable
	}
	return di.st.Checkpoint()
}

// Close flushes and detaches the durable store (waiting out any
// background compaction first). The index remains usable in memory;
// further updates are no longer logged. Close on a non-durable index is
// a no-op.
func (di *DynamicIndex) Close() error {
	if di.st == nil {
		return nil
	}
	di.d.WaitCompaction()
	return di.st.Close()
}

var errNotDurable = errors.New("qbs: index has no durable store (use CreateStore/OpenStore)")

// Store exposes the durable store backing the index (nil when the index
// was built with BuildDynamicIndex). It is the replication seam: the
// primary side of internal/replica serves the store's newest snapshot
// and write-ahead-log tail to read replicas. The store package is
// internal, so only this module's packages can act on the result.
func (di *DynamicIndex) Store() *store.Store { return di.st }

// AdoptDynamic wraps an internally restored dynamic index in the public
// serving surface — the read-replica shape: internal/replica bootstraps
// an index from a shipped snapshot, keeps it fresh through the replay
// seam, and serves it through a DynamicIndex with no durable store
// attached. The dynamic package is internal, so only this module's
// packages can construct the argument.
func AdoptDynamic(d *dynamic.Index) *DynamicIndex { return &DynamicIndex{d: d} }

// BiBFS answers SPG(u, v) by plain bidirectional BFS over the full graph
// — the paper's search-based baseline, requiring no index. For repeated
// queries prefer an Index; for one-off queries BiBFS avoids construction
// cost entirely.
func BiBFS(g *Graph, u, v V) *SPG { return bfs.BiBFS(g, u, v) }

// OracleSPG computes SPG(u, v) by two full BFS sweeps — the simple
// reference implementation (slow, allocation-heavy; used for testing and
// verification).
func OracleSPG(g *Graph, u, v V) *SPG { return bfs.OracleSPG(g, u, v) }
