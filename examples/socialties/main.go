// Social tie strength (paper §1, Figure 1): two pairs of users at the
// same distance can be connected very differently — one narrow chain of
// acquaintances versus a thick braid of independent routes. The shortest
// path graph distinguishes them where a point-to-point shortest path
// cannot.
//
// This example scores sampled pairs of a social-network analog by
// "connection redundancy" (the number of distinct shortest paths), then
// reports the strongest and weakest ties among equal-distance pairs and
// the pairs brokered by a single intermediary (the Shortest Path Common
// Links problem).
//
// Run with:
//
//	go run ./examples/socialties
package main

import (
	"fmt"
	"sort"

	"qbs"
	"qbs/internal/analysis"
	"qbs/internal/datasets"
	"qbs/internal/workload"
)

type tie struct {
	pair   workload.Pair
	dist   int32
	paths  int64
	edges  int
	common []qbs.V // vertices on every shortest path (the "common links")
}

func main() {
	spec, err := datasets.ByKey("LJ")
	if err != nil {
		panic(err)
	}
	g := spec.Generate(0.03)
	fmt.Printf("social network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	index, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: 20})
	if err != nil {
		panic(err)
	}

	var ties []tie
	for _, p := range workload.SamplePairs(g, 400, 23) {
		spg := index.Query(p.U, p.V)
		if spg.Dist == qbs.InfDist || spg.Dist < 2 {
			continue
		}
		dag := analysis.BuildDAG(spg, func(x qbs.V) int32 { return index.Distance(p.U, x) })
		if dag == nil {
			continue
		}
		numPaths, _ := dag.CountPaths()
		ties = append(ties, tie{
			pair:   p,
			dist:   spg.Dist,
			paths:  numPaths,
			edges:  spg.NumEdges(),
			common: dag.CommonLinks(),
		})
	}

	// Group by distance and contrast strongest vs weakest ties.
	byDist := map[int32][]tie{}
	for _, t := range ties {
		byDist[t.dist] = append(byDist[t.dist], t)
	}
	var dists []int32
	for d := range byDist {
		dists = append(dists, d)
	}
	sort.Slice(dists, func(i, j int) bool { return dists[i] < dists[j] })

	fmt.Printf("\n%-8s %-8s %-22s %-22s\n", "distance", "pairs", "weakest tie (paths)", "strongest tie (paths)")
	for _, d := range dists {
		group := byDist[d]
		sort.Slice(group, func(i, j int) bool { return group[i].paths < group[j].paths })
		lo, hi := group[0], group[len(group)-1]
		fmt.Printf("%-8d %-8d (%d,%d): %-12d (%d,%d): %d\n",
			d, len(group), lo.pair.U, lo.pair.V, lo.paths, hi.pair.U, hi.pair.V, hi.paths)
	}

	// Shortest Path Common Links: pairs whose every shortest path shares
	// an intermediary — the broker users.
	fmt.Printf("\npairs brokered by a shared intermediary (common links):\n")
	count := 0
	for _, t := range ties {
		if len(t.common) > 0 && t.paths > 1 {
			fmt.Printf("  (%d,%d) dist=%d paths=%d brokers=%v\n",
				t.pair.U, t.pair.V, t.dist, t.paths, t.common)
			count++
			if count == 8 {
				break
			}
		}
	}
	if count == 0 {
		fmt.Println("  none in this sample — every multi-path pair has disjoint routes")
	}
}
