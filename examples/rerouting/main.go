// Shortest Path Rerouting (paper §1): given two shortest paths between
// the same endpoints, find a *rerouting sequence* — a chain of shortest
// paths each differing from the previous in exactly one vertex — or
// report that none exists. This reconfiguration problem models changing
// a network route without ever leaving the optimum.
//
// The shortest path graph is the natural search space: every path of the
// sequence is a path of SPG(u, v), so the rerouting search never touches
// the rest of the graph.
//
// Run with:
//
//	go run ./examples/rerouting
package main

import (
	"fmt"
	"strings"

	"qbs"
	"qbs/internal/analysis"
	"qbs/internal/datasets"
	"qbs/internal/workload"
)

func main() {
	spec, err := datasets.ByKey("DB")
	if err != nil {
		panic(err)
	}
	g := spec.Generate(0.05)
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	index, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: 20})
	if err != nil {
		panic(err)
	}

	// Scan pairs with several shortest paths; report the first pair with
	// a rerouting sequence and the first without one (both outcomes are
	// legitimate answers to the reconfiguration problem).
	var shownSeq, shownStuck bool
	for _, p := range workload.SamplePairs(g, 2000, 11) {
		if shownSeq && shownStuck {
			break
		}
		spg := index.Query(p.U, p.V)
		if spg.Dist < 3 || spg.Dist == qbs.InfDist {
			continue
		}
		dag := analysis.BuildDAG(spg, func(x qbs.V) int32 { return index.Distance(p.U, x) })
		if dag == nil {
			continue
		}
		paths := dag.EnumeratePaths(64)
		if len(paths) < 3 {
			continue
		}
		from, to := paths[0], paths[len(paths)-1]
		seq := dag.Reroute(from, to, 64)
		switch {
		case seq != nil && !shownSeq:
			shownSeq = true
			fmt.Printf("\npair (%d,%d), distance %d, %d shortest paths (SPG: %d vertices, %d edges)\n",
				p.U, p.V, spg.Dist, len(paths), len(spg.Vertices()), spg.NumEdges())
			fmt.Printf("reroute from %s\n        to   %s\n", fmtPath(from), fmtPath(to))
			fmt.Printf("rerouting sequence (%d single-vertex swaps):\n", len(seq)-1)
			for i, q := range seq {
				fmt.Printf("  %2d: %s\n", i, fmtPath(q))
			}
		case seq == nil && !shownStuck:
			shownStuck = true
			fmt.Printf("\npair (%d,%d), distance %d, %d shortest paths: NO single-vertex-swap\n",
				p.U, p.V, spg.Dist, len(paths))
			fmt.Printf("  rerouting sequence exists between %s and %s\n", fmtPath(from), fmtPath(to))
		}
	}
	if !shownSeq {
		fmt.Println("no reroutable pair found in the sample")
	}
}

func fmtPath(p []qbs.V) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, " → ")
}
