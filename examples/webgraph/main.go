// Directed shortest path graphs on a web-like digraph — the paper's §2
// extension to directed graphs. Hyperlinks are one-way: how pages reach
// each other can be wildly asymmetric, and the directed SPG captures
// every optimal route in the direction asked.
//
// The example builds a scale-free digraph (preferential attachment on
// both in- and out-degree, like link graphs), indexes it with directed
// QbS, and contrasts u→v against v→u for sampled pairs.
//
// Run with:
//
//	go run ./examples/webgraph
package main

import (
	"fmt"
	"math/rand"

	"qbs"
	"qbs/internal/graph"
)

func main() {
	g := graph.DirectedScaleFree(30000, 3, 2021)
	fmt.Printf("web graph: %d pages, %d links\n", g.NumVertices(), g.NumArcs())

	index, err := qbs.BuildDiIndex(g, qbs.DiOptions{NumLandmarks: 20})
	if err != nil {
		panic(err)
	}
	fmt.Printf("index built; landmark pages: %v\n\n", index.Landmarks()[:5])

	rng := rand.New(rand.NewSource(7))
	type row struct {
		u, v       qbs.V
		dFwd, dBwd int32
		aFwd, aBwd int
	}
	var asym []row
	for i := 0; i < 400 && len(asym) < 8; i++ {
		u := qbs.V(rng.Intn(g.NumVertices()))
		v := qbs.V(rng.Intn(g.NumVertices()))
		fwd := index.Query(u, v)
		bwd := index.Query(v, u)
		if fwd.Dist == qbs.InfDist || bwd.Dist == qbs.InfDist || fwd.Dist == 0 {
			continue
		}
		if fwd.Dist != bwd.Dist || fwd.NumArcs() != bwd.NumArcs() {
			asym = append(asym, row{u, v, fwd.Dist, bwd.Dist, fwd.NumArcs(), bwd.NumArcs()})
		}
	}

	fmt.Println("asymmetric pairs (directed distances and route structure differ):")
	fmt.Printf("%-16s %-10s %-10s %-12s %-12s\n", "pair", "d(u→v)", "d(v→u)", "arcs(u→v)", "arcs(v→u)")
	for _, r := range asym {
		fmt.Printf("(%6d,%6d) %-10d %-10d %-12d %-12d\n", r.u, r.v, r.dFwd, r.dBwd, r.aFwd, r.aBwd)
	}

	// A one-way pair: reachable forward, unreachable backward.
	for i := 0; i < 2000; i++ {
		u := qbs.V(rng.Intn(g.NumVertices()))
		v := qbs.V(rng.Intn(g.NumVertices()))
		fwd := index.Query(u, v)
		bwd := index.Query(v, u)
		if fwd.Dist != qbs.InfDist && bwd.Dist == qbs.InfDist {
			fmt.Printf("\none-way pair: %d reaches %d in %d hops (%d optimal-route links), "+
				"but %d cannot reach %d at all\n",
				u, v, fwd.Dist, fwd.NumArcs(), v, u)
			break
		}
	}
}
