// Shortest Path Network Interdiction (paper §1): find the critical
// vertices and edges whose removal destroys *all* shortest paths between
// two endpoints — e.g. hardening the links a cyberattack would sever, or
// finding the chokepoints of a communication network.
//
// The shortest path graph is exactly the object this problem needs: a
// vertex (edge) is critical iff it separates u from v within SPG(u, v).
// Computing SPGs with QbS makes scanning many endpoint pairs cheap.
//
// Run with:
//
//	go run ./examples/interdiction
package main

import (
	"fmt"
	"sort"

	"qbs"
	"qbs/internal/analysis"
	"qbs/internal/datasets"
	"qbs/internal/workload"
)

func main() {
	// A computer-network-like analog (Skitter).
	spec, err := datasets.ByKey("SK")
	if err != nil {
		panic(err)
	}
	g := spec.Generate(0.05)
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	index, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: 20})
	if err != nil {
		panic(err)
	}

	pairs := workload.SamplePairs(g, 200, 7)
	fmt.Printf("scanning %d endpoint pairs for interdiction bottlenecks...\n\n", len(pairs))

	type finding struct {
		pair     workload.Pair
		dist     int32
		critical []qbs.V
		bridges  []qbs.Edge
	}
	var vulnerable []finding
	for _, p := range pairs {
		spg := index.Query(p.U, p.V)
		if spg.Dist == qbs.InfDist || spg.Dist == 0 {
			continue
		}
		dag := analysis.BuildDAG(spg, func(x qbs.V) int32 { return index.Distance(p.U, x) })
		if dag == nil {
			continue
		}
		crit := dag.CriticalVertices()
		br := dag.CriticalEdges()
		if len(crit) > 0 || len(br) > 0 {
			vulnerable = append(vulnerable, finding{p, spg.Dist, crit, br})
		}
	}
	sort.Slice(vulnerable, func(i, j int) bool {
		return len(vulnerable[i].critical) > len(vulnerable[j].critical)
	})

	fmt.Printf("%d/%d pairs have single points of failure\n\n", len(vulnerable), len(pairs))
	show := vulnerable
	if len(show) > 10 {
		show = show[:10]
	}
	for _, f := range show {
		fmt.Printf("pair (%d,%d) dist=%d: %d critical vertices %v, %d critical edges %v\n",
			f.pair.U, f.pair.V, f.dist, len(f.critical), f.critical, len(f.bridges), f.bridges)
	}

	// Aggregate: which vertices are critical for the most pairs? These
	// are the infrastructure nodes to defend first.
	counts := map[qbs.V]int{}
	for _, f := range vulnerable {
		for _, v := range f.critical {
			counts[v]++
		}
	}
	type vc struct {
		v qbs.V
		c int
	}
	var ranked []vc
	for v, c := range counts {
		ranked = append(ranked, vc{v, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].v < ranked[j].v
	})
	fmt.Printf("\nmost frequently critical vertices:\n")
	for i, r := range ranked {
		if i == 5 {
			break
		}
		fmt.Printf("  vertex %d: critical for %d pairs (degree %d)\n", r.v, r.c, g.Degree(r.v))
	}
}
