// Quickstart: build a graph, build a QbS index, answer a
// shortest-path-graph query, and inspect the answer.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"qbs"
)

func main() {
	// A 14-vertex network in the spirit of the paper's running example
	// (Figures 2/4/5/6): three high-degree landmarks and several
	// redundant routes between the two "sides" of the graph.
	edges := []qbs.Edge{
		{U: 0, W: 3}, {U: 0, W: 4}, {U: 0, W: 5}, {U: 0, W: 13},
		{U: 1, W: 2}, {U: 1, W: 3}, {U: 1, W: 6}, {U: 1, W: 8}, {U: 1, W: 13},
		{U: 2, W: 3}, {U: 2, W: 11}, {U: 2, W: 12},
		{U: 3, W: 5}, {U: 4, W: 5}, {U: 4, W: 13},
		{U: 6, W: 7}, {U: 6, W: 8}, {U: 7, W: 8}, {U: 7, W: 10},
		{U: 8, W: 9}, {U: 9, W: 10}, {U: 9, W: 11}, {U: 10, W: 11},
		{U: 12, W: 13},
	}
	g, err := qbs.FromEdges(14, edges)
	if err != nil {
		panic(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Build the index with three landmarks (the paper uses the
	// highest-degree vertices; |R| = 20 on real graphs).
	index, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("landmarks: %v\n", index.Landmarks())

	// A query with several shortest paths between the two sides.
	u, v := qbs.V(0), qbs.V(9)
	spg, stats := index.QueryWithStats(u, v)
	fmt.Printf("\nSPG(%d,%d): distance %d\n", u, v, spg.Dist)
	fmt.Printf("  sketch upper bound d⊤ = %d\n", stats.DTop)
	fmt.Printf("  vertices: %v\n", spg.Vertices())
	fmt.Printf("  edges:\n")
	for _, e := range spg.Edges() {
		fmt.Printf("    %d - %d\n", e.U, e.W)
	}

	// Every edge lies on a shortest path; count how many distinct
	// shortest paths the answer encodes.
	distFromU := map[qbs.V]int32{}
	for _, w := range spg.Vertices() {
		distFromU[w] = index.Distance(u, w)
	}
	n := spg.CountShortestPaths(func(x qbs.V) int32 { return distFromU[x] })
	fmt.Printf("  distinct shortest paths: %d\n", n)

	// Compare against the index-free baseline.
	base := qbs.BiBFS(g, u, v)
	fmt.Printf("\nBi-BFS agrees: %v\n", spg.Equal(base))
}
