package qbs_test

import (
	"testing"

	"qbs"
)

// persistGraph is a ladder: rungs give every pair two shortest paths.
func persistGraph(t *testing.T) *qbs.Graph {
	t.Helper()
	const rungs = 30
	b := qbs.NewBuilder(2 * rungs)
	for i := 0; i < rungs; i++ {
		b.AddEdge(qbs.V(2*i), qbs.V(2*i+1))
		if i > 0 {
			b.AddEdge(qbs.V(2*i-2), qbs.V(2*i))
			b.AddEdge(qbs.V(2*i-1), qbs.V(2*i+1))
		}
	}
	return b.MustBuild()
}

// TestStoreLifecycle drives the whole public durability surface:
// create → mutate → checkpoint → close → recover, with answers and the
// epoch preserved across the restart.
func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	g := persistGraph(t)

	if qbs.StoreExists(dir) {
		t.Fatal("empty dir reported as a store")
	}
	di, err := qbs.CreateStore(dir, g, qbs.StoreOptions{Index: qbs.Options{NumLandmarks: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !di.Durable() {
		t.Fatal("CreateStore index not durable")
	}
	if !qbs.StoreExists(dir) {
		t.Fatal("store not visible on disk")
	}

	// A diagonal shortcut changes answers; it must survive the restart.
	if ok, err := di.AddEdge(0, 3); err != nil || !ok {
		t.Fatalf("AddEdge: ok=%v err=%v", ok, err)
	}
	wantDist := di.Distance(0, 3)
	wantSPG := di.Query(0, 59)
	if epoch, err := di.Checkpoint(); err != nil || epoch != 1 {
		t.Fatalf("Checkpoint: epoch=%d err=%v", epoch, err)
	}
	if ok, err := di.RemoveEdge(0, 2); err != nil || !ok {
		t.Fatalf("RemoveEdge: ok=%v err=%v", ok, err)
	}
	wantAfter := di.Query(0, 58)
	if err := di.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := qbs.OpenStore(dir, qbs.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 2 {
		t.Fatalf("recovered epoch %d, want 2", re.Epoch())
	}
	if got := re.Distance(0, 3); got != wantDist {
		t.Fatalf("recovered distance(0,3) = %d, want %d", got, wantDist)
	}
	if !re.Query(0, 59).Equal(wantSPG) {
		t.Fatal("recovered SPG(0,59) differs")
	}
	if !re.Query(0, 58).Equal(wantAfter) {
		t.Fatal("recovered post-checkpoint SPG(0,58) differs")
	}
	if re.HasEdge(0, 2) {
		t.Fatal("removed edge resurrected by recovery")
	}

	// The recovered store keeps accepting durable writes.
	if ok, err := re.AddEdge(1, 4); err != nil || !ok {
		t.Fatalf("post-recovery AddEdge: ok=%v err=%v", ok, err)
	}
	if re.Epoch() != 3 {
		t.Fatalf("post-recovery epoch %d, want 3", re.Epoch())
	}
}

// TestBuildDynamicIndexNotDurable pins the non-durable default:
// Checkpoint errors, Close is a harmless no-op.
func TestBuildDynamicIndexNotDurable(t *testing.T) {
	di, err := qbs.BuildDynamicIndex(persistGraph(t), qbs.DynamicOptions{Index: qbs.Options{NumLandmarks: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if di.Durable() {
		t.Fatal("plain dynamic index claims durability")
	}
	if _, err := di.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on non-durable index succeeded")
	}
	if err := di.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := di.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
}
