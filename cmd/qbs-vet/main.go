// qbs-vet runs the project-invariant static-analysis suite from
// internal/lint over the module: zeroalloc, atomicfield, loggedpublish,
// hotpath and syncerr in analyzer mode, or the compiler-backed escape
// gate with -escape. Any finding exits nonzero, so CI can gate on it.
//
// Usage:
//
//	go run ./cmd/qbs-vet ./...           # all analyzers, test files included
//	go run ./cmd/qbs-vet -escape ./...   # escape-analysis allocation gate
package main

import (
	"flag"
	"fmt"
	"os"

	"qbs/internal/lint"
)

func main() {
	escape := flag.Bool("escape", false, "run the escape-analysis allocation gate instead of the analyzers")
	tests := flag.Bool("tests", true, "include _test.go files in analyzer mode")
	dir := flag.String("dir", "", "module directory to analyze (default: current directory)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *escape {
		os.Exit(runEscape(*dir, patterns))
	}
	os.Exit(runAnalyzers(*dir, *tests, patterns))
}

func runAnalyzers(dir string, tests bool, patterns []string) int {
	prog, err := lint.Load(lint.LoadConfig{Dir: dir, Tests: tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbs-vet:", err)
		return 2
	}
	ds := lint.RunAll(prog)
	for _, d := range ds {
		fmt.Printf("%s: [%s] %s\n", prog.Rel(d.Pos), d.Analyzer, d.Message)
	}
	if len(ds) > 0 {
		fmt.Fprintf(os.Stderr, "qbs-vet: %d finding(s)\n", len(ds))
		return 1
	}
	fmt.Printf("qbs-vet: ok (%d packages, %d analyzers)\n", len(prog.Packages), len(lint.All))
	return 0
}

func runEscape(dir string, patterns []string) int {
	ds, checked, err := lint.EscapeGate(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbs-vet:", err)
		return 2
	}
	for _, d := range ds {
		fmt.Printf("%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(ds) > 0 {
		fmt.Fprintf(os.Stderr, "qbs-vet: escape gate failed: %d heap allocation(s) in //qbs:zeroalloc functions\n", len(ds))
		return 1
	}
	fmt.Printf("qbs-vet: escape gate ok — %d annotated function(s) allocation-free:\n", len(checked))
	for _, name := range checked {
		fmt.Printf("  %s\n", name)
	}
	return 0
}
