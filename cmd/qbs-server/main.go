// Command qbs-server serves shortest-path-graph queries over HTTP.
//
// Usage:
//
//	qbs-server -graph web.edges -landmarks 20 -addr :8080
//	qbs-server -dataset YT -scale 0.5 -index yt.qbsi   # build once, reuse
//
// Endpoints: /spg, /distance, /sketch, /paths, /stats, /healthz — see
// internal/server for the JSON schemas.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"qbs"
	"qbs/internal/datasets"
	"qbs/internal/graph"
	"qbs/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to load")
		binPath   = flag.String("bin", "", "binary graph file to load")
		dataset   = flag.String("dataset", "", "dataset analog key instead of a file")
		scale     = flag.Float64("scale", 0.25, "dataset scale factor")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R|")
		indexPath = flag.String("index", "", "index file: loaded if present, saved after building otherwise")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *binPath, *dataset, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())

	var index *qbs.Index
	if *indexPath != "" {
		if _, statErr := os.Stat(*indexPath); statErr == nil {
			start := time.Now()
			index, err = qbs.LoadIndexFile(g, *indexPath)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("index: loaded %s in %s\n", *indexPath, time.Since(start).Round(time.Millisecond))
		}
	}
	if index == nil {
		start := time.Now()
		index, err = qbs.BuildIndex(g, qbs.Options{NumLandmarks: *landmarks})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("index: built in %s (%d landmarks)\n",
			time.Since(start).Round(time.Millisecond), len(index.Landmarks()))
		if *indexPath != "" {
			if err := index.SaveFile(*indexPath); err != nil {
				fatal(err)
			}
			fmt.Printf("index: saved to %s\n", *indexPath)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(index),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("serving on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func loadGraph(path, bin, dataset string, scale float64) (*qbs.Graph, error) {
	switch {
	case path != "":
		g, _, err := qbs.LoadEdgeListFile(path)
		return g, err
	case bin != "":
		return graph.ReadBinaryFile(bin)
	case dataset != "":
		spec, err := datasets.ByKey(dataset)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale), nil
	default:
		return nil, fmt.Errorf("one of -graph, -bin or -dataset is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qbs-server:", err)
	os.Exit(1)
}
