// Command qbs-server serves shortest-path-graph queries over HTTP.
//
// Usage:
//
//	qbs-server -graph web.edges -landmarks 20 -addr :8080
//	qbs-server -dataset YT -scale 0.5 -index yt.qbsi   # build once, reuse
//	qbs-server -dataset YT -mutable                    # accept edge writes
//	qbs-server -dataset YT -mutable -data ./yt-data    # durable: survive restarts
//	qbs-server -data ./yt-data -mutable                # reopen in sub-second
//	qbs-server -directed -dataset WK                   # serve SPG(u → v)
//	qbs-server -directed -dataset WK -data ./wk-data   # directed + durable
//
// Replication (see internal/replica for the protocol and README
// "Replication & read scaling" for the topology):
//
//	qbs-server -primary -dataset YT -data ./yt -addr :8080
//	qbs-server -replica-of http://primary:8080 -addr :8081
//	qbs-server -replica-of http://primary:8080 -addr :8082
//	qbs-server -router http://primary:8080,http://r1:8081,http://r2:8082 -addr :8090
//
// Endpoints: /spg, /distance, /sketch, /paths, /stats, /healthz,
// /debug/slowlog, /debug/traces[/{id}], and in -mutable mode POST
// /edges, DELETE /edges, /epoch, POST /checkpoint — see internal/server
// for the JSON schemas. -slowlog and -trace-sample tune which traces
// the span store retains (README "Distributed tracing").
//
// With -directed the server fronts a directed index: the edge list is
// read as arcs, /spg answers SPG(u → v), and -data persists/recovers a
// directed snapshot. -directed is read-only and incompatible with
// -mutable and -index.
//
// With -data, the server owns a durable data directory: on first start
// it builds the index from the graph source and persists it; on every
// later start it recovers from the newest snapshot plus write-ahead-log
// replay (no graph source needed, and no rebuild — a killed server
// comes back with the exact pre-crash index, same epoch included).
// Without -mutable the recovered index is served read-only.
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, drains in-flight requests (bounded by -drain), waits for
// any background index compaction to settle, and flushes the log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qbs"
	"qbs/internal/datasets"
	"qbs/internal/graph"
	"qbs/internal/obs"
	"qbs/internal/replica"
	"qbs/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to load")
		binPath   = flag.String("bin", "", "binary graph file to load")
		dataset   = flag.String("dataset", "", "dataset analog key instead of a file")
		scale     = flag.Float64("scale", 0.25, "dataset scale factor")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R|")
		indexPath = flag.String("index", "", "index file: loaded if present, saved after building otherwise (immutable mode only)")
		dataDir   = flag.String("data", "", "durable data directory: created from the graph source on first start, recovered (snapshot + WAL replay) afterwards")
		syncEvery = flag.Int("sync-every", 0, "batch WAL fsyncs every N writes (0/1 = every write)")
		addr      = flag.String("addr", ":8080", "listen address")
		mutable   = flag.Bool("mutable", false, "serve a live-mutable index accepting edge writes")
		directed  = flag.Bool("directed", false, "serve a directed index answering SPG(u → v); read-only")
		primary   = flag.Bool("primary", false, "serve the replication feed (/replication/snapshot, /replication/wal) alongside the mutable API; requires -data, implies -mutable")
		replicaOf = flag.String("replica-of", "", "run as a read replica of the primary at this base URL (bootstraps from its snapshot, tails its WAL)")
		routerOf  = flag.String("router", "", "run as a query router: comma-separated <primary-url>,<replica-url>... — reads fan across replicas, writes forward to the primary")
		poll      = flag.Duration("poll", 25*time.Millisecond, "replica WAL tail poll interval (bounds replication lag)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof and process-wide Prometheus metrics on this separate address (empty = disabled)")
		slowlog   = flag.Duration("slowlog", 0, "slow-query log threshold for GET /debug/slowlog (0 = 100ms default)")
		traceSamp = flag.Int("trace-sample", 0, "head-sample 1 in N traces into /debug/traces on top of the always-retained slow/errored/force-sampled ones (0 = tail-only)")
		logLevel  = flag.String("log-level", "info", "minimum event level admitted to the journal at GET /debug/logs (debug|info|warn|error)")
		profEvery = flag.Duration("profile-every", 0, "flight-recorder capture cadence for GET /debug/profiles (0 = disabled; triggers still auto-capture while running)")
	)
	flag.Parse()

	// Tracing and journalling policy is process-wide: the serving
	// middleware, the router, and the background roots (WAL fsync,
	// checkpoint, compaction, replica apply) all record into
	// obs.DefaultTracer and obs.DefaultJournal, whatever the mode.
	if *traceSamp > 0 {
		obs.DefaultTracer.SetHeadEvery(*traceSamp)
	}
	if *slowlog > 0 {
		// Keep the tracer's "slow traces always survive" bar aligned with
		// the slowlog threshold, so every slowlog entry's trace link
		// resolves in every serving mode.
		obs.DefaultTracer.SetSlowThreshold(*slowlog)
	}
	lvl, ok := obs.ParseLevel(*logLevel)
	if !ok {
		fatal(fmt.Errorf("-log-level must be debug, info, warn or error; got %q", *logLevel))
	}
	obs.DefaultJournal.SetMinLevel(lvl)
	if *profEvery > 0 {
		// The process-wide recorder samples on the cadence and
		// auto-captures (debounced) on an error-event spike; serving modes
		// add their SLO fast-burn triggers below.
		obs.DefaultFlightRecorder.AddTrigger("error_event_spike", func() bool {
			return obs.DefaultJournal.ErrorsInLast(10*time.Second) >= 5
		})
		obs.DefaultFlightRecorder.Start(*profEvery)
		defer obs.DefaultFlightRecorder.Stop()
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}
	// tune applies serving-mode knobs that live on *server.Server (the
	// router and replica modes wrap or own their servers themselves).
	tune := func(sv *server.Server) *server.Server {
		if *slowlog > 0 {
			sv.SetSlowLogThreshold(*slowlog)
		}
		if *profEvery > 0 {
			obs.DefaultFlightRecorder.AddTrigger("slo_fast_burn", sv.SLOs().FastBurn)
		}
		return sv
	}

	if *primary {
		if *dataDir == "" {
			fatal(fmt.Errorf("-primary requires -data (the WAL it ships lives there)"))
		}
		if *directed {
			fatal(fmt.Errorf("-primary is incompatible with -directed"))
		}
		*mutable = true
	}
	if *replicaOf != "" && (*mutable || *directed || *primary || *routerOf != "") {
		fatal(fmt.Errorf("-replica-of is a standalone read-only mode"))
	}
	if *routerOf != "" && (*mutable || *directed || *primary || *dataDir != "") {
		fatal(fmt.Errorf("-router is a standalone proxy mode"))
	}

	// Router mode: no local index at all — just the fan-out proxy.
	if *routerOf != "" {
		parts := strings.Split(*routerOf, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		if len(parts) < 2 || parts[0] == "" {
			fatal(fmt.Errorf("-router needs <primary-url>,<replica-url>[,...]"))
		}
		rt := replica.NewRouter(parts[0], parts[1:], replica.RouterOptions{})
		defer rt.Stop()
		if *profEvery > 0 {
			// Share the process recorder so the router's fast-burn and
			// error-spike triggers ride the running sampler.
			rt.SetFlightRecorder(obs.DefaultFlightRecorder)
		}
		fmt.Printf("router: %s\n", rt.Backends())
		lifecycle("router", "backends", rt.Backends())
		serve(*addr, *drain, rt, nil)
		return
	}

	// Replica mode: bootstrap from the primary, serve read-only, keep
	// tailing until shutdown.
	if *replicaOf != "" {
		start := time.Now()
		rep, err := replica.Start(*replicaOf, replica.Options{
			Dir:          *dataDir,
			MMap:         true,
			PollInterval: *poll,
			SlowLog:      *slowlog,
		})
		if err != nil {
			fatal(err)
		}
		defer rep.Stop()
		epoch, edges := rep.Index().EpochEdges()
		fmt.Printf("replica: bootstrapped from %s in %s (|V|=%d |E|=%d epoch=%d)\n",
			*replicaOf, time.Since(start).Round(time.Millisecond),
			rep.Index().NumVertices(), edges, epoch)
		serve(*addr, *drain, rep.Handler(), nil)
		return
	}

	var handler http.Handler
	var dyn *qbs.DynamicIndex
	switch {
	case *directed && *mutable:
		fatal(fmt.Errorf("-directed is read-only and incompatible with -mutable"))
	case *directed:
		if *indexPath != "" {
			fatal(fmt.Errorf("-index is not supported in -directed mode (use -data)"))
		}
		var ix *qbs.DiIndex
		if *dataDir != "" && qbs.DiStoreExists(*dataDir) {
			start := time.Now()
			var err error
			ix, err = qbs.OpenDiStore(*dataDir, qbs.DiStoreOptions{MMap: true})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("store: recovered directed index from %s in %s (|V|=%d arcs=%d)\n",
				*dataDir, time.Since(start).Round(time.Millisecond),
				ix.Graph().NumVertices(), ix.Graph().NumArcs())
		} else {
			g, err := loadDiGraph(*graphPath, *dataset, *scale)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("digraph: |V|=%d arcs=%d\n", g.NumVertices(), g.NumArcs())
			start := time.Now()
			opts := qbs.DiStoreOptions{Index: qbs.DiOptions{NumLandmarks: *landmarks}}
			if *dataDir != "" {
				ix, err = qbs.CreateDiStore(*dataDir, g, opts)
			} else {
				ix, err = qbs.BuildDiIndex(g, opts.Index)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("directed index: built in %s (%d landmarks)\n",
				time.Since(start).Round(time.Millisecond), len(ix.Landmarks()))
		}
		handler = tune(server.NewDirected(ix))
	case *dataDir != "" && qbs.StoreExists(*dataDir):
		// Restart path: recover, no graph source and no rebuild needed.
		start := time.Now()
		var err error
		dyn, err = qbs.OpenStore(*dataDir, qbs.StoreOptions{
			ReadOnly:  !*mutable,
			MMap:      true,
			SyncEvery: *syncEvery,
		})
		if err != nil {
			fatal(err)
		}
		epoch, edges := dyn.EpochEdges()
		fmt.Printf("store: recovered %s in %s (|V|=%d |E|=%d epoch=%d)\n",
			*dataDir, time.Since(start).Round(time.Millisecond), dyn.NumVertices(), edges, epoch)
	case *dataDir != "":
		g, err := loadGraph(*graphPath, *binPath, *dataset, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
		start := time.Now()
		dyn, err = qbs.CreateStore(*dataDir, g, qbs.StoreOptions{
			Index:     qbs.Options{NumLandmarks: *landmarks},
			SyncEvery: *syncEvery,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("store: built and persisted to %s in %s (%d landmarks)\n",
			*dataDir, time.Since(start).Round(time.Millisecond), len(dyn.Landmarks()))
	case *mutable:
		if *indexPath != "" {
			fmt.Fprintln(os.Stderr, "qbs-server: -index is ignored in -mutable mode (use -data for persistence)")
		}
		g, err := loadGraph(*graphPath, *binPath, *dataset, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
		start := time.Now()
		dyn, err = qbs.BuildDynamicIndex(g, qbs.DynamicOptions{
			Index: qbs.Options{NumLandmarks: *landmarks},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dynamic index: built in %s (%d landmarks, mutable, not persisted)\n",
			time.Since(start).Round(time.Millisecond), len(dyn.Landmarks()))
	default:
		g, err := loadGraph(*graphPath, *binPath, *dataset, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
		index, err := buildOrLoadIndex(g, *indexPath, *landmarks)
		if err != nil {
			fatal(err)
		}
		handler = tune(server.New(index))
	}
	if dyn != nil {
		if *mutable {
			handler = tune(server.NewMutable(dyn))
		} else {
			handler = tune(server.NewDynamicReadOnly(dyn))
		}
		if *primary {
			// The replication feed rides alongside the serving API: the
			// store ships its snapshot and WAL tail under /replication/.
			prim := replica.NewPrimary(dyn.Store(), replica.PrimaryOptions{})
			defer prim.Close()
			mux := http.NewServeMux()
			mux.Handle("/replication/", prim)
			mux.Handle("/", handler)
			handler = mux
			fmt.Println("replication: serving /replication/snapshot and /replication/wal")
		}
	}
	serve(*addr, *drain, handler, dyn)
}

// serveDebug runs the operator side-channel: pprof and a Prometheus
// rendering of the process-wide registry (WAL/checkpoint/apply/runtime
// series) on an address that is never exposed to query clients. No
// write timeout: /debug/pprof/profile?seconds=N streams for N seconds.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = obs.WritePrometheus(w, obs.Default)
	})
	mux.Handle("/debug/logs", obs.DefaultJournal)
	mux.Handle("/debug/profiles", obs.DefaultFlightRecorder)
	mux.Handle("/debug/profiles/", obs.DefaultFlightRecorder)
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("debug: pprof and process metrics on %s\n", addr)
	lifecycle("debug", "addr", addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "qbs-server: debug server:", err)
		evProcErr.Emit(obs.Str("stage", "debug_server"), obs.Str("error", err.Error()))
	}
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains
// in-flight requests and (for durable indexes) flushes the store.
func serve(addr string, drain time.Duration, handler http.Handler, dyn *qbs.DynamicIndex) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s\n", addr)
		lifecycle("serve", "addr", addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("shutting down...")
		lifecycle("shutdown", "addr", addr)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "qbs-server: drain incomplete:", err)
			evProcErr.Emit(obs.Str("stage", "drain"), obs.Str("error", err.Error()))
		}
		if dyn != nil {
			dyn.WaitCompaction()
			if err := dyn.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "qbs-server: store close:", err)
				evProcErr.Emit(obs.Str("stage", "store_close"), obs.Str("error", err.Error()))
			}
		}
		fmt.Println("bye")
	}
}

func buildOrLoadIndex(g *qbs.Graph, indexPath string, landmarks int) (*qbs.Index, error) {
	if indexPath != "" {
		if _, statErr := os.Stat(indexPath); statErr == nil {
			start := time.Now()
			index, err := qbs.LoadIndexFile(g, indexPath)
			if err != nil {
				return nil, err
			}
			fmt.Printf("index: loaded %s in %s\n", indexPath, time.Since(start).Round(time.Millisecond))
			return index, nil
		}
	}
	start := time.Now()
	index, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: landmarks})
	if err != nil {
		return nil, err
	}
	fmt.Printf("index: built in %s (%d landmarks)\n",
		time.Since(start).Round(time.Millisecond), len(index.Landmarks()))
	if indexPath != "" {
		if err := index.SaveFile(indexPath); err != nil {
			return nil, err
		}
		fmt.Printf("index: saved to %s\n", indexPath)
	}
	return index, nil
}

// loadDiGraph resolves the directed graph source: an arc list file or a
// directed dataset analog.
func loadDiGraph(path, dataset string, scale float64) (*qbs.DiGraph, error) {
	switch {
	case path != "":
		g, _, err := qbs.LoadDiEdgeListFile(path)
		return g, err
	case dataset != "":
		spec, err := datasets.ByKey(dataset)
		if err != nil {
			return nil, err
		}
		return spec.GenerateDirected(scale), nil
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required (or -data with an existing directed store)")
	}
}

func loadGraph(path, bin, dataset string, scale float64) (*qbs.Graph, error) {
	switch {
	case path != "":
		g, _, err := qbs.LoadEdgeListFile(path)
		return g, err
	case bin != "":
		return graph.ReadBinaryFile(bin)
	case dataset != "":
		spec, err := datasets.ByKey(dataset)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale), nil
	default:
		return nil, fmt.Errorf("one of -graph, -bin or -dataset is required")
	}
}

// Process-lifecycle events mirror the stdout/stderr prints into the
// journal, so a /debug/logs scrape (serving mux or -debug-addr) tells
// the same startup/shutdown story the console did.
var (
	evLifecycle = obs.DefaultJournal.Def("process", "lifecycle", obs.LevelInfo)
	evProcErr   = obs.DefaultJournal.Def("process", "error", obs.LevelError)
)

func lifecycle(stage, key, val string) {
	evLifecycle.Emit(obs.Str("stage", stage), obs.Str(key, val))
}

func fatal(err error) {
	evProcErr.Emit(obs.Str("stage", "fatal"), obs.Str("error", err.Error()))
	fmt.Fprintln(os.Stderr, "qbs-server:", err)
	os.Exit(1)
}
