// Command qbs is the interactive front end of the library: it loads or
// generates a graph, builds the QbS index, and answers shortest-path-
// graph queries from the command line.
//
// Usage:
//
//	qbs -graph web.edges -landmarks 20 -query 14,907 -query 3,77
//	qbs -dataset TW -scale 0.1 -random 5         # 5 random queries
//	qbs -graph web.edges -stats                  # index statistics only
//	qbs -graph web.edges -data ./web-data        # build once, persist
//	qbs -data ./web-data -query 14,907           # reopen in sub-second
//	qbs -directed -graph web.arcs -query 14,907  # SPG(u → v) on a digraph
//	qbs -directed -dataset WK -data ./wk-data    # directed build + persist
//
// With -data the index lives in a durable data directory: the first run
// (which still needs a graph source) builds and persists it; later runs
// recover it from the snapshot + write-ahead log without rebuilding.
// -checkpoint persists a fresh snapshot before exiting.
//
// With -directed the edge list is read as arcs (no symmetrising), the
// index answers SPG(u → v), and -data persists/recovers the directed
// snapshot (no write-ahead log: the directed index is immutable, so
// -checkpoint does not apply).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"qbs"
	"qbs/internal/datasets"
	"qbs/internal/graph"
	"qbs/internal/obs"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ";") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file to load")
		binPath    = flag.String("bin", "", "binary graph file to load")
		dataset    = flag.String("dataset", "", "dataset analog key instead of a file")
		scale      = flag.Float64("scale", 0.25, "dataset scale factor")
		landmarks  = flag.Int("landmarks", 20, "number of landmarks |R|")
		strategy   = flag.String("strategy", "degree", "landmark strategy: degree|random|coverage")
		random     = flag.Int("random", 0, "answer this many random queries")
		seed       = flag.Int64("seed", 1, "seed for -random and -strategy random")
		stats      = flag.Bool("stats", false, "print index statistics")
		verbose    = flag.Bool("v", false, "print the full edge set of each answer")
		dataDir    = flag.String("data", "", "durable data directory: built from the graph source if absent, recovered otherwise")
		checkpoint = flag.Bool("checkpoint", false, "persist a fresh snapshot to -data before exiting")
		directed   = flag.Bool("directed", false, "directed mode: read the graph as arcs and answer SPG(u → v)")
	)
	var queries queryList
	flag.Var(&queries, "query", "query pair \"u,v\" (repeatable)")
	flag.Parse()

	if *directed {
		runDirected(*graphPath, *dataset, *scale, *landmarks, *dataDir, *stats, *verbose, *seed, *random, queries)
		return
	}

	// answer is the query surface shared by the static and durable paths.
	var answer interface {
		QueryWithStats(u, v qbs.V) (*qbs.SPG, qbs.QueryStats)
	}
	var numVertices int

	switch {
	case *dataDir != "" && qbs.StoreExists(*dataDir):
		start := time.Now()
		// Query-only runs open read-only: no writer lock, no log segment,
		// and the data dir is left byte-for-byte untouched. Only
		// -checkpoint needs a writable open.
		di, err := qbs.OpenStore(*dataDir, qbs.StoreOptions{MMap: true, ReadOnly: !*checkpoint})
		if err != nil {
			fatal(err)
		}
		defer di.Close()
		epoch, edges := di.EpochEdges()
		fmt.Printf("store: recovered %s in %s (|V|=%d |E|=%d epoch=%d)\n",
			*dataDir, time.Since(start).Round(time.Microsecond), di.NumVertices(), edges, epoch)
		if *stats {
			printStoreStats(di)
		}
		answer, numVertices = di, di.NumVertices()
		defer maybeCheckpoint(di, *checkpoint)
	case *dataDir != "":
		g, err := loadGraph(*graphPath, *binPath, *dataset, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph: |V|=%d |E|=%d avg deg %.2f\n", g.NumVertices(), g.NumEdges(), g.AvgDegree())
		start := time.Now()
		di, err := qbs.CreateStore(*dataDir, g, qbs.StoreOptions{Index: qbs.Options{
			NumLandmarks: *landmarks,
			Strategy:     qbs.Strategy(*strategy),
			Seed:         *seed,
		}})
		if err != nil {
			fatal(err)
		}
		defer di.Close()
		fmt.Printf("store: built and persisted to %s in %s\n", *dataDir, time.Since(start).Round(time.Microsecond))
		if *stats {
			printStoreStats(di)
		}
		answer, numVertices = di, di.NumVertices()
	default:
		g, err := loadGraph(*graphPath, *binPath, *dataset, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph: |V|=%d |E|=%d avg deg %.2f\n", g.NumVertices(), g.NumEdges(), g.AvgDegree())
		start := time.Now()
		ix, err := qbs.BuildIndex(g, qbs.Options{
			NumLandmarks: *landmarks,
			Strategy:     qbs.Strategy(*strategy),
			Seed:         *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("index: built in %s\n", time.Since(start).Round(time.Microsecond))

		if *stats {
			st := ix.Stats()
			fmt.Printf("  landmarks:      %d\n", st.NumLandmarks)
			fmt.Printf("  labelling time: %s (parallelism %d)\n", st.LabellingTime.Round(time.Microsecond), st.Parallelism)
			fmt.Printf("  meta/Δ time:    %s\n", st.MetaTime.Round(time.Microsecond))
			fmt.Printf("  label entries:  %d\n", st.LabelEntries)
			fmt.Printf("  meta edges:     %d\n", st.MetaEdges)
			fmt.Printf("  size(L):        %d bytes\n", ix.SizeLabelsBytes())
			fmt.Printf("  size(Δ):        %d bytes\n", ix.SizeDeltaBytes())
		}
		answer, numVertices = ix, g.NumVertices()
	}

	pairs := parsePairs(queries, numVertices)
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *random; i++ {
		pairs = append(pairs, [2]qbs.V{qbs.V(rng.Intn(numVertices)), qbs.V(rng.Intn(numVertices))})
	}

	for _, p := range pairs {
		t0 := time.Now()
		spg, st := answer.QueryWithStats(p[0], p[1])
		el := time.Since(t0)
		if spg.Dist == qbs.InfDist {
			fmt.Printf("SPG(%d,%d): disconnected (%s)\n", p[0], p[1], el.Round(time.Nanosecond))
			continue
		}
		fmt.Printf("SPG(%d,%d): dist=%d vertices=%d edges=%d d⊤=%d [%s]\n",
			p[0], p[1], spg.Dist, len(spg.Vertices()), spg.NumEdges(), st.DTop,
			el.Round(time.Nanosecond))
		if *verbose {
			for _, e := range spg.Edges() {
				fmt.Printf("  %d - %d\n", e.U, e.W)
			}
		}
	}
}

// runDirected is the -directed main: build (or recover) a DiIndex and
// answer directed queries.
func runDirected(graphPath, dataset string, scale float64, landmarks int, dataDir string, stats, verbose bool, seed int64, random int, queries queryList) {
	var ix *qbs.DiIndex
	switch {
	case dataDir != "" && qbs.DiStoreExists(dataDir):
		start := time.Now()
		var err error
		ix, err = qbs.OpenDiStore(dataDir, qbs.DiStoreOptions{MMap: true})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("store: recovered directed index from %s in %s (|V|=%d arcs=%d)\n",
			dataDir, time.Since(start).Round(time.Microsecond),
			ix.Graph().NumVertices(), ix.Graph().NumArcs())
	default:
		g, err := loadDiGraph(graphPath, dataset, scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("digraph: |V|=%d arcs=%d\n", g.NumVertices(), g.NumArcs())
		start := time.Now()
		opts := qbs.DiStoreOptions{Index: qbs.DiOptions{NumLandmarks: landmarks}}
		if dataDir != "" {
			ix, err = qbs.CreateDiStore(dataDir, g, opts)
		} else {
			ix, err = qbs.BuildDiIndex(g, opts.Index)
		}
		if err != nil {
			fatal(err)
		}
		if dataDir != "" {
			fmt.Printf("store: built and persisted to %s in %s\n", dataDir, time.Since(start).Round(time.Microsecond))
		} else {
			fmt.Printf("index: built in %s\n", time.Since(start).Round(time.Microsecond))
		}
	}
	if stats {
		st := ix.Stats()
		fmt.Printf("  landmarks:      %d\n", len(ix.Landmarks()))
		fmt.Printf("  labelling time: %s\n", st.LabellingTime.Round(time.Microsecond))
		fmt.Printf("  meta/Δ time:    %s\n", st.MetaTime.Round(time.Microsecond))
		fmt.Printf("  label entries:  %d\n", st.LabelEntries)
		fmt.Printf("  meta arcs:      %d\n", st.MetaArcs)
		fmt.Printf("  size(L):        %d bytes\n", ix.SizeLabelsBytes())
		fmt.Printf("  size(Δ):        %d bytes\n", ix.SizeDeltaBytes())
	}

	n := ix.Graph().NumVertices()
	pairs := parsePairs(queries, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < random; i++ {
		pairs = append(pairs, [2]qbs.V{qbs.V(rng.Intn(n)), qbs.V(rng.Intn(n))})
	}
	for _, p := range pairs {
		t0 := time.Now()
		spg := ix.Query(p[0], p[1])
		el := time.Since(t0)
		if spg.Dist == qbs.InfDist {
			fmt.Printf("DiSPG(%d→%d): unreachable (%s)\n", p[0], p[1], el.Round(time.Nanosecond))
			continue
		}
		fmt.Printf("DiSPG(%d→%d): dist=%d vertices=%d arcs=%d [%s]\n",
			p[0], p[1], spg.Dist, len(spg.Vertices()), spg.NumArcs(), el.Round(time.Nanosecond))
		if verbose {
			for _, a := range spg.Arcs() {
				fmt.Printf("  %d -> %d\n", a.From, a.To)
			}
		}
	}
}

// parsePairs converts -query strings into vertex pairs, validating
// against the vertex count.
func parsePairs(queries queryList, numVertices int) [][2]qbs.V {
	var pairs [][2]qbs.V
	for _, q := range queries {
		parts := strings.SplitN(q, ",", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -query %q, want \"u,v\"", q))
		}
		u, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		v, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= numVertices || v >= numVertices {
			fatal(fmt.Errorf("bad -query %q for graph with %d vertices", q, numVertices))
		}
		pairs = append(pairs, [2]qbs.V{qbs.V(u), qbs.V(v)})
	}
	return pairs
}

// loadDiGraph resolves the directed graph source: an arc list file or a
// directed dataset analog.
func loadDiGraph(path, dataset string, scale float64) (*qbs.DiGraph, error) {
	switch {
	case path != "":
		g, _, err := qbs.LoadDiEdgeListFile(path)
		return g, err
	case dataset != "":
		spec, err := datasets.ByKey(dataset)
		if err != nil {
			return nil, err
		}
		return spec.GenerateDirected(scale), nil
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required (or -data with an existing directed store)")
	}
}

// printStoreStats is the -stats block for the durable-store paths
// (construction timings live in the store, not the process, so the
// static build's labelling/meta split is not reported here).
func printStoreStats(di *qbs.DynamicIndex) {
	epoch, edges := di.EpochEdges()
	fmt.Printf("  landmarks:      %d\n", len(di.Landmarks()))
	fmt.Printf("  epoch:          %d\n", epoch)
	fmt.Printf("  edges:          %d\n", edges)
	fmt.Printf("  size(L):        %d bytes\n", di.SizeLabelsBytes())
	fmt.Printf("  size(Δ):        %d bytes\n", di.SizeDeltaBytes())
}

func maybeCheckpoint(di *qbs.DynamicIndex, enabled bool) {
	if !enabled {
		return
	}
	start := time.Now()
	epoch, err := di.Checkpoint()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("store: checkpointed epoch %d in %s\n", epoch, time.Since(start).Round(time.Microsecond))
}

func loadGraph(path, bin, dataset string, scale float64) (*qbs.Graph, error) {
	switch {
	case path != "":
		g, _, err := qbs.LoadEdgeListFile(path)
		return g, err
	case bin != "":
		return graph.ReadBinaryFile(bin)
	case dataset != "":
		spec, err := datasets.ByKey(dataset)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale), nil
	default:
		return nil, fmt.Errorf("one of -graph, -bin or -dataset is required")
	}
}

func fatal(err error) {
	obs.DefaultJournal.Def("process", "error", obs.LevelError).
		Emit(obs.Str("stage", "fatal"), obs.Str("error", err.Error()))
	fmt.Fprintln(os.Stderr, "qbs:", err)
	os.Exit(1)
}
