// Command qbs is the interactive front end of the library: it loads or
// generates a graph, builds the QbS index, and answers shortest-path-
// graph queries from the command line.
//
// Usage:
//
//	qbs -graph web.edges -landmarks 20 -query 14,907 -query 3,77
//	qbs -dataset TW -scale 0.1 -random 5         # 5 random queries
//	qbs -graph web.edges -stats                  # index statistics only
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"qbs"
	"qbs/internal/datasets"
	"qbs/internal/graph"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ";") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to load")
		binPath   = flag.String("bin", "", "binary graph file to load")
		dataset   = flag.String("dataset", "", "dataset analog key instead of a file")
		scale     = flag.Float64("scale", 0.25, "dataset scale factor")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R|")
		strategy  = flag.String("strategy", "degree", "landmark strategy: degree|random|coverage")
		random    = flag.Int("random", 0, "answer this many random queries")
		seed      = flag.Int64("seed", 1, "seed for -random and -strategy random")
		stats     = flag.Bool("stats", false, "print index statistics")
		verbose   = flag.Bool("v", false, "print the full edge set of each answer")
	)
	var queries queryList
	flag.Var(&queries, "query", "query pair \"u,v\" (repeatable)")
	flag.Parse()

	g, err := loadGraph(*graphPath, *binPath, *dataset, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: |V|=%d |E|=%d avg deg %.2f\n", g.NumVertices(), g.NumEdges(), g.AvgDegree())

	start := time.Now()
	ix, err := qbs.BuildIndex(g, qbs.Options{
		NumLandmarks: *landmarks,
		Strategy:     qbs.Strategy(*strategy),
		Seed:         *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("index: built in %s\n", time.Since(start).Round(time.Microsecond))

	if *stats {
		st := ix.Stats()
		fmt.Printf("  landmarks:      %d\n", st.NumLandmarks)
		fmt.Printf("  labelling time: %s (parallelism %d)\n", st.LabellingTime.Round(time.Microsecond), st.Parallelism)
		fmt.Printf("  meta/Δ time:    %s\n", st.MetaTime.Round(time.Microsecond))
		fmt.Printf("  label entries:  %d\n", st.LabelEntries)
		fmt.Printf("  meta edges:     %d\n", st.MetaEdges)
		fmt.Printf("  size(L):        %d bytes\n", ix.SizeLabelsBytes())
		fmt.Printf("  size(Δ):        %d bytes\n", ix.SizeDeltaBytes())
	}

	var pairs [][2]qbs.V
	for _, q := range queries {
		parts := strings.SplitN(q, ",", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -query %q, want \"u,v\"", q))
		}
		u, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		v, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= g.NumVertices() || v >= g.NumVertices() {
			fatal(fmt.Errorf("bad -query %q for graph with %d vertices", q, g.NumVertices()))
		}
		pairs = append(pairs, [2]qbs.V{qbs.V(u), qbs.V(v)})
	}
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *random; i++ {
		pairs = append(pairs, [2]qbs.V{qbs.V(rng.Intn(g.NumVertices())), qbs.V(rng.Intn(g.NumVertices()))})
	}

	for _, p := range pairs {
		t0 := time.Now()
		spg, st := ix.QueryWithStats(p[0], p[1])
		el := time.Since(t0)
		if spg.Dist == qbs.InfDist {
			fmt.Printf("SPG(%d,%d): disconnected (%s)\n", p[0], p[1], el.Round(time.Nanosecond))
			continue
		}
		fmt.Printf("SPG(%d,%d): dist=%d vertices=%d edges=%d d⊤=%d [%s]\n",
			p[0], p[1], spg.Dist, len(spg.Vertices()), spg.NumEdges(), st.DTop,
			el.Round(time.Nanosecond))
		if *verbose {
			for _, e := range spg.Edges() {
				fmt.Printf("  %d - %d\n", e.U, e.W)
			}
		}
	}
}

func loadGraph(path, bin, dataset string, scale float64) (*qbs.Graph, error) {
	switch {
	case path != "":
		g, _, err := qbs.LoadEdgeListFile(path)
		return g, err
	case bin != "":
		return graph.ReadBinaryFile(bin)
	case dataset != "":
		spec, err := datasets.ByKey(dataset)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale), nil
	default:
		return nil, fmt.Errorf("one of -graph, -bin or -dataset is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qbs:", err)
	os.Exit(1)
}
