// Command qbs-bench regenerates the paper's evaluation: every table and
// figure of §6 plus the ablations, over the synthetic dataset analogs.
//
// Usage:
//
//	qbs-bench -exp table2 -scale 0.2 -queries 1000
//	qbs-bench -exp all -datasets DO,DB,YT -out results.md
//	qbs-bench -exp scaling -scale 1.0 -procs 8 -json BENCH_PR7.json
//
// Experiments: table1, table2, table3, fig7, fig8, fig9, fig10, fig11,
// dynamic (incremental updates vs rebuild), traceoverhead (span-protocol
// cost on a warm query: drop path vs retain path), loadvsbuild (durable-store
// restart cost: snapshot open + WAL replay vs cold build; with -json it
// emits the BENCH_PR3.json record), directed (bit-parallel directed
// engine vs the scalar reference and Di-Bi-BFS; with -json it emits the
// BENCH_PR4.json record), replication (routed read QPS at 1/2/4 WAL-
// shipped replicas under a MixedOps write stream; with -json it emits
// the BENCH_PR5.json record), ablation-traversal, ablation-parallel,
// ablation-landmarks, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"qbs/internal/bench"
	"qbs/internal/datasets"
	"qbs/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (table1|table2|table3|fig7|fig8|fig9|fig10|fig11|dynamic|traceoverhead|loadvsbuild|directed|replication|scaling|ablation-traversal|ablation-parallel|ablation-landmarks|all)")
		scale     = flag.Float64("scale", 0.25, "dataset scale factor (1.0 = DESIGN.md sizes)")
		queries   = flag.Int("queries", 1000, "number of sampled query pairs per dataset")
		landmarks = flag.Int("landmarks", 20, "number of landmarks |R| for single-point experiments")
		keys      = flag.String("datasets", "", "comma-separated dataset keys (default: all 12)")
		seed      = flag.Int64("seed", 2021, "workload sampling seed")
		pplBudget = flag.Duration("ppl-budget", 60*time.Second, "PPL/ParentPPL construction time budget (DNF beyond)")
		outPath   = flag.String("out", "", "write markdown to this file as well as stdout")
		jsonPath  = flag.String("json", "", "write a perf snapshot (build time, query p50/p99, allocs/op) to this JSON file and exit; see README \"Performance\"")
		procs     = flag.Int("procs", 0, "set GOMAXPROCS for the run (0 = leave at the Go default); recorded in snapshot JSON")
	)
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	cfg := bench.Config{
		Scale:           *scale,
		NumQueries:      *queries,
		NumLandmarks:    *landmarks,
		Seed:            *seed,
		PPLBudget:       *pplBudget,
		ParentPPLBudget: *pplBudget,
		Out:             out,
	}
	if *keys != "" {
		for _, k := range strings.Split(*keys, ",") {
			k = strings.TrimSpace(k)
			if _, err := datasets.ByKey(k); err != nil {
				fatal(err)
			}
			cfg.Datasets = append(cfg.Datasets, k)
		}
	}
	if *jsonPath != "" && *exp == "loadvsbuild" {
		// Persistence snapshot mode: the BENCH_PR3.json record (snapshot
		// open time, WAL replay rate, vs cold build).
		if len(cfg.Datasets) == 0 {
			cfg.Datasets = []string{"DO", "YT", "FR"}
		}
		t0 := time.Now()
		if err := bench.New(cfg).LoadVsBuildJSON(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadvsbuild snapshot written to %s in %s\n",
			*jsonPath, time.Since(t0).Round(time.Millisecond))
		return
	}
	if *jsonPath != "" && *exp == "directed" {
		// Directed snapshot mode: the BENCH_PR4.json record (bit-parallel
		// directed labelling vs scalar reference, warm query latency and
		// allocations, Di-Bi-BFS baseline).
		if len(cfg.Datasets) == 0 {
			cfg.Datasets = []string{"WK", "BA", "LJ"}
		}
		t0 := time.Now()
		if err := bench.New(cfg).DirectedTableJSON(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "directed snapshot written to %s in %s\n",
			*jsonPath, time.Since(t0).Round(time.Millisecond))
		return
	}
	if *jsonPath != "" && *exp == "replication" {
		// Replication snapshot mode: the BENCH_PR5.json record (routed
		// read QPS at 1/2/4 replicas under a MixedOps write stream).
		if len(cfg.Datasets) == 0 {
			cfg.Datasets = []string{"YT"}
		}
		t0 := time.Now()
		if err := bench.New(cfg).ReplicaScalingJSON(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "replication snapshot written to %s in %s\n",
			*jsonPath, time.Since(t0).Round(time.Millisecond))
		return
	}
	if *exp == "scaling" {
		// Scaling mode: the traverse pool width sweep (1/2/4/8 workers
		// across build, full-graph sweep, guided query and dynamic column
		// rebuild, with bit-identical verification at every width). With
		// -json it emits the BENCH_PR7.json record.
		if len(cfg.Datasets) == 0 {
			cfg.Datasets = []string{"YT", "OR", "FR"}
		}
		t0 := time.Now()
		h := bench.New(cfg)
		if *jsonPath != "" {
			if err := h.ScalingJSON(*jsonPath, nil); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "scaling snapshot written to %s in %s\n",
				*jsonPath, time.Since(t0).Round(time.Millisecond))
		} else if _, err := h.Scaling(nil); err != nil {
			fatal(err)
		} else {
			fmt.Fprintf(os.Stderr, "scaling done in %s\n", time.Since(t0).Round(time.Millisecond))
		}
		return
	}
	if *jsonPath != "" {
		// Snapshot mode: the machine-readable perf record tracked across
		// PRs (BENCH_PR2.json and successors). Default to the three
		// representative Table 2 analogs unless -datasets was given.
		if len(cfg.Datasets) == 0 {
			cfg.Datasets = []string{"DO", "YT", "FR"}
		}
		t0 := time.Now()
		snap, err := bench.New(cfg).Snapshot()
		if err != nil {
			fatal(err)
		}
		if err := snap.WriteJSON(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot (%d datasets) written to %s in %s\n",
			len(snap.Datasets), *jsonPath, time.Since(t0).Round(time.Millisecond))
		return
	}

	h := bench.New(cfg)

	fmt.Fprintf(out, "# QbS evaluation (scale=%.2f, queries=%d, |R|=%d)\n",
		*scale, *queries, *landmarks)
	start := time.Now()
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		t0 := time.Now()
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Fprintf(os.Stderr, "%s done in %s\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() error { _, err := h.Table1(); return err })
	run("table2", func() error { _, err := h.Table2(); return err })
	run("table3", func() error { _, err := h.Table3(); return err })
	run("fig7", func() error { _, err := h.Fig7(); return err })
	run("fig8", func() error { _, err := h.Fig8(nil); return err })
	run("fig9", func() error { _, err := h.Fig9(nil); return err })
	run("fig10", func() error { _, err := h.Fig10(nil); return err })
	run("fig11", func() error { _, err := h.Fig11(nil); return err })
	run("dynamic", func() error { _, err := h.DynamicUpdates(nil); return err })
	run("traceoverhead", func() error { _, err := h.TraceOverhead(); return err })
	run("loadvsbuild", func() error { _, err := h.LoadVsBuild(); return err })
	run("directed", func() error { _, err := h.DirectedTable(); return err })
	if *exp == "replication" {
		// Not part of -exp all: it stands up live HTTP topologies and
		// measures wall-clock throughput, which needs a quiet host.
		if len(cfg.Datasets) == 0 {
			h = bench.New(withDatasets(cfg, []string{"YT"}))
		}
		run("replication", func() error { _, err := h.ReplicaScaling(bench.ReplicaScalingConfig{}); return err })
	}
	run("ablation-traversal", func() error { _, err := h.AblationTraversal(); return err })
	run("ablation-scale", func() error { _, err := h.AblationScale(nil); return err })
	run("ablation-directed", func() error { _, err := h.AblationDirected(); return err })
	run("ablation-parallel", func() error { _, err := h.AblationParallel(nil); return err })
	run("ablation-landmarks", func() error { _, err := h.AblationLandmarks(); return err })

	fmt.Fprintf(os.Stderr, "total: %s\n", time.Since(start).Round(time.Millisecond))
}

func withDatasets(c bench.Config, ds []string) bench.Config {
	c.Datasets = ds
	return c
}

func fatal(err error) {
	obs.DefaultJournal.Def("process", "error", obs.LevelError).
		Emit(obs.Str("stage", "fatal"), obs.Str("error", err.Error()))
	fmt.Fprintln(os.Stderr, "qbs-bench:", err)
	os.Exit(1)
}
