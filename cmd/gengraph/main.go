// Command gengraph generates synthetic graphs — the Table 1 dataset
// analogs or parametric generator output — as edge-list or binary files.
//
// Usage:
//
//	gengraph -dataset TW -scale 0.5 -o twitter.edges
//	gengraph -gen ba -n 100000 -m 5 -seed 7 -o ba.bin -format binary
package main

import (
	"flag"
	"fmt"
	"os"

	"qbs/internal/datasets"
	"qbs/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset analog key (DO,DB,YT,WK,SK,BA,LJ,OR,TW,FR,UK,CW)")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor")
		gen     = flag.String("gen", "", "parametric generator: er|ba|ws|grid")
		n       = flag.Int("n", 10000, "vertex count (parametric generators)")
		m       = flag.Int("m", 3, "edges per vertex (ba), edge count (er), ring degree (ws), columns (grid)")
		beta    = flag.Float64("beta", 0.2, "rewiring probability (ws)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output path (default stdout, edge-list only)")
		format  = flag.String("format", "edges", "output format: edges|binary")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *dataset != "":
		spec, err := datasets.ByKey(*dataset)
		if err != nil {
			fatal(err)
		}
		g = spec.Generate(*scale)
	case *gen != "":
		switch *gen {
		case "er":
			g = graph.ErdosRenyi(*n, *m, *seed)
		case "ba":
			g = graph.BarabasiAlbert(*n, *m, *seed)
		case "ws":
			g = graph.WattsStrogatz(*n, *m, *beta, *seed)
		case "grid":
			g = graph.Grid(*n, *m)
		default:
			fatal(fmt.Errorf("unknown generator %q", *gen))
		}
		lc, _ := g.LargestComponent()
		g = lc
	default:
		fatal(fmt.Errorf("one of -dataset or -gen is required"))
	}

	st := graph.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "generated: |V|=%d |E|=%d maxdeg=%d avgdeg=%.2f\n",
		st.NumVertices, st.NumEdges, st.MaxDegree, st.AvgDegree)

	switch *format {
	case "edges":
		if *out == "" {
			if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
				fatal(err)
			}
			return
		}
		if err := graph.WriteEdgeListFile(*out, g); err != nil {
			fatal(err)
		}
	case "binary":
		if *out == "" {
			fatal(fmt.Errorf("-format binary requires -o"))
		}
		if err := graph.WriteBinaryFile(*out, g); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
