package qbs_test

import (
	"math/rand"
	"sync"
	"testing"

	"qbs"
	"qbs/internal/graph"
)

func TestDirectedPublicAPI(t *testing.T) {
	b := qbs.NewDiBuilder(5)
	b.AddArc(0, 1)
	b.AddArc(1, 4)
	b.AddArc(0, 2)
	b.AddArc(2, 4)
	b.AddArc(4, 3) // continues past the target
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := qbs.BuildDiIndex(g, qbs.DiOptions{NumLandmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	spg := ix.Query(0, 4)
	if spg.Dist != 2 || spg.NumArcs() != 4 {
		t.Fatalf("directed diamond: %v", spg)
	}
	// Reverse direction is unreachable.
	if rev := ix.Query(4, 0); rev.Dist != qbs.InfDist {
		t.Fatalf("reverse must be unreachable: %v", rev)
	}
}

func TestDirectedIndexMatchesOracleAndBaseline(t *testing.T) {
	g := graph.DirectedScaleFree(400, 3, 41)
	ix := qbs.MustBuildDiIndex(g, qbs.DiOptions{NumLandmarks: 16})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 120; i++ {
		u := qbs.V(rng.Intn(g.NumVertices()))
		v := qbs.V(rng.Intn(g.NumVertices()))
		want := qbs.OracleDiSPG(g, u, v)
		if got := ix.Query(u, v); !got.Equal(want) {
			t.Fatalf("DiIndex(%d,%d) != oracle", u, v)
		}
		if got := qbs.DiBiBFS(g, u, v); !got.Equal(want) {
			t.Fatalf("DiBiBFS(%d,%d) != oracle", u, v)
		}
	}
}

func TestDirectedConcurrentQueries(t *testing.T) {
	g := graph.DirectedErdosRenyi(300, 1500, 8)
	ix := qbs.MustBuildDiIndex(g, qbs.DiOptions{NumLandmarks: 10})
	type pair struct{ u, v qbs.V }
	rng := rand.New(rand.NewSource(3))
	pairs := make([]pair, 64)
	want := make([]*qbs.DiSPG, len(pairs))
	for i := range pairs {
		pairs[i] = pair{qbs.V(rng.Intn(300)), qbs.V(rng.Intn(300))}
		want[i] = qbs.OracleDiSPG(g, pairs[i].u, pairs[i].v)
	}
	var wg sync.WaitGroup
	errs := make(chan int, len(pairs))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pairs); i += 8 {
				if !ix.Query(pairs[i].u, pairs[i].v).Equal(want[i]) {
					errs <- i
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for i := range errs {
		t.Fatalf("concurrent directed query %d mismatched", i)
	}
}

func TestAsDirectedRoundTrip(t *testing.T) {
	ug := graph.Cycle(9)
	dg := qbs.AsDirected(ug)
	if dg.NumArcs() != 2*ug.NumEdges() {
		t.Fatalf("arcs = %d, want %d", dg.NumArcs(), 2*ug.NumEdges())
	}
	ix := qbs.MustBuildDiIndex(dg, qbs.DiOptions{NumLandmarks: 3})
	spg := ix.Query(0, 4)
	if spg.Dist != 4 {
		t.Fatalf("cycle distance = %d", spg.Dist)
	}
}
