package qbs_test

import (
	"math/rand"
	"sync"
	"testing"

	"qbs"
	"qbs/internal/graph"
)

func TestDirectedPublicAPI(t *testing.T) {
	b := qbs.NewDiBuilder(5)
	b.AddArc(0, 1)
	b.AddArc(1, 4)
	b.AddArc(0, 2)
	b.AddArc(2, 4)
	b.AddArc(4, 3) // continues past the target
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := qbs.BuildDiIndex(g, qbs.DiOptions{NumLandmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	spg := ix.Query(0, 4)
	if spg.Dist != 2 || spg.NumArcs() != 4 {
		t.Fatalf("directed diamond: %v", spg)
	}
	// Reverse direction is unreachable.
	if rev := ix.Query(4, 0); rev.Dist != qbs.InfDist {
		t.Fatalf("reverse must be unreachable: %v", rev)
	}
}

func TestDirectedIndexMatchesOracleAndBaseline(t *testing.T) {
	g := graph.DirectedScaleFree(400, 3, 41)
	ix := qbs.MustBuildDiIndex(g, qbs.DiOptions{NumLandmarks: 16})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 120; i++ {
		u := qbs.V(rng.Intn(g.NumVertices()))
		v := qbs.V(rng.Intn(g.NumVertices()))
		want := qbs.OracleDiSPG(g, u, v)
		if got := ix.Query(u, v); !got.Equal(want) {
			t.Fatalf("DiIndex(%d,%d) != oracle", u, v)
		}
		if got := qbs.DiBiBFS(g, u, v); !got.Equal(want) {
			t.Fatalf("DiBiBFS(%d,%d) != oracle", u, v)
		}
	}
}

func TestDirectedConcurrentQueries(t *testing.T) {
	g := graph.DirectedErdosRenyi(300, 1500, 8)
	ix := qbs.MustBuildDiIndex(g, qbs.DiOptions{NumLandmarks: 10})
	type pair struct{ u, v qbs.V }
	rng := rand.New(rand.NewSource(3))
	pairs := make([]pair, 64)
	want := make([]*qbs.DiSPG, len(pairs))
	for i := range pairs {
		pairs[i] = pair{qbs.V(rng.Intn(300)), qbs.V(rng.Intn(300))}
		want[i] = qbs.OracleDiSPG(g, pairs[i].u, pairs[i].v)
	}
	var wg sync.WaitGroup
	errs := make(chan int, len(pairs))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pairs); i += 8 {
				if !ix.Query(pairs[i].u, pairs[i].v).Equal(want[i]) {
					errs <- i
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for i := range errs {
		t.Fatalf("concurrent directed query %d mismatched", i)
	}
}

func TestAsDirectedRoundTrip(t *testing.T) {
	ug := graph.Cycle(9)
	dg := qbs.AsDirected(ug)
	if dg.NumArcs() != 2*ug.NumEdges() {
		t.Fatalf("arcs = %d, want %d", dg.NumArcs(), 2*ug.NumEdges())
	}
	ix := qbs.MustBuildDiIndex(dg, qbs.DiOptions{NumLandmarks: 3})
	spg := ix.Query(0, 4)
	if spg.Dist != 4 {
		t.Fatalf("cycle distance = %d", spg.Dist)
	}
}

// TestDiDistanceAndQueryIntoMatchOracle covers the grown serving
// surface: Distance and the reusable-result QueryInto must agree with
// the brute-force oracle.
func TestDiDistanceAndQueryIntoMatchOracle(t *testing.T) {
	g := graph.DirectedScaleFree(350, 3, 59)
	ix := qbs.MustBuildDiIndex(g, qbs.DiOptions{NumLandmarks: 14})
	spg := graph.NewDiSPG(0, 0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 120; i++ {
		u := qbs.V(rng.Intn(g.NumVertices()))
		v := qbs.V(rng.Intn(g.NumVertices()))
		want := qbs.OracleDiSPG(g, u, v)
		if got := ix.QueryInto(spg, u, v); !got.Equal(want) {
			t.Fatalf("QueryInto(%d,%d) != oracle", u, v)
		}
		if d := ix.Distance(u, v); d != want.Dist {
			t.Fatalf("Distance(%d,%d) = %d, want %d", u, v, d, want.Dist)
		}
	}
}

// TestDiQueryBatchMatchesOracle runs batches against the oracle —
// including an index with more landmarks than one 64-way engine sweep
// carries, so the multi-batch labelling path serves real queries.
func TestDiQueryBatchMatchesOracle(t *testing.T) {
	for _, R := range []int{12, 80} {
		g := graph.DirectedScaleFree(300, 3, int64(R))
		ix := qbs.MustBuildDiIndex(g, qbs.DiOptions{NumLandmarks: R})
		rng := rand.New(rand.NewSource(int64(R) * 3))
		pairs := make([]qbs.Pair, 96)
		for i := range pairs {
			pairs[i] = qbs.Pair{U: qbs.V(rng.Intn(g.NumVertices())), V: qbs.V(rng.Intn(g.NumVertices()))}
		}
		out := ix.QueryBatch(pairs, 4)
		if len(out) != len(pairs) {
			t.Fatalf("R=%d: %d results for %d pairs", R, len(out), len(pairs))
		}
		for i, spg := range out {
			if spg == nil {
				t.Fatalf("R=%d: result %d missing", R, i)
			}
			if want := qbs.OracleDiSPG(g, pairs[i].U, pairs[i].V); !spg.Equal(want) {
				t.Fatalf("R=%d: batch result %d != oracle", R, i)
			}
		}
	}
}

// TestDiQueryBatchRecoversFromPanic mirrors the undirected contract: a
// poisoned pair loses only its own slot.
func TestDiQueryBatchRecoversFromPanic(t *testing.T) {
	g := graph.DirectedScaleFree(200, 3, 67)
	ix := qbs.MustBuildDiIndex(g, qbs.DiOptions{NumLandmarks: 8})
	rng := rand.New(rand.NewSource(5))
	batch := make([]qbs.Pair, 48)
	for i := range batch {
		batch[i] = qbs.Pair{U: qbs.V(rng.Intn(200)), V: qbs.V(rng.Intn(200))}
	}
	poisonA, poisonB := 3, 30
	batch[poisonA] = qbs.Pair{U: -1, V: 0}
	batch[poisonB] = qbs.Pair{U: 0, V: qbs.V(g.NumVertices() + 9)}
	out := ix.QueryBatch(batch, 4)
	for i, spg := range out {
		if i == poisonA || i == poisonB {
			if spg != nil {
				t.Fatalf("poisoned pair %d returned a result", i)
			}
			continue
		}
		if spg == nil {
			t.Fatalf("healthy pair %d lost its result", i)
		}
		if want := ix.Query(batch[i].U, batch[i].V); !spg.Equal(want) {
			t.Fatalf("pair %d: batch result differs from direct query", i)
		}
	}
}

// TestDiStorePublicRoundTrip covers CreateDiStore/OpenDiStore: the
// reopened index answers every query identically and DiStoreExists
// tracks the directory state.
func TestDiStorePublicRoundTrip(t *testing.T) {
	g := graph.DirectedScaleFree(300, 3, 71)
	dir := t.TempDir()
	if qbs.DiStoreExists(dir) {
		t.Fatal("empty dir reports a store")
	}
	ix, err := qbs.CreateDiStore(dir, g, qbs.DiStoreOptions{Index: qbs.DiOptions{NumLandmarks: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !qbs.DiStoreExists(dir) {
		t.Fatal("DiStoreExists false after create")
	}
	re, err := qbs.OpenDiStore(dir, qbs.DiStoreOptions{MMap: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 80; i++ {
		u := qbs.V(rng.Intn(g.NumVertices()))
		v := qbs.V(rng.Intn(g.NumVertices()))
		want := qbs.OracleDiSPG(g, u, v)
		if !ix.Query(u, v).Equal(want) || !re.Query(u, v).Equal(want) {
			t.Fatalf("store round trip diverges on (%d,%d)", u, v)
		}
	}
	if _, err := qbs.CreateDiStore(dir, g, qbs.DiStoreOptions{}); err == nil {
		t.Fatal("second CreateDiStore succeeded")
	}
}
