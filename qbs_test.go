package qbs_test

import (
	"math/rand"
	"sync"
	"testing"

	"qbs"
	"qbs/internal/datasets"
	"qbs/internal/graph"
	"qbs/internal/workload"
)

func testGraph() *qbs.Graph {
	g := graph.BarabasiAlbert(400, 3, 42)
	lc, _ := g.LargestComponent()
	return lc
}

func TestPublicAPIQuickstart(t *testing.T) {
	b := qbs.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.AddEdge(3, 2)
	b.AddEdge(2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	spg := ix.Query(0, 4)
	if spg.Dist != 3 {
		t.Fatalf("dist = %d, want 3", spg.Dist)
	}
	// Two shortest paths: 0-1-2-4 and 0-3-2-4 → 5 distinct edges.
	if spg.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5", spg.NumEdges())
	}
}

func TestIndexMatchesOracleAndBiBFS(t *testing.T) {
	g := testGraph()
	ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 16})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		u := qbs.V(rng.Intn(g.NumVertices()))
		v := qbs.V(rng.Intn(g.NumVertices()))
		want := qbs.OracleSPG(g, u, v)
		if got := ix.Query(u, v); !got.Equal(want) {
			t.Fatalf("Query(%d,%d) != oracle", u, v)
		}
		if got := qbs.BiBFS(g, u, v); !got.Equal(want) {
			t.Fatalf("BiBFS(%d,%d) != oracle", u, v)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := testGraph()
	ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 12})
	pairs := workload.SamplePairs(g, 64, 9)
	want := make([]*qbs.SPG, len(pairs))
	for i, p := range pairs {
		want[i] = qbs.OracleSPG(g, p.U, p.V)
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(pairs))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pairs); i += 8 {
				if got := ix.Query(pairs[i].U, pairs[i].V); !got.Equal(want[i]) {
					errs <- got.String()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent query mismatch: %s", e)
	}
}

func TestStrategies(t *testing.T) {
	g := testGraph()
	for _, s := range []qbs.Strategy{qbs.StrategyDegree, qbs.StrategyRandom, qbs.StrategyCoverage, qbs.StrategyBetweenness} {
		ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 8, Strategy: s, Seed: 4})
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 40; i++ {
			u := qbs.V(rng.Intn(g.NumVertices()))
			v := qbs.V(rng.Intn(g.NumVertices()))
			if !ix.Query(u, v).Equal(qbs.OracleSPG(g, u, v)) {
				t.Fatalf("strategy %s: wrong answer for (%d,%d)", s, u, v)
			}
		}
		if len(ix.Landmarks()) != 8 {
			t.Fatalf("strategy %s: %d landmarks", s, len(ix.Landmarks()))
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	g := testGraph()
	ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 10})
	st := ix.Stats()
	if st.NumLandmarks != 10 || st.LabelEntries <= 0 || st.TotalTime <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if ix.SizeLabelsBytes() != int64(g.NumVertices())*10 {
		t.Fatal("size(L) accounting")
	}
	if ix.SizeDeltaBytes() < 0 {
		t.Fatal("size(Δ) negative")
	}
}

func TestDatasetAnalogsSmallScale(t *testing.T) {
	// Exercise every Table 1 analog end-to-end at a tiny scale.
	for _, spec := range datasets.All() {
		spec := spec
		t.Run(spec.Key, func(t *testing.T) {
			t.Parallel()
			g := spec.Generate(0.02)
			ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 8})
			for _, p := range workload.SamplePairs(g, 15, 5) {
				if !ix.Query(p.U, p.V).Equal(qbs.OracleSPG(g, p.U, p.V)) {
					t.Fatalf("%s: wrong SPG(%d,%d)", spec.Key, p.U, p.V)
				}
			}
		})
	}
}

func TestSketchExposed(t *testing.T) {
	g := testGraph()
	ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 6})
	sk := ix.Sketch(1, 2)
	if sk.DTop < ix.Distance(1, 2) {
		t.Fatal("sketch bound below true distance")
	}
	if len(sk.Pairs) == 0 && sk.DTop != qbs.InfDist {
		t.Fatal("finite bound without minimizing pairs")
	}
}

func TestQueryBatch(t *testing.T) {
	g := testGraph()
	ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 10})
	var pairs []qbs.Pair
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 100; i++ {
		pairs = append(pairs, qbs.Pair{U: qbs.V(rng.Intn(g.NumVertices())), V: qbs.V(rng.Intn(g.NumVertices()))})
	}
	for _, par := range []int{0, 1, 4} {
		got := ix.QueryBatch(pairs, par)
		if len(got) != len(pairs) {
			t.Fatalf("parallelism %d: %d results", par, len(got))
		}
		for i, p := range pairs {
			if !got[i].Equal(qbs.OracleSPG(g, p.U, p.V)) {
				t.Fatalf("parallelism %d: batch result %d wrong", par, i)
			}
		}
	}
	if res := ix.QueryBatch(nil, 4); len(res) != 0 {
		t.Fatal("empty batch must return empty results")
	}
}
