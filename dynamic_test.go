package qbs_test

import (
	"math/rand"
	"sync"
	"testing"

	"qbs"
)

// shadowGraph mirrors the dynamic index's edge set so tests can
// materialise ground truth at any point.
type shadowGraph struct {
	n     int
	edges map[qbs.Edge]bool
}

func newShadow(g *qbs.Graph) *shadowGraph {
	s := &shadowGraph{n: g.NumVertices(), edges: map[qbs.Edge]bool{}}
	for _, e := range g.Edges() {
		s.edges[e] = true
	}
	return s
}

func (s *shadowGraph) apply(u, v qbs.V, insert bool) {
	e := qbs.Edge{U: u, W: v}.Normalize()
	if insert {
		s.edges[e] = true
	} else {
		delete(s.edges, e)
	}
}

func (s *shadowGraph) materialize() *qbs.Graph {
	es := make([]qbs.Edge, 0, len(s.edges))
	for e := range s.edges {
		es = append(es, e)
	}
	g, err := qbs.FromEdges(s.n, es)
	if err != nil {
		panic(err)
	}
	return g
}

func randomSeedGraph(n int, extra int, rng *rand.Rand) *qbs.Graph {
	b := qbs.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(qbs.V(v), qbs.V(rng.Intn(v)))
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(qbs.V(u), qbs.V(v))
		}
	}
	return b.MustBuild()
}

// TestDynamicIndexMatchesOracle is the acceptance property test: across
// ≥1000 random update sequences, every sampled Query(u, v) on the
// mutated graph must equal the brute-force oracle, and at the end of
// each sequence the dynamic index must agree with a freshly built static
// index over the same landmarks.
func TestDynamicIndexMatchesOracle(t *testing.T) {
	const sequences = 1000
	rng := rand.New(rand.NewSource(20210615))
	for seq := 0; seq < sequences; seq++ {
		n := 16 + rng.Intn(33)
		g := randomSeedGraph(n, rng.Intn(2*n), rng)
		shadow := newShadow(g)
		opts := qbs.DynamicOptions{
			Index:           qbs.Options{NumLandmarks: 1 + rng.Intn(5), Strategy: qbs.StrategyDegree},
			CompactFraction: -1,
		}
		switch seq % 3 {
		case 1:
			opts.RepairBudget = 1 // force the re-BFS fallback on deletions
		case 2:
			opts.CompactFraction = 0.3 // let async compaction kick in
		}
		di, err := qbs.BuildDynamicIndex(g, opts)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		ops := 8 + rng.Intn(18)
		for op := 0; op < ops; op++ {
			u := qbs.V(rng.Intn(n))
			v := qbs.V(rng.Intn(n))
			if u == v {
				continue
			}
			insert := !di.HasEdge(u, v)
			var changed bool
			if insert {
				changed, err = di.AddEdge(u, v)
			} else {
				changed, err = di.RemoveEdge(u, v)
			}
			if err != nil {
				t.Fatalf("seq %d op %d {%d,%d}: %v", seq, op, u, v, err)
			}
			if !changed {
				t.Fatalf("seq %d op %d {%d,%d}: update reported no change", seq, op, u, v)
			}
			shadow.apply(u, v, insert)
			mat := shadow.materialize()
			for q := 0; q < 2; q++ {
				a := qbs.V(rng.Intn(n))
				b := qbs.V(rng.Intn(n))
				got := di.Query(a, b)
				want := qbs.OracleSPG(mat, a, b)
				if !got.Equal(want) {
					t.Fatalf("seq %d op %d: query (%d,%d) dist %d want %d\n got %v\n want %v",
						seq, op, a, b, got.Dist, want.Dist, got, want)
				}
			}
		}
		di.WaitCompaction()
		// End of sequence: full agreement with a fresh static build.
		mat := shadow.materialize()
		fresh, err := qbs.BuildIndex(mat, qbs.Options{Landmarks: di.Landmarks()})
		if err != nil {
			t.Fatalf("seq %d: fresh build: %v", seq, err)
		}
		for q := 0; q < 12; q++ {
			a := qbs.V(rng.Intn(n))
			b := qbs.V(rng.Intn(n))
			if got, want := di.Query(a, b), fresh.Query(a, b); !got.Equal(want) {
				t.Fatalf("seq %d: dynamic vs fresh (%d,%d): dist %d want %d", seq, a, b, got.Dist, want.Dist)
			}
		}
	}
}

// TestDynamicIndexEpochAndStats pins the observability surface.
func TestDynamicIndexEpochAndStats(t *testing.T) {
	g := randomSeedGraph(40, 40, rand.New(rand.NewSource(3)))
	di, err := qbs.BuildDynamicIndex(g, qbs.DynamicOptions{
		Index:           qbs.Options{NumLandmarks: 4},
		CompactFraction: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if di.Epoch() != 0 {
		t.Fatalf("initial epoch = %d, want 0", di.Epoch())
	}
	if di.NumVertices() != 40 {
		t.Fatalf("NumVertices = %d", di.NumVertices())
	}
	before := di.NumEdges()
	changed, err := di.AddEdge(0, 39)
	if err != nil {
		t.Fatal(err)
	}
	wantEpoch := uint64(0)
	if changed {
		wantEpoch = 1
		if di.NumEdges() != before+1 {
			t.Fatalf("NumEdges = %d, want %d", di.NumEdges(), before+1)
		}
	}
	if di.Epoch() != wantEpoch {
		t.Fatalf("epoch = %d, want %d", di.Epoch(), wantEpoch)
	}
	st := di.DynamicStats()
	if st.Inserts != wantEpoch {
		t.Fatalf("stats inserts = %d, want %d", st.Inserts, wantEpoch)
	}
	if di.SizeLabelsBytes() <= 0 {
		t.Fatal("SizeLabelsBytes not positive")
	}
}

// TestDynamicIndexConcurrent hammers lock-free reads during a stream of
// writes (run with -race in CI). Readers must always see a coherent
// snapshot; afterwards the final state must match the oracle.
func TestDynamicIndexConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 120
	g := randomSeedGraph(n, 2*n, rng)
	shadow := newShadow(g)
	di, err := qbs.BuildDynamicIndex(g, qbs.DynamicOptions{
		Index:           qbs.Options{NumLandmarks: 6},
		CompactFraction: 0.05, // force async compactions mid-run
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			pairs := make([]qbs.Pair, 16)
			for {
				select {
				case <-done:
					return
				default:
				}
				u := qbs.V(rr.Intn(n))
				v := qbs.V(rr.Intn(n))
				spg := di.Query(u, v)
				if d := di.Distance(u, v); spg == nil || (spg.Dist >= 0) == false || d < 0 {
					t.Error("incoherent read")
					return
				}
				for i := range pairs {
					pairs[i] = qbs.Pair{U: qbs.V(rr.Intn(n)), V: qbs.V(rr.Intn(n))}
				}
				for _, s := range di.QueryBatch(pairs, 2) {
					if s == nil {
						t.Error("nil batch result")
						return
					}
				}
			}
		}(int64(r) + 1)
	}

	for op := 0; op < 400; op++ {
		u := qbs.V(rng.Intn(n))
		v := qbs.V(rng.Intn(n))
		if u == v {
			continue
		}
		insert := !di.HasEdge(u, v)
		var changed bool
		if insert {
			changed, err = di.AddEdge(u, v)
		} else {
			changed, err = di.RemoveEdge(u, v)
		}
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if changed {
			shadow.apply(u, v, insert)
		}
	}
	close(done)
	wg.Wait()
	di.WaitCompaction()

	mat := shadow.materialize()
	for q := 0; q < 50; q++ {
		a := qbs.V(rng.Intn(n))
		b := qbs.V(rng.Intn(n))
		got := di.Query(a, b)
		want := qbs.OracleSPG(mat, a, b)
		if !got.Equal(want) {
			t.Fatalf("after concurrent run: query (%d,%d) dist %d want %d", a, b, got.Dist, want.Dist)
		}
	}
}
