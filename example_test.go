package qbs_test

import (
	"fmt"

	"qbs"
)

// The diamond graph: two shortest 0→4 routes through 1 and 3.
func diamondGraph() *qbs.Graph {
	b := qbs.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.AddEdge(3, 2)
	b.AddEdge(2, 4)
	return b.MustBuild()
}

func ExampleBuildIndex() {
	g := diamondGraph()
	index, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: 2})
	if err != nil {
		panic(err)
	}
	spg := index.Query(0, 4)
	fmt.Println("distance:", spg.Dist)
	fmt.Println("edges:", len(spg.Edges()))
	// Output:
	// distance: 3
	// edges: 5
}

func ExampleIndex_QueryWithStats() {
	g := diamondGraph()
	index := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 1})
	spg, stats := index.QueryWithStats(0, 2)
	fmt.Println("distance:", spg.Dist)
	fmt.Println("sketch bound:", stats.DTop)
	fmt.Println("both paths found:", spg.NumEdges() == 4)
	// Output:
	// distance: 2
	// sketch bound: 2
	// both paths found: true
}

func ExampleIndex_Distance() {
	g := diamondGraph()
	index := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 2})
	fmt.Println(index.Distance(0, 4))
	fmt.Println(index.Distance(4, 4))
	// Output:
	// 3
	// 0
}

func ExampleBiBFS() {
	g := diamondGraph()
	spg := qbs.BiBFS(g, 0, 2)
	fmt.Println("distance:", spg.Dist)
	fmt.Println("vertices:", spg.Vertices())
	// Output:
	// distance: 2
	// vertices: [0 1 2 3]
}

func ExampleBuildDiIndex() {
	b := qbs.NewDiBuilder(4)
	b.AddArc(0, 1)
	b.AddArc(1, 3)
	b.AddArc(0, 2)
	b.AddArc(2, 3)
	b.AddArc(3, 0) // cycle back
	g, _ := b.Build()

	index, err := qbs.BuildDiIndex(g, qbs.DiOptions{NumLandmarks: 1})
	if err != nil {
		panic(err)
	}
	fwd := index.Query(0, 3)
	bwd := index.Query(3, 0)
	fmt.Println("forward:", fwd.Dist, "arcs:", fwd.NumArcs())
	fmt.Println("backward:", bwd.Dist, "arcs:", bwd.NumArcs())
	// Output:
	// forward: 2 arcs: 4
	// backward: 1 arcs: 1
}

func ExampleIndex_QueryBatch() {
	g := diamondGraph()
	index := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 2})
	results := index.QueryBatch([]qbs.Pair{{U: 0, V: 4}, {U: 1, V: 3}}, 2)
	for _, spg := range results {
		fmt.Println(spg.Dist)
	}
	// Output:
	// 3
	// 2
}

func ExampleBuildDynamicIndex() {
	g := diamondGraph()
	di, err := qbs.BuildDynamicIndex(g, qbs.DynamicOptions{
		Index: qbs.Options{NumLandmarks: 2},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("distance:", di.Query(0, 4).Dist)

	// Insert a shortcut: the index repairs itself incrementally and the
	// next query sees the new snapshot.
	if _, err := di.AddEdge(0, 4); err != nil {
		panic(err)
	}
	fmt.Println("after insert:", di.Query(0, 4).Dist)

	// Remove it again: deletion repair restores the old answers.
	if _, err := di.RemoveEdge(0, 4); err != nil {
		panic(err)
	}
	fmt.Println("after delete:", di.Query(0, 4).Dist)
	fmt.Println("epoch:", di.Epoch())
	// Output:
	// distance: 3
	// after insert: 1
	// after delete: 3
	// epoch: 2
}
