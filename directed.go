package qbs

import (
	"sync"

	"qbs/internal/bfs"
	"qbs/internal/dcore"
	"qbs/internal/graph"
	"qbs/internal/store"
)

// Directed API: the paper's §2 extension to directed graphs, answering
// SPG(u → v) — the union of all shortest *directed* paths. See
// internal/dcore for the construction. The directed index carries the
// full serving surface of the undirected one — Distance, zero-alloc
// QueryInto, panic-isolated QueryBatch, Sketch, Stats — plus snapshot
// persistence via CreateDiStore/OpenDiStore.

type (
	// Arc is a directed edge From → To.
	Arc = graph.Arc
	// DiGraph is an immutable directed graph (dual CSR).
	DiGraph = graph.DiGraph
	// DiBuilder accumulates arcs and produces a DiGraph.
	DiBuilder = graph.DiBuilder
	// DiSPG is a directed shortest path graph.
	DiSPG = graph.DiSPG
	// DiSketch is the directed per-query summary structure.
	DiSketch = dcore.Sketch
	// DiIndexStats reports directed construction cost and size accounting.
	DiIndexStats = dcore.BuildStats
	// DiQueryStats reports directed per-query internals (distance, d⊤).
	DiQueryStats = dcore.QueryStats
)

// NewDiBuilder creates a directed-graph builder over n vertices.
func NewDiBuilder(n int) *DiBuilder { return graph.NewDiBuilder(n) }

// DiFromArcs builds a digraph from an arc list.
func DiFromArcs(n int, arcs []Arc) (*DiGraph, error) { return graph.DiFromArcs(n, arcs) }

// AsDirected converts an undirected graph to a digraph with both arc
// directions.
func AsDirected(g *Graph) *DiGraph { return graph.AsDirected(g) }

// LoadDiEdgeListFile reads a whitespace-separated edge list as directed
// arcs ('#'/'%' comments, ids densified); unlike LoadEdgeListFile it
// does not symmetrise. It returns the digraph and the original ids of
// the densified vertices.
func LoadDiEdgeListFile(path string) (*DiGraph, []int64, error) {
	return graph.ReadDiEdgeListFile(path)
}

// DiOptions configures BuildDiIndex.
type DiOptions struct {
	// NumLandmarks is |R| (default 20). Landmarks are the top vertices
	// by total (in+out) degree unless overridden.
	NumLandmarks int
	// Landmarks overrides selection.
	Landmarks []V
	// Parallelism bounds labelling workers (0 = GOMAXPROCS).
	Parallelism int
}

// DiIndex is an immutable directed QbS index; safe for concurrent
// queries.
type DiIndex struct {
	core *dcore.Index
	pool sync.Pool
}

func newDiIndex(cix *dcore.Index) *DiIndex {
	ix := &DiIndex{core: cix}
	ix.pool.New = func() any { return dcore.NewSearcher(cix) }
	return ix
}

// BuildDiIndex constructs a directed QbS index over g.
func BuildDiIndex(g *DiGraph, opts DiOptions) (*DiIndex, error) {
	cix, err := dcore.Build(g, dcore.Options{
		NumLandmarks: opts.NumLandmarks,
		Landmarks:    opts.Landmarks,
		Parallelism:  opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return newDiIndex(cix), nil
}

// MustBuildDiIndex is BuildDiIndex that panics on error.
func MustBuildDiIndex(g *DiGraph, opts DiOptions) *DiIndex {
	ix, err := BuildDiIndex(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}

// Query answers the directed SPG(u → v).
func (ix *DiIndex) Query(u, v V) *DiSPG {
	sr := ix.pool.Get().(*dcore.Searcher)
	defer ix.pool.Put(sr)
	return sr.Query(u, v)
}

// QueryInto answers SPG(u → v) into a caller-owned result, resetting it
// first, and returns dst. Reusing one DiSPG across queries keeps the
// warm query path free of heap allocations (the arc buffer is recycled
// at its high-water mark); serving loops that answer-and-encode should
// prefer it over Query.
func (ix *DiIndex) QueryInto(dst *DiSPG, u, v V) *DiSPG {
	sr := ix.pool.Get().(*dcore.Searcher)
	defer ix.pool.Put(sr)
	sr.QueryInto(dst, u, v)
	return dst
}

// QueryWithStats answers SPG(u → v) and reports query internals.
func (ix *DiIndex) QueryWithStats(u, v V) (*DiSPG, DiQueryStats) {
	sr := ix.pool.Get().(*dcore.Searcher)
	defer ix.pool.Put(sr)
	return sr.QueryWithStats(u, v)
}

// Distance returns d_G(u → v) using the sketch-guided search without
// path extraction (InfDist when v is unreachable from u).
func (ix *DiIndex) Distance(u, v V) int32 {
	sr := ix.pool.Get().(*dcore.Searcher)
	defer ix.pool.Put(sr)
	return sr.Distance(u, v)
}

// Sketch computes the directed query sketch S_{u→v} (for introspection;
// Query computes it internally).
func (ix *DiIndex) Sketch(u, v V) *DiSketch { return ix.core.Sketch(u, v) }

// QueryBatch answers many directed queries concurrently with up to
// parallelism workers (0 = GOMAXPROCS, capped at the batch size).
// Results align with the input slice. Each worker draws a searcher from
// the index's pool and answers into per-chunk result arenas, so
// repeated batches reuse workspaces and steady-state queries stay off
// the allocator.
//
// A query that panics (e.g. an out-of-range vertex id) does not bring
// the batch down: its slot is left nil and all remaining results are
// returned.
func (ix *DiIndex) QueryBatch(pairs []Pair, parallelism int) []*DiSPG {
	out := make([]*DiSPG, len(pairs))
	dcore.QueryBatchInto(out, parallelism,
		func(i int) (V, V) { return pairs[i].U, pairs[i].V },
		func() *dcore.Searcher { return ix.pool.Get().(*dcore.Searcher) },
		func(sr *dcore.Searcher) { ix.pool.Put(sr) })
	return out
}

// Landmarks returns the landmark vertices in rank order.
func (ix *DiIndex) Landmarks() []V { return ix.core.Landmarks() }

// IsLandmark reports whether v is a landmark.
func (ix *DiIndex) IsLandmark(v V) bool { return ix.core.IsLandmark(v) }

// Stats returns construction statistics.
func (ix *DiIndex) Stats() DiIndexStats { return ix.core.Stats() }

// SizeLabelsBytes is the size(L) accounting: 2·|R| bytes per vertex
// (two directed labellings).
func (ix *DiIndex) SizeLabelsBytes() int64 { return ix.core.SizeLabelsBytes() }

// SizeDeltaBytes is the size(Δ) accounting: 8 bytes per precomputed
// meta-arc shortest-path arc.
func (ix *DiIndex) SizeDeltaBytes() int64 { return ix.core.SizeDeltaBytes() }

// Graph returns the indexed digraph.
func (ix *DiIndex) Graph() *DiGraph { return ix.core.Graph() }

// DiStoreOptions configures CreateDiStore and OpenDiStore.
type DiStoreOptions struct {
	// Index carries the construction settings used by CreateDiStore;
	// OpenDiStore ignores it — the landmark set is part of the persisted
	// snapshot.
	Index DiOptions
	// MMap maps the snapshot read-only instead of reading it into memory
	// — the fastest open path; the mapping lives until process exit.
	MMap bool
}

// CreateDiStore builds a directed index over g (costing one
// BuildDiIndex) and persists it into dir as a single checksummed
// snapshot (format v4: dual CSR, directed labels, σ and Δ). The
// directed index is immutable, so there is no write-ahead log — the
// snapshot is the whole store. dir must not already contain one.
func CreateDiStore(dir string, g *DiGraph, opts DiStoreOptions) (*DiIndex, error) {
	ix, err := BuildDiIndex(g, opts.Index)
	if err != nil {
		return nil, err
	}
	if err := store.CreateDi(dir, ix.core.Persistent()); err != nil {
		return nil, err
	}
	return ix, nil
}

// OpenDiStore recovers the directed index persisted in dir without
// recomputation: the dual CSR, both label matrices, σ and Δ are adopted
// zero-copy from the validated file arena, and only the O(|R|³) meta
// state is rebuilt. Opening is typically orders of magnitude faster
// than rebuilding.
func OpenDiStore(dir string, opts DiStoreOptions) (*DiIndex, error) {
	cix, err := store.OpenDi(dir, opts.MMap)
	if err != nil {
		return nil, err
	}
	return newDiIndex(cix), nil
}

// DiStoreExists reports whether dir already contains a directed store.
func DiStoreExists(dir string) bool { return store.DiExists(dir) }

// DiBiBFS answers the directed SPG(u → v) by bidirectional BFS — the
// index-free baseline.
func DiBiBFS(g *DiGraph, u, v V) *DiSPG {
	s := bfs.NewDiBidirectional(g)
	spg, _ := s.Query(u, v)
	return spg
}

// OracleDiSPG computes the directed SPG by two full BFS sweeps
// (reference implementation for testing).
func OracleDiSPG(g *DiGraph, u, v V) *DiSPG { return bfs.OracleDiSPG(g, u, v) }
