package qbs

import (
	"sync"

	"qbs/internal/bfs"
	"qbs/internal/dcore"
	"qbs/internal/graph"
)

// Directed API: the paper's §2 extension to directed graphs, answering
// SPG(u → v) — the union of all shortest *directed* paths. See
// internal/dcore for the construction.

type (
	// Arc is a directed edge From → To.
	Arc = graph.Arc
	// DiGraph is an immutable directed graph (dual CSR).
	DiGraph = graph.DiGraph
	// DiBuilder accumulates arcs and produces a DiGraph.
	DiBuilder = graph.DiBuilder
	// DiSPG is a directed shortest path graph.
	DiSPG = graph.DiSPG
)

// NewDiBuilder creates a directed-graph builder over n vertices.
func NewDiBuilder(n int) *DiBuilder { return graph.NewDiBuilder(n) }

// DiFromArcs builds a digraph from an arc list.
func DiFromArcs(n int, arcs []Arc) (*DiGraph, error) { return graph.DiFromArcs(n, arcs) }

// AsDirected converts an undirected graph to a digraph with both arc
// directions.
func AsDirected(g *Graph) *DiGraph { return graph.AsDirected(g) }

// DiOptions configures BuildDiIndex.
type DiOptions struct {
	// NumLandmarks is |R| (default 20). Landmarks are the top vertices
	// by total (in+out) degree unless overridden.
	NumLandmarks int
	// Landmarks overrides selection.
	Landmarks []V
	// Parallelism bounds labelling workers (0 = GOMAXPROCS).
	Parallelism int
}

// DiIndex is an immutable directed QbS index; safe for concurrent
// queries.
type DiIndex struct {
	core *dcore.Index
	pool sync.Pool
}

// BuildDiIndex constructs a directed QbS index over g.
func BuildDiIndex(g *DiGraph, opts DiOptions) (*DiIndex, error) {
	cix, err := dcore.Build(g, dcore.Options{
		NumLandmarks: opts.NumLandmarks,
		Landmarks:    opts.Landmarks,
		Parallelism:  opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	ix := &DiIndex{core: cix}
	ix.pool.New = func() any { return dcore.NewSearcher(cix) }
	return ix, nil
}

// MustBuildDiIndex is BuildDiIndex that panics on error.
func MustBuildDiIndex(g *DiGraph, opts DiOptions) *DiIndex {
	ix, err := BuildDiIndex(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}

// Query answers the directed SPG(u → v).
func (ix *DiIndex) Query(u, v V) *DiSPG {
	sr := ix.pool.Get().(*dcore.Searcher)
	defer ix.pool.Put(sr)
	return sr.Query(u, v)
}

// Landmarks returns the landmark vertices in rank order.
func (ix *DiIndex) Landmarks() []V { return ix.core.Landmarks() }

// Graph returns the indexed digraph.
func (ix *DiIndex) Graph() *DiGraph { return ix.core.Graph() }

// DiBiBFS answers the directed SPG(u → v) by bidirectional BFS — the
// index-free baseline.
func DiBiBFS(g *DiGraph, u, v V) *DiSPG {
	s := bfs.NewDiBidirectional(g)
	spg, _ := s.Query(u, v)
	return spg
}

// OracleDiSPG computes the directed SPG by two full BFS sweeps
// (reference implementation for testing).
func OracleDiSPG(g *DiGraph, u, v V) *DiSPG { return bfs.OracleDiSPG(g, u, v) }
