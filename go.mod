module qbs

go 1.22
