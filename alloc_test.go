// Allocation regression tests and benchmarks for the warm query path.
// After the PR 2 arena work, a warmed-up searcher answering into a
// reused SPG performs zero heap allocations per query; these tests pin
// that down so it cannot silently rot.
package qbs_test

import (
	"math/rand"
	"runtime/debug"
	"testing"
	"time"

	"qbs"
	"qbs/internal/core"
	"qbs/internal/dcore"
	"qbs/internal/graph"
	"qbs/internal/obs"
	"qbs/internal/workload"
)

// allocGraph returns a small hub-ish test graph and sampled pairs.
func allocGraph(tb testing.TB) (*graph.Graph, []workload.Pair) {
	tb.Helper()
	g := connectedBA(800, 3, 42)
	return g, workload.SamplePairs(g, 64, 7)
}

func connectedBA(n, m int, seed int64) *graph.Graph {
	g := graph.BarabasiAlbert(n, m, seed)
	lc, _ := g.LargestComponent()
	return lc
}

// TestWarmQueryZeroAllocs asserts the PR 2 acceptance criterion: a warm
// query through the reusable-result path allocates nothing — neither in
// the searcher (expansion, sketch, extraction) nor in the result, whose
// edge buffer is recycled at its high-water mark.
func TestWarmQueryZeroAllocs(t *testing.T) {
	g, pairs := allocGraph(t)
	cix := core.MustBuild(g, core.Options{NumLandmarks: 16})
	sr := core.NewSearcher(cix)
	spg := graph.NewSPG(0, 0)

	// Warm every buffer to its working size on the same pair set.
	for r := 0; r < 3; r++ {
		for _, p := range pairs {
			sr.QueryInto(spg, p.U, p.V)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(len(pairs)*2, func() {
		p := pairs[i%len(pairs)]
		i++
		sr.QueryInto(spg, p.U, p.V)
	}); avg != 0 {
		t.Fatalf("warm Searcher.QueryInto allocates %.2f/op, want 0", avg)
	}

	i = 0
	if avg := testing.AllocsPerRun(len(pairs)*2, func() {
		p := pairs[i%len(pairs)]
		i++
		sr.Distance(p.U, p.V)
	}); avg != 0 {
		t.Fatalf("warm Searcher.Distance allocates %.2f/op, want 0", avg)
	}
}

// TestWarmInstrumentedQueryZeroAllocs pins the PR 6 observability
// criterion, extended with this PR's control plane: the query path with
// its stage timers and engine counters (QueryStats out-param) plus
// everything the serving layer records per query — histogram Observe,
// counter Add, SLO Record, and a below-min-level journal emit with
// attrs (the steady-state journal path with -log-level info and a
// debug-level event) — still allocates nothing on the warm path.
func TestWarmInstrumentedQueryZeroAllocs(t *testing.T) {
	g, pairs := allocGraph(t)
	cix := core.MustBuild(g, core.Options{NumLandmarks: 16})
	sr := core.NewSearcher(cix)
	spg := graph.NewSPG(0, 0)
	reg := obs.NewRegistry()
	hist := reg.Histogram("qbs_query_stage_ns", `stage="expand"`)
	arcs := reg.Counter("qbs_query_arcs_scanned_total", "")
	slo := obs.NewSLO("read-availability", "/spg", 0.999, 250*time.Millisecond)
	journal := obs.NewJournal(64, reg) // min level info
	evDebug := journal.Def("engine", "query_detail", obs.LevelDebug)

	for r := 0; r < 3; r++ {
		for _, p := range pairs {
			sr.QueryInto(spg, p.U, p.V)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(len(pairs)*2, func() {
		p := pairs[i%len(pairs)]
		i++
		st := sr.QueryInto(spg, p.U, p.V)
		hist.ObserveNs(st.ExpandNs)
		arcs.Add(st.ArcsScanned)
		slo.Record(st.ExpandNs, 200)
		evDebug.Emit(obs.Int("arcs", st.ArcsScanned), obs.Int("dtop", int64(st.DTop)))
	}); avg != 0 {
		t.Fatalf("instrumented warm QueryInto allocates %.2f/op, want 0", avg)
	}
	if sum := hist.Summary(); sum.Count == 0 {
		t.Fatal("stage histogram recorded nothing")
	}
	if _, total := slo.Window(5 * time.Minute); total == 0 {
		t.Fatal("SLO recorded nothing")
	}
	if evs := journal.Recent(0, obs.LevelDebug, ""); len(evs) != 0 {
		t.Fatalf("debug events admitted at info min level: %d", len(evs))
	}
}

// TestWarmTracedQueryZeroAllocs pins the PR 8 tracing criterion: a warm
// query wrapped in the full span protocol the serving middleware uses —
// Begin, a stage child span with attrs, root status attr, Finish — still
// allocates nothing when the tracer's tail sampling drops the trace
// (not slow, not errored, not force-sampled). Span buffers recycle
// through the tracer freelist and the trace ID is never minted for a
// dropped trace, so the steady-state traced path is free.
func TestWarmTracedQueryZeroAllocs(t *testing.T) {
	g, pairs := allocGraph(t)
	cix := core.MustBuild(g, core.Options{NumLandmarks: 16})
	sr := core.NewSearcher(cix)
	spg := graph.NewSPG(0, 0)
	tr := obs.NewTracer(64)
	tr.SetSlowThreshold(time.Hour) // nothing below an hour is "slow"

	for r := 0; r < 3; r++ {
		for _, p := range pairs {
			tb := tr.Begin("/spg", "", 0, false)
			sr.QueryInto(spg, p.U, p.V)
			tr.Finish(tb)
		}
	}
	i := 0
	kept := false
	if avg := testing.AllocsPerRun(len(pairs)*2, func() {
		p := pairs[i%len(pairs)]
		i++
		tb := tr.Begin("/spg", "", 0, false)
		sp := tb.StartSpan("stage:expand")
		st := sr.QueryInto(spg, p.U, p.V)
		sp.SetInt("arcs", st.ArcsScanned)
		sp.End()
		tb.Root().SetInt("status", 200)
		if _, k := tr.Finish(tb); k {
			kept = true
		}
	}); avg != 0 {
		t.Fatalf("traced warm QueryInto allocates %.2f/op, want 0", avg)
	}
	if kept {
		t.Fatal("head-sample-dropped trace was retained; the measurement did not cover the drop path")
	}
}

// TestWarmIndexQueryIntoZeroAllocs covers the public pooled entry point.
// GC is paused so the searcher pool cannot be emptied mid-measurement
// (a pool refill is an allocation the steady state never pays).
func TestWarmIndexQueryIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	g, pairs := allocGraph(t)
	ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 16})
	spg := graph.NewSPG(0, 0)
	for r := 0; r < 3; r++ {
		for _, p := range pairs {
			ix.QueryInto(spg, p.U, p.V)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	i := 0
	if avg := testing.AllocsPerRun(len(pairs)*2, func() {
		p := pairs[i%len(pairs)]
		i++
		ix.QueryInto(spg, p.U, p.V)
	}); avg != 0 {
		t.Fatalf("warm Index.QueryInto allocates %.2f/op, want 0", avg)
	}
}

// TestQueryBatchRecoversFromPanic feeds QueryBatch a poisoned pair (an
// out-of-range vertex panics inside the searcher). The batch must
// complete, return every healthy result, and leave only the poisoned
// slot nil — previously the panic killed the process.
func TestQueryBatchRecoversFromPanic(t *testing.T) {
	g, pairs := allocGraph(t)
	ix := qbs.MustBuildIndex(g, qbs.Options{NumLandmarks: 8})

	batch := make([]qbs.Pair, 0, len(pairs)+2)
	for _, p := range pairs {
		batch = append(batch, qbs.Pair{U: p.U, V: p.V})
	}
	poisonA, poisonB := 3, len(batch)/2
	batch[poisonA] = qbs.Pair{U: -1, V: 0}
	batch[poisonB] = qbs.Pair{U: 0, V: graph.V(g.NumVertices() + 5)}

	out := ix.QueryBatch(batch, 4)
	if len(out) != len(batch) {
		t.Fatalf("got %d results for %d pairs", len(out), len(batch))
	}
	for i, spg := range out {
		if i == poisonA || i == poisonB {
			if spg != nil {
				t.Fatalf("poisoned pair %d returned a result", i)
			}
			continue
		}
		if spg == nil {
			t.Fatalf("healthy pair %d lost its result", i)
		}
		want := ix.Query(batch[i].U, batch[i].V)
		if !spg.Equal(want) {
			t.Fatalf("pair %d: batch result differs from direct query", i)
		}
	}
}

// TestDynamicQueryBatchRecoversFromPanic is the same contract on the
// live-mutable index.
func TestDynamicQueryBatchRecoversFromPanic(t *testing.T) {
	g, pairs := allocGraph(t)
	di, err := qbs.BuildDynamicIndex(g, qbs.DynamicOptions{Index: qbs.Options{NumLandmarks: 8}})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]qbs.Pair, 0, len(pairs))
	for _, p := range pairs[:16] {
		batch = append(batch, qbs.Pair{U: p.U, V: p.V})
	}
	batch[5] = qbs.Pair{U: -7, V: 1}
	out := di.QueryBatch(batch, 3)
	for i, spg := range out {
		if i == 5 {
			if spg != nil {
				t.Fatal("poisoned dynamic pair returned a result")
			}
			continue
		}
		if spg == nil {
			t.Fatalf("healthy dynamic pair %d lost its result", i)
		}
		if want := di.Query(batch[i].U, batch[i].V); !spg.Equal(want) {
			t.Fatalf("dynamic pair %d differs from direct query", i)
		}
	}
}

// --- benchmarks -------------------------------------------------------

func BenchmarkQueryInto(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		ix, pairs := benchIndexes[key], benchPairs[key]
		b.Run(key, func(b *testing.B) {
			sr := core.NewSearcher(ix)
			spg := graph.NewSPG(0, 0)
			for _, p := range pairs {
				sr.QueryInto(spg, p.U, p.V)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				sr.QueryInto(spg, p.U, p.V)
			}
		})
	}
}

func BenchmarkDistanceWarm(b *testing.B) {
	benchSetup(b)
	for _, key := range benchKeys {
		ix, pairs := benchIndexes[key], benchPairs[key]
		b.Run(key, func(b *testing.B) {
			sr := core.NewSearcher(ix)
			for _, p := range pairs {
				sr.Distance(p.U, p.V)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				sr.Distance(p.U, p.V)
			}
		})
	}
}

func BenchmarkQueryBatch(b *testing.B) {
	benchSetup(b)
	key := "YT"
	ix := qbs.MustBuildIndex(benchGraphs[key], qbs.Options{NumLandmarks: 20})
	pairs := make([]qbs.Pair, len(benchPairs[key]))
	for i, p := range benchPairs[key] {
		pairs[i] = qbs.Pair{U: p.U, V: p.V}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryBatch(pairs, 0)
	}
}

// --- directed serving-surface allocation regressions ------------------

// diAllocIndex returns a directed test index and sampled pairs.
func diAllocIndex(tb testing.TB) (*qbs.DiIndex, [][2]qbs.V) {
	tb.Helper()
	g := graph.DirectedScaleFree(800, 3, 73)
	ix := qbs.MustBuildDiIndex(g, qbs.DiOptions{NumLandmarks: 16})
	rng := rand.New(rand.NewSource(9))
	pairs := make([][2]qbs.V, 64)
	for i := range pairs {
		pairs[i] = [2]qbs.V{qbs.V(rng.Intn(g.NumVertices())), qbs.V(rng.Intn(g.NumVertices()))}
	}
	return ix, pairs
}

// TestWarmDiQueryZeroAllocs is the PR 4 acceptance criterion for the
// directed serving surface: a warmed searcher answering into a reused
// DiSPG performs zero heap allocations per query, and so does Distance.
func TestWarmDiQueryZeroAllocs(t *testing.T) {
	g := graph.DirectedScaleFree(800, 3, 73)
	cix := dcore.MustBuild(g, dcore.Options{NumLandmarks: 16})
	sr := dcore.NewSearcher(cix)
	spg := graph.NewDiSPG(0, 0)
	rng := rand.New(rand.NewSource(9))
	pairs := make([][2]qbs.V, 64)
	for i := range pairs {
		pairs[i] = [2]qbs.V{qbs.V(rng.Intn(g.NumVertices())), qbs.V(rng.Intn(g.NumVertices()))}
	}

	for r := 0; r < 3; r++ {
		for _, p := range pairs {
			sr.QueryInto(spg, p[0], p[1])
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(len(pairs)*2, func() {
		p := pairs[i%len(pairs)]
		i++
		sr.QueryInto(spg, p[0], p[1])
	}); avg != 0 {
		t.Fatalf("warm directed Searcher.QueryInto allocates %.2f/op, want 0", avg)
	}

	i = 0
	if avg := testing.AllocsPerRun(len(pairs)*2, func() {
		p := pairs[i%len(pairs)]
		i++
		sr.Distance(p[0], p[1])
	}); avg != 0 {
		t.Fatalf("warm directed Searcher.Distance allocates %.2f/op, want 0", avg)
	}
}

// TestWarmDiIndexQueryIntoZeroAllocs covers the public pooled entry
// point, mirroring TestWarmIndexQueryIntoZeroAllocs.
func TestWarmDiIndexQueryIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	ix, pairs := diAllocIndex(t)
	spg := graph.NewDiSPG(0, 0)
	for r := 0; r < 3; r++ {
		for _, p := range pairs {
			ix.QueryInto(spg, p[0], p[1])
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	i := 0
	if avg := testing.AllocsPerRun(len(pairs)*2, func() {
		p := pairs[i%len(pairs)]
		i++
		ix.QueryInto(spg, p[0], p[1])
	}); avg != 0 {
		t.Fatalf("warm DiIndex.QueryInto allocates %.2f/op, want 0", avg)
	}
}

func BenchmarkDiQueryInto(b *testing.B) {
	ix, pairs := diAllocIndex(b)
	spg := graph.NewDiSPG(0, 0)
	for _, p := range pairs {
		ix.QueryInto(spg, p[0], p[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		ix.QueryInto(spg, p[0], p[1])
	}
}

func BenchmarkDiDistanceWarm(b *testing.B) {
	ix, pairs := diAllocIndex(b)
	for _, p := range pairs {
		ix.Distance(p[0], p[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		ix.Distance(p[0], p[1])
	}
}
