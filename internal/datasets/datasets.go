// Package datasets provides deterministic synthetic stand-ins for the 12
// real-world networks of the paper's Table 1.
//
// The module is offline and the original graphs reach 1.7B vertices /
// 7.8B edges, so each dataset is replaced by a seeded generator mix that
// reproduces the structural property the paper's analysis leans on:
//
//   - hub-dominated degree distributions (Barabási–Albert, optionally
//     hub-boosted) for the social/web graphs whose high-degree landmarks
//     cover most shortest paths (Youtube, WikiTalk, Baidu, Twitter,
//     ClueWeb09 — §6.3's high pair-coverage group);
//   - flat, near-regular degree distributions (Erdős–Rényi) for
//     Friendster, whose pair coverage the paper reports as extremely low;
//   - mixes for the in-between networks (DBLP's clustering, Skitter's
//     locality, Orkut's dense-but-even degrees).
//
// Vertex counts are scaled down ~3 orders of magnitude; average degrees
// track Table 1. Every analog is connected (largest component) and
// deterministic in (name, scale).
package datasets

import (
	"fmt"
	"sort"

	"qbs/internal/graph"
)

// Spec describes one dataset analog.
type Spec struct {
	Key      string // short key used in the paper's tables (DO, DB, …)
	Name     string // real dataset name
	Kind     string // network type, as in Table 1
	Directed bool   // the real dataset is directed (treated undirected)
	// BaseVertices is |V| at scale 1.
	BaseVertices int
	// TargetAvgDeg is the Table 1 average degree the generator aims for.
	TargetAvgDeg float64
	// build generates the graph for n vertices.
	build func(n int, seed int64) *graph.Graph
}

// PaperTable1 carries the published statistics we compare analogs
// against in EXPERIMENTS.md.
type PaperTable1 struct {
	Vertices float64 // millions
	Edges    float64 // millions (|E_un|)
	AvgDeg   float64
	AvgDist  float64
}

// Paper holds the real Table 1 rows (|V| and |E_un| in millions).
var Paper = map[string]PaperTable1{
	"DO": {0.2, 0.3, 4.2, 5.2},
	"DB": {0.3, 1.1, 6.6, 6.8},
	"YT": {1.1, 3.0, 5.27, 5.3},
	"WK": {2.4, 4.7, 3.89, 3.9},
	"SK": {1.7, 11.1, 13.08, 5.1},
	"BA": {2.1, 17.0, 15.89, 4.1},
	"LJ": {4.8, 43.1, 17.79, 5.5},
	"OR": {3.1, 117, 76.28, 4.2},
	"TW": {41.7, 1200, 57.74, 3.6},
	"FR": {65.6, 1800, 55.06, 4.8},
	"UK": {106, 3300, 62.77, 5.6},
	"CW": {1700, 7800, 9.27, 7.5},
}

// seedOf gives each dataset a stable generator seed.
func seedOf(key string) int64 {
	var s int64
	for _, c := range key {
		s = s*131 + int64(c)
	}
	return s + 20210104 // paper's SIGMOD year makes seeds stable and obvious
}

// All returns the 12 specs in the paper's Table 1 order.
func All() []Spec {
	return []Spec{
		{
			Key: "DO", Name: "Douban", Kind: "social", Directed: false,
			BaseVertices: 20000, TargetAvgDeg: 4.2,
			build: func(n int, seed int64) *graph.Graph {
				return graph.BarabasiAlbert(n, 2, seed)
			},
		},
		{
			Key: "DB", Name: "DBLP", Kind: "co-authorship", Directed: false,
			BaseVertices: 25000, TargetAvgDeg: 6.6,
			build: func(n int, seed int64) *graph.Graph {
				g := graph.BarabasiAlbert(n, 3, seed)
				return graph.TriadicClosure(g, n/8, seed+1)
			},
		},
		{
			Key: "YT", Name: "Youtube", Kind: "social", Directed: false,
			BaseVertices: 40000, TargetAvgDeg: 5.27,
			build: func(n int, seed int64) *graph.Graph {
				g := graph.BarabasiAlbert(n, 2, seed)
				return graph.HubBoost(g, 8, n/80, seed+1)
			},
		},
		{
			Key: "WK", Name: "WikiTalk", Kind: "communication", Directed: true,
			BaseVertices: 45000, TargetAvgDeg: 3.89,
			build: func(n int, seed int64) *graph.Graph {
				g := graph.BarabasiAlbert(n, 1, seed)
				return graph.HubBoost(g, 6, n/40, seed+1)
			},
		},
		{
			Key: "SK", Name: "Skitter", Kind: "computer", Directed: false,
			BaseVertices: 35000, TargetAvgDeg: 13.08,
			build: func(n int, seed int64) *graph.Graph {
				ba := graph.BarabasiAlbert(n, 5, seed)
				er := graph.ErdosRenyi(n, n*3/2, seed+1)
				return graph.Union(ba, er)
			},
		},
		{
			Key: "BA", Name: "Baidu", Kind: "web", Directed: true,
			BaseVertices: 40000, TargetAvgDeg: 15.89,
			build: func(n int, seed int64) *graph.Graph {
				g := graph.BarabasiAlbert(n, 7, seed)
				return graph.HubBoost(g, 10, n/60, seed+1)
			},
		},
		{
			Key: "LJ", Name: "LiveJournal", Kind: "social", Directed: true,
			BaseVertices: 50000, TargetAvgDeg: 17.79,
			build: func(n int, seed int64) *graph.Graph {
				return graph.BarabasiAlbert(n, 9, seed)
			},
		},
		{
			Key: "OR", Name: "Orkut", Kind: "social", Directed: false,
			BaseVertices: 30000, TargetAvgDeg: 76.28,
			build: func(n int, seed int64) *graph.Graph {
				ba := graph.BarabasiAlbert(n, 18, seed)
				er := graph.ErdosRenyi(n, n*20, seed+1)
				return graph.Union(ba, er)
			},
		},
		{
			Key: "TW", Name: "Twitter", Kind: "social", Directed: true,
			BaseVertices: 45000, TargetAvgDeg: 57.74,
			build: func(n int, seed int64) *graph.Graph {
				g := graph.BarabasiAlbert(n, 25, seed)
				return graph.HubBoost(g, 12, n/12, seed+1)
			},
		},
		{
			Key: "FR", Name: "Friendster", Kind: "social", Directed: false,
			BaseVertices: 60000, TargetAvgDeg: 55.06,
			build: func(n int, seed int64) *graph.Graph {
				// Near-regular: evenly distributed degrees, no hubs.
				return graph.ErdosRenyi(n, n*27, seed)
			},
		},
		{
			Key: "UK", Name: "uk2007", Kind: "web", Directed: true,
			BaseVertices: 55000, TargetAvgDeg: 62.77,
			build: func(n int, seed int64) *graph.Graph {
				ba := graph.BarabasiAlbert(n, 22, seed)
				ws := graph.WattsStrogatz(n, 12, 0.1, seed+1)
				return graph.Union(ba, ws)
			},
		},
		{
			Key: "CW", Name: "ClueWeb09", Kind: "computer", Directed: true,
			BaseVertices: 80000, TargetAvgDeg: 9.27,
			build: func(n int, seed int64) *graph.Graph {
				g := graph.BarabasiAlbert(n, 4, seed)
				return graph.HubBoost(g, 10, n/100, seed+1)
			},
		},
	}
}

// Keys returns the 12 dataset keys in table order.
func Keys() []string {
	specs := All()
	keys := make([]string, len(specs))
	for i, s := range specs {
		keys[i] = s.Key
	}
	return keys
}

// ByKey returns the spec for a key.
func ByKey(key string) (Spec, error) {
	for _, s := range All() {
		if s.Key == key {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown key %q (known: %v)", key, Keys())
}

// Generate builds the analog at the given scale (scale 1 = BaseVertices;
// 0 means 1). The result is the largest connected component, matching
// the paper's connectivity assumption.
func (s Spec) Generate(scale float64) *graph.Graph {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(s.BaseVertices) * scale)
	if n < 16 {
		n = 16
	}
	g := s.build(n, seedOf(s.Key))
	lc, _ := g.LargestComponent()
	return lc
}

// GenerateDirected builds a *directed* analog at the given scale. For
// the seven datasets Table 1 marks directed (WK, BA, LJ, TW, UK, CW and
// the directed reading of DB's citation flavour), arcs are generated by
// directed preferential attachment with the average total degree matched
// to the undirected analog; undirected datasets are symmetrised. This
// feeds the directed-QbS experiment (the paper evaluates the undirected
// reading only; §2 claims the directed extension).
func (s Spec) GenerateDirected(scale float64) *graph.DiGraph {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(s.BaseVertices) * scale)
	if n < 16 {
		n = 16
	}
	if !s.Directed {
		return graph.AsDirected(s.Generate(scale))
	}
	m := int(s.TargetAvgDeg / 2)
	if m < 1 {
		m = 1
	}
	return graph.DirectedScaleFree(n, m, seedOf(s.Key)+7)
}

// SortedByVertices returns specs ordered by ascending base size
// (useful for budgeted experiment sweeps).
func SortedByVertices() []Spec {
	specs := All()
	sort.Slice(specs, func(i, j int) bool { return specs[i].BaseVertices < specs[j].BaseVertices })
	return specs
}
