package datasets

import (
	"testing"

	"qbs/internal/graph"
)

func TestAllSpecsPresent(t *testing.T) {
	keys := Keys()
	if len(keys) != 12 {
		t.Fatalf("expected 12 datasets, got %d", len(keys))
	}
	want := []string{"DO", "DB", "YT", "WK", "SK", "BA", "LJ", "OR", "TW", "FR", "UK", "CW"}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("key %d = %s, want %s (table order)", i, keys[i], k)
		}
		if _, ok := Paper[k]; !ok {
			t.Fatalf("missing paper stats for %s", k)
		}
	}
}

func TestByKey(t *testing.T) {
	s, err := ByKey("TW")
	if err != nil || s.Name != "Twitter" {
		t.Fatalf("ByKey(TW) = %v, %v", s, err)
	}
	if _, err := ByKey("nope"); err == nil {
		t.Fatal("expected error for unknown key")
	}
}

func TestGenerateDeterministicAndConnected(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Key, func(t *testing.T) {
			t.Parallel()
			a := spec.Generate(0.02)
			b := spec.Generate(0.02)
			if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
				t.Fatal("generation not deterministic")
			}
			if _, count := a.ConnectedComponents(); count != 1 {
				t.Fatalf("analog not connected: %d components", count)
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDegreeCharacterMatchesPaperNarrative(t *testing.T) {
	// §6.3: Friendster has evenly distributed degrees; Twitter, Youtube,
	// WikiTalk and ClueWeb09 are hub-dominated. The analogs must keep
	// that contrast (measured by the Gini coefficient of the degree
	// distribution).
	gini := func(key string) float64 {
		s, err := ByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		return graph.GiniDegree(s.Generate(0.05))
	}
	fr := gini("FR")
	for _, hubby := range []string{"TW", "YT", "WK", "CW"} {
		if g := gini(hubby); g <= fr+0.1 {
			t.Fatalf("%s gini %.3f not clearly above FR %.3f", hubby, g, fr)
		}
	}
}

func TestAvgDegreeTracksTable1(t *testing.T) {
	// Analogs should land within a factor ~2 of the Table 1 average
	// degree so density-driven effects (Δ size, query cost) carry over.
	for _, spec := range All() {
		g := spec.Generate(0.05)
		got := g.AvgDegree()
		want := spec.TargetAvgDeg
		if got < want/2.5 || got > want*2.5 {
			t.Fatalf("%s: avg degree %.1f vs target %.1f", spec.Key, got, want)
		}
	}
}

func TestGenerateDirected(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Key, func(t *testing.T) {
			t.Parallel()
			g := spec.GenerateDirected(0.02)
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			a := spec.GenerateDirected(0.02)
			if a.NumArcs() != g.NumArcs() {
				t.Fatal("directed generation not deterministic")
			}
			if !spec.Directed {
				// Symmetrised: every arc has its reverse.
				for _, arc := range g.Arcs()[:min(100, g.NumArcs())] {
					if !g.HasArc(arc.To, arc.From) {
						t.Fatalf("undirected analog missing reverse arc %v", arc)
					}
				}
			}
		})
	}
}
