package traverse

import "testing"

func TestWorkspaceEpochWraparound(t *testing.T) {
	ws := NewWorkspace(10)
	ws.Reset()
	ws.SetDist(3, 7)
	if ws.Dist(3) != 7 || ws.Dist(4) != Infinity {
		t.Fatal("workspace basic ops")
	}
	ws.Reset()
	if ws.Seen(3) {
		t.Fatal("reset must invalidate")
	}
	ws.SetDist(3, 1)
	// Exercise epoch wraparound: stamps from the wrapped-around epoch
	// must not read as current.
	ws.epoch = ^uint32(0)
	ws.Reset()
	if ws.epoch != 1 {
		t.Fatalf("wraparound epoch = %d", ws.epoch)
	}
	if ws.Seen(3) {
		t.Fatal("wraparound must clear stamps")
	}
}
