package traverse

import (
	"math/bits"
	"sync/atomic"

	"qbs/internal/graph"
)

// Default α/β of the direction switch. α compares frontier arc mass
// against the whole graph's (rather than Beamer's expensively tracked
// unexplored remainder) because the QbS searches are bounded and
// bidirectional — they often terminate before a full sweep, so the
// threshold is deliberately conservative.
const (
	DefaultAlpha = 12
	DefaultBeta  = 24
)

// Expander performs direction-optimizing level expansion for a single
// BFS: top-down while the frontier is sparse, bottom-up through the
// dense middle levels. It is a reusable per-goroutine workspace; bind it
// to a traversal with Begin, then call Expand once per level.
//
// Distances are stored in a Workspace by the caller, so the Expander
// composes with the searcher's epoch-stamped state (including sentinel
// stamps such as QbS's removed landmarks: any vertex already Seen in the
// workspace is never re-discovered, whichever direction runs).
//
// The sparse top-down path is exactly the classic frontier scan with
// zero added bookkeeping. Only when a level actually goes dense — a
// frontier of Ω(|V|/β) vertices, so the level itself is Ω(|V|) work —
// is the visited bitmap for bottom-up materialised, in one O(|V|) sweep
// over the workspace stamps.
type Expander struct {
	// Alpha tunes the top-down → bottom-up switch: go bottom-up when
	// frontierDeg·Alpha > |arcs| (and the frontier is at least |V|/Beta
	// vertices). 0 disables bottom-up entirely; negative forces it on
	// every level (used by tests).
	Alpha int64
	// Beta tunes the switch back: return to top-down when
	// |frontier|·Beta < |V|.
	Beta int64

	// Parallelism > 1 expands large levels on that many pool workers
	// (see doc.go "Parallel execution model"); the discovered level
	// sets, distances and arc counts stay bit-identical to the
	// sequential kernel. <= 1 keeps the exact sequential code path.
	Parallelism int
	// ParallelThreshold overrides the minimum level size (frontier
	// vertices top-down, total vertices bottom-up) that engages the
	// pool; 0 means the package defaults. Tests force 1.
	ParallelThreshold int

	// Per-traversal counters, reset by Begin/BeginDirected and read by
	// the searchers into their QueryStats out-param (plain fields: the
	// expander is single-owner, so no atomics on the hot path).
	// ParallelLevels counts levels the pool executed, ParallelChunks the
	// work chunks claimed, ParallelSteals the chunks claimed outside a
	// worker's static share.
	Switches       int64 // top-down ↔ bottom-up direction switches
	WordsSwept     int64 // visited-bitmap words scanned by bottom-up levels
	ParallelLevels int64
	ParallelChunks int64
	ParallelSteals int64

	n        int
	g        graph.Adjacency // push adjacency: frontier → next level
	pull     graph.Adjacency // reverse adjacency for bottom-up parent probes
	deg      []int32         // optional cached degrees; nil falls back to g.Degree
	totalArc int64
	bottomUp bool

	words  []uint64 // visited bitmap, valid only while bottomUp
	bmUsed bool     // words is dirty and needs clearing on Begin

	par     expParState // pool buffers, allocated on first parallel level
	running atomic.Bool // guards against concurrent Expand misuse
}

// NewExpander creates an expander for graphs with n vertices.
func NewExpander(n int) *Expander {
	return &Expander{
		Alpha: DefaultAlpha,
		Beta:  DefaultBeta,
		n:     n,
		words: make([]uint64, (n+63)/64),
	}
}

// Begin binds the expander to one traversal over g. deg optionally
// supplies a cached degree array (indexed by vertex); pass nil to fall
// back to g.Degree calls. The bitmap is cleared only when the previous
// traversal went dense, so sparse query streams never touch it.
func (e *Expander) Begin(g graph.Adjacency, deg []int32) {
	e.BeginDirected(g, g, deg)
}

// BeginDirected binds the expander to a traversal over an asymmetric
// adjacency pair: top-down levels push along push.Neighbors, while
// bottom-up levels probe a vertex's potential parents via
// pull.Neighbors — which must therefore be the *reverse* adjacency of
// push (a dual-CSR digraph's InView when pushing over its OutView, and
// vice versa). For an undirected graph the two coincide, which is what
// Begin passes. deg caches push degrees.
func (e *Expander) BeginDirected(push, pull graph.Adjacency, deg []int32) {
	if e.bmUsed {
		clear(e.words)
		e.bmUsed = false
	}
	e.g = push
	e.pull = pull
	e.deg = deg
	e.totalArc = int64(push.NumArcs())
	e.bottomUp = false
	e.Switches = 0
	e.WordsSwept = 0
	e.ParallelLevels = 0
	e.ParallelChunks = 0
	e.ParallelSteals = 0
}

// syncBitmap rebuilds the visited bitmap from the workspace stamps.
// Runs once per dense phase, charged against that phase's Ω(|V|) level.
//
//qbs:zeroalloc
//qbs:hotpath
func (e *Expander) syncBitmap(ws *Workspace) {
	clear(e.words)
	e.bmUsed = true
	for v := 0; v < e.n; v++ {
		if ws.Seen(graph.V(v)) {
			e.words[v>>6] |= 1 << (uint(v) & 63)
		}
	}
}

// Expand grows the BFS by one level: every vertex in frontier has depth
// d in ws; unseen neighbours get depth d+1, are appended to dst and
// returned. The second result counts adjacency entries examined.
//
//qbs:hotpath
func (e *Expander) Expand(ws *Workspace, frontier []graph.V, d int32, dst []graph.V) ([]graph.V, int64) {
	if !e.running.CompareAndSwap(false, true) {
		panic("traverse: Expander used concurrently (one expander per goroutine)")
	}
	defer e.running.Store(false)
	switch {
	case e.Alpha < 0:
		if !e.bottomUp {
			e.bottomUp = true
			e.Switches++
			e.syncBitmap(ws)
		}
	case e.bottomUp:
		if int64(len(frontier))*e.Beta < int64(e.n) {
			e.bottomUp = false
			e.Switches++
		}
	case e.Alpha > 0 && int64(len(frontier))*e.Beta >= int64(e.n):
		// Dense enough to be worth pricing out: compare the arcs a
		// top-down step would scan against the whole arc mass.
		var mf int64
		if e.deg != nil {
			for _, x := range frontier {
				mf += int64(e.deg[x])
			}
		} else {
			for _, x := range frontier {
				mf += int64(e.g.Degree(x))
			}
		}
		if mf*e.Alpha > e.totalArc {
			e.bottomUp = true
			e.Switches++
			e.syncBitmap(ws)
		}
	}
	if e.bottomUp {
		if workers := parallelWorkers(e.Parallelism, e.ParallelThreshold, minParVertices, e.n); workers > 1 {
			return e.expandBottomUpParallel(ws, frontier, d, dst, workers)
		}
		return e.expandBottomUp(ws, d, dst)
	}
	if workers := parallelWorkers(e.Parallelism, e.ParallelThreshold, minParFrontier, len(frontier)); workers > 1 {
		return e.expandTopDownParallel(ws, frontier, d, dst, workers)
	}
	return e.expandTopDown(ws, frontier, d, dst)
}

// expandTopDown is the sequential push sweep over the frontier.
//
//qbs:zeroalloc
//qbs:hotpath
func (e *Expander) expandTopDown(ws *Workspace, frontier []graph.V, d int32, dst []graph.V) ([]graph.V, int64) {
	g := e.g
	var arcs int64
	for _, x := range frontier {
		ns := g.Neighbors(x)
		arcs += int64(len(ns))
		for _, y := range ns {
			if ws.Seen(y) {
				continue
			}
			ws.SetDist(y, d+1)
			dst = append(dst, y)
		}
	}
	return dst, arcs
}

// expandBottomUp scans the unvisited vertices instead of the frontier: a
// vertex joins the next level at the first pull-neighbour (in-neighbour
// w.r.t. the push direction) found at depth d. The bitmap is a skip
// accelerator, not ground truth — a stale bit (stamped in ws after the
// last sync, e.g. during an interleaved top-down phase) is re-checked
// against ws.Seen and marked lazily.
//
//qbs:zeroalloc
//qbs:hotpath
func (e *Expander) expandBottomUp(ws *Workspace, d int32, dst []graph.V) ([]graph.V, int64) {
	g := e.pull
	var arcs int64
	nw := len(e.words)
	e.WordsSwept += int64(nw)
	for w := 0; w < nw; w++ {
		unv := ^e.words[w]
		if w == nw-1 && e.n&63 != 0 {
			unv &= 1<<(uint(e.n)&63) - 1
		}
		for unv != 0 {
			v := graph.V(w<<6 + bits.TrailingZeros64(unv))
			unv &= unv - 1
			if ws.Seen(v) {
				e.words[w] |= 1 << (uint(v) & 63)
				continue
			}
			for _, y := range g.Neighbors(v) {
				arcs++
				if ws.Dist(y) == d {
					ws.SetDist(v, d+1)
					e.words[w] |= 1 << (uint(v) & 63)
					dst = append(dst, v)
					break
				}
			}
		}
	}
	return dst, arcs
}
