package traverse

import (
	"math"
	"sync/atomic"

	"qbs/internal/graph"
)

// Infinity marks an unreached vertex in distance arrays.
const Infinity = int32(math.MaxInt32)

// Workspace holds reusable per-query BFS state for a fixed graph size.
// Distance entries are valid only when their epoch stamp matches the
// current epoch, so resetting between queries is O(1). A Workspace is
// not safe for concurrent use; create one per goroutine.
type Workspace struct {
	n     int
	epoch uint32
	stamp []uint32
	dist  []int32
}

// NewWorkspace creates a workspace for graphs with n vertices.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		n:     n,
		stamp: make([]uint32, n),
		dist:  make([]int32, n),
	}
}

// Reset invalidates all distances in O(1).
//
//qbs:zeroalloc
//qbs:allow atomicfield single-writer between sweeps; parallel claimers only run inside a level, barrier-separated from the epoch bump
func (ws *Workspace) Reset() {
	ws.epoch++
	if ws.epoch == 0 { // wrapped: do the rare full clear
		for i := range ws.stamp {
			ws.stamp[i] = 0
		}
		ws.epoch = 1
	}
}

// Dist returns the distance of v in the current epoch, or Infinity.
//
//qbs:zeroalloc
//qbs:allow atomicfield read outside parallel levels, or of the caller's own claimed vertex after the level barrier
func (ws *Workspace) Dist(v graph.V) int32 {
	if ws.stamp[v] == ws.epoch {
		return ws.dist[v]
	}
	return Infinity
}

// SetDist stamps v with distance d in the current epoch.
//
//qbs:zeroalloc
//qbs:allow atomicfield sequential expansion only; the parallel path claims via tryClaim's CAS instead
func (ws *Workspace) SetDist(v graph.V, d int32) {
	ws.stamp[v] = ws.epoch
	ws.dist[v] = d
}

// Seen reports whether v has been assigned a distance this epoch.
//
//qbs:zeroalloc
//qbs:allow atomicfield read outside parallel levels, or of the caller's own claimed vertex after the level barrier
func (ws *Workspace) Seen(v graph.V) bool { return ws.stamp[v] == ws.epoch }

// tryClaim atomically claims v in the current epoch, returning true for
// exactly one caller per epoch; the winner alone then writes dist[v],
// so losers and post-barrier readers never observe a torn distance.
// Used by the parallel top-down expansion, where pool workers race to
// discover the same neighbour; the sequential paths keep the plain
// Seen/SetDist pair.
func (ws *Workspace) tryClaim(v graph.V, d int32) bool {
	for {
		s := atomic.LoadUint32(&ws.stamp[v])
		if s == ws.epoch {
			return false
		}
		if atomic.CompareAndSwapUint32(&ws.stamp[v], s, ws.epoch) {
			ws.dist[v] = d
			return true
		}
	}
}
