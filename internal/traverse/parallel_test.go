// Property tests for the parallel level kernels: with Parallelism > 1
// both engines must produce results bit-identical to the sequential
// kernels — same distances, same settle payloads per (vertex, depth),
// same arc/word counters — on random graphs, disconnected graphs and
// the regular structures, in every direction mode. CI runs these under
// -race with GOMAXPROCS=4, which is what actually checks the claiming
// protocol: the assertions alone would pass even with torn writes.
package traverse_test

import (
	"sync"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// settleKey identifies one settle event; settleVal carries its payload.
type settleKey struct {
	v     graph.V
	depth int32
}

// collectMulti runs MultiBFS with the given parallelism and returns the
// settle stream as a set keyed by (vertex, depth). The callback locks:
// with workers > 1 it is invoked concurrently by contract.
func collectMulti(t *testing.T, g *graph.Graph, landIdx []int16, roots []graph.V, alpha int64, workers int) (map[settleKey][2]uint64, *traverse.MultiBFS) {
	t.Helper()
	mb := traverse.NewMultiBFS(g.NumVertices())
	mb.Alpha = alpha
	mb.Parallelism = workers
	mb.ParallelThreshold = 1 // engage the pool on every level, however tiny
	out := map[settleKey][2]uint64{}
	var mu sync.Mutex
	err := mb.Run(g, nil, landIdx, roots, 1<<30, func(v graph.V, depth int32, newL, newN uint64) {
		mu.Lock()
		if _, dup := out[settleKey{v, depth}]; dup {
			t.Errorf("vertex %d settled twice at depth %d", v, depth)
		}
		out[settleKey{v, depth}] = [2]uint64{newL, newN}
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("MultiBFS workers=%d: %v", workers, err)
	}
	return out, mb
}

func TestMultiBFSParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		roots int
	}{
		{"sparse-disconnected", randomGraph(80, 50, 41), 7},
		{"mid", randomGraph(300, 2000, 42), 20},
		{"full-width", randomGraph(500, 4000, 43), 64},
		{"isolated-heavy", randomGraph(400, 150, 44), 16},
		{"star", graph.Star(257), 5},
		{"path", graph.Path(90), 3},
	} {
		g := tc.g
		n := g.NumVertices()
		roots := make([]graph.V, 0, tc.roots)
		for i := 0; len(roots) < tc.roots && i < n; i++ {
			roots = append(roots, graph.V((i*13)%n))
			for j := 0; j < len(roots)-1; j++ {
				if roots[j] == roots[len(roots)-1] {
					roots = roots[:len(roots)-1]
					break
				}
			}
		}
		// Mark every third root's vertex a landmark so the QL/QN
		// absorption rule is exercised, not just plain BFS.
		landIdx := make([]int16, n)
		for i := range landIdx {
			landIdx[i] = -1
		}
		for i := 0; i < len(roots); i += 3 {
			landIdx[roots[i]] = int16(i)
		}
		for _, alpha := range []int64{traverse.DefaultAlpha, 0, -1, 1} {
			want, _ := collectMulti(t, g, landIdx, roots, alpha, 1)
			for _, workers := range []int{2, 3, 8} {
				got, mb := collectMulti(t, g, landIdx, roots, alpha, workers)
				if len(got) != len(want) {
					t.Fatalf("%s alpha=%d workers=%d: %d settle events, want %d",
						tc.name, alpha, workers, len(got), len(want))
				}
				for k, w := range want {
					if got[k] != w {
						t.Fatalf("%s alpha=%d workers=%d: settle %v = %v, want %v",
							tc.name, alpha, workers, k, got[k], w)
					}
				}
				if mb.ParallelLevels == 0 && len(want) > 0 {
					t.Fatalf("%s alpha=%d workers=%d: pool never engaged", tc.name, alpha, workers)
				}
			}
		}
	}
}

func TestMultiBFSParallelCountersAndSwitchParity(t *testing.T) {
	g := randomGraph(600, 6000, 51)
	roots := []graph.V{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	landIdx := make([]int16, g.NumVertices())
	for i := range landIdx {
		landIdx[i] = -1
	}
	_, seq := collectMulti(t, g, landIdx, roots, traverse.DefaultAlpha, 1)
	_, par := collectMulti(t, g, landIdx, roots, traverse.DefaultAlpha, 4)
	if par.Switches != seq.Switches || par.WordsSwept != seq.WordsSwept {
		t.Fatalf("parallel run changed the switch trajectory: switches %d→%d, words %d→%d",
			seq.Switches, par.Switches, seq.WordsSwept, par.WordsSwept)
	}
	if par.ParallelLevels == 0 || par.ParallelChunks < par.ParallelLevels {
		t.Fatalf("implausible pool counters: levels=%d chunks=%d", par.ParallelLevels, par.ParallelChunks)
	}
	if seq.ParallelLevels != 0 || seq.ParallelChunks != 0 || seq.ParallelSteals != 0 {
		t.Fatalf("sequential run reported pool activity: %+v", seq)
	}
}

func TestMultiBFSParallelReuseAndDepthLimit(t *testing.T) {
	// Engine reuse across >64-source workloads (two consecutive 64-wide
	// batches on one engine) and after ErrTooDeep, with the pool on.
	g := randomGraph(400, 2600, 61)
	n := g.NumVertices()
	mb := traverse.NewMultiBFS(n)
	mb.Parallelism = 4
	mb.ParallelThreshold = 1
	var mu sync.Mutex
	for batch := 0; batch < 2; batch++ {
		roots := make([]graph.V, 0, 64)
		for i := 0; len(roots) < 64; i++ {
			v := graph.V((batch*64 + i) % n)
			dup := false
			for _, r := range roots {
				if r == v {
					dup = true
					break
				}
			}
			if !dup {
				roots = append(roots, v)
			}
		}
		dist := make([][]int32, len(roots))
		for i := range dist {
			dist[i] = make([]int32, n)
			for v := range dist[i] {
				dist[i][v] = traverse.Infinity
			}
			dist[i][roots[i]] = 0
		}
		err := mb.Run(g, nil, nil, roots, 1<<30, func(v graph.V, depth int32, newL, newN uint64) {
			mu.Lock()
			for w := newL | newN; w != 0; w &= w - 1 {
				dist[trailing(w)][v] = depth
			}
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for i, r := range roots {
			want := bfs.Distances(g, r)
			for v := 0; v < n; v++ {
				if dist[i][v] != want[v] {
					t.Fatalf("batch %d root %d: dist[%d] = %d, want %d", batch, r, v, dist[i][v], want[v])
				}
			}
		}
	}
	// Depth-limited parallel run must error and leave the engine clean.
	pg := graph.Path(400)
	pmb := traverse.NewMultiBFS(400)
	pmb.Parallelism = 4
	pmb.ParallelThreshold = 1
	if err := pmb.Run(pg, nil, nil, []graph.V{0}, 10, func(graph.V, int32, uint64, uint64) {}); err != traverse.ErrTooDeep {
		t.Fatalf("depth-limited parallel run: %v, want ErrTooDeep", err)
	}
	got := make([]int32, 400)
	err := pmb.Run(pg, nil, nil, []graph.V{0}, 1<<30, func(v graph.V, depth int32, _, _ uint64) {
		mu.Lock()
		got[v] = depth
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("reuse after ErrTooDeep: %v", err)
	}
	for v := 1; v < 400; v++ {
		if got[v] != int32(v) {
			t.Fatalf("after error: dist[%d] = %d", v, got[v])
		}
	}
}

// expanderParallelBFS mirrors expanderBFS with a pooled expander,
// returning distances plus total arcs and the expander for counters.
func expanderParallelBFS(g *graph.Graph, src graph.V, alpha int64, workers int) ([]int32, int64, *traverse.Expander) {
	n := g.NumVertices()
	e := traverse.NewExpander(n)
	e.Alpha = alpha
	e.Parallelism = workers
	e.ParallelThreshold = 1
	ws := traverse.NewWorkspace(n)
	ws.Reset()
	ws.SetDist(src, 0)
	e.Begin(g, nil)
	return finishExpand(e, ws, []graph.V{src}, 0, 0, n)
}

func finishExpand(e *traverse.Expander, ws *traverse.Workspace, frontier []graph.V, d int32, arcs int64, n int) ([]int32, int64, *traverse.Expander) {
	for len(frontier) > 0 {
		var a int64
		frontier, a = e.Expand(ws, frontier, d, frontier[:0:0])
		arcs += a
		d++
	}
	dist := make([]int32, n)
	for v := 0; v < n; v++ {
		dist[v] = ws.Dist(graph.V(v))
	}
	return dist, arcs, e
}

func TestExpanderParallelMatchesSequential(t *testing.T) {
	cases := []*graph.Graph{
		randomGraph(50, 30, 71),    // sparse, disconnected
		randomGraph(300, 2400, 72), // dense-ish
		randomGraph(400, 150, 73),  // many isolated vertices
		graph.Star(129),
		graph.Path(64),
		graph.Complete(65),
	}
	for gi, g := range cases {
		n := g.NumVertices()
		for _, src := range []graph.V{0, graph.V(n / 2), graph.V(n - 1)} {
			for _, alpha := range []int64{traverse.DefaultAlpha, 0, -1, 1} {
				wantDist, wantArcs, wantExp := expanderParallelBFS(g, src, alpha, 1)
				for _, workers := range []int{2, 8} {
					gotDist, gotArcs, gotExp := expanderParallelBFS(g, src, alpha, workers)
					for v := 0; v < n; v++ {
						if gotDist[v] != wantDist[v] {
							t.Fatalf("graph %d src %d alpha=%d workers=%d: dist[%d] = %d, want %d",
								gi, src, alpha, workers, v, gotDist[v], wantDist[v])
						}
					}
					if gotArcs != wantArcs {
						t.Fatalf("graph %d src %d alpha=%d workers=%d: arcs %d, want %d",
							gi, src, alpha, workers, gotArcs, wantArcs)
					}
					if gotExp.Switches != wantExp.Switches || gotExp.WordsSwept != wantExp.WordsSwept {
						t.Fatalf("graph %d src %d alpha=%d workers=%d: switch trajectory diverged", gi, src, alpha, workers)
					}
					if gotExp.ParallelLevels == 0 && n > 1 && wantDist[src] == 0 {
						t.Fatalf("graph %d src %d alpha=%d workers=%d: pool never engaged", gi, src, alpha, workers)
					}
				}
			}
		}
	}
}

// blockingAdj wraps an adjacency; the first Neighbors call signals
// entered and parks on release, pinning a traversal mid-level so the
// concurrent-use guards can be hit deterministically.
type blockingAdj struct {
	graph.Adjacency
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func (b *blockingAdj) Neighbors(v graph.V) []graph.V {
	b.once.Do(func() {
		close(b.entered)
		<-b.release
	})
	return b.Adjacency.Neighbors(v)
}

func TestMultiBFSConcurrentRunRejected(t *testing.T) {
	g := randomGraph(60, 200, 81)
	adj := &blockingAdj{Adjacency: g, entered: make(chan struct{}), release: make(chan struct{})}
	mb := traverse.NewMultiBFS(g.NumVertices())
	done := make(chan error, 1)
	go func() {
		done <- mb.Run(adj, nil, nil, []graph.V{0}, 1<<30, func(graph.V, int32, uint64, uint64) {})
	}()
	<-adj.entered
	if err := mb.Run(g, nil, nil, []graph.V{1}, 1<<30, func(graph.V, int32, uint64, uint64) {}); err != traverse.ErrConcurrentRun {
		t.Fatalf("concurrent Run: %v, want ErrConcurrentRun", err)
	}
	close(adj.release)
	if err := <-done; err != nil {
		t.Fatalf("pinned run failed: %v", err)
	}
	// And the engine works again once the first run drained.
	if err := mb.Run(g, nil, nil, []graph.V{1}, 1<<30, func(graph.V, int32, uint64, uint64) {}); err != nil {
		t.Fatalf("run after concurrent rejection: %v", err)
	}
}

func TestExpanderConcurrentExpandPanics(t *testing.T) {
	g := randomGraph(60, 200, 82)
	n := g.NumVertices()
	adj := &blockingAdj{Adjacency: g, entered: make(chan struct{}), release: make(chan struct{})}
	e := traverse.NewExpander(n)
	ws := traverse.NewWorkspace(n)
	ws.Reset()
	ws.SetDist(0, 0)
	e.Begin(adj, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Expand(ws, []graph.V{0}, 0, nil)
	}()
	<-adj.entered
	func() {
		defer func() {
			if recover() == nil {
				t.Error("concurrent Expand did not panic")
			}
		}()
		ws2 := traverse.NewWorkspace(n)
		ws2.Reset()
		ws2.SetDist(1, 0)
		e.Expand(ws2, []graph.V{1}, 0, nil)
	}()
	close(adj.release)
	<-done
}
