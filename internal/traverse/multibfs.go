package traverse

import (
	"errors"
	"fmt"
	"sync/atomic"

	"qbs/internal/graph"
)

// ErrTooDeep reports that a MultiBFS level exceeded the caller's depth
// limit while some source still had a non-empty frontier.
var ErrTooDeep = errors.New("traverse: BFS depth exceeds limit")

// ErrConcurrentRun reports that Run/RunDirected was entered while a
// previous call on the same engine was still in flight. An engine (and
// its settle state) is single-owner; create one per goroutine.
var ErrConcurrentRun = errors.New("traverse: MultiBFS used concurrently (one engine per goroutine)")

// MaxSources is the number of sources one MultiBFS sweep carries: one
// bit per source in a uint64 word.
const MaxSources = 64

// MultiBFS runs up to 64 simultaneous landmark-rooted QL/QN BFS
// layerings (Algorithm 2 of the paper) in one graph sweep, one bit per
// source. It is a reusable workspace sized for a fixed vertex count; not
// safe for concurrent use — create one per worker.
type MultiBFS struct {
	// Alpha/Beta tune the direction switch exactly as on Expander:
	// Alpha 0 disables bottom-up, negative forces it.
	Alpha int64
	Beta  int64

	// Parallelism > 1 runs large levels on that many pool workers (see
	// doc.go "Parallel execution model"). Settle callbacks are then
	// invoked concurrently and must be safe for that; every settle
	// payload stays bit-identical to the sequential kernel. <= 1 keeps
	// the exact sequential code path.
	Parallelism int
	// ParallelThreshold overrides the minimum level size (frontier
	// vertices top-down, total vertices bottom-up) that engages the
	// pool; 0 means the package defaults. Tests force 1.
	ParallelThreshold int

	// Per-run counters, reset by Run/RunDirected (plain fields; the
	// engine is single-owner). WordsSwept counts visited words probed by
	// bottom-up levels — one per vertex scanned. ParallelLevels counts
	// levels the pool executed, ParallelChunks the work chunks claimed,
	// ParallelSteals the chunks claimed outside a worker's static share.
	Switches       int64
	WordsSwept     int64
	ParallelLevels int64
	ParallelChunks int64
	ParallelSteals int64

	n       int
	curL    []uint64 // bit i: v is on source i's QL frontier at this level
	curN    []uint64 // bit i: v is on source i's QN frontier at this level
	nextL   []uint64 // next level, resolved at settle time
	nextN   []uint64
	visited []uint64 // bit i: source i has reached v

	frontier []graph.V // vertices with curL|curN != 0, each once
	next     []graph.V
	touched  []graph.V // top-down: vertices with pending next-level bits

	par     mbParState  // pool buffers, allocated on first parallel level
	running atomic.Bool // guards against concurrent Run misuse
}

// NewMultiBFS creates an engine for graphs with n vertices.
func NewMultiBFS(n int) *MultiBFS {
	return &MultiBFS{
		Alpha:   DefaultAlpha,
		Beta:    DefaultBeta,
		n:       n,
		curL:    make([]uint64, n),
		curN:    make([]uint64, n),
		nextL:   make([]uint64, n),
		nextN:   make([]uint64, n),
		visited: make([]uint64, n),
	}
}

// Run sweeps the graph once, advancing a QL/QN BFS from every root in
// lock-step. roots[i] is the root of bit i (all distinct vertices, at
// most MaxSources). landIdx marks the landmark vertices (>= 0); at a
// landmark every arriving bit is absorbed into QN, which is what makes
// the per-bit layering match the scalar Algorithm 2. Pass a nil landIdx
// to treat every vertex as a plain vertex (plain multi-source BFS).
//
// settle is called exactly once per (vertex, level) with the bits that
// first reached the vertex at that level: newL arrived via a QL
// frontier (these are the labelled discoveries — or, at a landmark, the
// meta-edge discoveries), newN arrived only via QN. Roots are not
// settled; the caller accounts for depth 0 itself.
//
// deg optionally supplies cached degrees for the α/β switch; nil falls
// back to g.Degree. Run returns ErrTooDeep when a level would exceed
// maxDepth; the engine is reusable afterwards.
func (mb *MultiBFS) Run(g graph.Adjacency, deg []int32, landIdx []int16, roots []graph.V, maxDepth int32, settle func(v graph.V, depth int32, newL, newN uint64)) error {
	return mb.RunDirected(g, g, deg, landIdx, roots, maxDepth, settle)
}

// RunDirected is Run over an asymmetric adjacency pair: frontiers push
// along push.Neighbors, while the bottom-up direction pulls a vertex's
// pending bits from pull.Neighbors — which must therefore be the
// *reverse* adjacency of push (a dual-CSR digraph's InView when pushing
// over its OutView, and vice versa). For an undirected graph the two
// coincide, which is what Run passes.
//
//qbs:allow atomicfield nextL/nextN are OR-accumulated with CAS only inside parallel levels; the sequential kernel and inter-level swap run single-threaded
func (mb *MultiBFS) RunDirected(push, pull graph.Adjacency, deg []int32, landIdx []int16, roots []graph.V, maxDepth int32, settle func(v graph.V, depth int32, newL, newN uint64)) error {
	if !mb.running.CompareAndSwap(false, true) {
		return ErrConcurrentRun
	}
	defer mb.running.Store(false)
	n := push.NumVertices()
	if n != mb.n {
		return fmt.Errorf("traverse: engine sized for %d vertices, graph has %d", mb.n, n)
	}
	if len(roots) == 0 {
		return nil
	}
	if len(roots) > MaxSources {
		return fmt.Errorf("traverse: %d roots exceed the %d-way sweep width", len(roots), MaxSources)
	}
	full := ^uint64(0)
	if len(roots) < MaxSources {
		full = 1<<uint(len(roots)) - 1
	}
	clear(mb.curL)
	clear(mb.curN)
	clear(mb.nextL)
	clear(mb.nextN)
	clear(mb.visited)
	mb.Switches = 0
	mb.WordsSwept = 0
	mb.ParallelLevels = 0
	mb.ParallelChunks = 0
	mb.ParallelSteals = 0

	degree := func(v graph.V) int64 {
		if deg != nil {
			return int64(deg[v])
		}
		return int64(push.Degree(v))
	}

	frontier := mb.frontier[:0]
	for i, r := range roots {
		if mb.visited[r] != 0 {
			return fmt.Errorf("traverse: duplicate root %d", r)
		}
		mb.curL[r] = 1 << uint(i)
		mb.visited[r] = 1 << uint(i)
		frontier = append(frontier, r)
	}
	totalArc := int64(push.NumArcs())

	depth := int32(0)
	bottomUp := false
	for len(frontier) > 0 {
		depth++
		if depth > maxDepth {
			// Leave the engine clean for reuse.
			for _, u := range frontier {
				mb.curL[u], mb.curN[u] = 0, 0
			}
			mb.frontier, mb.next = frontier[:0], mb.next[:0]
			return ErrTooDeep
		}

		switch {
		case mb.Alpha < 0:
			if !bottomUp {
				bottomUp = true
				mb.Switches++
			}
		case bottomUp:
			if int64(len(frontier))*mb.Beta < int64(n) {
				bottomUp = false
				mb.Switches++
			}
		case mb.Alpha > 0 && int64(len(frontier))*mb.Beta >= int64(n):
			// Dense enough to price out (sparse levels skip the degree
			// summation entirely). As on Expander, the threshold compares
			// against the whole arc mass — conservative, and it keeps the
			// hot settle path free of per-vertex degree accounting.
			var mf int64
			for _, x := range frontier {
				mf += degree(x)
			}
			if mf*mb.Alpha > totalArc {
				bottomUp = true
				mb.Switches++
			}
		}

		nf := mb.next[:0]
		if bottomUp {
			mb.WordsSwept += int64(n)
			if workers := parallelWorkers(mb.Parallelism, mb.ParallelThreshold, minParVertices, n); workers > 1 {
				nf = mb.bottomUpParallel(pull, landIdx, settle, depth, full, workers, nf)
			} else {
				// Bottom-up: scan vertices some source has not reached and pull
				// frontier bits from their neighbours. Settling immediately is
				// safe — it writes only v's own visited/next words, while the
				// scan reads neighbours' cur words, which this level never
				// mutates.
				for v := graph.V(0); int(v) < n; v++ {
					vis := mb.visited[v]
					if vis == full {
						continue
					}
					var aL, aN uint64
					for _, u := range pull.Neighbors(v) {
						aL |= mb.curL[u]
						aN |= mb.curN[u]
						if aL|vis == full {
							// Every source is already visited or arriving via QL;
							// later neighbours cannot change any bit's QL-priority
							// classification, so stop probing.
							break
						}
					}
					if (aL|aN)&^vis == 0 {
						continue
					}
					nf = mb.settleVertex(v, depth, aL, aN, landIdx, settle, nf)
				}
			}
		} else if workers := parallelWorkers(mb.Parallelism, mb.ParallelThreshold, minParFrontier, len(frontier)); workers > 1 {
			nf = mb.topDownParallel(push, landIdx, settle, frontier, depth, workers, nf)
		} else {
			// Top-down: accumulate frontier bits into the next-level words,
			// then settle every touched vertex. nextL/nextN double as the
			// accumulators; settleVertex rewrites them with the resolved
			// QL/QN assignment.
			touched := mb.touched[:0]
			for _, u := range frontier {
				lu, ln := mb.curL[u], mb.curN[u]
				both := lu | ln
				for _, v := range push.Neighbors(u) {
					if both&^mb.visited[v] == 0 {
						continue
					}
					if mb.nextL[v]|mb.nextN[v] == 0 {
						touched = append(touched, v)
					}
					mb.nextL[v] |= lu
					mb.nextN[v] |= ln
				}
			}
			for _, v := range touched {
				aL, aN := mb.nextL[v], mb.nextN[v]
				nf = mb.settleVertex(v, depth, aL, aN, landIdx, settle, nf)
			}
			mb.touched = touched[:0]
		}

		for _, u := range frontier {
			mb.curL[u], mb.curN[u] = 0, 0
		}
		mb.curL, mb.nextL = mb.nextL, mb.curL
		mb.curN, mb.nextN = mb.nextN, mb.curN
		mb.frontier, mb.next = nf, frontier[:0]
		frontier = nf
	}
	mb.frontier = frontier[:0]
	return nil
}

// settleVertex resolves one vertex's newly arrived bits at this level
// and installs its next-level frontier words. Per bit: arrived via QL →
// QL (labelled); arrived only via QN → QN; at a landmark everything is
// absorbed into QN.
//
//qbs:zeroalloc
//qbs:hotpath
//qbs:allow atomicfield settles run after the level barrier and each worker touches only its own claimed vertex's words
func (mb *MultiBFS) settleVertex(v graph.V, depth int32, aL, aN uint64, landIdx []int16, settle func(graph.V, int32, uint64, uint64), nf []graph.V) []graph.V {
	vis := mb.visited[v]
	fromL := aL &^ vis
	newBits := (aL | aN) &^ vis
	if newBits == 0 {
		mb.nextL[v], mb.nextN[v] = 0, 0
		return nf
	}
	fromN := newBits &^ fromL
	mb.visited[v] = vis | newBits
	if landIdx != nil && landIdx[v] >= 0 {
		mb.nextL[v], mb.nextN[v] = 0, newBits
	} else {
		mb.nextL[v], mb.nextN[v] = fromL, fromN
	}
	settle(v, depth, fromL, fromN)
	return append(nf, v)
}
