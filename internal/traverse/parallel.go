package traverse

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"qbs/internal/graph"
)

// Worker-pool plumbing shared by the parallel MultiBFS and Expander
// level kernels. See doc.go "Parallel execution model" for the design
// and the memory-ordering argument.

const (
	// parChunk is the number of frontier slots (top-down) or vertices
	// (bottom-up) in one claimed work chunk. A multiple of 64 so
	// bottom-up ranges cover whole visited-bitmap words, and — at 8
	// bytes per per-vertex MultiBFS word — so chunk boundaries land on
	// cache-line boundaries: two workers never write the same line.
	parChunk = 1024

	// parWords is parChunk in visited-bitmap words (Expander bottom-up
	// chunks are claimed in word units).
	parWords = parChunk / 64

	// minParFrontier and minParVertices gate the pool: a top-down level
	// with fewer frontier vertices, or a bottom-up sweep over fewer
	// total vertices, runs the sequential kernel — below these sizes
	// the goroutine fan-out costs more than the level. Overridable per
	// engine via ParallelThreshold (tests force 1).
	minParFrontier = 2048
	minParVertices = 4096
)

// parRun executes body(w) for w in [0, workers): workers-1 goroutines
// plus the calling goroutine, returning when all complete. Spawned once
// per level phase; the WaitGroup gives every cross-level memory access
// a happens-before edge through the coordinating goroutine.
func parRun(workers int, body func(w int)) {
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			body(w)
		}(w)
	}
	body(0)
	wg.Wait()
}

// orUint64 atomically ORs bits into *p. Emulates Go 1.23's
// atomic.OrUint64 with a CAS loop (go.mod pins 1.22); the early return
// skips the CAS once every bit is already present, which is the common
// case when many frontier vertices share a target.
func orUint64(p *uint64, bits uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old|bits == old {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old|bits) {
			return
		}
	}
}

// claimUint32 CASes *p from its current value to gen, returning true
// for exactly one caller per gen. The claim winner owns the vertex for
// the rest of the level (its settle, its next-frontier slot).
func claimUint32(p *uint32, gen uint32) bool {
	for {
		old := atomic.LoadUint32(p)
		if old == gen {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, gen) {
			return true
		}
	}
}

// chunkCounters aggregates per-phase pool telemetry: chunks claimed in
// total and chunks claimed outside a worker's static share ("steals" —
// the shared-counter scheduler's load balancing in action).
type chunkCounters struct {
	chunks atomic.Int64
	steals atomic.Int64
}

// claimChunks drains chunk indices [0, numChunks) for worker w off the
// shared counter, invoking run(lo, hi) with item ranges scaled by
// chunkSize and clamped to limit. chunksPer is the static per-worker
// share used only to classify steals.
func claimChunks(next *atomic.Int64, cc *chunkCounters, w, numChunks, chunksPer, chunkSize, limit int, run func(lo, hi int)) {
	var claimed, stolen int64
	for {
		c := int(next.Add(1)) - 1
		if c >= numChunks {
			break
		}
		claimed++
		if c/chunksPer != w {
			stolen++
		}
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > limit {
			hi = limit
		}
		run(lo, hi)
	}
	cc.chunks.Add(claimed)
	cc.steals.Add(stolen)
}

// parallelWorkers resolves an engine's effective worker count for a
// level of the given size: Parallelism when >1 and the level clears the
// threshold, else 1 (sequential kernel).
func parallelWorkers(parallelism, threshold, defaultThreshold, size int) int {
	if parallelism <= 1 {
		return 1
	}
	if threshold <= 0 {
		threshold = defaultThreshold
	}
	if size < threshold {
		return 1
	}
	return parallelism
}

// ---------------------------------------------------------------------
// MultiBFS parallel levels
// ---------------------------------------------------------------------

// mbParState holds the MultiBFS pool's lazily allocated reusable state.
type mbParState struct {
	touchStamp []uint32    // per-vertex claim stamps, valid when == touchGen
	touchGen   uint32      // bumped per parallel top-down level
	touched    [][]graph.V // per-worker claimed-vertex lists
	nf         [][]graph.V // per-worker next-frontier buffers
}

// ensure sizes the pooled buffers for n vertices and workers workers.
//
//qbs:allow atomicfield runs before the level's workers start; the claim CAS is confined to the sweep
func (p *mbParState) ensure(n, workers int) {
	if p.touchStamp == nil {
		p.touchStamp = make([]uint32, n)
	}
	for len(p.touched) < workers {
		p.touched = append(p.touched, nil)
	}
	for len(p.nf) < workers {
		p.nf = append(p.nf, nil)
	}
}

// nextGen starts a fresh claim generation, clearing the stamp array on
// the (rare) wrap so a stale stamp can never alias the new generation.
//
//qbs:allow atomicfield runs between levels; the claim CAS is confined to the sweep
func (p *mbParState) nextGen() uint32 {
	p.touchGen++
	if p.touchGen == 0 {
		clear(p.touchStamp)
		p.touchGen = 1
	}
	return p.touchGen
}

// topDownParallel is the pooled form of the top-down level: workers
// claim frontier chunks off a shared counter and OR frontier words into
// the next-level accumulators with CAS; the first worker to touch a
// vertex claims it via the touch-stamp CAS and appends it to its own
// touched list. After the barrier each worker settles exactly the
// vertices it claimed — settleVertex writes only v's own words, so the
// settle phase needs no further synchronisation — and the per-worker
// next-frontier lists are concatenated. The accumulated words, and
// hence every settle(v, depth, newL, newN) payload, are identical to
// the sequential kernel's; only frontier order differs.
//
//qbs:hotpath
//qbs:allow atomicfield the settle phase reads accumulator words after the sweep barrier, one worker per claimed vertex
func (mb *MultiBFS) topDownParallel(push graph.Adjacency, landIdx []int16, settle func(graph.V, int32, uint64, uint64), frontier []graph.V, depth int32, workers int, nf []graph.V) []graph.V {
	mb.par.ensure(mb.n, workers)
	gen := mb.par.nextGen()
	numChunks := (len(frontier) + parChunk - 1) / parChunk
	chunksPer := (numChunks + workers - 1) / workers
	var next atomic.Int64
	var cc chunkCounters

	parRun(workers, func(w int) {
		touched := mb.par.touched[w][:0]
		claimChunks(&next, &cc, w, numChunks, chunksPer, parChunk, len(frontier), func(lo, hi int) {
			for _, u := range frontier[lo:hi] {
				lu, ln := mb.curL[u], mb.curN[u]
				both := lu | ln
				for _, v := range push.Neighbors(u) {
					// visited is frozen during this phase (settles run
					// after the barrier), so the plain read is safe.
					if both&^mb.visited[v] == 0 {
						continue
					}
					if claimUint32(&mb.par.touchStamp[v], gen) {
						touched = append(touched, v)
					}
					orUint64(&mb.nextL[v], lu)
					orUint64(&mb.nextN[v], ln)
				}
			}
		})
		mb.par.touched[w] = touched
	})

	parRun(workers, func(w int) {
		out := mb.par.nf[w][:0]
		for _, v := range mb.par.touched[w] {
			out = mb.settleVertex(v, depth, mb.nextL[v], mb.nextN[v], landIdx, settle, out)
		}
		mb.par.nf[w] = out
	})

	for w := 0; w < workers; w++ {
		nf = append(nf, mb.par.nf[w]...)
	}
	mb.ParallelLevels++
	mb.ParallelChunks += cc.chunks.Load()
	mb.ParallelSteals += cc.steals.Load()
	return nf
}

// bottomUpParallel is the pooled form of the bottom-up level: the
// vertex range is split into word-aligned chunks claimed off a shared
// counter, and each worker settles its own vertices immediately —
// settleVertex writes only v's visited/next words, all inside the
// worker's exclusive range, while the pull probes read neighbours'
// cur words, which this level never mutates. Per-vertex pull order is
// the sequential kernel's, so the early-exit point, arriving bit sets
// and settle payloads are bit-identical.
func (mb *MultiBFS) bottomUpParallel(pull graph.Adjacency, landIdx []int16, settle func(graph.V, int32, uint64, uint64), depth int32, full uint64, workers int, nf []graph.V) []graph.V {
	mb.par.ensure(mb.n, workers)
	numChunks := (mb.n + parChunk - 1) / parChunk
	chunksPer := (numChunks + workers - 1) / workers
	var next atomic.Int64
	var cc chunkCounters

	parRun(workers, func(w int) {
		out := mb.par.nf[w][:0]
		claimChunks(&next, &cc, w, numChunks, chunksPer, parChunk, mb.n, func(lo, hi int) {
			for v := graph.V(lo); int(v) < hi; v++ {
				vis := mb.visited[v]
				if vis == full {
					continue
				}
				var aL, aN uint64
				for _, u := range pull.Neighbors(v) {
					aL |= mb.curL[u]
					aN |= mb.curN[u]
					if aL|vis == full {
						break
					}
				}
				if (aL|aN)&^vis == 0 {
					continue
				}
				out = mb.settleVertex(v, depth, aL, aN, landIdx, settle, out)
			}
		})
		mb.par.nf[w] = out
	})

	for w := 0; w < workers; w++ {
		nf = append(nf, mb.par.nf[w]...)
	}
	mb.ParallelLevels++
	mb.ParallelChunks += cc.chunks.Load()
	mb.ParallelSteals += cc.steals.Load()
	return nf
}

// ---------------------------------------------------------------------
// Expander parallel levels
// ---------------------------------------------------------------------

// expParState holds the Expander pool's lazily allocated reusable state.
type expParState struct {
	dst   [][]graph.V // per-worker discovery buffers
	fbits []uint64    // frontier bitmap for parallel bottom-up probes
}

func (p *expParState) ensure(workers int) {
	for len(p.dst) < workers {
		p.dst = append(p.dst, nil)
	}
}

// expandTopDownParallel claims frontier chunks off a shared counter;
// discovery races are settled by a CAS on the workspace epoch stamp
// (Workspace.tryClaim), whose single winner writes the distance and
// appends the vertex to its own buffer. The discovered set and the
// arc count are those of the sequential kernel; only order differs.
//
//qbs:allow zeroalloc above-threshold parallel levels trade goroutine and closure allocations for wall-clock; pooled serving searchers expand sequentially
func (e *Expander) expandTopDownParallel(ws *Workspace, frontier []graph.V, d int32, dst []graph.V, workers int) ([]graph.V, int64) {
	e.par.ensure(workers)
	g := e.g
	numChunks := (len(frontier) + parChunk - 1) / parChunk
	chunksPer := (numChunks + workers - 1) / workers
	var next atomic.Int64
	var arcsA atomic.Int64
	var cc chunkCounters

	parRun(workers, func(w int) {
		out := e.par.dst[w][:0]
		var arcs int64
		claimChunks(&next, &cc, w, numChunks, chunksPer, parChunk, len(frontier), func(lo, hi int) {
			for _, x := range frontier[lo:hi] {
				ns := g.Neighbors(x)
				arcs += int64(len(ns))
				for _, y := range ns {
					if ws.tryClaim(y, d+1) {
						out = append(out, y)
					}
				}
			}
		})
		e.par.dst[w] = out
		arcsA.Add(arcs)
	})

	for w := 0; w < workers; w++ {
		dst = append(dst, e.par.dst[w]...)
	}
	e.ParallelLevels++
	e.ParallelChunks += cc.chunks.Load()
	e.ParallelSteals += cc.steals.Load()
	return dst, arcsA.Load()
}

// expandBottomUpParallel splits the visited bitmap into word-aligned
// chunks claimed off a shared counter. Parent probes cannot read other
// ranges' workspace stamps (racy), so the depth-d set is snapshotted
// into a read-only frontier bitmap first; each worker then writes only
// its own range's stamps, distances and bitmap words. Requires what the
// searchers already guarantee: frontier is exactly the depth-d set.
//
//qbs:allow zeroalloc above-threshold parallel levels trade goroutine and closure allocations for wall-clock; pooled serving searchers expand sequentially
func (e *Expander) expandBottomUpParallel(ws *Workspace, frontier []graph.V, d int32, dst []graph.V, workers int) ([]graph.V, int64) {
	e.par.ensure(workers)
	g := e.pull
	nw := len(e.words)
	if cap(e.par.fbits) < nw {
		e.par.fbits = make([]uint64, nw)
	} else {
		e.par.fbits = e.par.fbits[:nw]
		clear(e.par.fbits)
	}
	fbits := e.par.fbits
	for _, x := range frontier {
		fbits[x>>6] |= 1 << (uint(x) & 63)
	}

	numChunks := (nw + parWords - 1) / parWords
	chunksPer := (numChunks + workers - 1) / workers
	var next atomic.Int64
	var arcsA atomic.Int64
	var cc chunkCounters

	parRun(workers, func(wk int) {
		out := e.par.dst[wk][:0]
		var arcs int64
		claimChunks(&next, &cc, wk, numChunks, chunksPer, parWords, nw, func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				unv := ^e.words[w]
				if w == nw-1 && e.n&63 != 0 {
					unv &= 1<<(uint(e.n)&63) - 1
				}
				for unv != 0 {
					v := graph.V(w<<6 + bits.TrailingZeros64(unv))
					unv &= unv - 1
					if ws.Seen(v) { // own-range stamp: plain read is safe
						e.words[w] |= 1 << (uint(v) & 63)
						continue
					}
					for _, y := range g.Neighbors(v) {
						arcs++
						if fbits[y>>6]&(1<<(uint(y)&63)) != 0 {
							ws.SetDist(v, d+1)
							e.words[w] |= 1 << (uint(v) & 63)
							out = append(out, v)
							break
						}
					}
				}
			}
		})
		e.par.dst[wk] = out
		arcsA.Add(arcs)
	})

	for w := 0; w < workers; w++ {
		dst = append(dst, e.par.dst[w]...)
	}
	e.WordsSwept += int64(nw)
	e.ParallelLevels++
	e.ParallelChunks += cc.chunks.Load()
	e.ParallelSteals += cc.steals.Load()
	return dst, arcsA.Load()
}
