// Property tests for the traversal engines: the direction-optimizing
// expander must produce exactly the distances of a plain top-down BFS in
// every mode, and the 64-way bit-parallel multi-source BFS must agree
// with one independent BFS per source — on random graphs including
// disconnected ones, graphs built from edge lists with self-loop and
// duplicate entries, and the regular structures. CI runs these under
// -race.
package traverse_test

import (
	"fmt"
	mbits "math/bits"
	"math/rand"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// randomGraph builds a random graph with n vertices and ~m edge draws.
// Draws include self-loops and duplicates (dropped by the builder), and
// low m leaves the graph disconnected with isolated vertices.
func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := graph.V(rng.Intn(n))
		w := graph.V(rng.Intn(n))
		b.AddEdge(u, w) // u == w allowed: builder must drop it
	}
	return b.MustBuild()
}

// expanderBFS runs a full single-source BFS through the Expander and
// returns the distance array.
func expanderBFS(g *graph.Graph, src graph.V, alpha, beta int64) []int32 {
	n := g.NumVertices()
	e := traverse.NewExpander(n)
	e.Alpha, e.Beta = alpha, beta
	ws := traverse.NewWorkspace(n)
	ws.Reset()
	ws.SetDist(src, 0)
	e.Begin(g, nil)
	frontier := []graph.V{src}
	var d int32
	for len(frontier) > 0 {
		frontier, _ = e.Expand(ws, frontier, d, frontier[:0:0])
		d++
	}
	dist := make([]int32, n)
	for v := 0; v < n; v++ {
		dist[v] = ws.Dist(graph.V(v))
	}
	return dist
}

func TestExpanderMatchesPlainBFS(t *testing.T) {
	cases := []*graph.Graph{
		randomGraph(1, 0, 1),
		randomGraph(50, 30, 2),   // sparse, disconnected
		randomGraph(120, 700, 3), // dense-ish
		randomGraph(200, 90, 4),  // many isolated vertices
		graph.Star(64),
		graph.Path(40),
		graph.Complete(30),
	}
	modes := []struct {
		name        string
		alpha, beta int64
	}{
		{"auto", traverse.DefaultAlpha, traverse.DefaultBeta},
		{"top-down-only", 0, traverse.DefaultBeta},
		{"bottom-up-always", -1, 1},
		{"eager-switch", 1, traverse.DefaultBeta},
	}
	for gi, g := range cases {
		n := g.NumVertices()
		for _, src := range []graph.V{0, graph.V(n / 2), graph.V(n - 1)} {
			want := bfs.Distances(g, src)
			for _, mode := range modes {
				got := expanderBFS(g, src, mode.alpha, mode.beta)
				for v := 0; v < n; v++ {
					if got[v] != want[v] {
						t.Fatalf("graph %d mode %s src %d: dist[%d] = %d, want %d",
							gi, mode.name, src, v, got[v], want[v])
					}
				}
			}
		}
	}
}

func TestExpanderReuseAcrossTraversals(t *testing.T) {
	// One expander serving many traversals must not leak visited state,
	// including after bottom-up levels dirtied the bitmap.
	g := randomGraph(150, 800, 7)
	n := g.NumVertices()
	e := traverse.NewExpander(n)
	e.Alpha = 1 // switch eagerly so the bitmap actually gets used
	ws := traverse.NewWorkspace(n)
	for rep := 0; rep < 10; rep++ {
		src := graph.V((rep * 37) % n)
		ws.Reset()
		ws.SetDist(src, 0)
		e.Begin(g, nil)
		frontier := []graph.V{src}
		var d int32
		for len(frontier) > 0 {
			frontier, _ = e.Expand(ws, frontier, d, frontier[:0:0])
			d++
		}
		want := bfs.Distances(g, src)
		for v := 0; v < n; v++ {
			if ws.Dist(graph.V(v)) != want[v] {
				t.Fatalf("rep %d: dist[%d] = %d, want %d", rep, v, ws.Dist(graph.V(v)), want[v])
			}
		}
	}
}

// multiDistances runs MultiBFS over the roots and returns one distance
// array per root, reconstructed from the settle callbacks.
func multiDistances(t *testing.T, g *graph.Graph, roots []graph.V, alpha int64) [][]int32 {
	t.Helper()
	n := g.NumVertices()
	mb := traverse.NewMultiBFS(n)
	mb.Alpha = alpha
	dist := make([][]int32, len(roots))
	for i, r := range roots {
		dist[i] = make([]int32, n)
		for v := range dist[i] {
			dist[i][v] = traverse.Infinity
		}
		dist[i][r] = 0
	}
	err := mb.Run(g, nil, nil, roots, 1<<30, func(v graph.V, depth int32, newL, newN uint64) {
		for w := newL | newN; w != 0; w &= w - 1 {
			i := trailing(w)
			if dist[i][v] != traverse.Infinity {
				t.Fatalf("root %d settled vertex %d twice", i, v)
			}
			dist[i][v] = depth
		}
	})
	if err != nil {
		t.Fatalf("MultiBFS: %v", err)
	}
	return dist
}

func trailing(w uint64) int {
	i := 0
	for w&1 == 0 {
		w >>= 1
		i++
	}
	return i
}

func TestMultiBFSMatchesPerSourceBFS(t *testing.T) {
	for _, tc := range []struct {
		n, m  int
		seed  int64
		roots int
	}{
		{10, 4, 11, 1},  // tiny, disconnected
		{80, 50, 12, 7}, // sparse, disconnected
		{100, 600, 13, 20},
		{200, 1500, 14, 64}, // full 64-way batch
		{64, 64, 15, 64},    // as many roots as vertices allows
	} {
		g := randomGraph(tc.n, tc.m, tc.seed)
		n := g.NumVertices()
		rng := rand.New(rand.NewSource(tc.seed * 31))
		seen := map[graph.V]bool{}
		var roots []graph.V
		for len(roots) < tc.roots && len(roots) < n {
			r := graph.V(rng.Intn(n))
			if !seen[r] {
				seen[r] = true
				roots = append(roots, r)
			}
		}
		for _, alpha := range []int64{traverse.DefaultAlpha, 0, -1} {
			dist := multiDistances(t, g, roots, alpha)
			for i, r := range roots {
				want := bfs.Distances(g, r)
				for v := 0; v < n; v++ {
					if dist[i][v] != want[v] {
						t.Fatalf("n=%d alpha=%d root %d: dist[%d] = %d, want %d",
							tc.n, alpha, r, v, dist[i][v], want[v])
					}
				}
			}
		}
	}
}

func TestMultiBFSRejectsBadInput(t *testing.T) {
	g := graph.Path(5)
	mb := traverse.NewMultiBFS(5)
	roots := make([]graph.V, 65)
	for i := range roots {
		roots[i] = graph.V(i % 5)
	}
	if err := mb.Run(g, nil, nil, roots, 100, func(graph.V, int32, uint64, uint64) {}); err == nil {
		t.Fatal("65 roots accepted")
	}
	if err := mb.Run(g, nil, nil, []graph.V{1, 1}, 100, func(graph.V, int32, uint64, uint64) {}); err == nil {
		t.Fatal("duplicate roots accepted")
	}
	if err := mb.Run(graph.Path(6), nil, nil, []graph.V{0}, 100, func(graph.V, int32, uint64, uint64) {}); err == nil {
		t.Fatal("mis-sized graph accepted")
	}
}

func TestMultiBFSDepthLimitAndReuse(t *testing.T) {
	g := graph.Path(50)
	mb := traverse.NewMultiBFS(50)
	err := mb.Run(g, nil, nil, []graph.V{0}, 10, func(graph.V, int32, uint64, uint64) {})
	if err != traverse.ErrTooDeep {
		t.Fatalf("depth-limited run: %v, want ErrTooDeep", err)
	}
	// The engine must be reusable after the error.
	dist := multiDistances(t, g, []graph.V{0}, traverse.DefaultAlpha)
	for v := 0; v < 50; v++ {
		if dist[0][v] != int32(v) {
			t.Fatalf("after error: dist[%d] = %d", v, dist[0][v])
		}
	}
}

func TestMultiBFSDeterministicAcrossModes(t *testing.T) {
	// Distances aside, the (vertex, depth, newL, newN) settle stream must
	// carry identical per-bit assignments whichever direction ran — only
	// the order may change. Compare as sets.
	g := randomGraph(120, 900, 21)
	n := g.NumVertices()
	roots := []graph.V{0, 1, 2, 3, 4, 5, 6, 7}
	type key struct {
		v     graph.V
		depth int32
	}
	collect := func(alpha int64) map[key][2]uint64 {
		mb := traverse.NewMultiBFS(n)
		mb.Alpha = alpha
		out := map[key][2]uint64{}
		if err := mb.Run(g, nil, nil, roots, 1<<30, func(v graph.V, depth int32, newL, newN uint64) {
			k := key{v, depth}
			cur := out[k]
			out[k] = [2]uint64{cur[0] | newL, cur[1] | newN}
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	auto := collect(traverse.DefaultAlpha)
	td := collect(0)
	bu := collect(-1)
	if len(auto) != len(td) || len(bu) != len(td) {
		t.Fatalf("settle-event counts differ: auto=%d td=%d bu=%d", len(auto), len(td), len(bu))
	}
	for k, want := range td {
		if auto[k] != want {
			t.Fatalf("auto settle %v = %v, want %v", k, auto[k], want)
		}
		if bu[k] != want {
			t.Fatalf("bottom-up settle %v = %v, want %v", k, bu[k], want)
		}
	}
}

func ExampleMultiBFS() {
	// Two sources on a path: bit 0 from vertex 0, bit 1 from vertex 4.
	// Each vertex is reached by both sources except the roots themselves
	// (a root is only ever reached by the opposite source).
	g := graph.Path(5)
	mb := traverse.NewMultiBFS(5)
	reached := make([]int, 5)
	_ = mb.Run(g, nil, nil, []graph.V{0, 4}, 100, func(v graph.V, depth int32, newL, newN uint64) {
		reached[v] += mbits.OnesCount64(newL | newN)
	})
	fmt.Println(reached)
	// Output: [1 2 2 2 1]
}
