package traverse

import (
	"runtime"
	"sync"
	"sync/atomic"

	"qbs/internal/graph"
)

// BatchChunk is the number of queries a batch worker claims at a time.
// Each chunk's results live in one result slab, so steady-state batches
// allocate once per chunk instead of once per query, and consecutive
// results stay cache-adjacent for the caller.
const BatchChunk = 32

// QueryBatch answers n queries concurrently into out (len n) with up to
// parallelism workers (0 = GOMAXPROCS, capped at the chunk count — a
// surplus worker would acquire a searcher, possibly constructing one,
// only to find no chunk left). pairAt yields the i-th query pair;
// acquire/release manage per-worker searchers (typically a pool); query
// answers one pair into a chunk-slab slot. It is the single engine
// behind core.QueryBatchInto and dcore.QueryBatchInto, so the directed
// and undirected chunking/cap logic cannot drift.
//
// A query that panics (e.g. an out-of-range vertex id) does not bring
// the batch down: its slot is left nil, the worker discards its
// possibly-corrupt searcher instead of releasing it and continues with
// a fresh one, and all remaining results are returned.
func QueryBatch[R any, S comparable](out []*R, parallelism int, pairAt func(int) (graph.V, graph.V), acquire func() S, release func(S), query func(S, *R, graph.V, graph.V)) {
	n := len(out)
	if n == 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if chunks := (n + BatchChunk - 1) / BatchChunk; parallelism > chunks {
		parallelism = chunks
	}
	var zero S
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := acquire()
			defer func() {
				if sr != zero {
					release(sr)
				}
			}()
			for {
				start := int(next.Add(BatchChunk)) - BatchChunk
				if start >= n {
					return
				}
				end := min(start+BatchChunk, n)
				arena := make([]R, end-start)
				for i := start; i < end; i++ {
					if sr == zero {
						sr = acquire()
					}
					u, v := pairAt(i)
					dst := &arena[i-start]
					if runBatchQuery(query, sr, dst, u, v) {
						out[i] = dst
					} else {
						sr = zero // searcher state is suspect after a panic
					}
				}
			}
		}()
	}
	wg.Wait()
}

// runBatchQuery answers one batch query, converting a panic into a
// false return so a poisoned query cannot deadlock or kill the batch.
func runBatchQuery[R any, S any](query func(S, *R, graph.V, graph.V), sr S, dst *R, u, v graph.V) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	query(sr, dst, u, v)
	return true
}
