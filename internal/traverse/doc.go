// Package traverse is the shared BFS engine behind the QbS index: every
// hot traversal — labelling construction, query search and dynamic
// column repair — runs on the two kernels defined here.
//
// # Direction-optimizing expansion (Expander)
//
// A level-synchronous BFS normally expands top-down: scan every frontier
// vertex and stamp its unseen neighbours. On small-world graphs one or
// two levels hold most of the graph, and top-down then touches almost
// every arc just to rediscover vertices that are already stamped.
// Beamer's direction-optimizing BFS flips those dense levels bottom-up:
// iterate the *unvisited* vertices and stop at the first neighbour found
// in the frontier (a parent), so a vertex of degree d costs on average
// far fewer than d probes.
//
// The switch uses the classic α/β heuristic:
//
//   - top-down → bottom-up when m_f·α > m_u, where m_f is the sum of
//     frontier degrees (arcs the next top-down step would scan) and m_u
//     is the arc mass not yet explored;
//   - bottom-up → top-down when |frontier|·β < |V| (the frontier has
//     shrunk enough that scanning all unvisited vertices is wasteful).
//
// The bottom-up scan is driven by a per-side visited bitmap packed 64
// vertices to a word, so fully-visited regions skip in one comparison.
// The bitmap is maintained incrementally (one bit set per discovery) and
// cleared in O(words touched), so queries that never go dense pay almost
// nothing for it.
//
// Both directions produce identical distance assignments — bottom-up
// only changes the order in which a level's vertices are emitted — so
// search results are unchanged.
//
// On a directed graph the two directions walk different arc sets:
// top-down pushes along the traversal's forward arcs, while bottom-up
// asks "which of my *in*-neighbours is on the frontier". Both kernels
// therefore accept an explicit (push, pull) adjacency pair
// (Expander.BeginDirected, MultiBFS.RunDirected) where pull is the
// reverse adjacency of push; the undirected entry points pass the same
// graph for both.
//
// # Bit-parallel multi-source labelling BFS (MultiBFS)
//
// QbS construction runs one landmark-rooted BFS per landmark. MultiBFS
// instead runs up to 64 of them in a single graph sweep: each vertex
// carries uint64 words whose bit i belongs to source i, and a frontier
// expansion ORs a vertex's word into its neighbours, advancing all
// sources one level per pass. With the paper's default |R| = 20 the
// whole labelling is one sweep instead of twenty.
//
// The engine natively implements Algorithm 2's two-frontier discipline,
// per bit: QL (reached by a shortest path avoiding all other landmarks)
// and QN (every shortest path passes through another landmark). Per
// vertex it keeps five words —
//
//	curL/curN    frontier membership at the current level
//	nextL/nextN  accumulating frontier for the next level
//	visited      sources that have reached the vertex
//
// and a level settles as: bits first arriving via QL join QL (and emit a
// label or, at a landmark, a meta-edge); bits arriving only via QN join
// QN; landmarks absorb all bits into QN. Because levels are settled
// synchronously after the whole frontier is scanned, the result is
// bit-identical to running the scalar QL/QN BFS per source, in any
// frontier order — which also lets MultiBFS reuse the same α/β
// direction switch for its dense levels.
//
// # Parallel execution model
//
// Both kernels optionally run each level on a pool of goroutines
// (Expander.Parallelism, MultiBFS.Parallelism; 0 or 1 keeps the exact
// sequential code path). The design is Ligra-style level-synchronous
// work sharing:
//
//   - Top-down levels partition the frontier into fixed-size chunks.
//     Workers start on a statically assigned share (cheap locality when
//     the level is balanced) and then claim leftover chunks off a
//     shared atomic cursor, so a worker stuck on a hub vertex doesn't
//     stall the level (claims outside the static share are counted as
//     steals). Vertex discovery is arbitrated with a compare-and-swap
//     per vertex — in the Expander directly on the workspace's epoch
//     stamp, in MultiBFS on a per-vertex generation stamp plus CAS-OR
//     accumulation into the nextL/nextN words — so exactly one worker
//     wins each vertex and then writes its distance (or settles its
//     label bits) without further synchronization.
//   - Bottom-up levels split the vertex range into word-aligned chunks
//     (multiples of 64 so visited-bitmap words have a single owner).
//     Each worker probes only its own range, reading the frontier
//     through an immutable snapshot — the current-level words in
//     MultiBFS, a frozen frontier bitmap in the Expander — so all
//     cross-worker reads are of data that cannot change during the
//     level, and all writes land in the worker's own range.
//
// A level only moves to the pool past a size threshold (a few thousand
// frontier vertices or unvisited words); below it the sequential loop
// is both faster and exactly the single-core code shape.
//
// Determinism: the α/β direction decision is taken on the coordinating
// goroutine from the previous level's aggregate counts, which are
// summed deterministically from per-worker counters — so the
// push/pull schedule, and hence Switches and WordsSwept, are identical
// to the sequential run. Within a level, parallel execution only
// permutes the order in which a level's vertices are discovered and
// settled; the *set* of vertices, their distances and their settle
// payloads are order-independent (a vertex's level is fixed by the BFS,
// and settle writes are per-vertex). Every consumer is insensitive to
// within-level order, so labels, σ, Δ and query SPGs are bit-identical
// at every worker count — the property suite and the scaling harness
// both enforce this.
//
// Engines are single-traversal objects: one Run/Expand stream per
// engine at a time (concurrent use is detected and rejected), with all
// pool fan-out kept internal. Callers that want concurrency across
// queries keep using one engine per goroutine, exactly as before.
package traverse
