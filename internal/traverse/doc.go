// Package traverse is the shared BFS engine behind the QbS index: every
// hot traversal — labelling construction, query search and dynamic
// column repair — runs on the two kernels defined here.
//
// # Direction-optimizing expansion (Expander)
//
// A level-synchronous BFS normally expands top-down: scan every frontier
// vertex and stamp its unseen neighbours. On small-world graphs one or
// two levels hold most of the graph, and top-down then touches almost
// every arc just to rediscover vertices that are already stamped.
// Beamer's direction-optimizing BFS flips those dense levels bottom-up:
// iterate the *unvisited* vertices and stop at the first neighbour found
// in the frontier (a parent), so a vertex of degree d costs on average
// far fewer than d probes.
//
// The switch uses the classic α/β heuristic:
//
//   - top-down → bottom-up when m_f·α > m_u, where m_f is the sum of
//     frontier degrees (arcs the next top-down step would scan) and m_u
//     is the arc mass not yet explored;
//   - bottom-up → top-down when |frontier|·β < |V| (the frontier has
//     shrunk enough that scanning all unvisited vertices is wasteful).
//
// The bottom-up scan is driven by a per-side visited bitmap packed 64
// vertices to a word, so fully-visited regions skip in one comparison.
// The bitmap is maintained incrementally (one bit set per discovery) and
// cleared in O(words touched), so queries that never go dense pay almost
// nothing for it.
//
// Both directions produce identical distance assignments — bottom-up
// only changes the order in which a level's vertices are emitted — so
// search results are unchanged.
//
// On a directed graph the two directions walk different arc sets:
// top-down pushes along the traversal's forward arcs, while bottom-up
// asks "which of my *in*-neighbours is on the frontier". Both kernels
// therefore accept an explicit (push, pull) adjacency pair
// (Expander.BeginDirected, MultiBFS.RunDirected) where pull is the
// reverse adjacency of push; the undirected entry points pass the same
// graph for both.
//
// # Bit-parallel multi-source labelling BFS (MultiBFS)
//
// QbS construction runs one landmark-rooted BFS per landmark. MultiBFS
// instead runs up to 64 of them in a single graph sweep: each vertex
// carries uint64 words whose bit i belongs to source i, and a frontier
// expansion ORs a vertex's word into its neighbours, advancing all
// sources one level per pass. With the paper's default |R| = 20 the
// whole labelling is one sweep instead of twenty.
//
// The engine natively implements Algorithm 2's two-frontier discipline,
// per bit: QL (reached by a shortest path avoiding all other landmarks)
// and QN (every shortest path passes through another landmark). Per
// vertex it keeps five words —
//
//	curL/curN    frontier membership at the current level
//	nextL/nextN  accumulating frontier for the next level
//	visited      sources that have reached the vertex
//
// and a level settles as: bits first arriving via QL join QL (and emit a
// label or, at a landmark, a meta-edge); bits arriving only via QN join
// QN; landmarks absorb all bits into QN. Because levels are settled
// synchronously after the whole frontier is scanned, the result is
// bit-identical to running the scalar QL/QN BFS per source, in any
// frontier order — which also lets MultiBFS reuse the same α/β
// direction switch for its dense levels.
package traverse
