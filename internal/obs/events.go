package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Structured event journal: the "what happened" half of observability.
// Components declare their events once (EventDef), then emit leveled,
// trace-correlated records with up to maxSpanAttrs typed attributes
// into a lock-free bounded ring. Three properties keep it safe to wire
// into warm paths and failure loops alike:
//
//   - the drop path for disabled levels is allocation-free: Emit's
//     variadic attr slice never escapes, so a below-level call leaves
//     no garbage behind;
//   - each (component, event) pair carries its own GCRA token bucket,
//     so a wedged component retrying in a tight loop cannot flush the
//     journal or melt a log pipeline — suppressed emits are counted
//     and surfaced on the next admitted record;
//   - every admitted event bumps a qbs_events_total{component,level}
//     counter, so the journal's shape is visible in /metrics even
//     after the ring has wrapped.

// Level orders event severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a level name to its Level.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "debug":
		return LevelDebug, true
	case "info":
		return LevelInfo, true
	case "warn", "warning":
		return LevelWarn, true
	case "error":
		return LevelError, true
	}
	return 0, false
}

// Event is one admitted journal record. It is immutable after emit:
// readers get the pointer, never a lock.
type Event struct {
	Component  string
	Event      string
	Level      Level
	UnixNs     int64
	TraceID    string
	Suppressed uint64 // rate-limited emits of this def since the previous admitted one
	nattrs     uint8
	attrs      [maxSpanAttrs]Attr
}

// EventView is the JSON-ready form served at /debug/logs.
type EventView struct {
	Component  string         `json:"component"`
	Event      string         `json:"event"`
	Level      string         `json:"level"`
	UnixNs     int64          `json:"unix_ns"`
	TraceID    string         `json:"trace_id,omitempty"`
	Suppressed uint64         `json:"suppressed,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// View renders the event for JSON serving.
func (e *Event) View() EventView {
	v := EventView{
		Component:  e.Component,
		Event:      e.Event,
		Level:      e.Level.String(),
		UnixNs:     e.UnixNs,
		TraceID:    e.TraceID,
		Suppressed: e.Suppressed,
	}
	if e.nattrs > 0 {
		v.Attrs = make(map[string]any, e.nattrs)
		for _, a := range e.attrs[:e.nattrs] {
			if a.IsInt {
				v.Attrs[a.Key] = a.Int
			} else {
				v.Attrs[a.Key] = a.Str
			}
		}
	}
	return v
}

// Str builds a string attribute. The key and value are stored by
// reference, so pass static or already-materialized strings.
func Str(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Int: val, IsInt: true} }

// Rate-limit defaults: an event that fires more than defaultEventRate
// times per second sustained is being retried in a loop, not reporting
// news. The burst lets a genuine incident land its first records
// un-throttled.
const (
	defaultEventRate  = 50 // admitted events/second per (component, event)
	defaultEventBurst = 50
)

// Error-spike window: the journal counts error-level admits in 10s
// buckets so the flight recorder can trigger on a spike.
const (
	errBucketNs  = int64(10 * time.Second)
	errBucketCnt = 12 // 120s of history
)

type errBucket struct {
	epoch atomic.Int64
	n     atomic.Uint64
}

// Journal is a bounded, lock-free ring of events plus the def table
// feeding it. The zero value is not ready; use NewJournal.
type Journal struct {
	minLevel atomic.Int32
	pos      atomic.Uint64
	slots    []atomic.Pointer[Event]
	reg      *Registry

	errWin [errBucketCnt]errBucket

	mu   sync.Mutex
	defs map[string]*EventDef
}

// NewJournal creates a journal retaining up to capacity events, with
// qbs_events_total counters registered on reg (nil disables counters).
// The initial minimum level is Info.
func NewJournal(capacity int, reg *Registry) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	j := &Journal{
		slots: make([]atomic.Pointer[Event], capacity),
		reg:   reg,
		defs:  make(map[string]*EventDef),
	}
	j.minLevel.Store(int32(LevelInfo))
	return j
}

// DefaultJournal collects process-wide events: store and engine
// background paths (WAL, checkpoints, compaction) and command
// lifecycle. Tiers hosted in one process (tests) use their own
// journals so records stay attributable.
var DefaultJournal = NewJournal(1024, Default)

// SetMinLevel sets the minimum admitted level. Emits below it take the
// allocation-free drop path.
func (j *Journal) SetMinLevel(l Level) { j.minLevel.Store(int32(l)) }

// MinLevel returns the current minimum admitted level.
func (j *Journal) MinLevel() Level { return Level(j.minLevel.Load()) }

// Def declares (or returns the existing) event definition for one
// (component, event) pair at the given level, with the default rate
// limit. Hold the returned pointer; Def takes a lock.
func (j *Journal) Def(component, event string, level Level) *EventDef {
	return j.DefRate(component, event, level, defaultEventRate, defaultEventBurst)
}

// DefRate is Def with an explicit token-bucket rate: up to burst
// events immediately, perSec sustained. perSec <= 0 disables limiting.
func (j *Journal) DefRate(component, event string, level Level, perSec, burst int) *EventDef {
	j.mu.Lock()
	defer j.mu.Unlock()
	key := component + "\x00" + event
	if d, ok := j.defs[key]; ok {
		return d
	}
	d := &EventDef{j: j, Component: component, Event: event, level: level}
	if perSec > 0 {
		if burst < 1 {
			burst = 1
		}
		d.periodNs = int64(time.Second) / int64(perSec)
		d.limitNs = int64(burst) * d.periodNs
	}
	if j.reg != nil {
		d.counter = j.reg.Counter("qbs_events_total",
			`component="`+EscapeLabel(component)+`",level="`+level.String()+`"`)
	}
	j.defs[key] = d
	return d
}

// add publishes an admitted event into the ring.
func (j *Journal) add(ev *Event) {
	i := (j.pos.Add(1) - 1) % uint64(len(j.slots))
	j.slots[i].Store(ev)
}

// noteError records one error-level admit into the spike window.
func (j *Journal) noteError(nowNs int64) {
	e := nowNs / errBucketNs
	b := &j.errWin[uint64(e)%errBucketCnt]
	if old := b.epoch.Load(); old != e {
		if b.epoch.CompareAndSwap(old, e) {
			b.n.Store(0)
		}
	}
	b.n.Add(1)
}

// ErrorsInLast counts error-level events admitted in the trailing
// window d (capped at the journal's 120s of history).
func (j *Journal) ErrorsInLast(d time.Duration) uint64 {
	if j == nil {
		return 0
	}
	now := time.Now().UnixNano()
	e := now / errBucketNs
	k := int(int64(d)/errBucketNs) + 1
	if k > errBucketCnt {
		k = errBucketCnt
	}
	var total uint64
	for i := 0; i < k; i++ {
		b := &j.errWin[uint64(e-int64(i))%errBucketCnt]
		if b.epoch.Load() == e-int64(i) {
			total += b.n.Load()
		}
	}
	return total
}

// Recent returns up to limit events, newest first, filtered to those
// at or above minLevel and (when component != "") to one component.
func (j *Journal) Recent(limit int, minLevel Level, component string) []*Event {
	if j == nil {
		return nil
	}
	n := len(j.slots)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]*Event, 0, limit)
	pos := j.pos.Load()
	for k := 0; k < n && len(out) < limit; k++ {
		i := (pos + uint64(n) - 1 - uint64(k)) % uint64(n)
		ev := j.slots[i].Load()
		if ev == nil {
			continue
		}
		if ev.Level < minLevel {
			continue
		}
		if component != "" && ev.Component != component {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// ServeHTTP serves the journal as JSON: GET /debug/logs with optional
// ?n=, ?min_level= and ?component= filters, newest first.
func (j *Journal) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 100
	if s := q.Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			limit = v
		}
	}
	minLevel := LevelDebug
	if s := q.Get("min_level"); s != "" {
		l, ok := ParseLevel(s)
		if !ok {
			http.Error(w, "unknown level "+strconv.Quote(s), http.StatusBadRequest)
			return
		}
		minLevel = l
	}
	events := j.Recent(limit, minLevel, q.Get("component"))
	views := make([]EventView, len(events))
	for i, ev := range events {
		views[i] = ev.View()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		MinLevel string      `json:"journal_min_level"`
		Events   []EventView `json:"events"`
	}{j.MinLevel().String(), views})
}

// EventDef is one declared (component, event) pair. Emit is safe for
// concurrent use; the def is the handle components hold, so the hot
// path never touches the journal's def table.
type EventDef struct {
	j         *Journal
	Component string
	Event     string
	level     Level
	counter   *Counter

	// GCRA token bucket: tat is the theoretical arrival time (virtual
	// clock, unix ns). An emit is admitted while the virtual clock has
	// not run more than limitNs ahead of real time.
	tat        atomic.Int64
	periodNs   int64 // ns between admitted events at the sustained rate; 0 = unlimited
	limitNs    int64 // burst allowance in ns
	suppressed atomic.Uint64
}

// Level returns the def's severity.
func (d *EventDef) Level() Level { return d.level }

// admit runs the token bucket; returns false when rate-limited.
func (d *EventDef) admit(nowNs int64) bool {
	if d.periodNs == 0 {
		return true
	}
	for {
		tat := d.tat.Load()
		newTat := tat
		if newTat < nowNs {
			newTat = nowNs
		}
		newTat += d.periodNs
		if newTat-nowNs > d.limitNs {
			return false
		}
		if d.tat.CompareAndSwap(tat, newTat) {
			return true
		}
	}
}

// Emit records one event with up to maxSpanAttrs attributes. Below the
// journal's minimum level this is a constant-time, allocation-free
// no-op: the variadic attr slice never escapes, so the call site's
// backing array stays on the stack.
func (d *EventDef) Emit(attrs ...Attr) {
	d.emit("", attrs)
}

// EmitTrace is Emit with a correlating trace ID (the request's
// X-Qbs-Trace-Id), so /debug/logs lines join /debug/traces trees.
func (d *EventDef) EmitTrace(traceID string, attrs ...Attr) {
	d.emit(traceID, attrs)
}

func (d *EventDef) emit(traceID string, attrs []Attr) {
	if d == nil {
		return
	}
	j := d.j
	if j == nil || int32(d.level) < j.minLevel.Load() {
		return
	}
	now := time.Now().UnixNano()
	if !d.admit(now) {
		d.suppressed.Add(1)
		return
	}
	ev := &Event{
		Component:  d.Component,
		Event:      d.Event,
		Level:      d.level,
		UnixNs:     now,
		TraceID:    traceID,
		Suppressed: d.suppressed.Swap(0),
	}
	n := len(attrs)
	if n > maxSpanAttrs {
		n = maxSpanAttrs
	}
	copy(ev.attrs[:n], attrs[:n])
	ev.nattrs = uint8(n)
	if d.counter != nil {
		d.counter.Inc()
	}
	if d.level >= LevelError {
		j.noteError(now)
	}
	j.add(ev)
}
