package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime gauges: sampled into the registry at scrape time. One
// ReadMemStats (a brief stop-the-world) serves all heap gauges of a
// scrape; samples are cached briefly so stacked registries rendering
// Default in one scrape don't repeat it.

type memSampler struct {
	mu   sync.Mutex
	ms   runtime.MemStats
	when time.Time
}

func (s *memSampler) sample() *runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.when) > 100*time.Millisecond {
		runtime.ReadMemStats(&s.ms)
		s.when = time.Now()
	}
	return &s.ms
}

// RegisterRuntime installs goroutine, heap, and GC gauges on r. The
// Default registry gets them automatically.
func RegisterRuntime(r *Registry) {
	var s memSampler
	r.GaugeFunc("qbs_goroutines", "", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("qbs_heap_alloc_bytes", "", func() float64 {
		return float64(s.sample().HeapAlloc)
	})
	r.GaugeFunc("qbs_heap_objects", "", func() float64 {
		return float64(s.sample().HeapObjects)
	})
	r.GaugeFunc("qbs_gc_pause_total_ns", "", func() float64 {
		return float64(s.sample().PauseTotalNs)
	})
	r.GaugeFunc("qbs_gc_cycles_total", "", func() float64 {
		return float64(s.sample().NumGC)
	})
}

func init() {
	RegisterRuntime(Default)
}
