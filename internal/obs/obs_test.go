package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("qbs_test_total", `endpoint="/spg"`)
	c2 := r.Counter("qbs_test_total", `endpoint="/spg"`)
	if c1 != c2 {
		t.Fatal("same series returned distinct counters")
	}
	c3 := r.Counter("qbs_test_total", `endpoint="/paths"`)
	if c1 == c3 {
		t.Fatal("distinct label sets shared a counter")
	}
	c1.Inc()
	c1.Add(2)
	if c1.Load() != 3 {
		t.Fatalf("counter = %d, want 3", c1.Load())
	}
	g := r.Gauge("qbs_test_gauge", "")
	g.Set(5)
	g.Add(-2)
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("qbs_test_total", `endpoint="/spg"`)
}

func TestWritePrometheusAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Counter("qbs_demo_requests_total", `endpoint="/spg"`).Add(7)
	r.Counter("qbs_demo_requests_total", `endpoint="/paths"`).Add(2)
	r.Gauge("qbs_demo_inflight", `endpoint="/spg"`).Set(1)
	r.GaugeFunc("qbs_demo_temp", "", func() float64 { return 1.5 })
	h := r.Histogram("qbs_demo_latency_ns", `endpoint="/spg"`)
	for i := int64(1); i <= 100; i++ {
		h.ObserveNs(i * 1000)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE qbs_demo_requests_total counter",
		`qbs_demo_requests_total{endpoint="/spg"} 7`,
		`qbs_demo_requests_total{endpoint="/paths"} 2`,
		"# TYPE qbs_demo_inflight gauge",
		"# TYPE qbs_demo_latency_ns summary",
		`qbs_demo_latency_ns{endpoint="/spg",quantile="0.5"}`,
		`qbs_demo_latency_ns{endpoint="/spg",quantile="0.999"}`,
		`qbs_demo_latency_ns_count{endpoint="/spg"} 100`,
		"# TYPE qbs_demo_latency_ns_max gauge",
		`qbs_demo_latency_ns_max{endpoint="/spg"} 100000`,
		"qbs_demo_temp 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, out)
	}
}

// Stacked registries must group shared families and drop duplicate
// series rather than emit an invalid scrape.
func TestWritePrometheusStacked(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("qbs_shared_total", `src="a"`).Add(1)
	b.Counter("qbs_shared_total", `src="b"`).Add(2)
	b.Counter("qbs_shared_total", `src="a"`).Add(99) // duplicate series; dropped
	b.Counter("qbs_only_b_total", "").Add(3)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("stacked scrape invalid: %v\n%s", err, out)
	}
	if strings.Count(out, "# TYPE qbs_shared_total counter") != 1 {
		t.Fatalf("family TYPE emitted more than once:\n%s", out)
	}
	if !strings.Contains(out, `qbs_shared_total{src="a"} 1`) {
		t.Fatalf("first registration lost:\n%s", out)
	}
	if strings.Contains(out, "99") {
		t.Fatalf("duplicate series leaked:\n%s", out)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate series":  "a_total 1\na_total 1\n",
		"malformed line":    "not a metric!!! x\n",
		"bad value":         "a_total pizza\n",
		"interleaved":       "a_total 1\nb_total 1\na_total{x=\"1\"} 2\n",
		"duplicate TYPE":    "# TYPE a counter\na 1\n# TYPE a counter\n",
		"malformed comment": "# WHAT\n",
	}
	for name, in := range cases {
		if err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	ok := "# TYPE a_total counter\na_total{x=\"1\"} 1\na_total{x=\"2\"} 2\n# TYPE b gauge\nb 0.5\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("valid scrape rejected: %v", err)
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace id length: %q %q", a, b)
	}
	if a == b {
		t.Fatal("trace ids collide")
	}
}
