package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndStorage(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(0) // retain everything

	tb := tr.Begin("GET /spg", "deadbeef00000001", 0, false)
	root := tb.Root()
	if root == nil || root.Parent != 0 {
		t.Fatalf("root = %+v", root)
	}
	child := tb.StartSpan("stage:expand")
	child.SetInt("arcs", 42)
	child.End()
	grand := tb.StartSpanUnder(child.ID, "wal.append")
	grand.SetStr("op", "insert")
	grand.End()

	id, kept := tr.Finish(tb)
	if !kept || id != "deadbeef00000001" {
		t.Fatalf("Finish = %q, %v", id, kept)
	}
	st := tr.Store().Get(id)
	if st == nil {
		t.Fatal("trace not stored")
	}
	if len(st.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(st.Spans))
	}
	if st.Root != "GET /spg" || st.Spans[0].ParentID != "" {
		t.Fatalf("root span = %+v", st.Spans[0])
	}
	if st.Spans[1].ParentID != st.Spans[0].SpanID {
		t.Fatalf("child parent = %q, want root %q", st.Spans[1].ParentID, st.Spans[0].SpanID)
	}
	if st.Spans[2].ParentID != st.Spans[1].SpanID {
		t.Fatalf("grandchild parent = %q, want %q", st.Spans[2].ParentID, st.Spans[1].SpanID)
	}
	if got := st.Spans[1].Attrs["arcs"]; got != int64(42) {
		t.Fatalf("attr arcs = %v (%T)", got, got)
	}
	if got := st.Spans[2].Attrs["op"]; got != "insert" {
		t.Fatalf("attr op = %v", got)
	}
}

func TestTailSamplingDecisions(t *testing.T) {
	tr := NewTracer(64)
	tr.SetSlowThreshold(50 * time.Millisecond)

	// Fast, clean, unforced, no head sampling: dropped.
	tb := tr.Begin("q", "", 0, false)
	if id, kept := tr.Finish(tb); kept {
		t.Fatalf("fast trace kept as %q", id)
	}

	// Errored: kept, ID minted lazily.
	tb = tr.Begin("q", "", 0, false)
	tb.StartSpan("attempt").Fail()
	id, kept := tr.Finish(tb)
	if !kept || id == "" {
		t.Fatalf("errored trace dropped (id=%q kept=%v)", id, kept)
	}
	if st := tr.Store().Get(id); st == nil || !st.Error {
		t.Fatalf("stored errored trace = %+v", st)
	}

	// Slow: kept.
	tb = tr.Begin("q", "", 0, false)
	tb.Root().Start = time.Now().Add(-time.Second) // simulate a 1s request
	if _, kept := tr.Finish(tb); !kept {
		t.Fatal("slow trace dropped")
	}

	// Forced (upstream sampled flag): kept.
	tb = tr.Begin("q", "", 0, true)
	if !tb.Sampled() {
		t.Fatal("forced trace not Sampled()")
	}
	if _, kept := tr.Finish(tb); !kept {
		t.Fatal("forced trace dropped")
	}

	// Head sampling: 1 in 4 kept.
	tr2 := NewTracer(64)
	tr2.SetSlowThreshold(time.Hour)
	tr2.SetHeadEvery(4)
	keptN := 0
	for i := 0; i < 16; i++ {
		tb := tr2.Begin("q", "", 0, false)
		if _, kept := tr2.Finish(tb); kept {
			keptN++
		}
	}
	if keptN != 4 {
		t.Fatalf("head sampling kept %d of 16, want 4", keptN)
	}
}

// TestTailRetentionUnderLoad is the retention property the issue pins:
// with concurrent load and head sampling effectively off, every slow
// and every errored trace must still be retained.
func TestTailRetentionUnderLoad(t *testing.T) {
	tr := NewTracer(4096)
	tr.SetSlowThreshold(10 * time.Millisecond)

	const workers = 8
	const perWorker = 50
	var mu sync.Mutex
	want := make(map[string]bool)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tb := tr.Begin("load", "", 0, false)
				switch i % 3 {
				case 0: // slow
					tb.Root().Start = time.Now().Add(-20 * time.Millisecond)
				case 1: // errored
					tb.MarkError()
				default: // fast and clean: must drop
				}
				id, kept := tr.Finish(tb)
				if i%3 == 2 {
					if kept {
						t.Errorf("fast clean trace retained: %s", id)
					}
					continue
				}
				if !kept {
					t.Errorf("slow/errored trace dropped (i=%d)", i)
					continue
				}
				mu.Lock()
				want[id] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	for id := range want {
		if tr.Store().Get(id) == nil {
			t.Fatalf("retained trace %s missing from store", id)
		}
	}
	// i%3 over 0..49 yields 17 slow + 17 errored retained per worker.
	if len(want) != workers*34 {
		t.Fatalf("retained %d traces, want %d", len(want), workers*34)
	}
}

func TestSpanStoreRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSlowThreshold(0)
	var ids []string
	for i := 0; i < 10; i++ {
		tb := tr.Begin("q", "", 0, false)
		id, kept := tr.Finish(tb)
		if !kept {
			t.Fatal("threshold 0 must retain everything")
		}
		ids = append(ids, id)
	}
	recent := tr.Store().Recent(0, 0, false)
	if len(recent) != 4 {
		t.Fatalf("recent = %d, want 4", len(recent))
	}
	// Newest first: the last stored trace leads.
	if recent[0].TraceID != ids[9] {
		t.Fatalf("recent[0] = %s, want %s", recent[0].TraceID, ids[9])
	}
	if tr.Store().Get(ids[0]) != nil {
		t.Fatal("oldest trace should have been overwritten")
	}
}

func TestSpanBufferOverflowCountsDropped(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSlowThreshold(0)
	tb := tr.Begin("q", "", 0, false)
	for i := 0; i < maxTraceSpans+5; i++ {
		sp := tb.StartSpan("s")
		sp.End() // nil-safe once the buffer is full
	}
	id, _ := tr.Finish(tb)
	st := tr.Store().Get(id)
	if st == nil || st.DroppedSpans != 6 {
		// root + (maxTraceSpans-1) children fit; 5 more + 1 = 6 dropped.
		t.Fatalf("dropped = %+v", st)
	}
}

func TestRecentFilters(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSlowThreshold(0)

	slow := tr.Begin("slow", "", 0, false)
	slow.Root().Start = time.Now().Add(-100 * time.Millisecond)
	slowID, _ := tr.Finish(slow)

	errd := tr.Begin("err", "", 0, false)
	errd.MarkError()
	errID, _ := tr.Finish(errd)

	fast := tr.Begin("fast", "", 0, false)
	tr.Finish(fast)

	if got := tr.Store().Recent(0, 50*time.Millisecond, false); len(got) != 1 || got[0].TraceID != slowID {
		t.Fatalf("minDur filter = %+v", got)
	}
	if got := tr.Store().Recent(0, 0, true); len(got) != 1 || got[0].TraceID != errID {
		t.Fatalf("error filter = %+v", got)
	}
	if got := tr.Store().Recent(2, 0, false); len(got) != 2 {
		t.Fatalf("limit = %d, want 2", len(got))
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	v := FormatTraceparent("0123456789abcdef", 0xfeed, true)
	if v != "00-00000000000000000123456789abcdef-000000000000feed-01" {
		t.Fatalf("format = %q", v)
	}
	id, parent, sampled, ok := ParseTraceparent(v)
	if !ok || id != "0123456789abcdef" || parent != 0xfeed || !sampled {
		t.Fatalf("parse = %q %x %v %v", id, parent, sampled, ok)
	}

	// 32-hex foreign trace IDs survive unchanged.
	foreign := "4bf92f3577b34da6a3ce929d0e0e4736"
	v = FormatTraceparent(foreign, 1, false)
	id, _, sampled, ok = ParseTraceparent(v)
	if !ok || id != foreign || sampled {
		t.Fatalf("foreign parse = %q %v %v", id, sampled, ok)
	}

	for _, bad := range []string{
		"", "00", "01-00000000000000000123456789abcdef-000000000000feed-01",
		"00-zz000000000000000123456789abcdef-000000000000feed-01",
		"00-00000000000000000123456789abcdef-zz00000000000eed-01",
		"00-00000000000000000123456789abcdef-000000000000feed-zz",
	} {
		if _, _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestMergeStored(t *testing.T) {
	a := &StoredTrace{TraceID: "t", Root: "router", DurationNs: 10, Spans: []StoredSpan{
		{SpanID: "01", Name: "router"},
		{SpanID: "02", ParentID: "01", Name: "attempt"},
	}}
	b := &StoredTrace{TraceID: "t", Root: "GET /spg", Error: true, Spans: []StoredSpan{
		{SpanID: "03", ParentID: "02", Name: "GET /spg"},
		{SpanID: "02", ParentID: "01", Name: "attempt"}, // duplicate from re-fetch
	}}
	m := MergeStored(a, b)
	if len(m.Spans) != 3 || !m.Error || m.Root != "router" {
		t.Fatalf("merge = %+v", m)
	}
	if MergeStored(nil, b) != b || MergeStored(a, nil) != a {
		t.Fatal("nil merge identity broken")
	}
	other := &StoredTrace{TraceID: "u"}
	if got := MergeStored(a, other); got != a {
		t.Fatal("cross-trace merge must keep dst")
	}
}

func TestFinishDropPathZeroAllocs(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(time.Hour)
	// Warm the freelist.
	for i := 0; i < 4; i++ {
		tr.Finish(tr.Begin("q", "", 0, false))
	}
	allocs := testing.AllocsPerRun(200, func() {
		tb := tr.Begin("q", "", 0, false)
		sp := tb.StartSpan("stage")
		sp.SetInt("n", 1)
		sp.End()
		tr.Finish(tb)
	})
	if allocs != 0 {
		t.Fatalf("drop path allocs = %v, want 0", allocs)
	}
}

func TestExemplarRendering(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("qbs_test_latency_ns", `endpoint="/spg"`)
	c := reg.Counter("qbs_test_retries_total", "")
	for i := 0; i < 100; i++ {
		h.ObserveNs(int64(1000 + i))
	}
	h.SetExemplar(1050, "abc123")
	c.Inc()
	c.SetExemplar("def456")

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `# {trace_id="abc123"} 1050`) {
		t.Fatalf("histogram exemplar missing:\n%s", text)
	}
	if !strings.Contains(text, `qbs_test_retries_total 1 # {trace_id="def456"} 1`) {
		t.Fatalf("counter exemplar missing:\n%s", text)
	}
	if err := ValidateExposition([]byte(text)); err != nil {
		t.Fatalf("exposition with exemplars invalid: %v\n%s", err, text)
	}
}

func TestValidateExpositionRejectsBadExemplar(t *testing.T) {
	for _, bad := range []string{
		"qbs_x_total 1 # {trace_id=\"a\"}\n",      // missing value
		"qbs_x_total 1 # {trace_id} 1\n",          // malformed labels
		"qbs_x_total 1 # {trace_id=\"a\"} nope\n", // bad value
	} {
		if err := ValidateExposition([]byte(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	good := "qbs_x_total 1 # {trace_id=\"a\"} 1\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Fatalf("rejected %q: %v", good, err)
	}
}

func TestExemplarNearPrefersOctave(t *testing.T) {
	h := NewHistogram()
	h.SetExemplar(100, "low")
	h.SetExemplar(1_000_000, "high")
	if e := h.ExemplarNear(120); e == nil || e.TraceID != "low" {
		t.Fatalf("near low = %+v", e)
	}
	if e := h.ExemplarNear(900_000); e == nil || e.TraceID != "high" {
		t.Fatalf("near high = %+v", e)
	}
	if e := h.ExemplarNear(1 << 40); e == nil || e.TraceID != "high" {
		t.Fatalf("above all = %+v", e)
	}
	if NewHistogram().ExemplarNear(5) != nil {
		t.Fatal("empty histogram must have no exemplar")
	}
}

func TestTracerConcurrentFinish(t *testing.T) {
	tr := NewTracer(128)
	tr.SetSlowThreshold(0)
	tr.SetHeadEvery(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tb := tr.Begin("c", "", 0, i%5 == 0)
				sp := tb.StartSpan("s")
				sp.SetStr("k", "v")
				sp.End()
				tr.Finish(tb)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Store().Recent(0, 0, false)); got != 128 {
		t.Fatalf("store filled %d of 128 slots", got)
	}
}
