package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v  atomic.Uint64
	ex atomic.Pointer[Exemplar]
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered series: a family name plus an optional,
// pre-rendered label set (`key="value",key2="value2"` without braces).
type metric struct {
	family string
	labels string
	kind   metricKind
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

func (m *metric) key() string { return m.family + "{" + m.labels + "}" }

// Registry is an ordered collection of named metrics. Get-or-create
// accessors make registration idempotent; hold the returned pointer on
// hot paths instead of re-looking it up. A process-wide Default registry
// collects cross-layer metrics (engine, WAL, runtime); servers keep
// their own registries for per-endpoint series so tests and multi-server
// processes stay isolated, and render both on scrape.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
	order []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// Default is the process-wide registry.
var Default = NewRegistry()

func (r *Registry) lookup(family, labels string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := family + "{" + labels + "}"
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic("obs: metric " + key + " re-registered with a different type")
		}
		return m
	}
	m := &metric{family: family, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = NewHistogram()
	}
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under family{labels}, creating
// it on first use. labels is a pre-rendered label list without braces
// (e.g. `endpoint="/spg"`), or "" for none.
func (r *Registry) Counter(family, labels string) *Counter {
	return r.lookup(family, labels, kindCounter).c
}

// Gauge returns the gauge registered under family{labels}.
func (r *Registry) Gauge(family, labels string) *Gauge {
	return r.lookup(family, labels, kindGauge).g
}

// Histogram returns the histogram registered under family{labels}.
func (r *Registry) Histogram(family, labels string) *Histogram {
	return r.lookup(family, labels, kindHistogram).h
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// scrape time. Re-registering the same series replaces the callback.
func (r *Registry) GaugeFunc(family, labels string, fn func() float64) {
	m := r.lookup(family, labels, kindGaugeFunc)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// snapshot copies the registration order under the lock.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.order))
	copy(out, r.order)
	return out
}
