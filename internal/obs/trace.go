package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// TraceHeader carries a request's trace ID across hops: generated at
// the query router (or accepted from the client), forwarded unchanged
// on retried and failed-over backend requests, and echoed on every
// response so a slow query can be correlated across router, backend,
// and slow-query log entries.
const TraceHeader = "X-Qbs-Trace-Id"

var traceSeq atomic.Uint64

// NewTraceID returns a fresh 16-hex-char trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively impossible, but a counter
		// keeps IDs unique rather than failing the request.
		n := traceSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// Stage is one step of the query serving path.
type Stage uint8

const (
	StageParse     Stage = iota // request decoding and argument validation
	StageSketch                 // landmark label scan + sketch assembly
	StageExpand                 // sketch-guided bidirectional BFS
	StageExtract                // shortest-path subgraph extraction/recovery
	StageSerialize              // response encoding
	NumStages
)

var stageNames = [NumStages]string{"parse", "sketch", "expand", "extract", "serialize"}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Trace accumulates one request's observability payload as it moves
// through the handler: stage durations plus the engine counters the
// searcher reports through its QueryStats out-param. The middleware
// owns the struct; handlers fill it via FromContext (nil-safe on paths
// that never attached one).
type Trace struct {
	ID       string
	StageNs  [NumStages]int64
	HasQuery bool
	U, V     int64
	Dist     int32
	// Spans is the request's span buffer when span tracing is active;
	// nil-safe to record into (see TraceBuf). Handlers use it to hang
	// child spans (WAL append, column re-BFS) under the request root.
	Spans *TraceBuf
	// Engine counters for the slow-query log.
	ArcsScanned      int64
	FrontierWords    int64
	PushPullSwitches int64
	LabelEntries     int64
}

// SetStage records one stage's duration.
func (t *Trace) SetStage(s Stage, ns int64) {
	if t == nil || s >= NumStages {
		return
	}
	t.StageNs[s] = ns
}

type traceCtxKey struct{}

// NewContext attaches tr to ctx.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// FromContext returns the request's Trace, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}
