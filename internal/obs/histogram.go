package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-bucketed latency histogram. Values (nanoseconds, or any
// non-negative int64) land in buckets with 32 sub-buckets per power of
// two, so a quantile estimate is off by at most a factor of 33/32
// (~3.1%) — and exact below 64. Every operation is a handful of atomic
// adds: recording is lock-free, wait-free, allocation-free, and safe
// under the race detector; histograms merge bucket-wise, so per-worker
// instances can be combined into one distribution.

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per octave
	// Buckets 0..63 hold values 0..63 exactly; each later group of 32
	// covers one octave up to 2^63-1.
	histBuckets = (64 - histSubBits) * histSub
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histSub*2 {
		return int(v)
	}
	top := bits.Len64(uint64(v)) - 1
	return (top-histSubBits)*histSub + int(v>>(top-histSubBits))
}

// bucketMax returns the largest value mapping to bucket idx.
func bucketMax(idx int) int64 {
	if idx < histSub*2 {
		return int64(idx)
	}
	o := idx/histSub - 1
	m := int64(idx - o*histSub)
	return (m+1)<<o - 1
}

// Histogram records a distribution of non-negative int64 values.
// The zero value is NOT ready; use NewHistogram (or Registry.Histogram).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	ex      atomic.Pointer[exemplars]
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one value; negative values clamp to zero.
//
//qbs:zeroalloc
func (h *Histogram) ObserveNs(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// values. The estimate is the upper bound of the bucket holding the
// rank-⌈q·count⌉ value, clamped to the observed max, so it is within a
// factor of 33/32 above the exact sample quantile. Returns 0 when
// empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := bucketMax(i)
			if mx := h.max.Load(); mx < v {
				v = mx
			}
			return v
		}
	}
	return h.max.Load()
}

// Merge adds o's recorded values into h. Safe against concurrent
// Observe on either side (the merged view may then be slightly torn,
// as any concurrent snapshot is).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.buckets {
		if c := o.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	v := o.max.Load()
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// observers; intended for single-owner histograms (benchmarks).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// HistogramSummary is a rendered view of a histogram: the quantiles the
// exposition format and bench snapshots report.
type HistogramSummary struct {
	Count uint64 `json:"count"`
	SumNs int64  `json:"sum_ns"`
	P50   int64  `json:"p50_ns"`
	P95   int64  `json:"p95_ns"`
	P99   int64  `json:"p99_ns"`
	P999  int64  `json:"p999_ns"`
	MaxNs int64  `json:"max_ns"`
}

// Summary renders the histogram's headline quantiles.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		SumNs: h.Sum(),
		P50:   h.Quantile(0.5),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		MaxNs: h.Max(),
	}
}
