package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSLORecordAndWindows(t *testing.T) {
	s := NewSLO("read", "spg", 0.99, 50*time.Millisecond)
	for i := 0; i < 90; i++ {
		s.Record(int64(time.Millisecond), 200) // good
	}
	for i := 0; i < 5; i++ {
		s.Record(int64(time.Millisecond), 503) // bad: availability
	}
	for i := 0; i < 5; i++ {
		s.Record(int64(100*time.Millisecond), 200) // bad: latency
	}
	good, total := s.Window(5 * time.Minute)
	if total != 100 || good != 90 {
		t.Fatalf("window = %d/%d, want 90/100", good, total)
	}
	// bad fraction 0.10, budget 0.01 -> burn rate 10.
	if br := s.BurnRate(5 * time.Minute); br < 9.9 || br > 10.1 {
		t.Fatalf("burn rate = %v, want ~10", br)
	}
	// The longer windows include the same samples.
	if _, total := s.Window(6 * time.Hour); total != 100 {
		t.Fatalf("6h window total = %d", total)
	}
}

func TestSLOFastBurn(t *testing.T) {
	s := NewSLO("read", "spg", 0.999, 0)
	// Below the minimum sample count nothing fires, no matter how bad.
	for i := 0; i < fastBurnMinTotal-1; i++ {
		s.Record(0, 500)
	}
	if s.FastBurn() {
		t.Fatal("fast burn fired below the minimum sample count")
	}
	s.Record(0, 500)
	// All-bad traffic burns at 1/(1-0.999) = 1000x >> 14.4.
	if !s.FastBurn() {
		t.Fatal("fast burn did not fire on all-bad traffic")
	}

	healthy := NewSLO("read", "spg", 0.999, 0)
	for i := 0; i < 1000; i++ {
		healthy.Record(0, 200)
	}
	if healthy.FastBurn() {
		t.Fatal("fast burn fired on healthy traffic")
	}
}

func TestSLOBurnRateEmptyWindow(t *testing.T) {
	s := NewSLO("read", "spg", 0.999, 0)
	if br := s.BurnRate(5 * time.Minute); br != 0 {
		t.Fatalf("empty window burn rate = %v, want 0", br)
	}
	if s.FastBurn() {
		t.Fatal("fast burn on empty window")
	}
}

func TestSLOSetEndpointIndexAndGauges(t *testing.T) {
	reg := NewRegistry()
	ss := NewSLOSet(reg)
	read := ss.Add(NewSLO("read-availability", "spg", 0.99, 0))
	ss.Add(NewSLO("write-availability", "update", 0.99, 0))

	if ss.ForEndpoint("spg") != read {
		t.Fatal("ForEndpoint miss")
	}
	if ss.ForEndpoint("nope") != nil {
		t.Fatal("ForEndpoint ghost")
	}

	for i := 0; i < 50; i++ {
		read.Record(0, 200)
	}
	for i := 0; i < 50; i++ {
		read.Record(0, 500)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `qbs_slo_burn_rate{slo="read-availability",window="5m"} 49.99`) &&
		!strings.Contains(out, `qbs_slo_burn_rate{slo="read-availability",window="5m"} 50`) {
		t.Fatalf("burn rate gauge missing or wrong:\n%s", out)
	}
	if br := read.BurnRate(5 * time.Minute); br < 49 || br > 51 {
		t.Fatalf("burn rate = %v, want ~50", br)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestSLOSetServeHTTP(t *testing.T) {
	ss := NewSLOSet(nil)
	s := ss.Add(NewSLO("read", "spg", 0.999, 25*time.Millisecond))
	for i := 0; i < 20; i++ {
		s.Record(0, 500)
	}
	rec := httptest.NewRecorder()
	ss.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var resp struct {
		SLOs []SLOView `json:"slos"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(resp.SLOs) != 1 {
		t.Fatalf("slos = %d", len(resp.SLOs))
	}
	v := resp.SLOs[0]
	if !v.FastBurn {
		t.Fatal("fast_burn not reported")
	}
	w5 := v.Windows["5m"]
	if w5.Total != 20 || w5.Good != 0 {
		t.Fatalf("5m window = %+v", w5)
	}
	if v.LatencyMs != 25 {
		t.Fatalf("latency_ms = %v", v.LatencyMs)
	}
}

func TestSLOSetFastBurnAggregates(t *testing.T) {
	ss := NewSLOSet(nil)
	ss.Add(NewSLO("a", "x", 0.999, 0))
	b := ss.Add(NewSLO("b", "y", 0.999, 0))
	if ss.FastBurn() {
		t.Fatal("fast burn with no traffic")
	}
	for i := 0; i < 20; i++ {
		b.Record(0, 500)
	}
	if !ss.FastBurn() {
		t.Fatal("set-level fast burn did not aggregate")
	}
}

func TestSLORecordZeroAllocs(t *testing.T) {
	s := NewSLO("read", "spg", 0.999, int64ms(50))
	allocs := testing.AllocsPerRun(1000, func() {
		s.Record(1e6, 200)
		s.Record(1e9, 503)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

func int64ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
