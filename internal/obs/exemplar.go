package obs

import (
	"strconv"
	"sync/atomic"
	"time"
)

// OpenMetrics-style exemplars: a recent sample value annotated with the
// trace that produced it, rendered after the sample as
//
//	name{labels} value # {trace_id="<id>"} <exemplar value>
//
// Exemplars are attached only for traces the tracer retained, so the
// unsampled hot path never touches them and a dashboard's p99 spike
// links straight to a stored span tree at /debug/traces/{id}.

// Exemplar is one trace-annotated sample.
type Exemplar struct {
	Value   int64
	TraceID string
	UnixNs  int64
}

// histExOctaves is one exemplar slot per histogram octave group, so a
// slow outlier and the common case keep separate representatives.
const histExOctaves = histBuckets / histSub

func exSlotOf(v int64) int { return bucketOf(v) >> histSubBits }

// exemplars holds the per-octave slots out-of-line so Histogram's hot
// fields stay compact; allocated lazily on first SetExemplar.
type exemplars struct {
	slot [histExOctaves]atomic.Pointer[Exemplar]
}

// SetExemplar attaches a trace-annotated sample to the octave bucket
// holding v. Freshest wins. Call only for retained traces: the value
// and the Exemplar itself allocate.
func (h *Histogram) SetExemplar(v int64, traceID string) {
	if traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	ex := h.ex.Load()
	if ex == nil {
		ex = new(exemplars)
		if !h.ex.CompareAndSwap(nil, ex) {
			ex = h.ex.Load()
		}
	}
	ex.slot[exSlotOf(v)].Store(&Exemplar{Value: v, TraceID: traceID, UnixNs: time.Now().UnixNano()})
}

// ExemplarNear returns the exemplar whose octave is closest to v,
// preferring the octave holding v, then lower, then higher. Nil when no
// exemplar has been attached.
func (h *Histogram) ExemplarNear(v int64) *Exemplar {
	ex := h.ex.Load()
	if ex == nil {
		return nil
	}
	if v < 0 {
		v = 0
	}
	at := exSlotOf(v)
	for i := at; i >= 0; i-- {
		if e := ex.slot[i].Load(); e != nil {
			return e
		}
	}
	for i := at + 1; i < histExOctaves; i++ {
		if e := ex.slot[i].Load(); e != nil {
			return e
		}
	}
	return nil
}

// SetExemplar attaches the trace that produced a recent increment.
func (c *Counter) SetExemplar(traceID string) {
	if traceID == "" {
		return
	}
	c.ex.Store(&Exemplar{Value: 1, TraceID: traceID, UnixNs: time.Now().UnixNano()})
}

// Exemplar returns the counter's exemplar, or nil.
func (c *Counter) Exemplar() *Exemplar { return c.ex.Load() }

// render appends the exposition suffix (" # {trace_id=...} v"), or
// nothing for a nil exemplar.
func (e *Exemplar) render() string {
	if e == nil {
		return ""
	}
	return " # {trace_id=\"" + EscapeLabel(e.TraceID) + "\"} " + strconv.FormatInt(e.Value, 10)
}
