package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

var allocSink []byte

func newTestRecorder(capacity int) *FlightRecorder {
	f := NewFlightRecorder(capacity)
	f.CPUDuration = 20 * time.Millisecond
	f.MinAutoGap = 0
	return f
}

func TestFlightRecorderCaptureNow(t *testing.T) {
	f := newTestRecorder(16)
	infos := f.CaptureNow("manual")
	if len(infos) < 3 {
		t.Fatalf("captured %d profiles, want at least goroutine+heap+mutex", len(infos))
	}
	kinds := map[string]bool{}
	for _, pi := range infos {
		kinds[pi.Kind] = true
		if pi.SizeBytes == 0 {
			t.Fatalf("%s profile is empty", pi.Kind)
		}
		if pi.Trigger != "manual" {
			t.Fatalf("trigger = %q", pi.Trigger)
		}
	}
	for _, k := range []string{"goroutine", "heap", "mutex"} {
		if !kinds[k] {
			t.Fatalf("missing %s profile", k)
		}
	}

	// A second round sets the heap delta.
	allocSink = make([]byte, 1<<16)
	var heap *ProfileInfo
	for _, pi := range f.CaptureNow("manual") {
		if pi.Kind == "heap" {
			pi := pi
			heap = &pi
		}
	}
	if heap == nil || heap.HeapDelta <= 0 {
		t.Fatalf("second heap capture delta = %+v", heap)
	}
}

func TestFlightRecorderGetByID(t *testing.T) {
	f := newTestRecorder(16)
	infos := f.CaptureNow("manual")
	p := f.Get(infos[0].ID)
	if p == nil || p.ID != infos[0].ID || len(p.Bytes) == 0 {
		t.Fatalf("Get(%d) = %+v", infos[0].ID, p)
	}
	if f.Get(999999) != nil {
		t.Fatal("Get of unknown ID should be nil")
	}
}

func TestFlightRecorderRingBounded(t *testing.T) {
	f := newTestRecorder(4)
	f.CPUDuration = 0 // keep the test quick; CPU capture may add a 4th kind
	for i := 0; i < 3; i++ {
		f.CaptureNow("interval")
	}
	if got := len(f.Profiles()); got != 4 {
		t.Fatalf("ring holds %d, want capacity 4", got)
	}
	// Newest first, and the oldest captures were evicted.
	infos := f.Profiles()
	if infos[0].ID <= infos[len(infos)-1].ID {
		t.Fatalf("not newest-first: %+v", infos)
	}
}

func TestFlightRecorderTrigger(t *testing.T) {
	f := newTestRecorder(16)
	fired := false
	f.AddTrigger("fast_burn", func() bool { return !fired })
	f.pollTriggers()
	fired = true
	infos := f.Profiles()
	if len(infos) == 0 {
		t.Fatal("trigger did not capture")
	}
	if infos[0].Trigger != "fast_burn" {
		t.Fatalf("trigger label = %q", infos[0].Trigger)
	}

	// Debounce: with a long MinAutoGap a second poll is a no-op.
	f.MinAutoGap = time.Hour
	before := len(f.Profiles())
	f.AddTrigger("again", func() bool { return true })
	f.pollTriggers()
	if got := len(f.Profiles()); got != before {
		t.Fatalf("debounce failed: %d -> %d profiles", before, got)
	}
}

func TestFlightRecorderStartStop(t *testing.T) {
	f := newTestRecorder(16)
	f.Start(30 * time.Millisecond)
	defer f.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for len(f.Profiles()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no interval capture within deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if f.Profiles()[0].Trigger != "interval" {
		t.Fatalf("trigger = %q", f.Profiles()[0].Trigger)
	}
	f.Stop()
	f.Stop() // idempotent
}

func TestFlightRecorderServeHTTP(t *testing.T) {
	f := newTestRecorder(16)
	infos := f.CaptureNow("manual")

	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles", nil))
	var resp struct {
		Profiles []ProfileInfo `json:"profiles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Profiles) != len(infos) {
		t.Fatalf("list = %d, want %d", len(resp.Profiles), len(infos))
	}

	rec = httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/1", nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Fatalf("fetch by id: status %d, %d bytes", rec.Code, rec.Body.Len())
	}
	if rec.Header().Get("X-Qbs-Profile-Kind") == "" {
		t.Fatal("kind header missing")
	}

	rec = httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/424242", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id: status %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/abc", nil))
	if rec.Code != 400 {
		t.Fatalf("bad id: status %d, want 400", rec.Code)
	}
}
