package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// SLO engine: declarative per-endpoint objectives scored over sliding
// windows. An objective says what fraction of requests must be good
// (answered without a 5xx, and under a latency threshold when one is
// set); the engine keeps good/total counts in 10-second epoch-stamped
// buckets covering six hours and reports the burn rate per window —
// the ratio of the observed bad fraction to the error budget
// (1 - target). Burn rate 1.0 spends the budget exactly at the
// objective's horizon; the Google SRE fast-burn threshold (14.4 over
// 5m) flags an incident eating a 30-day budget in under two days.
//
// Recording is wait-free and allocation-free: one epoch check plus two
// atomic adds, so the warm query path can feed its SLO directly.

const (
	sloBucketNs  = int64(10 * time.Second)
	sloBucketCnt = 2160 // 6h of 10s buckets

	// FastBurnThreshold is the 5m burn rate that flags an incident.
	FastBurnThreshold = 14.4
	// fastBurnMinTotal avoids flagging a fast burn off a handful of
	// requests: a single failed probe is not an incident.
	fastBurnMinTotal = 8
)

// SLOWindows are the reporting windows, shortest first.
var SLOWindows = []struct {
	Name string
	D    time.Duration
}{
	{"5m", 5 * time.Minute},
	{"30m", 30 * time.Minute},
	{"1h", time.Hour},
	{"6h", 6 * time.Hour},
}

type sloBucket struct {
	epoch atomic.Int64
	good  atomic.Uint64
	total atomic.Uint64
}

// SLO is one objective over one endpoint. Fields are read-only after
// construction; counts are internal.
type SLO struct {
	Name      string  // series label, e.g. "read-availability"
	Endpoint  string  // endpoint name it scores, e.g. "spg"
	Target    float64 // good fraction objective, e.g. 0.999
	LatencyNs int64   // a good request must also finish within this; 0 = availability only

	buckets [sloBucketCnt]sloBucket
}

// NewSLO declares an objective. Target is clamped into (0, 1).
func NewSLO(name, endpoint string, target float64, latency time.Duration) *SLO {
	if target <= 0 || target >= 1 {
		target = 0.999
	}
	return &SLO{Name: name, Endpoint: endpoint, Target: target, LatencyNs: int64(latency)}
}

// Record scores one request: status below 500 and (when a latency
// threshold is set) duration at or under it counts as good.
//
//qbs:zeroalloc
func (s *SLO) Record(durNs int64, status int) {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	e := now / sloBucketNs
	b := &s.buckets[uint64(e)%sloBucketCnt]
	if old := b.epoch.Load(); old != e {
		if b.epoch.CompareAndSwap(old, e) {
			b.good.Store(0)
			b.total.Store(0)
		}
	}
	b.total.Add(1)
	if status < 500 && (s.LatencyNs <= 0 || durNs <= s.LatencyNs) {
		b.good.Add(1)
	}
}

// Window sums good/total over the trailing window d.
func (s *SLO) Window(d time.Duration) (good, total uint64) {
	now := time.Now().UnixNano()
	e := now / sloBucketNs
	k := int(int64(d) / sloBucketNs)
	if k < 1 {
		k = 1
	}
	if k > sloBucketCnt {
		k = sloBucketCnt
	}
	for i := 0; i < k; i++ {
		b := &s.buckets[uint64(e-int64(i))%sloBucketCnt]
		if b.epoch.Load() != e-int64(i) {
			continue
		}
		good += b.good.Load()
		total += b.total.Load()
	}
	return good, total
}

// BurnRate returns the budget burn rate over the trailing window d:
// bad fraction divided by the error budget. 0 when the window is
// empty.
func (s *SLO) BurnRate(d time.Duration) float64 {
	good, total := s.Window(d)
	if total == 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / (1 - s.Target)
}

// FastBurn reports whether the 5m burn rate crosses the incident
// threshold (with a minimum sample count so one failed probe does not
// page).
func (s *SLO) FastBurn() bool {
	if s == nil {
		return false
	}
	good, total := s.Window(5 * time.Minute)
	if total < fastBurnMinTotal {
		return false
	}
	bad := float64(total-good) / float64(total)
	return bad/(1-s.Target) >= FastBurnThreshold
}

// SLOWindowView is one window's score in the /debug/slo report.
type SLOWindowView struct {
	Good     uint64  `json:"good"`
	Total    uint64  `json:"total"`
	BurnRate float64 `json:"burn_rate"`
}

// SLOView is one objective's /debug/slo entry.
type SLOView struct {
	Name      string                   `json:"name"`
	Endpoint  string                   `json:"endpoint"`
	Target    float64                  `json:"target"`
	LatencyMs float64                  `json:"latency_ms,omitempty"`
	FastBurn  bool                     `json:"fast_burn"`
	Windows   map[string]SLOWindowView `json:"windows"`
}

// View renders the objective's current scores.
func (s *SLO) View() SLOView {
	v := SLOView{
		Name:      s.Name,
		Endpoint:  s.Endpoint,
		Target:    s.Target,
		LatencyMs: float64(s.LatencyNs) / 1e6,
		FastBurn:  s.FastBurn(),
		Windows:   make(map[string]SLOWindowView, len(SLOWindows)),
	}
	for _, w := range SLOWindows {
		good, total := s.Window(w.D)
		var burn float64
		if total > 0 {
			burn = (float64(total-good) / float64(total)) / (1 - s.Target)
		}
		v.Windows[w.Name] = SLOWindowView{Good: good, Total: total, BurnRate: burn}
	}
	return v
}

// SLOSet is the objectives of one tier, indexed by endpoint, exported
// as qbs_slo_burn_rate{slo,window} gauges.
type SLOSet struct {
	mu         sync.Mutex
	slos       []*SLO
	byEndpoint map[string]*SLO
	reg        *Registry
}

// NewSLOSet creates an empty set exporting burn-rate gauges on reg
// (nil disables the gauges).
func NewSLOSet(reg *Registry) *SLOSet {
	return &SLOSet{byEndpoint: make(map[string]*SLO), reg: reg}
}

// Add registers one objective and its burn-rate gauges. The last
// objective added for an endpoint wins the endpoint index.
func (ss *SLOSet) Add(s *SLO) *SLO {
	ss.mu.Lock()
	ss.slos = append(ss.slos, s)
	ss.byEndpoint[s.Endpoint] = s
	ss.mu.Unlock()
	if ss.reg != nil {
		for _, w := range SLOWindows {
			d := w.D
			ss.reg.GaugeFunc("qbs_slo_burn_rate",
				`slo="`+EscapeLabel(s.Name)+`",window="`+w.Name+`"`,
				func() float64 { return s.BurnRate(d) })
		}
	}
	return s
}

// ForEndpoint returns the objective scoring endpoint, or nil.
func (ss *SLOSet) ForEndpoint(endpoint string) *SLO {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.byEndpoint[endpoint]
}

// All returns the registered objectives in registration order.
func (ss *SLOSet) All() []*SLO {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return append([]*SLO(nil), ss.slos...)
}

// FastBurn reports whether any objective is fast-burning — the flight
// recorder's auto-capture trigger.
func (ss *SLOSet) FastBurn() bool {
	for _, s := range ss.All() {
		if s.FastBurn() {
			return true
		}
	}
	return false
}

// ServeHTTP serves GET /debug/slo: every objective's windows and burn
// rates as JSON.
func (ss *SLOSet) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	slos := ss.All()
	views := make([]SLOView, len(slos))
	for i, s := range slos {
		views[i] = s.View()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		SLOs []SLOView `json:"slos"`
	}{views})
}
