package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceparentHeader is the W3C trace-context header propagated across
// hops alongside TraceHeader. Its value is
//
//	00-<32 hex trace id>-<16 hex parent span id>-<2 hex flags>
//
// where flag 0x01 marks the trace as sampled: a downstream hop that
// sees the bit set retains the trace regardless of its own head
// sampling, so one decision at the edge captures every tier.
const TraceparentHeader = "traceparent"

const (
	// maxTraceSpans bounds one trace's in-flight span buffer. Spans
	// started past the cap are counted in Dropped rather than recorded.
	maxTraceSpans = 32
	// maxSpanAttrs bounds per-span attributes.
	maxSpanAttrs = 4
	// freelistCap bounds the tracer's TraceBuf arena.
	freelistCap = 64
)

// Attr is one span attribute. Keys and string values must be static or
// already-materialized strings: the hot path stores them by reference
// and never copies, so recording an attr does not allocate.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Span is one timed operation inside a trace. IDs are process-unique
// 64-bit values; Parent is zero for a trace's local root (the root may
// still carry a remote parent from traceparent, held on the TraceBuf).
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	Dur    time.Duration
	Err    bool
	ended  bool
	nattrs uint8
	attrs  [maxSpanAttrs]Attr
}

// spanIDBase randomizes span IDs per process so spans minted by
// different tiers of the same trace cannot collide.
var (
	spanIDBase uint64
	spanIDSeq  atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		spanIDBase = binary.LittleEndian.Uint64(b[:])
	}
	spanIDBase |= 1 << 63 // never zero even after small additions wrap
}

func nextSpanID() uint64 { return spanIDBase + spanIDSeq.Add(1) }

// SetStr records a string attribute. Nil-safe; silently drops past the
// attr cap.
func (s *Span) SetStr(key, val string) {
	if s == nil || s.nattrs >= maxSpanAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Str: val}
	s.nattrs++
}

// SetInt records an integer attribute. Nil-safe.
func (s *Span) SetInt(key string, val int64) {
	if s == nil || s.nattrs >= maxSpanAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Int: val, IsInt: true}
	s.nattrs++
}

// Fail marks the span (and therefore its trace) as errored.
func (s *Span) Fail() {
	if s != nil {
		s.Err = true
	}
}

// End stamps the span's duration. Nil-safe and idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.Dur = time.Since(s.Start)
	s.ended = true
}

// TraceBuf accumulates one trace's spans in a fixed-size buffer drawn
// from the tracer's arena. It is NOT goroutine-safe: a request's spans
// are recorded by the goroutine serving it (engine stages, WAL append
// and router attempts are all serialized on that goroutine).
type TraceBuf struct {
	tracer *Tracer
	// TraceID may stay empty until Finish: local root traces mint an
	// ID only if the trace is retained, keeping the drop path free of
	// the hex-encoding allocation.
	TraceID string
	// remoteParent is the upstream span ID parsed from traceparent;
	// the local root's parent in the assembled cross-process tree.
	remoteParent uint64
	forced       bool
	headKeep     bool
	err          bool
	n            int
	dropped      int
	spans        [maxTraceSpans]Span
}

// Sampled reports whether downstream hops should be told (via the
// traceparent sampled flag) to retain this trace unconditionally.
func (tb *TraceBuf) Sampled() bool {
	return tb != nil && (tb.forced || tb.headKeep)
}

// MarkError flags the trace as errored independent of any span.
func (tb *TraceBuf) MarkError() {
	if tb != nil {
		tb.err = true
	}
}

// Root returns the trace's root span.
func (tb *TraceBuf) Root() *Span {
	if tb == nil || tb.n == 0 {
		return nil
	}
	return &tb.spans[0]
}

func (tb *TraceBuf) start(name string, parent uint64) *Span {
	if tb == nil {
		return nil
	}
	if tb.n >= maxTraceSpans {
		tb.dropped++
		return nil
	}
	sp := &tb.spans[tb.n]
	tb.n++
	*sp = Span{ID: nextSpanID(), Parent: parent, Name: name, Start: time.Now()}
	return sp
}

// StartSpan opens a child of the root span. End it with (*Span).End.
func (tb *TraceBuf) StartSpan(name string) *Span {
	if tb == nil || tb.n == 0 {
		return nil
	}
	return tb.start(name, tb.spans[0].ID)
}

// StartSpanUnder opens a child of an explicit parent span ID.
func (tb *TraceBuf) StartSpanUnder(parent uint64, name string) *Span {
	return tb.start(name, parent)
}

// AddSpan records an already-measured interval (e.g. a stage duration
// filled in by the engine) as a child of the root.
func (tb *TraceBuf) AddSpan(name string, start time.Time, dur time.Duration) *Span {
	if tb == nil || tb.n == 0 {
		return nil
	}
	sp := tb.start(name, tb.spans[0].ID)
	if sp != nil {
		sp.Start = start
		sp.Dur = dur
		sp.ended = true
	}
	return sp
}

// Tracer mints, buffers and tail-samples traces. TraceBufs are drawn
// from a bounded freelist so the steady-state drop path performs no
// heap allocation; retained traces are copied into immutable
// StoredTrace values (the only allocating step) and pushed into the
// ring-buffer SpanStore.
type Tracer struct {
	slowNs    atomic.Int64
	headEvery atomic.Uint32
	headSeq   atomic.Uint64
	store     *SpanStore

	mu   sync.Mutex
	free []*TraceBuf
}

// NewTracer creates a tracer whose SpanStore retains up to capacity
// traces. Tail sampling starts with a 100ms slow threshold and head
// sampling disabled.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{store: NewSpanStore(capacity)}
	t.slowNs.Store(int64(100 * time.Millisecond))
	return t
}

// DefaultTracer records background (non-request) spans — WAL fsync
// batches, checkpoints, snapshot loads, compactions, replica apply
// batches — and is the default tracer for servers and routers.
var DefaultTracer = NewTracer(512)

// SetSlowThreshold sets the tail-sampling duration: traces at least
// this slow are always retained. Zero or negative retains everything.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(int64(d)) }

// SlowThreshold returns the current tail-sampling duration.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNs.Load()) }

// SetHeadEvery turns on head sampling: one in every n traces is
// retained regardless of duration or status. Zero disables head
// sampling (slow, errored and explicitly sampled traces are still
// kept; that is the point of tail sampling).
func (t *Tracer) SetHeadEvery(n int) {
	if n < 0 {
		n = 0
	}
	t.headEvery.Store(uint32(n))
}

// Store exposes the tracer's retained traces.
func (t *Tracer) Store() *SpanStore { return t.store }

// Begin opens a trace with a root span called name. traceID may be ""
// (an ID is minted lazily if the trace is retained); parent is the
// remote parent span ID from traceparent (0 for none); forced marks
// the trace as explicitly sampled (upstream sampled flag, or a debug
// knob). Nil-safe: a nil tracer returns a nil TraceBuf, and every
// TraceBuf/Span method tolerates nil receivers.
func (t *Tracer) Begin(name, traceID string, parent uint64, forced bool) *TraceBuf {
	if t == nil {
		return nil
	}
	tb := t.get()
	tb.TraceID = traceID
	tb.remoteParent = parent
	tb.forced = forced
	if n := t.headEvery.Load(); n > 0 {
		tb.headKeep = (t.headSeq.Add(1)-1)%uint64(n) == 0
	}
	tb.start(name, 0)
	return tb
}

func (t *Tracer) get() *TraceBuf {
	t.mu.Lock()
	if n := len(t.free); n > 0 {
		tb := t.free[n-1]
		t.free = t.free[:n-1]
		t.mu.Unlock()
		return tb
	}
	t.mu.Unlock()
	return &TraceBuf{tracer: t}
}

func (t *Tracer) put(tb *TraceBuf) {
	*tb = TraceBuf{tracer: t}
	t.mu.Lock()
	if len(t.free) < freelistCap {
		t.free = append(t.free, tb)
	}
	t.mu.Unlock()
}

// Finish closes the trace: the root span is ended if still open, the
// tail-sampling decision is made, and the TraceBuf is recycled. If the
// trace is retained (slow, errored, explicitly sampled, or head
// sampled) it is copied into the SpanStore and its trace ID — minted
// now if Begin received none — is returned with kept=true. The drop
// path allocates nothing.
func (t *Tracer) Finish(tb *TraceBuf) (id string, kept bool) {
	if t == nil || tb == nil || tb.n == 0 {
		return "", false
	}
	root := &tb.spans[0]
	root.End()
	errored := tb.err
	for i := 0; i < tb.n && !errored; i++ {
		errored = tb.spans[i].Err
	}
	slowNs := t.slowNs.Load()
	slow := slowNs <= 0 || int64(root.Dur) >= slowNs
	if !(tb.forced || tb.headKeep || errored || slow) {
		t.put(tb)
		return "", false
	}
	if tb.TraceID == "" {
		tb.TraceID = NewTraceID()
	}
	st := tb.snapshot(errored)
	t.store.add(st)
	id = st.TraceID
	t.put(tb)
	return id, true
}

// Discard recycles an unfinished trace without storing it.
func (t *Tracer) Discard(tb *TraceBuf) {
	if t != nil && tb != nil {
		t.put(tb)
	}
}

// StoredSpan is the immutable, JSON-ready form of a retained span.
// Span IDs are rendered as 16-hex strings: JSON numbers cannot carry
// 64 bits losslessly.
type StoredSpan struct {
	SpanID      string         `json:"span_id"`
	ParentID    string         `json:"parent_id,omitempty"`
	Name        string         `json:"name"`
	StartUnixNs int64          `json:"start_unix_ns"`
	DurationNs  int64          `json:"duration_ns"`
	Error       bool           `json:"error,omitempty"`
	Attrs       map[string]any `json:"attrs,omitempty"`
}

// StoredTrace is one retained trace: the local root plus every span
// recorded on this process, ready for /debug/traces/{id}. Router-side
// merging folds the per-tier StoredTraces of one trace ID into a
// single tree.
type StoredTrace struct {
	TraceID      string       `json:"trace_id"`
	Root         string       `json:"root"`
	StartUnixNs  int64        `json:"start_unix_ns"`
	DurationNs   int64        `json:"duration_ns"`
	Error        bool         `json:"error,omitempty"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Spans        []StoredSpan `json:"spans"`
}

func spanIDString(id uint64) string {
	if id == 0 {
		return ""
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return hex.EncodeToString(b[:])
}

func (tb *TraceBuf) snapshot(errored bool) *StoredTrace {
	root := &tb.spans[0]
	st := &StoredTrace{
		TraceID:      tb.TraceID,
		Root:         root.Name,
		StartUnixNs:  root.Start.UnixNano(),
		DurationNs:   int64(root.Dur),
		Error:        errored,
		DroppedSpans: tb.dropped,
		Spans:        make([]StoredSpan, tb.n),
	}
	for i := 0; i < tb.n; i++ {
		sp := &tb.spans[i]
		out := StoredSpan{
			SpanID:      spanIDString(sp.ID),
			ParentID:    spanIDString(sp.Parent),
			Name:        sp.Name,
			StartUnixNs: sp.Start.UnixNano(),
			DurationNs:  int64(sp.Dur),
			Error:       sp.Err,
		}
		if i == 0 {
			out.ParentID = spanIDString(tb.remoteParent)
		}
		if sp.nattrs > 0 {
			out.Attrs = make(map[string]any, sp.nattrs)
			for _, a := range sp.attrs[:sp.nattrs] {
				if a.IsInt {
					out.Attrs[a.Key] = a.Int
				} else {
					out.Attrs[a.Key] = a.Str
				}
			}
		}
		st.Spans[i] = out
	}
	return st
}

// SpanStore is a lock-free ring buffer of retained traces: an atomic
// cursor picks the slot, an atomic pointer swap publishes the
// immutable StoredTrace. Readers see a consistent trace or none.
type SpanStore struct {
	pos   atomic.Uint64
	slots []atomic.Pointer[StoredTrace]
}

// NewSpanStore creates a ring retaining up to capacity traces.
func NewSpanStore(capacity int) *SpanStore {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanStore{slots: make([]atomic.Pointer[StoredTrace], capacity)}
}

func (s *SpanStore) add(st *StoredTrace) {
	// Several tiers can share one process — and therefore one tracer —
	// yet finish the same trace independently (a router and the backend
	// it proxied to in tests, or a request trace joined by a background
	// root). Fold those into a single slot so Get returns the whole
	// tree; the earlier-starting side is the outermost root and wins the
	// merge. Only retained traces reach add, so the scan is off the warm
	// path.
	for attempt := 0; attempt < 2; attempt++ {
		for i := range s.slots {
			old := s.slots[i].Load()
			if old == nil || old.TraceID != st.TraceID {
				continue
			}
			var merged *StoredTrace
			if old.StartUnixNs <= st.StartUnixNs {
				merged = MergeStored(old, st)
			} else {
				merged = MergeStored(st, old)
			}
			if s.slots[i].CompareAndSwap(old, merged) {
				return
			}
		}
	}
	i := (s.pos.Add(1) - 1) % uint64(len(s.slots))
	s.slots[i].Store(st)
}

// Get returns the retained trace with the given ID, or nil.
func (s *SpanStore) Get(id string) *StoredTrace {
	if s == nil || id == "" {
		return nil
	}
	for i := range s.slots {
		if st := s.slots[i].Load(); st != nil && st.TraceID == id {
			return st
		}
	}
	return nil
}

// Recent returns up to limit retained traces, newest first, filtered
// to those at least minDur long (and errored, if errOnly).
func (s *SpanStore) Recent(limit int, minDur time.Duration, errOnly bool) []*StoredTrace {
	if s == nil {
		return nil
	}
	n := len(s.slots)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]*StoredTrace, 0, limit)
	pos := s.pos.Load()
	for k := 0; k < n && len(out) < limit; k++ {
		// Walk backwards from the cursor: newest first.
		i := (pos + uint64(n) - 1 - uint64(k)) % uint64(n)
		st := s.slots[i].Load()
		if st == nil {
			continue
		}
		if st.DurationNs < int64(minDur) {
			continue
		}
		if errOnly && !st.Error {
			continue
		}
		out = append(out, st)
	}
	return out
}

// MergeStored folds src's spans into dst (same trace ID), deduplicating
// by span ID. dst's root metadata wins; src-only spans are appended.
// Either side may be nil.
func MergeStored(dst, src *StoredTrace) *StoredTrace {
	if dst == nil {
		return src
	}
	if src == nil || src.TraceID != dst.TraceID {
		return dst
	}
	seen := make(map[string]bool, len(dst.Spans)+len(src.Spans))
	out := &StoredTrace{
		TraceID:      dst.TraceID,
		Root:         dst.Root,
		StartUnixNs:  dst.StartUnixNs,
		DurationNs:   dst.DurationNs,
		Error:        dst.Error || src.Error,
		DroppedSpans: dst.DroppedSpans + src.DroppedSpans,
	}
	out.Spans = append(out.Spans, dst.Spans...)
	for _, sp := range dst.Spans {
		seen[sp.SpanID] = true
	}
	for _, sp := range src.Spans {
		if !seen[sp.SpanID] {
			seen[sp.SpanID] = true
			out.Spans = append(out.Spans, sp)
		}
	}
	return out
}

// TraceSummary is the /debug/traces list form of a retained trace.
type TraceSummary struct {
	TraceID     string  `json:"trace_id"`
	Root        string  `json:"root"`
	StartUnixNs int64   `json:"start_unix_ns"`
	DurationMs  float64 `json:"duration_ms"`
	Error       bool    `json:"error"`
	Spans       int     `json:"spans"`
}

// Summary condenses a stored trace for listing.
func (st *StoredTrace) Summary() TraceSummary {
	return TraceSummary{
		TraceID:     st.TraceID,
		Root:        st.Root,
		StartUnixNs: st.StartUnixNs,
		DurationMs:  float64(st.DurationNs) / 1e6,
		Error:       st.Error,
		Spans:       len(st.Spans),
	}
}

// FormatTraceparent renders the W3C traceparent header value. Trace
// IDs shorter than 32 hex chars (QbS mints 16) are left-padded with
// zeros; parent is the span the next hop should attach under.
func FormatTraceparent(traceID string, parent uint64, sampled bool) string {
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	for i := len(traceID); i < 32; i++ {
		b.WriteByte('0')
	}
	b.WriteString(traceID)
	b.WriteByte('-')
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], parent)
	var ph [16]byte
	hex.Encode(ph[:], p[:])
	b.Write(ph[:])
	if sampled {
		b.WriteString("-01")
	} else {
		b.WriteString("-00")
	}
	return b.String()
}

// ParseTraceparent decodes a traceparent value. A 32-hex trace ID with
// 16 leading zeros is normalized back to the 16-hex form used by
// TraceHeader so both headers agree on one ID string.
func ParseTraceparent(v string) (traceID string, parent uint64, sampled, ok bool) {
	if len(v) < 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", 0, false, false
	}
	id := v[3:35]
	if !isHex(id) {
		return "", 0, false, false
	}
	if strings.TrimLeft(id[:16], "0") == "" {
		id = id[16:]
	}
	var pb [8]byte
	if _, err := hex.Decode(pb[:], []byte(v[36:52])); err != nil {
		return "", 0, false, false
	}
	parent = binary.BigEndian.Uint64(pb[:])
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(v[53:55])); err != nil {
		return "", 0, false, false
	}
	sampled = fb[0]&1 == 1
	return id, parent, sampled, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}
