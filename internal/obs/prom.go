package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled so the
// package stays dependency-free. Counters and gauges render as single
// samples; histograms render as summaries (quantile-labelled samples
// plus _sum and _count) with the observed maximum as a companion
// <family>_max gauge.

// PromContentType is the Content-Type for the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

var histQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.95", 0.95},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// WritePrometheus renders the given registries in registration order.
// Metrics sharing a family name are grouped into one block (the format
// forbids interleaving families); duplicate series — same family and
// label set appearing twice across registries — are emitted once.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	var ms []*metric
	for _, r := range regs {
		if r == nil {
			continue
		}
		ms = append(ms, r.snapshot()...)
	}
	byFamily := make(map[string][]*metric, len(ms))
	var famOrder []string
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		if seen[m.key()] {
			continue
		}
		seen[m.key()] = true
		if _, ok := byFamily[m.family]; !ok {
			famOrder = append(famOrder, m.family)
		}
		byFamily[m.family] = append(byFamily[m.family], m)
	}

	bw := bufio.NewWriter(w)
	for _, fam := range famOrder {
		group := byFamily[fam]
		kind := group[0].kind
		switch kind {
		case kindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n", fam)
		case kindGauge, kindGaugeFunc:
			fmt.Fprintf(bw, "# TYPE %s gauge\n", fam)
		case kindHistogram:
			fmt.Fprintf(bw, "# TYPE %s summary\n", fam)
		}
		for _, m := range group {
			if m.kind != kind {
				continue // mixed-type family collision; drop rather than corrupt
			}
			switch m.kind {
			case kindCounter:
				writeSample(bw, fam, m.labels, strconv.FormatUint(m.c.Load(), 10)+m.c.Exemplar().render())
			case kindGauge:
				writeSample(bw, fam, m.labels, strconv.FormatInt(m.g.Load(), 10))
			case kindGaugeFunc:
				writeSample(bw, fam, m.labels, strconv.FormatFloat(m.fn(), 'g', -1, 64))
			case kindHistogram:
				for _, hq := range histQuantiles {
					v := m.h.Quantile(hq.q)
					writeSample(bw, fam, joinLabels(m.labels, `quantile="`+hq.label+`"`),
						strconv.FormatInt(v, 10)+m.h.ExemplarNear(v).render())
				}
				writeSample(bw, fam+"_sum", m.labels, strconv.FormatInt(m.h.Sum(), 10))
				writeSample(bw, fam+"_count", m.labels, strconv.FormatUint(m.h.Count(), 10))
			}
		}
		if kind == kindHistogram {
			fmt.Fprintf(bw, "# TYPE %s_max gauge\n", fam)
			for _, m := range group {
				if m.kind != kindHistogram {
					continue
				}
				writeSample(bw, fam+"_max", m.labels, strconv.FormatInt(m.h.Max(), 10))
			}
		}
	}
	return bw.Flush()
}

func writeSample(w io.Writer, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	}
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// EscapeLabel escapes a label value for the exposition format.
func EscapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// ValidateExposition checks a text-format scrape: every line is a
// comment or a well-formed sample, TYPE lines precede their family's
// samples and appear at most once, and no series (name plus label set)
// repeats. It is the expfmt-style line check the CI smoke job runs.
func ValidateExposition(b []byte) error {
	typed := make(map[string]bool)
	closed := make(map[string]bool) // families whose block has ended
	series := make(map[string]bool)
	lastFam := ""
	for ln, line := range strings.Split(string(b), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "TYPE" && f[1] != "HELP") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if f[1] == "TYPE" {
				fam := f[2]
				if typed[fam] {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fam)
				}
				if closed[fam] {
					return fmt.Errorf("line %d: family %s reopened", lineNo, fam)
				}
				typed[fam] = true
				if lastFam != "" && lastFam != fam {
					closed[lastFam] = true
				}
				lastFam = fam
			}
			continue
		}
		sample := line
		if k := strings.LastIndex(sample, " # {"); k >= 0 {
			if err := validateExemplar(sample[k+3:]); err != nil {
				return fmt.Errorf("line %d: %v in %q", lineNo, err, line)
			}
			sample = sample[:k]
		}
		name, labels, value, ok := splitSample(sample)
		if !ok {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: bad value %q", lineNo, value)
		}
		key := name + "{" + labels + "}"
		if series[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		series[key] = true
		fam := familyOf(name)
		if closed[fam] && fam != lastFam {
			return fmt.Errorf("line %d: family %s interleaved", lineNo, fam)
		}
		if lastFam != "" && fam != lastFam {
			closed[lastFam] = true
		}
		lastFam = fam
	}
	return nil
}

// validateExemplar checks an OpenMetrics-style exemplar suffix of the
// form `{label="value",...} <value>`.
func validateExemplar(s string) error {
	if len(s) == 0 || s[0] != '{' {
		return fmt.Errorf("malformed exemplar %q", s)
	}
	j := strings.IndexByte(s, '}')
	if j < 0 {
		return fmt.Errorf("unterminated exemplar labels %q", s)
	}
	labels := s[1:j]
	if labels == "" || !strings.Contains(labels, `="`) {
		return fmt.Errorf("malformed exemplar labels %q", labels)
	}
	f := strings.Fields(s[j+1:])
	if len(f) < 1 || len(f) > 2 {
		return fmt.Errorf("malformed exemplar value %q", s[j+1:])
	}
	if _, err := strconv.ParseFloat(f[0], 64); err != nil {
		return fmt.Errorf("bad exemplar value %q", f[0])
	}
	return nil
}

// familyOf strips the summary suffixes so _sum/_count lines group with
// their family.
func familyOf(name string) string {
	for _, suf := range []string{"_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func splitSample(line string) (name, labels, value string, ok bool) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", "", false
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		i := strings.IndexByte(rest, ' ')
		if i < 0 {
			return "", "", "", false
		}
		name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	if name == "" || !validMetricName(name) {
		return "", "", "", false
	}
	// rest may be "value" or "value timestamp"
	f := strings.Fields(rest)
	if len(f) < 1 || len(f) > 2 {
		return "", "", "", false
	}
	return name, labels, f[0], true
}

// Sample is one parsed exposition sample: the family name, the raw
// label list (without braces, as registered), and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// ParseSamples parses a text-format scrape into its samples, skipping
// comments, exemplar suffixes and malformed lines. It is the read side
// of WritePrometheus, used by the router's fleet scraper.
func ParseSamples(b []byte) []Sample {
	var out []Sample
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if k := strings.LastIndex(line, " # {"); k >= 0 {
			line = line[:k]
		}
		name, labels, value, ok := splitSample(line)
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		out = append(out, Sample{Name: name, Labels: labels, Value: v})
	}
	return out
}

// Label extracts one label's value from a Sample's raw label list.
func (s Sample) Label(key string) (string, bool) {
	rest := s.Labels
	for rest != "" {
		eq := strings.Index(rest, `="`)
		if eq < 0 {
			return "", false
		}
		k := rest[:eq]
		rest = rest[eq+2:]
		end := strings.IndexByte(rest, '"')
		// Registered label values are pre-escaped; values containing
		// escaped quotes are not produced by EscapeLabel consumers'
		// keys, so a plain scan suffices here.
		for end > 0 && rest[end-1] == '\\' {
			next := strings.IndexByte(rest[end+1:], '"')
			if next < 0 {
				return "", false
			}
			end += 1 + next
		}
		if end < 0 {
			return "", false
		}
		if k == key {
			return strings.NewReplacer(`\\`, `\`, `\n`, "\n", `\"`, `"`).Replace(rest[:end]), true
		}
		rest = rest[end+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return "", false
}

func validMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}
