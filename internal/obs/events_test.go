package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalEmitAndRecent(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(16, reg)
	d := j.Def("store", "fsync_error", LevelError)
	d.EmitTrace("abc123", Str("path", "seg-1.wal"), Int("records", 7))

	evs := j.Recent(10, LevelDebug, "")
	if len(evs) != 1 {
		t.Fatalf("Recent = %d events, want 1", len(evs))
	}
	v := evs[0].View()
	if v.Component != "store" || v.Event != "fsync_error" || v.Level != "error" {
		t.Fatalf("bad event view: %+v", v)
	}
	if v.TraceID != "abc123" {
		t.Fatalf("trace id = %q", v.TraceID)
	}
	if v.Attrs["path"] != "seg-1.wal" || v.Attrs["records"] != int64(7) {
		t.Fatalf("attrs = %v", v.Attrs)
	}
	if got := reg.Counter("qbs_events_total", `component="store",level="error"`).Load(); got != 1 {
		t.Fatalf("qbs_events_total = %d, want 1", got)
	}
}

func TestJournalMinLevelDrops(t *testing.T) {
	j := NewJournal(16, nil)
	d := j.Def("router", "probe_ok", LevelDebug)
	d.Emit() // journal default min level is info
	if evs := j.Recent(10, LevelDebug, ""); len(evs) != 0 {
		t.Fatalf("debug event admitted at info min level: %d", len(evs))
	}
	j.SetMinLevel(LevelDebug)
	d.Emit()
	if evs := j.Recent(10, LevelDebug, ""); len(evs) != 1 {
		t.Fatalf("debug event dropped at debug min level")
	}
}

func TestJournalRecentFilters(t *testing.T) {
	j := NewJournal(32, nil)
	warn := j.Def("replica", "tail_slow", LevelWarn)
	errd := j.Def("router", "backend_down", LevelError)
	info := j.Def("replica", "bootstrap", LevelInfo)
	warn.Emit()
	errd.Emit()
	info.Emit()

	if got := len(j.Recent(10, LevelWarn, "")); got != 2 {
		t.Fatalf("min_level=warn: %d events, want 2", got)
	}
	if got := len(j.Recent(10, LevelDebug, "replica")); got != 2 {
		t.Fatalf("component=replica: %d events, want 2", got)
	}
	if got := len(j.Recent(1, LevelDebug, "")); got != 1 {
		t.Fatalf("n=1: %d events", got)
	}
	// Newest first.
	if evs := j.Recent(10, LevelDebug, ""); evs[0].Event != "bootstrap" {
		t.Fatalf("newest first violated: %s", evs[0].Event)
	}
}

func TestJournalRingWraps(t *testing.T) {
	j := NewJournal(4, nil)
	d := j.DefRate("c", "e", LevelInfo, 0, 0) // unlimited
	for i := int64(0); i < 10; i++ {
		d.Emit(Int("i", i))
	}
	evs := j.Recent(0, LevelDebug, "")
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	if evs[0].View().Attrs["i"] != int64(9) {
		t.Fatalf("newest = %v, want 9", evs[0].View().Attrs["i"])
	}
}

func TestJournalRateLimitSuppresses(t *testing.T) {
	j := NewJournal(64, nil)
	d := j.DefRate("store", "wal_error", LevelError, 1, 2) // 1/s, burst 2
	for i := 0; i < 10; i++ {
		d.Emit()
	}
	evs := j.Recent(0, LevelDebug, "")
	if len(evs) != 2 {
		t.Fatalf("admitted %d events, want burst of 2", len(evs))
	}
	if d.suppressed.Load() != 8 {
		t.Fatalf("suppressed = %d, want 8", d.suppressed.Load())
	}
	// The next admitted emit (after the bucket refills) surfaces the
	// suppressed count.
	d.tat.Store(0) // refill without sleeping
	d.Emit()
	if evs := j.Recent(1, LevelDebug, ""); evs[0].Suppressed != 8 {
		t.Fatalf("Suppressed on next admit = %d, want 8", evs[0].Suppressed)
	}
}

func TestJournalErrorsInLast(t *testing.T) {
	j := NewJournal(16, nil)
	e := j.Def("x", "boom", LevelError)
	i := j.Def("x", "fine", LevelInfo)
	e.Emit()
	e.Emit()
	i.Emit()
	if got := j.ErrorsInLast(time.Minute); got != 2 {
		t.Fatalf("ErrorsInLast = %d, want 2", got)
	}
}

func TestJournalDefIdempotent(t *testing.T) {
	j := NewJournal(16, nil)
	a := j.Def("c", "e", LevelInfo)
	b := j.Def("c", "e", LevelWarn) // level of first declaration wins
	if a != b {
		t.Fatal("Def not idempotent")
	}
	if b.Level() != LevelInfo {
		t.Fatalf("level = %v, want info", b.Level())
	}
}

func TestJournalServeHTTP(t *testing.T) {
	j := NewJournal(16, nil)
	j.Def("store", "checkpoint", LevelInfo).Emit(Int("epoch", 42))
	j.Def("router", "evicted", LevelError).EmitTrace("deadbeef")

	rec := httptest.NewRecorder()
	j.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/logs?min_level=error", nil))
	var resp struct {
		MinLevel string      `json:"journal_min_level"`
		Events   []EventView `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(resp.Events) != 1 || resp.Events[0].Event != "evicted" || resp.Events[0].TraceID != "deadbeef" {
		t.Fatalf("filtered events = %+v", resp.Events)
	}
	if resp.MinLevel != "info" {
		t.Fatalf("journal_min_level = %q", resp.MinLevel)
	}

	rec = httptest.NewRecorder()
	j.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/logs?component=store&n=5", nil))
	resp.Events = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Component != "store" {
		t.Fatalf("component filter: %+v", resp.Events)
	}

	rec = httptest.NewRecorder()
	j.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/logs?min_level=nope", nil))
	if rec.Code != 400 {
		t.Fatalf("bad level: status %d, want 400", rec.Code)
	}
}

// TestEventDropPathZeroAllocs is the CI gate: a below-level emit, attrs
// and all, must not allocate — the variadic attr slice stays on the
// caller's stack.
func TestEventDropPathZeroAllocs(t *testing.T) {
	j := NewJournal(16, nil)
	j.SetMinLevel(LevelWarn)
	d := j.Def("engine", "column_rebfs", LevelDebug)
	allocs := testing.AllocsPerRun(1000, func() {
		d.Emit(Str("stage", "bfs"), Int("landmark", 3))
		d.EmitTrace("tid", Int("epoch", 9))
	})
	if allocs != 0 {
		t.Fatalf("below-level Emit allocates %.1f/op, want 0", allocs)
	}
}

// The rate-limited drop path must not allocate either: a wedged retry
// loop emitting thousands of suppressed events leaves no garbage.
func TestEventSuppressedPathZeroAllocs(t *testing.T) {
	j := NewJournal(16, nil)
	d := j.DefRate("store", "retry", LevelError, 1, 1)
	d.Emit() // drain the burst
	allocs := testing.AllocsPerRun(1000, func() {
		d.Emit(Str("err", "disk full"))
	})
	if allocs != 0 {
		t.Fatalf("suppressed Emit allocates %.1f/op, want 0", allocs)
	}
}

func TestJournalConcurrentEmit(t *testing.T) {
	j := NewJournal(64, NewRegistry())
	d := j.DefRate("c", "e", LevelInfo, 0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				d.Emit(Int("i", int64(i)))
			}
		}()
	}
	wg.Wait()
	if got := len(j.Recent(0, LevelDebug, "")); got != 64 {
		t.Fatalf("ring holds %d, want full 64", got)
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		got, ok := ParseLevel(l.String())
		if !ok || got != l {
			t.Fatalf("round trip %v -> %q -> %v ok=%v", l, l.String(), got, ok)
		}
	}
	if _, ok := ParseLevel("verbose"); ok {
		t.Fatal("ParseLevel accepted junk")
	}
	if !strings.Contains(Level(99).String(), "unknown") {
		t.Fatal("out-of-range level should stringify as unknown")
	}
}
