package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Continuous-profiling flight recorder: a background sampler that
// captures pprof profiles into a bounded in-memory ring, so the
// profile of an incident exists before anyone goes looking. Captures
// happen on a fixed cadence and — debounced — whenever a registered
// trigger fires (SLO fast burn, error-level event spike). Each capture
// takes goroutine, heap (with an allocation delta since the previous
// capture) and mutex profiles, plus a short CPU profile when no other
// CPU profile is running (pprof allows one per process; losing that
// race is expected when an operator is live-profiling, and is not an
// error).

// Profile is one captured pprof snapshot.
type Profile struct {
	ID      uint64
	Kind    string // "cpu", "heap", "goroutine", "mutex"
	Trigger string // "interval", "manual", or a trigger name
	UnixNs  int64
	Bytes   []byte
	// HeapDelta is the growth of cumulative allocation (bytes) since
	// the recorder's previous capture round; only set on heap profiles.
	HeapDelta int64
}

// ProfileInfo is the /debug/profiles list entry.
type ProfileInfo struct {
	ID        uint64 `json:"id"`
	Kind      string `json:"kind"`
	Trigger   string `json:"trigger"`
	UnixNs    int64  `json:"unix_ns"`
	SizeBytes int    `json:"size_bytes"`
	HeapDelta int64  `json:"heap_delta_bytes,omitempty"`
}

type flightTrigger struct {
	name string
	fn   func() bool
}

// FlightRecorder owns the profile ring and the sampling goroutine.
type FlightRecorder struct {
	mu        sync.Mutex
	seq       uint64
	ring      []*Profile
	pos       int
	triggers  []flightTrigger
	lastAuto  time.Time
	prevAlloc uint64
	running   bool
	stop      chan struct{}
	wg        sync.WaitGroup

	// CPUDuration bounds each CPU capture (default 250ms). MinAutoGap
	// debounces trigger-driven captures (default 30s). Both must be set
	// before Start.
	CPUDuration time.Duration
	MinAutoGap  time.Duration
}

// NewFlightRecorder creates a recorder retaining up to capacity
// profiles.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 4 {
		capacity = 4
	}
	return &FlightRecorder{
		ring:        make([]*Profile, capacity),
		CPUDuration: 250 * time.Millisecond,
		MinAutoGap:  30 * time.Second,
	}
}

// DefaultFlightRecorder is the process-wide recorder; qbs-server
// starts it when -profile-every is set.
var DefaultFlightRecorder = NewFlightRecorder(64)

// AddTrigger registers a named auto-capture condition, polled once a
// second while the recorder runs.
func (f *FlightRecorder) AddTrigger(name string, fn func() bool) {
	f.mu.Lock()
	f.triggers = append(f.triggers, flightTrigger{name, fn})
	f.mu.Unlock()
}

// Start launches the sampler: a capture round every interval, plus a
// one-second trigger poll. No-op if already running.
func (f *FlightRecorder) Start(interval time.Duration) {
	if interval <= 0 {
		return
	}
	f.mu.Lock()
	if f.running {
		f.mu.Unlock()
		return
	}
	f.running = true
	f.stop = make(chan struct{})
	f.mu.Unlock()
	f.wg.Add(1)
	go f.run(interval)
}

// Stop halts the sampler and waits for any in-flight capture.
func (f *FlightRecorder) Stop() {
	f.mu.Lock()
	if !f.running {
		f.mu.Unlock()
		return
	}
	f.running = false
	close(f.stop)
	f.mu.Unlock()
	f.wg.Wait()
}

func (f *FlightRecorder) run(interval time.Duration) {
	defer f.wg.Done()
	capTick := time.NewTicker(interval)
	trigTick := time.NewTicker(time.Second)
	defer capTick.Stop()
	defer trigTick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-capTick.C:
			f.CaptureNow("interval")
		case <-trigTick.C:
			f.pollTriggers()
		}
	}
}

func (f *FlightRecorder) pollTriggers() {
	f.mu.Lock()
	triggers := append([]flightTrigger(nil), f.triggers...)
	last := f.lastAuto
	gap := f.MinAutoGap
	f.mu.Unlock()
	if time.Since(last) < gap {
		return
	}
	for _, t := range triggers {
		if t.fn() {
			f.mu.Lock()
			f.lastAuto = time.Now()
			f.mu.Unlock()
			f.CaptureNow(t.name)
			return
		}
	}
}

// CaptureNow runs one capture round attributed to trigger and returns
// the captured profiles' list entries.
func (f *FlightRecorder) CaptureNow(trigger string) []ProfileInfo {
	if f == nil {
		return nil
	}
	now := time.Now().UnixNano()
	var out []ProfileInfo

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	f.mu.Lock()
	var heapDelta int64
	if f.prevAlloc > 0 {
		heapDelta = int64(ms.TotalAlloc - f.prevAlloc)
	}
	f.prevAlloc = ms.TotalAlloc
	f.mu.Unlock()

	for _, kind := range []string{"goroutine", "heap", "mutex"} {
		p := pprof.Lookup(kind)
		if p == nil {
			continue
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 0); err != nil {
			continue
		}
		prof := &Profile{Kind: kind, Trigger: trigger, UnixNs: now, Bytes: buf.Bytes()}
		if kind == "heap" {
			prof.HeapDelta = heapDelta
		}
		out = append(out, f.store(prof))
	}

	// CPU last: it blocks for CPUDuration, and may be unavailable when
	// an operator's /debug/pprof/profile request holds the profiler.
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err == nil {
		time.Sleep(f.CPUDuration)
		pprof.StopCPUProfile()
		out = append(out, f.store(&Profile{Kind: "cpu", Trigger: trigger, UnixNs: now, Bytes: cpu.Bytes()}))
	}
	return out
}

func (f *FlightRecorder) store(p *Profile) ProfileInfo {
	f.mu.Lock()
	f.seq++
	p.ID = f.seq
	f.ring[f.pos] = p
	f.pos = (f.pos + 1) % len(f.ring)
	f.mu.Unlock()
	return p.Info()
}

// Info renders the list entry for one profile.
func (p *Profile) Info() ProfileInfo {
	return ProfileInfo{
		ID:        p.ID,
		Kind:      p.Kind,
		Trigger:   p.Trigger,
		UnixNs:    p.UnixNs,
		SizeBytes: len(p.Bytes),
		HeapDelta: p.HeapDelta,
	}
}

// Profiles lists retained profiles, newest first.
func (f *FlightRecorder) Profiles() []ProfileInfo {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.ring)
	out := make([]ProfileInfo, 0, n)
	for k := 1; k <= n; k++ {
		p := f.ring[(f.pos+n-k)%n]
		if p != nil {
			out = append(out, p.Info())
		}
	}
	return out
}

// Get returns the retained profile with the given ID, or nil.
func (f *FlightRecorder) Get(id uint64) *Profile {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range f.ring {
		if p != nil && p.ID == id {
			return p
		}
	}
	return nil
}

// ServeHTTP serves GET /debug/profiles (JSON list) and
// GET /debug/profiles/{id} (raw pprof bytes). It keys off the path
// suffix after "profiles", so it can be mounted at any prefix.
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	if i := strings.LastIndex(path, "/profiles/"); i >= 0 {
		idStr := path[i+len("/profiles/"):]
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad profile id "+strconv.Quote(idStr), http.StatusBadRequest)
			return
		}
		p := f.Get(id)
		if p == nil {
			http.Error(w, "profile not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Qbs-Profile-Kind", p.Kind)
		_, _ = w.Write(p.Bytes)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Profiles []ProfileInfo `json:"profiles"`
	}{f.Profiles()})
}
