package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThresholdAndOrder(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	l.Record(SlowEntry{TraceID: "fast", DurationNs: int64(time.Millisecond)})
	if l.Len() != 0 {
		t.Fatal("entry below threshold recorded")
	}
	for i := 0; i < 3; i++ {
		l.Record(SlowEntry{TraceID: fmt.Sprint("slow-", i), DurationNs: int64(20 * time.Millisecond)})
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	if got[0].TraceID != "slow-2" || got[2].TraceID != "slow-0" {
		t.Fatalf("not newest-first: %v", got)
	}
	l.SetThreshold(0)
	l.Record(SlowEntry{TraceID: "fast"})
	if l.Entries()[0].TraceID != "fast" {
		t.Fatal("threshold update not applied")
	}
}

func TestSlowLogBounded(t *testing.T) {
	const capEntries = 16
	l := NewSlowLog(capEntries, 0)
	for i := 0; i < 100; i++ {
		l.Record(SlowEntry{TraceID: fmt.Sprint(i), DurationNs: int64(i)})
	}
	got := l.Entries()
	if len(got) != capEntries {
		t.Fatalf("ring grew to %d, cap %d", len(got), capEntries)
	}
	if got[0].TraceID != "99" || got[capEntries-1].TraceID != fmt.Sprint(100-capEntries) {
		t.Fatalf("wrong window: first=%s last=%s", got[0].TraceID, got[capEntries-1].TraceID)
	}
}

// Run under -race this is the concurrent-writers safety check.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(32, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Record(SlowEntry{TraceID: fmt.Sprint(w, "-", i), DurationNs: int64(i)})
				if i%64 == 0 {
					_ = l.Entries()
					_ = l.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 32 {
		t.Fatalf("len = %d, want full ring", l.Len())
	}
}

func TestSlowLogFillFromTrace(t *testing.T) {
	l := NewSlowLog(4, 0)
	tr := &Trace{ID: "abc", HasQuery: true, U: 3, V: 9, Dist: 4,
		ArcsScanned: 100, FrontierWords: 7, PushPullSwitches: 2, LabelEntries: 12}
	tr.SetStage(StageParse, 10)
	tr.SetStage(StageSketch, 20)
	tr.SetStage(StageExpand, 30)
	tr.SetStage(StageExtract, 40)
	tr.SetStage(StageSerialize, 50)
	l.Fill(tr, "/spg", 200, 150, time.UnixMilli(1700000000000))
	e := l.Entries()[0]
	if e.TraceID != "abc" || e.Endpoint != "/spg" || e.Status != 200 || e.DurationNs != 150 {
		t.Fatalf("entry mismatch: %+v", e)
	}
	if e.Stages != (SlowStages{10, 20, 30, 40, 50}) {
		t.Fatalf("stages mismatch: %+v", e.Stages)
	}
	if !e.HasQuery || e.U != 3 || e.V != 9 || e.Dist != 4 || e.ArcsScanned != 100 ||
		e.FrontierWords != 7 || e.PushPullSwitches != 2 || e.LabelEntries != 12 {
		t.Fatalf("engine stats mismatch: %+v", e)
	}
	// nil trace is a no-op
	l.Fill(nil, "/spg", 200, 150, time.Now())
	if l.Len() != 1 {
		t.Fatal("nil trace recorded")
	}
}
