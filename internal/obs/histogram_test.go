package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// sampleQuantile is the oracle: the rank-⌈q·n⌉ element of the sorted
// sample, matching Histogram.Quantile's rank definition.
func sampleQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(float64(n)*q + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

func TestBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<62 + 12345, 1<<63 - 1}
	for _, v := range vals {
		idx := bucketOf(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		hi := bucketMax(idx)
		if v > hi {
			t.Errorf("value %d above its bucket max %d (idx %d)", v, hi, idx)
		}
		if idx > 0 {
			lo := bucketMax(idx-1) + 1
			if v < lo {
				t.Errorf("value %d below its bucket min %d (idx %d)", v, lo, idx)
			}
		}
	}
	// Bucket bounds must be monotone.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		m := bucketMax(i)
		if m <= prev {
			t.Fatalf("bucketMax not monotone at %d: %d <= %d", i, m, prev)
		}
		prev = m
	}
}

// TestQuantileWithinBucketError checks estimates against a sorted-sample
// oracle: the estimate must be >= the oracle and within one bucket's
// relative width (33/32) above it.
func TestQuantileWithinBucketError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1_000_000) },
		"lognormal": func() int64 { return int64(1000 * (1 + rng.ExpFloat64()*50)) },
		"small":     func() int64 { return rng.Int63n(50) },
	}
	for name, gen := range dists {
		h := NewHistogram()
		samples := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := gen()
			samples = append(samples, v)
			h.ObserveNs(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
			oracle := sampleQuantile(samples, q)
			est := h.Quantile(q)
			if est < oracle {
				t.Errorf("%s q=%v: estimate %d below oracle %d", name, q, est, oracle)
			}
			bound := oracle + oracle/32 + 1
			if est > bound {
				t.Errorf("%s q=%v: estimate %d beyond error bound %d (oracle %d)", name, q, est, bound, oracle)
			}
		}
		if h.Max() != samples[len(samples)-1] {
			t.Errorf("%s: max %d != sample max %d", name, h.Max(), samples[len(samples)-1])
		}
		if h.Count() != uint64(len(samples)) {
			t.Errorf("%s: count %d != %d", name, h.Count(), len(samples))
		}
	}
}

func histState(h *Histogram) (uint64, int64, int64, [histBuckets]uint64) {
	var b [histBuckets]uint64
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
	}
	return h.Count(), h.Sum(), h.Max(), b
}

func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int) *Histogram {
		h := NewHistogram()
		for i := 0; i < n; i++ {
			h.ObserveNs(rng.Int63n(1 << 30))
		}
		return h
	}
	a, b, c := mk(500), mk(900), mk(1300)

	// (a+b)+c
	left := NewHistogram()
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)
	// a+(b+c)
	bc := NewHistogram()
	bc.Merge(b)
	bc.Merge(c)
	right := NewHistogram()
	right.Merge(a)
	right.Merge(bc)

	lc, ls, lm, lb := histState(left)
	rc, rs, rm, rb := histState(right)
	if lc != rc || ls != rs || lm != rm || lb != rb {
		t.Fatalf("merge not associative: (%d,%d,%d) vs (%d,%d,%d)", lc, ls, lm, rc, rs, rm)
	}
	if lc != a.Count()+b.Count()+c.Count() {
		t.Fatalf("merged count %d != sum of parts", lc)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this is the lock-free safety check.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.ObserveNs(rng.Int63n(1 << 40))
				if i%256 == 0 {
					_ = h.Quantile(0.99)
					_ = h.Summary()
				}
			}
		}(int64(w))
	}
	// Concurrent merging into a second histogram.
	agg := NewHistogram()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			agg.Merge(h)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*perW {
		t.Fatalf("count %d != %d", got, workers*perW)
	}
}

func TestObserveNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.ObserveNs(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative observation not clamped: count=%d sum=%d", h.Count(), h.Sum())
	}
}

// TestHistogramMergeConcurrentWithObserve drives Merge from one
// goroutine while both source and destination keep observing — run
// under -race in CI, and checked for conservation afterwards.
func TestHistogramMergeConcurrentWithObserve(t *testing.T) {
	src := NewHistogram()
	dst := NewHistogram()
	const perSide = 5000
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			src.ObserveNs(int64(i % 1000))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			dst.ObserveNs(int64(i % 1000))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			dst.Merge(src)
		}
	}()
	wg.Wait()
	// A final quiescent merge must be exact: dst holds its own
	// observations plus 51 merges' worth of whatever src held at each
	// merge — at least its own perSide plus one full copy of src.
	dst.Merge(src)
	if dst.Count() < 2*perSide {
		t.Fatalf("count = %d, want >= %d", dst.Count(), 2*perSide)
	}
	if dst.Max() != 999 {
		t.Fatalf("max = %d, want 999", dst.Max())
	}
	dst.Merge(nil) // nil-safe
}

// TestQuantileMonotone is the property test: for any sample, Quantile
// must be non-decreasing in q.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram()
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Mix exact-range values, heavy tail and zeros.
			switch rng.Intn(3) {
			case 0:
				h.ObserveNs(int64(rng.Intn(64)))
			case 1:
				h.ObserveNs(rng.Int63n(1 << 40))
			default:
				h.ObserveNs(0)
			}
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%.2f) = %d < Quantile(prev) = %d", trial, q, v, prev)
			}
			prev = v
		}
		if h.Quantile(1) != h.Max() {
			t.Fatalf("trial %d: Quantile(1) = %d, Max = %d", trial, h.Quantile(1), h.Max())
		}
	}
}

// TestEmptyHistogramSummary pins down the empty-histogram contract:
// every field is zero, no garbage values.
func TestEmptyHistogramSummary(t *testing.T) {
	h := NewHistogram()
	s := h.Summary()
	if s != (HistogramSummary{}) {
		t.Fatalf("empty summary = %+v, want all zeros", s)
	}
	if h.Quantile(0.5) != 0 || h.Quantile(0) != 0 || h.Quantile(1) != 0 {
		t.Fatal("empty quantiles must be 0")
	}
}
