// Package obs is the telemetry layer every other package reports
// through: atomic counters, gauges, lock-free log-bucketed latency
// histograms, a registry with a Prometheus text encoder, per-request
// traces, and a bounded slow-query log. It is dependency-free (stdlib
// only) and every recording primitive is allocation-free, so the warm
// query path stays 0 allocs/op with instrumentation enabled.
//
// # Metric naming
//
// Families follow Prometheus conventions with a qbs_ prefix:
//
//   - qbs_http_requests_total / qbs_http_errors_total — per-endpoint
//     counters, labelled endpoint="/spg".
//   - qbs_http_inflight — per-endpoint in-flight gauge.
//   - qbs_http_request_ns — per-endpoint latency histogram.
//   - qbs_query_stage_ns{stage=...} — per-stage query spans (parse,
//     sketch, expand, extract, serialize).
//   - qbs_query_*_total — engine counters aggregated from QueryStats
//     (arcs scanned, frontier words swept, push↔pull switches, label
//     entries scanned).
//   - qbs_wal_*_ns, qbs_checkpoint_*, qbs_snapshot_bytes — durable
//     store instrumentation (process-wide Default registry).
//   - qbs_replica_*, qbs_router_* — replication-layer series.
//   - qbs_goroutines, qbs_heap_*, qbs_gc_* — runtime gauges sampled at
//     scrape time.
//
// Durations are recorded and exposed in nanoseconds (the _ns suffix)
// rather than converted to seconds; the bench harness and JSON views
// share the same unit.
//
// # Registries
//
// Default is the process-wide registry: engine, store, and runtime
// series that are not tied to one listener. Servers, routers, and
// replicas each own an additional Registry for their per-endpoint and
// per-backend series — exact-count test isolation, and multi-server
// processes don't cross-contaminate — and render their own registry
// stacked with Default on scrape.
//
// # Exposition
//
// WritePrometheus renders registries in the text format (version
// 0.0.4). Histograms render as summaries — quantile-labelled samples
// for p50/p95/p99/p999 plus _sum and _count — with the observed
// maximum as a companion <family>_max gauge. Every /metrics endpoint
// serves this encoding for ?format=prometheus or an Accept header
// preferring text/plain, and the unchanged JSON views otherwise; both
// are renderings of the same registry. ValidateExposition is the
// parser-level line check the CI smoke job applies to a live scrape.
//
// # Tracing and the slow-query log
//
// A request's trace ID travels in the X-Qbs-Trace-Id header
// (TraceHeader): the router generates one (or accepts the client's),
// forwards it unchanged on retries and failovers, and backends echo it
// on responses. The serving middleware allocates a Trace per request;
// handlers fill per-stage spans and engine counters from the
// searcher's QueryStats out-param. Requests at or above the SlowLog
// threshold land in a bounded ring served at GET /debug/slowlog, each
// entry linking to its retained span tree under /debug/traces/{id}.
//
// # Span model & sampling
//
// A Tracer records hierarchical spans — name, parent, wall-clock start,
// duration, up to four key/value attrs, an error bit — into a TraceBuf:
// a fixed inline array of 32 spans recycled through a small freelist,
// so recording allocates nothing. One TraceBuf is one trace on one
// process; it is single-goroutine by construction (the serving
// middleware owns it for the request's lifetime, writers record under
// their own serialization).
//
// Retention is tail-based: the keep/drop decision happens at Finish,
// when the outcome is known. A trace survives into the SpanStore ring
// when it was slow (root duration at or past the tracer's slow
// threshold — the same knob as the slowlog), errored (any span failed,
// or the trace was marked), force-sampled (the W3C traceparent sampled
// flag arrived set), or head-sampled (1 in N requests when
// SetHeadEvery is on; off by default). Everything else is dropped
// before a trace ID is ever minted, which is what keeps the warm
// instrumented path at 0 allocs/op.
//
// Cross-process context travels in the W3C traceparent header
// (00-<trace-id>-<parent-span-id>-<flags>), sent alongside
// X-Qbs-Trace-Id: each hop begins its local root span under the
// upstream parent span ID, so the per-tier trees fetched from
// /debug/traces/{id} merge into one tree (MergeStored; the router does
// this on demand). Retained traces also surface as OpenMetrics
// exemplars on the latency histograms and retry counters — the
// "# {trace_id=...}" suffix links a dashboard's worst bucket straight
// to a stored trace.
package obs
