// Package obs is the telemetry layer every other package reports
// through: atomic counters, gauges, lock-free log-bucketed latency
// histograms, a registry with a Prometheus text encoder, per-request
// traces, and a bounded slow-query log. It is dependency-free (stdlib
// only) and every recording primitive is allocation-free, so the warm
// query path stays 0 allocs/op with instrumentation enabled.
//
// # Metric naming
//
// Families follow Prometheus conventions with a qbs_ prefix:
//
//   - qbs_http_requests_total / qbs_http_errors_total — per-endpoint
//     counters, labelled endpoint="/spg".
//   - qbs_http_inflight — per-endpoint in-flight gauge.
//   - qbs_http_request_ns — per-endpoint latency histogram.
//   - qbs_query_stage_ns{stage=...} — per-stage query spans (parse,
//     sketch, expand, extract, serialize).
//   - qbs_query_*_total — engine counters aggregated from QueryStats
//     (arcs scanned, frontier words swept, push↔pull switches, label
//     entries scanned).
//   - qbs_wal_*_ns, qbs_checkpoint_*, qbs_snapshot_bytes — durable
//     store instrumentation (process-wide Default registry).
//   - qbs_replica_*, qbs_router_* — replication-layer series.
//   - qbs_goroutines, qbs_heap_*, qbs_gc_* — runtime gauges sampled at
//     scrape time.
//
// Durations are recorded and exposed in nanoseconds (the _ns suffix)
// rather than converted to seconds; the bench harness and JSON views
// share the same unit.
//
// # Registries
//
// Default is the process-wide registry: engine, store, and runtime
// series that are not tied to one listener. Servers, routers, and
// replicas each own an additional Registry for their per-endpoint and
// per-backend series — exact-count test isolation, and multi-server
// processes don't cross-contaminate — and render their own registry
// stacked with Default on scrape.
//
// # Exposition
//
// WritePrometheus renders registries in the text format (version
// 0.0.4). Histograms render as summaries — quantile-labelled samples
// for p50/p95/p99/p999 plus _sum and _count — with the observed
// maximum as a companion <family>_max gauge. Every /metrics endpoint
// serves this encoding for ?format=prometheus or an Accept header
// preferring text/plain, and the unchanged JSON views otherwise; both
// are renderings of the same registry. ValidateExposition is the
// parser-level line check the CI smoke job applies to a live scrape.
//
// # Tracing and the slow-query log
//
// A request's trace ID travels in the X-Qbs-Trace-Id header
// (TraceHeader): the router generates one (or accepts the client's),
// forwards it unchanged on retries and failovers, and backends echo it
// on responses. The serving middleware allocates a Trace per request;
// handlers fill per-stage spans and engine counters from the
// searcher's QueryStats out-param. Requests at or above the SlowLog
// threshold land in a bounded ring served at GET /debug/slowlog, each
// entry linking to its retained span tree under /debug/traces/{id}.
//
// # Span model & sampling
//
// A Tracer records hierarchical spans — name, parent, wall-clock start,
// duration, up to four key/value attrs, an error bit — into a TraceBuf:
// a fixed inline array of 32 spans recycled through a small freelist,
// so recording allocates nothing. One TraceBuf is one trace on one
// process; it is single-goroutine by construction (the serving
// middleware owns it for the request's lifetime, writers record under
// their own serialization).
//
// Retention is tail-based: the keep/drop decision happens at Finish,
// when the outcome is known. A trace survives into the SpanStore ring
// when it was slow (root duration at or past the tracer's slow
// threshold — the same knob as the slowlog), errored (any span failed,
// or the trace was marked), force-sampled (the W3C traceparent sampled
// flag arrived set), or head-sampled (1 in N requests when
// SetHeadEvery is on; off by default). Everything else is dropped
// before a trace ID is ever minted, which is what keeps the warm
// instrumented path at 0 allocs/op.
//
// Cross-process context travels in the W3C traceparent header
// (00-<trace-id>-<parent-span-id>-<flags>), sent alongside
// X-Qbs-Trace-Id: each hop begins its local root span under the
// upstream parent span ID, so the per-tier trees fetched from
// /debug/traces/{id} merge into one tree (MergeStored; the router does
// this on demand). Retained traces also surface as OpenMetrics
// exemplars on the latency histograms and retry counters — the
// "# {trace_id=...}" suffix links a dashboard's worst bucket straight
// to a stored trace.
//
// # Event journal
//
// The Journal is the structured, leveled event record for the paths a
// metric can count but not explain: WAL fsync failures, checkpoint and
// compaction outcomes, replica tail errors and parks, router evictions
// and failovers, process lifecycle. A component declares each
// (component, event) pair once with Def (or DefRate for an explicit
// token-bucket rate limit — repeating failure paths default to a few
// admitted records per second so a retry loop cannot wash out the ring)
// and holds the returned *EventDef; Emit and EmitTrace then publish
// into a bounded lock-free ring. Emits below the journal's minimum
// level, and emits suppressed by the rate limiter, take an
// allocation-free drop path — the same zero-alloc discipline as the
// metrics primitives, gated in CI. Admitted events increment
// qbs_events_total{component,level}; error-level admits also feed a
// 10-second spike window (ErrorsInLast) that the flight recorder can
// trigger on. The ring serves GET /debug/logs (?n=, ?min_level=,
// ?component=) with events newest-first, each carrying its trace ID
// when the emit was request-scoped — the joint key into /debug/traces.
//
// # SLOs and burn rates
//
// An SLO pairs an availability target with a latency bound: a recorded
// request is bad when its status is a 5xx or its duration exceeds the
// bound. Record is allocation-free (epoch-stamped 10s buckets, six
// hours of history). BurnRate(window) is the classic SRE ratio —
// observed bad fraction over the error budget (1 - target) — exposed
// as qbs_slo_burn_rate{slo,window} gauges over 5m/30m/1h/6h and as
// GET /debug/slo JSON. FastBurn trips at a 5m burn rate of 14.4 (the
// "2% of a 30-day budget in one hour" page-now threshold), and is one
// of the flight recorder's auto-capture triggers. Servers install
// read- and write-availability objectives by default; the router keeps
// its own routed-read SLO recording the status the client actually saw
// after retries and failover.
//
// # Flight recorder
//
// The FlightRecorder is continuous profiling for the moment after an
// incident: a background sampler that captures goroutine, heap (with
// allocation delta), mutex, and CPU profiles into a bounded ring —
// every interval when started, and immediately when a registered
// trigger (SLO fast burn, error-event spike) fires, debounced by
// MinAutoGap. GET /debug/profiles lists retained captures with their
// trigger attribution; GET /debug/profiles/{id} returns the raw pprof
// bytes (X-Qbs-Profile-Kind names the profile type), so the profile of
// the bad five minutes is still there after the process recovered.
//
// # Fleet view
//
// The router aggregates its backends' own telemetry: on a fixed
// cadence it scrapes each backend's /metrics exposition (ParseSamples
// reads qbs_epoch, qbs_http_inflight, qbs_events_total) and /debug/slo,
// merges the result into qbs_fleet_backend_* gauges, and serves it as
// GET /debug/fleet. Anomaly flags mark backends that are unreachable,
// fast-burning, or stalled — epoch frozen across consecutive sweeps
// while the primary's advances, the stale-but-serving failure mode a
// liveness probe cannot see.
package obs
