// Package obs is the telemetry layer every other package reports
// through: atomic counters, gauges, lock-free log-bucketed latency
// histograms, a registry with a Prometheus text encoder, per-request
// traces, and a bounded slow-query log. It is dependency-free (stdlib
// only) and every recording primitive is allocation-free, so the warm
// query path stays 0 allocs/op with instrumentation enabled.
//
// # Metric naming
//
// Families follow Prometheus conventions with a qbs_ prefix:
//
//   - qbs_http_requests_total / qbs_http_errors_total — per-endpoint
//     counters, labelled endpoint="/spg".
//   - qbs_http_inflight — per-endpoint in-flight gauge.
//   - qbs_http_request_ns — per-endpoint latency histogram.
//   - qbs_query_stage_ns{stage=...} — per-stage query spans (parse,
//     sketch, expand, extract, serialize).
//   - qbs_query_*_total — engine counters aggregated from QueryStats
//     (arcs scanned, frontier words swept, push↔pull switches, label
//     entries scanned).
//   - qbs_wal_*_ns, qbs_checkpoint_*, qbs_snapshot_bytes — durable
//     store instrumentation (process-wide Default registry).
//   - qbs_replica_*, qbs_router_* — replication-layer series.
//   - qbs_goroutines, qbs_heap_*, qbs_gc_* — runtime gauges sampled at
//     scrape time.
//
// Durations are recorded and exposed in nanoseconds (the _ns suffix)
// rather than converted to seconds; the bench harness and JSON views
// share the same unit.
//
// # Registries
//
// Default is the process-wide registry: engine, store, and runtime
// series that are not tied to one listener. Servers, routers, and
// replicas each own an additional Registry for their per-endpoint and
// per-backend series — exact-count test isolation, and multi-server
// processes don't cross-contaminate — and render their own registry
// stacked with Default on scrape.
//
// # Exposition
//
// WritePrometheus renders registries in the text format (version
// 0.0.4). Histograms render as summaries — quantile-labelled samples
// for p50/p95/p99/p999 plus _sum and _count — with the observed
// maximum as a companion <family>_max gauge. Every /metrics endpoint
// serves this encoding for ?format=prometheus or an Accept header
// preferring text/plain, and the unchanged JSON views otherwise; both
// are renderings of the same registry. ValidateExposition is the
// parser-level line check the CI smoke job applies to a live scrape.
//
// # Tracing and the slow-query log
//
// A request's trace ID travels in the X-Qbs-Trace-Id header
// (TraceHeader): the router generates one (or accepts the client's),
// forwards it unchanged on retries and failovers, and backends echo it
// on responses. The serving middleware allocates a Trace per request;
// handlers fill per-stage spans and engine counters from the
// searcher's QueryStats out-param. Requests at or above the SlowLog
// threshold land in a bounded ring served at GET /debug/slowlog.
package obs
