package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog is a bounded in-memory ring of the slowest recent requests.
// Entries at or above the threshold overwrite the oldest once the ring
// is full; readers get a newest-first copy. All methods are safe for
// concurrent use.
type SlowLog struct {
	threshold atomic.Int64 // ns; entries below it are dropped

	mu   sync.Mutex
	ring []SlowEntry
	next int // ring index of the next write
	n    int // filled entries, <= len(ring)
}

// SlowStages is the per-stage breakdown of one logged request.
type SlowStages struct {
	ParseNs     int64 `json:"parse_ns"`
	SketchNs    int64 `json:"sketch_ns"`
	ExpandNs    int64 `json:"expand_ns"`
	ExtractNs   int64 `json:"extract_ns"`
	SerializeNs int64 `json:"serialize_ns"`
}

// SlowEntry is one slow-query log record. Trace links to the request's
// stored span tree (/debug/traces/{id}): a slow entry always clears the
// tracer's tail-sampling bar, so the link resolves while the trace is
// still in the ring.
type SlowEntry struct {
	TraceID    string     `json:"trace_id"`
	Trace      string     `json:"trace,omitempty"`
	Endpoint   string     `json:"endpoint"`
	Status     int        `json:"status"`
	UnixMs     int64      `json:"unix_ms"`
	DurationNs int64      `json:"duration_ns"`
	Stages     SlowStages `json:"stages"`
	// Query identity and engine counters; meaningful when HasQuery.
	HasQuery         bool  `json:"has_query"`
	U                int64 `json:"u"`
	V                int64 `json:"v"`
	Dist             int32 `json:"dist"`
	ArcsScanned      int64 `json:"arcs_scanned"`
	FrontierWords    int64 `json:"frontier_words"`
	PushPullSwitches int64 `json:"push_pull_switches"`
	LabelEntries     int64 `json:"label_entries"`
}

// NewSlowLog creates a ring holding up to capacity entries, recording
// requests that took at least threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowEntry, capacity)}
	l.threshold.Store(int64(threshold))
	return l
}

// Threshold returns the current recording threshold.
func (l *SlowLog) Threshold() time.Duration { return time.Duration(l.threshold.Load()) }

// SetThreshold updates the recording threshold.
func (l *SlowLog) SetThreshold(d time.Duration) { l.threshold.Store(int64(d)) }

// Cap returns the ring capacity.
func (l *SlowLog) Cap() int { return len(l.ring) }

// Record logs e if it meets the threshold.
func (l *SlowLog) Record(e SlowEntry) {
	if e.DurationNs < l.threshold.Load() {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
	}
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Fill is a convenience that builds an entry from a finished request
// trace and records it.
func (l *SlowLog) Fill(tr *Trace, endpoint string, status int, dur time.Duration, now time.Time) {
	if tr == nil || int64(dur) < l.threshold.Load() {
		return
	}
	l.Record(SlowEntry{
		TraceID:    tr.ID,
		Trace:      "/debug/traces/" + tr.ID,
		Endpoint:   endpoint,
		Status:     status,
		UnixMs:     now.UnixMilli(),
		DurationNs: int64(dur),
		Stages: SlowStages{
			ParseNs:     tr.StageNs[StageParse],
			SketchNs:    tr.StageNs[StageSketch],
			ExpandNs:    tr.StageNs[StageExpand],
			ExtractNs:   tr.StageNs[StageExtract],
			SerializeNs: tr.StageNs[StageSerialize],
		},
		HasQuery:         tr.HasQuery,
		U:                tr.U,
		V:                tr.V,
		Dist:             tr.Dist,
		ArcsScanned:      tr.ArcsScanned,
		FrontierWords:    tr.FrontierWords,
		PushPullSwitches: tr.PushPullSwitches,
		LabelEntries:     tr.LabelEntries,
	})
}

// Entries returns the logged entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, l.n)
	for i := 0; i < l.n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += len(l.ring)
		}
		out = append(out, l.ring[idx])
	}
	return out
}

// Len returns the number of logged entries.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
