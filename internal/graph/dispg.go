package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DiSPG is a directed shortest path graph: exactly the union of all
// shortest directed Source→Target paths. The directed analogue of SPG.
type DiSPG struct {
	Source, Target V
	Dist           int32

	arcs      []Arc
	canonical bool
}

// NewDiSPG creates an empty directed shortest path graph.
func NewDiSPG(u, v V) *DiSPG {
	return &DiSPG{Source: u, Target: v, Dist: InfDist, canonical: true}
}

// Reset re-initialises the DiSPG for a new pair (u, v), keeping the arc
// buffer's capacity. Query paths reuse one DiSPG across many queries to
// stay allocation-free once the buffer has grown to its working size.
//
//qbs:zeroalloc
func (s *DiSPG) Reset(u, v V) {
	s.Source, s.Target = u, v
	s.Dist = InfDist
	s.arcs = s.arcs[:0]
	s.canonical = true
}

// AddArc records an arc of some shortest path (duplicates allowed).
func (s *DiSPG) AddArc(from, to V) {
	s.arcs = append(s.arcs, Arc{from, to})
	s.canonical = false
}

// Canonicalize sorts and deduplicates the arc set.
func (s *DiSPG) Canonicalize() {
	if s.canonical {
		return
	}
	sort.Slice(s.arcs, func(i, j int) bool {
		if s.arcs[i].From != s.arcs[j].From {
			return s.arcs[i].From < s.arcs[j].From
		}
		return s.arcs[i].To < s.arcs[j].To
	})
	out := s.arcs[:0]
	for i, a := range s.arcs {
		if i == 0 || a != s.arcs[i-1] {
			out = append(out, a)
		}
	}
	s.arcs = out
	s.canonical = true
}

// Arcs returns the canonical sorted arc set (do not modify).
func (s *DiSPG) Arcs() []Arc {
	s.Canonicalize()
	return s.arcs
}

// NumArcs returns the number of distinct arcs.
func (s *DiSPG) NumArcs() int {
	s.Canonicalize()
	return len(s.arcs)
}

// Vertices returns the sorted vertex set covered by the arcs.
func (s *DiSPG) Vertices() []V {
	s.Canonicalize()
	if len(s.arcs) == 0 {
		if s.Source == s.Target {
			return []V{s.Source}
		}
		return nil
	}
	set := map[V]struct{}{}
	for _, a := range s.arcs {
		set[a.From] = struct{}{}
		set[a.To] = struct{}{}
	}
	out := make([]V, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two directed SPGs describe the same answer.
// Unlike the undirected case, the pair is ordered.
func (s *DiSPG) Equal(t *DiSPG) bool {
	if s.Dist != t.Dist || s.Source != t.Source || s.Target != t.Target {
		return false
	}
	a, b := s.Arcs(), t.Arcs()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Verify checks the defining property against the parent digraph g:
// arc x→y belongs to the answer iff d(u,x) + 1 + d(y,v) = d(u,v).
// distFromU is the forward distance array from Source; distToV the
// backward distance array to Target.
func (s *DiSPG) Verify(g *DiGraph, distFromU, distToV []int32) error {
	if s.Source == s.Target {
		if s.Dist != 0 || s.NumArcs() != 0 {
			return fmt.Errorf("dispg: trivial pair must be empty with dist 0")
		}
		return nil
	}
	want := distFromU[s.Target]
	if s.Dist != want {
		return fmt.Errorf("dispg: dist = %d, want %d", s.Dist, want)
	}
	if s.Dist == InfDist {
		if s.NumArcs() != 0 {
			return fmt.Errorf("dispg: disconnected pair must be empty")
		}
		return nil
	}
	onShortest := func(a Arc) bool {
		return distFromU[a.From] != InfDist && distToV[a.To] != InfDist &&
			distFromU[a.From]+1+distToV[a.To] == s.Dist
	}
	for _, a := range s.Arcs() {
		if !g.HasArc(a.From, a.To) {
			return fmt.Errorf("dispg: arc %d->%d not in graph", a.From, a.To)
		}
		if !onShortest(a) {
			return fmt.Errorf("dispg: arc %d->%d not on any shortest path", a.From, a.To)
		}
	}
	count := 0
	for u := V(0); u < V(g.NumVertices()); u++ {
		for _, w := range g.Out(u) {
			if onShortest(Arc{u, w}) {
				count++
			}
		}
	}
	if got := s.NumArcs(); got != count {
		return fmt.Errorf("dispg: has %d arcs, want %d", got, count)
	}
	return nil
}

// String renders a compact description.
func (s *DiSPG) String() string {
	var b strings.Builder
	if s.Dist == InfDist {
		fmt.Fprintf(&b, "DiSPG(%d,%d) dist=inf {}", s.Source, s.Target)
		return b.String()
	}
	fmt.Fprintf(&b, "DiSPG(%d,%d) dist=%d {", s.Source, s.Target, s.Dist)
	for i, a := range s.Arcs() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d>%d", a.From, a.To)
	}
	b.WriteString("}")
	return b.String()
}
