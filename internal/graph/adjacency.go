package graph

// Adjacency is the neighbour-iteration interface consumed by the BFS
// kernels, the QbS searcher and the labelling machinery. The immutable
// CSR Graph is the canonical implementation; the dynamic-update
// subsystem provides a second one (an immutable CSR base plus
// per-vertex adjacency deltas) so indexes can be maintained over a
// mutating graph without rebuilding the CSR.
//
// Implementations must be immutable (or at least never mutated while a
// reader holds them): Neighbors may alias internal storage and callers
// iterate it without copying.
type Adjacency interface {
	// NumVertices returns |V|. Vertex ids are dense in [0, NumVertices).
	NumVertices() int
	// NumArcs returns the number of stored arcs (2·|E| undirected).
	NumArcs() int
	// Degree returns the number of neighbours of v.
	Degree(v V) int
	// Neighbors returns the sorted neighbour list of v. The slice may
	// alias internal storage and must not be modified or retained across
	// mutations of the underlying structure.
	Neighbors(v V) []V
}

var _ Adjacency = (*Graph)(nil)
