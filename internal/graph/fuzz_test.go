package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList feeds arbitrary bytes to the text parser: it must
// never panic, and anything it accepts must round-trip to a valid graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n% other\n10 20\n20 10\n"))
	f.Add([]byte(""))
	f.Add([]byte("1\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte("9223372036854775807 1\n"))
	f.Add([]byte("-3 4\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, orig, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph invalid: %v", err)
		}
		if len(orig) != g.NumVertices() {
			t.Fatalf("id mapping length %d != |V| %d", len(orig), g.NumVertices())
		}
	})
}

// FuzzReadBinary feeds arbitrary bytes to the binary reader: it must
// reject or return a valid graph, never panic.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteBinary(&buf, Cycle(5))
	f.Add(buf.Bytes())
	f.Add([]byte("QBSG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted binary graph invalid: %v", err)
		}
	})
}

// FuzzBuilder interprets the fuzz payload as an edge stream over a small
// vertex set: Build must produce a valid CSR for any input.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{5, 5, 5, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 16
		b := NewBuilder(n)
		for i := 0; i+1 < len(data); i += 2 {
			b.AddEdge(V(data[i]%n), V(data[i+1]%n))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("in-range edges rejected: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
