package graph

import (
	"math/rand"
)

// Generators for synthetic networks. Every generator takes an explicit
// seed and is deterministic for a given (parameters, seed) pair, which
// the experiment harness relies on for reproducibility.
//
// The generators return graphs that may be disconnected; dataset analogs
// call LargestComponent to match the paper's connectivity assumption.

// ErdosRenyi generates G(n, m): m undirected edges sampled uniformly at
// random without replacement (rejection-sampled), yielding a flat,
// near-Poisson degree distribution. This is the building block for the
// Friendster-like analog, whose defining property in the paper is an
// evenly distributed degree sequence (§6.3).
func ErdosRenyi(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	seen := make(map[Edge]struct{}, m)
	for len(seen) < m && len(seen) < n*(n-1)/2 {
		u := V(rng.Intn(n))
		w := V(rng.Intn(n))
		if u == w {
			continue
		}
		e := Edge{u, w}.Normalize()
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		b.AddEdge(e.U, e.W)
	}
	return b.MustBuild()
}

// BarabasiAlbert generates a preferential-attachment graph: vertices
// arrive one at a time and attach m edges to existing vertices chosen
// proportionally to degree, producing the power-law hub structure that
// characterises the paper's social and web datasets. The first m+1
// vertices form a clique seed.
func BarabasiAlbert(n, m int, seed int64) *Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	// repeated holds one entry per arc endpoint; sampling uniformly from
	// it is sampling proportionally to degree.
	repeated := make([]V, 0, 2*m*n)
	seedSize := m + 1
	if seedSize > n {
		seedSize = n
	}
	for u := 0; u < seedSize; u++ {
		for w := u + 1; w < seedSize; w++ {
			b.AddEdge(V(u), V(w))
			repeated = append(repeated, V(u), V(w))
		}
	}
	targets := make([]V, 0, m)
	for v := seedSize; v < n; v++ {
		targets = targets[:0]
		for attempts := 0; len(targets) < m && attempts < 32*m; attempts++ {
			t := repeated[rng.Intn(len(repeated))]
			if !containsV(targets, t) {
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			b.AddEdge(V(v), t)
			repeated = append(repeated, V(v), t)
		}
	}
	return b.MustBuild()
}

func containsV(s []V, x V) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// WattsStrogatz generates a small-world ring lattice on n vertices where
// each vertex connects to its k nearest ring neighbours and each edge is
// rewired with probability beta. Used for locality-flavoured analogs
// (computer topologies such as Skitter).
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	if k%2 == 1 {
		k++
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			w := (u + j) % n
			if rng.Float64() < beta {
				w = rng.Intn(n)
				for w == u {
					w = rng.Intn(n)
				}
			}
			b.AddEdge(V(u), V(w))
		}
	}
	return b.MustBuild()
}

// Grid generates an rows×cols 4-neighbour lattice — the road-network-like
// fixture (high diameter, no hubs) used in tests to exercise QbS on
// structure opposite to complex networks.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) V { return V(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// Path generates the path graph 0–1–…–(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(V(i), V(i+1))
	}
	return b.MustBuild()
}

// Cycle generates the cycle graph on n vertices.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(V(i), V((i+1)%n))
	}
	return b.MustBuild()
}

// Star generates a star with vertex 0 as the centre.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, V(i))
	}
	return b.MustBuild()
}

// Complete generates the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for w := u + 1; w < n; w++ {
			b.AddEdge(V(u), V(w))
		}
	}
	return b.MustBuild()
}

// HubBoost adds extra edges from the h highest-degree vertices to
// uniformly random vertices until each selected hub gains roughly extra
// additional neighbours. This sharpens degree skew, emulating networks
// such as Twitter or WikiTalk whose few extreme hubs dominate shortest
// paths (the property behind the paper's high pair-coverage ratios in
// Figure 8).
func HubBoost(g *Graph, h, extra int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	hubs := g.TopDegreeVertices(h)
	b := NewBuilder(n)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.W)
	}
	for _, hub := range hubs {
		for i := 0; i < extra; i++ {
			w := V(rng.Intn(n))
			if w != hub {
				b.AddEdge(hub, w)
			}
		}
	}
	return b.MustBuild()
}

// Union overlays two graphs on the same vertex set, merging their edge
// sets. It is used to mix generator outputs (e.g. BA + ER for the
// Orkut-like analog: dense but with moderate skew).
func Union(a, b *Graph) *Graph {
	n := a.NumVertices()
	if b.NumVertices() > n {
		n = b.NumVertices()
	}
	bl := NewBuilder(n)
	for _, e := range a.Edges() {
		bl.AddEdge(e.U, e.W)
	}
	for _, e := range b.Edges() {
		bl.AddEdge(e.U, e.W)
	}
	return bl.MustBuild()
}

// TriadicClosure adds up to count edges closing open triangles (two
// vertices sharing a neighbour), raising clustering to emulate
// co-authorship networks such as DBLP.
func TriadicClosure(g *Graph, count int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	b := NewBuilder(n)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.W)
	}
	added := 0
	for attempts := 0; added < count && attempts < 20*count; attempts++ {
		u := V(rng.Intn(n))
		ns := g.Neighbors(u)
		if len(ns) < 2 {
			continue
		}
		a := ns[rng.Intn(len(ns))]
		c := ns[rng.Intn(len(ns))]
		if a == c || g.HasEdge(a, c) {
			continue
		}
		b.AddEdge(a, c)
		added++
	}
	return b.MustBuild()
}
