package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// I/O for graphs in two formats:
//
//   - Text edge lists, one "u w" pair per line, '#' or '%' comments —
//     the format used by SNAP and KONECT dumps that the paper's datasets
//     ship in. Vertex ids may be sparse; they are densified on load.
//   - A binary CSR snapshot ("QBSG" magic) for fast reload of generated
//     analogs between harness runs.

// ReadEdgeList parses a whitespace-separated edge list. Directed inputs
// are symmetrised (the paper treats all graphs as undirected). Vertex ids
// are arbitrary non-negative integers and are remapped to a dense range;
// the mapping from dense id to original id is returned.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	pairs, orig, err := scanEdgeList(r)
	if err != nil {
		return nil, nil, err
	}
	b := NewBuilder(len(orig))
	for _, e := range pairs {
		b.AddEdge(e.u, e.w)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, orig, nil
}

// rawPair is one parsed edge-list line after id densification.
type rawPair struct{ u, w V }

// scanEdgeList parses the whitespace-separated pairs shared by the
// undirected (symmetrising) and directed readers, densifying vertex ids.
func scanEdgeList(r io.Reader) ([]rawPair, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	idOf := make(map[int64]V)
	var orig []int64
	intern := func(raw int64) V {
		if v, ok := idOf[raw]; ok {
			return v
		}
		v := V(len(orig))
		idOf[raw] = v
		orig = append(orig, raw)
		return v
	}
	var pairs []rawPair
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: expected two vertex ids, got %q", lineNo, line)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		pairs = append(pairs, rawPair{intern(a), intern(b)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return pairs, orig, nil
}

// ReadDiEdgeList parses a whitespace-separated edge list as *directed*
// arcs "u w" = u→w, without symmetrising (self-loops and duplicates are
// dropped). Vertex ids are densified exactly as in ReadEdgeList.
func ReadDiEdgeList(r io.Reader) (*DiGraph, []int64, error) {
	pairs, orig, err := scanEdgeList(r)
	if err != nil {
		return nil, nil, err
	}
	b := NewDiBuilder(len(orig))
	for _, e := range pairs {
		b.AddArc(e.u, e.w)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, orig, nil
}

// ReadDiEdgeListFile is ReadDiEdgeList over a file path.
func ReadDiEdgeListFile(path string) (*DiGraph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadDiEdgeList(bufio.NewReaderSize(f, 1<<20))
}

// ReadEdgeListFile is ReadEdgeList over a file path.
func ReadEdgeListFile(path string) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeList(bufio.NewReaderSize(f, 1<<20))
}

// WriteEdgeList writes the graph as a normalised text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# undirected graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for u := V(0); u < V(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fmt.Fprintf(bw, "%d %d\n", u, v)
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile is WriteEdgeList to a file path.
func WriteEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CSR exposes the raw CSR arrays (offsets and concatenated adjacency).
// Both slices alias the graph's internal storage and must not be
// modified; they exist so serializers can dump the structure without a
// per-element copy.
func (g *Graph) CSR() (offsets []int64, adj []V) { return g.offsets, g.adj }

// FromCSR adopts pre-built CSR arrays as a graph, checking the
// structural invariants that index panics depend on (monotone in-range
// offsets, sorted in-range neighbour lists, no self-loops) in O(n+m).
// Unlike Validate it does not verify that every arc has its reverse —
// callers adopting checksummed state (the durable store's zero-copy
// load path, where both arrays are views into a snapshot arena) already
// know the arrays are bit-exact, and the pairing check costs a binary
// search per arc. The slices are adopted by reference and must not be
// modified afterwards.
func FromCSR(offsets []int64, adj []V) (*Graph, error) {
	g := &Graph{offsets: offsets, adj: adj}
	if err := g.ValidateStructure(); err != nil {
		return nil, err
	}
	return g, nil
}

const binaryMagic = "QBSG"

// WriteBinary serialises the CSR structure: magic, version, |V|, |arcs|,
// offsets and adjacency in little-endian.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []int64{1, int64(g.NumVertices()), int64(g.NumArcs())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserialises a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, n, arcs int64
	for _, p := range []*int64{&version, &n, &arcs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != 1 {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	const maxCount = int64(1) << 34
	if n < 0 || arcs < 0 || arcs%2 != 0 || n > maxCount || arcs > maxCount {
		return nil, fmt.Errorf("graph: corrupt header (n=%d arcs=%d)", n, arcs)
	}
	g := &Graph{}
	// Allocate incrementally in bounded chunks so a corrupt header cannot
	// force a huge up-front allocation: the stream must actually contain
	// the data before memory grows.
	offsets, err := readChunkedInt64(br, n+1)
	if err != nil {
		return nil, err
	}
	g.offsets = offsets
	adj, err := readChunkedInt32(br, arcs)
	if err != nil {
		return nil, err
	}
	g.adj = adj
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

const readChunk = 1 << 16

func readChunkedInt64(r io.Reader, count int64) ([]int64, error) {
	out := make([]int64, 0, min64(count, readChunk))
	buf := make([]int64, readChunk)
	for int64(len(out)) < count {
		c := min64(count-int64(len(out)), readChunk)
		if err := binary.Read(r, binary.LittleEndian, buf[:c]); err != nil {
			return nil, err
		}
		out = append(out, buf[:c]...)
	}
	return out, nil
}

func readChunkedInt32(r io.Reader, count int64) ([]V, error) {
	out := make([]V, 0, min64(count, readChunk))
	buf := make([]V, readChunk)
	for int64(len(out)) < count {
		c := min64(count-int64(len(out)), readChunk)
		if err := binary.Read(r, binary.LittleEndian, buf[:c]); err != nil {
			return nil, err
		}
		out = append(out, buf[:c]...)
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// WriteBinaryFile is WriteBinary to a file path.
func WriteBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile is ReadBinary over a file path.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
