package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBuilderDedupAndSymmetry(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // reversed duplicate
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop ignored
	b.AddEdge(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(4, 3) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Fatal("unexpected edges present")
	}
}

func TestBuilderOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestBuilderRebuildAfterMoreEdges(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g1 := b.MustBuild()
	b.AddEdge(2, 3)
	g2 := b.MustBuild()
	if g1.NumEdges() != 1 || g2.NumEdges() != 2 {
		t.Fatalf("edges: %d then %d, want 1 then 2", g1.NumEdges(), g2.NumEdges())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := ErdosRenyi(200, 600, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := V(0); v < V(g.NumVertices()); v++ {
		ns := g.Neighbors(v)
		if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
			t.Fatalf("neighbours of %d unsorted", v)
		}
	}
}

func TestDegreeAccounting(t *testing.T) {
	g := Star(10)
	if g.Degree(0) != 9 || g.Degree(5) != 1 {
		t.Fatalf("star degrees wrong: %d, %d", g.Degree(0), g.Degree(5))
	}
	if g.MaxDegree() != 9 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 18.0/10 {
		t.Fatalf("AvgDegree = %f", got)
	}
	if g.SizeBytes() != int64(g.NumArcs())*8 {
		t.Fatal("SizeBytes accounting")
	}
}

func TestTopDegreeDeterministicTies(t *testing.T) {
	g := Cycle(10) // all degrees equal: ties broken by id
	top := g.TopDegreeVertices(3)
	if top[0] != 0 || top[1] != 1 || top[2] != 2 {
		t.Fatalf("tie-break not by id: %v", top)
	}
}

func TestFixtureShapes(t *testing.T) {
	cases := []struct {
		name   string
		g      *Graph
		v, e   int
		maxDeg int
	}{
		{"path", Path(5), 5, 4, 2},
		{"cycle", Cycle(6), 6, 6, 2},
		{"star", Star(7), 7, 6, 6},
		{"complete", Complete(5), 5, 10, 4},
		{"grid", Grid(3, 4), 12, 17, 4},
	}
	for _, c := range cases {
		if c.g.NumVertices() != c.v || c.g.NumEdges() != c.e || c.g.MaxDegree() != c.maxDeg {
			t.Fatalf("%s: got (%d,%d,%d), want (%d,%d,%d)", c.name,
				c.g.NumVertices(), c.g.NumEdges(), c.g.MaxDegree(), c.v, c.e, c.maxDeg)
		}
		if err := c.g.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	type gen func() *Graph
	gens := map[string]gen{
		"er": func() *Graph { return ErdosRenyi(100, 250, 7) },
		"ba": func() *Graph { return BarabasiAlbert(100, 3, 7) },
		"ws": func() *Graph { return WattsStrogatz(100, 4, 0.3, 7) },
	}
	for name, g := range gens {
		a, b := g(), g()
		ea, eb := a.Edges(), b.Edges()
		if len(ea) != len(eb) {
			t.Fatalf("%s: nondeterministic edge count", name)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: nondeterministic edges", name)
			}
		}
	}
}

func TestBarabasiAlbertHasHubs(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 99)
	if g.MaxDegree() < 30 {
		t.Fatalf("BA graph lacks hubs: max degree %d", g.MaxDegree())
	}
	if gini := GiniDegree(g); gini < 0.2 {
		t.Fatalf("BA degree Gini %f too flat", gini)
	}
}

func TestErdosRenyiIsFlat(t *testing.T) {
	g := ErdosRenyi(2000, 10000, 99)
	if gini := GiniDegree(g); gini > 0.35 {
		t.Fatalf("ER degree Gini %f too skewed", gini)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.MustBuild()
	labels, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("component 0 split")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("component 1 wrong")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(5, 6)
	g := b.MustBuild()
	lc, orig := g.LargestComponent()
	if lc.NumVertices() != 4 || lc.NumEdges() != 3 {
		t.Fatalf("largest component: %d vertices %d edges", lc.NumVertices(), lc.NumEdges())
	}
	if len(orig) != 4 || orig[0] != 0 {
		t.Fatalf("orig mapping: %v", orig)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub := g.InducedSubgraph(func(v V) bool { return v != 0 })
	if sub.NumVertices() != 5 { // ids preserved, vertex 0 isolated
		t.Fatal("induced subgraph should keep vertex count")
	}
	if sub.Degree(0) != 0 || sub.NumEdges() != 6 {
		t.Fatalf("induced K4: deg0=%d edges=%d", sub.Degree(0), sub.NumEdges())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := ErdosRenyi(80, 200, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, orig, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex ids may be renumbered by first appearance; isolated vertices
	// are dropped by the text format. Compare via canonical edge sets
	// mapped back through orig.
	lc, _ := g.LargestComponent()
	_ = lc
	remapped := make([]Edge, 0, g2.NumEdges())
	for _, e := range g2.Edges() {
		remapped = append(remapped, Edge{V(orig[e.U]), V(orig[e.W])}.Normalize())
	}
	sort.Slice(remapped, func(i, j int) bool {
		if remapped[i].U != remapped[j].U {
			return remapped[i].U < remapped[j].U
		}
		return remapped[i].W < remapped[j].W
	})
	want := g.Edges()
	if len(remapped) != len(want) {
		t.Fatalf("edge count: %d vs %d", len(remapped), len(want))
	}
	for i := range want {
		if remapped[i] != want[i] {
			t.Fatalf("edge %d: %v vs %v", i, remapped[i], want[i])
		}
	}
}

func TestEdgeListParsing(t *testing.T) {
	in := "# comment\n% koblenz comment\n10 20\n20 30\n\n10 30\n"
	g, orig, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if orig[0] != 10 || orig[1] != 20 || orig[2] != 30 {
		t.Fatalf("orig ids: %v", orig)
	}
}

func TestEdgeListParseErrors(t *testing.T) {
	for _, bad := range []string{"1\n", "a b\n", "1 b\n"} {
		if _, _, err := ReadEdgeList(bytes.NewBufferString(bad)); err == nil {
			t.Fatalf("input %q: expected error", bad)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := BarabasiAlbert(150, 4, 8)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed shape")
	}
	ea, eb := g.Edges(), g2.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("binary round trip changed edges")
		}
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	g := Path(5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestUnionAndTriadicClosure(t *testing.T) {
	a := Path(6)
	b := Cycle(6)
	u := Union(a, b)
	if u.NumEdges() < b.NumEdges() {
		t.Fatal("union lost edges")
	}
	tc := TriadicClosure(Star(10), 5, 3)
	if tc.NumEdges() < Star(10).NumEdges() {
		t.Fatal("triadic closure lost edges")
	}
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHubBoost(t *testing.T) {
	g := ErdosRenyi(500, 1000, 4)
	boosted := HubBoost(g, 3, 100, 5)
	if boosted.MaxDegree() <= g.MaxDegree() {
		t.Fatal("hub boost did not increase max degree")
	}
	if err := boosted.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPropertyQuick(t *testing.T) {
	// Property: for any random edge multiset, Build yields a valid,
	// symmetric, dedup'd CSR whose edge set equals the input set.
	check := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := 2 + int(nRaw)%60
		m := int(mRaw) % 300
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		want := map[Edge]struct{}{}
		for i := 0; i < m; i++ {
			u, w := V(rng.Intn(n)), V(rng.Intn(n))
			b.AddEdge(u, w)
			if u != w {
				want[Edge{u, w}.Normalize()] = struct{}{}
			}
		}
		g, err := b.Build()
		if err != nil || g.Validate() != nil {
			return false
		}
		if g.NumEdges() != len(want) {
			return false
		}
		for _, e := range g.Edges() {
			if _, ok := want[e]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSPGEqualAndVertices(t *testing.T) {
	a := NewSPG(1, 4)
	a.Dist = 2
	a.AddEdge(1, 2)
	a.AddEdge(2, 4)
	a.AddEdge(4, 2) // duplicate reversed
	b := NewSPG(4, 1)
	b.Dist = 2
	b.AddEdge(2, 1)
	b.AddEdge(2, 4)
	if !a.Equal(b) {
		t.Fatal("reversed pair SPGs should be equal")
	}
	vs := a.Vertices()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 4 {
		t.Fatalf("vertices: %v", vs)
	}
	if a.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", a.NumEdges())
	}
}

func TestSPGCountShortestPaths(t *testing.T) {
	// Figure 1(b)-style: two vertices joined by three length-3 paths.
	bld := NewBuilder(8)
	u, v := V(0), V(7)
	mids := [][2]V{{1, 2}, {3, 4}, {5, 6}}
	for _, m := range mids {
		bld.AddEdge(u, m[0])
		bld.AddEdge(m[0], m[1])
		bld.AddEdge(m[1], v)
	}
	g := bld.MustBuild()
	spg := NewSPG(u, v)
	spg.Dist = 3
	for _, e := range g.Edges() {
		spg.AddEdge(e.U, e.W)
	}
	distU := make([]int32, 8)
	distU[0] = 0
	for _, m := range mids {
		distU[m[0]], distU[m[1]] = 1, 2
	}
	distU[7] = 3
	if n := spg.CountShortestPaths(func(x V) int32 { return distU[x] }); n != 3 {
		t.Fatalf("path count = %d, want 3", n)
	}
}
