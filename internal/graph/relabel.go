package graph

import "fmt"

// Vertex relabeling for cache locality. BFS-heavy query workloads touch
// adjacency lists of vertices discovered together; renumbering vertices
// so that high-degree hubs (touched by almost every query) occupy a
// dense id prefix — and their adjacency a contiguous memory prefix —
// measurably improves query time. This addresses the main memory-layout
// gap between a straightforward port and the paper's tuned C++
// implementation; the `BenchmarkAblationRelabel` benchmark quantifies
// it.

// Relabel renumbers vertices: perm[old] = new. perm must be a
// permutation of [0, |V|).
func Relabel(g *Graph, perm []V) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation has %d entries for %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation")
		}
		seen[p] = true
	}
	b := NewBuilder(n)
	for u := V(0); u < V(n); u++ {
		for _, w := range g.Neighbors(u) {
			if u < w {
				b.AddEdge(perm[u], perm[w])
			}
		}
	}
	return b.Build()
}

// RelabelByDegree renumbers vertices in descending degree order and
// returns the relabeled graph plus the permutation (perm[old] = new).
// Queries against the relabeled graph must translate ids through perm;
// the inverse mapping is returned as orig (orig[new] = old).
func RelabelByDegree(g *Graph) (relabeled *Graph, perm, orig []V) {
	order := g.VerticesByDegree()
	n := g.NumVertices()
	perm = make([]V, n)
	orig = make([]V, n)
	for newID, old := range order {
		perm[old] = V(newID)
		orig[newID] = old
	}
	relabeled, err := Relabel(g, perm)
	if err != nil {
		panic(err) // perm is a permutation by construction
	}
	return relabeled, perm, orig
}

// RelabelByBFS renumbers vertices in BFS discovery order from the
// highest-degree vertex (a Cuthill–McKee-flavoured layout that places
// neighbourhoods contiguously). Unreached vertices keep their relative
// order after all reached ones.
func RelabelByBFS(g *Graph) (relabeled *Graph, perm, orig []V) {
	n := g.NumVertices()
	perm = make([]V, n)
	orig = make([]V, 0, n)
	for i := range perm {
		perm[i] = -1
	}
	start := g.TopDegreeVertices(1)
	assign := func(v V) {
		perm[v] = V(len(orig))
		orig = append(orig, v)
	}
	if len(start) > 0 {
		queue := []V{start[0]}
		assign(start[0])
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.Neighbors(u) {
				if perm[w] < 0 {
					assign(w)
					queue = append(queue, w)
				}
			}
		}
	}
	for v := V(0); v < V(n); v++ {
		if perm[v] < 0 {
			assign(v)
		}
	}
	relabeled, err := Relabel(g, perm)
	if err != nil {
		panic(err)
	}
	return relabeled, perm, orig
}
