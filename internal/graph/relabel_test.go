package graph

import (
	"math/rand"
	"testing"
)

func TestRelabelIsIsomorphism(t *testing.T) {
	g := ErdosRenyi(200, 500, 5)
	for _, f := range []func(*Graph) (*Graph, []V, []V){RelabelByDegree, RelabelByBFS} {
		rl, perm, orig := f(g)
		if rl.NumVertices() != g.NumVertices() || rl.NumEdges() != g.NumEdges() {
			t.Fatal("relabeling changed graph size")
		}
		for v := V(0); v < V(g.NumVertices()); v++ {
			if orig[perm[v]] != v {
				t.Fatal("perm and orig are not inverses")
			}
		}
		// Every original edge maps to a relabeled edge and vice versa.
		for _, e := range g.Edges() {
			if !rl.HasEdge(perm[e.U], perm[e.W]) {
				t.Fatalf("edge %v lost", e)
			}
		}
		if err := rl.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRelabelByDegreeOrdersHubsFirst(t *testing.T) {
	g := Star(20)
	rl, perm, _ := RelabelByDegree(g)
	if perm[0] != 0 {
		t.Fatalf("hub must become vertex 0, got %d", perm[0])
	}
	if rl.Degree(0) != 19 {
		t.Fatal("vertex 0 of the relabeled graph must be the hub")
	}
}

func TestRelabelByBFSContiguity(t *testing.T) {
	g := Path(10)
	rl, _, _ := RelabelByBFS(g)
	// BFS from an endpoint of a path visits in order: neighbours must
	// stay within distance ≤ 2 in the new numbering.
	for v := V(0); v < 10; v++ {
		for _, w := range rl.Neighbors(v) {
			d := int(v) - int(w)
			if d < 0 {
				d = -d
			}
			if d > 2 {
				t.Fatalf("BFS relabeling scattered neighbours: %d-%d", v, w)
			}
		}
	}
}

func TestRelabelRejectsBadPermutation(t *testing.T) {
	g := Path(4)
	if _, err := Relabel(g, []V{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := Relabel(g, []V{0, 1, 1, 2}); err == nil {
		t.Fatal("duplicate permutation accepted")
	}
	if _, err := Relabel(g, []V{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range permutation accepted")
	}
}

func TestRelabelPreservesDistances(t *testing.T) {
	g := BarabasiAlbert(300, 3, 9)
	rl, perm, _ := RelabelByDegree(g)
	rng := rand.New(rand.NewSource(4))
	// Distances are isomorphism-invariant; spot-check via simple BFS.
	for i := 0; i < 30; i++ {
		u := V(rng.Intn(g.NumVertices()))
		v := V(rng.Intn(g.NumVertices()))
		if bfsDist(g, u, v) != bfsDist(rl, perm[u], perm[v]) {
			t.Fatalf("distance changed under relabeling for (%d,%d)", u, v)
		}
	}
}

func bfsDist(g *Graph, u, v V) int32 {
	if u == v {
		return 0
	}
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	queue := []V{u}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, w := range g.Neighbors(x) {
			if dist[w] < 0 {
				dist[w] = dist[x] + 1
				if w == v {
					return dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return -1
}
