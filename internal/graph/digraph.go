package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// DiGraph is an immutable unweighted directed graph in dual-CSR form:
// both out-adjacency and in-adjacency are materialised, since the
// directed QbS query walks forward from the source and backward from the
// target. The paper treats its datasets as undirected but notes the
// method "can be easily extended to directed graphs" (§2); package dcore
// is that extension, and this is its substrate.
type DiGraph struct {
	outOff []int64
	out    []V
	inOff  []int64
	in     []V
}

// Arc is a directed edge From → To.
type Arc struct {
	From, To V
}

// NumVertices returns |V|.
func (g *DiGraph) NumVertices() int {
	if len(g.outOff) == 0 {
		return 0
	}
	return len(g.outOff) - 1
}

// NumArcs returns the number of directed arcs.
func (g *DiGraph) NumArcs() int { return len(g.out) }

// OutDegree returns the number of out-neighbours of v.
func (g *DiGraph) OutDegree(v V) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the number of in-neighbours of v.
func (g *DiGraph) InDegree(v V) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Out returns the sorted out-neighbours of v (do not modify).
func (g *DiGraph) Out(v V) []V { return g.out[g.outOff[v]:g.outOff[v+1]] }

// In returns the sorted in-neighbours of v (do not modify).
func (g *DiGraph) In(v V) []V { return g.in[g.inOff[v]:g.inOff[v+1]] }

// HasArc reports whether the arc u→w exists.
func (g *DiGraph) HasArc(u, w V) bool {
	ns := g.Out(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= w })
	return i < len(ns) && ns[i] == w
}

// Arcs returns all arcs sorted by (From, To).
func (g *DiGraph) Arcs() []Arc {
	arcs := make([]Arc, 0, g.NumArcs())
	for u := V(0); u < V(g.NumVertices()); u++ {
		for _, w := range g.Out(u) {
			arcs = append(arcs, Arc{u, w})
		}
	}
	return arcs
}

// TotalDegreeOrder returns vertices by descending in+out degree (ties by
// id) — the landmark order for directed QbS.
func (g *DiGraph) TotalDegreeOrder() []V {
	n := g.NumVertices()
	vs := make([]V, n)
	for i := range vs {
		vs[i] = V(i)
	}
	sort.Slice(vs, func(i, j int) bool {
		di := g.OutDegree(vs[i]) + g.InDegree(vs[i])
		dj := g.OutDegree(vs[j]) + g.InDegree(vs[j])
		if di != dj {
			return di > dj
		}
		return vs[i] < vs[j]
	})
	return vs
}

// OutDegrees materialises the out-degree array (one int32 per vertex)
// for the traversal engines' α/β direction heuristic.
func (g *DiGraph) OutDegrees() []int32 {
	n := g.NumVertices()
	degs := make([]int32, n)
	for v := 0; v < n; v++ {
		degs[v] = int32(g.outOff[v+1] - g.outOff[v])
	}
	return degs
}

// InDegrees materialises the in-degree array.
func (g *DiGraph) InDegrees() []int32 {
	n := g.NumVertices()
	degs := make([]int32, n)
	for v := 0; v < n; v++ {
		degs[v] = int32(g.inOff[v+1] - g.inOff[v])
	}
	return degs
}

// outAdj and inAdj adapt one direction of the dual CSR to the Adjacency
// interface consumed by the shared BFS engines (traverse.MultiBFS and
// traverse.Expander). They are single-pointer structs, so converting
// them to the interface does not allocate.
type outAdj struct{ g *DiGraph }

func (a outAdj) NumVertices() int  { return a.g.NumVertices() }
func (a outAdj) NumArcs() int      { return a.g.NumArcs() }
func (a outAdj) Degree(v V) int    { return a.g.OutDegree(v) }
func (a outAdj) Neighbors(v V) []V { return a.g.Out(v) }

type inAdj struct{ g *DiGraph }

func (a inAdj) NumVertices() int  { return a.g.NumVertices() }
func (a inAdj) NumArcs() int      { return a.g.NumArcs() }
func (a inAdj) Degree(v V) int    { return a.g.InDegree(v) }
func (a inAdj) Neighbors(v V) []V { return a.g.In(v) }

// OutView returns the forward (out-arc) adjacency as a graph.Adjacency.
func (g *DiGraph) OutView() Adjacency { return outAdj{g} }

// InView returns the backward (in-arc) adjacency: Neighbors(v) are the
// in-neighbours of v, so a BFS over InView computes distances *to* the
// root.
func (g *DiGraph) InView() Adjacency { return inAdj{g} }

// CSR exposes the raw dual-CSR arrays (out offsets/adjacency, in
// offsets/adjacency). All four slices alias internal storage and must
// not be modified; they exist so serializers can dump the structure
// without a per-element copy.
func (g *DiGraph) CSR() (outOff []int64, out []V, inOff []int64, in []V) {
	return g.outOff, g.out, g.inOff, g.in
}

// DiFromCSR adopts pre-built dual-CSR arrays as a digraph, checking the
// structural invariants the query kernels depend on (monotone in-range
// offsets, sorted in-range neighbour lists, no self-loops, equal arc
// counts) in O(n+m). Like graph.FromCSR it does not cross-check that
// every out-arc appears in the in-adjacency — callers adopting
// checksummed state (the durable store's zero-copy load path) already
// know the arrays are bit-exact, and the pairing check costs a binary
// search per arc. The slices are adopted by reference and must not be
// modified afterwards.
func DiFromCSR(outOff []int64, out []V, inOff []int64, in []V) (*DiGraph, error) {
	g := &DiGraph{outOff: outOff, out: out, inOff: inOff, in: in}
	if len(outOff) == 0 || len(outOff) != len(inOff) {
		return nil, fmt.Errorf("digraph: offset arrays disagree (%d out, %d in)", len(outOff), len(inOff))
	}
	if len(out) != len(in) {
		return nil, fmt.Errorf("digraph: arc arrays disagree (%d out, %d in)", len(out), len(in))
	}
	n := g.NumVertices()
	for _, m := range []struct {
		off []int64
		adj []V
	}{{outOff, out}, {inOff, in}} {
		if m.off[0] != 0 || m.off[n] != int64(len(m.adj)) {
			return nil, fmt.Errorf("digraph: offsets do not span the arc array")
		}
		for v := 0; v < n; v++ {
			if m.off[v] > m.off[v+1] {
				return nil, fmt.Errorf("digraph: offsets not monotone at %d", v)
			}
			ns := m.adj[m.off[v]:m.off[v+1]]
			for i, w := range ns {
				if w < 0 || int(w) >= n || w == V(v) {
					return nil, fmt.Errorf("digraph: bad neighbour %d of %d", w, v)
				}
				if i > 0 && ns[i-1] >= w {
					return nil, fmt.Errorf("digraph: neighbour list of %d unsorted", v)
				}
			}
		}
	}
	return g, nil
}

// Validate checks the dual-CSR invariants.
func (g *DiGraph) Validate() error {
	n := g.NumVertices()
	if len(g.inOff) != len(g.outOff) {
		return fmt.Errorf("digraph: offset arrays disagree")
	}
	if len(g.out) != len(g.in) {
		return fmt.Errorf("digraph: arc arrays disagree (%d out, %d in)", len(g.out), len(g.in))
	}
	for v := 0; v < n; v++ {
		for _, m := range []struct {
			off []int64
			adj []V
		}{{g.outOff, g.out}, {g.inOff, g.in}} {
			if m.off[v] > m.off[v+1] || m.off[v] < 0 || m.off[v+1] > int64(len(m.adj)) {
				return fmt.Errorf("digraph: bad offsets at %d", v)
			}
		}
		ns := g.Out(V(v))
		for i, w := range ns {
			if w < 0 || int(w) >= n || w == V(v) {
				return fmt.Errorf("digraph: bad out-neighbour %d of %d", w, v)
			}
			if i > 0 && ns[i-1] >= w {
				return fmt.Errorf("digraph: out list of %d unsorted", v)
			}
		}
	}
	// Every out-arc must appear as an in-arc.
	for u := V(0); u < V(n); u++ {
		for _, w := range g.Out(u) {
			ins := g.In(w)
			i := sort.Search(len(ins), func(i int) bool { return ins[i] >= u })
			if i >= len(ins) || ins[i] != u {
				return fmt.Errorf("digraph: arc %d->%d missing from in-adjacency", u, w)
			}
		}
	}
	return nil
}

// DiBuilder accumulates arcs and produces an immutable DiGraph.
// Duplicates and self-loops are removed.
type DiBuilder struct {
	n    int
	arcs []Arc
}

// NewDiBuilder creates a builder over n vertices.
func NewDiBuilder(n int) *DiBuilder {
	if n < 0 {
		panic("digraph: negative vertex count")
	}
	return &DiBuilder{n: n}
}

// AddArc records the arc u→w; self-loops are ignored.
func (b *DiBuilder) AddArc(u, w V) {
	if u != w {
		b.arcs = append(b.arcs, Arc{u, w})
	}
}

// Build produces the immutable dual-CSR digraph.
func (b *DiBuilder) Build() (*DiGraph, error) {
	for _, a := range b.arcs {
		if a.From < 0 || int(a.From) >= b.n || a.To < 0 || int(a.To) >= b.n {
			return nil, fmt.Errorf("digraph: arc %d->%d out of range [0,%d)", a.From, a.To, b.n)
		}
	}
	arcs := make([]Arc, len(b.arcs))
	copy(arcs, b.arcs)
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	dedup := arcs[:0]
	for i, a := range arcs {
		if i == 0 || a != arcs[i-1] {
			dedup = append(dedup, a)
		}
	}
	arcs = dedup

	g := &DiGraph{
		outOff: make([]int64, b.n+1),
		inOff:  make([]int64, b.n+1),
		out:    make([]V, len(arcs)),
		in:     make([]V, len(arcs)),
	}
	for _, a := range arcs {
		g.outOff[a.From+1]++
		g.inOff[a.To+1]++
	}
	for i := 1; i <= b.n; i++ {
		g.outOff[i] += g.outOff[i-1]
		g.inOff[i] += g.inOff[i-1]
	}
	outCur := make([]int64, b.n)
	inCur := make([]int64, b.n)
	copy(outCur, g.outOff[:b.n])
	copy(inCur, g.inOff[:b.n])
	for _, a := range arcs {
		g.out[outCur[a.From]] = a.To
		outCur[a.From]++
		g.in[inCur[a.To]] = a.From
		inCur[a.To]++
	}
	for v := 0; v < b.n; v++ {
		ins := g.in[g.inOff[v]:g.inOff[v+1]]
		sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	}
	return g, nil
}

// MustBuild is Build that panics on error.
func (b *DiBuilder) MustBuild() *DiGraph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// DiFromArcs builds a digraph from an arc list.
func DiFromArcs(n int, arcs []Arc) (*DiGraph, error) {
	b := NewDiBuilder(n)
	for _, a := range arcs {
		b.AddArc(a.From, a.To)
	}
	return b.Build()
}

// MustDiFromArcs is DiFromArcs that panics on error.
func MustDiFromArcs(n int, arcs []Arc) *DiGraph {
	g, err := DiFromArcs(n, arcs)
	if err != nil {
		panic(err)
	}
	return g
}

// AsDirected converts an undirected graph into a digraph with both arc
// directions, so directed algorithms can be sanity-checked against their
// undirected counterparts.
func AsDirected(g *Graph) *DiGraph {
	b := NewDiBuilder(g.NumVertices())
	for u := V(0); u < V(g.NumVertices()); u++ {
		for _, w := range g.Neighbors(u) {
			b.AddArc(u, w)
		}
	}
	return b.MustBuild()
}

// DirectedErdosRenyi samples m distinct directed arcs uniformly.
func DirectedErdosRenyi(n, m int, seed int64) *DiGraph {
	rng := rand.New(rand.NewSource(seed))
	b := NewDiBuilder(n)
	seen := make(map[Arc]struct{}, m)
	for len(seen) < m && len(seen) < n*(n-1) {
		a := Arc{V(rng.Intn(n)), V(rng.Intn(n))}
		if a.From == a.To {
			continue
		}
		if _, ok := seen[a]; ok {
			continue
		}
		seen[a] = struct{}{}
		b.AddArc(a.From, a.To)
	}
	return b.MustBuild()
}

// DirectedScaleFree grows a digraph by preferential attachment: each new
// vertex adds m out-arcs to targets weighted by in-degree and m in-arcs
// from sources weighted by out-degree, yielding hubby in/out degree
// distributions like web graphs.
func DirectedScaleFree(n, m int, seed int64) *DiGraph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewDiBuilder(n)
	var inRep, outRep []V
	seedSize := m + 1
	if seedSize > n {
		seedSize = n
	}
	for u := 0; u < seedSize; u++ {
		w := (u + 1) % seedSize
		if u != w {
			b.AddArc(V(u), V(w))
			outRep = append(outRep, V(u))
			inRep = append(inRep, V(w))
		}
	}
	for v := seedSize; v < n; v++ {
		for i := 0; i < m; i++ {
			t := inRep[rng.Intn(len(inRep))]
			if t != V(v) {
				b.AddArc(V(v), t)
				outRep = append(outRep, V(v))
				inRep = append(inRep, t)
			}
			s := outRep[rng.Intn(len(outRep))]
			if s != V(v) {
				b.AddArc(s, V(v))
				outRep = append(outRep, s)
				inRep = append(inRep, V(v))
			}
		}
	}
	return b.MustBuild()
}
