package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// InfDist marks an infinite distance (disconnected query pair).
const InfDist = int32(math.MaxInt32)

// SPG is a shortest path graph: the answer to a query SPG(u, v), holding
// exactly the union of all shortest paths between Source and Target
// (Definition 2.2 of the paper). Edges are accumulated by the query
// algorithms (possibly with duplicates) and canonicalised on demand.
//
// Dist is the shortest path distance, or InfDist when Source and Target
// are disconnected (in which case the SPG is empty). A query with
// Source == Target yields Dist 0 and an empty SPG.
type SPG struct {
	Source, Target V
	Dist           int32

	edges     []Edge
	canonical bool
}

// NewSPG creates an empty shortest path graph for the pair (u, v).
func NewSPG(u, v V) *SPG {
	return &SPG{Source: u, Target: v, Dist: InfDist, canonical: true}
}

// Reset re-initialises the SPG for a new pair (u, v), keeping the edge
// buffer's capacity. Query paths reuse one SPG across many queries to
// stay allocation-free once the buffer has grown to its working size.
//
//qbs:zeroalloc
func (s *SPG) Reset(u, v V) {
	s.Source, s.Target = u, v
	s.Dist = InfDist
	s.edges = s.edges[:0]
	s.canonical = true
}

// AddEdge records an edge of some shortest path. Duplicates are fine;
// they are removed on canonicalisation.
func (s *SPG) AddEdge(u, w V) {
	s.edges = append(s.edges, Edge{u, w}.Normalize())
	s.canonical = false
}

// Canonicalize sorts the edge set and removes duplicates. All read
// accessors call it implicitly.
func (s *SPG) Canonicalize() {
	if s.canonical {
		return
	}
	sort.Slice(s.edges, func(i, j int) bool {
		if s.edges[i].U != s.edges[j].U {
			return s.edges[i].U < s.edges[j].U
		}
		return s.edges[i].W < s.edges[j].W
	})
	s.edges = dedupEdges(s.edges)
	s.canonical = true
}

// Edges returns the canonical sorted edge set. The slice aliases internal
// storage and must not be modified.
func (s *SPG) Edges() []Edge {
	s.Canonicalize()
	return s.edges
}

// NumEdges returns the number of distinct edges.
func (s *SPG) NumEdges() int {
	s.Canonicalize()
	return len(s.edges)
}

// Vertices returns the sorted set of vertices covered by the edge set.
// For the trivial query u == v it returns just {u}.
func (s *SPG) Vertices() []V {
	s.Canonicalize()
	if len(s.edges) == 0 {
		if s.Source == s.Target {
			return []V{s.Source}
		}
		return nil
	}
	set := make(map[V]struct{}, len(s.edges))
	for _, e := range s.edges {
		set[e.U] = struct{}{}
		set[e.W] = struct{}{}
	}
	out := make([]V, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two SPGs describe the same answer: same pair
// (order-insensitive), same distance and same edge set.
func (s *SPG) Equal(t *SPG) bool {
	if s.Dist != t.Dist {
		return false
	}
	samePair := (s.Source == t.Source && s.Target == t.Target) ||
		(s.Source == t.Target && s.Target == t.Source)
	if !samePair {
		return false
	}
	a, b := s.Edges(), t.Edges()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CountShortestPaths counts the number of distinct shortest paths the
// SPG encodes, by dynamic programming over the DAG induced by distance
// levels from Source. distFromSource must give the distance of every SPG
// vertex from Source within the SPG's parent graph. Used by examples and
// tests (e.g. verifying Figure 1-style multiplicity).
func (s *SPG) CountShortestPaths(distFromSource func(V) int32) int64 {
	if s.Source == s.Target {
		return 1
	}
	if s.Dist == InfDist {
		return 0
	}
	adj := make(map[V][]V)
	for _, e := range s.Edges() {
		du, dw := distFromSource(e.U), distFromSource(e.W)
		switch {
		case du+1 == dw:
			adj[e.U] = append(adj[e.U], e.W)
		case dw+1 == du:
			adj[e.W] = append(adj[e.W], e.U)
		}
	}
	memo := make(map[V]int64)
	var count func(v V) int64
	count = func(v V) int64 {
		if v == s.Target {
			return 1
		}
		if c, ok := memo[v]; ok {
			return c
		}
		var c int64
		for _, w := range adj[v] {
			c += count(w)
		}
		memo[v] = c
		return c
	}
	return count(s.Source)
}

// Verify checks the defining property of a shortest path graph against
// its parent graph g: every edge lies on at least one shortest
// Source–Target path, and every shortest-path edge is present. distU and
// distV are full distance arrays from Source and Target in g. It returns
// a descriptive error on the first violation; tests use it as an
// independent check alongside oracle equality.
func (s *SPG) Verify(g *Graph, distU, distV []int32) error {
	d := s.Dist
	if s.Source == s.Target {
		if d != 0 || s.NumEdges() != 0 {
			return fmt.Errorf("spg: trivial pair must have dist 0 and no edges")
		}
		return nil
	}
	trueDist := distU[s.Target]
	if d != trueDist {
		return fmt.Errorf("spg: dist = %d, want %d", d, trueDist)
	}
	if d == InfDist {
		if s.NumEdges() != 0 {
			return fmt.Errorf("spg: disconnected pair must have empty SPG")
		}
		return nil
	}
	onShortest := func(e Edge) bool {
		if distU[e.U] == InfDist || distV[e.W] == InfDist {
			return false
		}
		return distU[e.U]+1+distV[e.W] == d || distU[e.W]+1+distV[e.U] == d
	}
	for _, e := range s.Edges() {
		if !g.HasEdge(e.U, e.W) {
			return fmt.Errorf("spg: edge {%d,%d} not in graph", e.U, e.W)
		}
		if !onShortest(e) {
			return fmt.Errorf("spg: edge {%d,%d} not on any shortest path", e.U, e.W)
		}
	}
	want := 0
	for u := V(0); u < V(g.NumVertices()); u++ {
		for _, w := range g.Neighbors(u) {
			if u < w && onShortest(Edge{u, w}) {
				want++
			}
		}
	}
	if got := s.NumEdges(); got != want {
		return fmt.Errorf("spg: has %d edges, want %d", got, want)
	}
	return nil
}

// String renders a compact human-readable description.
func (s *SPG) String() string {
	var b strings.Builder
	if s.Dist == InfDist {
		fmt.Fprintf(&b, "SPG(%d,%d) dist=inf {}", s.Source, s.Target)
		return b.String()
	}
	fmt.Fprintf(&b, "SPG(%d,%d) dist=%d {", s.Source, s.Target, s.Dist)
	for i, e := range s.Edges() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d-%d", e.U, e.W)
	}
	b.WriteString("}")
	return b.String()
}
