package graph

import (
	"testing"
	"testing/quick"
)

func TestDiBuilderDedupSelfLoops(t *testing.T) {
	b := NewDiBuilder(4)
	b.AddArc(0, 1)
	b.AddArc(0, 1) // duplicate
	b.AddArc(1, 0) // reverse is distinct in a digraph
	b.AddArc(2, 2) // self-loop dropped
	b.AddArc(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 3 {
		t.Fatalf("arcs = %d, want 3", g.NumArcs())
	}
	if !g.HasArc(0, 1) || !g.HasArc(1, 0) || g.HasArc(3, 2) {
		t.Fatal("arc membership wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDiBuilderOutOfRange(t *testing.T) {
	b := NewDiBuilder(2)
	b.AddArc(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
}

func TestDiDegrees(t *testing.T) {
	g := MustDiFromArcs(4, []Arc{{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 0}})
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Fatalf("degrees of 0: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if g.OutDegree(1) != 0 || g.InDegree(1) != 1 {
		t.Fatal("degrees of 1")
	}
}

func TestTotalDegreeOrder(t *testing.T) {
	g := MustDiFromArcs(4, []Arc{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3},
		{From: 1, To: 0}, {From: 2, To: 0},
	})
	order := g.TotalDegreeOrder()
	if order[0] != 0 {
		t.Fatalf("order = %v, hub must be first", order)
	}
}

func TestAsDirectedSymmetry(t *testing.T) {
	ug := Grid(3, 3)
	dg := AsDirected(ug)
	if dg.NumArcs() != ug.NumArcs() {
		t.Fatalf("arcs = %d, want %d", dg.NumArcs(), ug.NumArcs())
	}
	for u := V(0); u < 9; u++ {
		for _, w := range ug.Neighbors(u) {
			if !dg.HasArc(u, w) || !dg.HasArc(w, u) {
				t.Fatalf("missing symmetric arcs %d<->%d", u, w)
			}
		}
	}
	if err := dg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedGeneratorsDeterministicAndValid(t *testing.T) {
	a := DirectedErdosRenyi(200, 800, 3)
	b := DirectedErdosRenyi(200, 800, 3)
	if a.NumArcs() != b.NumArcs() {
		t.Fatal("DER nondeterministic")
	}
	aa, bb := a.Arcs(), b.Arcs()
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatal("DER arcs differ")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	sf := DirectedScaleFree(500, 3, 7)
	if err := sf.Validate(); err != nil {
		t.Fatal(err)
	}
	sf2 := DirectedScaleFree(500, 3, 7)
	if sf.NumArcs() != sf2.NumArcs() {
		t.Fatal("DSF nondeterministic")
	}
	// Scale-free: hubs must emerge.
	maxIn := 0
	for v := V(0); v < 500; v++ {
		if d := sf.InDegree(v); d > maxIn {
			maxIn = d
		}
	}
	if maxIn < 15 {
		t.Fatalf("scale-free digraph lacks in-hubs: max in-degree %d", maxIn)
	}
}

func TestDiBuilderQuickProperty(t *testing.T) {
	check := func(data []byte) bool {
		const n = 20
		b := NewDiBuilder(n)
		want := map[Arc]struct{}{}
		for i := 0; i+1 < len(data) && i < 400; i += 2 {
			u, w := V(data[i]%n), V(data[i+1]%n)
			b.AddArc(u, w)
			if u != w {
				want[Arc{u, w}] = struct{}{}
			}
		}
		g, err := b.Build()
		if err != nil || g.Validate() != nil {
			return false
		}
		if g.NumArcs() != len(want) {
			return false
		}
		for _, a := range g.Arcs() {
			if _, ok := want[a]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiSPGEqualOrdered(t *testing.T) {
	a := NewDiSPG(0, 3)
	a.Dist = 2
	a.AddArc(0, 1)
	a.AddArc(1, 3)
	a.AddArc(1, 3) // dup
	b := NewDiSPG(0, 3)
	b.Dist = 2
	b.AddArc(1, 3)
	b.AddArc(0, 1)
	if !a.Equal(b) {
		t.Fatal("same arc sets must be equal")
	}
	c := NewDiSPG(3, 0) // reversed pair is NOT equal for directed
	c.Dist = 2
	c.AddArc(0, 1)
	c.AddArc(1, 3)
	if a.Equal(c) {
		t.Fatal("directed SPGs with swapped endpoints must differ")
	}
	if a.NumArcs() != 2 {
		t.Fatalf("NumArcs = %d", a.NumArcs())
	}
	vs := a.Vertices()
	if len(vs) != 3 || vs[0] != 0 || vs[2] != 3 {
		t.Fatalf("vertices = %v", vs)
	}
}
