// Package graph provides the static graph substrate used throughout the
// Query-by-Sketch (QbS) reproduction: a compressed sparse row (CSR)
// representation of an unweighted, undirected graph, an incremental
// builder, text and binary I/O, synthetic network generators, and basic
// structural statistics.
//
// All algorithms in this repository (the QbS index, the PPL/ParentPPL
// baselines and the search baselines) operate on the immutable Graph type
// defined here. Vertices are dense int32 identifiers in [0, NumVertices).
package graph

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
)

// V is the vertex identifier type. Vertices are dense integers in
// [0, NumVertices). int32 keeps adjacency arrays compact, which matters
// for the cache behaviour of BFS-heavy workloads.
type V = int32

// Edge is an undirected edge between two vertices. Normalised edges have
// U <= W.
type Edge struct {
	U, W V
}

// Normalize returns the edge with endpoints ordered so that U <= W.
func (e Edge) Normalize() Edge {
	if e.U > e.W {
		return Edge{e.W, e.U}
	}
	return e
}

// Graph is an immutable unweighted, undirected graph in CSR form.
// Each undirected edge {u, w} is stored as two arcs (u→w and w→u).
//
// The zero value is an empty graph. Construct graphs with a Builder,
// one of the generators, or a reader.
type Graph struct {
	offsets []int64 // len = n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []V     // concatenated, per-vertex sorted neighbour lists
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns |E|, the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// NumArcs returns the number of stored arcs (2·|E| for undirected graphs).
func (g *Graph) NumArcs() int { return len(g.adj) }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v V) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbour list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v V) []V {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge {u, w} exists. It binary
// searches the smaller of the two adjacency lists.
func (g *Graph) HasEdge(u, w V) bool {
	if u == w {
		return false
	}
	if g.Degree(u) > g.Degree(w) {
		u, w = w, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= w })
	return i < len(ns) && ns[i] == w
}

// Edges returns all undirected edges, normalised (U <= W) and sorted.
// It allocates a fresh slice of length NumEdges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := V(0); u < V(g.NumVertices()); u++ {
		for _, w := range g.Neighbors(u) {
			if u < w {
				out = append(out, Edge{u, w})
			}
		}
	}
	return out
}

// Degrees materialises every vertex degree as a flat int32 array — the
// form the traversal engines consume for their direction heuristic
// (avoiding an interface Degree call per touched vertex).
func (g *Graph) Degrees() []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(V(v)))
	}
	return deg
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(V(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree (2|E| / |V|), or 0 for an
// empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(g.NumVertices())
}

// SizeBytes reports the in-memory footprint of the adjacency structure
// using the paper's accounting for Table 1: each arc appears in an
// adjacency list and is charged 8 bytes.
func (g *Graph) SizeBytes() int64 { return int64(g.NumArcs()) * 8 }

// VerticesByDegree returns all vertices sorted by descending degree,
// breaking ties by ascending vertex id (making the order deterministic).
// Vertices are packed into (degree, flipped-id) keys and sorted with the
// specialised ordered-slice sort; landmark selection runs this on every
// build, so it is kept off the comparator-sort slow path.
func (g *Graph) VerticesByDegree() []V {
	n := g.NumVertices()
	keys := make([]uint64, n)
	for v := 0; v < n; v++ {
		keys[v] = uint64(g.Degree(V(v)))<<32 | uint64(uint32(math.MaxInt32-v))
	}
	slices.Sort(keys)
	vs := make([]V, n)
	for i, k := range keys {
		vs[n-1-i] = V(math.MaxInt32 - int32(uint32(k)))
	}
	return vs
}

// TopDegreeVertices returns the k highest-degree vertices (deterministic
// tie-break by id). If k exceeds |V|, all vertices are returned. Small k
// (landmark selection's k ≪ |V|) uses an O(|V| log k) min-heap
// selection instead of sorting every vertex.
func (g *Graph) TopDegreeVertices(k int) []V {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	if k*16 >= n {
		return g.VerticesByDegree()[:k]
	}
	// Min-heap of packed (degree, flipped-id) keys: the root is the
	// current worst of the best k, ejected when a better key arrives.
	// Keys sort exactly like VerticesByDegree's comparator.
	heap := make([]uint64, 0, k)
	key := func(v int) uint64 {
		return uint64(g.Degree(V(v)))<<32 | uint64(uint32(math.MaxInt32-v))
	}
	siftDown := func(i int) {
		for {
			c := 2*i + 1
			if c >= len(heap) {
				return
			}
			if c+1 < len(heap) && heap[c+1] < heap[c] {
				c++
			}
			if heap[i] <= heap[c] {
				return
			}
			heap[i], heap[c] = heap[c], heap[i]
			i = c
		}
	}
	for v := 0; v < n; v++ {
		kv := key(v)
		if len(heap) < k {
			heap = append(heap, kv)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if heap[p] <= heap[i] {
					break
				}
				heap[p], heap[i] = heap[i], heap[p]
				i = p
			}
		} else if kv > heap[0] {
			heap[0] = kv
			siftDown(0)
		}
	}
	slices.Sort(heap)
	out := make([]V, k)
	for i, kv := range heap {
		out[k-1-i] = V(math.MaxInt32 - int32(uint32(kv)))
	}
	return out
}

// Validate checks internal invariants of the CSR structure: offsets are
// monotone, neighbour lists are sorted, free of self-loops and duplicates,
// and every arc has a reverse arc. It is used by tests and the binary
// reader.
func (g *Graph) Validate() error {
	if err := g.ValidateStructure(); err != nil {
		return err
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(V(v)) {
			if !g.HasEdge(w, V(v)) {
				return fmt.Errorf("graph: missing reverse arc %d->%d", w, v)
			}
		}
	}
	return nil
}

// ValidateStructure is the O(n+m) subset of Validate: monotone in-range
// offsets and sorted, in-range, self-loop-free neighbour lists — every
// invariant array indexing and binary searches rely on, without the
// per-arc reverse-pairing search. FromCSR uses it to keep checksummed
// snapshot loads linear; on large graphs the scan fans out across
// GOMAXPROCS workers (each vertex's checks are independent, and a
// vertex's own offsets are verified before its adjacency is sliced).
func (g *Graph) ValidateStructure() error {
	n := g.NumVertices()
	if len(g.offsets) == 0 {
		if len(g.adj) != 0 {
			return fmt.Errorf("graph: adjacency without offsets")
		}
		return nil
	}
	if g.offsets[0] != 0 || g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offset endpoints invalid")
	}
	checkRange := func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			if g.offsets[v] > g.offsets[v+1] {
				return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
			}
			if g.offsets[v] < 0 || g.offsets[v+1] > int64(len(g.adj)) {
				return fmt.Errorf("graph: offsets out of range at vertex %d", v)
			}
			ns := g.adj[g.offsets[v]:g.offsets[v+1]]
			for i, w := range ns {
				if w < 0 || int(w) >= n {
					return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", v, w)
				}
				if w == V(v) {
					return fmt.Errorf("graph: self-loop at vertex %d", v)
				}
				if i > 0 && ns[i-1] >= w {
					return fmt.Errorf("graph: unsorted or duplicate neighbour %d of vertex %d", w, v)
				}
			}
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if n < 1<<15 || workers == 1 {
		return checkRange(0, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = checkRange(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges, reversed duplicates and self-loops are removed. Directed inputs
// are symmetrised, matching the paper's treatment of all datasets as
// undirected (the |E_un| column of Table 1).
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder creates a builder for a graph with n vertices. Vertices are
// implicit: every id in [0, n) is a vertex even if isolated.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, w}. Self-loops are ignored.
// Endpoints outside [0, n) cause Build to fail.
func (b *Builder) AddEdge(u, w V) {
	if u == w {
		return
	}
	b.edges = append(b.edges, Edge{u, w}.Normalize())
}

// NumPendingEdges returns the number of edges recorded so far, before
// deduplication.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph, deduplicating edges. The
// builder remains usable afterwards (Build may be called again after
// further AddEdge calls).
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		if e.U < 0 || int(e.W) >= b.n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", e.U, e.W, b.n)
		}
	}
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].W < edges[j].W
	})
	edges = dedupEdges(edges)

	deg := make([]int64, b.n+1)
	for _, e := range edges {
		deg[e.U+1]++
		deg[e.W+1]++
	}
	offsets := make([]int64, b.n+1)
	for i := 1; i <= b.n; i++ {
		offsets[i] = offsets[i-1] + deg[i]
	}
	adj := make([]V, offsets[b.n])
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range edges {
		adj[cursor[e.U]] = e.W
		cursor[e.U]++
		adj[cursor[e.W]] = e.U
		cursor[e.W]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	// Input edges were sorted by (U,W); per-vertex lists of the U side are
	// emitted in order, but the W side may interleave, so sort each list.
	for v := 0; v < b.n; v++ {
		ns := adj[offsets[v]:offsets[v+1]]
		if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error; intended for tests and
// generators whose inputs are in-range by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func dedupEdges(sorted []Edge) []Edge {
	out := sorted[:0]
	for i, e := range sorted {
		if i == 0 || e != sorted[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.W)
	}
	return b.Build()
}

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// InducedSubgraph returns the subgraph induced by keep (vertices with
// keep[v] true), preserving original vertex ids (vertices not kept become
// isolated). This is the explicit form of the paper's sparsified graph
// G[V\R]; the QbS query path uses an implicit representation instead, but
// the explicit form is useful for tests and the ablation benchmarks.
func (g *Graph) InducedSubgraph(keep func(V) bool) *Graph {
	b := NewBuilder(g.NumVertices())
	for u := V(0); u < V(g.NumVertices()); u++ {
		if !keep(u) {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if u < w && keep(w) {
				b.AddEdge(u, w)
			}
		}
	}
	return b.MustBuild()
}

// ConnectedComponents labels each vertex with a component id in
// [0, count) and returns the labels and the component count. Component
// ids are assigned in order of the smallest vertex they contain.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]V, 0, 1024)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[s] = id
		queue = append(queue[:0], V(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				if labels[w] < 0 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the subgraph restricted to the largest
// connected component with vertices re-numbered densely, together with
// the mapping from new ids to original ids. Generators use it to deliver
// connected graphs, mirroring the paper's assumption of connectivity.
func (g *Graph) LargestComponent() (*Graph, []V) {
	labels, count := g.ConnectedComponents()
	if count <= 1 {
		ids := make([]V, g.NumVertices())
		for i := range ids {
			ids[i] = V(i)
		}
		return g, ids
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	remap := make([]V, g.NumVertices())
	orig := make([]V, 0, sizes[best])
	for v := range remap {
		if labels[v] == int32(best) {
			remap[v] = V(len(orig))
			orig = append(orig, V(v))
		} else {
			remap[v] = -1
		}
	}
	b := NewBuilder(sizes[best])
	for _, u := range orig {
		for _, w := range g.Neighbors(u) {
			if remap[w] >= 0 && remap[u] < remap[w] {
				b.AddEdge(remap[u], remap[w])
			}
		}
	}
	return b.MustBuild(), orig
}

// Stats summarises a graph for reporting (Table 1 columns).
type Stats struct {
	NumVertices int
	NumEdges    int
	MaxDegree   int
	AvgDegree   float64
	SizeBytes   int64
}

// ComputeStats gathers the structural statistics of g.
func ComputeStats(g *Graph) Stats {
	return Stats{
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		MaxDegree:   g.MaxDegree(),
		AvgDegree:   g.AvgDegree(),
		SizeBytes:   g.SizeBytes(),
	}
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// up to the maximum degree.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.Degree(V(v))]++
	}
	return h
}

// GiniDegree returns the Gini coefficient of the degree distribution, a
// scale-free measure of degree skew in [0, 1). Dataset analogs use it to
// verify hub-dominated vs flat-degree structure (the distinction the
// paper draws between e.g. Twitter and Friendster in §6.3).
func GiniDegree(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	degs := make([]float64, n)
	for v := 0; v < n; v++ {
		degs[v] = float64(g.Degree(V(v)))
	}
	sort.Float64s(degs)
	var cum, total float64
	for i, d := range degs {
		cum += d * float64(i+1)
		total += d
	}
	if total == 0 {
		return 0
	}
	gini := (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
	return math.Max(0, gini)
}
