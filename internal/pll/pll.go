// Package pll implements classic Pruned Landmark Labelling (Akiba,
// Iwata, Yoshida; SIGMOD 2013) — the state-of-the-art exact *distance*
// labelling the paper's PPL baseline generalises (§3.2) and the
// reference point for QbS's design choices: PLL covers one shortest path
// per pair (enough for distances), while shortest-path-graph queries
// need every path covered.
//
// Construction runs one pruned BFS per vertex in descending-degree
// order; a vertex u is pruned from root v_k's BFS when the labels built
// so far already witness d(v_k, u) ≤ depth(u) — in that case neither a
// label is added nor the BFS expanded. This prunes strictly more than
// the path-preserving variant in package ppl, which is precisely the
// gap between distance cover and path cover the paper identifies.
package pll

import (
	"errors"
	"time"

	"qbs/internal/graph"
)

// ErrTimeBudget reports that construction exceeded Options.MaxTime.
var ErrTimeBudget = errors.New("pll: construction exceeded time budget")

// Options configures construction.
type Options struct {
	// MaxTime aborts construction when exceeded (0 = unlimited).
	MaxTime time.Duration
}

type entry struct {
	rank int32
	dist int32
}

// Index is a PLL distance labelling.
type Index struct {
	g      *graph.Graph
	order  []graph.V
	rankOf []int32
	labels [][]entry

	buildTime  time.Duration
	numEntries int64
}

// BuildTime returns the construction wall time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// NumEntries returns the total number of label entries.
func (ix *Index) NumEntries() int64 { return ix.numEntries }

// SizeBytes accounts 32 bits per landmark id plus 8 bits per distance.
func (ix *Index) SizeBytes() int64 { return ix.numEntries * 5 }

// Build constructs the labelling.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	n := g.NumVertices()
	ix := &Index{
		g:      g,
		order:  g.VerticesByDegree(),
		rankOf: make([]int32, n),
		labels: make([][]entry, n),
	}
	for rank, v := range ix.order {
		ix.rankOf[v] = int32(rank)
	}
	start := time.Now()
	deadline := time.Time{}
	if opts.MaxTime > 0 {
		deadline = start.Add(opts.MaxTime)
	}

	depth := make([]int32, n)
	rootDist := make([]int32, n)
	for i := range depth {
		depth[i] = -1
		rootDist[i] = -1
	}
	var queue, visited []graph.V
	var loaded []int32

	for rank := 0; rank < n; rank++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, ErrTimeBudget
		}
		root := ix.order[rank]
		for _, e := range ix.labels[root] {
			rootDist[e.rank] = e.dist
			loaded = append(loaded, e.rank)
		}
		queue = append(queue[:0], root)
		visited = append(visited[:0], root)
		depth[root] = 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := depth[u]
			// Prune when labels already witness d(root, u) ≤ depth.
			pruned := false
			for _, e := range ix.labels[u] {
				if rd := rootDist[e.rank]; rd >= 0 && rd+e.dist <= du {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			ix.labels[u] = append(ix.labels[u], entry{rank: int32(rank), dist: du})
			ix.numEntries++
			for _, w := range ix.g.Neighbors(u) {
				if depth[w] < 0 {
					depth[w] = du + 1
					visited = append(visited, w)
					queue = append(queue, w)
				}
			}
		}
		for _, v := range visited {
			depth[v] = -1
		}
		for _, r := range loaded {
			rootDist[r] = -1
		}
		loaded = loaded[:0]
	}
	ix.buildTime = time.Since(start)
	return ix, nil
}

// MustBuild is Build that panics on error.
func MustBuild(g *graph.Graph, opts Options) *Index {
	ix, err := Build(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}

// Distance returns d_G(u, v) (graph.InfDist when disconnected) by a
// merge join over the rank-sorted labels.
func (ix *Index) Distance(u, v graph.V) int32 {
	if u == v {
		return 0
	}
	best := graph.InfDist
	la, lb := ix.labels[u], ix.labels[v]
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i].rank < lb[j].rank:
			i++
		case la[i].rank > lb[j].rank:
			j++
		default:
			if d := la[i].dist + lb[j].dist; d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// LabelSize returns the number of entries of one vertex (diagnostics).
func (ix *Index) LabelSize(v graph.V) int { return len(ix.labels[v]) }
