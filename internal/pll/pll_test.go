package pll

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"qbs/internal/bfs"
	"qbs/internal/graph"
	"qbs/internal/ppl"
)

func connected(g *graph.Graph) *graph.Graph {
	lc, _ := g.LargestComponent()
	return lc
}

func TestDistanceMatchesBFS(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":  graph.Path(12),
		"cycle": graph.Cycle(11),
		"star":  graph.Star(20),
		"grid":  graph.Grid(6, 6),
		"er":    connected(graph.ErdosRenyi(200, 450, 1)),
		"ba":    connected(graph.BarabasiAlbert(200, 3, 2)),
		"disconnected": graph.MustFromEdges(6, []graph.Edge{
			{U: 0, W: 1}, {U: 2, W: 3}, {U: 4, W: 5},
		}),
	}
	for name, g := range graphs {
		ix := MustBuild(g, Options{})
		rng := rand.New(rand.NewSource(3))
		n := g.NumVertices()
		for i := 0; i < 200; i++ {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			want := bfs.Distance(g, u, v)
			if want == bfs.Infinity {
				want = graph.InfDist
			}
			if got := ix.Distance(u, v); got != want {
				t.Fatalf("%s: d(%d,%d)=%d want %d", name, u, v, got, want)
			}
		}
	}
}

func TestPLLPrunesMoreThanPPL(t *testing.T) {
	// Distance cover needs one witness per pair; path cover needs one
	// per path. PLL labels must therefore be no larger than PPL's.
	for seed := int64(0); seed < 4; seed++ {
		g := connected(graph.BarabasiAlbert(250, 3, seed))
		a := MustBuild(g, Options{})
		b := ppl.MustBuild(g, ppl.Options{})
		if a.NumEntries() > b.NumEntries() {
			t.Fatalf("seed %d: PLL %d entries > PPL %d", seed, a.NumEntries(), b.NumEntries())
		}
	}
}

func TestHubLabelsSmall(t *testing.T) {
	// On a star, PLL needs O(1) entries per vertex: the centre covers
	// everything.
	g := graph.Star(100)
	ix := MustBuild(g, Options{})
	for v := graph.V(0); v < 100; v++ {
		if ix.LabelSize(v) > 2 {
			t.Fatalf("vertex %d has %d entries", v, ix.LabelSize(v))
		}
	}
	if ix.NumEntries() >= 300 {
		t.Fatalf("star labelling too large: %d", ix.NumEntries())
	}
}

func TestTimeBudget(t *testing.T) {
	g := connected(graph.ErdosRenyi(500, 1500, 9))
	if _, err := Build(g, Options{MaxTime: time.Nanosecond}); err != ErrTimeBudget {
		t.Fatalf("err = %v", err)
	}
}

func TestSizeAccounting(t *testing.T) {
	g := graph.Cycle(10)
	ix := MustBuild(g, Options{})
	if ix.SizeBytes() != ix.NumEntries()*5 {
		t.Fatal("size accounting")
	}
	if ix.BuildTime() <= 0 {
		t.Fatal("build time not recorded")
	}
}

func TestQuickDistanceProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8) bool {
		n := 5 + int(nRaw)%70
		m := int(mRaw) % (3 * n)
		g := graph.ErdosRenyi(n, m, seed)
		ix := MustBuild(g, Options{})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			want := bfs.Distance(g, u, v)
			if want == bfs.Infinity {
				want = graph.InfDist
			}
			if ix.Distance(u, v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
