package core

import (
	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// QueryBatchInto answers n queries concurrently into out (len n) with
// up to parallelism workers (0 = GOMAXPROCS). pairAt yields the i-th
// query pair; acquire/release manage per-worker searchers (typically a
// pool). It is the shared engine behind the static and dynamic
// QueryBatch entry points; chunking, worker capping and panic isolation
// live in traverse.QueryBatch, shared with the directed dcore copy.
func QueryBatchInto(out []*graph.SPG, parallelism int, pairAt func(int) (graph.V, graph.V), acquire func() *Searcher, release func(*Searcher)) {
	traverse.QueryBatch(out, parallelism, pairAt, acquire, release,
		func(sr *Searcher, dst *graph.SPG, u, v graph.V) { sr.QueryInto(dst, u, v) })
}
