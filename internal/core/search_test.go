package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

// testGraphs returns a diverse set of fixtures: structured graphs and
// seeded random graphs across the generator families.
func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	gs := map[string]*graph.Graph{
		"path10":      graph.Path(10),
		"cycle9":      graph.Cycle(9),
		"star20":      graph.Star(20),
		"complete8":   graph.Complete(8),
		"grid6x7":     graph.Grid(6, 7),
		"paperFig4":   paperFigure4Graph(),
		"paperFig3":   paperFigure3Graph(),
		"er200":       connected(graph.ErdosRenyi(200, 400, 1)),
		"er300sparse": connected(graph.ErdosRenyi(300, 360, 2)),
		"ba200":       connected(graph.BarabasiAlbert(200, 3, 3)),
		"ba400dense":  connected(graph.BarabasiAlbert(400, 8, 4)),
		"ws150":       connected(graph.WattsStrogatz(150, 6, 0.2, 5)),
		"twoCliques":  twoCliquesBridge(),
		"disconnected": graph.MustFromEdges(10, []graph.Edge{
			{U: 0, W: 1}, {U: 1, W: 2}, {U: 3, W: 4}, {U: 4, W: 5}, {U: 5, W: 3},
			{U: 6, W: 7}, {U: 7, W: 8}, {U: 8, W: 9},
		}),
	}
	return gs
}

func connected(g *graph.Graph) *graph.Graph {
	lc, _ := g.LargestComponent()
	return lc
}

// paperFigure4Graph reproduces the 14-vertex running example of Figures
// 2/4/5/6 (1-indexed in the paper; 0-indexed here as paper id − 1).
func paperFigure4Graph() *graph.Graph {
	edges := [][2]int{
		{1, 3}, {1, 2}, {2, 3}, // 2-4, 2-3, 3-4 in paper ids
		{0, 3}, {0, 4}, {0, 5}, {0, 13},
		{3, 5}, {4, 5},
		{1, 6}, {6, 7}, {1, 8},
		{7, 8}, {8, 9}, {7, 10}, {9, 10}, {9, 11},
		{2, 11}, {2, 12}, {12, 13}, {10, 11}, {4, 13},
		{1, 13}, {6, 8},
	}
	b := graph.NewBuilder(14)
	for _, e := range edges {
		b.AddEdge(graph.V(e[0]), graph.V(e[1]))
	}
	return b.MustBuild()
}

// paperFigure3Graph is the 7-vertex example of Figure 3 (paper ids 1..7
// mapped to 0..6).
func paperFigure3Graph() *graph.Graph {
	edges := [][2]int{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {1, 4}, {1, 5}, {4, 5}, {4, 6},
	}
	b := graph.NewBuilder(7)
	for _, e := range edges {
		b.AddEdge(graph.V(e[0]), graph.V(e[1]))
	}
	return b.MustBuild()
}

func twoCliquesBridge() *graph.Graph {
	b := graph.NewBuilder(12)
	for u := 0; u < 5; u++ {
		for w := u + 1; w < 5; w++ {
			b.AddEdge(graph.V(u), graph.V(w))
		}
	}
	for u := 6; u < 12; u++ {
		for w := u + 1; w < 12; w++ {
			b.AddEdge(graph.V(u), graph.V(w))
		}
	}
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	return b.MustBuild()
}

func samplePairs(g *graph.Graph, count int, seed int64) [][2]graph.V {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	pairs := make([][2]graph.V, 0, count)
	for i := 0; i < count; i++ {
		pairs = append(pairs, [2]graph.V{graph.V(rng.Intn(n)), graph.V(rng.Intn(n))})
	}
	return pairs
}

// checkQueries verifies SPG answers from the searcher against both the
// oracle and the independent SPG.Verify predicate.
func checkQueries(t *testing.T, g *graph.Graph, ix *Index, pairs [][2]graph.V) {
	t.Helper()
	sr := NewSearcher(ix)
	for _, p := range pairs {
		u, v := p[0], p[1]
		got, st := sr.QueryWithStats(u, v)
		want := bfs.OracleSPG(g, u, v)
		if !got.Equal(want) {
			t.Fatalf("SPG(%d,%d): got %v\nwant %v\nstats %+v", u, v, got, want, st)
		}
		distU := bfs.Distances(g, u)
		distV := bfs.Distances(g, v)
		toInf := func(d []int32) []int32 { return d }
		if err := got.Verify(g, toInf(distU), toInf(distV)); err != nil {
			t.Fatalf("SPG(%d,%d): verify: %v", u, v, err)
		}
		if st.DTop < st.Dist {
			t.Fatalf("SPG(%d,%d): d⊤=%d < dist=%d violates Corollary 4.6", u, v, st.DTop, st.Dist)
		}
	}
}

func TestQueryMatchesOracle(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, k := range []int{1, 2, 4, 8, 20} {
			if k > g.NumVertices() {
				continue
			}
			t.Run(fmt.Sprintf("%s/R=%d", name, k), func(t *testing.T) {
				ix, err := Build(g, Options{NumLandmarks: k, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				var pairs [][2]graph.V
				if g.NumVertices() <= 20 {
					for u := 0; u < g.NumVertices(); u++ {
						for v := u; v < g.NumVertices(); v++ {
							pairs = append(pairs, [2]graph.V{graph.V(u), graph.V(v)})
						}
					}
				} else {
					pairs = samplePairs(g, 120, int64(k)*7+1)
				}
				checkQueries(t, g, ix, pairs)
			})
		}
	}
}

func TestQueryLandmarkEndpoints(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			k := 5
			if k > g.NumVertices() {
				k = g.NumVertices()
			}
			ix := MustBuild(g, Options{NumLandmarks: k})
			var pairs [][2]graph.V
			rng := rand.New(rand.NewSource(11))
			for _, r := range ix.Landmarks() {
				// landmark ↔ random vertex, and landmark ↔ landmark
				pairs = append(pairs, [2]graph.V{r, graph.V(rng.Intn(g.NumVertices()))})
				pairs = append(pairs, [2]graph.V{graph.V(rng.Intn(g.NumVertices())), r})
				pairs = append(pairs, [2]graph.V{r, ix.Landmarks()[rng.Intn(k)]})
				pairs = append(pairs, [2]graph.V{r, r})
			}
			checkQueries(t, g, ix, pairs)
		})
	}
}

func TestQueryAllLandmarkCounts(t *testing.T) {
	// Sweep |R| from 0 effectively 1 up to |V| on a small graph:
	// every vertex a landmark is a degenerate but valid configuration.
	g := paperFigure4Graph()
	for k := 1; k <= g.NumVertices(); k++ {
		ix := MustBuild(g, Options{NumLandmarks: k})
		var pairs [][2]graph.V
		for u := 0; u < g.NumVertices(); u++ {
			for v := u; v < g.NumVertices(); v++ {
				pairs = append(pairs, [2]graph.V{graph.V(u), graph.V(v)})
			}
		}
		checkQueries(t, g, ix, pairs)
	}
}

func TestLabellingMatchesDefinition(t *testing.T) {
	// Definition 4.2: (r, δ) ∈ L(u) iff δ = d_G(u, r) and some shortest
	// u–r path avoids all other landmarks — equivalently, the distance
	// from r to u in G[V \ (R \ {r})] equals d_G(u, r).
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			k := 4
			if k > g.NumVertices() {
				k = g.NumVertices()
			}
			ix := MustBuild(g, Options{NumLandmarks: k})
			for i, r := range ix.Landmarks() {
				full := bfs.Distances(g, r)
				avoid := avoidanceDistances(g, ix, r)
				for v := 0; v < g.NumVertices(); v++ {
					d, ok := ix.LabelEntry(graph.V(v), i)
					if ix.IsLandmark(graph.V(v)) {
						if ok {
							t.Fatalf("landmark %d must not carry labels, has (%d,%d)", v, i, d)
						}
						continue
					}
					shouldHave := full[v] != bfs.Infinity && avoid[v] == full[v]
					if ok != shouldHave {
						t.Fatalf("vertex %d landmark %d: label presence = %v, want %v (d=%d avoid=%d)",
							v, r, ok, shouldHave, full[v], avoid[v])
					}
					if ok && d != full[v] {
						t.Fatalf("vertex %d landmark %d: label dist %d, want %d", v, r, d, full[v])
					}
				}
			}
		})
	}
}

// avoidanceDistances computes distances from r in the graph with all
// other landmarks removed.
func avoidanceDistances(g *graph.Graph, ix *Index, r graph.V) []int32 {
	sub := g.InducedSubgraph(func(v graph.V) bool {
		return v == r || !ix.IsLandmark(v)
	})
	return bfs.Distances(sub, r)
}

func TestMetaGraphMatchesDefinition(t *testing.T) {
	// Definition 4.1: (r, r') ∈ E_R iff some shortest r–r' path avoids
	// other landmarks; σ(r, r') = d_G(r, r').
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			k := 5
			if k > g.NumVertices() {
				k = g.NumVertices()
			}
			ix := MustBuild(g, Options{NumLandmarks: k})
			lands := ix.Landmarks()
			for i := 0; i < k; i++ {
				full := bfs.Distances(g, lands[i])
				sub := g.InducedSubgraph(func(v graph.V) bool {
					return v == lands[i] || !ix.IsLandmark(v)
				})
				for j := 0; j < k; j++ {
					if i == j {
						continue
					}
					// allow r' itself in the avoidance graph
					sub2 := g.InducedSubgraph(func(v graph.V) bool {
						return v == lands[i] || v == lands[j] || !ix.IsLandmark(v)
					})
					_ = sub
					avoid := bfs.Distances(sub2, lands[i])
					w, exists := ix.MetaEdgeWeight(i, j)
					shouldExist := full[lands[j]] != bfs.Infinity && avoid[lands[j]] == full[lands[j]]
					if exists != shouldExist {
						t.Fatalf("meta edge (%d,%d): exists=%v want %v", lands[i], lands[j], exists, shouldExist)
					}
					if exists && w != full[lands[j]] {
						t.Fatalf("meta edge (%d,%d): σ=%d want %d", lands[i], lands[j], w, full[lands[j]])
					}
				}
			}
		})
	}
}

func TestMetaDistEqualsGraphDist(t *testing.T) {
	// d_M(r, r') = d_G(r, r') for all landmark pairs: shortest paths
	// between landmarks decompose into meta-edges.
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			k := 6
			if k > g.NumVertices() {
				k = g.NumVertices()
			}
			ix := MustBuild(g, Options{NumLandmarks: k})
			lands := ix.Landmarks()
			for i := 0; i < k; i++ {
				dist := bfs.Distances(g, lands[i])
				for j := 0; j < k; j++ {
					want := dist[lands[j]]
					got := ix.MetaDist(i, j)
					if want == bfs.Infinity {
						if got != graph.InfDist {
							t.Fatalf("d_M(%d,%d)=%d want inf", lands[i], lands[j], got)
						}
						continue
					}
					if got != want {
						t.Fatalf("d_M(%d,%d)=%d want %d", lands[i], lands[j], got, want)
					}
				}
			}
		})
	}
}

func TestSketchUpperBoundTight(t *testing.T) {
	// d⊤ equals the length of the shortest u–v path through at least one
	// landmark: min over r of d(u,r) + d(r,v).
	g := connected(graph.ErdosRenyi(150, 300, 9))
	ix := MustBuild(g, Options{NumLandmarks: 8})
	landDist := make([][]int32, ix.NumLandmarks())
	for i, r := range ix.Landmarks() {
		landDist[i] = bfs.Distances(g, r)
	}
	for _, p := range samplePairs(g, 200, 17) {
		u, v := p[0], p[1]
		if u == v {
			continue
		}
		want := graph.InfDist
		for i := range landDist {
			du, dv := landDist[i][u], landDist[i][v]
			if du != bfs.Infinity && dv != bfs.Infinity && du+dv < want {
				want = du + dv
			}
		}
		sk := ix.Sketch(u, v)
		if sk.DTop != want {
			t.Fatalf("d⊤(%d,%d)=%d want %d", u, v, sk.DTop, want)
		}
	}
}

func TestDeterministicParallelLabelling(t *testing.T) {
	// Lemma 5.2: the labelling scheme is unique for a landmark set, so
	// sequential and parallel construction agree bit-for-bit.
	g := connected(graph.BarabasiAlbert(500, 4, 21))
	seq := MustBuild(g, Options{NumLandmarks: 16, Parallelism: 1})
	par := MustBuild(g, Options{NumLandmarks: 16, Parallelism: 8})
	if len(seq.labels) != len(par.labels) {
		t.Fatal("label matrix size mismatch")
	}
	for i := range seq.labels {
		for v := range seq.labels[i] {
			if seq.labels[i][v] != par.labels[i][v] {
				t.Fatalf("label matrix differs at rank %d vertex %d: %d vs %d", i, v, seq.labels[i][v], par.labels[i][v])
			}
		}
	}
	for i := range seq.ms.sigma {
		if seq.ms.sigma[i] != par.ms.sigma[i] {
			t.Fatalf("meta σ differs at %d", i)
		}
	}
	if seq.build.LabelEntries != par.build.LabelEntries {
		t.Fatal("label entry count mismatch")
	}
}

func TestLandmarkOrderInvariance(t *testing.T) {
	// The scheme depends only on the landmark SET (Lemma 5.2).
	g := connected(graph.ErdosRenyi(200, 500, 33))
	lands := ByDegree(g, 10, 0)
	shuffled := make([]graph.V, len(lands))
	copy(shuffled, lands)
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	a := MustBuild(g, Options{Landmarks: lands})
	bIx := MustBuild(g, Options{Landmarks: shuffled})
	sa := NewSearcher(a)
	sb := NewSearcher(bIx)
	for _, p := range samplePairs(g, 80, 99) {
		ga, gb := sa.Query(p[0], p[1]), sb.Query(p[0], p[1])
		if !ga.Equal(gb) {
			t.Fatalf("SPG(%d,%d) differs between landmark orders", p[0], p[1])
		}
	}
}

func TestDeltaEdgesAreLandmarkShortestPaths(t *testing.T) {
	// Δ(a,b) must equal the SPG between a and b restricted to paths that
	// avoid other landmarks.
	g := connected(graph.ErdosRenyi(120, 260, 41))
	ix := MustBuild(g, Options{NumLandmarks: 6})
	for k, me := range ix.MetaEdges() {
		a, b := ix.Landmarks()[me[0]], ix.Landmarks()[me[1]]
		sub := g.InducedSubgraph(func(v graph.V) bool {
			return v == a || v == b || !ix.IsLandmark(v)
		})
		want := bfs.OracleSPG(sub, a, b)
		if int32(want.Dist) != me[2] {
			t.Fatalf("meta edge %d-%d: avoidance dist %d != σ %d", a, b, want.Dist, me[2])
		}
		got := graph.NewSPG(a, b)
		got.Dist = want.Dist
		for _, e := range ix.Delta(k) {
			got.AddEdge(e.U, e.W)
		}
		if !got.Equal(want) {
			t.Fatalf("Δ(%d,%d): got %v want %v", a, b, got, want)
		}
	}
}

func TestCoverageClassification(t *testing.T) {
	// On a star graph with the centre as the only landmark, every
	// non-adjacent pair's shortest paths all pass through the landmark.
	g := graph.Star(12)
	ix := MustBuild(g, Options{NumLandmarks: 1})
	sr := NewSearcher(ix)
	_, st := sr.QueryWithStats(1, 2)
	if st.Coverage != CoverageAll {
		t.Fatalf("star spoke pair: coverage = %v, want CoverageAll", st.Coverage)
	}
	// On a cycle with one landmark, the pair "across" the landmark has
	// one path through it and one around: CoverageSome or CoverageNone
	// depending on parity; check a pair adjacent around the far side has
	// no landmark path of equal length.
	c := graph.Cycle(8)
	ixc := MustBuild(c, Options{Landmarks: []graph.V{0}})
	src := NewSearcher(ixc)
	_, st = src.QueryWithStats(3, 5)
	if st.Coverage != CoverageNone {
		t.Fatalf("cycle far pair: coverage = %v, want CoverageNone", st.Coverage)
	}
	_, st = src.QueryWithStats(7, 1) // both adjacent to landmark 0: path 7-0-1 and no shorter
	if st.Dist != 2 || st.Coverage != CoverageAll {
		t.Fatalf("cycle near pair: dist=%d coverage=%v, want 2/CoverageAll", st.Dist, st.Coverage)
	}
}

func TestDisconnectedPairs(t *testing.T) {
	g := testGraphs(t)["disconnected"]
	ix := MustBuild(g, Options{NumLandmarks: 3})
	sr := NewSearcher(ix)
	spg, st := sr.QueryWithStats(0, 9)
	if st.Dist != graph.InfDist || spg.NumEdges() != 0 {
		t.Fatalf("disconnected pair: dist=%d edges=%d", st.Dist, spg.NumEdges())
	}
	if spg.Dist != graph.InfDist {
		t.Fatal("SPG dist must be InfDist")
	}
}

func TestDiameterOverflow(t *testing.T) {
	g := graph.Path(300)
	_, err := Build(g, Options{NumLandmarks: 1, Landmarks: []graph.V{0}})
	if err != ErrDiameterTooLarge {
		t.Fatalf("got err=%v, want ErrDiameterTooLarge", err)
	}
}

func TestQuickRandomGraphsPropertyBased(t *testing.T) {
	// Property: for any random graph and pair, QbS equals the oracle.
	check := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		n := 10 + int(nRaw)%80
		m := n + int(mRaw)%(3*n)
		k := 1 + int(kRaw)%10
		g := connected(graph.ErdosRenyi(n, m, seed))
		if k > g.NumVertices() {
			k = g.NumVertices()
		}
		ix, err := Build(g, Options{NumLandmarks: k})
		if err != nil {
			return false
		}
		sr := NewSearcher(ix)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < 12; i++ {
			u := graph.V(rng.Intn(g.NumVertices()))
			v := graph.V(rng.Intn(g.NumVertices()))
			if !sr.Query(u, v).Equal(bfs.OracleSPG(g, u, v)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSearcherReuseAcrossQueries(t *testing.T) {
	// A single searcher must produce correct answers across many mixed
	// queries (workspace epoch reuse).
	g := connected(graph.BarabasiAlbert(300, 3, 77))
	ix := MustBuild(g, Options{NumLandmarks: 10})
	sr := NewSearcher(ix)
	for _, p := range samplePairs(g, 300, 123) {
		got := sr.Query(p[0], p[1])
		want := bfs.OracleSPG(g, p[0], p[1])
		if !got.Equal(want) {
			t.Fatalf("SPG(%d,%d) mismatch on reused searcher", p[0], p[1])
		}
	}
}

func TestDistanceMethod(t *testing.T) {
	g := connected(graph.ErdosRenyi(200, 420, 55))
	ix := MustBuild(g, Options{NumLandmarks: 8})
	sr := NewSearcher(ix)
	for _, p := range samplePairs(g, 200, 7) {
		want := bfs.Distance(g, p[0], p[1])
		if want == bfs.Infinity {
			want = graph.InfDist
		}
		if got := sr.Distance(p[0], p[1]); got != want {
			t.Fatalf("Distance(%d,%d)=%d want %d", p[0], p[1], got, want)
		}
	}
}
