package core

import (
	"bytes"
	"math/rand"
	"testing"

	"qbs/internal/graph"
)

// serializeIndex fingerprints an index as its on-disk bytes: landmarks,
// σ and the full label matrix. Δ and the meta table derive
// deterministically from those, so byte equality here is result
// equality.
func serializeIndex(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelBuildBitIdentical builds over graphs large enough that
// the intra-sweep traverse pool actually engages (n and BFS frontier
// sizes past the pool thresholds) and requires the serialized index to
// be byte-identical at every worker count, including a landmark set
// spanning multiple 64-wide batches where the budget splits into
// outer (per-batch) × inner (in-sweep) workers.
func TestParallelBuildBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-vertex builds")
	}
	for _, tc := range []struct {
		n, m, R int
		seed    int64
	}{
		{12000, 48000, 20, 1}, // one batch: all budget goes intra-sweep
		{9000, 27000, 70, 2},  // two batches: outer × inner split
	} {
		g := randomTestGraph(t, tc.n, tc.m, tc.seed)
		var base []byte
		for _, par := range []int{1, 2, 4, 8} {
			ix, err := Build(g, Options{NumLandmarks: tc.R, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			got := serializeIndex(t, ix)
			if par == 1 {
				base = got
				continue
			}
			if !bytes.Equal(base, got) {
				t.Fatalf("n=%d R=%d: parallelism=%d produced a different index than sequential",
					tc.n, tc.R, par)
			}
		}
	}
}

// TestParallelBuildQueriesMatch cross-checks the serving path: a
// searcher over a parallel-built index with parallel expansion enabled
// must answer every query exactly like the fully sequential stack.
func TestParallelBuildQueriesMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-vertex builds")
	}
	g := randomTestGraph(t, 8000, 32000, 7)
	seqIx, err := Build(g, Options{NumLandmarks: 16, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parIx, err := Build(g, Options{NumLandmarks: 16, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq := NewSearcher(seqIx)
	par := NewSearcher(parIx)
	par.SetParallelism(4)
	rng := rand.New(rand.NewSource(99))
	a, b := graph.NewSPG(0, 0), graph.NewSPG(0, 0)
	for i := 0; i < 300; i++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		seq.QueryInto(a, u, v)
		par.QueryInto(b, u, v)
		if !a.Equal(b) {
			t.Fatalf("query (%d,%d): parallel SPG differs from sequential", u, v)
		}
	}
}
