// Package core implements Query-by-Sketch (QbS), the primary
// contribution of the paper: a labelling scheme built from a small set of
// landmarks (Algorithm 2), a fast per-query sketch (Algorithm 3) and a
// sketch-guided search (Algorithm 4) that together answer
// shortest-path-graph queries SPG(u, v) exactly.
//
// The Index is immutable after Build and safe for concurrent queries when
// each goroutine uses its own Searcher.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"qbs/internal/graph"
)

// NoEntry marks an absent label entry. Following the paper (§6.1), each
// vertex stores |R| bytes, one distance byte per landmark; distances must
// therefore stay below 255, which holds for the small-diameter complex
// networks the method targets. Build fails with ErrDiameterTooLarge
// otherwise.
const NoEntry = uint8(255)

// ErrDiameterTooLarge is returned by Build when some label distance
// exceeds the 8-bit representation limit of the labelling.
var ErrDiameterTooLarge = errors.New("core: graph distance exceeds 254, cannot encode labels in 8 bits")

// DefaultNumLandmarks is the paper's default landmark count (|R| = 20).
const DefaultNumLandmarks = 20

// Options configures Build.
type Options struct {
	// NumLandmarks is |R|. Defaults to DefaultNumLandmarks; capped at the
	// vertex count and at 254 (landmark indices must fit alongside the
	// byte-encoded distances).
	NumLandmarks int
	// Strategy selects landmarks. Defaults to ByDegree (the paper's
	// choice: highest-degree vertices).
	Strategy LandmarkStrategy
	// Landmarks overrides selection with an explicit set (used by tests
	// and the landmark-strategy ablation). Ignored when nil.
	Landmarks []graph.V
	// Parallelism is the number of labelling BFS workers. 0 means
	// GOMAXPROCS (the paper's QbS-P); 1 reproduces sequential QbS.
	Parallelism int
	// Seed feeds randomized strategies (Random landmark selection).
	Seed int64
	// SkipDelta skips precomputing Δ (shortest path graphs between
	// adjacent landmarks). Distance and sketch queries still work; full
	// SPG queries require Δ and will rebuild it lazily. Used to measure
	// labelling-only construction cost.
	SkipDelta bool
}

func (o Options) withDefaults(g *graph.Graph) Options {
	if o.NumLandmarks <= 0 {
		o.NumLandmarks = DefaultNumLandmarks
	}
	if o.NumLandmarks > g.NumVertices() {
		o.NumLandmarks = g.NumVertices()
	}
	if o.NumLandmarks > 254 {
		o.NumLandmarks = 254
	}
	if o.Strategy == nil {
		o.Strategy = ByDegree
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// metaEdge is an edge of the meta-graph M: landmarks a < b (as indices
// into the landmark slice) whose shortest paths avoid other landmarks.
type metaEdge struct {
	a, b   int
	weight int32 // σ(a, b) = d_G(a, b)
}

// Index is the QbS labelling scheme L = (M, L) plus the precomputed
// landmark-pair structures of §5.2: APSP over the meta-graph and Δ, the
// shortest path graphs between meta-adjacent landmarks.
type Index struct {
	g *graph.Graph

	landmarks []graph.V // landmark vertex ids, index = landmark rank
	landIdx   []int16   // per vertex: rank, or -1
	numLand   int

	labels []uint8 // dense |V|×|R| matrix; labels[v*|R|+i] = δ or NoEntry

	sigma   []uint8 // |R|×|R| meta-edge weights; NoEntry = no edge
	distM   []int32 // |R|×|R| APSP over M; graph.InfDist = unreachable
	meta    []metaEdge
	metaID  []int32   // |R|×|R| -> index into meta, or -1
	metaSPG [][]int32 // |R|×|R| -> meta-edge ids on shortest meta-paths (nil = compute on the fly)

	delta [][]graph.Edge // per meta-edge: SPG edge list in G

	build BuildStats
}

// BuildStats reports construction cost and size accounting (Tables 2, 3).
type BuildStats struct {
	LabellingTime time.Duration // Algorithm 2 (all landmark BFSes)
	MetaTime      time.Duration // APSP + Δ recovery
	TotalTime     time.Duration
	Parallelism   int
	NumLandmarks  int
	LabelEntries  int64 // number of non-empty label entries
	MetaEdges     int
	DeltaEdges    int64
}

// SizeLabelsBytes is the paper's size(L): |R| bytes per vertex.
func (ix *Index) SizeLabelsBytes() int64 {
	return int64(ix.g.NumVertices()) * int64(ix.numLand)
}

// SizeDeltaBytes is the paper's size(Δ): 8 bytes per precomputed
// landmark-pair shortest-path edge.
func (ix *Index) SizeDeltaBytes() int64 { return ix.build.DeltaEdges * 8 }

// SizeMetaBytes is the meta-graph footprint (σ and APSP matrices).
func (ix *Index) SizeMetaBytes() int64 {
	return int64(len(ix.sigma)) + int64(len(ix.distM))*4
}

// Stats returns construction statistics.
func (ix *Index) Stats() BuildStats { return ix.build }

// Graph returns the indexed graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Landmarks returns the landmark vertex ids (rank order). The slice
// aliases internal storage and must not be modified.
func (ix *Index) Landmarks() []graph.V { return ix.landmarks }

// IsLandmark reports whether v is a landmark.
func (ix *Index) IsLandmark(v graph.V) bool { return ix.landIdx[v] >= 0 }

// NumLandmarks returns |R|.
func (ix *Index) NumLandmarks() int { return ix.numLand }

// Label returns the label entries of v as parallel slices of landmark
// ranks and distances, freshly allocated. Landmarks have empty labels.
func (ix *Index) Label(v graph.V) (ranks []int, dists []int32) {
	base := int(v) * ix.numLand
	for i := 0; i < ix.numLand; i++ {
		if d := ix.labels[base+i]; d != NoEntry {
			ranks = append(ranks, i)
			dists = append(dists, int32(d))
		}
	}
	return ranks, dists
}

// LabelEntry returns the labelled distance from v to landmark rank i, or
// (0, false) when the entry is absent.
func (ix *Index) LabelEntry(v graph.V, i int) (int32, bool) {
	d := ix.labels[int(v)*ix.numLand+i]
	if d == NoEntry {
		return 0, false
	}
	return int32(d), true
}

// MetaDist returns d_M between landmark ranks i and j (graph.InfDist when
// unreachable).
func (ix *Index) MetaDist(i, j int) int32 { return ix.distM[i*ix.numLand+j] }

// MetaEdgeWeight returns σ(i, j) and whether the meta-edge exists.
func (ix *Index) MetaEdgeWeight(i, j int) (int32, bool) {
	s := ix.sigma[i*ix.numLand+j]
	if s == NoEntry {
		return 0, false
	}
	return int32(s), true
}

// MetaEdges returns the meta-graph edge list as (rankA, rankB, weight)
// triples with rankA < rankB.
func (ix *Index) MetaEdges() [][3]int32 {
	out := make([][3]int32, len(ix.meta))
	for k, e := range ix.meta {
		out[k] = [3]int32{int32(e.a), int32(e.b), e.weight}
	}
	return out
}

// Delta returns the precomputed shortest-path-graph edges between the
// endpoints of meta-edge k (as returned by MetaEdges). The slice aliases
// internal storage.
func (ix *Index) Delta(k int) []graph.Edge { return ix.delta[k] }

// Build constructs the QbS index over g. The graph is retained by
// reference and must not be mutated afterwards.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	opts = opts.withDefaults(g)
	start := time.Now()

	landmarks := opts.Landmarks
	if landmarks == nil {
		landmarks = opts.Strategy(g, opts.NumLandmarks, opts.Seed)
	}
	if len(landmarks) > 254 {
		return nil, fmt.Errorf("core: %d landmarks exceed the 254 maximum", len(landmarks))
	}
	seen := make(map[graph.V]bool, len(landmarks))
	for _, r := range landmarks {
		if r < 0 || int(r) >= g.NumVertices() {
			return nil, fmt.Errorf("core: landmark %d out of range", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("core: duplicate landmark %d", r)
		}
		seen[r] = true
	}

	ix := &Index{
		g:         g,
		landmarks: landmarks,
		numLand:   len(landmarks),
		landIdx:   make([]int16, g.NumVertices()),
	}
	for i := range ix.landIdx {
		ix.landIdx[i] = -1
	}
	for i, r := range landmarks {
		ix.landIdx[r] = int16(i)
	}

	labStart := time.Now()
	if err := ix.buildLabelling(opts.Parallelism); err != nil {
		return nil, err
	}
	ix.build.LabellingTime = time.Since(labStart)

	metaStart := time.Now()
	ix.buildAPSP()
	if !opts.SkipDelta {
		ix.buildDelta()
	}
	ix.build.MetaTime = time.Since(metaStart)

	ix.build.TotalTime = time.Since(start)
	ix.build.Parallelism = opts.Parallelism
	ix.build.NumLandmarks = ix.numLand
	return ix, nil
}

// MustBuild is Build that panics on error (tests, examples).
func MustBuild(g *graph.Graph, opts Options) *Index {
	ix, err := Build(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}
