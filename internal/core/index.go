// Package core implements Query-by-Sketch (QbS), the primary
// contribution of the paper: a labelling scheme built from a small set of
// landmarks (Algorithm 2), a fast per-query sketch (Algorithm 3) and a
// sketch-guided search (Algorithm 4) that together answer
// shortest-path-graph queries SPG(u, v) exactly.
//
// The Index is immutable after Build and safe for concurrent queries when
// each goroutine uses its own Searcher. The dynamic-update subsystem
// (internal/dynamic) assembles Index snapshots from incrementally
// maintained parts via AssembleDynamic instead of Build.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"qbs/internal/graph"
)

// NoEntry marks an absent label entry. Following the paper (§6.1), each
// vertex stores |R| bytes, one distance byte per landmark; distances must
// therefore stay below 255, which holds for the small-diameter complex
// networks the method targets. Build fails with ErrDiameterTooLarge
// otherwise.
const NoEntry = uint8(255)

// MaxLabelDist is the largest distance representable in a label byte.
const MaxLabelDist = int32(254)

// ErrDiameterTooLarge is returned by Build when some label distance
// exceeds the 8-bit representation limit of the labelling.
var ErrDiameterTooLarge = errors.New("core: graph distance exceeds 254, cannot encode labels in 8 bits")

// DefaultNumLandmarks is the paper's default landmark count (|R| = 20).
const DefaultNumLandmarks = 20

// Options configures Build.
type Options struct {
	// NumLandmarks is |R|. Defaults to DefaultNumLandmarks; capped at the
	// vertex count and at 254 (landmark indices must fit alongside the
	// byte-encoded distances).
	NumLandmarks int
	// Strategy selects landmarks. Defaults to ByDegree (the paper's
	// choice: highest-degree vertices).
	Strategy LandmarkStrategy
	// Landmarks overrides selection with an explicit set (used by tests
	// and the landmark-strategy ablation). Ignored when nil.
	Landmarks []graph.V
	// Parallelism is the total labelling worker budget. 0 means
	// GOMAXPROCS (the paper's QbS-P); 1 reproduces sequential QbS.
	// Workers first spread across 64-landmark batches; any budget left
	// over (always, at the paper's |R| = 20) runs *inside* each sweep as
	// traverse pool workers parallelising the frontier itself. Labels,
	// σ and Δ are bit-identical at every setting.
	Parallelism int
	// Seed feeds randomized strategies (Random landmark selection).
	Seed int64
	// SkipDelta skips precomputing Δ (shortest path graphs between
	// adjacent landmarks). Distance and sketch queries still work; full
	// SPG queries require Δ and will rebuild it lazily. Used to measure
	// labelling-only construction cost.
	SkipDelta bool
}

// ClampLandmarks returns the effective landmark count for a requested
// |R| over an n-vertex graph: the default when unset, capped at n and at
// the 254 representation limit. Shared by Build and the dynamic index so
// the two entry points can never disagree.
func ClampLandmarks(requested, n int) int {
	if requested <= 0 {
		requested = DefaultNumLandmarks
	}
	if requested > n {
		requested = n
	}
	if requested > 254 {
		requested = 254
	}
	return requested
}

func (o Options) withDefaults(g *graph.Graph) Options {
	o.NumLandmarks = ClampLandmarks(o.NumLandmarks, g.NumVertices())
	if o.Strategy == nil {
		o.Strategy = ByDegree
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// metaEdge is an edge of the meta-graph M: landmarks a < b (as indices
// into the landmark slice) whose shortest paths avoid other landmarks.
type metaEdge struct {
	a, b   int
	weight int32 // σ(a, b) = d_G(a, b)
}

// Index is the QbS labelling scheme L = (M, L) plus the precomputed
// landmark-pair structures of §5.2: APSP over the meta-graph and Δ, the
// shortest path graphs between meta-adjacent landmarks.
type Index struct {
	g *graph.Graph // nil for dynamically assembled indexes
	a graph.Adjacency

	landmarks []graph.V // landmark vertex ids, index = landmark rank
	landIdx   []int16   // per vertex: rank, or -1
	numLand   int

	// labels is the label matrix stored column-major: labels[i][v] is the
	// labelled distance from vertex v to landmark rank i, or NoEntry.
	// Column storage lets the dynamic subsystem share unchanged columns
	// between snapshots (copy-on-write per landmark).
	labels [][]uint8

	// degs caches per-vertex degrees as a flat array for the traversal
	// engines' α/β direction heuristic (an interface Degree call per
	// discovered vertex would dominate the switch bookkeeping). Static
	// builds materialise it once; dynamically assembled snapshots leave
	// it nil and the engines fall back to Adjacency.Degree.
	degs []int32

	ms *MetaState

	delta [][]graph.Edge // per meta-edge: SPG edge list in G

	build BuildStats
}

// BuildStats reports construction cost and size accounting (Tables 2, 3).
type BuildStats struct {
	LabellingTime time.Duration // Algorithm 2 (all landmark BFSes)
	MetaTime      time.Duration // APSP + Δ recovery
	TotalTime     time.Duration
	Parallelism   int
	NumLandmarks  int
	LabelEntries  int64 // number of non-empty label entries
	MetaEdges     int
	DeltaEdges    int64
}

// SizeLabelsBytes is the paper's size(L): |R| bytes per vertex.
func (ix *Index) SizeLabelsBytes() int64 {
	return int64(ix.a.NumVertices()) * int64(ix.numLand)
}

// SizeDeltaBytes is the paper's size(Δ): 8 bytes per precomputed
// landmark-pair shortest-path edge.
func (ix *Index) SizeDeltaBytes() int64 { return ix.build.DeltaEdges * 8 }

// SizeMetaBytes is the meta-graph footprint (σ and APSP matrices).
func (ix *Index) SizeMetaBytes() int64 {
	return int64(len(ix.ms.sigma)) + int64(len(ix.ms.distM))*4
}

// Stats returns construction statistics.
func (ix *Index) Stats() BuildStats { return ix.build }

// Graph returns the indexed static graph, or nil when the index was
// assembled over a dynamic adjacency (use Adjacency then).
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Adjacency returns the adjacency structure the index answers queries
// over.
func (ix *Index) Adjacency() graph.Adjacency { return ix.a }

// Landmarks returns the landmark vertex ids (rank order). The slice
// aliases internal storage and must not be modified.
func (ix *Index) Landmarks() []graph.V { return ix.landmarks }

// IsLandmark reports whether v is a landmark.
func (ix *Index) IsLandmark(v graph.V) bool { return ix.landIdx[v] >= 0 }

// NumLandmarks returns |R|.
func (ix *Index) NumLandmarks() int { return ix.numLand }

// Label returns the label entries of v as parallel slices of landmark
// ranks and distances, freshly allocated. Landmarks have empty labels.
func (ix *Index) Label(v graph.V) (ranks []int, dists []int32) {
	for i := 0; i < ix.numLand; i++ {
		if d := ix.labels[i][v]; d != NoEntry {
			ranks = append(ranks, i)
			dists = append(dists, int32(d))
		}
	}
	return ranks, dists
}

// LabelEntry returns the labelled distance from v to landmark rank i, or
// (0, false) when the entry is absent.
func (ix *Index) LabelEntry(v graph.V, i int) (int32, bool) {
	d := ix.labels[i][v]
	if d == NoEntry {
		return 0, false
	}
	return int32(d), true
}

// Meta returns the frozen meta-graph state.
func (ix *Index) Meta() *MetaState { return ix.ms }

// MetaDist returns d_M between landmark ranks i and j (graph.InfDist when
// unreachable).
func (ix *Index) MetaDist(i, j int) int32 { return ix.ms.Dist(i, j) }

// MetaEdgeWeight returns σ(i, j) and whether the meta-edge exists.
func (ix *Index) MetaEdgeWeight(i, j int) (int32, bool) {
	s := ix.ms.Sigma(i, j)
	if s == NoEntry {
		return 0, false
	}
	return int32(s), true
}

// MetaEdges returns the meta-graph edge list as (rankA, rankB, weight)
// triples with rankA < rankB.
func (ix *Index) MetaEdges() [][3]int32 {
	out := make([][3]int32, len(ix.ms.meta))
	for k, e := range ix.ms.meta {
		out[k] = [3]int32{int32(e.a), int32(e.b), e.weight}
	}
	return out
}

// Delta returns the precomputed shortest-path-graph edges between the
// endpoints of meta-edge k (as returned by MetaEdges). The slice aliases
// internal storage.
func (ix *Index) Delta(k int) []graph.Edge { return ix.delta[k] }

// Build constructs the QbS index over g. The graph is retained by
// reference and must not be mutated afterwards.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	opts = opts.withDefaults(g)
	start := time.Now()

	landmarks := opts.Landmarks
	if landmarks == nil {
		landmarks = opts.Strategy(g, opts.NumLandmarks, opts.Seed)
	}
	ix, err := newIndexShell(g, g, landmarks)
	if err != nil {
		return nil, err
	}
	ix.degs = g.Degrees()

	labStart := time.Now()
	if err := ix.buildLabelling(opts.Parallelism); err != nil {
		return nil, err
	}
	ix.build.LabellingTime = time.Since(labStart)

	metaStart := time.Now()
	if !opts.SkipDelta {
		ix.buildDelta()
	}
	ix.build.MetaTime = time.Since(metaStart)

	ix.build.TotalTime = time.Since(start)
	ix.build.Parallelism = opts.Parallelism
	ix.build.NumLandmarks = ix.numLand
	return ix, nil
}

// newIndexShell validates the landmark set and prepares the common Index
// skeleton (landmark ranks, reverse map) without labels.
func newIndexShell(g *graph.Graph, a graph.Adjacency, landmarks []graph.V) (*Index, error) {
	if len(landmarks) > 254 {
		return nil, fmt.Errorf("core: %d landmarks exceed the 254 maximum", len(landmarks))
	}
	seen := make(map[graph.V]bool, len(landmarks))
	for _, r := range landmarks {
		if r < 0 || int(r) >= a.NumVertices() {
			return nil, fmt.Errorf("core: landmark %d out of range", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("core: duplicate landmark %d", r)
		}
		seen[r] = true
	}
	ix := &Index{
		g:         g,
		a:         a,
		landmarks: landmarks,
		numLand:   len(landmarks),
		landIdx:   make([]int16, a.NumVertices()),
	}
	for i := range ix.landIdx {
		ix.landIdx[i] = -1
	}
	for i, r := range landmarks {
		ix.landIdx[r] = int16(i)
	}
	return ix, nil
}

// MustBuild is Build that panics on error (tests, examples).
func MustBuild(g *graph.Graph, opts Options) *Index {
	ix, err := Build(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}

// AssembleDynamic wraps incrementally maintained parts into a queryable
// Index without any construction work: the label columns, meta state and
// Δ lists are adopted by reference (the caller promises they are frozen —
// the dynamic subsystem's copy-on-write snapshots guarantee this). delta
// must align with ms's deterministic edge order and must be non-nil.
func AssembleDynamic(a graph.Adjacency, landmarks []graph.V, labels [][]uint8, ms *MetaState, delta [][]graph.Edge) (*Index, error) {
	ix, err := newIndexShell(nil, a, landmarks)
	if err != nil {
		return nil, err
	}
	if len(labels) != len(landmarks) {
		return nil, fmt.Errorf("core: %d label columns for %d landmarks", len(labels), len(landmarks))
	}
	if ms == nil || ms.R != len(landmarks) {
		return nil, fmt.Errorf("core: meta state does not match landmark count")
	}
	if len(delta) != len(ms.meta) {
		return nil, fmt.Errorf("core: %d delta lists for %d meta edges", len(delta), len(ms.meta))
	}
	ix.labels = labels
	ix.ms = ms
	ix.delta = delta
	ix.build.NumLandmarks = ix.numLand
	ix.build.MetaEdges = len(ms.meta)
	for _, d := range delta {
		ix.build.DeltaEdges += int64(len(d))
	}
	return ix, nil
}
