package core

import (
	"sync"

	"qbs/internal/graph"
)

// Labelling construction (Algorithm 2 of the paper).
//
// One BFS per landmark r maintains two frontiers per level:
//
//   - QL — vertices reached by some shortest path from r that avoids all
//     other landmarks ("to be labelled"),
//   - QN — vertices whose every shortest path from r passes through
//     another landmark ("not to be labelled").
//
// At each level the QL frontier expands first: a newly discovered
// non-landmark joins QL and receives the label (r, depth); a newly
// discovered landmark v joins QN and contributes the meta-edge (r, v)
// with σ = depth. Vertices discovered only from QN join QN unlabelled.
// Processing QL before QN at each level is what makes membership match
// Definition 4.2 exactly: a vertex has an avoiding shortest path iff one
// of its depth-1 predecessors is in QL.
//
// The scheme is deterministic w.r.t. the landmark set (Lemma 5.2), so the
// per-landmark BFSes run in parallel without coordination: each worker
// writes only its own column of the label matrix and its own meta-edge
// list (QbS-P, §5.3).

// labelWorkspace holds per-worker BFS state.
type labelWorkspace struct {
	depth   []int32 // -1 = unvisited
	curL    []graph.V
	curN    []graph.V
	nextL   []graph.V
	nextN   []graph.V
	visited []graph.V // for O(touched) reset between landmarks
}

func newLabelWorkspace(n int) *labelWorkspace {
	ws := &labelWorkspace{depth: make([]int32, n)}
	for i := range ws.depth {
		ws.depth[i] = -1
	}
	return ws
}

func (ws *labelWorkspace) reset() {
	for _, v := range ws.visited {
		ws.depth[v] = -1
	}
	ws.visited = ws.visited[:0]
	ws.curL, ws.curN = ws.curL[:0], ws.curN[:0]
	ws.nextL, ws.nextN = ws.nextL[:0], ws.nextN[:0]
}

// landmarkBFS labels column ri of the matrix and returns the meta-edges
// (ri, other) discovered, with overflow reported via the bool.
func (ix *Index) landmarkBFS(ri int, ws *labelWorkspace) ([]metaEdge, bool) {
	g := ix.a
	root := ix.landmarks[ri]
	col := ix.labels[ri]
	ws.reset()
	ws.depth[root] = 0
	ws.visited = append(ws.visited, root)
	ws.curL = append(ws.curL, root)
	var metas []metaEdge

	depth := int32(0)
	for len(ws.curL) > 0 || len(ws.curN) > 0 {
		next := depth + 1
		if next > MaxLabelDist {
			return nil, false
		}
		ws.nextL, ws.nextN = ws.nextL[:0], ws.nextN[:0]
		// Labelled frontier first: its discoveries are on avoiding paths.
		for _, u := range ws.curL {
			for _, v := range g.Neighbors(u) {
				if ws.depth[v] >= 0 {
					continue
				}
				ws.depth[v] = next
				ws.visited = append(ws.visited, v)
				if rj := ix.landIdx[v]; rj >= 0 {
					ws.nextN = append(ws.nextN, v)
					a, b := ri, int(rj)
					if a > b {
						a, b = b, a
					}
					metas = append(metas, metaEdge{a: a, b: b, weight: next})
				} else {
					ws.nextL = append(ws.nextL, v)
					col[v] = uint8(next)
				}
			}
		}
		// Non-labelled frontier: discoveries inherit "through a landmark".
		for _, u := range ws.curN {
			for _, v := range g.Neighbors(u) {
				if ws.depth[v] >= 0 {
					continue
				}
				ws.depth[v] = next
				ws.visited = append(ws.visited, v)
				ws.nextN = append(ws.nextN, v)
			}
		}
		ws.curL, ws.nextL = ws.nextL, ws.curL
		ws.curN, ws.nextN = ws.nextN, ws.curN
		depth = next
	}
	return metas, true
}

// buildLabelling runs Algorithm 2 from every landmark, with the given
// number of parallel workers, then merges the per-landmark meta-edges.
func (ix *Index) buildLabelling(parallelism int) error {
	n := ix.a.NumVertices()
	R := ix.numLand
	ix.labels = make([][]uint8, R)
	for i := range ix.labels {
		col := make([]uint8, n)
		for j := range col {
			col[j] = NoEntry
		}
		ix.labels[i] = col
	}
	if R == 0 {
		ix.finishMeta(nil)
		return nil
	}

	perLandmark := make([][]metaEdge, R)
	overflow := false

	if parallelism > R {
		parallelism = R
	}
	if parallelism <= 1 {
		ws := newLabelWorkspace(n)
		for ri := 0; ri < R; ri++ {
			metas, ok := ix.landmarkBFS(ri, ws)
			if !ok {
				return ErrDiameterTooLarge
			}
			perLandmark[ri] = metas
		}
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		work := make(chan int)
		for w := 0; w < parallelism; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := newLabelWorkspace(n)
				for ri := range work {
					metas, ok := ix.landmarkBFS(ri, ws)
					if !ok {
						mu.Lock()
						overflow = true
						mu.Unlock()
						continue
					}
					perLandmark[ri] = metas
				}
			}()
		}
		for ri := 0; ri < R; ri++ {
			work <- ri
		}
		close(work)
		wg.Wait()
		if overflow {
			return ErrDiameterTooLarge
		}
	}

	var all []metaEdge
	for _, metas := range perLandmark {
		all = append(all, metas...)
	}
	ix.finishMeta(all)

	ix.build.LabelEntries = ix.countLabelEntries()
	return nil
}

func (ix *Index) countLabelEntries() int64 {
	var entries int64
	for _, col := range ix.labels {
		for _, d := range col {
			if d != NoEntry {
				entries++
			}
		}
	}
	return entries
}

// finishMeta deduplicates meta-edges (each is discovered from both
// endpoints), builds the σ matrix and freezes the derived meta state
// (edge list, APSP, shortest-meta-path table).
func (ix *Index) finishMeta(all []metaEdge) {
	R := ix.numLand
	sigma := make([]uint8, R*R)
	for i := range sigma {
		sigma[i] = NoEntry
	}
	for _, e := range all {
		at := e.a*R + e.b
		if sigma[at] == NoEntry {
			sigma[at] = uint8(e.weight)
			sigma[e.b*R+e.a] = uint8(e.weight)
		}
	}
	ix.ms = NewMetaState(R, sigma)
	ix.build.MetaEdges = len(ix.ms.meta)
}
