package core

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// Labelling construction (Algorithm 2 of the paper).
//
// The conceptual scheme is one BFS per landmark r maintaining two
// frontiers per level:
//
//   - QL — vertices reached by some shortest path from r that avoids all
//     other landmarks ("to be labelled"),
//   - QN — vertices whose every shortest path from r passes through
//     another landmark ("not to be labelled").
//
// At each level the QL frontier expands first: a newly discovered
// non-landmark joins QL and receives the label (r, depth); a newly
// discovered landmark v joins QN and contributes the meta-edge (r, v)
// with σ = depth. Vertices discovered only from QN join QN unlabelled.
// Processing QL before QN at each level is what makes membership match
// Definition 4.2 exactly: a vertex has an avoiding shortest path iff one
// of its depth-1 predecessors is in QL.
//
// The scheme is deterministic w.r.t. the landmark set (Lemma 5.2), so
// landmarks can be processed independently in any grouping. The build
// path exploits that with the bit-parallel traverse.MultiBFS engine: up
// to 64 landmark BFSes advance per graph sweep, one bit per landmark, so
// the paper's default |R| = 20 costs a single sweep instead of twenty.
// Batches beyond 64 landmarks run in parallel workers, each writing only
// its own columns and meta-edge list (QbS-P, §5.3).
//
// The scalar per-landmark BFS below is retained as the reference
// implementation: labelling_test cross-checks the bit-parallel engine
// against it for bit-identical labels, σ entries and meta-edges.

// labelWorkspace holds per-worker BFS state (scalar reference path).
type labelWorkspace struct {
	depth   []int32 // -1 = unvisited
	curL    []graph.V
	curN    []graph.V
	nextL   []graph.V
	nextN   []graph.V
	visited []graph.V // for O(touched) reset between landmarks
}

func newLabelWorkspace(n int) *labelWorkspace {
	ws := &labelWorkspace{depth: make([]int32, n)}
	for i := range ws.depth {
		ws.depth[i] = -1
	}
	return ws
}

func (ws *labelWorkspace) reset() {
	for _, v := range ws.visited {
		ws.depth[v] = -1
	}
	ws.visited = ws.visited[:0]
	ws.curL, ws.curN = ws.curL[:0], ws.curN[:0]
	ws.nextL, ws.nextN = ws.nextL[:0], ws.nextN[:0]
}

// landmarkBFS labels column ri of the matrix and returns the meta-edges
// (ri, other) discovered, with overflow reported via the bool.
func (ix *Index) landmarkBFS(ri int, ws *labelWorkspace) ([]metaEdge, bool) {
	g := ix.a
	root := ix.landmarks[ri]
	col := ix.labels[ri]
	ws.reset()
	ws.depth[root] = 0
	ws.visited = append(ws.visited, root)
	ws.curL = append(ws.curL, root)
	var metas []metaEdge

	depth := int32(0)
	for len(ws.curL) > 0 || len(ws.curN) > 0 {
		next := depth + 1
		if next > MaxLabelDist {
			return nil, false
		}
		ws.nextL, ws.nextN = ws.nextL[:0], ws.nextN[:0]
		// Labelled frontier first: its discoveries are on avoiding paths.
		for _, u := range ws.curL {
			for _, v := range g.Neighbors(u) {
				if ws.depth[v] >= 0 {
					continue
				}
				ws.depth[v] = next
				ws.visited = append(ws.visited, v)
				if rj := ix.landIdx[v]; rj >= 0 {
					ws.nextN = append(ws.nextN, v)
					a, b := ri, int(rj)
					if a > b {
						a, b = b, a
					}
					metas = append(metas, metaEdge{a: a, b: b, weight: next})
				} else {
					ws.nextL = append(ws.nextL, v)
					col[v] = uint8(next)
				}
			}
		}
		// Non-labelled frontier: discoveries inherit "through a landmark".
		for _, u := range ws.curN {
			for _, v := range g.Neighbors(u) {
				if ws.depth[v] >= 0 {
					continue
				}
				ws.depth[v] = next
				ws.visited = append(ws.visited, v)
				ws.nextN = append(ws.nextN, v)
			}
		}
		ws.curL, ws.nextL = ws.nextL, ws.curL
		ws.curN, ws.nextN = ws.nextN, ws.curN
		depth = next
	}
	return metas, true
}

// batchBFS sweeps one batch of up to 64 landmarks (ranks
// [base, base+len(roots))) through the bit-parallel engine, writing the
// batch's label columns and returning its meta-edges plus the number of
// label entries written (each entry is written exactly once, so counting
// here replaces a full O(n·|R|) matrix scan).
//
// When the engine runs its intra-sweep worker pool the settle callback
// is invoked concurrently; label writes are naturally disjoint (each
// settle owns its vertex), so only the shared meta-edge list (a rare,
// landmark-only event) takes a mutex, and the per-settle entry count
// goes through an atomic.
func (ix *Index) batchBFS(eng *traverse.MultiBFS, base int, roots []graph.V) ([]metaEdge, int64, error) {
	cols := ix.labels[base : base+len(roots)]
	var metas []metaEdge
	var entries int64
	var entriesA atomic.Int64
	var mu sync.Mutex
	par := eng.Parallelism > 1
	err := eng.Run(ix.a, ix.degs, ix.landIdx, roots, MaxLabelDist,
		func(v graph.V, depth int32, newL, _ uint64) {
			if newL == 0 {
				return
			}
			if rj := ix.landIdx[v]; rj >= 0 {
				if par {
					mu.Lock()
				}
				for w := newL; w != 0; w &= w - 1 {
					a, b := base+bits.TrailingZeros64(w), int(rj)
					if a > b {
						a, b = b, a
					}
					metas = append(metas, metaEdge{a: a, b: b, weight: depth})
				}
				if par {
					mu.Unlock()
				}
			} else {
				if par {
					entriesA.Add(int64(bits.OnesCount64(newL)))
				} else {
					entries += int64(bits.OnesCount64(newL))
				}
				d8 := uint8(depth)
				for w := newL; w != 0; w &= w - 1 {
					cols[bits.TrailingZeros64(w)][v] = d8
				}
			}
		})
	if err != nil {
		return nil, 0, ErrDiameterTooLarge
	}
	return metas, entries + entriesA.Load(), nil
}

// buildLabelling runs Algorithm 2 from every landmark in bit-parallel
// batches of 64, with batches distributed over outer workers and any
// worker budget left over (the common case: the paper's |R| = 20 is a
// single batch) spent inside each sweep as engine pool workers, then
// merges the per-batch meta-edges.
func (ix *Index) buildLabelling(parallelism int) error {
	n := ix.a.NumVertices()
	R := ix.numLand
	ix.labels = make([][]uint8, R)
	// One flat backing array, NoEntry-filled by doubling copies (memmove
	// beats a byte loop ~8×), then sliced into columns.
	backing := make([]uint8, n*R)
	if len(backing) > 0 {
		backing[0] = NoEntry
		for filled := 1; filled < len(backing); filled *= 2 {
			copy(backing[filled:], backing[:filled])
		}
	}
	for i := range ix.labels {
		ix.labels[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	if R == 0 {
		ix.finishMeta(nil)
		return nil
	}

	batches := (R + traverse.MaxSources - 1) / traverse.MaxSources
	perBatch := make([][]metaEdge, batches)
	perBatchEntries := make([]int64, batches)
	var firstErr error

	outer := parallelism
	if outer > batches {
		outer = batches
	}
	inner := 1
	if outer > 0 {
		inner = parallelism / outer
	}
	if outer <= 1 {
		eng := traverse.NewMultiBFS(n)
		eng.Parallelism = inner
		for b := 0; b < batches; b++ {
			base := b * traverse.MaxSources
			end := min(base+traverse.MaxSources, R)
			metas, entries, err := ix.batchBFS(eng, base, ix.landmarks[base:end])
			if err != nil {
				return err
			}
			perBatch[b] = metas
			perBatchEntries[b] = entries
		}
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		work := make(chan int)
		for w := 0; w < outer; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng := traverse.NewMultiBFS(n)
				eng.Parallelism = inner
				for b := range work {
					base := b * traverse.MaxSources
					end := min(base+traverse.MaxSources, R)
					metas, entries, err := ix.batchBFS(eng, base, ix.landmarks[base:end])
					if err != nil {
						mu.Lock()
						firstErr = err
						mu.Unlock()
						continue
					}
					perBatch[b] = metas
					perBatchEntries[b] = entries
				}
			}()
		}
		for b := 0; b < batches; b++ {
			work <- b
		}
		close(work)
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	}

	var all []metaEdge
	ix.build.LabelEntries = 0
	for b, metas := range perBatch {
		all = append(all, metas...)
		ix.build.LabelEntries += perBatchEntries[b]
	}
	ix.finishMeta(all)
	return nil
}

func (ix *Index) countLabelEntries() int64 {
	var entries int64
	for _, col := range ix.labels {
		for _, d := range col {
			if d != NoEntry {
				entries++
			}
		}
	}
	return entries
}

// finishMeta deduplicates meta-edges (each is discovered from both
// endpoints), builds the σ matrix and freezes the derived meta state
// (edge list, APSP, shortest-meta-path table).
func (ix *Index) finishMeta(all []metaEdge) {
	R := ix.numLand
	sigma := make([]uint8, R*R)
	for i := range sigma {
		sigma[i] = NoEntry
	}
	for _, e := range all {
		at := e.a*R + e.b
		if sigma[at] == NoEntry {
			sigma[at] = uint8(e.weight)
			sigma[e.b*R+e.a] = uint8(e.weight)
		}
	}
	ix.ms = NewMetaState(R, sigma)
	ix.build.MetaEdges = len(ix.ms.meta)
}
