package core

import (
	"math/rand"
	"sort"

	"qbs/internal/graph"
)

// LandmarkStrategy selects k landmarks from g. Strategies must be
// deterministic given (g, k, seed).
//
// The paper uses highest-degree selection (§6.1) and names landmark
// selection as future work (§8); Random and ByCoverage are the ablation
// strategies exercised by the `ablation-landmarks` experiment.
type LandmarkStrategy func(g *graph.Graph, k int, seed int64) []graph.V

// ByDegree picks the k highest-degree vertices (ties by id) — the
// paper's default: removing high-degree vertices sparsifies the graph
// most, and hub landmarks give tight sketch bounds.
func ByDegree(g *graph.Graph, k int, _ int64) []graph.V {
	return g.TopDegreeVertices(k)
}

// Random picks k distinct vertices uniformly at random.
func Random(g *graph.Graph, k int, seed int64) []graph.V {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	out := make([]graph.V, k)
	for i := 0; i < k; i++ {
		out[i] = graph.V(perm[i])
	}
	return out
}

// ByApproxBetweenness scores vertices by sampled shortest-path
// betweenness: BFS trees from s sampled sources accumulate, for each
// vertex, the number of source–target shortest paths passing through it
// (Brandes' dependency accumulation restricted to the sample). The k
// top-scoring vertices become landmarks. More faithful to "vertices on
// many shortest paths" than raw degree, at O(s·|E|) selection cost —
// one of the landmark selection strategies the paper leaves as future
// work (§8).
func ByApproxBetweenness(g *graph.Graph, k int, seed int64) []graph.V {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	samples := 32
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	score := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n) // shortest path counts from the source
	delta := make([]float64, n) // Brandes dependencies
	order := make([]graph.V, 0, n)
	for s := 0; s < samples; s++ {
		src := graph.V(rng.Intn(n))
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		order = order[:0]
		dist[src] = 0
		sigma[src] = 1
		order = append(order, src)
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, w := range g.Neighbors(u) {
				if dist[w] < 0 {
					dist[w] = dist[u] + 1
					order = append(order, w)
				}
				if dist[w] == dist[u]+1 {
					sigma[w] += sigma[u]
				}
			}
		}
		for i := len(order) - 1; i > 0; i-- {
			w := order[i]
			for _, u := range g.Neighbors(w) {
				if dist[u] == dist[w]-1 && sigma[w] > 0 {
					delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
				}
			}
			score[w] += delta[w]
		}
	}
	vs := make([]graph.V, n)
	for i := range vs {
		vs[i] = graph.V(i)
	}
	sort.Slice(vs, func(i, j int) bool {
		if score[vs[i]] != score[vs[j]] {
			return score[vs[i]] > score[vs[j]]
		}
		// Stable fall-back: degree then id, so zero-score ties are still
		// useful landmarks.
		di, dj := g.Degree(vs[i]), g.Degree(vs[j])
		if di != dj {
			return di > dj
		}
		return vs[i] < vs[j]
	})
	return vs[:k]
}

// ByCoverage greedily picks vertices that maximise newly covered 2-hop
// neighbourhoods: each chosen landmark marks itself and its neighbours
// covered, and candidates are scored by the number of uncovered
// neighbours. A cheap proxy for shortest-path coverage that avoids
// clustering landmarks in one hub region.
func ByCoverage(g *graph.Graph, k int, _ int64) []graph.V {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	covered := make([]bool, n)
	chosen := make([]graph.V, 0, k)
	isChosen := make([]bool, n)
	order := g.VerticesByDegree()
	for len(chosen) < k {
		best := graph.V(-1)
		bestScore := -1
		// Scanning in degree order lets us stop early: a vertex's degree
		// bounds its score.
		for _, v := range order {
			if isChosen[v] {
				continue
			}
			if g.Degree(v) <= bestScore {
				break
			}
			score := 0
			if !covered[v] {
				score++
			}
			for _, w := range g.Neighbors(v) {
				if !covered[w] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		isChosen[best] = true
		covered[best] = true
		for _, w := range g.Neighbors(best) {
			covered[w] = true
		}
	}
	// Pad with highest-degree unchosen vertices if coverage saturated.
	for _, v := range order {
		if len(chosen) == k {
			break
		}
		if !isChosen[v] {
			chosen = append(chosen, v)
			isChosen[v] = true
		}
	}
	return chosen
}
