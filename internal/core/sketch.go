package core

import (
	"qbs/internal/graph"
)

// Sketch construction (Algorithm 3): for a query pair (u, v), combine the
// label entries of u and v with the meta-graph APSP to obtain
//
//	d⊤_uv = min { δ_ur + d_M(r, r') + δ_r'v }
//
// over all label pairs (Definition 4.5, Eq. 3), and record the minimizing
// landmark pairs. The sketch's edges are: (u, r) and (r', v) for each
// minimizing pair, plus every meta-edge on a shortest r–r' path in M.
// With label entries capped at |R| per endpoint, the pair scan is O(|R|²)
// and meta-edge enumeration O(|R|²) per minimizing pair.

// SketchEndpoint is a sketch edge incident to a query endpoint: the
// landmark rank and σ_S = the labelled distance.
type SketchEndpoint struct {
	Rank  int
	Sigma int32
}

// SketchPair is a minimizing landmark pair (ranks into Landmarks()).
type SketchPair struct {
	R, RPrime int
}

// Sketch is the paper's S_uv. It is produced by Index.Sketch and consumed
// by the guided search; tests and the sketch-effectiveness benchmarks
// introspect it.
type Sketch struct {
	U, V graph.V
	// DTop is d⊤_uv, the length of the shortest u–v path through at least
	// one landmark (graph.InfDist when no such path exists).
	DTop int32
	// DStarU and DStarV are the per-side search bounds of Eq. 4:
	// max σ_S(r, t) − 1 over sketch edges at that endpoint (0 when the
	// endpoint has no sketch edges).
	DStarU, DStarV int32
	// Pairs are the minimizing landmark pairs.
	Pairs []SketchPair
	// USide and VSide are the sketch edges at u and v, deduplicated by
	// landmark. For a landmark endpoint the side holds the single virtual
	// entry (rank(t), 0).
	USide, VSide []SketchEndpoint
	// MetaEdges are indices into Index.MetaEdges() of meta-edges on
	// shortest r–r' meta-paths of minimizing pairs.
	MetaEdges []int
}

// entryList materialises the label entries of t, treating a landmark
// endpoint as carrying the single virtual entry (rank(t), 0): a landmark
// reaches itself by the empty path, which trivially avoids all other
// landmarks.
func (ix *Index) entryList(t graph.V, buf []SketchEndpoint) []SketchEndpoint {
	buf = buf[:0]
	if ri := ix.landIdx[t]; ri >= 0 {
		return append(buf, SketchEndpoint{Rank: int(ri), Sigma: 0})
	}
	for i := 0; i < ix.numLand; i++ {
		if d := ix.labels[i][t]; d != NoEntry {
			buf = append(buf, SketchEndpoint{Rank: i, Sigma: int32(d)})
		}
	}
	return buf
}

// Sketch computes S_uv. It allocates the result; the query hot path uses
// the Searcher's internal variant instead.
func (ix *Index) Sketch(u, v graph.V) *Sketch {
	s := &Sketch{U: u, V: v, DTop: graph.InfDist}
	uEntries := ix.entryList(u, nil)
	vEntries := ix.entryList(v, nil)

	// Pass 1: d⊤.
	for _, eu := range uEntries {
		row := eu.Rank * ix.numLand
		for _, ev := range vEntries {
			dm := ix.ms.distM[row+ev.Rank]
			if dm == graph.InfDist {
				continue
			}
			if pi := eu.Sigma + dm + ev.Sigma; pi < s.DTop {
				s.DTop = pi
			}
		}
	}
	if s.DTop == graph.InfDist {
		return s
	}

	// Pass 2: minimizing pairs and sketch edges.
	uSeen := make(map[int]int32)
	vSeen := make(map[int]int32)
	metaSeen := make(map[int]struct{})
	for _, eu := range uEntries {
		row := eu.Rank * ix.numLand
		for _, ev := range vEntries {
			dm := ix.ms.distM[row+ev.Rank]
			if dm == graph.InfDist || eu.Sigma+dm+ev.Sigma != s.DTop {
				continue
			}
			s.Pairs = append(s.Pairs, SketchPair{R: eu.Rank, RPrime: ev.Rank})
			uSeen[eu.Rank] = eu.Sigma
			vSeen[ev.Rank] = ev.Sigma
			if eu.Rank != ev.Rank {
				for k := range ix.ms.meta {
					if _, dup := metaSeen[k]; !dup && ix.ms.onMetaShortestPath(eu.Rank, ev.Rank, k) {
						metaSeen[k] = struct{}{}
						s.MetaEdges = append(s.MetaEdges, k)
					}
				}
			}
		}
	}
	for rank, sig := range uSeen {
		s.USide = append(s.USide, SketchEndpoint{Rank: rank, Sigma: sig})
		if sig-1 > s.DStarU {
			s.DStarU = sig - 1
		}
	}
	for rank, sig := range vSeen {
		s.VSide = append(s.VSide, SketchEndpoint{Rank: rank, Sigma: sig})
		if sig-1 > s.DStarV {
			s.DStarV = sig - 1
		}
	}
	return s
}
