package core

import (
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

// Tests for the labelling phase (Algorithm 2) and index construction
// plumbing.

func TestBuildRejectsBadLandmarks(t *testing.T) {
	g := graph.Path(5)
	if _, err := Build(g, Options{Landmarks: []graph.V{99}}); err == nil {
		t.Fatal("out-of-range landmark accepted")
	}
	if _, err := Build(g, Options{Landmarks: []graph.V{-1}}); err == nil {
		t.Fatal("negative landmark accepted")
	}
	if _, err := Build(g, Options{Landmarks: []graph.V{1, 1}}); err == nil {
		t.Fatal("duplicate landmark accepted")
	}
}

func TestBuildCapsLandmarksAtVertexCount(t *testing.T) {
	g := graph.Path(5)
	ix := MustBuild(g, Options{NumLandmarks: 50})
	if ix.NumLandmarks() != 5 {
		t.Fatalf("landmarks = %d, want 5", ix.NumLandmarks())
	}
}

func TestLandmarksHaveNoLabels(t *testing.T) {
	g := connected(graph.ErdosRenyi(100, 250, 3))
	ix := MustBuild(g, Options{NumLandmarks: 10})
	for _, r := range ix.Landmarks() {
		ranks, _ := ix.Label(r)
		if len(ranks) != 0 {
			t.Fatalf("landmark %d has %d label entries", r, len(ranks))
		}
	}
}

func TestLabelDistancesAreExact(t *testing.T) {
	g := connected(graph.BarabasiAlbert(200, 3, 5))
	ix := MustBuild(g, Options{NumLandmarks: 8})
	for i, r := range ix.Landmarks() {
		dist := bfs.Distances(g, r)
		for v := 0; v < g.NumVertices(); v++ {
			if d, ok := ix.LabelEntry(graph.V(v), i); ok && d != dist[v] {
				t.Fatalf("label (%d → %d) = %d, true distance %d", v, r, d, dist[v])
			}
		}
	}
}

func TestMetaEdgeWeightsSymmetricAndExact(t *testing.T) {
	g := connected(graph.WattsStrogatz(150, 4, 0.2, 9))
	ix := MustBuild(g, Options{NumLandmarks: 10})
	k := ix.NumLandmarks()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			wij, okij := ix.MetaEdgeWeight(i, j)
			wji, okji := ix.MetaEdgeWeight(j, i)
			if okij != okji || (okij && wij != wji) {
				t.Fatalf("meta edge (%d,%d) asymmetric", i, j)
			}
			if okij {
				want := bfs.Distance(g, ix.Landmarks()[i], ix.Landmarks()[j])
				if wij != want {
					t.Fatalf("σ(%d,%d)=%d want %d", i, j, wij, want)
				}
			}
		}
	}
}

func TestLabelEntriesBoundedByLandmarks(t *testing.T) {
	// Each vertex stores at most |R| entries by construction; the stats
	// counter must agree with a direct scan.
	g := connected(graph.ErdosRenyi(120, 300, 11))
	ix := MustBuild(g, Options{NumLandmarks: 6})
	var count int64
	for v := 0; v < g.NumVertices(); v++ {
		ranks, _ := ix.Label(graph.V(v))
		if len(ranks) > 6 {
			t.Fatalf("vertex %d has %d entries", v, len(ranks))
		}
		count += int64(len(ranks))
	}
	if count != ix.Stats().LabelEntries {
		t.Fatalf("entry count %d != stats %d", count, ix.Stats().LabelEntries)
	}
}

func TestSkipDeltaLazyBuild(t *testing.T) {
	g := connected(graph.BarabasiAlbert(150, 3, 13))
	ix := MustBuild(g, Options{NumLandmarks: 8, SkipDelta: true})
	if ix.delta != nil {
		t.Fatal("SkipDelta did not skip")
	}
	// NewSearcher triggers EnsureDelta; queries must then be exact.
	sr := NewSearcher(ix)
	if ix.delta == nil {
		t.Fatal("EnsureDelta did not run")
	}
	for _, p := range samplePairs(g, 40, 3) {
		if !sr.Query(p[0], p[1]).Equal(bfs.OracleSPG(g, p[0], p[1])) {
			t.Fatalf("lazy-delta query wrong for %v", p)
		}
	}
}

func TestParallelismMoreWorkersThanLandmarks(t *testing.T) {
	g := connected(graph.ErdosRenyi(100, 240, 15))
	ix := MustBuild(g, Options{NumLandmarks: 3, Parallelism: 16})
	seq := MustBuild(g, Options{NumLandmarks: 3, Parallelism: 1})
	for i := range ix.labels {
		for v := range ix.labels[i] {
			if ix.labels[i][v] != seq.labels[i][v] {
				t.Fatal("worker oversubscription changed the labelling")
			}
		}
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.NewBuilder(1).MustBuild()
	ix := MustBuild(g, Options{NumLandmarks: 1})
	sr := NewSearcher(ix)
	spg := sr.Query(0, 0)
	if spg.Dist != 0 || spg.NumEdges() != 0 {
		t.Fatal("trivial single-vertex query")
	}
}

func TestTwoVertexGraph(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}})
	for k := 1; k <= 2; k++ {
		ix := MustBuild(g, Options{NumLandmarks: k})
		sr := NewSearcher(ix)
		spg := sr.Query(0, 1)
		if spg.Dist != 1 || spg.NumEdges() != 1 {
			t.Fatalf("k=%d: dist=%d edges=%d", k, spg.Dist, spg.NumEdges())
		}
	}
}

func TestIsolatedVertices(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild() // 3, 4, 5 isolated
	ix := MustBuild(g, Options{NumLandmarks: 2})
	sr := NewSearcher(ix)
	if spg := sr.Query(0, 4); spg.Dist != graph.InfDist || spg.NumEdges() != 0 {
		t.Fatal("isolated vertex query must be empty")
	}
	if spg := sr.Query(3, 5); spg.Dist != graph.InfDist {
		t.Fatal("two isolated vertices must be disconnected")
	}
}

func TestLandmarkStrategies(t *testing.T) {
	g := connected(graph.BarabasiAlbert(300, 3, 21))
	for name, s := range map[string]LandmarkStrategy{
		"degree": ByDegree, "random": Random, "coverage": ByCoverage, "betweenness": ByApproxBetweenness,
	} {
		lands := s(g, 12, 7)
		if len(lands) != 12 {
			t.Fatalf("%s: %d landmarks", name, len(lands))
		}
		seen := map[graph.V]bool{}
		for _, r := range lands {
			if seen[r] {
				t.Fatalf("%s: duplicate landmark %d", name, r)
			}
			seen[r] = true
		}
		// Determinism for the given seed.
		again := s(g, 12, 7)
		for i := range lands {
			if lands[i] != again[i] {
				t.Fatalf("%s: non-deterministic", name)
			}
		}
	}
}

func TestByDegreePicksHubs(t *testing.T) {
	g := graph.Star(50)
	if lands := ByDegree(g, 1, 0); lands[0] != 0 {
		t.Fatalf("degree strategy missed the hub: %v", lands)
	}
}

func TestByCoverageSpreadsLandmarks(t *testing.T) {
	// Two separate stars: coverage must pick both centres before any
	// spoke; plain degree would too, but coverage must not pick two
	// vertices from the same star's centre region.
	b := graph.NewBuilder(22)
	for i := 1; i <= 10; i++ {
		b.AddEdge(0, graph.V(i))
	}
	for i := 12; i <= 21; i++ {
		b.AddEdge(11, graph.V(i))
	}
	b.AddEdge(10, 12) // weak bridge
	g := b.MustBuild()
	lands := ByCoverage(g, 2, 0)
	got := map[graph.V]bool{lands[0]: true, lands[1]: true}
	if !got[0] || !got[11] {
		t.Fatalf("coverage picked %v, want the two star centres", lands)
	}
}
