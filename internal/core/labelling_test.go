package core

import (
	"math/rand"
	"reflect"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

// Tests for the labelling phase (Algorithm 2) and index construction
// plumbing.

func TestBuildRejectsBadLandmarks(t *testing.T) {
	g := graph.Path(5)
	if _, err := Build(g, Options{Landmarks: []graph.V{99}}); err == nil {
		t.Fatal("out-of-range landmark accepted")
	}
	if _, err := Build(g, Options{Landmarks: []graph.V{-1}}); err == nil {
		t.Fatal("negative landmark accepted")
	}
	if _, err := Build(g, Options{Landmarks: []graph.V{1, 1}}); err == nil {
		t.Fatal("duplicate landmark accepted")
	}
}

func TestBuildCapsLandmarksAtVertexCount(t *testing.T) {
	g := graph.Path(5)
	ix := MustBuild(g, Options{NumLandmarks: 50})
	if ix.NumLandmarks() != 5 {
		t.Fatalf("landmarks = %d, want 5", ix.NumLandmarks())
	}
}

func TestLandmarksHaveNoLabels(t *testing.T) {
	g := connected(graph.ErdosRenyi(100, 250, 3))
	ix := MustBuild(g, Options{NumLandmarks: 10})
	for _, r := range ix.Landmarks() {
		ranks, _ := ix.Label(r)
		if len(ranks) != 0 {
			t.Fatalf("landmark %d has %d label entries", r, len(ranks))
		}
	}
}

func TestLabelDistancesAreExact(t *testing.T) {
	g := connected(graph.BarabasiAlbert(200, 3, 5))
	ix := MustBuild(g, Options{NumLandmarks: 8})
	for i, r := range ix.Landmarks() {
		dist := bfs.Distances(g, r)
		for v := 0; v < g.NumVertices(); v++ {
			if d, ok := ix.LabelEntry(graph.V(v), i); ok && d != dist[v] {
				t.Fatalf("label (%d → %d) = %d, true distance %d", v, r, d, dist[v])
			}
		}
	}
}

func TestMetaEdgeWeightsSymmetricAndExact(t *testing.T) {
	g := connected(graph.WattsStrogatz(150, 4, 0.2, 9))
	ix := MustBuild(g, Options{NumLandmarks: 10})
	k := ix.NumLandmarks()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			wij, okij := ix.MetaEdgeWeight(i, j)
			wji, okji := ix.MetaEdgeWeight(j, i)
			if okij != okji || (okij && wij != wji) {
				t.Fatalf("meta edge (%d,%d) asymmetric", i, j)
			}
			if okij {
				want := bfs.Distance(g, ix.Landmarks()[i], ix.Landmarks()[j])
				if wij != want {
					t.Fatalf("σ(%d,%d)=%d want %d", i, j, wij, want)
				}
			}
		}
	}
}

func TestLabelEntriesBoundedByLandmarks(t *testing.T) {
	// Each vertex stores at most |R| entries by construction; the stats
	// counter must agree with a direct scan.
	g := connected(graph.ErdosRenyi(120, 300, 11))
	ix := MustBuild(g, Options{NumLandmarks: 6})
	var count int64
	for v := 0; v < g.NumVertices(); v++ {
		ranks, _ := ix.Label(graph.V(v))
		if len(ranks) > 6 {
			t.Fatalf("vertex %d has %d entries", v, len(ranks))
		}
		count += int64(len(ranks))
	}
	if count != ix.Stats().LabelEntries {
		t.Fatalf("entry count %d != stats %d", count, ix.Stats().LabelEntries)
	}
}

func TestSkipDeltaLazyBuild(t *testing.T) {
	g := connected(graph.BarabasiAlbert(150, 3, 13))
	ix := MustBuild(g, Options{NumLandmarks: 8, SkipDelta: true})
	if ix.delta != nil {
		t.Fatal("SkipDelta did not skip")
	}
	// NewSearcher triggers EnsureDelta; queries must then be exact.
	sr := NewSearcher(ix)
	if ix.delta == nil {
		t.Fatal("EnsureDelta did not run")
	}
	for _, p := range samplePairs(g, 40, 3) {
		if !sr.Query(p[0], p[1]).Equal(bfs.OracleSPG(g, p[0], p[1])) {
			t.Fatalf("lazy-delta query wrong for %v", p)
		}
	}
}

func TestParallelismMoreWorkersThanLandmarks(t *testing.T) {
	g := connected(graph.ErdosRenyi(100, 240, 15))
	ix := MustBuild(g, Options{NumLandmarks: 3, Parallelism: 16})
	seq := MustBuild(g, Options{NumLandmarks: 3, Parallelism: 1})
	for i := range ix.labels {
		for v := range ix.labels[i] {
			if ix.labels[i][v] != seq.labels[i][v] {
				t.Fatal("worker oversubscription changed the labelling")
			}
		}
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.NewBuilder(1).MustBuild()
	ix := MustBuild(g, Options{NumLandmarks: 1})
	sr := NewSearcher(ix)
	spg := sr.Query(0, 0)
	if spg.Dist != 0 || spg.NumEdges() != 0 {
		t.Fatal("trivial single-vertex query")
	}
}

func TestTwoVertexGraph(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}})
	for k := 1; k <= 2; k++ {
		ix := MustBuild(g, Options{NumLandmarks: k})
		sr := NewSearcher(ix)
		spg := sr.Query(0, 1)
		if spg.Dist != 1 || spg.NumEdges() != 1 {
			t.Fatalf("k=%d: dist=%d edges=%d", k, spg.Dist, spg.NumEdges())
		}
	}
}

func TestIsolatedVertices(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild() // 3, 4, 5 isolated
	ix := MustBuild(g, Options{NumLandmarks: 2})
	sr := NewSearcher(ix)
	if spg := sr.Query(0, 4); spg.Dist != graph.InfDist || spg.NumEdges() != 0 {
		t.Fatal("isolated vertex query must be empty")
	}
	if spg := sr.Query(3, 5); spg.Dist != graph.InfDist {
		t.Fatal("two isolated vertices must be disconnected")
	}
}

func TestLandmarkStrategies(t *testing.T) {
	g := connected(graph.BarabasiAlbert(300, 3, 21))
	for name, s := range map[string]LandmarkStrategy{
		"degree": ByDegree, "random": Random, "coverage": ByCoverage, "betweenness": ByApproxBetweenness,
	} {
		lands := s(g, 12, 7)
		if len(lands) != 12 {
			t.Fatalf("%s: %d landmarks", name, len(lands))
		}
		seen := map[graph.V]bool{}
		for _, r := range lands {
			if seen[r] {
				t.Fatalf("%s: duplicate landmark %d", name, r)
			}
			seen[r] = true
		}
		// Determinism for the given seed.
		again := s(g, 12, 7)
		for i := range lands {
			if lands[i] != again[i] {
				t.Fatalf("%s: non-deterministic", name)
			}
		}
	}
}

func TestByDegreePicksHubs(t *testing.T) {
	g := graph.Star(50)
	if lands := ByDegree(g, 1, 0); lands[0] != 0 {
		t.Fatalf("degree strategy missed the hub: %v", lands)
	}
}

func TestByCoverageSpreadsLandmarks(t *testing.T) {
	// Two separate stars: coverage must pick both centres before any
	// spoke; plain degree would too, but coverage must not pick two
	// vertices from the same star's centre region.
	b := graph.NewBuilder(22)
	for i := 1; i <= 10; i++ {
		b.AddEdge(0, graph.V(i))
	}
	for i := 12; i <= 21; i++ {
		b.AddEdge(11, graph.V(i))
	}
	b.AddEdge(10, 12) // weak bridge
	g := b.MustBuild()
	lands := ByCoverage(g, 2, 0)
	got := map[graph.V]bool{lands[0]: true, lands[1]: true}
	if !got[0] || !got[11] {
		t.Fatalf("coverage picked %v, want the two star centres", lands)
	}
}

// ---------------------------------------------------------------------
// Bit-parallel engine vs the scalar reference (retained landmarkBFS).

// scalarLabelling rebuilds labels, σ and meta-edges for the given
// landmark set with the scalar per-landmark QL/QN BFS, on a bare shell.
func scalarLabelling(t *testing.T, g *graph.Graph, landmarks []graph.V) *Index {
	t.Helper()
	shell, err := newIndexShell(g, g, landmarks)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	shell.labels = make([][]uint8, len(landmarks))
	for i := range shell.labels {
		col := make([]uint8, n)
		for j := range col {
			col[j] = NoEntry
		}
		shell.labels[i] = col
	}
	ws := newLabelWorkspace(n)
	var all []metaEdge
	for ri := range landmarks {
		metas, ok := shell.landmarkBFS(ri, ws)
		if !ok {
			t.Fatal("scalar labelling overflow")
		}
		all = append(all, metas...)
	}
	shell.finishMeta(all)
	return shell
}

func randomTestGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.MustBuild()
}

// TestBitParallelLabellingMatchesScalar is the oracle property test for
// the traverse.MultiBFS build path: labels, σ and the meta APSP must be
// bit-identical to the scalar Algorithm 2, including on disconnected
// graphs and with landmark sets spanning multiple 64-wide batches.
func TestBitParallelLabellingMatchesScalar(t *testing.T) {
	for _, tc := range []struct {
		n, m, R int
		seed    int64
	}{
		{30, 15, 5, 1},     // disconnected
		{100, 300, 20, 2},  // paper-default |R|
		{150, 900, 64, 3},  // exactly one full batch
		{200, 1200, 70, 4}, // two batches
		{64, 80, 64, 5},    // every vertex nearly a landmark
	} {
		g := randomTestGraph(t, tc.n, tc.m, tc.seed)
		n := g.NumVertices()
		R := tc.R
		if R > n {
			R = n
		}
		rng := rand.New(rand.NewSource(tc.seed * 101))
		seen := map[graph.V]bool{}
		var lms []graph.V
		for len(lms) < R {
			v := graph.V(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				lms = append(lms, v)
			}
		}
		for _, par := range []int{1, 3} {
			ix, err := Build(g, Options{Landmarks: lms, Parallelism: par, SkipDelta: true})
			if err != nil {
				t.Fatal(err)
			}
			ref := scalarLabelling(t, g, lms)
			for i := range lms {
				if !reflect.DeepEqual(ix.labels[i], ref.labels[i]) {
					t.Fatalf("n=%d R=%d par=%d: label column %d differs", tc.n, R, par, i)
				}
			}
			if !reflect.DeepEqual(ix.ms.sigma, ref.ms.sigma) {
				t.Fatalf("n=%d R=%d par=%d: sigma differs", tc.n, R, par)
			}
			if !reflect.DeepEqual(ix.ms.distM, ref.ms.distM) {
				t.Fatalf("n=%d R=%d par=%d: meta APSP differs", tc.n, R, par)
			}
			if len(ix.ms.meta) != len(ref.ms.meta) {
				t.Fatalf("n=%d R=%d par=%d: meta edge count differs", tc.n, R, par)
			}
		}
	}
}

// TestBuildLabelEntriesCountsSweepWrites checks the settle-time entry
// count against a full matrix scan (the count is now accumulated during
// the sweep instead of re-scanned).
func TestBuildLabelEntriesCountsSweepWrites(t *testing.T) {
	g := randomTestGraph(t, 120, 500, 9)
	ix := MustBuild(g, Options{NumLandmarks: 20})
	if got, want := ix.Stats().LabelEntries, ix.countLabelEntries(); got != want {
		t.Fatalf("LabelEntries = %d, matrix scan says %d", got, want)
	}
}
