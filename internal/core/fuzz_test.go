package core

import (
	"bytes"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

// FuzzQueryMatchesOracle interprets the payload as an edge stream over a
// small vertex set plus a query pair and landmark count; the QbS answer
// must always match the brute-force oracle.
func FuzzQueryMatchesOracle(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 2, 2, 3, 3, 0}, uint8(0), uint8(3), uint8(2))
	f.Add([]byte{0, 1}, uint8(0), uint8(1), uint8(1))
	f.Add([]byte{}, uint8(0), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, uRaw, vRaw, kRaw uint8) {
		const n = 24
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(data) && i < 200; i += 2 {
			b.AddEdge(graph.V(data[i]%n), graph.V(data[i+1]%n))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + int(kRaw)%8
		ix, err := Build(g, Options{NumLandmarks: k})
		if err != nil {
			t.Fatal(err)
		}
		u := graph.V(uRaw % n)
		v := graph.V(vRaw % n)
		got := NewSearcher(ix).Query(u, v)
		want := bfs.OracleSPG(g, u, v)
		if !got.Equal(want) {
			t.Fatalf("SPG(%d,%d): got %v want %v (landmarks %v)", u, v, got, want, ix.Landmarks())
		}
	})
}

// FuzzIndexLoad feeds arbitrary bytes to the index reader. The format
// validates structure (magic, counts, landmark ranges) but deliberately
// not label semantics — files are trusted state, like any database
// snapshot — so the property is: never panic, neither in Load nor in a
// query over whatever Load accepted. A pristine snapshot must round-trip
// to exact answers (covered by TestIndexRoundTrip).
func FuzzIndexLoad(f *testing.F) {
	g := graph.Cycle(12)
	ix := MustBuild(g, Options{NumLandmarks: 3})
	var buf bytes.Buffer
	_ = ix.Write(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("QBSI"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(g, bytes.NewReader(data))
		if err != nil {
			return
		}
		sr := NewSearcher(loaded)
		spg := sr.Query(0, 6)
		if spg.Dist != graph.InfDist && spg.Dist < 0 {
			t.Fatalf("negative distance %d", spg.Dist)
		}
	})
}
