package core

import (
	"slices"

	"qbs/internal/graph"
)

// Meta-graph precomputation (§5.2): all-pairs shortest paths over the
// meta-graph M, and Δ — for each meta-edge (a, b), the shortest path
// graph between a and b in G, recovered from the labelling alone.
// These drop per-query sketch cost to O(|R|²) and let the recover search
// expand landmark-to-landmark segments without touching G.
//
// The meta-graph state is factored into its own immutable MetaState so
// the dynamic-update subsystem can share one instance across index
// snapshots and swap in a fresh one only when σ actually changes.

// MetaState is the immutable meta-graph bundle derived from σ: the edge
// list, the σ and APSP matrices, and the shortest-meta-path edge table.
// It is safe to share between index snapshots; all fields are frozen
// after NewMetaState.
type MetaState struct {
	R      int
	sigma  []uint8 // |R|×|R| meta-edge weights; NoEntry = no edge
	distM  []int32 // |R|×|R| APSP over M; graph.InfDist = unreachable
	meta   []metaEdge
	metaID []int32   // |R|×|R| -> index into meta, or -1
	spg    [][]int32 // |R|×|R| -> meta-edge ids on shortest meta-paths (nil = compute on the fly)
}

// NewMetaState freezes the meta-graph derived from a σ matrix. The
// matrix is copied; the deterministic edge order is row-major over pairs
// a < b, which Delta maintenance relies on for alignment.
func NewMetaState(R int, sigma []uint8) *MetaState {
	ms := &MetaState{R: R, sigma: make([]uint8, R*R), metaID: make([]int32, R*R)}
	copy(ms.sigma, sigma)
	for i := range ms.metaID {
		ms.metaID[i] = -1
	}
	for a := 0; a < R; a++ {
		for b := a + 1; b < R; b++ {
			if w := ms.sigma[a*R+b]; w != NoEntry {
				id := int32(len(ms.meta))
				ms.meta = append(ms.meta, metaEdge{a: a, b: b, weight: int32(w)})
				ms.metaID[a*R+b] = id
				ms.metaID[b*R+a] = id
			}
		}
	}
	ms.buildAPSP()
	ms.buildMetaSPG()
	return ms
}

// NumEdges returns the number of meta-edges.
func (ms *MetaState) NumEdges() int { return len(ms.meta) }

// Edge returns meta-edge k as landmark ranks a < b and weight σ(a, b).
func (ms *MetaState) Edge(k int) (a, b int, weight int32) {
	e := ms.meta[k]
	return e.a, e.b, e.weight
}

// EdgeID returns the meta-edge index for ranks (a, b), or -1.
func (ms *MetaState) EdgeID(a, b int) int32 { return ms.metaID[a*ms.R+b] }

// Sigma returns σ(a, b) (NoEntry when the meta-edge is absent).
func (ms *MetaState) Sigma(a, b int) uint8 { return ms.sigma[a*ms.R+b] }

// Dist returns d_M(a, b) (graph.InfDist when unreachable).
func (ms *MetaState) Dist(a, b int) int32 { return ms.distM[a*ms.R+b] }

// buildAPSP runs Floyd–Warshall over σ. |R| ≤ 254, so O(|R|³) is trivial.
func (ms *MetaState) buildAPSP() {
	R := ms.R
	ms.distM = make([]int32, R*R)
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			switch {
			case i == j:
				ms.distM[i*R+j] = 0
			case ms.sigma[i*R+j] != NoEntry:
				ms.distM[i*R+j] = int32(ms.sigma[i*R+j])
			default:
				ms.distM[i*R+j] = graph.InfDist
			}
		}
	}
	for k := 0; k < R; k++ {
		rowK := ms.distM[k*R : k*R+R]
		for i := 0; i < R; i++ {
			dik := ms.distM[i*R+k]
			if dik == graph.InfDist {
				continue
			}
			rowI := ms.distM[i*R : i*R+R]
			for j, dkj := range rowK {
				if dkj != graph.InfDist && dik+dkj < rowI[j] {
					rowI[j] = dik + dkj
				}
			}
		}
	}
}

// buildMetaSPG precomputes, for every landmark pair (i, j), the list of
// meta-edges on shortest i–j meta-paths. This is the §5.2 trick that
// drops per-query sketch expansion from O(|R|⁴) to table lookups. The
// precomputation is capped (degenerate metric meta-graphs could make the
// lists quadratic); past the cap the query path falls back to an
// on-the-fly scan.
func (ms *MetaState) buildMetaSPG() {
	const maxStored = 4 << 20 // ids; ~16 MB worst case
	R := ms.R
	ms.spg = make([][]int32, R*R)
	stored := 0
	// This pass is O(R²·|meta|) and independent of the graph size, so at
	// small scales it would otherwise dominate builds. Two reductions
	// keep it cheap: (1) the membership test factors through tightness —
	// edge (a,b,w) lies on a shortest i–j path iff it is tight from i
	// (d(i,a)+w = d(i,b)) and its far endpoint closes the path
	// (d(i,b)+d(b,j) = d(i,j)); tight edges are collected once per i and
	// reused across all j. (2) distM is symmetric, so d(·, j) reads from
	// row j. An edge is tight from i in at most one direction (weights
	// are ≥ 1), so each id is still emitted at most once, in ascending
	// order — the output is identical to the direct double test.
	type tightEdge struct {
		k    int32 // meta-edge id
		end  int32 // far endpoint rank (closes the path towards j)
		dist int32 // d(i, end) = d(i, near)+w
	}
	var tights []tightEdge
	for i := 0; i < R; i++ {
		rowI := ms.distM[i*R : i*R+R]
		tights = tights[:0]
		for k, e := range ms.meta {
			da, db := rowI[e.a], rowI[e.b]
			switch {
			case da != graph.InfDist && da+e.weight == db:
				tights = append(tights, tightEdge{int32(k), int32(e.b), db})
			case db != graph.InfDist && db+e.weight == da:
				tights = append(tights, tightEdge{int32(k), int32(e.a), da})
			}
		}
		for j := i + 1; j < R; j++ {
			d := rowI[j]
			if d == graph.InfDist {
				continue
			}
			rowJ := ms.distM[j*R : j*R+R]
			var ids []int32
			for _, te := range tights {
				if dj := rowJ[te.end]; dj != graph.InfDist && te.dist+dj == d {
					ids = append(ids, te.k)
				}
			}
			ms.spg[i*R+j] = ids
			ms.spg[j*R+i] = ids
			stored += len(ids)
			if stored > maxStored {
				ms.spg = nil
				return
			}
		}
	}
}

// metaSPGEdges returns the meta-edge ids on shortest i–j meta-paths,
// using the precomputed table when available.
func (ms *MetaState) metaSPGEdges(i, j int, buf []int32) []int32 {
	if ms.spg != nil {
		return ms.spg[i*ms.R+j]
	}
	buf = buf[:0]
	for k := range ms.meta {
		if ms.onMetaShortestPath(i, j, k) {
			buf = append(buf, int32(k))
		}
	}
	return buf
}

// onMetaShortestPath reports whether meta-edge k lies on some shortest
// path between landmark ranks i and j in M.
func (ms *MetaState) onMetaShortestPath(i, j, k int) bool {
	R := ms.R
	e := ms.meta[k]
	d := ms.distM[i*R+j]
	if d == graph.InfDist {
		return false
	}
	da, db := ms.distM[i*R+e.a], ms.distM[e.b*R+j]
	if da != graph.InfDist && db != graph.InfDist && da+e.weight+db == d {
		return true
	}
	da, db = ms.distM[i*R+e.b], ms.distM[e.a*R+j]
	return da != graph.InfDist && db != graph.InfDist && da+e.weight+db == d
}

// buildDelta recovers, for every meta-edge (a, b), the SPG between a and
// b in G. A non-landmark vertex w lies on a shortest a–b path that avoids
// other landmarks iff both label entries exist and δ_wa + δ_wb = σ(a, b);
// an edge (w, w') of such a path connects consecutive levels. Endpoint
// edges attach level-1 (resp. level σ−1) vertices to a (resp. b).
//
// The whole recovery costs one pass over label entries plus neighbour
// scans of candidate vertices — no BFS over G.
func (ix *Index) buildDelta() {
	g := ix.a
	R := ix.numLand
	n := g.NumVertices()
	meta := ix.ms.meta
	ix.delta = make([][]graph.Edge, len(meta))

	// σ = 1 meta-edges are just the direct edge.
	for k, e := range meta {
		if e.weight == 1 {
			ix.delta[k] = []graph.Edge{graph.Edge{U: ix.landmarks[e.a], W: ix.landmarks[e.b]}.Normalize()}
		}
	}

	// Pass 1: collect candidates per meta-edge. A candidate for (a, b)
	// needs δ_va + δ_vb = σ(a, b) with both terms ≥ 1, so an entry with
	// δ_va ≥ max_b σ(a, b) can never participate — on hub-dominated
	// graphs, where landmarks sit close together, that filter discards
	// almost every entry before the O(L²) pair loop. The column-major
	// label matrix is transposed into a row-major scratch so each
	// vertex's entries sit in one cache line, the surviving entries are
	// gathered into locals, and each pair costs one σ-matrix byte probe
	// (the meta-edge id is resolved only on the rare hit).
	sigma := ix.ms.sigma
	metaID := ix.ms.metaID
	maxSig := make([]uint8, R)
	for a := 0; a < R; a++ {
		for b := 0; b < R; b++ {
			if s := sigma[a*R+b]; s != NoEntry && s > maxSig[a] {
				maxSig[a] = s
			}
		}
	}
	rows := make([]uint8, n*R)
	for i := 0; i < R; i++ {
		col := ix.labels[i]
		for v := 0; v < n; v++ {
			rows[v*R+i] = col[v]
		}
	}
	cands := make([][]graph.V, len(meta))
	var ranks [256]int32
	var dists [256]int32
	for v := 0; v < n; v++ {
		nr := 0
		row := rows[v*R : v*R+R]
		for i, d := range row {
			if d != NoEntry && d < maxSig[i] {
				ranks[nr] = int32(i)
				dists[nr] = int32(d)
				nr++
			}
		}
		for x := 0; x < nr-1; x++ {
			row := int(ranks[x]) * R
			da := dists[x]
			for y := x + 1; y < nr; y++ {
				b := int(ranks[y])
				if sig := sigma[row+b]; sig != NoEntry && da+dists[y] == int32(sig) {
					cands[metaID[row+b]] = append(cands[metaID[row+b]], graph.V(v))
				}
			}
		}
	}

	// Pass 2: per meta-edge, stamp candidate levels and emit edges.
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	var deltaEdges int64
	for k, e := range meta {
		if e.weight == 1 {
			deltaEdges++
			continue
		}
		va, vb := ix.landmarks[e.a], ix.landmarks[e.b]
		for _, w := range cands[k] {
			level[w] = int32(ix.labels[e.a][w])
		}
		edges := ix.delta[k]
		for _, w := range cands[k] {
			lw := level[w]
			if lw == 1 {
				edges = append(edges, graph.Edge{U: va, W: w}.Normalize())
			}
			if lw == e.weight-1 {
				edges = append(edges, graph.Edge{U: w, W: vb}.Normalize())
			}
			for _, x := range g.Neighbors(w) {
				if level[x] == lw+1 {
					edges = append(edges, graph.Edge{U: w, W: x}.Normalize())
				}
			}
		}
		for _, w := range cands[k] {
			level[w] = -1
		}
		ix.delta[k] = DedupEdges(edges)
		deltaEdges += int64(len(ix.delta[k]))
	}
	ix.build.DeltaEdges = deltaEdges
}

// EnsureDelta builds Δ if construction skipped it (Options.SkipDelta).
func (ix *Index) EnsureDelta() {
	if ix.delta == nil {
		ix.buildDelta()
	}
}

// DedupEdges sorts a normalised edge list and removes duplicates in
// place. Shared with the dynamic subsystem, whose incrementally
// recomputed Δ lists must match buildDelta's output bit for bit.
func DedupEdges(edges []graph.Edge) []graph.Edge {
	if len(edges) < 2 {
		return edges
	}
	sortEdges(edges)
	out := edges[:1]
	for _, e := range edges[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

// sortEdges orders by (U, W) ascending. Short lists (most Δ lists on
// the bundled analogs) use an allocation-free insertion sort; longer
// ones are packed into uint64 keys and sorted with the specialised
// ordered-slice sort, several times faster than a comparator sort.
// Endpoints are non-negative, so the unsigned pack preserves order.
func sortEdges(edges []graph.Edge) {
	if len(edges) <= 32 {
		for i := 1; i < len(edges); i++ {
			e := edges[i]
			j := i - 1
			for j >= 0 && (edges[j].U > e.U || (edges[j].U == e.U && edges[j].W > e.W)) {
				edges[j+1] = edges[j]
				j--
			}
			edges[j+1] = e
		}
		return
	}
	keys := make([]uint64, len(edges))
	for i, e := range edges {
		keys[i] = uint64(uint32(e.U))<<32 | uint64(uint32(e.W))
	}
	slices.Sort(keys)
	for i, k := range keys {
		edges[i] = graph.Edge{U: int32(k >> 32), W: int32(uint32(k))}
	}
}
