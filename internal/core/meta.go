package core

import (
	"sort"

	"qbs/internal/graph"
)

// Meta-graph precomputation (§5.2): all-pairs shortest paths over the
// meta-graph M, and Δ — for each meta-edge (a, b), the shortest path
// graph between a and b in G, recovered from the labelling alone.
// These drop per-query sketch cost to O(|R|²) and let the recover search
// expand landmark-to-landmark segments without touching G.

// buildAPSP runs Floyd–Warshall over σ. |R| ≤ 254, so O(|R|³) is trivial.
func (ix *Index) buildAPSP() {
	R := ix.numLand
	ix.distM = make([]int32, R*R)
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			switch {
			case i == j:
				ix.distM[i*R+j] = 0
			case ix.sigma[i*R+j] != NoEntry:
				ix.distM[i*R+j] = int32(ix.sigma[i*R+j])
			default:
				ix.distM[i*R+j] = graph.InfDist
			}
		}
	}
	for k := 0; k < R; k++ {
		for i := 0; i < R; i++ {
			dik := ix.distM[i*R+k]
			if dik == graph.InfDist {
				continue
			}
			for j := 0; j < R; j++ {
				if dkj := ix.distM[k*R+j]; dkj != graph.InfDist && dik+dkj < ix.distM[i*R+j] {
					ix.distM[i*R+j] = dik + dkj
				}
			}
		}
	}
	ix.buildMetaSPG()
}

// buildMetaSPG precomputes, for every landmark pair (i, j), the list of
// meta-edges on shortest i–j meta-paths. This is the §5.2 trick that
// drops per-query sketch expansion from O(|R|⁴) to table lookups. The
// precomputation is capped (degenerate metric meta-graphs could make the
// lists quadratic); past the cap the query path falls back to an
// on-the-fly scan.
func (ix *Index) buildMetaSPG() {
	const maxStored = 4 << 20 // ids; ~16 MB worst case
	R := ix.numLand
	ix.metaSPG = make([][]int32, R*R)
	stored := 0
	for i := 0; i < R; i++ {
		for j := i + 1; j < R; j++ {
			if ix.distM[i*R+j] == graph.InfDist {
				continue
			}
			var ids []int32
			for k := range ix.meta {
				if ix.onMetaShortestPath(i, j, k) {
					ids = append(ids, int32(k))
				}
			}
			ix.metaSPG[i*R+j] = ids
			ix.metaSPG[j*R+i] = ids
			stored += len(ids)
			if stored > maxStored {
				ix.metaSPG = nil
				return
			}
		}
	}
}

// metaSPGEdges returns the meta-edge ids on shortest i–j meta-paths,
// using the precomputed table when available.
func (ix *Index) metaSPGEdges(i, j int, buf []int32) []int32 {
	if ix.metaSPG != nil {
		return ix.metaSPG[i*ix.numLand+j]
	}
	buf = buf[:0]
	for k := range ix.meta {
		if ix.onMetaShortestPath(i, j, k) {
			buf = append(buf, int32(k))
		}
	}
	return buf
}

// onMetaShortestPath reports whether meta-edge k lies on some shortest
// path between landmark ranks i and j in M.
func (ix *Index) onMetaShortestPath(i, j, k int) bool {
	R := ix.numLand
	e := ix.meta[k]
	d := ix.distM[i*R+j]
	if d == graph.InfDist {
		return false
	}
	da, db := ix.distM[i*R+e.a], ix.distM[e.b*R+j]
	if da != graph.InfDist && db != graph.InfDist && da+e.weight+db == d {
		return true
	}
	da, db = ix.distM[i*R+e.b], ix.distM[e.a*R+j]
	return da != graph.InfDist && db != graph.InfDist && da+e.weight+db == d
}

// buildDelta recovers, for every meta-edge (a, b), the SPG between a and
// b in G. A non-landmark vertex w lies on a shortest a–b path that avoids
// other landmarks iff both label entries exist and δ_wa + δ_wb = σ(a, b);
// an edge (w, w') of such a path connects consecutive levels. Endpoint
// edges attach level-1 (resp. level σ−1) vertices to a (resp. b). The
// whole recovery costs one pass over label entries plus neighbour scans
// of candidate vertices — no BFS over G.
func (ix *Index) buildDelta() {
	g := ix.g
	R := ix.numLand
	n := g.NumVertices()
	ix.delta = make([][]graph.Edge, len(ix.meta))

	// σ = 1 meta-edges are just the direct edge.
	for k, e := range ix.meta {
		if e.weight == 1 {
			ix.delta[k] = []graph.Edge{graph.Edge{U: ix.landmarks[e.a], W: ix.landmarks[e.b]}.Normalize()}
		}
	}

	// Pass 1: collect candidates per meta-edge.
	cands := make([][]graph.V, len(ix.meta))
	var ranks []int
	for v := 0; v < n; v++ {
		base := v * R
		ranks = ranks[:0]
		for i := 0; i < R; i++ {
			if ix.labels[base+i] != NoEntry {
				ranks = append(ranks, i)
			}
		}
		for x := 0; x < len(ranks); x++ {
			for y := x + 1; y < len(ranks); y++ {
				a, b := ranks[x], ranks[y]
				id := ix.metaID[a*R+b]
				if id < 0 {
					continue
				}
				da, db := int32(ix.labels[base+a]), int32(ix.labels[base+b])
				if da+db == ix.meta[id].weight {
					cands[id] = append(cands[id], graph.V(v))
				}
			}
		}
	}

	// Pass 2: per meta-edge, stamp candidate levels and emit edges.
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	var deltaEdges int64
	for k, e := range ix.meta {
		if e.weight == 1 {
			deltaEdges++
			continue
		}
		va, vb := ix.landmarks[e.a], ix.landmarks[e.b]
		for _, w := range cands[k] {
			level[w] = int32(ix.labels[int(w)*R+e.a])
		}
		edges := ix.delta[k]
		for _, w := range cands[k] {
			lw := level[w]
			if lw == 1 {
				edges = append(edges, graph.Edge{U: va, W: w}.Normalize())
			}
			if lw == e.weight-1 {
				edges = append(edges, graph.Edge{U: w, W: vb}.Normalize())
			}
			for _, x := range g.Neighbors(w) {
				if level[x] == lw+1 {
					edges = append(edges, graph.Edge{U: w, W: x}.Normalize())
				}
			}
		}
		for _, w := range cands[k] {
			level[w] = -1
		}
		ix.delta[k] = dedupEdgeList(edges)
		deltaEdges += int64(len(ix.delta[k]))
	}
	ix.build.DeltaEdges = deltaEdges
}

// EnsureDelta builds Δ if construction skipped it (Options.SkipDelta).
func (ix *Index) EnsureDelta() {
	if ix.delta == nil {
		ix.buildDelta()
	}
}

func dedupEdgeList(edges []graph.Edge) []graph.Edge {
	if len(edges) < 2 {
		return edges
	}
	sortEdges(edges)
	out := edges[:1]
	for _, e := range edges[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

func sortEdges(edges []graph.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].W < edges[j].W
	})
}
