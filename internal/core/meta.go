package core

import (
	"sort"

	"qbs/internal/graph"
)

// Meta-graph precomputation (§5.2): all-pairs shortest paths over the
// meta-graph M, and Δ — for each meta-edge (a, b), the shortest path
// graph between a and b in G, recovered from the labelling alone.
// These drop per-query sketch cost to O(|R|²) and let the recover search
// expand landmark-to-landmark segments without touching G.
//
// The meta-graph state is factored into its own immutable MetaState so
// the dynamic-update subsystem can share one instance across index
// snapshots and swap in a fresh one only when σ actually changes.

// MetaState is the immutable meta-graph bundle derived from σ: the edge
// list, the σ and APSP matrices, and the shortest-meta-path edge table.
// It is safe to share between index snapshots; all fields are frozen
// after NewMetaState.
type MetaState struct {
	R      int
	sigma  []uint8 // |R|×|R| meta-edge weights; NoEntry = no edge
	distM  []int32 // |R|×|R| APSP over M; graph.InfDist = unreachable
	meta   []metaEdge
	metaID []int32   // |R|×|R| -> index into meta, or -1
	spg    [][]int32 // |R|×|R| -> meta-edge ids on shortest meta-paths (nil = compute on the fly)
}

// NewMetaState freezes the meta-graph derived from a σ matrix. The
// matrix is copied; the deterministic edge order is row-major over pairs
// a < b, which Delta maintenance relies on for alignment.
func NewMetaState(R int, sigma []uint8) *MetaState {
	ms := &MetaState{R: R, sigma: make([]uint8, R*R), metaID: make([]int32, R*R)}
	copy(ms.sigma, sigma)
	for i := range ms.metaID {
		ms.metaID[i] = -1
	}
	for a := 0; a < R; a++ {
		for b := a + 1; b < R; b++ {
			if w := ms.sigma[a*R+b]; w != NoEntry {
				id := int32(len(ms.meta))
				ms.meta = append(ms.meta, metaEdge{a: a, b: b, weight: int32(w)})
				ms.metaID[a*R+b] = id
				ms.metaID[b*R+a] = id
			}
		}
	}
	ms.buildAPSP()
	ms.buildMetaSPG()
	return ms
}

// NumEdges returns the number of meta-edges.
func (ms *MetaState) NumEdges() int { return len(ms.meta) }

// Edge returns meta-edge k as landmark ranks a < b and weight σ(a, b).
func (ms *MetaState) Edge(k int) (a, b int, weight int32) {
	e := ms.meta[k]
	return e.a, e.b, e.weight
}

// EdgeID returns the meta-edge index for ranks (a, b), or -1.
func (ms *MetaState) EdgeID(a, b int) int32 { return ms.metaID[a*ms.R+b] }

// Sigma returns σ(a, b) (NoEntry when the meta-edge is absent).
func (ms *MetaState) Sigma(a, b int) uint8 { return ms.sigma[a*ms.R+b] }

// Dist returns d_M(a, b) (graph.InfDist when unreachable).
func (ms *MetaState) Dist(a, b int) int32 { return ms.distM[a*ms.R+b] }

// buildAPSP runs Floyd–Warshall over σ. |R| ≤ 254, so O(|R|³) is trivial.
func (ms *MetaState) buildAPSP() {
	R := ms.R
	ms.distM = make([]int32, R*R)
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			switch {
			case i == j:
				ms.distM[i*R+j] = 0
			case ms.sigma[i*R+j] != NoEntry:
				ms.distM[i*R+j] = int32(ms.sigma[i*R+j])
			default:
				ms.distM[i*R+j] = graph.InfDist
			}
		}
	}
	for k := 0; k < R; k++ {
		for i := 0; i < R; i++ {
			dik := ms.distM[i*R+k]
			if dik == graph.InfDist {
				continue
			}
			for j := 0; j < R; j++ {
				if dkj := ms.distM[k*R+j]; dkj != graph.InfDist && dik+dkj < ms.distM[i*R+j] {
					ms.distM[i*R+j] = dik + dkj
				}
			}
		}
	}
}

// buildMetaSPG precomputes, for every landmark pair (i, j), the list of
// meta-edges on shortest i–j meta-paths. This is the §5.2 trick that
// drops per-query sketch expansion from O(|R|⁴) to table lookups. The
// precomputation is capped (degenerate metric meta-graphs could make the
// lists quadratic); past the cap the query path falls back to an
// on-the-fly scan.
func (ms *MetaState) buildMetaSPG() {
	const maxStored = 4 << 20 // ids; ~16 MB worst case
	R := ms.R
	ms.spg = make([][]int32, R*R)
	stored := 0
	for i := 0; i < R; i++ {
		for j := i + 1; j < R; j++ {
			if ms.distM[i*R+j] == graph.InfDist {
				continue
			}
			var ids []int32
			for k := range ms.meta {
				if ms.onMetaShortestPath(i, j, k) {
					ids = append(ids, int32(k))
				}
			}
			ms.spg[i*R+j] = ids
			ms.spg[j*R+i] = ids
			stored += len(ids)
			if stored > maxStored {
				ms.spg = nil
				return
			}
		}
	}
}

// metaSPGEdges returns the meta-edge ids on shortest i–j meta-paths,
// using the precomputed table when available.
func (ms *MetaState) metaSPGEdges(i, j int, buf []int32) []int32 {
	if ms.spg != nil {
		return ms.spg[i*ms.R+j]
	}
	buf = buf[:0]
	for k := range ms.meta {
		if ms.onMetaShortestPath(i, j, k) {
			buf = append(buf, int32(k))
		}
	}
	return buf
}

// onMetaShortestPath reports whether meta-edge k lies on some shortest
// path between landmark ranks i and j in M.
func (ms *MetaState) onMetaShortestPath(i, j, k int) bool {
	R := ms.R
	e := ms.meta[k]
	d := ms.distM[i*R+j]
	if d == graph.InfDist {
		return false
	}
	da, db := ms.distM[i*R+e.a], ms.distM[e.b*R+j]
	if da != graph.InfDist && db != graph.InfDist && da+e.weight+db == d {
		return true
	}
	da, db = ms.distM[i*R+e.b], ms.distM[e.a*R+j]
	return da != graph.InfDist && db != graph.InfDist && da+e.weight+db == d
}

// buildDelta recovers, for every meta-edge (a, b), the SPG between a and
// b in G. A non-landmark vertex w lies on a shortest a–b path that avoids
// other landmarks iff both label entries exist and δ_wa + δ_wb = σ(a, b);
// an edge (w, w') of such a path connects consecutive levels. Endpoint
// edges attach level-1 (resp. level σ−1) vertices to a (resp. b). The
// whole recovery costs one pass over label entries plus neighbour scans
// of candidate vertices — no BFS over G.
func (ix *Index) buildDelta() {
	g := ix.a
	R := ix.numLand
	n := g.NumVertices()
	meta := ix.ms.meta
	ix.delta = make([][]graph.Edge, len(meta))

	// σ = 1 meta-edges are just the direct edge.
	for k, e := range meta {
		if e.weight == 1 {
			ix.delta[k] = []graph.Edge{graph.Edge{U: ix.landmarks[e.a], W: ix.landmarks[e.b]}.Normalize()}
		}
	}

	// Pass 1: collect candidates per meta-edge.
	cands := make([][]graph.V, len(meta))
	var ranks []int
	for v := 0; v < n; v++ {
		ranks = ranks[:0]
		for i := 0; i < R; i++ {
			if ix.labels[i][v] != NoEntry {
				ranks = append(ranks, i)
			}
		}
		for x := 0; x < len(ranks); x++ {
			for y := x + 1; y < len(ranks); y++ {
				a, b := ranks[x], ranks[y]
				id := ix.ms.metaID[a*R+b]
				if id < 0 {
					continue
				}
				da, db := int32(ix.labels[a][v]), int32(ix.labels[b][v])
				if da+db == meta[id].weight {
					cands[id] = append(cands[id], graph.V(v))
				}
			}
		}
	}

	// Pass 2: per meta-edge, stamp candidate levels and emit edges.
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	var deltaEdges int64
	for k, e := range meta {
		if e.weight == 1 {
			deltaEdges++
			continue
		}
		va, vb := ix.landmarks[e.a], ix.landmarks[e.b]
		for _, w := range cands[k] {
			level[w] = int32(ix.labels[e.a][w])
		}
		edges := ix.delta[k]
		for _, w := range cands[k] {
			lw := level[w]
			if lw == 1 {
				edges = append(edges, graph.Edge{U: va, W: w}.Normalize())
			}
			if lw == e.weight-1 {
				edges = append(edges, graph.Edge{U: w, W: vb}.Normalize())
			}
			for _, x := range g.Neighbors(w) {
				if level[x] == lw+1 {
					edges = append(edges, graph.Edge{U: w, W: x}.Normalize())
				}
			}
		}
		for _, w := range cands[k] {
			level[w] = -1
		}
		ix.delta[k] = DedupEdges(edges)
		deltaEdges += int64(len(ix.delta[k]))
	}
	ix.build.DeltaEdges = deltaEdges
}

// EnsureDelta builds Δ if construction skipped it (Options.SkipDelta).
func (ix *Index) EnsureDelta() {
	if ix.delta == nil {
		ix.buildDelta()
	}
}

// DedupEdges sorts a normalised edge list and removes duplicates in
// place. Shared with the dynamic subsystem, whose incrementally
// recomputed Δ lists must match buildDelta's output bit for bit.
func DedupEdges(edges []graph.Edge) []graph.Edge {
	if len(edges) < 2 {
		return edges
	}
	sortEdges(edges)
	out := edges[:1]
	for _, e := range edges[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

func sortEdges(edges []graph.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].W < edges[j].W
	})
}
