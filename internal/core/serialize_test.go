package core

import (
	"bytes"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

func TestIndexRoundTrip(t *testing.T) {
	g := connected(graph.BarabasiAlbert(300, 3, 31))
	orig := MustBuild(g, Options{NumLandmarks: 12})
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical core state.
	if loaded.numLand != orig.numLand {
		t.Fatal("landmark count changed")
	}
	for i := range orig.landmarks {
		if loaded.landmarks[i] != orig.landmarks[i] {
			t.Fatal("landmarks changed")
		}
	}
	for i := range orig.labels {
		for v := range orig.labels[i] {
			if loaded.labels[i][v] != orig.labels[i][v] {
				t.Fatal("labels changed")
			}
		}
	}
	for i := range orig.ms.sigma {
		if loaded.ms.sigma[i] != orig.ms.sigma[i] {
			t.Fatal("meta σ changed")
		}
	}
	for i := range orig.ms.distM {
		if loaded.ms.distM[i] != orig.ms.distM[i] {
			t.Fatal("APSP changed")
		}
	}
	if loaded.build.DeltaEdges != orig.build.DeltaEdges {
		t.Fatalf("Δ edges: %d vs %d", loaded.build.DeltaEdges, orig.build.DeltaEdges)
	}
	// Identical answers.
	sa, sb := NewSearcher(orig), NewSearcher(loaded)
	for _, p := range samplePairs(g, 80, 3) {
		a, b := sa.Query(p[0], p[1]), sb.Query(p[0], p[1])
		if !a.Equal(b) {
			t.Fatalf("loaded index answers differ for %v", p)
		}
		if !a.Equal(bfs.OracleSPG(g, p[0], p[1])) {
			t.Fatalf("loaded index wrong for %v", p)
		}
	}
}

func TestLoadRejectsWrongGraph(t *testing.T) {
	g := connected(graph.ErdosRenyi(100, 220, 7))
	ix := MustBuild(g, Options{NumLandmarks: 5})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	other := graph.Path(50)
	if _, err := Load(other, &buf); err == nil {
		t.Fatal("index loaded against a different graph")
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	g := graph.Cycle(20)
	ix := MustBuild(g, Options{NumLandmarks: 4})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Load(g, bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	short := data[:len(data)-4]
	if _, err := Load(g, bytes.NewReader(short)); err == nil {
		t.Fatal("truncated index accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := connected(graph.WattsStrogatz(80, 4, 0.2, 5))
	ix := MustBuild(g, Options{NumLandmarks: 6})
	path := t.TempDir() + "/index.qbsi"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(g, path)
	if err != nil {
		t.Fatal(err)
	}
	sr := NewSearcher(loaded)
	for _, p := range samplePairs(g, 40, 9) {
		if !sr.Query(p[0], p[1]).Equal(bfs.OracleSPG(g, p[0], p[1])) {
			t.Fatalf("file round trip wrong for %v", p)
		}
	}
}
