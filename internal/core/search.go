package core

import (
	"time"

	"qbs/internal/bfs"
	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// Guided search (Algorithm 4): answer SPG(u, v) by a sketch-bounded
// bidirectional BFS over the sparsified graph G⁻ = G[V\R] (represented
// implicitly — landmark neighbours are skipped), followed by a reverse
// search extracting G⁻_uv and/or a recover search extracting G^L_uv (the
// shortest paths through landmarks), combined per Eq. 5:
//
//	d_G⁻(u,v) > d⊤  →  G^L only
//	d_G⁻(u,v) = d⊤  →  G⁻_uv ∪ G^L
//	d_G⁻(u,v) < d⊤  →  G⁻_uv only
//
// A Searcher carries reusable workspaces; create one per goroutine.

// CoverageCase classifies a query for the pair-coverage experiment
// (Figure 8): whether all, some-but-not-all, or none of the shortest
// paths between the pair pass through at least one landmark.
type CoverageCase uint8

const (
	// CoverageNone: no shortest path visits a landmark (d⊤ > d_G).
	CoverageNone CoverageCase = iota
	// CoverageSome: shortest paths exist both through and avoiding
	// landmarks (d⊤ = d_G⁻ = d_G).
	CoverageSome
	// CoverageAll: every shortest path visits a landmark
	// (d_G⁻ > d⊤ = d_G). Queries with a landmark endpoint fall here.
	CoverageAll
	// CoverageTrivial: u = v or the pair is disconnected.
	CoverageTrivial
)

// QueryStats reports per-query internals used by the experiments and
// the observability layer. It is filled as an out-param on the warm
// path: plain fields, no allocation.
type QueryStats struct {
	Dist        int32 // d_G(u, v); graph.InfDist if disconnected
	DGMinus     int32 // d_G⁻(u, v) as established by the search (InfDist if > d⊤ or unknown)
	DTop        int32 // d⊤_uv from the sketch
	ArcsScanned int64 // adjacency entries examined across all stages
	SketchPairs int   // number of minimizing landmark pairs
	UsedReverse bool  // reverse search ran (G⁻ paths exist at distance d)
	UsedRecover bool  // recover search ran (through-landmark paths exist at distance d)
	Coverage    CoverageCase

	// Engine counters surfaced from the traversal machinery.
	LabelEntries     int64 // label entries of u and v scanned by the sketch
	FrontierWords    int64 // visited-bitmap words swept by bottom-up expansion
	PushPullSwitches int64 // top-down ↔ bottom-up direction switches
	ParallelLevels   int64 // expansion levels run on the worker pool
	ParallelChunks   int64 // frontier chunks claimed by pool workers
	ParallelSteals   int64 // chunks claimed outside a worker's static share

	// Stage spans (monotonic-clock nanoseconds).
	SketchNs  int64 // sketch assembly (Algorithm 3)
	ExpandNs  int64 // sketch-guided bidirectional BFS
	ExtractNs int64 // reverse/recover path extraction
}

// Searcher answers queries against a fixed Index. Not safe for
// concurrent use; create one per goroutine (they share the immutable
// Index).
type Searcher struct {
	ix  *Index
	g   graph.Adjacency
	deg []int32 // cached degree array (nil for dynamic snapshots)

	fwd, bwd searchSide
	ext      *bfs.Extractor // reverse extraction with reusable buffers
	walkMark *bfs.Workspace // scratch for label walks
	meet     []graph.V
	metaBuf  []int32
	distSPG  *graph.SPG // scratch result for Distance (never escapes)

	// sketch buffers
	entU, entV   []SketchEndpoint
	pairs        []SketchPair
	sideSigmaU   []int32 // per landmark rank: σ_S at u, -1 if absent
	sideSigmaV   []int32
	sideRanksU   []int
	sideRanksV   []int
	metaGen      []uint32 // per meta-edge dedup generation
	metaCur      uint32
	walkCur      []graph.V
	walkNext     []graph.V
	recoverStart []graph.V
}

// searchSide is one direction of the bidirectional search: an
// epoch-stamped depth map, a direction-optimizing expander and an arena
// of visited vertices grouped into levels
// (level i = arena[levelOff[i]:levelOff[i+1]]).
type searchSide struct {
	ws       *bfs.Workspace
	exp      *traverse.Expander
	arena    []graph.V
	levelOff []int32
	d        int32 // completed levels
}

func (s *searchSide) reset(t graph.V) {
	s.ws.Reset()
	s.ws.SetDist(t, 0)
	s.arena = append(s.arena[:0], t)
	s.levelOff = append(s.levelOff[:0], 0, 1)
	s.d = 0
}

func (s *searchSide) level(i int32) []graph.V {
	return s.arena[s.levelOff[i]:s.levelOff[i+1]]
}

func (s *searchSide) frontier() []graph.V { return s.level(s.d) }

func (s *searchSide) visited() int { return len(s.arena) }

// NewSearcher creates a query workspace for ix.
func NewSearcher(ix *Index) *Searcher {
	ix.EnsureDelta()
	n := ix.a.NumVertices()
	R := ix.numLand
	sr := &Searcher{
		ix:         ix,
		g:          ix.a,
		deg:        ix.degs,
		ext:        bfs.NewExtractor(n),
		walkMark:   bfs.NewWorkspace(n),
		sideSigmaU: make([]int32, R),
		sideSigmaV: make([]int32, R),
		metaGen:    make([]uint32, len(ix.ms.meta)),
		distSPG:    graph.NewSPG(0, 0),
	}
	sr.fwd.ws = bfs.NewWorkspace(n)
	sr.bwd.ws = bfs.NewWorkspace(n)
	sr.fwd.exp = traverse.NewExpander(n)
	sr.bwd.exp = traverse.NewExpander(n)
	for i := 0; i < R; i++ {
		sr.sideSigmaU[i] = -1
		sr.sideSigmaV[i] = -1
	}
	return sr
}

// SetParallelism runs this searcher's guided expansions on p traverse
// pool workers when a level is large enough to pay for the fan-out
// (see traverse.Expander.Parallelism). Query results are bit-identical
// at every setting; the default 0 keeps expansion sequential, which is
// the right call for servers answering many queries concurrently —
// intra-query parallelism only helps latency when cores are idle.
func (sr *Searcher) SetParallelism(p int) {
	sr.fwd.exp.Parallelism = p
	sr.bwd.exp.Parallelism = p
}

// Rebind points the searcher at another index over the same vertex set
// and landmark count — consecutive snapshots of a dynamic index — so
// pooled workspaces survive snapshot turnover instead of being
// reallocated per update. It reports whether the new index is
// compatible; on false the searcher is unchanged and the caller should
// allocate a fresh one.
func (sr *Searcher) Rebind(ix *Index) bool {
	if sr.ix == ix {
		return true
	}
	if ix.a.NumVertices() != sr.ix.a.NumVertices() || ix.numLand != sr.ix.numLand {
		return false
	}
	ix.EnsureDelta()
	sr.ix = ix
	sr.g = ix.a
	sr.deg = ix.degs
	if len(sr.metaGen) < len(ix.ms.meta) {
		sr.metaGen = make([]uint32, len(ix.ms.meta))
		sr.metaCur = 0
	}
	return true
}

// Query answers SPG(u, v).
func (sr *Searcher) Query(u, v graph.V) *graph.SPG {
	spg := graph.NewSPG(u, v)
	sr.query(spg, u, v, true)
	return spg
}

// QueryInto answers SPG(u, v) into a caller-owned result, resetting it
// first. Reusing one SPG across queries makes the warm query path
// allocation-free (the edge buffer is recycled at its high-water mark).
//
//qbs:zeroalloc
func (sr *Searcher) QueryInto(spg *graph.SPG, u, v graph.V) QueryStats {
	spg.Reset(u, v)
	return sr.query(spg, u, v, true)
}

// Distance returns d_G(u, v) using the same sketch-guided machinery but
// skipping path extraction. It does not allocate on the warm path.
func (sr *Searcher) Distance(u, v graph.V) int32 {
	sr.distSPG.Reset(u, v)
	st := sr.query(sr.distSPG, u, v, false)
	return st.Dist
}

// QueryWithStats answers SPG(u, v) and reports query internals.
func (sr *Searcher) QueryWithStats(u, v graph.V) (*graph.SPG, QueryStats) {
	spg := graph.NewSPG(u, v)
	st := sr.query(spg, u, v, true)
	return spg, st
}

func (sr *Searcher) query(spg *graph.SPG, u, v graph.V, extract bool) QueryStats {
	g := sr.g
	ix := sr.ix
	var st QueryStats
	st.DGMinus = graph.InfDist
	if u == v {
		spg.Dist = 0
		st.Dist = 0
		st.Coverage = CoverageTrivial
		return st
	}

	// Sketching (Algorithm 3).
	t0 := time.Now()
	dTop, dStarU, dStarV := sr.computeSketch(u, v)
	st.DTop = dTop
	st.SketchPairs = len(sr.pairs)
	st.LabelEntries = int64(len(sr.entU) + len(sr.entV))
	t1 := time.Now()
	st.SketchNs = t1.Sub(t0).Nanoseconds()

	// Guided bidirectional search on G⁻ (skipped when an endpoint is a
	// landmark: every u–v path then trivially "passes through" it, so the
	// answer is entirely G^L).
	uLand := ix.landIdx[u] >= 0
	vLand := ix.landIdx[v] >= 0
	sr.fwd.reset(u)
	sr.bwd.reset(v)
	var meet []graph.V
	if !uLand && !vLand {
		sr.fwd.exp.Begin(g, sr.deg)
		sr.bwd.exp.Begin(g, sr.deg)
		// Pre-stamp landmarks with a sentinel depth so the expansion
		// loop skips them with a single stamp check — this is the
		// implicit G⁻ = G[V\R], honoured identically by the expander's
		// top-down and bottom-up directions.
		for _, r := range ix.landmarks {
			sr.fwd.ws.SetDist(r, -1)
			sr.bwd.ws.SetDist(r, -1)
		}
		meet = sr.bidirectional(dTop, dStarU, dStarV, &st)
		st.FrontierWords = sr.fwd.exp.WordsSwept + sr.bwd.exp.WordsSwept
		st.PushPullSwitches = sr.fwd.exp.Switches + sr.bwd.exp.Switches
		st.ParallelLevels = sr.fwd.exp.ParallelLevels + sr.bwd.exp.ParallelLevels
		st.ParallelChunks = sr.fwd.exp.ParallelChunks + sr.bwd.exp.ParallelChunks
		st.ParallelSteals = sr.fwd.exp.ParallelSteals + sr.bwd.exp.ParallelSteals
	}
	if len(meet) > 0 {
		st.DGMinus = sr.fwd.d + sr.bwd.d
	}
	t2 := time.Now()
	st.ExpandNs = t2.Sub(t1).Nanoseconds()

	dist := dTop
	if st.DGMinus < dist {
		dist = st.DGMinus
	}
	st.Dist = dist
	spg.Dist = dist
	if dist == graph.InfDist {
		st.Coverage = CoverageTrivial
		sr.releaseSketch()
		return st
	}

	// Eq. 5: reverse and/or recover.
	if st.DGMinus == dist && len(meet) > 0 {
		st.UsedReverse = true
		if extract {
			cut := meet[:0]
			for _, w := range meet {
				if sr.fwd.ws.Dist(w)+sr.bwd.ws.Dist(w) == dist {
					cut = append(cut, w)
				}
			}
			st.ArcsScanned += sr.ext.Extract(g, spg, cut, sr.fwd.ws)
			st.ArcsScanned += sr.ext.Extract(g, spg, cut, sr.bwd.ws)
		}
	}
	if dTop == dist {
		st.UsedRecover = true
		if extract {
			sr.recover(spg, &st)
		}
	}

	st.ExtractNs = time.Since(t2).Nanoseconds()

	switch {
	case dTop > dist:
		st.Coverage = CoverageNone
	case st.DGMinus == dist:
		st.Coverage = CoverageSome
	default:
		st.Coverage = CoverageAll
	}
	sr.releaseSketch()
	return st
}

// computeSketch fills the searcher's sketch buffers and returns
// (d⊤, d*_u, d*_v). releaseSketch must be called before the next query.
func (sr *Searcher) computeSketch(u, v graph.V) (dTop, dStarU, dStarV int32) {
	ix := sr.ix
	R := ix.numLand
	sr.entU = ix.entryList(u, sr.entU)
	sr.entV = ix.entryList(v, sr.entV)
	sr.pairs = sr.pairs[:0]
	dTop = graph.InfDist
	for _, eu := range sr.entU {
		row := eu.Rank * R
		for _, ev := range sr.entV {
			dm := ix.ms.distM[row+ev.Rank]
			if dm == graph.InfDist {
				continue
			}
			if pi := eu.Sigma + dm + ev.Sigma; pi < dTop {
				dTop = pi
			}
		}
	}
	if dTop == graph.InfDist {
		return dTop, 0, 0
	}
	for _, eu := range sr.entU {
		row := eu.Rank * R
		for _, ev := range sr.entV {
			dm := ix.ms.distM[row+ev.Rank]
			if dm == graph.InfDist || eu.Sigma+dm+ev.Sigma != dTop {
				continue
			}
			sr.pairs = append(sr.pairs, SketchPair{R: eu.Rank, RPrime: ev.Rank})
			if sr.sideSigmaU[eu.Rank] < 0 {
				sr.sideSigmaU[eu.Rank] = eu.Sigma
				sr.sideRanksU = append(sr.sideRanksU, eu.Rank)
				if eu.Sigma-1 > dStarU {
					dStarU = eu.Sigma - 1
				}
			}
			if sr.sideSigmaV[ev.Rank] < 0 {
				sr.sideSigmaV[ev.Rank] = ev.Sigma
				sr.sideRanksV = append(sr.sideRanksV, ev.Rank)
				if ev.Sigma-1 > dStarV {
					dStarV = ev.Sigma - 1
				}
			}
		}
	}
	return dTop, dStarU, dStarV
}

func (sr *Searcher) releaseSketch() {
	for _, r := range sr.sideRanksU {
		sr.sideSigmaU[r] = -1
	}
	for _, r := range sr.sideRanksV {
		sr.sideSigmaV[r] = -1
	}
	sr.sideRanksU = sr.sideRanksU[:0]
	sr.sideRanksV = sr.sideRanksV[:0]
}

// bidirectional runs the sketch-guided bidirectional BFS over G⁻ and
// returns the meeting vertices (empty if the searches exhausted or hit
// the d⊤ bound first). Side choice follows the paper: prefer the side
// whose bound d* has not been reached; tie-break on visited-set size.
func (sr *Searcher) bidirectional(dTop, dStarU, dStarV int32, st *QueryStats) []graph.V {
	meet := sr.meet[:0]
	defer func() { sr.meet = meet[:0] }()
	for dTop == graph.InfDist || sr.fwd.d+sr.bwd.d < dTop {
		uWant := dStarU > sr.fwd.d && len(sr.fwd.frontier()) > 0
		vWant := dStarV > sr.bwd.d && len(sr.bwd.frontier()) > 0
		var side, other *searchSide
		switch {
		case uWant && !vWant:
			side, other = &sr.fwd, &sr.bwd
		case vWant && !uWant:
			side, other = &sr.bwd, &sr.fwd
		case sr.fwd.visited() <= sr.bwd.visited():
			side, other = &sr.fwd, &sr.bwd
		default:
			side, other = &sr.bwd, &sr.fwd
		}
		if len(side.frontier()) == 0 {
			side, other = other, side
			if len(side.frontier()) == 0 {
				return nil // G⁻ exhausted: d_G⁻ = ∞
			}
		}
		sr.expand(side, st)
		for _, w := range side.frontier() {
			if other.ws.Seen(w) {
				meet = append(meet, w)
			}
		}
		if len(meet) > 0 {
			return meet
		}
	}
	return nil
}

// expand grows side by one level over G⁻ through the
// direction-optimizing expander. Landmarks carry a sentinel stamp from
// query setup, so a single Seen check skips both previously visited
// vertices and the removed landmarks in either direction.
func (sr *Searcher) expand(side *searchSide, st *QueryStats) {
	var arcs int64
	side.arena, arcs = side.exp.Expand(side.ws, side.frontier(), side.d, side.arena)
	st.ArcsScanned += arcs
	side.levelOff = append(side.levelOff, int32(len(side.arena)))
	side.d++
}

// recover computes G^L_uv: for each sketch endpoint edge (r, t), find the
// attachment vertices Z (closest-to-r vertices the search reached on
// shortest t–r paths), walk them back to t over the search depths and
// forward to r over the labelling; then expand every sketch meta-edge
// from the precomputed Δ.
func (sr *Searcher) recover(spg *graph.SPG, st *QueryStats) {
	g := sr.g
	ix := sr.ix

	sides := [2]struct {
		side  *searchSide
		land  bool
		ranks []int
		sigma []int32
	}{
		{&sr.fwd, ix.landIdx[spg.Source] >= 0, sr.sideRanksU, sr.sideSigmaU},
		{&sr.bwd, ix.landIdx[spg.Target] >= 0, sr.sideRanksV, sr.sideSigmaV},
	}
	for _, sd := range sides {
		if sd.land {
			continue // landmark endpoint: the meta-path starts at it directly
		}
		for _, rank := range sd.ranks {
			sigma := sd.sigma[rank]
			if sigma < 1 {
				// A non-landmark endpoint always has σ_S ≥ 1; this guards
				// against corrupted label bytes from an untrusted snapshot.
				continue
			}
			dm := sigma - 1
			if sd.side.d < dm {
				dm = sd.side.d
			}
			want := uint8(sigma - dm)
			starts := sr.recoverStart[:0]
			for _, w := range sd.side.level(dm) {
				if ix.labels[rank][w] == want {
					starts = append(starts, w)
				}
			}
			sr.recoverStart = starts
			if len(starts) == 0 {
				continue
			}
			st.ArcsScanned += sr.ext.Extract(g, spg, starts, sd.side.ws)
			sr.labelWalk(spg, starts, rank, int32(want), st)
		}
	}

	// Meta-edges on shortest meta-paths of minimizing pairs → Δ edges.
	sr.metaCur++
	for _, p := range sr.pairs {
		if p.R == p.RPrime {
			continue
		}
		sr.metaBuf = sr.ix.ms.metaSPGEdges(p.R, p.RPrime, sr.metaBuf)
		for _, k := range sr.metaBuf {
			if sr.metaGen[k] == sr.metaCur {
				continue
			}
			sr.metaGen[k] = sr.metaCur
			for _, e := range ix.delta[k] {
				spg.AddEdge(e.U, e.W)
			}
		}
	}
}

// labelWalk adds all shortest paths from each start vertex to landmark
// rank, walking label distances down to 1 and finally attaching to the
// landmark itself. Interior vertices are non-landmarks by construction of
// the labelling.
func (sr *Searcher) labelWalk(spg *graph.SPG, starts []graph.V, rank int, delta int32, st *QueryStats) {
	g := sr.g
	ix := sr.ix
	rv := ix.landmarks[rank]
	sr.walkMark.Reset()
	cur := sr.walkCur[:0]
	for _, w := range starts {
		if !sr.walkMark.Seen(w) {
			sr.walkMark.SetDist(w, 0)
			cur = append(cur, w)
		}
	}
	for ; delta > 1; delta-- {
		next := sr.walkNext[:0]
		want := uint8(delta - 1)
		for _, x := range cur {
			for _, y := range g.Neighbors(x) {
				st.ArcsScanned++
				if ix.landIdx[y] >= 0 {
					continue
				}
				if ix.labels[rank][y] == want {
					spg.AddEdge(x, y)
					if !sr.walkMark.Seen(y) {
						sr.walkMark.SetDist(y, 0)
						next = append(next, y)
					}
				}
			}
		}
		sr.walkNext = cur[:0]
		cur = next
	}
	for _, x := range cur {
		spg.AddEdge(x, rv)
	}
	sr.walkCur = cur[:0]
}
