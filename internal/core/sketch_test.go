package core

import (
	"math/rand"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

// Tests for the sketching phase (Algorithm 3) beyond the upper-bound
// property covered in search_test.go.

func TestSketchMinimizingPairsAreExact(t *testing.T) {
	// Every reported pair must achieve d⊤ exactly, and every achieving
	// label pair must be reported.
	g := connected(graph.BarabasiAlbert(200, 3, 71))
	ix := MustBuild(g, Options{NumLandmarks: 10})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		if u == v {
			continue
		}
		sk := ix.Sketch(u, v)
		if sk.DTop == graph.InfDist {
			continue
		}
		seen := map[SketchPair]bool{}
		for _, p := range sk.Pairs {
			seen[p] = true
			du, okU := labelOrVirtual(ix, u, p.R)
			dv, okV := labelOrVirtual(ix, v, p.RPrime)
			if !okU || !okV {
				t.Fatalf("pair %v references missing labels", p)
			}
			if got := du + ix.MetaDist(p.R, p.RPrime) + dv; got != sk.DTop {
				t.Fatalf("pair %v gives %d, want d⊤=%d", p, got, sk.DTop)
			}
		}
		// Exhaustive: all achieving pairs reported.
		for ri := 0; ri < ix.NumLandmarks(); ri++ {
			du, okU := labelOrVirtual(ix, u, ri)
			if !okU {
				continue
			}
			for rj := 0; rj < ix.NumLandmarks(); rj++ {
				dv, okV := labelOrVirtual(ix, v, rj)
				if !okV {
					continue
				}
				dm := ix.MetaDist(ri, rj)
				if dm == graph.InfDist {
					continue
				}
				if du+dm+dv == sk.DTop && !seen[SketchPair{R: ri, RPrime: rj}] {
					t.Fatalf("achieving pair (%d,%d) missing from sketch", ri, rj)
				}
			}
		}
	}
}

func labelOrVirtual(ix *Index, t graph.V, rank int) (int32, bool) {
	if ix.IsLandmark(t) {
		if int(ix.landIdx[t]) == rank {
			return 0, true
		}
		return 0, false
	}
	return ix.LabelEntry(t, rank)
}

func TestSketchDStarBounds(t *testing.T) {
	// Eq. 4: d*_t = max σ_S(r, t) − 1 over sketch endpoints.
	g := connected(graph.ErdosRenyi(150, 400, 81))
	ix := MustBuild(g, Options{NumLandmarks: 8})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 80; i++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		sk := ix.Sketch(u, v)
		var wantU, wantV int32
		for _, e := range sk.USide {
			if e.Sigma-1 > wantU {
				wantU = e.Sigma - 1
			}
		}
		for _, e := range sk.VSide {
			if e.Sigma-1 > wantV {
				wantV = e.Sigma - 1
			}
		}
		if sk.DStarU != wantU || sk.DStarV != wantV {
			t.Fatalf("d* mismatch: got (%d,%d) want (%d,%d)", sk.DStarU, sk.DStarV, wantU, wantV)
		}
	}
}

func TestSketchMetaEdgesLieOnShortestMetaPaths(t *testing.T) {
	g := connected(graph.WattsStrogatz(200, 6, 0.1, 13))
	ix := MustBuild(g, Options{NumLandmarks: 12})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		sk := ix.Sketch(u, v)
		for _, k := range sk.MetaEdges {
			ok := false
			for _, p := range sk.Pairs {
				if p.R != p.RPrime && ix.ms.onMetaShortestPath(p.R, p.RPrime, k) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("sketch meta edge %d not on any minimizing pair's meta path", k)
			}
		}
	}
}

func TestMetaSPGPrecomputeMatchesOnTheFly(t *testing.T) {
	g := connected(graph.BarabasiAlbert(300, 4, 17))
	ix := MustBuild(g, Options{NumLandmarks: 16})
	if ix.ms.spg == nil {
		t.Skip("precompute capped out (unexpected at this size)")
	}
	R := ix.numLand
	var buf []int32
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			if i == j || ix.ms.distM[i*R+j] == graph.InfDist {
				continue
			}
			want := map[int32]bool{}
			for k := range ix.ms.meta {
				if ix.ms.onMetaShortestPath(i, j, k) {
					want[int32(k)] = true
				}
			}
			got := ix.ms.metaSPGEdges(i, j, buf)
			if len(got) != len(want) {
				t.Fatalf("pair (%d,%d): %d precomputed vs %d on-the-fly", i, j, len(got), len(want))
			}
			for _, k := range got {
				if !want[k] {
					t.Fatalf("pair (%d,%d): spurious meta edge %d", i, j, k)
				}
			}
		}
	}
}

func TestSketchTrivialPairs(t *testing.T) {
	g := graph.Star(10)
	ix := MustBuild(g, Options{NumLandmarks: 1}) // centre is the landmark
	sk := ix.Sketch(1, 2)
	if sk.DTop != 2 {
		t.Fatalf("star spokes d⊤ = %d, want 2", sk.DTop)
	}
	sk = ix.Sketch(0, 5) // landmark endpoint
	if sk.DTop != 1 {
		t.Fatalf("landmark to spoke d⊤ = %d, want 1", sk.DTop)
	}
}

func TestEntryListVirtualLandmark(t *testing.T) {
	g := graph.Cycle(8)
	ix := MustBuild(g, Options{Landmarks: []graph.V{3}})
	es := ix.entryList(3, nil)
	if len(es) != 1 || es[0].Rank != 0 || es[0].Sigma != 0 {
		t.Fatalf("virtual entry = %+v", es)
	}
}

func TestSearchStatsTraversalBounded(t *testing.T) {
	// Arcs scanned by a QbS query must be well below a full-graph scan
	// on a hub-dominated graph (the §6.5 efficiency argument).
	g := connected(graph.BarabasiAlbert(2000, 4, 99))
	ix := MustBuild(g, Options{NumLandmarks: 20})
	sr := NewSearcher(ix)
	rng := rand.New(rand.NewSource(17))
	var qbsArcs int64
	var bibArcs int64
	bib := bfs.NewBidirectional(g)
	for i := 0; i < 200; i++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		_, st := sr.QueryWithStats(u, v)
		qbsArcs += st.ArcsScanned
		_, st2 := bib.Query(u, v)
		bibArcs += st2.ArcsScanned
	}
	if qbsArcs >= bibArcs {
		t.Fatalf("QbS scanned %d arcs vs Bi-BFS %d: sparsification+sketch must reduce traversal", qbsArcs, bibArcs)
	}
}
