package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"qbs/internal/graph"
)

// Index serialization. The on-disk format stores the minimal
// reconstruction state — landmarks, the label matrix, and the meta-graph
// edges — and recomputes the derived structures (APSP, meta-SPG table,
// Δ) on load; they derive deterministically from the stored state and
// the graph (Lemma 5.2), and recomputation is much cheaper than the
// landmark BFSes. The graph itself is not embedded: Load takes the same
// graph the index was built over and validates vertex/arc counts.

const indexMagic = "QBSI"
const indexVersion = 1

// Write serialises the index.
func (ix *Index) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	hdr := []int64{
		indexVersion,
		int64(ix.g.NumVertices()),
		int64(ix.g.NumArcs()),
		int64(ix.numLand),
		int64(len(ix.meta)),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, ix.landmarks); err != nil {
		return err
	}
	if _, err := bw.Write(ix.labels); err != nil {
		return err
	}
	for _, e := range ix.meta {
		rec := [3]int32{int32(e.a), int32(e.b), e.weight}
		if err := binary.Write(bw, binary.LittleEndian, rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load deserialises an index previously written with Write, binding it
// to g (which must be the graph the index was built over).
func Load(g *graph.Graph, r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("core: bad index magic %q", magic)
	}
	var version, nV, nArcs, nLand, nMeta int64
	for _, p := range []*int64{&version, &nV, &nArcs, &nLand, &nMeta} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != indexVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", version)
	}
	if int(nV) != g.NumVertices() || int(nArcs) != g.NumArcs() {
		return nil, fmt.Errorf("core: index was built over a graph with |V|=%d arcs=%d, got |V|=%d arcs=%d",
			nV, nArcs, g.NumVertices(), g.NumArcs())
	}
	if nLand < 0 || nLand > 254 || nMeta < 0 || nMeta > nLand*nLand {
		return nil, fmt.Errorf("core: corrupt index header")
	}
	ix := &Index{
		g:         g,
		numLand:   int(nLand),
		landmarks: make([]graph.V, nLand),
		landIdx:   make([]int16, g.NumVertices()),
	}
	if err := binary.Read(br, binary.LittleEndian, ix.landmarks); err != nil {
		return nil, err
	}
	for i := range ix.landIdx {
		ix.landIdx[i] = -1
	}
	for i, r := range ix.landmarks {
		if r < 0 || int(r) >= g.NumVertices() {
			return nil, fmt.Errorf("core: corrupt landmark %d", r)
		}
		ix.landIdx[r] = int16(i)
	}
	ix.labels = make([]uint8, int(nV)*int(nLand))
	if _, err := io.ReadFull(br, ix.labels); err != nil {
		return nil, err
	}
	metas := make([]metaEdge, nMeta)
	for i := range metas {
		var rec [3]int32
		if err := binary.Read(br, binary.LittleEndian, rec[:]); err != nil {
			return nil, err
		}
		if rec[0] < 0 || rec[1] <= rec[0] || int(rec[1]) >= ix.numLand || rec[2] <= 0 || rec[2] > 254 {
			return nil, fmt.Errorf("core: corrupt meta edge %v", rec)
		}
		metas[i] = metaEdge{a: int(rec[0]), b: int(rec[1]), weight: rec[2]}
	}
	ix.finishMeta(metas)
	if len(ix.meta) != int(nMeta) {
		return nil, fmt.Errorf("core: duplicate meta edges in index file")
	}

	// Derived structures.
	ix.buildAPSP()
	ix.buildDelta()
	var entries int64
	for _, d := range ix.labels {
		if d != NoEntry {
			entries++
		}
	}
	ix.build.LabelEntries = entries
	ix.build.NumLandmarks = ix.numLand
	ix.build.MetaEdges = len(ix.meta)
	return ix, nil
}

// SaveFile writes the index to a file path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from a file path.
func LoadFile(g *graph.Graph, path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(g, f)
}
