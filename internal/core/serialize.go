package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"qbs/internal/graph"
)

// Index serialization. The on-disk format stores the minimal
// reconstruction state — landmarks, the σ matrix and the label matrix
// (column-major, one landmark column after another) — and recomputes the
// derived structures (APSP, meta-SPG table, Δ) on load; they derive
// deterministically from the stored state and the graph (Lemma 5.2), and
// recomputation is much cheaper than the landmark BFSes. The graph
// itself is not embedded: Load takes the same graph the index was built
// over and validates vertex/arc counts.

const indexMagic = "QBSI"

// indexVersion 2: labels stored column-major and the meta-graph stored
// as the σ matrix (version 1 stored row-major labels plus an explicit
// meta-edge list).
const indexVersion = 2

// Write serialises the index.
func (ix *Index) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	hdr := []int64{
		indexVersion,
		int64(ix.a.NumVertices()),
		int64(ix.a.NumArcs()),
		int64(ix.numLand),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, ix.landmarks); err != nil {
		return err
	}
	if _, err := bw.Write(ix.ms.sigma); err != nil {
		return err
	}
	for _, col := range ix.labels {
		if _, err := bw.Write(col); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load deserialises an index previously written with Write, binding it
// to g (which must be the graph the index was built over).
func Load(g *graph.Graph, r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("core: bad index magic %q", magic)
	}
	var version, nV, nArcs, nLand int64
	for _, p := range []*int64{&version, &nV, &nArcs, &nLand} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != indexVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", version)
	}
	if int(nV) != g.NumVertices() || int(nArcs) != g.NumArcs() {
		return nil, fmt.Errorf("core: index was built over a graph with |V|=%d arcs=%d, got |V|=%d arcs=%d",
			nV, nArcs, g.NumVertices(), g.NumArcs())
	}
	if nLand < 0 || nLand > 254 {
		return nil, fmt.Errorf("core: corrupt index header")
	}
	landmarks := make([]graph.V, nLand)
	if err := binary.Read(br, binary.LittleEndian, landmarks); err != nil {
		return nil, err
	}
	ix, err := newIndexShell(g, g, landmarks)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt index: %w", err)
	}
	R := int(nLand)
	sigma := make([]uint8, R*R)
	if _, err := io.ReadFull(br, sigma); err != nil {
		return nil, err
	}
	for a := 0; a < R; a++ {
		for b := 0; b < R; b++ {
			s := sigma[a*R+b]
			if s != sigma[b*R+a] || (a == b && s != NoEntry) || (s != NoEntry && s == 0) {
				return nil, fmt.Errorf("core: corrupt sigma matrix at (%d,%d)", a, b)
			}
		}
	}
	ix.labels = make([][]uint8, R)
	for i := range ix.labels {
		col := make([]uint8, nV)
		if _, err := io.ReadFull(br, col); err != nil {
			return nil, err
		}
		ix.labels[i] = col
	}
	ix.ms = NewMetaState(R, sigma)

	// Derived structures.
	ix.degs = g.Degrees()
	ix.buildDelta()
	ix.build.LabelEntries = ix.countLabelEntries()
	ix.build.NumLandmarks = ix.numLand
	ix.build.MetaEdges = len(ix.ms.meta)
	return ix, nil
}

// SaveFile writes the index to a file path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from a file path.
func LoadFile(g *graph.Graph, path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(g, f)
}
