// Package lint is the qbs static-analysis suite: project-specific
// invariants that no stock tool checks, compiled into the qbs-vet
// binary (cmd/qbs-vet) and enforced in CI. The invariants it encodes
// are the ones the system's correctness and latency actually rest on —
// the zero-allocation warm query path, the atomic-access discipline of
// shared counters and epoch pointers, and the WAL's log-before-publish
// ordering — so that future PRs inherit them as compile-time rules
// rather than tribal knowledge.
//
// # Analyzers
//
// zeroalloc — a function annotated //qbs:zeroalloc, and every module
// function it statically calls, may not contain allocating constructs:
// make, new, appends into fresh destinations, go statements,
// non-deferred function literals, slice/map composite literals,
// &composite, non-constant string concatenation, string<->[]byte
// conversions, fmt calls, or interface boxing of non-pointer-shaped
// values. Two idioms are sanctioned because their cost amortizes to
// zero at the steady state the ReportAllocs benchmarks measure:
// x = append(x, ...) self-appends (including append(x[:0], ...)
// refills and `return append(buf, ...)` accumulators), and deferred
// function literals (open-coded defers stay on the stack). The
// transitive walk follows direct calls and concrete-method calls only;
// calls through interfaces or function values are invisible to it —
// the warm paths deliberately keep their dynamic dispatch behind small
// concrete types. A function-level //qbs:allow zeroalloc both
// suppresses findings and prunes the walk: it marks a sanctioned cold
// branch (pool refill, epoch rebind, above-threshold parallel levels)
// whose allocations are not part of the per-query budget.
//
// atomicfield — a struct field accessed through sync/atomic anywhere
// must be accessed atomically everywhere, across the whole module.
// The analyzer also propagates one level through helpers whose pointer
// parameters feed sync/atomic calls (the traverse orUint64/claimUint32
// idiom), so &ws.stamp[v] passed to a CAS helper marks the field just
// like a direct atomic call. Deliberately barrier-ordered mixed access
// — plain reads in phases separated from the CAS by a barrier — is
// annotated //qbs:allow atomicfield with the reason stating the
// barrier.
//
// loggedpublish — inside internal/dynamic and internal/store, an epoch
// publish (a call to a //qbs:publish-annotated helper, a Store/Swap on
// an atomic.Pointer or atomic.Value field, or atomic.StorePointer)
// must be lexically preceded in the same function by an UpdateLogger
// append (LogUpdate/LogCompaction). This is the durability ordering
// from the WAL PR: recovery replays the log, so a publish the log
// never saw is an epoch recovery silently loses. Lexical precedence
// approximates dominance, which matches how the commit paths are
// written; bootstrap and replay functions (the record is already
// durable, or no logger exists yet) carry //qbs:allow loggedpublish.
//
// hotpath — inside //qbs:hotpath functions (kernel sweeps, per-vertex
// inner loops), time.Now, fmt, package reflect and map iteration are
// banned: each costs unpredictable time per iteration. The rule is
// region-local, not transitive — annotate the innermost kernels, not
// their orchestrators, whose cold error paths legitimately use
// fmt.Errorf.
//
// syncerr — inside internal/store and internal/replica, a Close, Sync
// or Flush whose error result is discarded by a bare expression
// statement is a finding. fsync failures surface exactly once, so a
// dropped Sync error is unrecoverable data loss. `_ = f.Close()` is
// the explicit acknowledgment for best-effort cleanup on paths already
// returning another error; defers keep their usual meaning.
//
// A sixth implicit check reports malformed //qbs: directives, so a
// typo like //qbs:zeralloc surfaces instead of silently disabling a
// rule.
//
// # Suppression
//
// //qbs:allow <analyzer> <reason> suppresses that analyzer's findings
// on the directive's own line and the line below it; placed in a
// function's doc comment it covers the whole function. The reason is
// mandatory — an allow without one is itself a finding.
//
// # The escape gate
//
// qbs-vet -escape complements the AST analyzers with the compiler's
// own escape analysis: it rebuilds the packages containing
// //qbs:zeroalloc functions with -gcflags=-m and fails on any
// "escapes to heap" / "moved to heap" diagnostic inside an annotated
// function's span. "leaking param" is not a failure — a parameter
// flowing into a longer-lived structure (the sync.Pool recycle path)
// allocates at the caller, if anywhere. The build cache replays -m
// diagnostics, so repeated runs are cheap.
//
// # Implementation note
//
// The suite is stdlib-only: packages are enumerated with
// `go list -deps -export -json -test`, module packages are
// type-checked from source with go/types, and standard-library imports
// resolve from compiler export data via go/importer. The analyzer API
// mirrors golang.org/x/tools/go/analysis in spirit but runs each
// analyzer once over the whole Program, because the invariants here —
// transitive call trees, cross-package field access — are
// module-global properties.
package lint
