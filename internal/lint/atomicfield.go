package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity: once any code accesses
// a struct field through sync/atomic, every access to that field must
// be atomic. Mixed plain/atomic access is a data race even when it
// "works" on amd64. The analyzer is cross-package (a field published
// atomically in internal/dynamic and read plainly in internal/replica
// is still a finding) and propagates one level through module helpers
// that take a *uint32/*uint64 parameter into sync/atomic calls (the
// traverse orUint64/claimUint32 idiom).
//
// Deliberately barrier-ordered mixed access (e.g. plain reads between
// two synchronization points) is suppressed with
// //qbs:allow atomicfield <reason>.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicField,
}

func runAtomicField(p *Program) []Diagnostic {
	ix := p.Annots()

	// Helper functions whose pointer parameters feed sync/atomic calls.
	helperParams := map[string]map[int]bool{} // funcKey → atomic param indices
	for _, fi := range ix.funcList {
		if fi.Decl.Body == nil {
			continue
		}
		paramIdx := map[types.Object]int{}
		i := 0
		for _, field := range fi.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Pointer); ok {
						paramIdx[obj] = i
					}
				}
				i++
			}
		}
		if len(paramIdx) == 0 {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(fi.Pkg, call) || len(call.Args) == 0 {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if idx, ok := paramIdx[fi.Pkg.Info.Uses[id]]; ok {
					m := helperParams[fi.Key]
					if m == nil {
						m = map[int]bool{}
						helperParams[fi.Key] = m
					}
					m[idx] = true
				}
			}
			return true
		})
	}

	// Pass 1: collect atomically-accessed fields and remember which
	// selector nodes are those sanctioned accesses.
	atomicSite := map[string]token.Position{} // field key → example atomic site
	sanctioned := map[ast.Node]bool{}
	markArg := func(pkg *Package, arg ast.Expr) {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return
		}
		if v, sel := fieldVarOf(pkg, un.X); v != nil {
			key := p.posKey(v.Pos())
			if _, seen := atomicSite[key]; !seen {
				atomicSite[key] = p.Fset.Position(sel.Pos())
			}
			sanctioned[sel] = true
		}
	}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isSyncAtomicCall(pkg, call) && len(call.Args) > 0 {
					markArg(pkg, call.Args[0])
					return true
				}
				if obj := calleeObject(pkg, call); obj != nil {
					if idxs := helperParams[p.funcKey(obj)]; idxs != nil {
						for i, arg := range call.Args {
							if idxs[i] {
								markArg(pkg, arg)
							}
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicSite) == 0 {
		return nil
	}

	// Pass 2: flag plain accesses to those fields.
	var ds []Diagnostic
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				se, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[se] {
					return true
				}
				sel, ok := pkg.Info.Selections[se]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				v, ok := sel.Obj().(*types.Var)
				if !ok {
					return true
				}
				site, marked := atomicSite[p.posKey(v.Pos())]
				if !marked {
					return true
				}
				ds = p.report(ds, "atomicfield", se, fmt.Sprintf(
					"field %s is accessed with sync/atomic at %s:%d but plainly here; make every access atomic or annotate the barrier with //qbs:allow atomicfield <reason>",
					v.Name(), trimPath(site.Filename, p.ModDir), site.Line))
				return true
			})
		}
	}
	return ds
}

// fieldVarOf resolves an lvalue expression (possibly through index
// expressions, e.g. ws.stamp[v]) to the struct field it roots in.
func fieldVarOf(pkg *Package, e ast.Expr) (*types.Var, *ast.SelectorExpr) {
	e = ast.Unparen(e)
	for {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			break
		}
		e = ast.Unparen(ix.X)
	}
	se, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := pkg.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil, nil
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	return v, se
}

// isSyncAtomicCall reports whether call invokes a sync/atomic package
// function (LoadUint32, CompareAndSwapUint64, StorePointer, ...).
func isSyncAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[se.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	// Package functions only; methods on atomic.Int64 etc. act on
	// dedicated typed fields that cannot be accessed plainly.
	if _, sel := pkg.Info.Selections[se]; sel {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic"
}
