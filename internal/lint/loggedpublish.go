package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LoggedPublish enforces the PR 3 durability ordering inside
// internal/dynamic and internal/store: an epoch publish — a call to a
// //qbs:publish helper, a Store/Swap on an atomic.Pointer/atomic.Value
// field, or sync/atomic.StorePointer — must be preceded in the same
// function by the corresponding UpdateLogger append (LogUpdate or
// LogCompaction). Readers that crash-recover replay the log; a publish
// the log never saw is an epoch that recovery silently loses.
//
// "Preceded" is lexical source order within the function body — an
// approximation of dominance that matches how the commit paths are
// written (the log call may sit inside an `if logger != nil` guard; a
// nil logger means an explicitly log-less configuration). Bootstrap and
// replay functions, where the record is already durable or no log
// exists yet, carry //qbs:allow loggedpublish <reason>.
var LoggedPublish = &Analyzer{
	Name: "loggedpublish",
	Doc:  "epoch publishes in internal/dynamic and internal/store must be preceded by the UpdateLogger append",
	Run:  runLoggedPublish,
}

var loggedPublishScope = []string{"/internal/dynamic", "/internal/store"}

func runLoggedPublish(p *Program) []Diagnostic {
	ix := p.Annots()
	var ds []Diagnostic
	for _, fi := range ix.funcList {
		if fi.Decl.Body == nil || fi.Publish {
			continue // publish helpers are the seam, not the obligation
		}
		if !inScope(fi.Pkg.BasePath, loggedPublishScope) {
			continue
		}
		ds = append(ds, p.checkLoggedPublish(fi)...)
	}
	return ds
}

func inScope(basePath string, scope []string) bool {
	for _, s := range scope {
		if strings.HasSuffix(basePath, s) || strings.Contains(basePath, s+"/") {
			return true
		}
	}
	return false
}

func (p *Program) checkLoggedPublish(fi *FuncInfo) []Diagnostic {
	pkg := fi.Pkg
	var ds []Diagnostic
	logged := token.NoPos
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isLoggerAppend(pkg, call) {
			if logged == token.NoPos || call.Pos() < logged {
				logged = call.Pos()
			}
			return true
		}
		if what := publishKind(p, pkg, call); what != "" {
			if logged == token.NoPos || call.Pos() < logged {
				ds = p.report(ds, "loggedpublish", call, fmt.Sprintf(
					"%s: %s publishes an epoch without a preceding UpdateLogger append (log before publish; //qbs:allow loggedpublish <reason> for bootstrap/replay paths)",
					fi.Name, what))
			}
		}
		return true
	})
	return ds
}

// isLoggerAppend matches calls to LogUpdate/LogCompaction — the
// UpdateLogger seam methods (interface or concrete implementation).
func isLoggerAppend(pkg *Package, call *ast.CallExpr) bool {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return se.Sel.Name == "LogUpdate" || se.Sel.Name == "LogCompaction"
}

// publishKind classifies call as an epoch publish, returning a short
// description, or "".
func publishKind(p *Program, pkg *Package, call *ast.CallExpr) string {
	// A call to a //qbs:publish-annotated module function.
	if obj := calleeObject(pkg, call); obj != nil {
		if fi := p.Annots().funcByKey[p.funcKey(obj)]; fi != nil && fi.Publish {
			return fi.Name
		}
	}
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// sync/atomic.StorePointer(&x.f, p).
	if isSyncAtomicCall(pkg, call) && se.Sel.Name == "StorePointer" {
		return "atomic.StorePointer"
	}
	// (atomic.Pointer[T]).Store / Swap / CompareAndSwap, atomic.Value.Store.
	switch se.Sel.Name {
	case "Store", "Swap", "CompareAndSwap":
	default:
		return ""
	}
	sel, ok := pkg.Info.Selections[se]
	if !ok || sel.Kind() != types.MethodVal {
		return ""
	}
	recv := sel.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return ""
	}
	switch named.Obj().Name() {
	case "Pointer", "Value":
		return fmt.Sprintf("atomic.%s.%s", named.Obj().Name(), se.Sel.Name)
	}
	return ""
}
