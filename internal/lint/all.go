package lint

import (
	"fmt"
	"go/token"
)

// All is the qbs-vet analyzer suite in the order findings are listed.
var All = []*Analyzer{ZeroAlloc, AtomicField, LoggedPublish, HotPath, SyncErr}

// RunAll runs every analyzer plus the malformed-directive check and
// returns the sorted, deduplicated findings.
func RunAll(p *Program) []Diagnostic {
	var ds []Diagnostic
	ds = append(ds, p.Malformed()...)
	for _, a := range All {
		ds = append(ds, a.Run(p)...)
	}
	return SortDiagnostics(ds)
}

// Rel renders a position relative to the module root for display.
func (p *Program) Rel(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", trimPath(pos.Filename, p.ModDir), pos.Line, pos.Column)
}
