package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseEscapeOutput checks the -gcflags=-m parser on canned
// compiler output: heap escapes inside annotated spans fail, leaking
// params and non-escapes never do, and escapes outside every annotated
// span are someone else's business.
func TestParseEscapeOutput(t *testing.T) {
	ranges := []escapeRange{
		{File: "/repo/internal/core/search.go", Start: 195, End: 210, Name: "(*core.Searcher).QueryInto"},
		{File: "/repo/internal/graph/spg.go", Start: 35, End: 45, Name: "(*graph.SPG).Reset"},
	}
	out := strings.Join([]string{
		"# qbs/internal/core",
		"internal/core/search.go:200:11: new(int32) escapes to heap",
		"internal/core/search.go:198:2: leaking param: spg to result",
		"internal/core/search.go:205:9: make([]int, 4) does not escape",
		"internal/core/search.go:300:5: moved to heap: buf",
		"internal/graph/spg.go:40:3: moved to heap: scratch",
		"internal/graph/other.go:40:3: &lit{} escapes to heap",
		"not a diagnostic line",
	}, "\n")

	ds := ParseEscapeOutput(out, ranges)
	if len(ds) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(ds), ds)
	}
	if ds[0].Pos.Line != 200 || !strings.Contains(ds[0].Message, "QueryInto: new(int32) escapes to heap") {
		t.Errorf("unexpected first diagnostic: %+v", ds[0])
	}
	if ds[1].Pos.Line != 40 || !strings.Contains(ds[1].Message, "Reset: moved to heap: scratch") {
		t.Errorf("unexpected second diagnostic: %+v", ds[1])
	}
}

// TestEscapeGateEndToEnd drives the real gate against two throwaway
// modules: a clean annotated function passes, and seeding a heap
// allocation into it fails — the acceptance check for the CI job.
func TestEscapeGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a module with the toolchain")
	}
	write := func(t *testing.T, dir, name, content string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	const gomod = "module seed\n\ngo 1.22\n"
	const clean = `package seed

// Sum is warm and allocation-free.
//
//qbs:zeroalloc
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
`
	const seeded = `package seed

var sink *int

// Sum is annotated but leaks a heap allocation.
//
//qbs:zeroalloc
func Sum(xs []int) int {
	total := new(int)
	sink = total
	for _, x := range xs {
		*total += x
	}
	return *total
}
`

	t.Run("clean", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "go.mod", gomod)
		write(t, dir, "seed.go", clean)
		ds, checked, err := EscapeGate(dir, "./...")
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) != 0 {
			t.Fatalf("clean module failed the gate: %+v", ds)
		}
		if len(checked) != 1 || checked[0] != "seed.Sum" {
			t.Fatalf("checked = %v, want [seed.Sum]", checked)
		}
	})

	t.Run("seeded", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "go.mod", gomod)
		write(t, dir, "seed.go", seeded)
		ds, _, err := EscapeGate(dir, "./...")
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) == 0 {
			t.Fatal("seeded heap allocation passed the gate")
		}
		if !strings.Contains(ds[0].Message, "escapes to heap") {
			t.Errorf("unexpected diagnostic: %+v", ds[0])
		}
	})
}
