package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ZeroAlloc enforces the warm-path allocation budget: a function
// annotated //qbs:zeroalloc — and every module function it statically
// calls — may not contain constructs that heap-allocate on the steady
// state path. The analyzer complements the runtime ReportAllocs
// regression tests (which measure specific call sites) by covering the
// whole static call tree, and the -escape gate (which asks the
// compiler the same question from the other direction).
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc: "forbid allocating constructs in //qbs:zeroalloc functions and their module-local callees\n\n" +
		"Flagged: make, new, non-self append, go statements, non-deferred function\n" +
		"literals, slice/map composite literals, &composite, string concatenation,\n" +
		"string<->[]byte conversions, fmt calls, and interface boxing of non-pointer\n" +
		"values. Deferred function literals are exempt (open-coded defers do not\n" +
		"allocate), as are x = append(x, ...) self-appends into recycled buffers\n" +
		"(amortized zero after warmup, measured by the ReportAllocs tests).",
	Run: runZeroAlloc,
}

func runZeroAlloc(p *Program) []Diagnostic {
	ix := p.Annots()
	type item struct{ fi, root *FuncInfo }
	var queue []item
	for _, fi := range ix.funcList {
		if fi.ZeroAlloc {
			queue = append(queue, item{fi, fi})
		}
	}
	var ds []Diagnostic
	visited := map[*FuncInfo]bool{}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if visited[it.fi] {
			continue
		}
		visited[it.fi] = true
		if it.fi != it.root && it.fi.Allowed["zeroalloc"] {
			// A function-level allow marks a sanctioned cold path (pool
			// refill, epoch rebind, above-threshold parallel level):
			// neither it nor anything it calls is part of the warm-path
			// allocation budget.
			continue
		}
		ds = append(ds, p.checkZeroAlloc(it.fi, it.root)...)
		for _, c := range p.Callees(it.fi) {
			if !visited[c] {
				queue = append(queue, item{c, it.root})
			}
		}
	}
	return ds
}

func (p *Program) checkZeroAlloc(fi, root *FuncInfo) []Diagnostic {
	if fi.Decl.Body == nil {
		return nil
	}
	pkg := fi.Pkg
	ctx := ""
	if fi != root {
		ctx = fmt.Sprintf(" (in the call tree of //qbs:zeroalloc %s)", root.Name)
	}
	var ds []Diagnostic
	rep := func(n ast.Node, format string, args ...any) {
		msg := fi.Name + ": " + fmt.Sprintf(format, args...) + ctx
		ds = p.report(ds, "zeroalloc", n, msg)
	}

	// Pre-pass: deferred function literals are exempt (open-coded
	// defers stay on the stack), and x = append(x, ...) self-appends
	// into recycled buffers are the sanctioned idiom.
	deferredLit := map[ast.Node]bool{}
	selfAppend := map[ast.Node]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				deferredLit[fl] = true
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pkg, call.Fun, "append") || len(call.Args) == 0 {
					continue
				}
				arg0 := ast.Unparen(call.Args[0])
				// x = append(x[:0], ...) and x = append(x[:n], ...)
				// re-fill the same recycled buffer; compare the slice
				// base against the destination.
				if sl, ok := arg0.(*ast.SliceExpr); ok {
					arg0 = ast.Unparen(sl.X)
				}
				if types.ExprString(n.Lhs[i]) == types.ExprString(arg0) {
					selfAppend[call] = true
				}
			}
		case *ast.ReturnStmt:
			// return append(buf, ...) where buf is a plain variable is
			// the accumulator idiom: the recycled buffer flows in and
			// back out, so growth amortizes to zero like a self-append.
			for _, res := range n.Results {
				call, ok := ast.Unparen(res).(*ast.CallExpr)
				if !ok || !isBuiltin(pkg, call.Fun, "append") || len(call.Args) == 0 {
					continue
				}
				if _, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					selfAppend[call] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			rep(n, "go statement allocates a goroutine")
		case *ast.FuncLit:
			if !deferredLit[n] {
				rep(n, "function literal may allocate its closure")
			}
		case *ast.CompositeLit:
			switch pkg.Info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				rep(n, "slice literal allocates")
			case *types.Map:
				rep(n, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					rep(n, "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			tv := pkg.Info.Types[n]
			if n.Op.String() == "+" && tv.Value == nil && isString(tv.Type) {
				rep(n, "string concatenation allocates")
			}
		case *ast.CallExpr:
			p.checkZeroAllocCall(pkg, n, selfAppend, rep)
		}
		return true
	})
	return ds
}

func (p *Program) checkZeroAllocCall(pkg *Package, call *ast.CallExpr, selfAppend map[ast.Node]bool, rep func(ast.Node, string, ...any)) {
	// Conversions: T(x).
	if tv, ok := pkg.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pkg.Info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		if stringBytesConversion(dst, src) {
			rep(call, "conversion %s allocates a copy", types.ExprString(call))
			return
		}
		if boxes(dst, src) && pkg.Info.Types[call.Args[0]].Value == nil {
			rep(call, "converting %s to interface %s allocates", src, dst)
		}
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch {
		case isBuiltin(pkg, fun, "make"):
			rep(call, "make allocates")
			return
		case isBuiltin(pkg, fun, "new"):
			rep(call, "new allocates")
			return
		case isBuiltin(pkg, fun, "append"):
			if !selfAppend[call] {
				rep(call, "append into a fresh destination allocates; use x = append(x, ...) on a recycled buffer")
			}
			return
		}
	case *ast.SelectorExpr:
		if obj := pkg.Info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			rep(call, "fmt.%s allocates", fun.Sel.Name)
			return
		}
	}

	// Interface boxing through call arguments.
	sig, ok := typeOf(pkg, call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := pkg.Info.Types[arg]
		if at.Type == nil || at.Value != nil {
			continue
		}
		if boxes(pt, at.Type) {
			rep(arg, "passing %s in %s parameter allocates (interface boxing)", at.Type, pt)
		}
	}
}

// boxes reports whether assigning a src value to a dst interface heap-
// allocates: dst is an interface, src is a concrete type that is not
// pointer-shaped (pointers, chans, maps and funcs fit in the interface
// word directly).
func boxes(dst, src types.Type) bool {
	if !types.IsInterface(dst) || types.IsInterface(src) {
		return false
	}
	if _, isTP := dst.(*types.TypeParam); isTP {
		return false
	}
	switch u := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return false
		}
	case *types.TypeParam:
		return false
	}
	return true
}

func stringBytesConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isBuiltin(pkg *Package, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
