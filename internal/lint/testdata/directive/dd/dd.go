// Package dd exercises directive validation: typos and malformed
// allows must surface instead of silently disabling a check.
package dd

//qbs:zeralloc is a typo and must be reported.
// want:-1 directive "unknown qbs directive"

func misplaced() {
	//qbs:zeroalloc
	// want:-1 directive "must be in a function's doc comment"
	_ = 0
}

// incomplete has an allow with no reason.
//
//qbs:allow zeroalloc
// want:-1 directive "needs an analyzer name and a reason"
func incomplete() {}
