// Package za exercises the zeroalloc analyzer: firing constructs,
// sanctioned idioms, the transitive-callee rule and suppression.
package za

import "fmt"

type buf struct {
	data  []int
	scratch []int
}

// Warm is annotated: every allocating construct inside fires.
//
//qbs:zeroalloc
func Warm(b *buf, name string, n int) string {
	s := make([]int, n)       // want zeroalloc "make allocates"
	_ = s
	b.data = append(b.data, n) // self-append: sanctioned
	b.scratch = append(b.scratch[:0], n) // recycle refill: sanctioned
	other := append([]int{}, n) // want zeroalloc "slice literal allocates" want zeroalloc "append into a fresh destination"
	_ = other
	fmt.Println(name) // want zeroalloc "fmt.Println allocates"
	cb := func() {}   // want zeroalloc "function literal may allocate"
	cb()
	defer func() { b.data = b.data[:0] }() // deferred literal: sanctioned
	return name + "!" // want zeroalloc "string concatenation allocates"
}

// WarmCaller is annotated and clean itself; the finding lands in its
// module-local callee.
//
//qbs:zeroalloc
func WarmCaller(n int) int {
	return helper(n)
}

func helper(n int) int {
	tmp := make([]int, n) // want zeroalloc "make allocates"
	return len(tmp)
}

// Boxing passes a non-pointer value in an interface parameter.
//
//qbs:zeroalloc
func Boxing(v int64) {
	consume(v) // want zeroalloc "interface boxing"
}

func consume(any interface{}) { _ = any }

// Allowed demonstrates function-level suppression.
//
//qbs:zeroalloc
//qbs:allow zeroalloc fixture: documented exception
func Allowed(n int) []int {
	return make([]int, n)
}

// Cold is not annotated and not called from an annotated function, so
// it may allocate freely.
func Cold(n int) []int {
	return make([]int, n)
}
