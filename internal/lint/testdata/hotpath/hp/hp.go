// Package hp exercises the hotpath analyzer: banned constructs inside
// //qbs:hotpath regions, and the same constructs unflagged outside.
package hp

import (
	"fmt"
	"reflect"
	"time"
)

// Sweep is a hotpath region: every hazard inside fires.
//
//qbs:hotpath
func Sweep(dist map[int]int32, out []int32) int64 {
	start := time.Now() // want hotpath "time.Now in a hotpath region"
	for v, d := range dist { // want hotpath "map iteration in a hotpath region"
		out[v] = d
	}
	fmt.Println(len(out)) // want hotpath "fmt.Println in a hotpath region"
	_ = reflect.TypeOf(out) // want hotpath "reflect.TypeOf in a hotpath region"
	return int64(time.Since(start))
}

// Orchestrator is not annotated: the cold-path fmt.Errorf is fine.
func Orchestrator(n int) error {
	if n < 0 {
		return fmt.Errorf("hp: bad n %d", n)
	}
	t := time.Now()
	_ = t
	return nil
}
