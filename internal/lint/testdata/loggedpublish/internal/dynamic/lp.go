// Package dynamic (fixture) exercises the loggedpublish analyzer: the
// log-before-publish ordering, the //qbs:publish helper rule, and the
// bootstrap suppression.
package dynamic

import "sync/atomic"

type snapshot struct{ epoch uint64 }

type logger interface {
	LogUpdate(epoch uint64)
}

type index struct {
	cur atomic.Pointer[snapshot]
	log logger
}

// commit is the designated publish helper.
//
//qbs:publish
func (ix *index) commit(s *snapshot) {
	ix.cur.Store(s)
}

// GoodApply logs before publishing: clean.
func (ix *index) GoodApply(s *snapshot) {
	if ix.log != nil {
		ix.log.LogUpdate(s.epoch)
	}
	ix.commit(s)
}

// BadApply publishes without logging.
func (ix *index) BadApply(s *snapshot) {
	ix.commit(s) // want loggedpublish "publishes an epoch without a preceding UpdateLogger append"
}

// BadDirect stores the pointer directly, skipping even the helper.
func (ix *index) BadDirect(s *snapshot) {
	ix.cur.Store(s) // want loggedpublish "publishes an epoch without a preceding UpdateLogger append"
}

// Bootstrap publishes the initial snapshot before any log exists.
//
//qbs:allow loggedpublish fixture: epoch-zero bootstrap has nothing to log
func (ix *index) Bootstrap(s *snapshot) {
	ix.cur.Store(s)
}

// LateLog logs only after the publish: the ordering is wrong even
// though a log call exists in the function.
func (ix *index) LateLog(s *snapshot) {
	ix.commit(s) // want loggedpublish "publishes an epoch without a preceding UpdateLogger append"
	ix.log.LogUpdate(s.epoch)
}
