// Package af exercises the atomicfield analyzer: mixed plain/atomic
// access, helper propagation, and suppression.
package af

import "sync/atomic"

type counters struct {
	hits   uint64 // accessed atomically AND plainly: findings
	misses uint64 // atomic-only: clean
	plain  uint64 // plain-only: clean
	claims uint32 // atomic via the orHelper indirection
}

func (c *counters) RecordAtomic() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.misses, 1)
	orHelper(&c.claims, 1)
}

func (c *counters) RecordPlain() {
	c.hits++    // want atomicfield "field hits is accessed with sync/atomic"
	c.plain++   // plain-only field: fine
	c.claims |= 2 // want atomicfield "field claims is accessed with sync/atomic"
}

// Snapshot reads under an external barrier; the allow suppresses it.
//
//qbs:allow atomicfield fixture: reader runs after all writers joined
func (c *counters) Snapshot() uint64 {
	return c.hits
}

// orHelper is the one-level propagation case: its pointer parameter
// feeds a sync/atomic CAS loop, so passing &c.claims marks the field.
func orHelper(p *uint32, bits uint32) {
	for {
		old := atomic.LoadUint32(p)
		if atomic.CompareAndSwapUint32(p, old, old|bits) {
			return
		}
	}
}
