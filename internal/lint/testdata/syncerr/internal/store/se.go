// Package store (fixture) exercises the syncerr analyzer: discarded
// Close/Sync/Flush errors in a durability package.
package store

import "os"

// WriteRecord shows the firing and non-firing forms side by side.
func WriteRecord(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // acknowledged best-effort cleanup: clean
		return err
	}
	f.Sync()  // want syncerr "Sync error is discarded"
	f.Close() // want syncerr "Close error is discarded"
	return nil
}

// WriteRecordChecked is the corrected form: clean.
func WriteRecordChecked(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// deferredClose keeps its usual cleanup meaning: clean.
func deferredClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return err
}
