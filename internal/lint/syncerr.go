package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SyncErr is a scoped errcheck: inside internal/store and
// internal/replica — the two packages whose job is durability — a
// discarded error from Close, Sync or Flush is a silent data-loss bug.
// fsync failures in particular surface exactly once (the kernel clears
// the dirty flag), so a dropped Sync error is unrecoverable.
//
// Only bare expression statements are flagged. `_ = f.Close()` is an
// explicit acknowledgment (used on error paths where a best-effort
// close follows a failure already being returned) and defers of a
// plain Close keep their usual cleanup meaning.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc:  "Close/Sync/Flush errors must not be silently discarded in internal/store and internal/replica",
	Run:  runSyncErr,
}

var syncErrScope = []string{"/internal/store", "/internal/replica"}

func runSyncErr(p *Program) []Diagnostic {
	var ds []Diagnostic
	for _, fi := range p.Annots().funcList {
		if fi.Decl.Body == nil || !inScope(fi.Pkg.BasePath, syncErrScope) {
			continue
		}
		pkg := fi.Pkg
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := discardedSyncErr(pkg, call); name != "" {
				ds = p.report(ds, "syncerr", stmt, fmt.Sprintf(
					"%s: %s error is discarded; check it, or write `_ = %s` to acknowledge a best-effort cleanup",
					fi.Name, name, types.ExprString(call)))
			}
			return true
		})
	}
	return ds
}

// discardedSyncErr reports the method name when call is a
// Close/Sync/Flush returning an error that the statement drops.
func discardedSyncErr(pkg *Package, call *ast.CallExpr) string {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch se.Sel.Name {
	case "Close", "Sync", "Flush":
	default:
		return ""
	}
	sig, ok := typeOf(pkg, call.Fun).(*types.Signature)
	if !ok {
		return ""
	}
	res := sig.Results()
	if res.Len() == 0 {
		return ""
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return ""
	}
	return se.Sel.Name
}
