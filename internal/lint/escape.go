package lint

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The escape gate is the compiler-backed sibling of the zeroalloc
// analyzer: instead of pattern-matching allocating constructs, it asks
// the gc escape analysis directly. `go build -gcflags=<mod>/...=-m`
// emits one diagnostic per escape decision; any "escapes to heap" or
// "moved to heap" inside the line range of a //qbs:zeroalloc function
// fails the gate. The build cache replays -m diagnostics on cached
// builds, so the gate is cheap to run repeatedly.
//
// "leaking param" diagnostics are deliberately not failures: a
// parameter that flows into a longer-lived structure (the sync.Pool
// Put on the searcher recycle path) does not allocate per call; the
// allocation, if any, happens at the caller and is caught there.

// escapeRange is one annotated function's source span.
type escapeRange struct {
	File      string // absolute path
	Start, End int
	Name      string
}

var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// EscapeGate loads the module at dir, collects every //qbs:zeroalloc
// function, rebuilds the packages that contain them with -gcflags=-m
// and returns a diagnostic per escape inside an annotated span.
func EscapeGate(dir string, patterns ...string) ([]Diagnostic, []string, error) {
	prog, err := Load(LoadConfig{Dir: dir}, patterns...)
	if err != nil {
		return nil, nil, err
	}
	ranges, pkgSet := annotatedRanges(prog)
	if len(ranges) == 0 {
		return nil, nil, fmt.Errorf("lint: no //qbs:zeroalloc functions found under %s", strings.Join(patterns, " "))
	}
	var pkgs []string
	for bp := range pkgSet {
		pkgs = append(pkgs, bp)
	}
	sort.Strings(pkgs)

	out, err := runEscapeBuild(dir, prog.ModPath, pkgs)
	if err != nil {
		return nil, nil, err
	}
	var checked []string
	for _, r := range ranges {
		checked = append(checked, r.Name)
	}
	sort.Strings(checked)
	return ParseEscapeOutput(out, ranges), checked, nil
}

// annotatedRanges maps //qbs:zeroalloc functions to file line spans and
// collects the packages that declare them.
func annotatedRanges(prog *Program) ([]escapeRange, map[string]bool) {
	var ranges []escapeRange
	pkgs := map[string]bool{}
	for _, fi := range prog.Annots().funcList {
		if !fi.ZeroAlloc {
			continue
		}
		start := prog.Fset.Position(fi.Decl.Pos())
		end := prog.Fset.Position(fi.Decl.End())
		ranges = append(ranges, escapeRange{File: start.Filename, Start: start.Line, End: end.Line, Name: fi.Name})
		pkgs[fi.Pkg.BasePath] = true
	}
	return ranges, pkgs
}

// runEscapeBuild compiles pkgs with escape diagnostics enabled and
// returns the compiler's stderr.
func runEscapeBuild(dir, modPath string, pkgs []string) (string, error) {
	args := []string{"build", "-gcflags=" + modPath + "/...=-m"}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, stderr.String())
	}
	return stderr.String(), nil
}

// ParseEscapeOutput scans -gcflags=-m output for heap allocations
// inside the annotated spans. Exported separately so the parser is
// testable on canned compiler output without running a build.
func ParseEscapeOutput(out string, ranges []escapeRange) []Diagnostic {
	var ds []Diagnostic
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, r := range ranges {
			if lineNo < r.Start || lineNo > r.End || !sameFile(file, r.File) {
				continue
			}
			d := Diagnostic{Analyzer: "escape", Message: fmt.Sprintf("%s: %s", r.Name, msg)}
			d.Pos.Filename = file
			d.Pos.Line = lineNo
			d.Pos.Column = col
			ds = append(ds, d)
			break
		}
	}
	return SortDiagnostics(ds)
}

// sameFile matches the compiler's (often relative) path against the
// loader's absolute path by component suffix.
func sameFile(diag, abs string) bool {
	if diag == abs {
		return true
	}
	return strings.HasSuffix(abs, "/"+strings.TrimPrefix(diag, "./"))
}
