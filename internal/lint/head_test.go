package lint

import "testing"

// TestVetCleanAtHead is the suite run over the real module, test files
// included — the same invocation as the CI static-analysis job. Any
// finding is a regression: either new code broke an invariant, or an
// analyzer change introduced a false positive; both block.
func TestVetCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	prog, err := Load(LoadConfig{Dir: "../..", Tests: true}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	ds := RunAll(prog)
	for _, d := range ds {
		t.Errorf("%s: [%s] %s", prog.Rel(d.Pos), d.Analyzer, d.Message)
	}
	if len(prog.Packages) < 20 {
		t.Errorf("suspiciously few packages loaded: %d", len(prog.Packages))
	}
}
