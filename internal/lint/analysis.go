package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Analyzer is one project-invariant check. Unlike
// golang.org/x/tools/go/analysis (which this API deliberately mirrors
// in spirit), an analyzer runs once over the whole Program rather than
// per package: the qbs invariants — transitive zero-alloc call trees,
// fields that must be atomic everywhere — are module-global properties.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Diagnostic
}

// report appends a diagnostic for node unless a //qbs:allow directive
// suppresses it.
func (p *Program) report(ds []Diagnostic, name string, node ast.Node, msg string) []Diagnostic {
	d := Diagnostic{Pos: p.Fset.Position(node.Pos()), Analyzer: name, Message: msg}
	if p.Annots().suppressed(d) {
		return ds
	}
	return append(ds, d)
}

// FuncInfo is the directive and declaration record of one function.
type FuncInfo struct {
	Key  string // declaration position (identity across test variants)
	Name string // qualified display name, e.g. "(*core.Searcher).QueryInto"
	Decl *ast.FuncDecl
	Pkg  *Package

	ZeroAlloc bool // //qbs:zeroalloc
	HotPath   bool // //qbs:hotpath
	Publish   bool // //qbs:publish

	// Allowed records function-level //qbs:allow directives by analyzer
	// name. Beyond suppressing findings inside the function, zeroalloc
	// treats an allowed function as a call-tree boundary: a sanctioned
	// cold path (pool refill, epoch rebind) is not descended into.
	Allowed map[string]bool
}

// Obj returns the function's types.Func.
func (fi *FuncInfo) Obj() *types.Func {
	if o, ok := fi.Pkg.Info.Defs[fi.Decl.Name].(*types.Func); ok {
		return o
	}
	return nil
}

// posKey renders a stable identity for an object position. Base
// packages and their test variants type-check the same files into
// distinct object universes; the declaration position is the identity
// that survives.
func (p *Program) posKey(pos token.Pos) string {
	return p.Fset.Position(pos).String()
}

// funcKey resolves a called object to a function-index key, or "".
func (p *Program) funcKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || !fn.Pos().IsValid() {
		return ""
	}
	return p.posKey(fn.Pos())
}

// trimPath makes a file path relative to the module root for display.
func trimPath(file, modDir string) string {
	if modDir != "" && strings.HasPrefix(file, modDir) {
		return strings.TrimPrefix(strings.TrimPrefix(file, modDir), "/")
	}
	return file
}

// EnclosingFunc returns the FuncInfo whose body contains pos, or nil.
func (p *Program) EnclosingFunc(pkg *Package, pos token.Pos) *FuncInfo {
	for _, fi := range p.Annots().funcList {
		if fi.Pkg == pkg && fi.Decl.Pos() <= pos && pos <= fi.Decl.End() {
			return fi
		}
	}
	// Fall back across packages (test variants share files).
	ppos := p.Fset.Position(pos)
	for _, fi := range p.Annots().funcList {
		fp, fe := p.Fset.Position(fi.Decl.Pos()), p.Fset.Position(fi.Decl.End())
		if fp.Filename == ppos.Filename && fp.Offset <= ppos.Offset && ppos.Offset <= fe.Offset {
			return fi
		}
	}
	return nil
}
