package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// Directives are magic comments with the prefix //qbs: (no space after
// the slashes, mirroring //go: conventions):
//
//	//qbs:zeroalloc            — function doc: the function and its
//	                             module-local callees must not allocate
//	//qbs:hotpath              — function doc: time.Now, fmt, reflection
//	                             and map iteration are banned inside
//	//qbs:publish              — function doc: this function is a
//	                             designated epoch-publish helper
//	//qbs:allow <analyzer> <reason>
//	                           — suppress that analyzer's findings on
//	                             the annotated line (same line or the
//	                             line below the comment), or in the
//	                             whole function when placed in its doc
type annotIndex struct {
	funcList  []*FuncInfo
	funcByKey map[string]*FuncInfo
	allows    []allowRule
	malformed []Diagnostic
}

type allowRule struct {
	file     string
	line     int // directive line
	analyzer string
	// Function line span when the directive sits in a FuncDecl doc
	// comment; zero for statement-level directives.
	funcStart, funcEnd int
}

// Annots builds (once) the directive index over every loaded package.
func (p *Program) Annots() *annotIndex {
	if p.annots != nil {
		return p.annots
	}
	ix := &annotIndex{funcByKey: make(map[string]*FuncInfo)}
	seenAllow := make(map[allowRule]bool)
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			docOwner := make(map[*ast.CommentGroup]*ast.FuncDecl)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fd.Doc != nil {
					docOwner[fd.Doc] = fd
				}
				key := p.posKey(fd.Name.Pos())
				if _, dup := ix.funcByKey[key]; dup {
					continue // same file checked again in a test variant
				}
				fi := &FuncInfo{
					Key:  key,
					Name: funcDisplayName(pkg.Pkg.Name(), fd),
					Decl: fd,
					Pkg:  pkg,
				}
				ix.funcByKey[key] = fi
				ix.funcList = append(ix.funcList, fi)
			}
			for _, cg := range file.Comments {
				owner := docOwner[cg]
				for _, c := range cg.List {
					verb, rest, ok := splitDirective(c.Text)
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					switch verb {
					case "zeroalloc", "hotpath", "publish":
						if owner == nil {
							ix.malformed = append(ix.malformed, Diagnostic{
								Pos:      pos,
								Analyzer: "directive",
								Message:  fmt.Sprintf("//qbs:%s must be in a function's doc comment", verb),
							})
							continue
						}
						fi := ix.funcByKey[p.posKey(owner.Name.Pos())]
						switch verb {
						case "zeroalloc":
							fi.ZeroAlloc = true
						case "hotpath":
							fi.HotPath = true
						case "publish":
							fi.Publish = true
						}
					case "allow":
						fields := strings.Fields(rest)
						if len(fields) < 2 {
							ix.malformed = append(ix.malformed, Diagnostic{
								Pos:      pos,
								Analyzer: "directive",
								Message:  "//qbs:allow needs an analyzer name and a reason: //qbs:allow <analyzer> <reason...>",
							})
							continue
						}
						rule := allowRule{file: pos.Filename, line: pos.Line, analyzer: fields[0]}
						if owner != nil {
							rule.funcStart = p.Fset.Position(owner.Pos()).Line
							rule.funcEnd = p.Fset.Position(owner.End()).Line
							if fi := ix.funcByKey[p.posKey(owner.Name.Pos())]; fi != nil {
								if fi.Allowed == nil {
									fi.Allowed = make(map[string]bool)
								}
								fi.Allowed[fields[0]] = true
							}
						}
						if !seenAllow[rule] {
							seenAllow[rule] = true
							ix.allows = append(ix.allows, rule)
						}
					default:
						ix.malformed = append(ix.malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "directive",
							Message:  fmt.Sprintf("unknown qbs directive %q (known: zeroalloc, hotpath, publish, allow)", verb),
						})
					}
				}
			}
		}
	}
	p.annots = ix
	return ix
}

// suppressed reports whether an //qbs:allow directive covers d.
func (ix *annotIndex) suppressed(d Diagnostic) bool {
	for _, r := range ix.allows {
		if r.analyzer != d.Analyzer || r.file != d.Pos.Filename {
			continue
		}
		if r.funcStart > 0 {
			if r.funcStart <= d.Pos.Line && d.Pos.Line <= r.funcEnd {
				return true
			}
			continue
		}
		if d.Pos.Line == r.line || d.Pos.Line == r.line+1 {
			return true
		}
	}
	return false
}

// splitDirective parses "//qbs:verb rest..." comment lines.
func splitDirective(text string) (verb, rest string, ok bool) {
	const prefix = "//qbs:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	body := text[len(prefix):]
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}

// funcDisplayName renders "pkg.Fn" or "(*pkg.Recv).Fn".
func funcDisplayName(pkgName string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgName + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		if id, ok := baseIdent(star.X); ok {
			return "(*" + pkgName + "." + id + ")." + fd.Name.Name
		}
	}
	if id, ok := baseIdent(recv); ok {
		return "(" + pkgName + "." + id + ")." + fd.Name.Name
	}
	return pkgName + "." + fd.Name.Name
}

func baseIdent(e ast.Expr) (string, bool) {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name, true
	case *ast.IndexExpr: // generic receiver Recv[T]
		return baseIdent(t.X)
	case *ast.IndexListExpr:
		return baseIdent(t.X)
	}
	return "", false
}

// Malformed returns diagnostics for unparseable qbs directives; the
// driver appends them to every run so typos never silently disable a
// check.
func (p *Program) Malformed() []Diagnostic {
	return p.Annots().malformed
}
