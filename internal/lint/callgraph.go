package lint

import (
	"go/ast"
	"go/types"
)

// The zeroalloc analyzer follows static calls from annotated functions
// into their module-local callees. The graph is deliberately simple:
// direct calls and concrete-method calls resolve; calls through
// interface values or function-typed variables do not (the runtime
// target is unknown statically). That soundness gap is documented in
// doc.go — the warm paths pin their dynamic calls behind small concrete
// types precisely so this resolution works.

var calleeCache = map[*FuncInfo][]*FuncInfo{}

// Callees returns the module functions fi statically calls.
func (p *Program) Callees(fi *FuncInfo) []*FuncInfo {
	if cs, ok := calleeCache[fi]; ok {
		return cs
	}
	ix := p.Annots()
	var out []*FuncInfo
	seen := map[*FuncInfo]bool{}
	if fi.Decl.Body != nil {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(fi.Pkg, call)
			if obj == nil {
				return true
			}
			key := p.funcKey(obj)
			if key == "" {
				return true
			}
			if callee := ix.funcByKey[key]; callee != nil && !seen[callee] {
				seen[callee] = true
				out = append(out, callee)
			}
			return true
		})
	}
	calleeCache[fi] = out
	return out
}

// calleeObject resolves a call expression to the called object, or nil
// when the target is dynamic (interface method, func-typed value) or a
// conversion.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			// Interface methods resolve to the interface's method
			// object, whose position is not a module FuncDecl; the
			// funcKey lookup filters them out naturally. Concrete
			// methods resolve to their declaration.
			return sel.Obj()
		}
		// Package-qualified call: other.Fn().
		if obj := pkg.Info.Uses[fun.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}
