package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness is a small analysistest: each testdata/<name>
// directory is a self-contained module whose sources carry
//
//	// want <analyzer> "substring"
//
// comments on the offending line (repeatable within one comment), or
//
//	// want:-1 <analyzer> "substring"
//
// with a relative line offset when the finding lands on a line that
// cannot hold a trailing comment (e.g. inside a directive comment
// group). The harness runs the full suite and requires an exact
// bidirectional match: every want fires, nothing else does.

var wantRE = regexp.MustCompile(`want(:[+-]\d+)? (\w+) "([^"]+)"`)

type expectation struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

func runFixture(t *testing.T, name string) {
	t.Helper()
	prog, err := Load(LoadConfig{Dir: filepath.Join("testdata", name), Tests: true}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	ds := RunAll(prog)

	var wants []*expectation
	seen := map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						pos := prog.Fset.Position(c.Pos())
						line := pos.Line
						if m[1] != "" {
							off, _ := strconv.Atoi(m[1][1:])
							line += off
						}
						key := fmt.Sprintf("%s:%d:%s:%s", pos.Filename, line, m[2], m[3])
						if seen[key] {
							continue
						}
						seen[key] = true
						wants = append(wants, &expectation{pos.Filename, line, m[2], m[3], false})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", name)
	}

	for _, d := range ds {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s: [%s] %s", prog.Rel(d.Pos), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d: [%s] containing %q",
				filepath.Base(w.file), w.line, w.analyzer, w.substr)
		}
	}
}

func TestZeroAllocFixture(t *testing.T)     { runFixture(t, "zeroalloc") }
func TestAtomicFieldFixture(t *testing.T)   { runFixture(t, "atomicfield") }
func TestLoggedPublishFixture(t *testing.T) { runFixture(t, "loggedpublish") }
func TestHotPathFixture(t *testing.T)       { runFixture(t, "hotpath") }
func TestSyncErrFixture(t *testing.T)       { runFixture(t, "syncerr") }
func TestDirectiveFixture(t *testing.T)     { runFixture(t, "directive") }
