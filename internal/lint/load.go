package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package loading without golang.org/x/tools: `go list -deps -export
// -json` enumerates the build-tag-resolved file sets and the export
// data of every dependency, module packages are type-checked from
// source in dependency order, and standard-library imports are
// satisfied from the compiler's export data via go/importer. The
// result is one consistent *types.Package universe, so analyzers can
// compare objects across packages.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	ForTest    string // set on test variants ("pkg [pkg.test]" shapes)
	Export     string // export data file (dependencies, with -export)
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Package is one type-checked module package (analysis unit).
type Package struct {
	// Path is the import path as listed; test variants keep the
	// "pkg [pkg.test]" decoration.
	Path string
	// BasePath is the undecorated import path (ForTest for variants).
	BasePath string
	Pkg      *types.Package
	Info     *types.Info
	Files    []*ast.File
}

// Program is a loaded module: every package to analyze plus the shared
// position and type universes.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // dependency order
	ModPath  string     // module path ("qbs")
	ModDir   string     // module root directory

	annots *annotIndex // lazily built directive index
}

// LoadConfig tunes Load.
type LoadConfig struct {
	// Dir is the working directory for go list (any directory inside
	// the module); empty means the current directory.
	Dir string
	// Tests includes _test.go files: test variants and external _test
	// packages become analysis units of their own.
	Tests bool
}

// Load lists patterns (e.g. "./...") with the go command and
// type-checks every module package from source. Standard-library
// dependencies are imported from compiler export data, so the load
// works offline and without any third-party tooling.
func Load(cfg LoadConfig, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-deps", "-export", "-json"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	// Cgo off: the pure-Go file sets are what go/types can check, and
	// the module itself is cgo-free.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("lint: no packages match %s", strings.Join(patterns, " "))
	}

	modDirCmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	modDirCmd.Dir = cfg.Dir
	modDirOut, err := modDirCmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: resolving module root: %v", err)
	}

	return typeCheck(pkgs, strings.TrimSpace(string(modDirOut)))
}

// typeCheck builds the Program from listed packages: module packages
// from source (dependency order is the listing order — go list emits
// dependencies first), everything else from export data.
func typeCheck(pkgs []*listPkg, modDir string) (*Program, error) {
	fset := token.NewFileSet()
	byPath := make(map[string]*listPkg, len(pkgs))
	for _, lp := range pkgs {
		byPath[lp.ImportPath] = lp
	}

	// Export-data importer for non-module dependencies. The gc importer
	// caches internally, so shared stdlib packages resolve to one
	// *types.Package across the whole program.
	exp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		lp := byPath[path]
		if lp == nil || lp.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(lp.Export)
	})

	checked := make(map[string]*Package) // decorated import path → checked module package
	prog := &Program{Fset: fset, ModDir: modDir}

	var load func(lp *listPkg) (*types.Package, error)
	resolve := func(from *listPkg, path string) (*types.Package, error) {
		if m, ok := from.ImportMap[path]; ok {
			path = m
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		dep := byPath[path]
		if dep == nil {
			return nil, fmt.Errorf("lint: %s imports %q: not in the listing", from.ImportPath, path)
		}
		if inModule(dep) {
			if p := checked[path]; p != nil {
				return p.Pkg, nil
			}
			return load(dep)
		}
		return exp.Import(path)
	}
	load = func(lp *listPkg) (*types.Package, error) {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo; not supported", lp.ImportPath)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				return resolve(lp, path)
			}),
		}
		tp, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
		}
		p := &Package{Path: lp.ImportPath, BasePath: basePath(lp), Pkg: tp, Info: info, Files: files}
		checked[lp.ImportPath] = p
		prog.Packages = append(prog.Packages, p)
		if prog.ModPath == "" && lp.Module != nil {
			prog.ModPath = lp.Module.Path
		}
		return tp, nil
	}

	for _, lp := range pkgs {
		if !inModule(lp) || checked[lp.ImportPath] != nil {
			continue
		}
		if _, err := load(lp); err != nil {
			return nil, err
		}
	}
	if len(prog.Packages) == 0 {
		return nil, fmt.Errorf("lint: no module packages in the listing")
	}
	return prog, nil
}

// inModule reports whether lp is a package to analyze: part of the
// main module and not a synthetic generated test-main.
func inModule(lp *listPkg) bool {
	if lp.Standard || lp.Module == nil {
		return false
	}
	if strings.HasSuffix(lp.ImportPath, ".test") && lp.Name == "main" {
		return false // generated _testmain.go package; its file may not exist
	}
	return true
}

// basePath strips the test-variant decoration.
func basePath(lp *listPkg) string {
	if lp.ForTest != "" {
		// External test packages ("qbs_test [qbs.test]") keep their
		// _test-suffixed path; in-package variants resolve to ForTest.
		if i := strings.IndexByte(lp.ImportPath, ' '); i >= 0 {
			p := lp.ImportPath[:i]
			if p == lp.ForTest+"_test" {
				return p
			}
		}
		return lp.ForTest
	}
	return lp.ImportPath
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// SortDiagnostics orders diagnostics by position then analyzer, and
// drops exact duplicates (base packages and their test variants share
// files, so both report the same finding).
func SortDiagnostics(ds []Diagnostic) []Diagnostic {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
