package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotPath bans latency hazards inside //qbs:hotpath regions — the
// traverse kernel sweeps and other per-vertex/per-edge inner loops.
// Unlike zeroalloc (an allocation budget), hotpath is about anything
// that costs unpredictable time per iteration: time.Now (vDSO call per
// vertex), fmt (allocation + reflection), package reflect, and map
// iteration (randomized order, cache-hostile). The rule is
// region-local: annotate the innermost kernel functions, not their
// orchestrators — Run/RunDirected legitimately call fmt.Errorf on cold
// error paths.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid time.Now, fmt, reflection and map iteration in //qbs:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Program) []Diagnostic {
	var ds []Diagnostic
	for _, fi := range p.Annots().funcList {
		if !fi.HotPath || fi.Decl.Body == nil {
			continue
		}
		pkg := fi.Pkg
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := typeOf(pkg, n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						ds = p.report(ds, "hotpath", n, fmt.Sprintf(
							"%s: map iteration in a hotpath region (randomized order, cache-hostile)", fi.Name))
					}
				}
			case *ast.CallExpr:
				se, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[se.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "fmt":
					ds = p.report(ds, "hotpath", n, fmt.Sprintf(
						"%s: fmt.%s in a hotpath region", fi.Name, se.Sel.Name))
				case "reflect":
					ds = p.report(ds, "hotpath", n, fmt.Sprintf(
						"%s: reflect.%s in a hotpath region", fi.Name, se.Sel.Name))
				case "time":
					if se.Sel.Name == "Now" {
						ds = p.report(ds, "hotpath", n, fmt.Sprintf(
							"%s: time.Now in a hotpath region (hoist the clock read out of the sweep)", fi.Name))
					}
				}
			}
			return true
		})
	}
	return ds
}
