package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func tinyHarness() *Harness {
	return New(Config{
		Scale:        0.02,
		NumQueries:   40,
		NumLandmarks: 8,
		Datasets:     []string{"DO", "FR"},
		PPLBudget:    30 * time.Second,
	})
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness()
	h.cfg.Out = &buf
	rows, err := h.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Key != "DO" || rows[1].Key != "FR" {
		t.Fatalf("rows: %+v", rows)
	}
	for _, r := range rows {
		if r.Vertices <= 0 || r.Edges <= 0 || r.AvgDistance <= 0 {
			t.Fatalf("empty stats: %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("markdown not rendered")
	}
}

func TestTable2And3(t *testing.T) {
	h := tinyHarness()
	rows2, err := h.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows2 {
		if r.BuildQbSP <= 0 || r.BuildQbS <= 0 || r.QueryQbS <= 0 || r.QueryBiBFS <= 0 {
			t.Fatalf("missing timings: %+v", r)
		}
		if r.PPLFailure == "" && r.QueryPPL <= 0 {
			t.Fatalf("PPL finished but no query time: %+v", r)
		}
	}
	rows3, err := h.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows3 {
		if r.QbSLabels <= 0 {
			t.Fatalf("size(L) empty: %+v", r)
		}
		if r.PPLFailure == "" && r.ParentFailure == "" && r.ParentBytes <= r.PPLBytes {
			t.Fatalf("ParentPPL should exceed PPL: %+v", r)
		}
	}
}

func TestFigures(t *testing.T) {
	h := tinyHarness()
	f7, err := h.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f7 {
		if r.Distribution.Mean <= 0 {
			t.Fatalf("fig7 empty: %+v", r)
		}
	}
	sweep := []int{4, 8}
	f8, err := h.Fig8(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8) != len(sweep)*2 {
		t.Fatalf("fig8 cells: %d", len(f8))
	}
	for _, c := range f8 {
		if c.FractionAll < 0 || c.FractionAll+c.FractionSome > 1.0001 {
			t.Fatalf("fig8 fractions out of range: %+v", c)
		}
	}
	f9, err := h.Fig9(sweep)
	if err != nil {
		t.Fatal(err)
	}
	// size(L) must grow linearly in |R|.
	for i := 0; i+1 < len(f9); i += 2 {
		if f9[i].Key == f9[i+1].Key && f9[i+1].LabelBytes != 2*f9[i].LabelBytes {
			t.Fatalf("size(L) not linear in R: %+v %+v", f9[i], f9[i+1])
		}
	}
	if _, err := h.Fig10(sweep); err != nil {
		t.Fatal(err)
	}
	f11, err := h.Fig11(sweep)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range f11 {
		if c.Query <= 0 {
			t.Fatalf("fig11 empty: %+v", c)
		}
	}
}

func TestAblations(t *testing.T) {
	h := tinyHarness()
	tr, err := h.AblationTraversal()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr {
		if r.ArcsBiBFS <= 0 || r.ArcsQbS <= 0 {
			t.Fatalf("traversal row empty: %+v", r)
		}
	}
	pr, err := h.AblationParallel([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pr {
		if len(r.Times) != 2 || r.Times[0] <= 0 {
			t.Fatalf("parallel row: %+v", r)
		}
	}
	sr, err := h.AblationLandmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(sr) != 2*4 {
		t.Fatalf("strategy rows: %d", len(sr))
	}
}

func TestAblationDirected(t *testing.T) {
	h := New(Config{Scale: 0.02, NumQueries: 30, NumLandmarks: 8, Datasets: []string{"WK", "TW"}})
	rows, err := h.AblationDirected()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Build <= 0 || r.Query <= 0 || r.BiBFS <= 0 {
			t.Fatalf("empty row: %+v", r)
		}
	}
}

func TestDynamicUpdates(t *testing.T) {
	// The acceptance bar: incremental insertion repair must beat a full
	// rebuild by at least an order of magnitude. Skipped under the race
	// detector, whose uneven slowdown makes wall-clock ratios on a tiny
	// harness meaningless; the real demonstration is `qbs-bench -exp
	// dynamic` at mid-size (~45-60x). Other test binaries run
	// concurrently with this one and can steal the only core mid-stream,
	// so the ratio gets a few attempts — contention is transient, a real
	// regression fails every time.
	const attempts = 3
	for attempt := 1; ; attempt++ {
		var buf bytes.Buffer
		h := tinyHarness()
		h.cfg.Out = &buf
		h.cfg.NumQueries = 400
		rows, err := h.DynamicUpdates([]float64{0.2})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("rows: %+v", rows)
		}
		r := rows[0]
		if r.Inserts == 0 || r.Deletes == 0 || r.Queries == 0 {
			t.Fatalf("empty stream: %+v", r)
		}
		if !strings.Contains(buf.String(), "Dynamic updates") {
			t.Fatal("markdown not rendered")
		}
		if raceEnabled {
			t.Skip("wall-clock ratio not meaningful under -race")
		}
		if r.InsertSpeedup >= 10 {
			return
		}
		if attempt == attempts {
			t.Fatalf("insert speedup %.1f× < 10× after %d attempts (avg insert %v, rebuild %v)",
				r.InsertSpeedup, attempts, r.AvgInsert, r.Rebuild)
		}
		t.Logf("attempt %d: insert speedup %.1f× < 10×, retrying (likely scheduler contention)", attempt, r.InsertSpeedup)
	}
}

func TestDirectedTable(t *testing.T) {
	var buf bytes.Buffer
	h := New(Config{Scale: 0.02, NumQueries: 30, NumLandmarks: 8, Datasets: []string{"WK", "BA"}, Out: &buf})
	rows, err := h.DirectedTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Vertices <= 0 || r.Arcs <= 0 || r.EngineLabellingNs <= 0 || r.ScalarLabellingNs <= 0 {
			t.Fatalf("empty row: %+v", r)
		}
		if r.QueryAllocsPerOp > 0.5 {
			t.Fatalf("%s: warm directed query allocates %.2f/op", r.Key, r.QueryAllocsPerOp)
		}
	}
	if !strings.Contains(buf.String(), "DirectedTable") {
		t.Fatal("markdown not rendered")
	}
}

func TestDirectedTableJSON(t *testing.T) {
	h := New(Config{Scale: 0.02, NumQueries: 20, NumLandmarks: 6, Datasets: []string{"WK"}})
	path := t.TempDir() + "/bench_pr4.json"
	if err := h.DirectedTableJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep DirectedTableReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != DirectedTableSchema || len(rep.Datasets) != 1 || rep.Datasets[0].Key != "WK" {
		t.Fatalf("report: %+v", rep)
	}
}

// BenchmarkDirectedTable keeps the directed experiment runnable by the
// CI bench smoke job (one iteration at tiny scale).
func BenchmarkDirectedTable(b *testing.B) {
	h := New(Config{Scale: 0.02, NumQueries: 20, NumLandmarks: 6, Datasets: []string{"WK"}})
	for i := 0; i < b.N; i++ {
		if _, err := h.DirectedTable(); err != nil {
			b.Fatal(err)
		}
	}
}
