package bench

import (
	"fmt"
	"time"

	"qbs/internal/core"
	"qbs/internal/dynamic"
	"qbs/internal/workload"
)

// Dynamic-updates experiment (beyond the paper, which freezes the graph
// after construction): serve a mixed read/write stream against the
// live-mutable index and compare per-update incremental repair cost with
// the alternative the paper's design implies — a full rebuild per batch
// of changes. One row per write ratio on a mid-size dataset analog.

// DynamicRow is one row of the dynamic-updates experiment.
type DynamicRow struct {
	Dataset    string
	WriteRatio float64
	Queries    int
	Inserts    int
	Deletes    int

	AvgQuery  time.Duration // mean query latency during churn
	AvgInsert time.Duration // mean AddEdge (incremental repair) latency
	AvgDelete time.Duration // mean RemoveEdge latency
	Rebuild   time.Duration // full static rebuild of the final graph

	InsertSpeedup float64 // Rebuild / AvgInsert
	DeleteSpeedup float64 // Rebuild / AvgDelete

	ColumnsRebuilt uint64 // budget-fallback re-BFSes across the stream
	Compactions    uint64
}

// dynamicDataset picks the experiment's dataset: YT (the mid-size
// Youtube analog) when configured, otherwise the largest configured key.
func (h *Harness) dynamicDataset() string {
	best := ""
	for _, k := range h.sortedKeys() {
		if k == "YT" {
			return k
		}
		best = k
	}
	return best
}

// DynamicUpdates runs the experiment across write ratios (nil = 1%,
// 10%, 50%).
func (h *Harness) DynamicUpdates(ratios []float64) ([]DynamicRow, error) {
	if len(ratios) == 0 {
		ratios = []float64{0.01, 0.1, 0.5}
	}
	key := h.dynamicDataset()
	g, err := h.Graph(key)
	if err != nil {
		return nil, err
	}

	var rows []DynamicRow
	for _, ratio := range ratios {
		d, err := dynamic.New(g, g.TopDegreeVertices(h.cfg.NumLandmarks), dynamic.Options{})
		if err != nil {
			return nil, err
		}
		// cfg.NumQueries keeps its harness-wide meaning (query pairs per
		// dataset): writes ride on top, so the stream is sized for the
		// expected query fraction.
		var total int
		if ratio < 0.95 {
			total = int(float64(h.cfg.NumQueries) / (1 - ratio))
		} else {
			total = h.cfg.NumQueries * 20
		}
		ops := workload.MixedOps(g, total, ratio, h.cfg.Seed)

		row := DynamicRow{Dataset: key, WriteRatio: ratio}
		var qTime, insTime, delTime time.Duration
		for _, op := range ops {
			start := time.Now()
			switch op.Kind {
			case workload.OpQuery:
				d.Query(op.U, op.V)
				qTime += time.Since(start)
				row.Queries++
			case workload.OpInsert:
				if _, err := d.AddEdge(op.U, op.V); err != nil {
					return nil, fmt.Errorf("dynamic insert {%d,%d}: %w", op.U, op.V, err)
				}
				insTime += time.Since(start)
				row.Inserts++
			case workload.OpDelete:
				if _, err := d.RemoveEdge(op.U, op.V); err != nil {
					return nil, fmt.Errorf("dynamic delete {%d,%d}: %w", op.U, op.V, err)
				}
				delTime += time.Since(start)
				row.Deletes++
			}
		}
		d.WaitCompaction()

		// The alternative: rebuild the static index over the final graph.
		final := d.CurrentGraph().Materialize()
		start := time.Now()
		if _, err := core.Build(final, core.Options{NumLandmarks: h.cfg.NumLandmarks}); err != nil {
			return nil, err
		}
		row.Rebuild = time.Since(start)

		if row.Queries > 0 {
			row.AvgQuery = qTime / time.Duration(row.Queries)
		}
		if row.Inserts > 0 {
			row.AvgInsert = insTime / time.Duration(row.Inserts)
			row.InsertSpeedup = float64(row.Rebuild) / float64(row.AvgInsert)
		}
		if row.Deletes > 0 {
			row.AvgDelete = delTime / time.Duration(row.Deletes)
			row.DeleteSpeedup = float64(row.Rebuild) / float64(row.AvgDelete)
		}
		st := d.Stats()
		row.ColumnsRebuilt = st.ColumnsRebuilt
		row.Compactions = st.Compactions
		rows = append(rows, row)
	}

	tbl := &table{
		title: fmt.Sprintf("Dynamic updates (%s): incremental repair vs full rebuild", key),
		header: []string{"write%", "queries", "ins", "del", "avg query", "avg insert", "avg delete",
			"rebuild", "ins speedup", "del speedup", "fallbacks", "compactions"},
	}
	for _, r := range rows {
		tbl.add(
			fmt.Sprintf("%.0f%%", r.WriteRatio*100),
			fmtCount(r.Queries), fmtCount(r.Inserts), fmtCount(r.Deletes),
			fmtDuration(r.AvgQuery), fmtDuration(r.AvgInsert), fmtDuration(r.AvgDelete),
			fmtDuration(r.Rebuild),
			fmt.Sprintf("%.0f×", r.InsertSpeedup),
			fmt.Sprintf("%.0f×", r.DeleteSpeedup),
			fmt.Sprintf("%d", r.ColumnsRebuilt),
			fmt.Sprintf("%d", r.Compactions),
		)
	}
	tbl.render(h.cfg.Out)
	return rows, nil
}
