//go:build !race

package bench

// raceEnabled reports whether the race detector is active (see
// race_on.go); timing-sensitive assertions are skipped under it.
const raceEnabled = false
