package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"qbs/internal/core"
	"qbs/internal/dynamic"
	"qbs/internal/graph"
	"qbs/internal/traverse"
	"qbs/internal/workload"
)

// Multicore scaling experiment (the PR 7 tentpole deliverable): sweep
// the traverse pool width over {1, 2, 4, 8} and measure every phase
// that rides on the parallel frontier kernels — labelling build,
// full-graph direction-optimizing sweep, guided query and dynamic
// column rebuild — checking at each width that the results are
// bit-identical to the sequential run. Absolute speedups only mean
// something on a machine with that many cores (NumCPU is recorded in
// the snapshot for exactly that reason); the bit-identical column must
// hold everywhere.

// ScalingSchema identifies the BENCH_PR7.json format version.
const ScalingSchema = "qbs-bench-scaling/v1"

// ScalingPhase is one pool width's measurements on one dataset.
type ScalingPhase struct {
	Workers int `json:"workers"`

	BuildNs  int64 `json:"build_ns"`  // best-of-N core.Build (labelling + meta + Δ)
	SweepNs  int64 `json:"sweep_ns"`  // best-of-N full-graph Expander BFS
	RepairNs int64 `json:"repair_ns"` // dynamic write stream with budget-1 column rebuilds

	QueryP50Ns int64 `json:"query_p50_ns"` // warm guided search, pool width applied
	QueryP99Ns int64 `json:"query_p99_ns"`

	BuildSpeedup  float64 `json:"build_speedup"` // sequential / this width
	SweepSpeedup  float64 `json:"sweep_speedup"`
	RepairSpeedup float64 `json:"repair_speedup"`

	// Identical reports that this width reproduced the sequential run
	// bit for bit: serialized index (landmarks, σ, labels — Δ derives
	// deterministically from those), sweep distance array, canonical
	// query SPGs and post-churn dynamic query answers.
	Identical bool `json:"identical"`
}

// ScalingDataset is one dataset block of the scaling snapshot.
type ScalingDataset struct {
	Key      string `json:"key"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`

	// IndexSHA256 fingerprints the sequential build; every other width
	// must reproduce it exactly.
	IndexSHA256 string `json:"index_sha256"`

	Phases []ScalingPhase `json:"phases"`
}

// ScalingSnapshot is the machine-readable scaling record
// (BENCH_PR7.json). NumCPU captures whether the measuring host could
// physically exhibit parallel speedup; on a single-core box the
// expected speedup at every width is ~1× and only the bit-identical
// columns carry information.
type ScalingSnapshot struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Scale      float64 `json:"scale"`
	Queries    int     `json:"queries"`
	Landmarks  int     `json:"landmarks"`
	Seed       int64   `json:"seed"`

	Workers  []int            `json:"workers"`
	Datasets []ScalingDataset `json:"datasets"`
}

// scalingReps is best-of-N for the build and sweep timings (same
// convention as the perf snapshot's buildReps, fewer reps because the
// scaling run multiplies everything by the number of widths).
const scalingReps = 3

// scalingWrites is the length of the dynamic write stream timed per
// width. RepairBudget 1 forces essentially every deletion through the
// full column re-BFS path, which is the parallel kernel under test.
const scalingWrites = 32

// Scaling measures build/sweep/query/repair latency across traverse
// pool widths (nil = 1, 2, 4, 8) on the configured datasets and
// verifies bit-identical results at every width. Driven by
// `qbs-bench -exp scaling` and by tests.
func (h *Harness) Scaling(workers []int) (*ScalingSnapshot, error) {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	cfg := h.cfg
	s := &ScalingSnapshot{
		Schema:     ScalingSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      cfg.Scale,
		Queries:    cfg.NumQueries,
		Landmarks:  cfg.NumLandmarks,
		Seed:       cfg.Seed,
		Workers:    workers,
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		row, err := scalingDataset(key, g, cfg, workers)
		if err != nil {
			return nil, err
		}
		s.Datasets = append(s.Datasets, row)
	}
	h.renderScaling(s)
	return s, nil
}

func scalingDataset(key string, g *graph.Graph, cfg Config, workers []int) (ScalingDataset, error) {
	row := ScalingDataset{Key: key, Vertices: g.NumVertices(), Edges: g.NumEdges()}
	pairs := workload.SamplePairs(g, cfg.NumQueries, cfg.Seed)

	// Reference run at every width; index 0 must be the sequential one
	// the others are checked against.
	if workers[0] != 1 {
		workers = append([]int{1}, workers...)
	}
	var base *scalingRef
	for _, w := range workers {
		ph, ref, err := scalingPhase(g, cfg, w, pairs)
		if err != nil {
			return row, err
		}
		if base == nil {
			base = ref
			row.IndexSHA256 = ref.indexSHA
			ph.Identical = true
		} else {
			ph.Identical = ref.equal(base)
			ph.BuildSpeedup = ratio(base.buildNs, ph.BuildNs)
			ph.SweepSpeedup = ratio(base.sweepNs, ph.SweepNs)
			ph.RepairSpeedup = ratio(base.repairNs, ph.RepairNs)
		}
		row.Phases = append(row.Phases, ph)
	}
	return row, nil
}

// scalingRef holds one width's result fingerprints and baseline times.
type scalingRef struct {
	indexSHA  string
	sweepSHA  string
	querySHA  string
	repairSHA string

	buildNs, sweepNs, repairNs int64
}

func (r *scalingRef) equal(o *scalingRef) bool {
	return r.indexSHA == o.indexSHA && r.sweepSHA == o.sweepSHA &&
		r.querySHA == o.querySHA && r.repairSHA == o.repairSHA
}

func scalingPhase(g *graph.Graph, cfg Config, w int, pairs []workload.Pair) (ScalingPhase, *scalingRef, error) {
	ph := ScalingPhase{Workers: w}
	ref := &scalingRef{}

	// Phase 1: labelling build at pool width w, best of scalingReps.
	var ix *core.Index
	for rep := 0; rep < scalingReps; rep++ {
		t0 := time.Now()
		built, err := core.Build(g, core.Options{NumLandmarks: cfg.NumLandmarks, Parallelism: w})
		if err != nil {
			return ph, nil, err
		}
		if d := time.Since(t0).Nanoseconds(); rep == 0 || d < ph.BuildNs {
			ph.BuildNs = d
		}
		ix = built
	}
	sha, err := indexSHA(ix)
	if err != nil {
		return ph, nil, err
	}
	ref.indexSHA = sha

	// Phase 2: full-graph direction-optimizing sweep from the
	// highest-degree vertex — the raw Expander kernel without any of
	// the guided-search machinery around it.
	root := g.TopDegreeVertices(1)[0]
	deg := g.Degrees()
	ws := traverse.NewWorkspace(g.NumVertices())
	exp := traverse.NewExpander(g.NumVertices())
	exp.Parallelism = w
	frontier := make([]graph.V, 0, g.NumVertices())
	next := make([]graph.V, 0, g.NumVertices())
	for rep := 0; rep < scalingReps; rep++ {
		ws.Reset()
		exp.Begin(g, deg)
		ws.SetDist(root, 0)
		frontier = append(frontier[:0], root)
		t0 := time.Now()
		for d := int32(0); len(frontier) > 0; d++ {
			next, _ = exp.Expand(ws, frontier, d, next[:0])
			frontier, next = next, frontier
		}
		if d := time.Since(t0).Nanoseconds(); rep == 0 || d < ph.SweepNs {
			ph.SweepNs = d
		}
	}
	hs := sha256.New()
	var buf [4]byte
	for v := 0; v < g.NumVertices(); v++ {
		d := int32(-1)
		if ws.Seen(graph.V(v)) {
			d = ws.Dist(graph.V(v))
		}
		binary.LittleEndian.PutUint32(buf[:], uint32(d))
		hs.Write(buf[:])
	}
	ref.sweepSHA = hex.EncodeToString(hs.Sum(nil))

	// Phase 3: warm guided queries with the pool applied to both
	// expansion directions.
	sr := core.NewSearcher(ix)
	sr.SetParallelism(w)
	spg := graph.NewSPG(0, 0)
	for _, p := range pairs {
		sr.QueryInto(spg, p.U, p.V)
	}
	lat := make([]int64, len(pairs))
	hq := sha256.New()
	for i, p := range pairs {
		t0 := time.Now()
		sr.QueryInto(spg, p.U, p.V)
		lat[i] = time.Since(t0).Nanoseconds()
		hashSPG(hq, spg)
	}
	ref.querySHA = hex.EncodeToString(hq.Sum(nil))
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ph.QueryP50Ns = lat[len(lat)/2]
	ph.QueryP99Ns = lat[len(lat)*99/100]

	// Phase 4: dynamic churn with RepairBudget 1, so deletions fall
	// through to the full column re-BFS (the parallel rebuild path).
	d, err := dynamic.New(g, g.TopDegreeVertices(cfg.NumLandmarks), dynamic.Options{
		RepairBudget:    1,
		CompactFraction: -1,
		Parallelism:     w,
	})
	if err != nil {
		return ph, nil, err
	}
	ops := workload.MixedOps(g, scalingWrites, 1.0, cfg.Seed)
	t0 := time.Now()
	for _, op := range ops {
		switch op.Kind {
		case workload.OpInsert:
			_, err = d.AddEdge(op.U, op.V)
		case workload.OpDelete:
			_, err = d.RemoveEdge(op.U, op.V)
		default:
			continue
		}
		if err != nil {
			return ph, nil, fmt.Errorf("scaling dynamic op {%d,%d}: %w", op.U, op.V, err)
		}
	}
	ph.RepairNs = time.Since(t0).Nanoseconds()
	hr := sha256.New()
	nq := len(pairs)
	if nq > 128 {
		nq = 128
	}
	for _, p := range pairs[:nq] {
		hashSPG(hr, d.Query(p.U, p.V))
	}
	ref.repairSHA = hex.EncodeToString(hr.Sum(nil))

	ref.buildNs, ref.sweepNs, ref.repairNs = ph.BuildNs, ph.SweepNs, ph.RepairNs
	return ph, ref, nil
}

// indexSHA hashes the serialized index: landmarks, the σ matrix and
// the full label matrix. Δ and the meta table derive deterministically
// from those (Lemma 5.2), so this is a complete result fingerprint.
func indexSHA(ix *core.Index) (string, error) {
	h := sha256.New()
	if err := ix.Write(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// hashSPG folds a canonicalized SPG — endpoints, distance, edge list —
// into h.
func hashSPG(h interface{ Write(p []byte) (int, error) }, s *graph.SPG) {
	s.Canonicalize()
	var buf [8]byte
	put := func(a, b int32) {
		binary.LittleEndian.PutUint32(buf[:4], uint32(a))
		binary.LittleEndian.PutUint32(buf[4:], uint32(b))
		h.Write(buf[:])
	}
	put(int32(s.Source), int32(s.Target))
	put(s.Dist, int32(s.NumEdges()))
	for _, e := range s.Edges() {
		put(int32(e.U), int32(e.W))
	}
}

func ratio(base, got int64) float64 {
	if got <= 0 {
		return 0
	}
	return float64(base) / float64(got)
}

// renderScaling prints the snapshot as markdown tables.
func (h *Harness) renderScaling(s *ScalingSnapshot) {
	for _, ds := range s.Datasets {
		tbl := &table{
			title: fmt.Sprintf("Scaling %s (|V|=%s, |E|=%s, NumCPU=%d)",
				ds.Key, fmtCount(ds.Vertices), fmtCount(ds.Edges), s.NumCPU),
			header: []string{"workers", "build", "speedup", "sweep", "speedup",
				"repair", "speedup", "query p50", "query p99", "identical"},
		}
		for _, ph := range ds.Phases {
			tbl.add(
				fmt.Sprintf("%d", ph.Workers),
				fmtDuration(time.Duration(ph.BuildNs)), fmtSpeedup(ph.BuildSpeedup),
				fmtDuration(time.Duration(ph.SweepNs)), fmtSpeedup(ph.SweepSpeedup),
				fmtDuration(time.Duration(ph.RepairNs)), fmtSpeedup(ph.RepairSpeedup),
				fmtDuration(time.Duration(ph.QueryP50Ns)),
				fmtDuration(time.Duration(ph.QueryP99Ns)),
				fmt.Sprintf("%v", ph.Identical),
			)
		}
		tbl.render(h.cfg.Out)
	}
}

func fmtSpeedup(x float64) string {
	if x == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f×", x)
}

// ScalingJSON runs the scaling experiment and writes the BENCH_PR7.json
// record.
func (h *Harness) ScalingJSON(path string, workers []int) error {
	s, err := h.Scaling(workers)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
