package bench

import (
	"fmt"
	"time"

	"qbs/internal/bfs"
	"qbs/internal/core"
	"qbs/internal/datasets"
	"qbs/internal/ppl"
	"qbs/internal/workload"
)

// Table 1 — dataset statistics.

// Table1Row is one dataset's statistics alongside the published values.
type Table1Row struct {
	Key, Name, Kind string
	Directed        bool
	Vertices        int
	Edges           int
	MaxDegree       int
	AvgDegree       float64
	AvgDistance     float64
	SizeBytes       int64
	PaperAvgDegree  float64
	PaperAvgDist    float64
}

// Table1 reproduces the dataset statistics table over the analogs.
func (h *Harness) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	t := &table{
		title:  "Table 1 — dataset analogs",
		header: []string{"Dataset", "Type", "|V|", "|E|", "max deg", "avg deg", "avg dist", "|G|", "paper avg deg", "paper avg dist"},
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		spec, _ := datasets.ByKey(key)
		paper := datasets.Paper[key]
		row := Table1Row{
			Key: key, Name: spec.Name, Kind: spec.Kind, Directed: spec.Directed,
			Vertices: g.NumVertices(), Edges: g.NumEdges(),
			MaxDegree: g.MaxDegree(), AvgDegree: g.AvgDegree(),
			AvgDistance:    workload.ApproxAvgDistance(g, 24, h.cfg.Seed),
			SizeBytes:      g.SizeBytes(),
			PaperAvgDegree: paper.AvgDeg, PaperAvgDist: paper.AvgDist,
		}
		rows = append(rows, row)
		t.add(fmt.Sprintf("%s (%s)", spec.Name, key), spec.Kind,
			fmtCount(row.Vertices), fmtCount(row.Edges), fmtCount(row.MaxDegree),
			fmt.Sprintf("%.2f", row.AvgDegree), fmt.Sprintf("%.2f", row.AvgDistance),
			fmtBytes(row.SizeBytes),
			fmt.Sprintf("%.2f", paper.AvgDeg), fmt.Sprintf("%.2f", paper.AvgDist))
	}
	t.render(h.cfg.Out)
	return rows, nil
}

// Table 2 — construction time and average query time.

// Table2Row reports per-dataset construction and query timings. A nil
// duration pointer means the method did not complete: Failure* records
// whether it was DNF (time budget) or OOE (size budget).
type Table2Row struct {
	Key string

	BuildQbSP time.Duration // parallel labelling (QbS-P)
	BuildQbS  time.Duration // sequential labelling (QbS)

	BuildPPL        time.Duration
	PPLFailure      string // "", "DNF" or "OOE"
	BuildParent     time.Duration
	ParentFailure   string
	QueryQbS        time.Duration // mean per query
	QueryPPL        time.Duration
	QueryParent     time.Duration
	QueryBiBFS      time.Duration
	SpeedupVsBiBFS  float64
	QueriesMeasured int
}

// Table2 reproduces the construction-time and query-time comparison.
func (h *Harness) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	t := &table{
		title: "Table 2 — construction time and average query time",
		header: []string{"Dataset", "QbS-P build", "QbS build", "PPL build", "ParentPPL build",
			"QbS query", "PPL query", "ParentPPL query", "Bi-BFS query", "QbS speedup vs Bi-BFS"},
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Key: key}

		// QbS-P: parallel labelling construction.
		ixP, err := core.Build(g, core.Options{NumLandmarks: h.cfg.NumLandmarks})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", key, err)
		}
		row.BuildQbSP = ixP.Stats().TotalTime

		// QbS: sequential labelling construction.
		ixS, err := core.Build(g, core.Options{NumLandmarks: h.cfg.NumLandmarks, Parallelism: 1})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", key, err)
		}
		row.BuildQbS = ixS.Stats().TotalTime

		// PPL / ParentPPL under the paper-style budgets.
		pplIx, err := ppl.Build(g, ppl.Options{
			MaxTime: h.cfg.PPLBudget, MaxLabelBytes: h.cfg.LabelByteBudget,
		})
		switch err {
		case nil:
			row.BuildPPL = pplIx.BuildTime()
		case ppl.ErrTimeBudget:
			row.PPLFailure = "DNF"
		case ppl.ErrSizeBudget:
			row.PPLFailure = "OOE"
		default:
			return nil, err
		}
		parentIx, err := ppl.Build(g, ppl.Options{
			WithParents: true, MaxTime: h.cfg.ParentPPLBudget, MaxLabelBytes: h.cfg.LabelByteBudget,
		})
		switch err {
		case nil:
			row.BuildParent = parentIx.BuildTime()
		case ppl.ErrTimeBudget:
			row.ParentFailure = "DNF"
		case ppl.ErrSizeBudget:
			row.ParentFailure = "OOE"
		default:
			return nil, err
		}

		// Query timings over the shared workload.
		pairs := workload.SamplePairs(g, h.cfg.NumQueries, h.cfg.Seed)
		row.QueriesMeasured = len(pairs)

		sr := core.NewSearcher(ixP)
		start := time.Now()
		for _, p := range pairs {
			sr.Query(p.U, p.V)
		}
		row.QueryQbS = time.Since(start) / time.Duration(len(pairs))

		if pplIx != nil && row.PPLFailure == "" {
			start = time.Now()
			for _, p := range pairs {
				pplIx.Query(p.U, p.V)
			}
			row.QueryPPL = time.Since(start) / time.Duration(len(pairs))
		}
		if parentIx != nil && row.ParentFailure == "" {
			start = time.Now()
			for _, p := range pairs {
				parentIx.Query(p.U, p.V)
			}
			row.QueryParent = time.Since(start) / time.Duration(len(pairs))
		}

		bib := bfs.NewBidirectional(g)
		start = time.Now()
		for _, p := range pairs {
			bib.Query(p.U, p.V)
		}
		row.QueryBiBFS = time.Since(start) / time.Duration(len(pairs))
		if row.QueryQbS > 0 {
			row.SpeedupVsBiBFS = float64(row.QueryBiBFS) / float64(row.QueryQbS)
		}
		rows = append(rows, row)

		orDash := func(d time.Duration, failure string) string {
			if failure != "" {
				return failure
			}
			if d == 0 {
				return "-"
			}
			return fmtDuration(d)
		}
		t.add(key, fmtDuration(row.BuildQbSP), fmtDuration(row.BuildQbS),
			orDash(row.BuildPPL, row.PPLFailure), orDash(row.BuildParent, row.ParentFailure),
			fmtDuration(row.QueryQbS), orDash(row.QueryPPL, row.PPLFailure),
			orDash(row.QueryParent, row.ParentFailure), fmtDuration(row.QueryBiBFS),
			fmt.Sprintf("%.1fx", row.SpeedupVsBiBFS))
	}
	t.render(h.cfg.Out)
	return rows, nil
}

// Table 3 — labelling sizes.

// Table3Row reports the size accounting of each method's labelling.
type Table3Row struct {
	Key           string
	QbSLabels     int64 // size(L)
	QbSDelta      int64 // size(Δ)
	QbSMeta       int64 // meta-graph matrices
	PPLBytes      int64
	PPLFailure    string
	ParentBytes   int64
	ParentFailure string
	GraphBytes    int64
}

// Table3 reproduces the labelling-size comparison.
func (h *Harness) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	t := &table{
		title:  "Table 3 — labelling sizes",
		header: []string{"Dataset", "QbS size(L)", "QbS size(Δ)", "PPL", "ParentPPL", "|G|"},
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		ix, err := core.Build(g, core.Options{NumLandmarks: h.cfg.NumLandmarks})
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Key:        key,
			QbSLabels:  ix.SizeLabelsBytes(),
			QbSDelta:   ix.SizeDeltaBytes(),
			QbSMeta:    ix.SizeMetaBytes(),
			GraphBytes: g.SizeBytes(),
		}
		if p, err := ppl.Build(g, ppl.Options{MaxTime: h.cfg.PPLBudget, MaxLabelBytes: h.cfg.LabelByteBudget}); err == nil {
			row.PPLBytes = p.SizeBytes()
		} else if err == ppl.ErrTimeBudget {
			row.PPLFailure = "DNF"
		} else if err == ppl.ErrSizeBudget {
			row.PPLFailure = "OOE"
		} else {
			return nil, err
		}
		if p, err := ppl.Build(g, ppl.Options{WithParents: true, MaxTime: h.cfg.ParentPPLBudget, MaxLabelBytes: h.cfg.LabelByteBudget}); err == nil {
			row.ParentBytes = p.SizeBytes()
		} else if err == ppl.ErrTimeBudget {
			row.ParentFailure = "DNF"
		} else if err == ppl.ErrSizeBudget {
			row.ParentFailure = "OOE"
		} else {
			return nil, err
		}
		rows = append(rows, row)

		orDash := func(b int64, failure string) string {
			if failure != "" {
				return failure
			}
			if b == 0 {
				return "-"
			}
			return fmtBytes(b)
		}
		t.add(key, fmtBytes(row.QbSLabels), fmtBytes(row.QbSDelta),
			orDash(row.PPLBytes, row.PPLFailure), orDash(row.ParentBytes, row.ParentFailure),
			fmtBytes(row.GraphBytes))
	}
	t.render(h.cfg.Out)
	return rows, nil
}
