package bench

import (
	"fmt"
	"testing"
	"time"

	"qbs/internal/core"
	"qbs/internal/graph"
	"qbs/internal/obs"
	"qbs/internal/workload"
)

// TraceOverheadRow is one measured serving mode of the span tracer.
type TraceOverheadRow struct {
	Mode     string  // untraced | traced-dropped | traced-kept
	NsPerOp  float64 // warm QueryInto latency including the span protocol
	AllocsOp float64 // heap allocations per op
}

// TraceOverhead quantifies what the distributed-tracing span protocol
// costs a warm query on the first configured dataset: the bare engine,
// the drop path (head sampling off, nothing slow — the steady state,
// which must stay at 0 allocs/op), and the keep path (every trace
// retained and snapshotted into the ring — the worst case a -slowlog 0
// misconfiguration could pin a server at).
func (h *Harness) TraceOverhead() ([]TraceOverheadRow, error) {
	key := h.sortedKeys()[0]
	g, err := h.Graph(key)
	if err != nil {
		return nil, err
	}
	ix, err := core.Build(g, core.Options{NumLandmarks: h.cfg.NumLandmarks})
	if err != nil {
		return nil, err
	}
	sr := core.NewSearcher(ix)
	spg := graph.NewSPG(0, 0)
	pairs := workload.SamplePairs(g, h.cfg.NumQueries, h.cfg.Seed)
	for _, p := range pairs {
		sr.QueryInto(spg, p.U, p.V) // warm the searcher buffers
	}

	measure := func(mode string, op func(i int)) TraceOverheadRow {
		allocs := testing.AllocsPerRun(len(pairs), func() {
			// AllocsPerRun adds its own iteration; reuse pair 0.
			op(0)
		})
		start := time.Now()
		for i := range pairs {
			op(i)
		}
		elapsed := time.Since(start)
		return TraceOverheadRow{
			Mode:     mode,
			NsPerOp:  float64(elapsed.Nanoseconds()) / float64(len(pairs)),
			AllocsOp: allocs,
		}
	}

	rows := []TraceOverheadRow{
		measure("untraced", func(i int) {
			p := pairs[i]
			sr.QueryInto(spg, p.U, p.V)
		}),
	}

	traced := func(tr *obs.Tracer) func(int) {
		return func(i int) {
			p := pairs[i]
			tb := tr.Begin("/spg", "", 0, false)
			sp := tb.StartSpan("stage:expand")
			st := sr.QueryInto(spg, p.U, p.V)
			sp.SetInt("arcs", st.ArcsScanned)
			sp.End()
			tb.Root().SetInt("status", 200)
			tr.Finish(tb)
		}
	}

	drop := obs.NewTracer(64)
	drop.SetSlowThreshold(time.Hour) // nothing qualifies: pure drop path
	rows = append(rows, measure("traced-dropped", traced(drop)))

	keep := obs.NewTracer(64)
	keep.SetSlowThreshold(0) // everything retained: snapshot every trace
	rows = append(rows, measure("traced-kept", traced(keep)))

	t := &table{
		title:  fmt.Sprintf("Span tracing overhead (%s, warm QueryInto, %d pairs)", key, len(pairs)),
		header: []string{"mode", "ns/op", "allocs/op", "overhead"},
	}
	base := rows[0].NsPerOp
	for _, r := range rows {
		overhead := "—"
		if r.Mode != "untraced" && base > 0 {
			overhead = fmt.Sprintf("%+.1f%%", (r.NsPerOp-base)/base*100)
		}
		t.add(r.Mode, fmt.Sprintf("%.0f", r.NsPerOp), fmt.Sprintf("%.2f", r.AllocsOp), overhead)
	}
	t.render(h.cfg.Out)
	return rows, nil
}
