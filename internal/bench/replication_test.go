package bench

import (
	"runtime"
	"testing"
	"time"
)

// smallReplicaScaling is a seconds-scale configuration for CI smoke:
// one tiny topology per replica count, short windows.
func smallReplicaScaling() ReplicaScalingConfig {
	return ReplicaScalingConfig{
		ReplicaCounts: []int{1, 2},
		CapPerReplica: 2,
		ServiceFloor:  time.Millisecond,
		Readers:       8,
		Warmup:        100 * time.Millisecond,
		Measure:       300 * time.Millisecond,
		WritePace:     20 * time.Millisecond,
	}
}

// TestReplicaScalingShape stands up the full replicated topology at a
// tiny scale and sanity-checks the snapshot: reads flowed, none failed,
// and every run converged (bounded final lag).
func TestReplicaScalingShape(t *testing.T) {
	h := New(Config{Scale: 0.02, NumLandmarks: 8, Datasets: []string{"DO"}})
	snap, err := h.ReplicaScaling(smallReplicaScaling())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != ReplicationSchema {
		t.Fatalf("schema = %q", snap.Schema)
	}
	if len(snap.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(snap.Runs))
	}
	for _, r := range snap.Runs {
		if r.Reads == 0 {
			t.Fatalf("run with %d replicas served no reads", r.Replicas)
		}
		if r.ReadErrors != 0 {
			t.Fatalf("run with %d replicas had %d read errors", r.Replicas, r.ReadErrors)
		}
	}
	// The shape claim at smoke scale is loose: more replicas must not
	// serve materially fewer reads (the committed BENCH_PR5.json pins
	// the real >=1.7x target at full scale).
	if snap.Runs[1].ReadQPS < snap.Runs[0].ReadQPS {
		t.Logf("warning: 2-replica QPS %.0f below 1-replica %.0f at smoke scale",
			snap.Runs[1].ReadQPS, snap.Runs[0].ReadQPS)
	}

	// Settle before returning: this test tears down sockets, files and
	// goroutines whose deferred cleanup (connection reader exits, fd
	// finalizers) would otherwise allocate in the background while the
	// zero-alloc regression tests later in this package are measuring.
	runtime.GC()
	runtime.GC()
	time.Sleep(100 * time.Millisecond)
}

// BenchmarkReplicaScaling is the CI bench-smoke entry (one iteration
// stands up the topology once).
func BenchmarkReplicaScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := New(Config{Scale: 0.02, NumLandmarks: 8, Datasets: []string{"DO"}})
		cfg := smallReplicaScaling()
		cfg.ReplicaCounts = []int{1}
		if _, err := h.ReplicaScaling(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
