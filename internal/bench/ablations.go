package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"qbs/internal/bfs"
	"qbs/internal/core"
	"qbs/internal/datasets"
	"qbs/internal/dcore"
	"qbs/internal/graph"
	"qbs/internal/workload"
)

func datasetSpec(key string) (datasets.Spec, error) { return datasets.ByKey(key) }

// Ablation 1 (§6.5) — edges traversed per query: full-graph Bi-BFS vs an
// unguided bidirectional search on the sparsified graph G⁻ vs the full
// sketch-guided QbS pipeline. The paper reports ~30% fewer edges from
// sparsification alone and ~66% fewer with sketch guidance on Twitter.

// TraversalRow reports mean adjacency entries scanned per query.
type TraversalRow struct {
	Key            string
	ArcsBiBFS      float64
	ArcsSparsified float64 // bidirectional on explicit G[V\R], no sketch bound
	ArcsQbS        float64
	ReductionSpars float64 // 1 - sparsified/biBFS
	ReductionQbS   float64 // 1 - qbs/biBFS
}

// AblationTraversal measures traversal reduction.
func (h *Harness) AblationTraversal() ([]TraversalRow, error) {
	var rows []TraversalRow
	t := &table{
		title: "Ablation (§6.5) — mean arcs scanned per query",
		header: []string{"Dataset", "Bi-BFS", "sparsified Bi-BFS", "QbS (guided)",
			"reduction (sparsify)", "reduction (QbS)"},
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		ix, err := core.Build(g, core.Options{NumLandmarks: h.cfg.NumLandmarks})
		if err != nil {
			return nil, err
		}
		isLand := func(v graph.V) bool { return ix.IsLandmark(v) }
		sparse := g.InducedSubgraph(func(v graph.V) bool { return !isLand(v) })
		pairs := workload.SamplePairs(g, h.cfg.NumQueries, h.cfg.Seed)

		bib := bfs.NewBidirectional(g)
		bibSparse := bfs.NewBidirectional(sparse)
		sr := core.NewSearcher(ix)
		var aFull, aSparse, aQbS int64
		for _, p := range pairs {
			_, st := bib.Query(p.U, p.V)
			aFull += st.ArcsScanned
			if !isLand(p.U) && !isLand(p.V) {
				_, st2 := bibSparse.Query(p.U, p.V)
				aSparse += st2.ArcsScanned
			}
			_, st3 := sr.QueryWithStats(p.U, p.V)
			aQbS += st3.ArcsScanned
		}
		n := float64(len(pairs))
		row := TraversalRow{
			Key:            key,
			ArcsBiBFS:      float64(aFull) / n,
			ArcsSparsified: float64(aSparse) / n,
			ArcsQbS:        float64(aQbS) / n,
		}
		if row.ArcsBiBFS > 0 {
			row.ReductionSpars = 1 - row.ArcsSparsified/row.ArcsBiBFS
			row.ReductionQbS = 1 - row.ArcsQbS/row.ArcsBiBFS
		}
		rows = append(rows, row)
		t.add(key, fmt.Sprintf("%.0f", row.ArcsBiBFS), fmt.Sprintf("%.0f", row.ArcsSparsified),
			fmt.Sprintf("%.0f", row.ArcsQbS),
			fmt.Sprintf("%.0f%%", row.ReductionSpars*100), fmt.Sprintf("%.0f%%", row.ReductionQbS*100))
	}
	t.render(h.cfg.Out)
	return rows, nil
}

// Ablation 2 (§5.3) — parallel labelling speedup by worker count.

// ParallelRow reports construction time by thread count for one dataset.
type ParallelRow struct {
	Key     string
	Threads []int
	Times   []time.Duration
	Speedup []float64 // vs Threads[0]
}

// AblationParallel measures QbS-P thread scaling.
func (h *Harness) AblationParallel(threads []int) ([]ParallelRow, error) {
	if len(threads) == 0 {
		threads = []int{1, 2, 4}
		if n := runtime.GOMAXPROCS(0); n >= 8 {
			threads = append(threads, 8)
		}
	}
	var rows []ParallelRow
	t := &table{
		title:  "Ablation (§5.3) — labelling construction time by worker count",
		header: []string{"Dataset"},
	}
	for _, th := range threads {
		t.header = append(t.header, fmt.Sprintf("T=%d", th))
	}
	t.header = append(t.header, "speedup")
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		row := ParallelRow{Key: key, Threads: threads}
		cells := []string{key}
		for _, th := range threads {
			ix, err := core.Build(g, core.Options{NumLandmarks: h.cfg.NumLandmarks, Parallelism: th, SkipDelta: true})
			if err != nil {
				return nil, err
			}
			row.Times = append(row.Times, ix.Stats().LabellingTime)
			cells = append(cells, fmtDuration(ix.Stats().LabellingTime))
		}
		for _, d := range row.Times {
			row.Speedup = append(row.Speedup, float64(row.Times[0])/float64(d))
		}
		cells = append(cells, fmt.Sprintf("%.1fx", row.Speedup[len(row.Speedup)-1]))
		rows = append(rows, row)
		t.add(cells...)
	}
	t.render(h.cfg.Out)
	return rows, nil
}

// Ablation — query speedup vs graph scale. The paper's 10–300×
// query-time advantage over Bi-BFS is a scale effect: Bi-BFS work grows
// with the graph while QbS queries stay nearly flat. This sweep makes
// the trend measurable at laptop scale, so the shape of Table 2 can be
// extrapolated.

// ScaleRow reports query timings at one dataset scale.
type ScaleRow struct {
	Key      string
	Scale    float64
	Vertices int
	Edges    int
	QbS      time.Duration
	BiBFS    time.Duration
	Speedup  float64
}

// AblationScale sweeps dataset scale and reports the QbS-vs-Bi-BFS
// speedup trend.
func (h *Harness) AblationScale(scales []float64) ([]ScaleRow, error) {
	if len(scales) == 0 {
		scales = []float64{0.1, 0.3, 1.0}
	}
	var rows []ScaleRow
	t := &table{
		title:  "Ablation — QbS vs Bi-BFS query time across graph scales",
		header: []string{"Dataset", "scale", "|V|", "|E|", "QbS query", "Bi-BFS query", "speedup"},
	}
	for _, key := range h.sortedKeys() {
		spec, err := datasetSpec(key)
		if err != nil {
			return nil, err
		}
		for _, sc := range scales {
			g := spec.Generate(sc * h.cfg.Scale)
			ix, err := core.Build(g, core.Options{NumLandmarks: h.cfg.NumLandmarks})
			if err != nil {
				return nil, err
			}
			pairs := workload.SamplePairs(g, h.cfg.NumQueries, h.cfg.Seed)
			sr := core.NewSearcher(ix)
			start := time.Now()
			for _, p := range pairs {
				sr.Query(p.U, p.V)
			}
			qbsTime := time.Since(start) / time.Duration(len(pairs))
			bib := bfs.NewBidirectional(g)
			start = time.Now()
			for _, p := range pairs {
				bib.Query(p.U, p.V)
			}
			bibTime := time.Since(start) / time.Duration(len(pairs))
			row := ScaleRow{
				Key: key, Scale: sc, Vertices: g.NumVertices(), Edges: g.NumEdges(),
				QbS: qbsTime, BiBFS: bibTime,
				Speedup: float64(bibTime) / float64(qbsTime),
			}
			rows = append(rows, row)
			t.add(key, fmt.Sprintf("%.2f", sc), fmtCount(row.Vertices), fmtCount(row.Edges),
				fmtDuration(row.QbS), fmtDuration(row.BiBFS), fmt.Sprintf("%.1fx", row.Speedup))
		}
	}
	t.render(h.cfg.Out)
	return rows, nil
}

// Ablation — directed QbS (§2 extension) on the directed datasets.

// DirectedRow reports directed index construction and query timings.
type DirectedRow struct {
	Key      string
	Vertices int
	Arcs     int
	Build    time.Duration
	Query    time.Duration // directed QbS mean per query
	BiBFS    time.Duration // directed bidirectional BFS baseline
	Speedup  float64
}

// AblationDirected builds directed analogs of the datasets Table 1
// marks as directed and compares directed QbS against directed Bi-BFS.
func (h *Harness) AblationDirected() ([]DirectedRow, error) {
	var rows []DirectedRow
	t := &table{
		title:  "Ablation (§2) — directed QbS on the directed datasets",
		header: []string{"Dataset", "|V|", "arcs", "build", "QbS query", "Di-Bi-BFS query", "speedup"},
	}
	for _, key := range h.sortedKeys() {
		spec, err := datasets.ByKey(key)
		if err != nil {
			return nil, err
		}
		if !spec.Directed {
			continue
		}
		g := spec.GenerateDirected(h.cfg.Scale)
		ix, err := dcore.Build(g, dcore.Options{NumLandmarks: h.cfg.NumLandmarks})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(h.cfg.Seed))
		type qp struct{ u, v graph.V }
		pairs := make([]qp, h.cfg.NumQueries)
		for i := range pairs {
			pairs[i] = qp{graph.V(rng.Intn(g.NumVertices())), graph.V(rng.Intn(g.NumVertices()))}
		}
		sr := dcore.NewSearcher(ix)
		start := time.Now()
		for _, p := range pairs {
			sr.Query(p.u, p.v)
		}
		qbsTime := time.Since(start) / time.Duration(len(pairs))
		bib := bfs.NewDiBidirectional(g)
		start = time.Now()
		for _, p := range pairs {
			bib.Query(p.u, p.v)
		}
		bibTime := time.Since(start) / time.Duration(len(pairs))
		row := DirectedRow{
			Key: key, Vertices: g.NumVertices(), Arcs: g.NumArcs(),
			Build: ix.BuildTime(), Query: qbsTime, BiBFS: bibTime,
			Speedup: float64(bibTime) / float64(qbsTime),
		}
		rows = append(rows, row)
		t.add(key, fmtCount(row.Vertices), fmtCount(row.Arcs), fmtDuration(row.Build),
			fmtDuration(row.Query), fmtDuration(row.BiBFS), fmt.Sprintf("%.1fx", row.Speedup))
	}
	t.render(h.cfg.Out)
	return rows, nil
}

// Ablation 3 (§8 future work) — landmark selection strategies.

// StrategyRow compares landmark strategies on one dataset.
type StrategyRow struct {
	Key      string
	Strategy string
	Query    time.Duration
	Coverage float64 // fraction of pairs with any landmark on a shortest path
	Labels   int64   // size(L)+size(Δ)
}

// AblationLandmarks compares degree, random and coverage strategies.
func (h *Harness) AblationLandmarks() ([]StrategyRow, error) {
	strategies := []struct {
		name string
		fn   core.LandmarkStrategy
	}{
		{"degree", core.ByDegree},
		{"random", core.Random},
		{"coverage", core.ByCoverage},
		{"betweenness", core.ByApproxBetweenness},
	}
	var rows []StrategyRow
	t := &table{
		title:  "Ablation (§8) — landmark selection strategies",
		header: []string{"Dataset", "Strategy", "mean query", "pair coverage", "index size"},
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		pairs := workload.SamplePairs(g, h.cfg.NumQueries, h.cfg.Seed)
		for _, s := range strategies {
			ix, err := core.Build(g, core.Options{
				NumLandmarks: h.cfg.NumLandmarks, Strategy: s.fn, Seed: h.cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			sr := core.NewSearcher(ix)
			var covered, counted int
			start := time.Now()
			for _, p := range pairs {
				_, st := sr.QueryWithStats(p.U, p.V)
				if st.Coverage == core.CoverageTrivial {
					continue
				}
				counted++
				if st.Coverage != core.CoverageNone {
					covered++
				}
			}
			row := StrategyRow{
				Key: key, Strategy: s.name,
				Query:  time.Since(start) / time.Duration(len(pairs)),
				Labels: ix.SizeLabelsBytes() + ix.SizeDeltaBytes(),
			}
			if counted > 0 {
				row.Coverage = float64(covered) / float64(counted)
			}
			rows = append(rows, row)
			t.add(key, s.name, fmtDuration(row.Query),
				fmt.Sprintf("%.3f", row.Coverage), fmtBytes(row.Labels))
		}
	}
	t.render(h.cfg.Out)
	return rows, nil
}
