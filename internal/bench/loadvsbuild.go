package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"qbs/internal/dynamic"
	"qbs/internal/graph"
	"qbs/internal/store"
	"qbs/internal/workload"
)

// LoadVsBuild experiment (PR 3): quantify what the durable store buys a
// restart. For each dataset analog the harness measures the cold
// dynamic build, the snapshot write, the snapshot-only open (no WAL),
// and a recovery open that additionally replays a WAL tail — reported
// as a replay rate in ops/s. The committed BENCH_PR3.json tracks these
// numbers across PRs, next to BENCH_PR2.json's query-latency record.

// LoadVsBuildSchema identifies the BENCH_PR3.json format.
const LoadVsBuildSchema = "qbs-bench-loadvsbuild/v1"

// LoadVsBuildRow is one dataset row.
type LoadVsBuildRow struct {
	Key      string `json:"key"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`

	BuildNs         int64 `json:"build_ns"`          // cold dynamic build (best of reps)
	SnapshotWriteNs int64 `json:"snapshot_write_ns"` // Create minus the build
	SnapshotBytes   int64 `json:"snapshot_bytes"`
	OpenNs          int64 `json:"open_ns"` // snapshot-only open, no WAL tail

	WALOps       int     `json:"wal_ops"`    // logged updates replayed by the recovery open
	RecoverNs    int64   `json:"recover_ns"` // open incl. WAL replay
	ReplayOpsSec float64 `json:"replay_ops_per_s"`

	OpenSpeedup float64 `json:"open_speedup"` // BuildNs / OpenNs
}

// LoadVsBuildSnapshot is the BENCH_PR3.json document.
type LoadVsBuildSnapshot struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Scale      float64          `json:"scale"`
	Landmarks  int              `json:"landmarks"`
	WALOps     int              `json:"wal_ops"`
	Datasets   []LoadVsBuildRow `json:"datasets"`
}

// loadVsBuildWALOps is the logged-update count used for the replay-rate
// measurement.
const loadVsBuildWALOps = 256

// LoadVsBuild runs the experiment over the configured datasets and
// renders a markdown table. Timings are best-of-N like the PR 2
// snapshot.
func (h *Harness) LoadVsBuild() ([]LoadVsBuildRow, error) {
	var rows []LoadVsBuildRow
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		row, err := loadVsBuildDataset(key, g, h.cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	tbl := &table{
		title: "Load vs build: restart cost with the durable store",
		header: []string{"dataset", "|V|", "|E|", "cold build", "snap write", "snap MB",
			"open", "open speedup", fmt.Sprintf("recover (+%d ops)", loadVsBuildWALOps), "replay ops/s"},
	}
	for _, r := range rows {
		tbl.add(
			r.Key, fmtCount(r.Vertices), fmtCount(r.Edges),
			fmtDuration(time.Duration(r.BuildNs)),
			fmtDuration(time.Duration(r.SnapshotWriteNs)),
			fmt.Sprintf("%.1f", float64(r.SnapshotBytes)/(1<<20)),
			fmtDuration(time.Duration(r.OpenNs)),
			fmt.Sprintf("%.0f×", r.OpenSpeedup),
			fmtDuration(time.Duration(r.RecoverNs)),
			fmt.Sprintf("%.0f", r.ReplayOpsSec),
		)
	}
	tbl.render(h.cfg.Out)
	return rows, nil
}

func loadVsBuildDataset(key string, g *graph.Graph, cfg Config) (LoadVsBuildRow, error) {
	row := LoadVsBuildRow{Key: key, Vertices: g.NumVertices(), Edges: g.NumEdges(), WALOps: loadVsBuildWALOps}
	landmarks := g.TopDegreeVertices(cfg.NumLandmarks)

	// Cold build, best of reps.
	var d *dynamic.Index
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < buildReps; rep++ {
		t0 := time.Now()
		built, err := dynamic.New(g, landmarks, dynamic.Options{CompactFraction: -1})
		if err != nil {
			return row, err
		}
		if el := time.Since(t0); el < best {
			best = el
		}
		d = built
	}
	row.BuildNs = best.Nanoseconds()

	dir, err := os.MkdirTemp("", "qbs-loadvsbuild-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	t0 := time.Now()
	s, err := store.Create(dir, d, store.Options{})
	if err != nil {
		return row, err
	}
	row.SnapshotWriteNs = time.Since(t0).Nanoseconds()
	if err := s.Close(); err != nil {
		return row, err
	}
	if des, err := os.ReadDir(dir); err == nil {
		for _, de := range des {
			if fi, err := de.Info(); err == nil && !de.IsDir() {
				row.SnapshotBytes += fi.Size()
			}
		}
	}

	// Snapshot-only open (the WAL is empty), best of reps.
	best = time.Duration(1<<63 - 1)
	for rep := 0; rep < buildReps; rep++ {
		t0 = time.Now()
		s2, err := store.Open(dir, store.Options{MMap: true, ReadOnly: true})
		if err != nil {
			return row, err
		}
		if el := time.Since(t0); el < best {
			best = el
		}
		s2.Close()
	}
	row.OpenNs = best.Nanoseconds()
	row.OpenSpeedup = float64(row.BuildNs) / float64(row.OpenNs)

	// Grow a WAL tail: reopen writable, log updates, crash-close (no
	// checkpoint), then time the recovery open that replays them.
	s3, err := store.Open(dir, store.Options{Dynamic: dynamic.Options{CompactFraction: -1}, SyncEvery: 64})
	if err != nil {
		return row, err
	}
	ops := workload.MixedOps(g, loadVsBuildWALOps*2, 1.0, cfg.Seed)
	applied := 0
	for _, op := range ops {
		if applied >= loadVsBuildWALOps {
			break
		}
		var err error
		switch op.Kind {
		case workload.OpInsert:
			_, err = s3.Index().AddEdge(op.U, op.V)
		case workload.OpDelete:
			_, err = s3.Index().RemoveEdge(op.U, op.V)
		default:
			continue
		}
		if err != nil {
			return row, fmt.Errorf("%s: wal op {%d,%d}: %w", key, op.U, op.V, err)
		}
		applied++
	}
	row.WALOps = applied
	if err := s3.Close(); err != nil {
		return row, err
	}

	t0 = time.Now()
	s4, err := store.Open(dir, store.Options{MMap: true, ReadOnly: true, Dynamic: dynamic.Options{CompactFraction: -1}})
	if err != nil {
		return row, err
	}
	row.RecoverNs = time.Since(t0).Nanoseconds()
	s4.Close()
	if replay := row.RecoverNs - row.OpenNs; replay > 0 {
		row.ReplayOpsSec = float64(applied) / (float64(replay) / 1e9)
	}
	return row, nil
}

// LoadVsBuildJSON runs the experiment and writes the BENCH_PR3.json
// document.
func (h *Harness) LoadVsBuildJSON(path string) error {
	rows, err := h.LoadVsBuild()
	if err != nil {
		return err
	}
	doc := LoadVsBuildSnapshot{
		Schema:     LoadVsBuildSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      h.cfg.Scale,
		Landmarks:  h.cfg.NumLandmarks,
		WALOps:     loadVsBuildWALOps,
		Datasets:   rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
