package bench

import (
	"fmt"
	"time"

	"qbs/internal/core"
	"qbs/internal/workload"
)

// LandmarkSweep is the |R| axis of Figures 8 and 9 (the paper sweeps
// 20–100) and, with the small prefix, of Figures 10 and 11 (0–100).
var (
	LandmarkSweep     = []int{20, 40, 60, 80, 100}
	LandmarkSweepFull = []int{5, 10, 15, 20, 40, 60, 80, 100}
)

// Figure 7 — distance distribution of sampled pairs.

// Fig7Row is one dataset's distance histogram.
type Fig7Row struct {
	Key          string
	Distribution workload.DistanceDistribution
}

// Fig7 reproduces the distance-distribution figure.
func (h *Harness) Fig7() ([]Fig7Row, error) {
	var rows []Fig7Row
	maxD := int32(0)
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		pairs := workload.SamplePairs(g, h.cfg.NumQueries, h.cfg.Seed)
		dd := workload.MeasureDistances(g, pairs)
		rows = append(rows, Fig7Row{Key: key, Distribution: dd})
		if dd.Max > maxD {
			maxD = dd.Max
		}
	}
	t := &table{
		title:  "Figure 7 — distance distribution of sampled pairs (fraction per distance)",
		header: []string{"Dataset", "mean"},
	}
	for d := int32(1); d <= maxD; d++ {
		t.header = append(t.header, fmt.Sprintf("d=%d", d))
	}
	for _, r := range rows {
		cells := []string{r.Key, fmt.Sprintf("%.2f", r.Distribution.Mean)}
		for d := int32(1); d <= maxD; d++ {
			f := 0.0
			if int(d) < len(r.Distribution.Fraction) {
				f = r.Distribution.Fraction[d]
			}
			cells = append(cells, fmt.Sprintf("%.3f", f))
		}
		t.add(cells...)
	}
	t.render(h.cfg.Out)
	return rows, nil
}

// Figure 8 — pair coverage ratios under varying landmark counts.

// Fig8Cell is the coverage breakdown for one (dataset, |R|) point.
type Fig8Cell struct {
	Key          string
	NumLandmarks int
	// FractionAll: queries where every shortest path passes a landmark
	// (case i); FractionSome: some but not all (case ii). The paper's
	// "pair coverage ratio" is their sum.
	FractionAll  float64
	FractionSome float64
}

// Fig8 reproduces the pair-coverage experiment.
func (h *Harness) Fig8(sweep []int) ([]Fig8Cell, error) {
	if len(sweep) == 0 {
		sweep = LandmarkSweep
	}
	var cells []Fig8Cell
	t := &table{
		title:  "Figure 8 — pair coverage ratio (all/some shortest paths through landmarks)",
		header: []string{"Dataset"},
	}
	for _, k := range sweep {
		t.header = append(t.header, fmt.Sprintf("R=%d all", k), fmt.Sprintf("R=%d some", k))
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		pairs := workload.SamplePairs(g, h.cfg.NumQueries, h.cfg.Seed)
		row := []string{key}
		for _, k := range sweep {
			ix, err := core.Build(g, core.Options{NumLandmarks: k})
			if err != nil {
				return nil, err
			}
			sr := core.NewSearcher(ix)
			var all, some, counted int
			for _, p := range pairs {
				_, st := sr.QueryWithStats(p.U, p.V)
				if st.Coverage == core.CoverageTrivial {
					continue
				}
				counted++
				switch st.Coverage {
				case core.CoverageAll:
					all++
				case core.CoverageSome:
					some++
				}
			}
			cell := Fig8Cell{Key: key, NumLandmarks: k}
			if counted > 0 {
				cell.FractionAll = float64(all) / float64(counted)
				cell.FractionSome = float64(some) / float64(counted)
			}
			cells = append(cells, cell)
			row = append(row, fmt.Sprintf("%.3f", cell.FractionAll), fmt.Sprintf("%.3f", cell.FractionSome))
		}
		t.add(row...)
	}
	t.render(h.cfg.Out)
	return cells, nil
}

// Figure 9 — labelling sizes under varying landmark counts.

// Fig9Cell is size(L)+size(Δ) for one (dataset, |R|) point.
type Fig9Cell struct {
	Key          string
	NumLandmarks int
	LabelBytes   int64
	DeltaBytes   int64
}

// Fig9 reproduces the labelling-size sweep.
func (h *Harness) Fig9(sweep []int) ([]Fig9Cell, error) {
	if len(sweep) == 0 {
		sweep = LandmarkSweep
	}
	var cells []Fig9Cell
	t := &table{
		title:  "Figure 9 — labelling size vs number of landmarks",
		header: []string{"Dataset"},
	}
	for _, k := range sweep {
		t.header = append(t.header, fmt.Sprintf("R=%d", k))
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		row := []string{key}
		for _, k := range sweep {
			ix, err := core.Build(g, core.Options{NumLandmarks: k})
			if err != nil {
				return nil, err
			}
			cell := Fig9Cell{Key: key, NumLandmarks: k,
				LabelBytes: ix.SizeLabelsBytes(), DeltaBytes: ix.SizeDeltaBytes()}
			cells = append(cells, cell)
			row = append(row, fmtBytes(cell.LabelBytes+cell.DeltaBytes))
		}
		t.add(row...)
	}
	t.render(h.cfg.Out)
	return cells, nil
}

// Figure 10 — construction time under varying landmark counts.

// Fig10Cell is the (parallel) construction time for one point.
type Fig10Cell struct {
	Key          string
	NumLandmarks int
	Build        time.Duration
}

// Fig10 reproduces the construction-time sweep (QbS-P, as in the paper's
// scalability argument).
func (h *Harness) Fig10(sweep []int) ([]Fig10Cell, error) {
	if len(sweep) == 0 {
		sweep = LandmarkSweepFull
	}
	var cells []Fig10Cell
	t := &table{
		title:  "Figure 10 — construction time vs number of landmarks",
		header: []string{"Dataset"},
	}
	for _, k := range sweep {
		t.header = append(t.header, fmt.Sprintf("R=%d", k))
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		row := []string{key}
		for _, k := range sweep {
			ix, err := core.Build(g, core.Options{NumLandmarks: k})
			if err != nil {
				return nil, err
			}
			cell := Fig10Cell{Key: key, NumLandmarks: k, Build: ix.Stats().TotalTime}
			cells = append(cells, cell)
			row = append(row, fmtDuration(cell.Build))
		}
		t.add(row...)
	}
	t.render(h.cfg.Out)
	return cells, nil
}

// Figure 11 — average query time under varying landmark counts.

// Fig11Cell is the mean query time for one point.
type Fig11Cell struct {
	Key          string
	NumLandmarks int
	Query        time.Duration
}

// Fig11 reproduces the query-time sweep.
func (h *Harness) Fig11(sweep []int) ([]Fig11Cell, error) {
	if len(sweep) == 0 {
		sweep = LandmarkSweepFull
	}
	var cells []Fig11Cell
	t := &table{
		title:  "Figure 11 — average query time vs number of landmarks",
		header: []string{"Dataset"},
	}
	for _, k := range sweep {
		t.header = append(t.header, fmt.Sprintf("R=%d", k))
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		pairs := workload.SamplePairs(g, h.cfg.NumQueries, h.cfg.Seed)
		row := []string{key}
		for _, k := range sweep {
			ix, err := core.Build(g, core.Options{NumLandmarks: k})
			if err != nil {
				return nil, err
			}
			sr := core.NewSearcher(ix)
			start := time.Now()
			for _, p := range pairs {
				sr.Query(p.U, p.V)
			}
			cell := Fig11Cell{Key: key, NumLandmarks: k,
				Query: time.Since(start) / time.Duration(len(pairs))}
			cells = append(cells, cell)
			row = append(row, fmtDuration(cell.Query))
		}
		t.add(row...)
	}
	t.render(h.cfg.Out)
	return cells, nil
}
