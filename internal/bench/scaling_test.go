package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestScalingSnapshot(t *testing.T) {
	var buf bytes.Buffer
	h := New(Config{
		Scale:        0.05,
		NumQueries:   60,
		NumLandmarks: 8,
		Datasets:     []string{"DO"},
		Out:          &buf,
	})
	s, err := h.Scaling([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != ScalingSchema || s.NumCPU <= 0 {
		t.Fatalf("bad snapshot header: %+v", s)
	}
	if len(s.Datasets) != 1 || len(s.Datasets[0].Phases) != 3 {
		t.Fatalf("unexpected shape: %+v", s.Datasets)
	}
	for _, ph := range s.Datasets[0].Phases {
		if !ph.Identical {
			t.Fatalf("workers=%d: results not bit-identical to sequential", ph.Workers)
		}
		if ph.BuildNs <= 0 || ph.SweepNs <= 0 || ph.RepairNs <= 0 {
			t.Fatalf("workers=%d: empty timings: %+v", ph.Workers, ph)
		}
	}
	if s.Datasets[0].IndexSHA256 == "" {
		t.Fatal("missing index fingerprint")
	}
	if !bytes.Contains(buf.Bytes(), []byte("Scaling DO")) {
		t.Fatal("markdown not rendered")
	}

	path := filepath.Join(t.TempDir(), "scaling.json")
	if err := h.ScalingJSON(path, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ScalingSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ScalingSchema {
		t.Fatalf("round-trip schema: %q", back.Schema)
	}
}

// BenchmarkScaling is the CI smoke hook (`go test -bench=Scaling
// -benchtime=1x`): one tiny-scale pass over every pool width, which
// exercises the full build/sweep/query/repair sweep and fails the run
// if any width diverges from the sequential results.
func BenchmarkScaling(b *testing.B) {
	h := New(Config{
		Scale:        0.05,
		NumQueries:   40,
		NumLandmarks: 8,
		Datasets:     []string{"DO"},
	})
	for i := 0; i < b.N; i++ {
		s, err := h.Scaling(nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, ph := range s.Datasets[0].Phases {
			if !ph.Identical {
				b.Fatalf("workers=%d diverged from sequential", ph.Workers)
			}
		}
	}
}

// TestParallelEfficiencyGate is the scaling regression gate: on a host
// with at least 4 CPUs, the labelling build at 4 workers on the YT
// analog at scale 1.0 must reach ≥50% parallel efficiency (≥2.0×
// speedup over sequential). On smaller hosts the gate skips — parallel
// speedup is physically impossible there and the bit-identical checks
// (which run everywhere) are the meaningful signal.
func TestParallelEfficiencyGate(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; need >=4 for a meaningful efficiency gate", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("scale-1.0 builds")
	}
	h := New(Config{
		Scale:        1.0,
		NumQueries:   200,
		NumLandmarks: 20,
		Datasets:     []string{"YT"},
		PPLBudget:    time.Minute,
	})
	s, err := h.Scaling([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	ph := s.Datasets[0].Phases[1]
	if !ph.Identical {
		t.Fatalf("workers=4 diverged from sequential")
	}
	if ph.BuildSpeedup < 2.0 {
		t.Fatalf("build speedup at 4 workers = %.2fx, want >= 2.0x (>=50%% efficiency)", ph.BuildSpeedup)
	}
}
