// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§6), plus the ablations suggested by
// §6.5 (traversal reduction), §5.3 (parallel labelling speedup) and §8
// (landmark selection strategies).
//
// Each runner builds the required indexes over the synthetic dataset
// analogs, executes the workload, renders a markdown table to the
// configured writer and returns the raw rows for programmatic use
// (root-level benchmarks and EXPERIMENTS.md generation).
//
// Absolute numbers differ from the paper (different hardware, graphs
// scaled ~10³ down); the harness is designed so the *shape* of each
// result — who wins, by what order of magnitude, where the trends bend —
// can be compared directly against the published tables.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"qbs/internal/datasets"
	"qbs/internal/graph"
)

// Config parameterises a harness run.
type Config struct {
	// Scale multiplies dataset analog sizes (1 = DESIGN.md defaults).
	Scale float64
	// NumQueries is the number of sampled pairs per dataset (paper: 10,000).
	NumQueries int
	// NumLandmarks is |R| for single-point experiments (paper: 20).
	NumLandmarks int
	// Datasets restricts the run to these keys (nil = all 12).
	Datasets []string
	// Seed drives workload sampling.
	Seed int64
	// PPLBudget and ParentPPLBudget bound baseline construction time,
	// reproducing the paper's 24h DNF cutoff at laptop scale.
	PPLBudget       time.Duration
	ParentPPLBudget time.Duration
	// LabelByteBudget bounds baseline labelling size, reproducing OOE.
	LabelByteBudget int64
	// Out receives rendered markdown (nil = io.Discard).
	Out io.Writer
}

// WithDefaults fills unset fields with the harness defaults.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 1000
	}
	if c.NumLandmarks <= 0 {
		c.NumLandmarks = 20
	}
	if len(c.Datasets) == 0 {
		c.Datasets = datasets.Keys()
	}
	if c.Seed == 0 {
		c.Seed = 2021
	}
	if c.PPLBudget <= 0 {
		c.PPLBudget = 60 * time.Second
	}
	if c.ParentPPLBudget <= 0 {
		c.ParentPPLBudget = 60 * time.Second
	}
	if c.LabelByteBudget <= 0 {
		c.LabelByteBudget = 1 << 30 // 1 GiB of labels ≈ the paper's OOE wall, scaled
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// Harness caches generated graphs across experiments in one process.
type Harness struct {
	cfg    Config
	graphs map[string]*graph.Graph
}

// New creates a harness.
func New(cfg Config) *Harness {
	return &Harness{cfg: cfg.WithDefaults(), graphs: map[string]*graph.Graph{}}
}

// Config returns the effective configuration.
func (h *Harness) Config() Config { return h.cfg }

// Graph returns (building lazily) the analog for a dataset key.
func (h *Harness) Graph(key string) (*graph.Graph, error) {
	if g, ok := h.graphs[key]; ok {
		return g, nil
	}
	spec, err := datasets.ByKey(key)
	if err != nil {
		return nil, err
	}
	g := spec.Generate(h.cfg.Scale)
	h.graphs[key] = g
	return g, nil
}

// table renders a markdown table.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "\n## %s\n\n", t.title)
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// Formatting helpers shared by the runners.

func fmtDuration(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fmtBytes(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}

func fmtCount(n int) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// sortedKeys returns h's configured dataset keys in Table 1 order.
func (h *Harness) sortedKeys() []string {
	order := map[string]int{}
	for i, k := range datasets.Keys() {
		order[k] = i
	}
	keys := append([]string(nil), h.cfg.Datasets...)
	sort.Slice(keys, func(i, j int) bool { return order[keys[i]] < order[keys[j]] })
	return keys
}
