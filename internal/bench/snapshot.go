package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"time"

	"qbs/internal/core"
	"qbs/internal/graph"
	"qbs/internal/obs"
	"qbs/internal/workload"
)

// SnapshotSchema identifies the BENCH_PR*.json format version.
const SnapshotSchema = "qbs-bench-snapshot/v1"

// SnapshotDataset is one dataset row of a perf snapshot. Durations are
// nanoseconds; build times are best-of-N to shave scheduler noise,
// query percentiles come from one warmed pass over the sampled pairs.
type SnapshotDataset struct {
	Key      string `json:"key"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`

	BuildTotalNs     int64 `json:"build_total_ns"`
	BuildLabellingNs int64 `json:"build_labelling_ns"`
	BuildMetaNs      int64 `json:"build_meta_ns"`

	QueryP50Ns int64 `json:"query_p50_ns"`
	QueryP99Ns int64 `json:"query_p99_ns"`

	// LatencyHistogram summarises the same warmed query pass through
	// the observability histogram (log-bucketed; ≤1/32 relative error),
	// adding p95/p999/max to the exact-sort percentiles above.
	LatencyHistogram obs.HistogramSummary `json:"latency_histogram"`

	// QueryAllocsPerOp and DistanceAllocsPerOp are measured on a warm
	// searcher answering into a reused SPG (the steady-state serving
	// path); the PR 2 acceptance target for both is 0.
	QueryAllocsPerOp    float64 `json:"query_allocs_per_op"`
	DistanceAllocsPerOp float64 `json:"distance_allocs_per_op"`

	LabelEntries int64 `json:"label_entries"`
	MetaEdges    int   `json:"meta_edges"`
}

// Snapshot is a machine-readable perf record (BENCH_PR2.json): enough
// to track the repo's build-time / query-latency / allocation
// trajectory across PRs. See README "Performance" for the field
// contract.
type Snapshot struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Scale      float64           `json:"scale"`
	Queries    int               `json:"queries"`
	Landmarks  int               `json:"landmarks"`
	Seed       int64             `json:"seed"`
	Datasets   []SnapshotDataset `json:"datasets"`
}

// buildReps is how many builds the snapshot times per dataset (keeping
// the fastest, the conventional way to report a deterministic kernel).
const buildReps = 5

// Snapshot measures the configured datasets and returns the perf
// record. It is driven by `qbs-bench -json` and by tests.
func (h *Harness) Snapshot() (*Snapshot, error) {
	cfg := h.cfg
	s := &Snapshot{
		Schema:     SnapshotSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      cfg.Scale,
		Queries:    cfg.NumQueries,
		Landmarks:  cfg.NumLandmarks,
		Seed:       cfg.Seed,
	}
	for _, key := range h.sortedKeys() {
		g, err := h.Graph(key)
		if err != nil {
			return nil, err
		}
		row, err := snapshotDataset(key, g, cfg)
		if err != nil {
			return nil, err
		}
		s.Datasets = append(s.Datasets, row)
	}
	return s, nil
}

func snapshotDataset(key string, g *graph.Graph, cfg Config) (SnapshotDataset, error) {
	row := SnapshotDataset{Key: key, Vertices: g.NumVertices(), Edges: g.NumEdges()}

	var ix *core.Index
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < buildReps; rep++ {
		t0 := time.Now()
		built, err := core.Build(g, core.Options{NumLandmarks: cfg.NumLandmarks})
		if err != nil {
			return row, err
		}
		if d := time.Since(t0); d < best {
			best = d
			st := built.Stats()
			row.BuildTotalNs = d.Nanoseconds()
			row.BuildLabellingNs = st.LabellingTime.Nanoseconds()
			row.BuildMetaNs = st.MetaTime.Nanoseconds()
			row.LabelEntries = st.LabelEntries
			row.MetaEdges = st.MetaEdges
		}
		ix = built
	}

	pairs := workload.SamplePairs(g, cfg.NumQueries, cfg.Seed)
	sr := core.NewSearcher(ix)
	spg := graph.NewSPG(0, 0)
	for _, p := range pairs {
		sr.QueryInto(spg, p.U, p.V) // warm every buffer
	}
	lat := make([]int64, len(pairs))
	var hist obs.Histogram
	for i, p := range pairs {
		t0 := time.Now()
		sr.QueryInto(spg, p.U, p.V)
		lat[i] = time.Since(t0).Nanoseconds()
		hist.ObserveNs(lat[i])
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	row.QueryP50Ns = lat[len(lat)/2]
	row.QueryP99Ns = lat[len(lat)*99/100]
	row.LatencyHistogram = hist.Summary()

	i := 0
	row.QueryAllocsPerOp = allocsPerRun(256, func() {
		p := pairs[i%len(pairs)]
		i++
		sr.QueryInto(spg, p.U, p.V)
	})
	i = 0
	row.DistanceAllocsPerOp = allocsPerRun(256, func() {
		p := pairs[i%len(pairs)]
		i++
		sr.Distance(p.U, p.V)
	})
	return row, nil
}

// allocsPerRun mirrors testing.AllocsPerRun (warm-up call, GOMAXPROCS
// pinned to 1, mallocs-per-iteration from MemStats) without linking the
// testing framework into the qbs-bench binary. The measurement is the
// minimum of three rounds: a real per-op allocation shows up in every
// round, while one-off background mallocs (a finalizer running during a
// GC that lands inside the loop) pollute at most some of them.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f()
	best := 0.0
	var before, after runtime.MemStats
	for round := 0; round < 3; round++ {
		runtime.ReadMemStats(&before)
		for i := 0; i < runs; i++ {
			f()
		}
		runtime.ReadMemStats(&after)
		got := float64(after.Mallocs-before.Mallocs) / float64(runs)
		if round == 0 || got < best {
			best = got
		}
	}
	return best
}

// WriteJSON renders the snapshot with stable formatting (two-space
// indent, trailing newline) so committed snapshots diff cleanly.
func (s *Snapshot) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSnapshot loads a committed snapshot (for trajectory comparisons).
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
