package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"qbs/internal/bfs"
	"qbs/internal/datasets"
	"qbs/internal/dcore"
	"qbs/internal/graph"
)

// DirectedTable — the PR 4 directed-engine experiment: per directed
// dataset analog it measures the bit-parallel labelling against the
// scalar reference (the build-speedup acceptance criterion), warm query
// latency percentiles and allocations of the grown serving surface, and
// the Di-Bi-BFS baseline for context. `qbs-bench -exp directed -json`
// emits the machine-readable BENCH_PR4.json record.

// DirectedTableSchema identifies the BENCH_PR4.json format.
const DirectedTableSchema = "qbs-bench-directed/v1"

// DirectedTableRow is one directed dataset's measurements.
type DirectedTableRow struct {
	Key      string `json:"key"`
	Vertices int    `json:"vertices"`
	Arcs     int    `json:"arcs"`

	// Labelling construction, best of N: the bit-parallel engine vs the
	// scalar per-landmark reference (both sequential, so the ratio
	// isolates the 64-way sweep rather than worker parallelism).
	EngineLabellingNs int64   `json:"engine_labelling_ns"`
	ScalarLabellingNs int64   `json:"scalar_labelling_ns"`
	LabellingSpeedup  float64 `json:"labelling_speedup"`
	BuildTotalNs      int64   `json:"build_total_ns"`

	QueryP50Ns          int64   `json:"query_p50_ns"`
	QueryP99Ns          int64   `json:"query_p99_ns"`
	QueryAllocsPerOp    float64 `json:"query_allocs_per_op"`
	DistanceAllocsPerOp float64 `json:"distance_allocs_per_op"`

	BiBFSMeanNs    int64   `json:"bibfs_mean_ns"`
	SpeedupVsBiBFS float64 `json:"speedup_vs_bibfs"`

	LabelEntries int64 `json:"label_entries"`
	MetaArcs     int   `json:"meta_arcs"`
}

// DirectedTableReport is the whole BENCH_PR4.json record.
type DirectedTableReport struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Scale      float64            `json:"scale"`
	Queries    int                `json:"queries"`
	Landmarks  int                `json:"landmarks"`
	Seed       int64              `json:"seed"`
	Datasets   []DirectedTableRow `json:"datasets"`
}

// DirectedTable measures the directed engine over the datasets Table 1
// marks directed, renders the markdown table and returns the rows.
func (h *Harness) DirectedTable() ([]DirectedTableRow, error) {
	var rows []DirectedTableRow
	t := &table{
		title: "DirectedTable — bit-parallel directed engine vs scalar reference",
		header: []string{"Dataset", "|V|", "arcs", "engine label", "scalar label", "speedup",
			"query p50", "query p99", "allocs/op", "Di-Bi-BFS", "vs Bi-BFS"},
	}
	for _, key := range h.sortedKeys() {
		spec, err := datasets.ByKey(key)
		if err != nil {
			return nil, err
		}
		if !spec.Directed {
			continue
		}
		g := spec.GenerateDirected(h.cfg.Scale)
		row, err := h.directedRow(key, g)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		t.add(key, fmtCount(row.Vertices), fmtCount(row.Arcs),
			fmtDuration(time.Duration(row.EngineLabellingNs)),
			fmtDuration(time.Duration(row.ScalarLabellingNs)),
			fmt.Sprintf("%.1fx", row.LabellingSpeedup),
			fmtDuration(time.Duration(row.QueryP50Ns)),
			fmtDuration(time.Duration(row.QueryP99Ns)),
			fmt.Sprintf("%.1f", row.QueryAllocsPerOp),
			fmtDuration(time.Duration(row.BiBFSMeanNs)),
			fmt.Sprintf("%.1fx", row.SpeedupVsBiBFS))
	}
	t.render(h.cfg.Out)
	return rows, nil
}

func (h *Harness) directedRow(key string, g *graph.DiGraph) (DirectedTableRow, error) {
	cfg := h.cfg
	row := DirectedTableRow{Key: key, Vertices: g.NumVertices(), Arcs: g.NumArcs()}

	var ix *dcore.Index
	bestEngine, bestTotal := int64(1<<62), int64(1<<62)
	for rep := 0; rep < buildReps; rep++ {
		built, err := dcore.Build(g, dcore.Options{NumLandmarks: cfg.NumLandmarks, Parallelism: 1})
		if err != nil {
			return row, err
		}
		st := built.Stats()
		if ns := st.LabellingTime.Nanoseconds(); ns < bestEngine {
			bestEngine = ns
		}
		if ns := st.TotalTime.Nanoseconds(); ns < bestTotal {
			bestTotal = ns
			row.LabelEntries = st.LabelEntries
			row.MetaArcs = st.MetaArcs
		}
		ix = built
	}
	bestScalar := int64(1 << 62)
	for rep := 0; rep < buildReps; rep++ {
		built, err := dcore.Build(g, dcore.Options{NumLandmarks: cfg.NumLandmarks, Parallelism: 1, Scalar: true})
		if err != nil {
			return row, err
		}
		if ns := built.Stats().LabellingTime.Nanoseconds(); ns < bestScalar {
			bestScalar = ns
		}
	}
	row.EngineLabellingNs = bestEngine
	row.ScalarLabellingNs = bestScalar
	row.BuildTotalNs = bestTotal
	if bestEngine > 0 {
		row.LabellingSpeedup = float64(bestScalar) / float64(bestEngine)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	type qp struct{ u, v graph.V }
	pairs := make([]qp, cfg.NumQueries)
	for i := range pairs {
		pairs[i] = qp{graph.V(rng.Intn(g.NumVertices())), graph.V(rng.Intn(g.NumVertices()))}
	}

	sr := dcore.NewSearcher(ix)
	spg := graph.NewDiSPG(0, 0)
	for _, p := range pairs {
		sr.QueryInto(spg, p.u, p.v) // warm every buffer
	}
	lat := make([]int64, len(pairs))
	for i, p := range pairs {
		t0 := time.Now()
		sr.QueryInto(spg, p.u, p.v)
		lat[i] = time.Since(t0).Nanoseconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	row.QueryP50Ns = lat[len(lat)/2]
	row.QueryP99Ns = lat[len(lat)*99/100]

	i := 0
	row.QueryAllocsPerOp = allocsPerRun(256, func() {
		p := pairs[i%len(pairs)]
		i++
		sr.QueryInto(spg, p.u, p.v)
	})
	i = 0
	row.DistanceAllocsPerOp = allocsPerRun(256, func() {
		p := pairs[i%len(pairs)]
		i++
		sr.Distance(p.u, p.v)
	})

	bib := bfs.NewDiBidirectional(g)
	start := time.Now()
	for _, p := range pairs {
		bib.Query(p.u, p.v)
	}
	row.BiBFSMeanNs = time.Since(start).Nanoseconds() / int64(len(pairs))
	if mean := meanNs(lat); mean > 0 {
		row.SpeedupVsBiBFS = float64(row.BiBFSMeanNs) / float64(mean)
	}
	return row, nil
}

func meanNs(lat []int64) int64 {
	if len(lat) == 0 {
		return 0
	}
	var sum int64
	for _, v := range lat {
		sum += v
	}
	return sum / int64(len(lat))
}

// DirectedTableJSON runs DirectedTable and writes the BENCH_PR4.json
// record with stable formatting.
func (h *Harness) DirectedTableJSON(path string) error {
	rows, err := h.DirectedTable()
	if err != nil {
		return err
	}
	rep := DirectedTableReport{
		Schema:     DirectedTableSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      h.cfg.Scale,
		Queries:    h.cfg.NumQueries,
		Landmarks:  h.cfg.NumLandmarks,
		Seed:       h.cfg.Seed,
		Datasets:   rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
