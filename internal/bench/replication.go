package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qbs"
	"qbs/internal/dynamic"
	"qbs/internal/graph"
	"qbs/internal/replica"
	"qbs/internal/server"
	"qbs/internal/store"
	"qbs/internal/workload"
)

// ReplicaScaling measures read throughput through the query router as
// replicas are added, under a concurrent MixedOps write stream hitting
// the primary — the PR 5 read-scaling experiment (BENCH_PR5.json).
//
// Capacity model: the bench host is one machine (often a single core in
// CI), so raw CPU parallelism cannot demonstrate scale-out. Instead
// each replica is served through a capacity gate — at most
// CapPerReplica concurrent reads, each holding the slot for
// ServiceFloor — emulating a fleet of fixed-capacity replica nodes.
// What the experiment then measures is real: the router's ability to
// spread saturating read load across N capacity-bounded backends while
// WAL shipping keeps every backend converging under live writes. The
// gate parameters are recorded in the snapshot so the number can be
// read for what it is.

// ReplicationSchema identifies the BENCH_PR5.json format.
const ReplicationSchema = "qbs-bench-replication/v1"

// ReplicaScalingConfig tunes the experiment; zero values take the
// defaults noted per field.
type ReplicaScalingConfig struct {
	ReplicaCounts []int         // replica counts to sweep (default 1,2,4)
	CapPerReplica int           // concurrent reads per replica node (default 2)
	ServiceFloor  time.Duration // per-read service time at a replica (default 2ms)
	Readers       int           // client goroutines offering load (default 32)
	Warmup        time.Duration // settle time before counting (default 300ms)
	Measure       time.Duration // measurement window (default 1.5s)
	WritePace     time.Duration // one primary write per this interval (default 10ms)
}

func (c ReplicaScalingConfig) withDefaults() ReplicaScalingConfig {
	if len(c.ReplicaCounts) == 0 {
		c.ReplicaCounts = []int{1, 2, 4}
	}
	if c.CapPerReplica <= 0 {
		c.CapPerReplica = 2
	}
	if c.ServiceFloor <= 0 {
		c.ServiceFloor = 2 * time.Millisecond
	}
	if c.Readers <= 0 {
		c.Readers = 32
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Measure <= 0 {
		c.Measure = 1500 * time.Millisecond
	}
	if c.WritePace <= 0 {
		c.WritePace = 10 * time.Millisecond
	}
	return c
}

// ReplicaScalingRun is one row: read QPS through the router at a given
// replica count.
type ReplicaScalingRun struct {
	Replicas      int     `json:"replicas"`
	ReadQPS       float64 `json:"read_qps"`
	Reads         int64   `json:"reads"`
	ReadErrors    int64   `json:"read_errors"`
	WritesApplied int64   `json:"writes_applied"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
	FinalEpoch    uint64  `json:"final_primary_epoch"`
	FinalLag      uint64  `json:"final_max_replica_lag_epochs"`
}

// ReplicationSnapshot is the machine-readable BENCH_PR5.json record.
type ReplicationSnapshot struct {
	Schema         string              `json:"schema"`
	GoVersion      string              `json:"go"`
	GOMAXPROCS     int                 `json:"gomaxprocs"`
	Dataset        string              `json:"dataset"`
	Vertices       int                 `json:"vertices"`
	Edges          int                 `json:"edges"`
	Scale          float64             `json:"scale"`
	Landmarks      int                 `json:"landmarks"`
	Seed           int64               `json:"seed"`
	CapPerReplica  int                 `json:"cap_per_replica"`
	ServiceFloorUs int64               `json:"service_floor_us"`
	Readers        int                 `json:"readers"`
	MeasureMs      int64               `json:"measure_ms"`
	WritePaceUs    int64               `json:"write_pace_us"`
	CapacityModel  string              `json:"capacity_model"`
	Runs           []ReplicaScalingRun `json:"runs"`
}

// capacityGate admits at most cap concurrent requests, each holding its
// slot for at least floor — the fixed-size replica-node emulation.
func capacityGate(cap int, floor time.Duration, next http.Handler) http.Handler {
	slots := make(chan struct{}, cap)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slots <- struct{}{}
		defer func() { <-slots }()
		time.Sleep(floor)
		next.ServeHTTP(w, r)
	})
}

// ReplicaScaling runs the experiment and renders the markdown table to
// the harness writer.
func (h *Harness) ReplicaScaling(rc ReplicaScalingConfig) (*ReplicationSnapshot, error) {
	rc = rc.withDefaults()
	cfg := h.cfg
	key := cfg.Datasets[0]
	g, err := h.Graph(key)
	if err != nil {
		return nil, err
	}
	snap := &ReplicationSnapshot{
		Schema:         ReplicationSchema,
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Dataset:        key,
		Vertices:       g.NumVertices(),
		Edges:          g.NumEdges(),
		Scale:          cfg.Scale,
		Landmarks:      cfg.NumLandmarks,
		Seed:           cfg.Seed,
		CapPerReplica:  rc.CapPerReplica,
		ServiceFloorUs: rc.ServiceFloor.Microseconds(),
		Readers:        rc.Readers,
		MeasureMs:      rc.Measure.Milliseconds(),
		WritePaceUs:    rc.WritePace.Microseconds(),
		CapacityModel: fmt.Sprintf(
			"each replica gated to %d concurrent reads with a %s service floor (emulated fixed-capacity nodes on one bench host); scaling measured is router load-spreading, not host CPU parallelism",
			rc.CapPerReplica, rc.ServiceFloor),
	}
	for _, n := range rc.ReplicaCounts {
		run, err := h.replicaScalingRun(g, n, rc)
		if err != nil {
			return nil, err
		}
		if len(snap.Runs) > 0 && snap.Runs[0].ReadQPS > 0 {
			run.SpeedupVs1 = run.ReadQPS / snap.Runs[0].ReadQPS
		} else if len(snap.Runs) == 0 {
			run.SpeedupVs1 = 1
		}
		snap.Runs = append(snap.Runs, run)
	}

	tb := &table{
		title:  fmt.Sprintf("Read scaling with replicas (%s, MixedOps writes at 1/%s)", key, rc.WritePace),
		header: []string{"replicas", "read QPS", "speedup", "reads", "errors", "writes", "final lag"},
	}
	for _, r := range snap.Runs {
		tb.add(fmt.Sprintf("%d", r.Replicas), fmt.Sprintf("%.0f", r.ReadQPS),
			fmt.Sprintf("%.2fx", r.SpeedupVs1), fmtCount(int(r.Reads)),
			fmt.Sprintf("%d", r.ReadErrors), fmt.Sprintf("%d", r.WritesApplied),
			fmt.Sprintf("%d", r.FinalLag))
	}
	tb.render(cfg.Out)
	return snap, nil
}

// replicaScalingRun stands up one full topology — durable primary, n
// replicas behind capacity gates, a router — and measures routed read
// throughput under the paced write stream.
func (h *Harness) replicaScalingRun(g *graph.Graph, n int, rc ReplicaScalingConfig) (ReplicaScalingRun, error) {
	run := ReplicaScalingRun{Replicas: n}

	dir, err := os.MkdirTemp("", "qbs-replbench-")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(dir)

	d, err := dynamic.New(g, g.TopDegreeVertices(h.cfg.NumLandmarks), dynamic.Options{CompactFraction: -1})
	if err != nil {
		return run, err
	}
	st, err := store.Create(dir, d, store.Options{SyncEvery: 256})
	if err != nil {
		return run, err
	}
	defer st.Close()

	prim := replica.NewPrimary(st, replica.PrimaryOptions{})
	defer prim.Close()
	mux := http.NewServeMux()
	mux.Handle("/replication/", prim)
	mux.Handle("/", server.NewMutable(qbs.AdoptDynamic(d)))
	primary := httptest.NewServer(mux)
	defer primary.Close()

	// Connection-rich client: the default transport's two idle conns per
	// host would serialise the fan-out. Idle connections are torn down
	// with the run so their reader goroutines cannot pollute later
	// allocation-sensitive measurements in the same process.
	transport := &http.Transport{MaxIdleConnsPerHost: 4 * rc.Readers}
	defer transport.CloseIdleConnections()
	client := &http.Client{Timeout: 30 * time.Second, Transport: transport}

	reps := make([]*replica.Replica, 0, n)
	repURLs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		rep, err := replica.Start(primary.URL, replica.Options{
			PollInterval: 2 * time.Millisecond,
			Client:       client,
		})
		if err != nil {
			return run, err
		}
		defer rep.Stop()
		ts := httptest.NewServer(capacityGate(rc.CapPerReplica, rc.ServiceFloor, rep.Handler()))
		defer ts.Close()
		reps = append(reps, rep)
		repURLs = append(repURLs, ts.URL)
	}

	rt := replica.NewRouter(primary.URL, repURLs, replica.RouterOptions{
		HealthInterval: 100 * time.Millisecond,
		Client:         client,
		Seed:           h.cfg.Seed,
	})
	defer rt.Stop()

	var (
		reads, readErrs, writes atomic.Int64
		counting                atomic.Bool
		done                    = make(chan struct{})
		wg                      sync.WaitGroup
	)

	// Paced writer: the MixedOps mutation stream through the router
	// (forwarded to the primary), one write per WritePace.
	muts := workload.Mutations(g, 1<<14, h.cfg.Seed)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(rc.WritePace)
		defer ticker.Stop()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			op := muts[i%len(muts)]
			var req *http.Request
			if op.Kind == workload.OpInsert {
				body, _ := json.Marshal(map[string]int32{"u": op.U, "v": op.V})
				req = httptest.NewRequest("POST", "/edges", bytes.NewReader(body))
			} else {
				req = httptest.NewRequest("DELETE", fmt.Sprintf("/edges?u=%d&v=%d", op.U, op.V), nil)
			}
			rec := httptest.NewRecorder()
			rt.ServeHTTP(rec, req)
			if rec.Code == 200 && counting.Load() {
				writes.Add(1)
			}
		}
	}()

	// Readers: saturating /spg load through the router.
	for w := 0; w < rc.Readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			nv := g.NumVertices()
			for {
				select {
				case <-done:
					return
				default:
				}
				u, v := rng.Intn(nv), rng.Intn(nv)
				rec := httptest.NewRecorder()
				rt.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/spg?u=%d&v=%d", u, v), nil))
				if !counting.Load() {
					continue
				}
				if rec.Code == 200 {
					reads.Add(1)
				} else {
					readErrs.Add(1)
				}
			}
		}(h.cfg.Seed + int64(w))
	}

	time.Sleep(rc.Warmup)
	counting.Store(true)
	t0 := time.Now()
	time.Sleep(rc.Measure)
	counting.Store(false)
	elapsed := time.Since(t0)
	close(done)
	wg.Wait()

	run.Reads = reads.Load()
	run.ReadErrors = readErrs.Load()
	run.WritesApplied = writes.Load()
	run.ReadQPS = float64(run.Reads) / elapsed.Seconds()
	run.FinalEpoch = d.Epoch()
	for _, rep := range reps {
		if lag := run.FinalEpoch - rep.Epoch(); rep.Epoch() <= run.FinalEpoch && lag > run.FinalLag {
			run.FinalLag = lag
		}
	}
	return run, nil
}

// ReplicaScalingJSON runs the experiment with defaults and writes the
// snapshot to path — the `qbs-bench -exp replication -json` entry.
func (h *Harness) ReplicaScalingJSON(path string) error {
	snap, err := h.ReplicaScaling(ReplicaScalingConfig{})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
