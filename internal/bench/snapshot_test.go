package bench

import (
	"path/filepath"
	"testing"
)

func TestSnapshotShapeAndRoundtrip(t *testing.T) {
	h := New(Config{Scale: 0.02, NumQueries: 50, Datasets: []string{"DO", "FR"}})
	s, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != SnapshotSchema {
		t.Fatalf("schema = %q", s.Schema)
	}
	if len(s.Datasets) != 2 {
		t.Fatalf("%d dataset rows, want 2", len(s.Datasets))
	}
	for _, d := range s.Datasets {
		if d.Vertices <= 0 || d.Edges <= 0 || d.BuildTotalNs <= 0 || d.QueryP50Ns <= 0 {
			t.Fatalf("%s: degenerate row %+v", d.Key, d)
		}
		if d.QueryP99Ns < d.QueryP50Ns {
			t.Fatalf("%s: p99 %d < p50 %d", d.Key, d.QueryP99Ns, d.QueryP50Ns)
		}
		if !raceEnabled && (d.QueryAllocsPerOp != 0 || d.DistanceAllocsPerOp != 0) {
			t.Fatalf("%s: warm query allocates (query=%.2f distance=%.2f), want 0",
				d.Key, d.QueryAllocsPerOp, d.DistanceAllocsPerOp)
		}
	}

	path := filepath.Join(t.TempDir(), "snap.json")
	if err := s.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != s.Schema || len(back.Datasets) != len(s.Datasets) ||
		back.Datasets[0] != s.Datasets[0] {
		t.Fatal("snapshot JSON roundtrip mismatch")
	}
}
