package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"qbs/internal/dynamic"
	"qbs/internal/graph"
	"qbs/internal/obs"
)

// Options tunes the durable store.
type Options struct {
	// Dynamic configures the in-memory index (repair budget, compaction).
	Dynamic dynamic.Options
	// SyncEvery batches WAL fsyncs: the log is fsynced after this many
	// appends (and at rotation, checkpoint and close). <= 1 fsyncs every
	// append — the durable default; larger values trade the tail of the
	// log on power loss for write throughput.
	SyncEvery int
	// SegmentBytes rotates WAL segments past this size (0 = 64 MiB).
	SegmentBytes int64
	// ReadOnly opens without attaching the WAL: no writes, no
	// checkpoints, and no truncation of torn tails.
	ReadOnly bool
	// MMap maps the snapshot instead of reading it (the mapping lives
	// for the rest of the process; see arena).
	MMap bool
	// KeepSnapshots is how many snapshot generations checkpoints retain
	// (0 = 2: the new one plus one fallback).
	KeepSnapshots int
}

func (o Options) withDefaults() Options {
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o
}

// ErrReadOnly is returned by write operations on a read-only store.
var ErrReadOnly = errors.New("store: read-only")

// ErrClosed is returned when the store has been closed.
var ErrClosed = errors.New("store: closed")

const (
	currentFile = "CURRENT"
	lockFile    = "LOCK"
)

// Store binds a dynamic index to a data directory: every applied update
// is WAL-logged before its epoch publishes, and Checkpoint persists a
// snapshot and prunes the log. Store implements dynamic.UpdateLogger.
type Store struct {
	dir  string
	opts Options
	d    *dynamic.Index

	ckptMu sync.Mutex // serialises checkpoints

	walMu        sync.Mutex // guards the fields below (appends vs rotation)
	w            *walWriter // nil when read-only
	snaps        []uint64   // intact snapshot epochs on disk, ascending
	retain       uint64     // replication pruning floor; see SetWALRetain
	lastAppended uint64     // newest epoch written to the log
	syncedEpoch  uint64     // newest epoch known fsynced (replication serves up to here)
	lastTailSync time.Time  // last replication-driven fsync; rate-limits ReadWAL syncs
	closed       bool

	lock *os.File // held flock for writable stores (nil if read-only / unsupported)
}

func walDir(dir string) string { return filepath.Join(dir, "wal") }

// Exists reports whether dir already holds a store (a CURRENT pointer
// or any snapshot file).
func Exists(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, currentFile)); err == nil {
		return true
	}
	names, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.qbss"))
	return len(names) > 0
}

// Create initialises dir as the durable home of d: the current state is
// written as the initial snapshot and the WAL is attached, so every
// subsequent update is logged. dir must not already contain a store.
func Create(dir string, d *dynamic.Index, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.ReadOnly {
		return nil, ErrReadOnly
	}
	if err := os.MkdirAll(walDir(dir), 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, err
	}
	if Exists(dir) {
		unlockDataDir(lock)
		return nil, fmt.Errorf("store: %s already contains a store", dir)
	}
	ps := d.Persistent()
	name, err := writeSnapshotFile(dir, ps)
	if err != nil {
		unlockDataDir(lock)
		return nil, err
	}
	if err := writeCurrent(dir, name); err != nil {
		unlockDataDir(lock)
		return nil, err
	}
	w, err := newWALWriter(walDir(dir), 1, opts.SegmentBytes, opts.SyncEvery, nil)
	if err != nil {
		unlockDataDir(lock)
		return nil, err
	}
	s := &Store{
		dir: dir, opts: opts, d: d, w: w,
		snaps:  []uint64{ps.Epoch},
		retain: ^uint64(0), lastAppended: ps.Epoch, syncedEpoch: ps.Epoch,
		lock: lock,
	}
	d.SetLogger(s)
	return s, nil
}

// Open recovers the index from dir: the newest valid snapshot is loaded
// zero-copy, WAL records beyond its epoch are replayed through the
// incremental repair path, torn tails are truncated (writable opens),
// and — unless read-only — a fresh WAL segment is attached for new
// writes.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	var lock *os.File
	if !opts.ReadOnly {
		// Writable opens scan and may truncate the log, so they must be
		// exclusive — a second writer would truncate segments this process
		// is still appending to. (Read-only opens skip the lock: they never
		// modify the directory and tolerate observing a consistent prefix
		// of a live writer's log.)
		var err error
		if lock, err = lockDataDir(dir); err != nil {
			return nil, err
		}
	}
	// Recovery is a root span: it runs before any request can arrive, and
	// a slow restore (large snapshot, long replay tail) is exactly the
	// kind of invisible stall the trace store exists to expose.
	tb := obs.DefaultTracer.Begin("store.recover", "", 0, false)
	fail := func(err error) (*Store, error) {
		tb.MarkError()
		obs.DefaultTracer.Finish(tb)
		unlockDataDir(lock)
		return nil, err
	}

	loadSp := tb.StartSpan("snapshot.load")
	ls, snaps, damaged, err := loadNewestSnapshot(dir, opts.MMap)
	if err != nil {
		loadSp.Fail()
		loadSp.End()
		return fail(err)
	}
	if !opts.ReadOnly {
		// Snapshots that were readable but failed validation are provably
		// corrupt and must leave the pruning bookkeeping: keeping them
		// would let a later checkpoint retire the intact fallback (and its
		// WAL prefix) in favour of garbage.
		for _, name := range damaged {
			_ = os.Remove(filepath.Join(dir, name))
			evSnapshotRetired.Emit(obs.Str("file", name), obs.Str("reason", "damaged"))
		}
	}
	d, err := dynamic.Restore(ls.g, ls.landmarks, ls.dists, ls.labels, ls.sigma, ls.delta, ls.epoch, opts.Dynamic)
	if err != nil {
		loadSp.Fail()
		loadSp.End()
		return fail(fmt.Errorf("store: restore: %w", err))
	}
	loadSp.SetInt("epoch", int64(ls.epoch))
	loadSp.End()

	replaySp := tb.StartSpan("wal.replay")
	replayed := 0
	segs, err := listSegments(walDir(dir))
	if err != nil {
		replaySp.Fail()
		replaySp.End()
		return fail(err)
	}
	var prior []segmentInfo
	maxSeq := uint64(0)
	for i, seg := range segs {
		last := i == len(segs)-1
		res, err := scanSegment(seg.path, seg.seq, func(rec walRecord) error {
			if rec.epoch <= ls.epoch {
				return nil // already folded into the snapshot
			}
			replayed++
			if rec.op == recCompact {
				return d.ReplayEpoch(rec.epoch)
			}
			return d.ReplayEdge(rec.u, rec.w, rec.op == recInsert, rec.epoch)
		})
		if err != nil {
			replaySp.Fail()
			replaySp.End()
			return fail(fmt.Errorf("store: replay %s: %w", filepath.Base(seg.path), err))
		}
		if res.torn && !last {
			replaySp.Fail()
			replaySp.End()
			return fail(fmt.Errorf("store: segment %s is corrupt mid-log (valid segments follow)", filepath.Base(seg.path)))
		}
		if res.torn && !opts.ReadOnly {
			if res.badHeader {
				// Crash during rotation: the segment never became valid.
				if err := os.Remove(seg.path); err != nil {
					return fail(err)
				}
			} else if err := os.Truncate(seg.path, res.lastGood); err != nil {
				return fail(err)
			}
		}
		if seg.seq > maxSeq {
			maxSeq = seg.seq
		}
		if !res.badHeader {
			prior = append(prior, segmentInfo{seq: seg.seq, lastEpoch: res.lastEpoch, hasRecords: res.records > 0})
		}
	}
	replaySp.SetInt("segments", int64(len(segs)))
	replaySp.SetInt("records", int64(replayed))
	replaySp.End()

	// Everything recovered from disk counts as durable for replication
	// purposes: it survived to be replayed.
	s := &Store{
		dir: dir, opts: opts, d: d,
		snaps:  snaps,
		retain: ^uint64(0), lastAppended: d.Epoch(), syncedEpoch: d.Epoch(),
		lock: lock,
	}
	if !opts.ReadOnly {
		w, err := newWALWriter(walDir(dir), maxSeq+1, opts.SegmentBytes, opts.SyncEvery, prior)
		if err != nil {
			return fail(err)
		}
		s.w = w
		d.SetLogger(s)
	}
	tb.Root().SetInt("epoch", int64(d.Epoch()))
	obs.DefaultTracer.Finish(tb)
	return s, nil
}

// Index returns the recovered (or adopted) dynamic index.
func (s *Store) Index() *dynamic.Index { return s.d }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// ReadOnly reports whether the store was opened read-only.
func (s *Store) ReadOnly() bool { return s.opts.ReadOnly }

// LogUpdate implements dynamic.UpdateLogger.
func (s *Store) LogUpdate(epoch uint64, u, w graph.V, insert bool) error {
	op := uint8(recInsert)
	if !insert {
		op = recDelete
	}
	return s.logRecord(walRecord{epoch: epoch, op: op, u: u, w: w})
}

// LogCompaction implements dynamic.UpdateLogger.
func (s *Store) LogCompaction(epoch uint64) error {
	return s.logRecord(walRecord{epoch: epoch, op: recCompact})
}

func (s *Store) logRecord(rec walRecord) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.w.append(rec); err != nil {
		return err
	}
	s.lastAppended = rec.epoch
	if s.w.unsynced == 0 { // append fsynced (SyncEvery boundary or <=1)
		s.syncedEpoch = rec.epoch
	}
	return nil
}

// Checkpoint persists the current snapshot, points CURRENT at it,
// prunes snapshot generations beyond Options.KeepSnapshots, rotates the
// WAL and deletes segments wholly covered by the retained snapshots.
// Writers keep running during the snapshot write: the state captured is
// one consistent published epoch, and updates that land meanwhile stay
// in the log. It returns the epoch persisted.
func (s *Store) Checkpoint() (uint64, error) {
	if s.opts.ReadOnly {
		return 0, ErrReadOnly
	}
	tb := obs.DefaultTracer.Begin("store.checkpoint", "", 0, false)
	epoch, err := s.checkpoint(tb)
	if err != nil {
		tb.MarkError()
		evCheckpointError.Emit(obs.Str("error", err.Error()))
	} else {
		tb.Root().SetInt("epoch", int64(epoch))
		evCheckpoint.Emit(obs.Int("epoch", int64(epoch)))
	}
	obs.DefaultTracer.Finish(tb)
	return epoch, err
}

func (s *Store) checkpoint(tb *obs.TraceBuf) (uint64, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	s.walMu.Lock()
	if s.closed {
		s.walMu.Unlock()
		return 0, ErrClosed
	}
	lastSnap := s.snaps[len(s.snaps)-1]
	s.walMu.Unlock()

	start := time.Now()
	ps := s.d.Persistent()
	if ps.Epoch == lastSnap {
		return ps.Epoch, nil // nothing new to persist
	}
	writeSp := tb.StartSpan("snapshot.write")
	name, err := writeSnapshotFile(s.dir, ps)
	if err != nil {
		writeSp.Fail()
		writeSp.End()
		return 0, err
	}
	if fi, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
		mSnapshotSize.Set(fi.Size())
		writeSp.SetInt("bytes", fi.Size())
	}
	writeSp.End()
	if err := writeCurrent(s.dir, name); err != nil {
		return 0, err
	}
	defer func() {
		mCheckpointNs.Set(time.Since(start).Nanoseconds())
		mCheckpoints.Inc()
	}()

	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return ps.Epoch, nil // persisted, but the log is gone; leave layout as is
	}
	s.snaps = append(s.snaps, ps.Epoch)
	sort.Slice(s.snaps, func(i, j int) bool { return s.snaps[i] < s.snaps[j] })
	for len(s.snaps) > s.opts.KeepSnapshots {
		old := s.snaps[0]
		s.snaps = s.snaps[1:]
		if err := os.Remove(filepath.Join(s.dir, snapshotFileName(old))); err != nil && !os.IsNotExist(err) {
			return 0, err
		}
		evSnapshotPruned.Emit(obs.Int("epoch", int64(old)))
	}
	if err := s.w.rotate(); err != nil {
		return 0, err
	}
	s.syncedEpoch = s.lastAppended // rotation flushed the old segment
	// Prune up to whatever both recovery and replication can spare: the
	// oldest retained snapshot, lowered to the replication retain floor
	// so a registered replica's next record is never deleted.
	upto := s.snaps[0]
	if s.retain < upto {
		upto = s.retain
	}
	if err := s.w.prune(upto); err != nil {
		return 0, err
	}
	return ps.Epoch, nil
}

// Close detaches the index from the store and flushes and closes the
// WAL. The index itself remains usable in memory; further updates are
// simply no longer durable.
func (s *Store) Close() error {
	// Detach first (synchronises with in-flight writers) so no append can
	// race the close below. Safe ordering: SetLogger takes the index lock,
	// never the store's.
	s.d.SetLogger(nil)
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer func() {
		unlockDataDir(s.lock)
		s.lock = nil
	}()
	if s.w == nil {
		return nil
	}
	err := s.w.close()
	if err == nil {
		s.syncedEpoch = s.lastAppended // close flushed everything appended
	}
	return err
}

// writeCurrent atomically points CURRENT at a snapshot file name.
func writeCurrent(dir, name string) error {
	tmp := filepath.Join(dir, currentFile+".tmp")
	if err := os.WriteFile(tmp, []byte(name+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, currentFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadNewestSnapshot loads the newest snapshot that validates: the one
// CURRENT names first, then every on-disk snapshot in descending epoch
// order. Alongside the loaded snapshot it returns the ascending epochs
// of the snapshot files believed intact (for checkpoint pruning
// bookkeeping) and the names of files that were readable but failed
// validation — provably corrupt, excluded from the intact list, and
// deletable by a writable open. A file that could not be read at all
// (I/O error) is neither trusted nor condemned.
func loadNewestSnapshot(dir string, useMMap bool) (*loadedSnapshot, []uint64, []string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "snapshot-*.qbss"))
	if err != nil {
		return nil, nil, nil, err
	}
	var epochs []uint64
	for _, p := range names {
		if e, ok := snapshotEpoch(filepath.Base(p)); ok {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })

	tried := map[string]bool{}
	var damaged []string        // readable but failed validation: provably corrupt
	failed := map[string]bool{} // any tried-and-rejected file, incl. I/O failures
	var firstErr error
	try := func(name string) *loadedSnapshot {
		if name == "" || tried[name] {
			return nil
		}
		tried[name] = true
		ar, err := openArena(filepath.Join(dir, name), useMMap)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			failed[name] = true
			return nil
		}
		ls, err := decodeSnapshot(ar.data)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("store: snapshot %s: %w", name, err)
			}
			damaged = append(damaged, name)
			failed[name] = true
			return nil
		}
		ls.arena = ar
		return ls
	}
	finish := func(ls *loadedSnapshot) (*loadedSnapshot, []uint64, []string, error) {
		// The intact list drives checkpoint pruning; nothing that was
		// tried and rejected — whether corrupt or merely unreadable — may
		// count as a retained generation, or pruning could retire the
		// validated fallback (and its WAL prefix) in its favour.
		intact := epochs[:0]
		for _, e := range epochs {
			if !failed[snapshotFileName(e)] {
				intact = append(intact, e)
			}
		}
		return ls, intact, damaged, nil
	}

	if cur, err := os.ReadFile(filepath.Join(dir, currentFile)); err == nil {
		name := string(cur)
		for len(name) > 0 && (name[len(name)-1] == '\n' || name[len(name)-1] == '\r') {
			name = name[:len(name)-1]
		}
		if filepath.Base(name) == name { // refuse path traversal
			if ls := try(name); ls != nil {
				return finish(ls)
			}
		}
	}
	for i := len(epochs) - 1; i >= 0; i-- {
		if ls := try(snapshotFileName(epochs[i])); ls != nil {
			return finish(ls)
		}
	}
	if firstErr != nil {
		return nil, nil, nil, fmt.Errorf("store: no valid snapshot in %s: %w", dir, firstErr)
	}
	return nil, nil, nil, fmt.Errorf("store: no snapshot found in %s", dir)
}
