package store

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"qbs/internal/obs"
)

// The build-info gauge must render as a valid exposition sample on the
// process-wide registry: constant 1 with the toolchain and format
// versions as labels.
func TestBuildInfoExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, obs.Default); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	text := buf.String()
	var line string
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "qbs_build_info{") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("qbs_build_info series missing from exposition:\n%s", text)
	}
	for _, want := range []string{
		`go_version="` + runtime.Version() + `"`,
		`snapshot_format="3"`,
		`dynamic_snapshot_format="4"`,
		`wal_format="1"`,
		`module_version="`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("qbs_build_info line %q missing %q", line, want)
		}
	}
	if !strings.HasSuffix(line, "} 1") {
		t.Errorf("qbs_build_info should be a constant-1 gauge, got %q", line)
	}
}
