package store

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/dcore"
	"qbs/internal/graph"
)

func diTestIndex(t *testing.T) (*graph.DiGraph, *dcore.Index) {
	t.Helper()
	g := graph.DirectedScaleFree(400, 3, 61)
	ix, err := dcore.Build(g, dcore.Options{NumLandmarks: 12})
	if err != nil {
		t.Fatal(err)
	}
	return g, ix
}

// TestDiStoreRoundTrip is the PR 4 acceptance criterion: a directed
// store round-trips bit-identically — labels, σ, Δ and both CSR halves —
// and the reopened index answers queries exactly like the original.
func TestDiStoreRoundTrip(t *testing.T) {
	for _, mmap := range []bool{false, true} {
		name := "read"
		if mmap {
			name = "mmap"
		}
		t.Run(name, func(t *testing.T) {
			g, ix := diTestIndex(t)
			dir := t.TempDir()
			if err := CreateDi(dir, ix.Persistent()); err != nil {
				t.Fatal(err)
			}
			if !DiExists(dir) {
				t.Fatal("DiExists false after CreateDi")
			}
			re, err := OpenDi(dir, mmap)
			if err != nil {
				t.Fatal(err)
			}

			a, b := ix.Persistent(), re.Persistent()
			if string(a.Sigma) != string(b.Sigma) {
				t.Fatal("sigma not bit-identical")
			}
			if string(a.LabelFrom) != string(b.LabelFrom) || string(a.LabelTo) != string(b.LabelTo) {
				t.Fatal("labels not bit-identical")
			}
			ao1, aa1, ai1, av1 := a.Graph.CSR()
			bo1, ba1, bi1, bv1 := b.Graph.CSR()
			for i := range ao1 {
				if ao1[i] != bo1[i] || ai1[i] != bi1[i] {
					t.Fatal("CSR offsets not bit-identical")
				}
			}
			for i := range aa1 {
				if aa1[i] != ba1[i] || av1[i] != bv1[i] {
					t.Fatal("CSR adjacency not bit-identical")
				}
			}
			if len(a.Delta) != len(b.Delta) {
				t.Fatalf("delta lists: %d vs %d", len(a.Delta), len(b.Delta))
			}
			for k := range a.Delta {
				if len(a.Delta[k]) != len(b.Delta[k]) {
					t.Fatalf("delta[%d] length differs", k)
				}
				for i := range a.Delta[k] {
					if a.Delta[k][i] != b.Delta[k][i] {
						t.Fatalf("delta[%d][%d] differs", k, i)
					}
				}
			}

			sr := dcore.NewSearcher(re)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 80; i++ {
				u := graph.V(rng.Intn(g.NumVertices()))
				v := graph.V(rng.Intn(g.NumVertices()))
				want := bfs.OracleDiSPG(g, u, v)
				if got := sr.Query(u, v); !got.Equal(want) {
					t.Fatalf("reopened index: query (%d,%d) != oracle", u, v)
				}
			}
		})
	}
}

func TestDiStoreCreateTwiceFails(t *testing.T) {
	_, ix := diTestIndex(t)
	dir := t.TempDir()
	if err := CreateDi(dir, ix.Persistent()); err != nil {
		t.Fatal(err)
	}
	if err := CreateDi(dir, ix.Persistent()); err == nil {
		t.Fatal("second CreateDi succeeded")
	}
}

// TestDiSnapshotCorruptionDetected flips one byte at a sweep of offsets;
// every corrupted image must be rejected (or, for a handful of bytes
// that only pad alignment, still decode to a working index) — never
// panic.
func TestDiSnapshotCorruptionDetected(t *testing.T) {
	_, ix := diTestIndex(t)
	dir := t.TempDir()
	if err := CreateDi(dir, ix.Persistent()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, diSnapshotName)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := len(orig)/97 + 1
	for off := 0; off < len(orig); off += step {
		data := append([]byte(nil), orig...)
		data[off] ^= 0x41
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked with byte %d flipped: %v", off, r)
				}
			}()
			ix, err := decodeDiSnapshot(data)
			if err == nil && ix == nil {
				t.Fatalf("flip at %d: nil index without error", off)
			}
		}()
	}
	// Truncations must also be rejected cleanly.
	for _, cut := range []int{0, 1, snapHeaderSize, diSnapTableEnd, len(orig) / 2, len(orig) - 1} {
		if _, err := decodeDiSnapshot(orig[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestCrossFormatErrors pins the error messages when a directed file is
// opened with the undirected loader and vice versa — a named redirect,
// not a checksum mismatch.
func TestCrossFormatErrors(t *testing.T) {
	_, ix := diTestIndex(t)
	dir := t.TempDir()
	if err := CreateDi(dir, ix.Persistent()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, diSnapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeSnapshot(data); err == nil || !strings.Contains(err.Error(), "OpenDiStore") {
		t.Fatalf("undirected decoder on v4 file: %v", err)
	}

	udir := t.TempDir()
	writeUndirectedSnapshot(t, udir)
	names, _ := filepath.Glob(filepath.Join(udir, "snapshot-*.qbss"))
	if len(names) == 0 {
		t.Fatal("no undirected snapshot written")
	}
	udata, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeDiSnapshot(udata); err == nil || !strings.Contains(err.Error(), "OpenStore") {
		t.Fatalf("directed decoder on v3 file: %v", err)
	}

	// The v3 compatibility rule: undirected snapshots keep magic "QBS3"
	// and version 3, and keep loading.
	if string(udata[:4]) != snapMagic {
		t.Fatalf("undirected snapshot magic %q, want %q", udata[:4], snapMagic)
	}
	if v := binary.LittleEndian.Uint32(udata[4:]); v != snapVersion {
		t.Fatalf("undirected snapshot version %d, want %d", v, snapVersion)
	}
	if _, err := decodeSnapshot(udata); err != nil {
		t.Fatalf("v3 snapshot no longer loads: %v", err)
	}
}

// writeUndirectedSnapshot persists a tiny undirected dynamic index into
// dir via the ordinary v3 store path.
func writeUndirectedSnapshot(t *testing.T, dir string) {
	t.Helper()
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}, {U: 3, W: 4}, {U: 0, W: 4},
	})
	d := newDynamic(t, g, 2)
	st, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
