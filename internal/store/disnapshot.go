package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"qbs/internal/dcore"
	"qbs/internal/graph"
)

// Directed snapshot — the format-v4 flavor. A directed index is
// immutable (no dynamic subsystem, hence no WAL), so its durable home is
// a single self-describing checksummed file holding the dual CSR, the
// landmark set, the directed σ matrix, both label matrices and the Δ
// lists, under the same crc32c / 8-aligned / zero-copy discipline as the
// undirected v3 snapshot. See doc.go for the layout and the v3
// compatibility rule.

const (
	diSnapMagic   = "QBS4"
	diSnapVersion = 4

	diSnapNumSections = 10
	diSnapTableEnd    = snapHeaderSize + diSnapNumSections*snapSectionSize

	// flagDirected marks the snapshot as the directed flavor in the v4
	// flags word at offset 44.
	flagDirected = uint32(1)
)

// Directed section kinds, in their fixed file order.
const (
	diSecOutOffsets = 1 + iota
	diSecOutAdj
	diSecInOffsets
	diSecInAdj
	diSecLandmarks
	diSecSigma
	diSecLabelFrom
	diSecLabelTo
	diSecDeltaCounts
	diSecDeltaArcs
)

// diSnapshotName is the canonical file name of the directed snapshot
// inside its data directory.
const diSnapshotName = "directed.qbss"

// DiExists reports whether dir already holds a directed store.
func DiExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, diSnapshotName))
	return err == nil
}

// CreateDi initialises dir as the durable home of a directed index: the
// frozen state is written atomically as one v4 snapshot. dir must not
// already contain a directed store.
func CreateDi(dir string, ps dcore.PersistentState) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if DiExists(dir) {
		return fmt.Errorf("store: %s already contains a directed store", dir)
	}
	tmp := filepath.Join(dir, diSnapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func() {
		_ = f.Close()
		os.Remove(tmp)
	}
	if err := encodeDiSnapshot(f, ps); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, diSnapshotName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// OpenDi recovers the directed index persisted in dir: the snapshot is
// validated and adopted zero-copy (labels, σ, the dual CSR and Δ are
// typed views into one arena), and only the derived meta state (APSP,
// O(|R|³)) is recomputed. useMMap maps the file read-only instead of
// reading it (the mapping lives until process exit).
func OpenDi(dir string, useMMap bool) (*dcore.Index, error) {
	ar, err := openArena(filepath.Join(dir, diSnapshotName), useMMap)
	if err != nil {
		return nil, err
	}
	ix, err := decodeDiSnapshot(ar.data)
	if err != nil {
		return nil, fmt.Errorf("store: directed snapshot %s: %w", diSnapshotName, err)
	}
	return ix, nil
}

// encodeDiSnapshot writes the v4 directed image: payloads first
// (streamed, CRCed), then the header and section table patched in at
// offset 0.
func encodeDiSnapshot(f *os.File, ps dcore.PersistentState) error {
	outOff, out, inOff, in := ps.Graph.CSR()
	n := ps.Graph.NumVertices()
	R := len(ps.Landmarks)

	counts := make([]int32, len(ps.Delta))
	var totalDelta int64
	for k, d := range ps.Delta {
		counts[k] = int32(len(d))
		totalDelta += int64(len(d))
	}
	deltaFlat := make([]int32, 0, 2*totalDelta)
	for _, d := range ps.Delta {
		for _, a := range d {
			deltaFlat = append(deltaFlat, a.From, a.To)
		}
	}

	if _, err := f.Seek(diSnapTableEnd, 0); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)

	type entry struct {
		kind uint32
		off  int64
		len  int64
		crc  uint32
	}
	entries := make([]entry, 0, diSnapNumSections)
	pos := int64(diSnapTableEnd)
	var pad [8]byte
	section := func(kind uint32, write func(sw *sectionWriter) error) error {
		if rem := pos % 8; rem != 0 {
			if _, err := bw.Write(pad[:8-rem]); err != nil {
				return err
			}
			pos += 8 - rem
		}
		sw := &sectionWriter{w: bw}
		if err := write(sw); err != nil {
			return err
		}
		entries = append(entries, entry{kind: kind, off: pos, len: sw.n, crc: sw.crc})
		pos += sw.n
		return nil
	}

	err := section(diSecOutOffsets, func(sw *sectionWriter) error { return sw.i64s(outOff) })
	if err == nil {
		err = section(diSecOutAdj, func(sw *sectionWriter) error { return sw.i32s(out) })
	}
	if err == nil {
		err = section(diSecInOffsets, func(sw *sectionWriter) error { return sw.i64s(inOff) })
	}
	if err == nil {
		err = section(diSecInAdj, func(sw *sectionWriter) error { return sw.i32s(in) })
	}
	if err == nil {
		err = section(diSecLandmarks, func(sw *sectionWriter) error { return sw.i32s(ps.Landmarks) })
	}
	if err == nil {
		err = section(diSecSigma, func(sw *sectionWriter) error { return sw.bytes(ps.Sigma) })
	}
	if err == nil {
		err = section(diSecLabelFrom, func(sw *sectionWriter) error { return sw.bytes(ps.LabelFrom) })
	}
	if err == nil {
		err = section(diSecLabelTo, func(sw *sectionWriter) error { return sw.bytes(ps.LabelTo) })
	}
	if err == nil {
		err = section(diSecDeltaCounts, func(sw *sectionWriter) error { return sw.i32s(counts) })
	}
	if err == nil {
		err = section(diSecDeltaArcs, func(sw *sectionWriter) error { return sw.i32s(deltaFlat) })
	}
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// Header + section table. The v4 header CRC covers [0,40), the flags
	// word at [44,48) and the section table (the CRC field itself at
	// [40,44) is excluded).
	hdr := make([]byte, diSnapTableEnd)
	copy(hdr, diSnapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], diSnapVersion)
	binary.LittleEndian.PutUint64(hdr[8:], 0) // epoch: directed stores are immutable
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(ps.Graph.NumArcs()))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(R))
	binary.LittleEndian.PutUint32(hdr[36:], diSnapNumSections)
	binary.LittleEndian.PutUint32(hdr[44:], flagDirected)
	for i, e := range entries {
		base := snapHeaderSize + i*snapSectionSize
		binary.LittleEndian.PutUint32(hdr[base:], e.kind)
		binary.LittleEndian.PutUint64(hdr[base+8:], uint64(e.off))
		binary.LittleEndian.PutUint64(hdr[base+16:], uint64(e.len))
		binary.LittleEndian.PutUint32(hdr[base+24:], e.crc)
	}
	crc := crc32.Checksum(hdr[:40], crcTable)
	crc = crc32.Update(crc, crcTable, hdr[44:48])
	crc = crc32.Update(crc, crcTable, hdr[snapHeaderSize:])
	binary.LittleEndian.PutUint32(hdr[40:], crc)
	_, err = f.WriteAt(hdr, 0)
	return err
}

// decodeDiSnapshot validates a v4 directed image and assembles the
// index over typed views into data.
func decodeDiSnapshot(data []byte) (*dcore.Index, error) {
	if len(data) < diSnapTableEnd {
		return nil, fmt.Errorf("file too small (%d bytes)", len(data))
	}
	if string(data[:4]) != diSnapMagic {
		if string(data[:4]) == snapMagic {
			return nil, fmt.Errorf("undirected v3 snapshot (open it with OpenStore)")
		}
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != diSnapVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d", v)
	}
	n64 := binary.LittleEndian.Uint64(data[16:])
	arcs64 := binary.LittleEndian.Uint64(data[24:])
	R := int(binary.LittleEndian.Uint32(data[32:]))
	if ns := binary.LittleEndian.Uint32(data[36:]); ns != diSnapNumSections {
		return nil, fmt.Errorf("unexpected section count %d", ns)
	}
	flags := binary.LittleEndian.Uint32(data[44:])
	if flags&flagDirected == 0 {
		return nil, fmt.Errorf("v4 snapshot without the directed flag")
	}
	wantCRC := binary.LittleEndian.Uint32(data[40:])
	crc := crc32.Checksum(data[:40], crcTable)
	crc = crc32.Update(crc, crcTable, data[44:48])
	crc = crc32.Update(crc, crcTable, data[snapHeaderSize:diSnapTableEnd])
	if crc != wantCRC {
		return nil, fmt.Errorf("header checksum mismatch")
	}
	const maxVertices = 1 << 31
	if n64 >= maxVertices || arcs64 >= 1<<33 {
		return nil, fmt.Errorf("implausible header (n=%d arcs=%d)", n64, arcs64)
	}
	n, arcs := int(n64), int64(arcs64)
	if R < 0 || R > 254 {
		return nil, fmt.Errorf("landmark count %d out of range", R)
	}

	sections := make([][]byte, diSnapNumSections)
	secCRCs := make([]uint32, diSnapNumSections)
	for i := 0; i < diSnapNumSections; i++ {
		base := snapHeaderSize + i*snapSectionSize
		kind := binary.LittleEndian.Uint32(data[base:])
		off := binary.LittleEndian.Uint64(data[base+8:])
		length := binary.LittleEndian.Uint64(data[base+16:])
		secCRCs[i] = binary.LittleEndian.Uint32(data[base+24:])
		if kind != uint32(i+1) {
			return nil, fmt.Errorf("section %d has kind %d, want %d", i, kind, i+1)
		}
		if off%8 != 0 || off < diSnapTableEnd || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("section %d geometry out of bounds (off=%d len=%d)", i, off, length)
		}
		sections[i] = data[off : off+length]
	}
	if err := parallelErr(diSnapNumSections, func(i int) error {
		if crc32.Checksum(sections[i], crcTable) != secCRCs[i] {
			return fmt.Errorf("section %d checksum mismatch", i)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	expect := func(kind int, want int64) ([]byte, error) {
		sec := sections[kind-1]
		if int64(len(sec)) != want {
			return nil, fmt.Errorf("section %d has %d bytes, want %d", kind-1, len(sec), want)
		}
		return sec, nil
	}

	outOffSec, err := expect(diSecOutOffsets, int64(n+1)*8)
	if err != nil {
		return nil, err
	}
	outAdjSec, err := expect(diSecOutAdj, arcs*4)
	if err != nil {
		return nil, err
	}
	inOffSec, err := expect(diSecInOffsets, int64(n+1)*8)
	if err != nil {
		return nil, err
	}
	inAdjSec, err := expect(diSecInAdj, arcs*4)
	if err != nil {
		return nil, err
	}
	landSec, err := expect(diSecLandmarks, int64(R)*4)
	if err != nil {
		return nil, err
	}
	sigma, err := expect(diSecSigma, int64(R)*int64(R))
	if err != nil {
		return nil, err
	}
	labFromSec, err := expect(diSecLabelFrom, int64(n)*int64(R))
	if err != nil {
		return nil, err
	}
	labToSec, err := expect(diSecLabelTo, int64(n)*int64(R))
	if err != nil {
		return nil, err
	}

	g, err := graph.DiFromCSR(viewI64(outOffSec), viewI32(outAdjSec), viewI64(inOffSec), viewI32(inAdjSec))
	if err != nil {
		return nil, err
	}
	landmarks := viewI32(landSec)

	// σ invariants: empty diagonal, no zero-weight meta-arcs (directed σ
	// is not symmetric). The count of present entries fixes numMeta.
	numMeta := 0
	for a := 0; a < R; a++ {
		for b := 0; b < R; b++ {
			s := sigma[a*R+b]
			if (a == b && s != dcore.NoEntry) || (s != dcore.NoEntry && s == 0) {
				return nil, fmt.Errorf("corrupt sigma matrix at (%d,%d)", a, b)
			}
			if a != b && s != dcore.NoEntry {
				numMeta++
			}
		}
	}

	countSec, err := expect(diSecDeltaCounts, int64(numMeta)*4)
	if err != nil {
		return nil, err
	}
	counts := viewI32(countSec)
	var totalDelta int64
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("negative delta count")
		}
		totalDelta += int64(c)
	}
	arcSec, err := expect(diSecDeltaArcs, totalDelta*8)
	if err != nil {
		return nil, err
	}
	allArcs := viewArcs(arcSec)
	const arcChunk = 1 << 20
	if err := parallelErr((len(allArcs)+arcChunk-1)/arcChunk, func(c int) error {
		for _, a := range allArcs[c*arcChunk : min(len(allArcs), (c+1)*arcChunk)] {
			if a.From < 0 || int(a.From) >= n || a.To < 0 || int(a.To) >= n || a.From == a.To {
				return fmt.Errorf("delta arc %d->%d invalid for %d vertices", a.From, a.To, n)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	delta := make([][]graph.Arc, numMeta)
	at := 0
	for k, c := range counts {
		delta[k] = allArcs[at : at+int(c) : at+int(c)]
		at += int(c)
	}

	// Label invariants: landmarks carry no entries (neither labelling
	// writes a landmark row), non-landmark entries are depths in
	// [1, 254]. Parallel over vertex chunks; isLand is a local bitmap so
	// the scan stays O(1) per byte.
	isLand := make([]bool, n)
	for _, r := range landmarks {
		if r < 0 || int(r) >= n {
			return nil, fmt.Errorf("landmark %d out of range", r)
		}
		isLand[r] = true
	}
	labelFrom, labelTo := labFromSec, labToSec
	const vertexChunk = 1 << 16
	if err := parallelErr((n+vertexChunk-1)/vertexChunk, func(c int) error {
		lo, hi := c*vertexChunk, min(n, (c+1)*vertexChunk)
		for v := lo; v < hi; v++ {
			row := v * R
			for i := 0; i < R; i++ {
				lf, lt := labelFrom[row+i], labelTo[row+i]
				if isLand[v] {
					if lf != dcore.NoEntry || lt != dcore.NoEntry {
						return fmt.Errorf("landmark vertex %d carries a label entry", v)
					}
					continue
				}
				if lf != dcore.NoEntry && lf == 0 {
					return fmt.Errorf("zero labelFrom depth at vertex %d", v)
				}
				if lt != dcore.NoEntry && lt == 0 {
					return fmt.Errorf("zero labelTo depth at vertex %d", v)
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	ix, err := dcore.Restore(g, landmarks, labelFrom, labelTo, sigma, delta)
	if err != nil {
		return nil, err
	}
	return ix, nil
}
