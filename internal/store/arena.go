package store

import (
	"encoding/binary"
	"os"
	"unsafe"

	"qbs/internal/graph"
)

// The snapshot arena: the whole file as one byte slice, either heap
// (single read) or a read-only mmap, from which all bulk arrays are
// sliced as typed views without element-wise decoding.

// hostLittleEndian reports whether typed views can alias the arena
// directly. On a big-endian host every view falls back to a decode copy.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// arena is the loaded snapshot backing store. When mmapped it stays
// mapped for the life of the process: index snapshots adopt views into
// it with no lifetime tracking, so unmapping would be a use-after-free.
type arena struct {
	data    []byte
	mmapped bool
}

// openArena loads path into an arena. useMMap requests a read-only
// mapping where the platform supports it; otherwise (and on any mmap
// failure) the file is read into memory in one call.
func openArena(path string, useMMap bool) (*arena, error) {
	if useMMap {
		if data, ok := mmapFile(path); ok {
			return &arena{data: data, mmapped: true}, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &arena{data: data}, nil
}

// aligned4 reports whether b starts on a 4-byte boundary (mmap regions
// and Go heap allocations both do; this guards arbitrary sub-slices).
func aligned4(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%4 == 0
}

func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// viewI32 returns b as []int32 — aliasing b on aligned little-endian
// hosts, decoding a copy otherwise. len(b) must be a multiple of 4.
func viewI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && aligned4(b) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// viewI64 is viewI32 for []int64; len(b) must be a multiple of 8.
func viewI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && aligned8(b) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// unsafeBytesI32 reinterprets vs as raw bytes for encoding (only valid
// on little-endian hosts, where the in-memory layout is the file
// layout).
func unsafeBytesI32(vs []int32) []byte {
	if len(vs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*4)
}

// unsafeBytesI64 is unsafeBytesI32 for []int64.
func unsafeBytesI64(vs []int64) []byte {
	if len(vs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*8)
}

// viewArcs returns b as []graph.Arc (two i32 per arc, From then To);
// len(b) must be a multiple of 8. graph.Arc is a pair of int32 fields,
// so its memory layout matches the on-disk record exactly.
func viewArcs(b []byte) []graph.Arc {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && aligned4(b) {
		return unsafe.Slice((*graph.Arc)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]graph.Arc, len(b)/8)
	for i := range out {
		out[i].From = int32(binary.LittleEndian.Uint32(b[i*8:]))
		out[i].To = int32(binary.LittleEndian.Uint32(b[i*8+4:]))
	}
	return out
}

// viewEdges returns b as []graph.Edge (two i32 per edge, U then W);
// len(b) must be a multiple of 8. graph.Edge is a pair of int32 fields,
// so its memory layout matches the on-disk record exactly.
func viewEdges(b []byte) []graph.Edge {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && aligned4(b) {
		return unsafe.Slice((*graph.Edge)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]graph.Edge, len(b)/8)
	for i := range out {
		out[i].U = int32(binary.LittleEndian.Uint32(b[i*8:]))
		out[i].W = int32(binary.LittleEndian.Uint32(b[i*8+4:]))
	}
	return out
}
