package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"qbs/internal/graph"
)

// Corrupt-input coverage for both decoders: truncations, flipped bits
// and bad CRCs must come back as errors (or, for bytes outside any
// checksummed region, as a load equal to the pristine one) — never as a
// panic or an attacker-sized allocation.

// pristineSnapshot serialises a small index and returns the image.
func pristineSnapshot(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	d := newDynamic(t, graph.BarabasiAlbert(48, 2, 3), 5)
	name, err := writeSnapshotFile(dir, d.Persistent())
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func FuzzSnapshotDecode(f *testing.F) {
	data := pristineSnapshot(f)
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	long := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(long[16:], 1<<40) // absurd vertex count
	f.Add(long)
	f.Fuzz(func(t *testing.T, b []byte) {
		ls, err := decodeSnapshot(b)
		if err != nil {
			return
		}
		// Whatever was accepted must at least be self-consistent enough to
		// restore (the decoder validates exactly what Restore relies on).
		if ls.g.NumVertices() < 0 || len(ls.labels) != len(ls.landmarks) {
			t.Fatalf("accepted inconsistent snapshot")
		}
	})
}

func FuzzWALScan(f *testing.F) {
	dir := f.TempDir()
	w, err := newWALWriter(dir, 1, 0, 1, nil)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.append(walRecord{epoch: uint64(i + 1), op: recInsert, u: graph.V(i), w: graph.V(i + 1)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, segmentFileName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(walMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		p := filepath.Join(t.TempDir(), segmentFileName(1))
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := scanSegment(p, 1, func(rec walRecord) error { return nil })
		if err != nil {
			t.Fatalf("scanSegment returned I/O error on in-memory bytes: %v", err)
		}
		if res.lastGood > int64(len(b)) {
			t.Fatalf("lastGood %d beyond file size %d", res.lastGood, len(b))
		}
		if !res.torn && !res.badHeader && (res.lastGood-walHeaderSize)%walRecordSize != 0 {
			t.Fatalf("clean scan ended off a record boundary")
		}
	})
}

// TestSnapshotBitFlips flips every byte of a pristine snapshot in turn.
// Each flip must either be rejected or (padding bytes, which no
// checksum covers and no decoder reads) load to the identical state.
func TestSnapshotBitFlips(t *testing.T) {
	data := pristineSnapshot(t)
	orig, err := decodeSnapshot(append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for i := 0; i < len(data); i += stride {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		ls, err := decodeSnapshot(mut)
		if err != nil {
			continue
		}
		// Accepted: must be indistinguishable from the original.
		if ls.epoch != orig.epoch || ls.g.NumVertices() != orig.g.NumVertices() ||
			ls.g.NumArcs() != orig.g.NumArcs() || len(ls.delta) != len(orig.delta) {
			t.Fatalf("byte %d: corrupted snapshot accepted with different state", i)
		}
		for r := range orig.labels {
			if !slicesEqual(orig.labels[r], ls.labels[r]) || !slicesEqual(orig.dists[r], ls.dists[r]) {
				t.Fatalf("byte %d: corrupted snapshot accepted with different columns", i)
			}
		}
	}
}

// TestSnapshotTruncations truncates a pristine snapshot at every length
// (sampled): none may decode successfully, none may panic.
func TestSnapshotTruncations(t *testing.T) {
	data := pristineSnapshot(t)
	stride := 1
	if testing.Short() {
		stride = 13
	}
	for cut := 0; cut < len(data); cut += stride {
		if _, err := decodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", cut, len(data))
		}
	}
}

// TestWALBitFlips flips each byte of a valid segment; the scan must
// never panic and must surface strictly fewer (or differently-valued,
// never out-of-frame) records.
func TestWALBitFlips(t *testing.T) {
	dir := t.TempDir()
	w, err := newWALWriter(dir, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	const numRecs = 8
	for i := 0; i < numRecs; i++ {
		if err := w.append(walRecord{epoch: uint64(i + 1), op: recInsert, u: graph.V(i), w: graph.V(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, segmentFileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x01
		p := filepath.Join(t.TempDir(), segmentFileName(1))
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := scanSegment(p, 1, func(walRecord) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if i < walHeaderSize {
			if !res.badHeader {
				t.Fatalf("byte %d: header flip not detected", i)
			}
			continue
		}
		// A flipped record byte must kill that record (CRC) and stop the
		// scan there; earlier records still parse.
		rec := (i - walHeaderSize) / walRecordSize
		if res.records != rec || !res.torn {
			t.Fatalf("byte %d: scan saw %d records (torn=%v), want %d", i, res.records, res.torn, rec)
		}
	}
}
