package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"qbs/internal/graph"
	"qbs/internal/obs"
)

// Write-ahead log: CRC-framed, epoch-stamped records in rotating
// segments. The writer is single-threaded by construction (the dynamic
// index serialises epoch advances under its writer lock; the store adds
// its own mutex for rotation/pruning from checkpoints).

const (
	walMagic      = "QBSW"
	walVersion    = 1
	walHeaderSize = 16 // magic + u32 version + u64 seq
	walPayload    = 17 // u64 epoch + u8 op + i32 u + i32 w
	walRecordSize = 8 + walPayload

	recInsert  = 1
	recDelete  = 2
	recCompact = 3
)

// walRecord is one logged epoch advance.
type walRecord struct {
	epoch uint64
	op    uint8
	u, w  graph.V
}

func segmentFileName(seq uint64) string {
	return fmt.Sprintf("seg-%016d.wal", seq)
}

func segmentSeq(name string) (uint64, bool) {
	var s uint64
	if _, err := fmt.Sscanf(name, "seg-%d.wal", &s); err != nil {
		return 0, false
	}
	return s, name == segmentFileName(s)
}

// segmentInfo is the pruning bookkeeping for one closed segment.
type segmentInfo struct {
	seq        uint64
	lastEpoch  uint64 // highest epoch in the segment; 0 when empty
	hasRecords bool
}

// walWriter appends records to the current segment, rotating at a size
// threshold and fsyncing per the batching policy.
type walWriter struct {
	dir       string
	f         *os.File
	seq       uint64
	size      int64
	segBytes  int64
	syncEvery int // fsync after this many unsynced appends; <=1 = every append
	unsynced  int
	cur       segmentInfo
	closed    []segmentInfo
	buf       [walRecordSize]byte
}

// newWALWriter starts a fresh segment with the given sequence number.
// prior lists already-existing closed segments (from an Open scan) so a
// later checkpoint can prune them.
func newWALWriter(dir string, seq uint64, segBytes int64, syncEvery int, prior []segmentInfo) (*walWriter, error) {
	if segBytes <= 0 {
		segBytes = 64 << 20
	}
	w := &walWriter{
		dir:       dir,
		seq:       seq - 1, // openSegment increments
		segBytes:  segBytes,
		syncEvery: syncEvery,
		closed:    append([]segmentInfo(nil), prior...),
	}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *walWriter) openSegment() error {
	w.seq++
	f, err := os.OpenFile(filepath.Join(w.dir, segmentFileName(w.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:], w.seq)
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	w.f = f
	w.size = walHeaderSize
	w.cur = segmentInfo{seq: w.seq}
	return syncDir(w.dir)
}

// append frames, writes and (per policy) fsyncs one record. The write
// and the fsync are timed into separate histograms: append latency is
// what every logged update pays, fsync latency only the SyncEvery
// boundaries.
func (w *walWriter) append(rec walRecord) error {
	if w.size+walRecordSize > w.segBytes && w.cur.hasRecords {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	start := time.Now()
	b := w.buf[:]
	binary.LittleEndian.PutUint32(b[0:], walPayload)
	binary.LittleEndian.PutUint64(b[8:], rec.epoch)
	b[16] = rec.op
	binary.LittleEndian.PutUint32(b[17:], uint32(rec.u))
	binary.LittleEndian.PutUint32(b[21:], uint32(rec.w))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(b[8:], crcTable))
	if _, err := w.f.Write(b); err != nil {
		return err
	}
	mWALAppendNs.Observe(time.Since(start))
	mWALRecords.Inc()
	w.size += walRecordSize
	w.cur.lastEpoch = rec.epoch
	w.cur.hasRecords = true
	w.unsynced++
	if w.syncEvery <= 1 || w.unsynced >= w.syncEvery {
		n := w.unsynced
		w.unsynced = 0
		if err := w.fsync(n); err != nil {
			return err
		}
	}
	return nil
}

// sync flushes any batched appends to disk.
func (w *walWriter) sync() error {
	if w.unsynced == 0 {
		return nil
	}
	n := w.unsynced
	w.unsynced = 0
	return w.fsync(n)
}

// fsync durably flushes records batched appends. Each flush is a root
// span so slow fsync batches (the classic durability stall) show up in
// the trace store with the batch size attached; fast flushes are
// head-sample-dropped without allocating.
func (w *walWriter) fsync(records int) error {
	tb := obs.DefaultTracer.Begin("wal.fsync", "", 0, false)
	tb.Root().SetInt("records", int64(records))
	start := time.Now()
	err := w.f.Sync()
	mWALFsyncNs.Observe(time.Since(start))
	if err != nil {
		tb.MarkError()
		evFsyncError.Emit(obs.Int("records", int64(records)), obs.Str("error", err.Error()))
	}
	obs.DefaultTracer.Finish(tb)
	return err
}

// rotate closes the current segment and opens the next one.
func (w *walWriter) rotate() error {
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.closed = append(w.closed, w.cur)
	return w.openSegment()
}

// prune deletes closed segments whose every record is covered by a
// snapshot at or beyond upto (empty segments are always prunable).
func (w *walWriter) prune(upto uint64) error {
	kept := w.closed[:0]
	for _, seg := range w.closed {
		if !seg.hasRecords || seg.lastEpoch <= upto {
			if err := os.Remove(filepath.Join(w.dir, segmentFileName(seg.seq))); err != nil && !os.IsNotExist(err) {
				return err
			}
			continue
		}
		kept = append(kept, seg)
	}
	w.closed = kept
	return syncDir(w.dir)
}

// close flushes and closes the current segment.
func (w *walWriter) close() error {
	if err := w.sync(); err != nil {
		// The sync failure is the primary error; the close is
		// best-effort teardown of a segment we can no longer trust.
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}

// listSegments returns the WAL segments present in dir, ordered by
// sequence number.
type segmentFile struct {
	path string
	seq  uint64
}

func listSegments(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []segmentFile
	for _, e := range entries {
		if seq, ok := segmentSeq(e.Name()); ok {
			segs = append(segs, segmentFile{path: filepath.Join(dir, e.Name()), seq: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// scanResult reports how a segment scan ended.
type scanResult struct {
	lastGood  int64  // file offset after the last valid record
	lastEpoch uint64 // highest epoch seen
	records   int
	torn      bool // scan stopped before EOF (partial/corrupt tail)
	badHeader bool // the segment header itself was invalid
}

// scanSegment streams the records of one segment through fn, stopping
// at the first framing or checksum violation. It never trusts a length
// field: records are fixed-size under version 1, so a corrupt frame
// cannot force a large allocation.
func scanSegment(path string, wantSeq uint64, fn func(walRecord) error) (scanResult, error) {
	var res scanResult
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()

	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		res.badHeader, res.torn = true, true
		return res, nil
	}
	if string(hdr[:4]) != walMagic ||
		binary.LittleEndian.Uint32(hdr[4:]) != walVersion ||
		binary.LittleEndian.Uint64(hdr[8:]) != wantSeq {
		res.badHeader, res.torn = true, true
		return res, nil
	}
	res.lastGood = walHeaderSize

	var rec [walRecordSize]byte
	for {
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			if err != io.EOF {
				res.torn = true // partial record
			}
			return res, nil
		}
		r, ok := decodeWALFrame(rec[:])
		if !ok {
			res.torn = true
			return res, nil
		}
		if err := fn(r); err != nil {
			return res, err
		}
		res.lastGood += walRecordSize
		res.lastEpoch = r.epoch
		res.records++
	}
}
