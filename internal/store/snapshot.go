package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"qbs/internal/core"
	"qbs/internal/dynamic"
	"qbs/internal/graph"
)

// Snapshot format v3. See doc.go for the layout. Encoding streams each
// section through an incremental CRC so even large indexes serialise
// without a second in-memory copy; decoding validates structure (magic,
// counts, section geometry, checksums, graph well-formedness, σ
// symmetry, label/distance consistency) and then hands out typed views
// into the arena.

const (
	snapMagic   = "QBS3"
	snapVersion = 3

	snapHeaderSize  = 48
	snapSectionSize = 32
	snapNumSections = 8
	snapTableEnd    = snapHeaderSize + snapNumSections*snapSectionSize
)

// Section kinds, in their fixed file order.
const (
	secGraphOffsets = 1 + iota
	secGraphAdj
	secLandmarks
	secSigma
	secLabels
	secDists
	secDeltaCounts
	secDeltaEdges
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// snapshotFileName is the canonical name of the snapshot at an epoch.
func snapshotFileName(epoch uint64) string {
	return fmt.Sprintf("snapshot-%016d.qbss", epoch)
}

// snapshotEpoch parses an epoch back out of a snapshot file name.
func snapshotEpoch(name string) (uint64, bool) {
	var e uint64
	if _, err := fmt.Sscanf(name, "snapshot-%d.qbss", &e); err != nil {
		return 0, false
	}
	return e, name == snapshotFileName(e)
}

// sectionWriter streams one section: it counts bytes, accumulates the
// CRC, and buffers writes through the shared bufio.Writer.
type sectionWriter struct {
	w   *bufio.Writer
	n   int64
	crc uint32
	buf [8]byte
}

func (sw *sectionWriter) bytes(p []byte) error {
	sw.crc = crc32.Update(sw.crc, crcTable, p)
	sw.n += int64(len(p))
	_, err := sw.w.Write(p)
	return err
}

func (sw *sectionWriter) u32(v uint32) error {
	binary.LittleEndian.PutUint32(sw.buf[:4], v)
	return sw.bytes(sw.buf[:4])
}

func (sw *sectionWriter) i32s(vs []int32) error {
	if hostLittleEndian {
		return sw.bytes(unsafeBytesI32(vs))
	}
	for _, v := range vs {
		if err := sw.u32(uint32(v)); err != nil {
			return err
		}
	}
	return nil
}

func (sw *sectionWriter) i64s(vs []int64) error {
	if hostLittleEndian {
		return sw.bytes(unsafeBytesI64(vs))
	}
	for _, v := range vs {
		binary.LittleEndian.PutUint64(sw.buf[:8], uint64(v))
		if err := sw.bytes(sw.buf[:8]); err != nil {
			return err
		}
	}
	return nil
}

// writeSnapshotFile serialises ps to path atomically: a temp file in the
// same directory is written, fsynced and renamed over the target, then
// the directory is fsynced so the rename itself is durable.
func writeSnapshotFile(dir string, ps dynamic.PersistentState) (string, error) {
	name := snapshotFileName(ps.Epoch)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	cleanup := func() {
		_ = f.Close()
		os.Remove(tmp)
	}
	if err := encodeSnapshot(f, ps); err != nil {
		cleanup()
		return "", err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return name, syncDir(dir)
}

// encodeSnapshot writes the v3 image: payloads first (streamed, CRCed),
// then the header and section table patched in at offset 0.
func encodeSnapshot(f *os.File, ps dynamic.PersistentState) error {
	offsets, adj := ps.Graph.CSR()
	n := ps.Graph.NumVertices()
	R := len(ps.Landmarks)

	counts := make([]int32, len(ps.Delta))
	var totalDelta int64
	for k, d := range ps.Delta {
		counts[k] = int32(len(d))
		totalDelta += int64(len(d))
	}
	deltaFlat := make([]int32, 0, 2*totalDelta)
	for _, d := range ps.Delta {
		for _, e := range d {
			deltaFlat = append(deltaFlat, e.U, e.W)
		}
	}

	if _, err := f.Seek(snapTableEnd, 0); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)

	type entry struct {
		kind uint32
		off  int64
		len  int64
		crc  uint32
	}
	entries := make([]entry, 0, snapNumSections)
	pos := int64(snapTableEnd)
	var pad [8]byte
	section := func(kind uint32, write func(sw *sectionWriter) error) error {
		if rem := pos % 8; rem != 0 {
			if _, err := bw.Write(pad[:8-rem]); err != nil {
				return err
			}
			pos += 8 - rem
		}
		sw := &sectionWriter{w: bw}
		if err := write(sw); err != nil {
			return err
		}
		entries = append(entries, entry{kind: kind, off: pos, len: sw.n, crc: sw.crc})
		pos += sw.n
		return nil
	}

	err := section(secGraphOffsets, func(sw *sectionWriter) error { return sw.i64s(offsets) })
	if err == nil {
		err = section(secGraphAdj, func(sw *sectionWriter) error { return sw.i32s(adj) })
	}
	if err == nil {
		err = section(secLandmarks, func(sw *sectionWriter) error { return sw.i32s(ps.Landmarks) })
	}
	if err == nil {
		err = section(secSigma, func(sw *sectionWriter) error { return sw.bytes(ps.Sigma) })
	}
	if err == nil {
		err = section(secLabels, func(sw *sectionWriter) error {
			for _, col := range ps.Labels {
				if e := sw.bytes(col); e != nil {
					return e
				}
			}
			return nil
		})
	}
	if err == nil {
		err = section(secDists, func(sw *sectionWriter) error {
			for _, col := range ps.Dists {
				if e := sw.i32s(col); e != nil {
					return e
				}
			}
			return nil
		})
	}
	if err == nil {
		err = section(secDeltaCounts, func(sw *sectionWriter) error { return sw.i32s(counts) })
	}
	if err == nil {
		err = section(secDeltaEdges, func(sw *sectionWriter) error { return sw.i32s(deltaFlat) })
	}
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// Header + section table, with the header CRC over both (CRC field
	// excluded by covering [0,40) then the table).
	hdr := make([]byte, snapTableEnd)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], snapVersion)
	binary.LittleEndian.PutUint64(hdr[8:], ps.Epoch)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(ps.Graph.NumArcs()))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(R))
	binary.LittleEndian.PutUint32(hdr[36:], snapNumSections)
	for i, e := range entries {
		base := snapHeaderSize + i*snapSectionSize
		binary.LittleEndian.PutUint32(hdr[base:], e.kind)
		binary.LittleEndian.PutUint64(hdr[base+8:], uint64(e.off))
		binary.LittleEndian.PutUint64(hdr[base+16:], uint64(e.len))
		binary.LittleEndian.PutUint32(hdr[base+24:], e.crc)
	}
	crc := crc32.Checksum(hdr[:40], crcTable)
	crc = crc32.Update(crc, crcTable, hdr[snapHeaderSize:])
	binary.LittleEndian.PutUint32(hdr[40:], crc)
	_, err = f.WriteAt(hdr, 0)
	return err
}

// loadedSnapshot is a decoded snapshot: typed views plus the arena that
// backs them (kept referenced so a GC cannot reclaim it from under the
// views).
type loadedSnapshot struct {
	epoch     uint64
	g         *graph.Graph
	landmarks []graph.V
	sigma     []uint8
	labels    [][]uint8
	dists     [][]int32
	delta     [][]graph.Edge
	arena     *arena
}

func decodeSnapshot(data []byte) (*loadedSnapshot, error) {
	if len(data) < snapTableEnd {
		return nil, fmt.Errorf("file too small (%d bytes)", len(data))
	}
	if string(data[:4]) != snapMagic {
		if string(data[:4]) == diSnapMagic {
			return nil, fmt.Errorf("directed v4 snapshot (open it with OpenDiStore)")
		}
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != snapVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d", v)
	}
	epoch := binary.LittleEndian.Uint64(data[8:])
	n64 := binary.LittleEndian.Uint64(data[16:])
	arcs64 := binary.LittleEndian.Uint64(data[24:])
	R := int(binary.LittleEndian.Uint32(data[32:]))
	if ns := binary.LittleEndian.Uint32(data[36:]); ns != snapNumSections {
		return nil, fmt.Errorf("unexpected section count %d", ns)
	}
	wantCRC := binary.LittleEndian.Uint32(data[40:])
	crc := crc32.Checksum(data[:40], crcTable)
	crc = crc32.Update(crc, crcTable, data[snapHeaderSize:snapTableEnd])
	if crc != wantCRC {
		return nil, fmt.Errorf("header checksum mismatch")
	}
	const maxVertices = 1 << 31
	if n64 >= maxVertices || arcs64 >= 1<<33 || arcs64%2 != 0 {
		return nil, fmt.Errorf("implausible header (n=%d arcs=%d)", n64, arcs64)
	}
	n, arcs := int(n64), int64(arcs64)
	if R < 0 || R > 254 {
		return nil, fmt.Errorf("landmark count %d out of range", R)
	}

	// Section table: fixed kind order, in-bounds aligned geometry, then
	// CRCs verified in parallel (the big sections dominate load time).
	sections := make([][]byte, snapNumSections)
	secCRCs := make([]uint32, snapNumSections)
	for i := 0; i < snapNumSections; i++ {
		base := snapHeaderSize + i*snapSectionSize
		kind := binary.LittleEndian.Uint32(data[base:])
		off := binary.LittleEndian.Uint64(data[base+8:])
		length := binary.LittleEndian.Uint64(data[base+16:])
		secCRCs[i] = binary.LittleEndian.Uint32(data[base+24:])
		if kind != uint32(i+1) {
			return nil, fmt.Errorf("section %d has kind %d, want %d", i, kind, i+1)
		}
		if off%8 != 0 || off < snapTableEnd || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("section %d geometry out of bounds (off=%d len=%d)", i, off, length)
		}
		sections[i] = data[off : off+length]
	}
	if err := parallelErr(snapNumSections, func(i int) error {
		if crc32.Checksum(sections[i], crcTable) != secCRCs[i] {
			return fmt.Errorf("section %d checksum mismatch", i)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	expect := func(kind int, want int64) ([]byte, error) {
		sec := sections[kind-1]
		if int64(len(sec)) != want {
			return nil, fmt.Errorf("section %d has %d bytes, want %d", kind-1, len(sec), want)
		}
		return sec, nil
	}

	offSec, err := expect(secGraphOffsets, int64(n+1)*8)
	if err != nil {
		return nil, err
	}
	adjSec, err := expect(secGraphAdj, arcs*4)
	if err != nil {
		return nil, err
	}
	landSec, err := expect(secLandmarks, int64(R)*4)
	if err != nil {
		return nil, err
	}
	sigma, err := expect(secSigma, int64(R)*int64(R))
	if err != nil {
		return nil, err
	}
	labSec, err := expect(secLabels, int64(R)*int64(n))
	if err != nil {
		return nil, err
	}
	distSec, err := expect(secDists, int64(R)*int64(n)*4)
	if err != nil {
		return nil, err
	}

	g, err := graph.FromCSR(viewI64(offSec), viewI32(adjSec))
	if err != nil {
		return nil, err
	}
	landmarks := viewI32(landSec)

	// σ invariants (mirrors core's loader): symmetric, empty diagonal, no
	// zero-weight meta-edges.
	numMeta := 0
	for a := 0; a < R; a++ {
		for b := 0; b < R; b++ {
			s := sigma[a*R+b]
			if s != sigma[b*R+a] || (a == b && s != core.NoEntry) || (s != core.NoEntry && s == 0) {
				return nil, fmt.Errorf("corrupt sigma matrix at (%d,%d)", a, b)
			}
			if a < b && s != core.NoEntry {
				numMeta++
			}
		}
	}

	countSec, err := expect(secDeltaCounts, int64(numMeta)*4)
	if err != nil {
		return nil, err
	}
	counts := viewI32(countSec)
	var totalDelta int64
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("negative delta count")
		}
		totalDelta += int64(c)
	}
	edgeSec, err := expect(secDeltaEdges, totalDelta*8)
	if err != nil {
		return nil, err
	}
	allEdges := viewEdges(edgeSec)
	const edgeChunk = 1 << 20
	if err := parallelErr((len(allEdges)+edgeChunk-1)/edgeChunk, func(c int) error {
		for _, e := range allEdges[c*edgeChunk : min(len(allEdges), (c+1)*edgeChunk)] {
			if e.U < 0 || int(e.U) >= n || e.W < 0 || int(e.W) >= n || e.U > e.W {
				return fmt.Errorf("delta edge {%d,%d} invalid for %d vertices", e.U, e.W, n)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	delta := make([][]graph.Edge, numMeta)
	at := 0
	for k, c := range counts {
		delta[k] = allEdges[at : at+int(c) : at+int(c)]
		at += int(c)
	}

	// Column views plus the label/distance consistency invariant: a
	// present label equals the distance, distances are byte-representable
	// or infinite. This keeps replayed repairs (which trust dist) from
	// operating on nonsense. One worker per landmark column.
	labels := make([][]uint8, R)
	dists := make([][]int32, R)
	allDists := viewI32(distSec)
	for r := 0; r < R; r++ {
		labels[r] = labSec[r*n : (r+1)*n : (r+1)*n]
		dists[r] = allDists[r*n : (r+1)*n : (r+1)*n]
	}
	if err := parallelErr(R, func(r int) error {
		lab, dist := labels[r], dists[r]
		for v := 0; v < n; v++ {
			dv := dist[v]
			if dv != graph.InfDist && (dv < 0 || dv > core.MaxLabelDist) {
				return fmt.Errorf("column %d distance %d unrepresentable", r, dv)
			}
			if l := lab[v]; l != core.NoEntry && int32(l) != dv {
				return fmt.Errorf("column %d label/distance mismatch at vertex %d", r, v)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	return &loadedSnapshot{
		epoch:     epoch,
		g:         g,
		landmarks: landmarks,
		sigma:     sigma,
		labels:    labels,
		dists:     dists,
		delta:     delta,
	}, nil
}

// parallelErr runs fn(0..k-1) on up to GOMAXPROCS goroutines and
// returns one of the errors raised, if any. Used for the big decode
// validations; every task reads only immutable arena views.
func parallelErr(k int, fn func(i int) error) error {
	if k <= 1 {
		if k == 1 {
			return fn(0)
		}
		return nil
	}
	workers := min(k, runtime.GOMAXPROCS(0))
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= k || firstErr.Load() != nil {
					return
				}
				if err := fn(i); err != nil {
					//qbs:allow loggedpublish first-error capture, not an epoch publish
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable (best effort on platforms where directories reject Sync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
