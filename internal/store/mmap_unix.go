//go:build linux || darwin

package store

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only. The mapping is intentionally never
// unmapped: snapshot views alias it for the remaining process lifetime
// (see arena). Any failure reports !ok and the caller falls back to a
// plain read.
func mmapFile(path string) ([]byte, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil || fi.Size() == 0 || fi.Size() > int64(int(^uint(0)>>1)) {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return data, true
}
