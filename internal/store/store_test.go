package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/dynamic"
	"qbs/internal/graph"
)

// testGraph builds a small scale-free graph, the store tests' default
// substrate.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return graph.BarabasiAlbert(300, 3, 7)
}

func newDynamic(t testing.TB, g *graph.Graph, k int) *dynamic.Index {
	t.Helper()
	d, err := dynamic.New(g, g.TopDegreeVertices(k), dynamic.Options{CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// op is one recorded mutation of a test update stream.
type op struct {
	u, w   graph.V
	insert bool
}

// applyOps drives count random (but valid and deterministic) edge
// mutations against d and returns the ones that applied.
func applyOps(t testing.TB, d *dynamic.Index, count int, seed int64) []op {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := d.NumVertices()
	var applied []op
	for len(applied) < count {
		u := graph.V(rng.Intn(n))
		w := graph.V(rng.Intn(n))
		if u == w {
			continue
		}
		insert := !d.HasEdge(u, w)
		ok, err := func() (bool, error) {
			if insert {
				return d.AddEdge(u, w)
			}
			return d.RemoveEdge(u, w)
		}()
		if err != nil {
			continue // e.g. a delete that would blow the diameter bound
		}
		if ok {
			applied = append(applied, op{u, w, insert})
		}
	}
	return applied
}

// replayOps applies a recorded stream to a reference index.
func replayOps(t testing.TB, d *dynamic.Index, ops []op) {
	t.Helper()
	for _, o := range ops {
		var ok bool
		var err error
		if o.insert {
			ok, err = d.AddEdge(o.u, o.w)
		} else {
			ok, err = d.RemoveEdge(o.u, o.w)
		}
		if err != nil || !ok {
			t.Fatalf("reference replay {%d,%d} insert=%v: ok=%v err=%v", o.u, o.w, o.insert, ok, err)
		}
	}
}

// requireStateEqual asserts two persistent states are bit-identical:
// same epoch, graph, landmarks, σ, label and distance columns, and Δ.
func requireStateEqual(t testing.TB, want, got dynamic.PersistentState) {
	t.Helper()
	if want.Epoch != got.Epoch {
		t.Fatalf("epoch: want %d, got %d", want.Epoch, got.Epoch)
	}
	wo, wa := want.Graph.CSR()
	go_, ga := got.Graph.CSR()
	if !slicesEqual(wo, go_) || !slicesEqual(wa, ga) {
		t.Fatalf("graph CSR differs")
	}
	if !slicesEqual(want.Landmarks, got.Landmarks) {
		t.Fatalf("landmarks: want %v, got %v", want.Landmarks, got.Landmarks)
	}
	if !bytes.Equal(want.Sigma, got.Sigma) {
		t.Fatalf("sigma differs")
	}
	if len(want.Labels) != len(got.Labels) || len(want.Dists) != len(got.Dists) {
		t.Fatalf("column counts differ")
	}
	for r := range want.Labels {
		if !bytes.Equal(want.Labels[r], got.Labels[r]) {
			t.Fatalf("label column %d differs", r)
		}
		if !slicesEqual(want.Dists[r], got.Dists[r]) {
			t.Fatalf("dist column %d differs", r)
		}
	}
	if len(want.Delta) != len(got.Delta) {
		t.Fatalf("delta: %d vs %d meta-edges", len(want.Delta), len(got.Delta))
	}
	for k := range want.Delta {
		if len(want.Delta[k]) != len(got.Delta[k]) {
			t.Fatalf("delta %d: %d vs %d edges", k, len(want.Delta[k]), len(got.Delta[k]))
		}
		for i := range want.Delta[k] {
			if want.Delta[k][i] != got.Delta[k][i] {
				t.Fatalf("delta %d edge %d differs", k, i)
			}
		}
	}
}

func slicesEqual[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCreateOpenRoundTrip(t *testing.T) {
	for _, mm := range []bool{false, true} {
		t.Run(fmt.Sprintf("mmap=%v", mm), func(t *testing.T) {
			dir := t.TempDir()
			g := testGraph(t)
			d := newDynamic(t, g, 8)
			s, err := Create(dir, d, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ops := applyOps(t, d, 40, 11)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir, Options{MMap: mm, Dynamic: dynamic.Options{CompactFraction: -1}})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			requireStateEqual(t, d.Persistent(), s2.Index().Persistent())
			if got, want := s2.Index().Epoch(), uint64(len(ops)); got != want {
				t.Fatalf("recovered epoch %d, want %d", got, want)
			}

			// Recovered index answers correctly and accepts new writes.
			cur := s2.Index().CurrentGraph()
			for i := 0; i < 30; i++ {
				u := graph.V((i * 37) % g.NumVertices())
				v := graph.V((i * 91) % g.NumVertices())
				got := s2.Index().Query(u, v)
				want := bfs.OracleSPG(cur.Materialize(), u, v)
				if !got.Equal(want) {
					t.Fatalf("recovered SPG(%d,%d) wrong", u, v)
				}
			}
			applyOps(t, s2.Index(), 5, 13)
		})
	}
}

// TestCrashAtEveryRecordBoundary is the oracle property test: whatever
// prefix of the WAL survives a crash — any record boundary, and any
// torn byte inside a record — the recovered index is bit-identical to a
// never-crashed index that applied exactly the surviving updates.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 6)
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const numOps = 25
	ops := applyOps(t, d, numOps, 17)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segPath := filepath.Join(walDir(dir), segmentFileName(1))
	walBytes, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(walHeaderSize + numOps*walRecordSize); int64(len(walBytes)) != want {
		t.Fatalf("wal has %d bytes, want %d", len(walBytes), want)
	}

	// References: refState[k] = persistent state after applying ops[:k].
	refStates := make([]dynamic.PersistentState, numOps+1)
	ref := newDynamic(t, g, 6)
	refStates[0] = ref.Persistent()
	for k, o := range ops {
		replayOps(t, ref, []op{o})
		refStates[k+1] = ref.Persistent()
	}

	check := func(t *testing.T, cut int64, wantOps int) {
		crashDir := t.TempDir()
		copyTree(t, dir, crashDir)
		if err := os.Truncate(filepath.Join(walDir(crashDir), segmentFileName(1)), cut); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(crashDir, Options{Dynamic: dynamic.Options{CompactFraction: -1}})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		requireStateEqual(t, refStates[wantOps], s2.Index().Persistent())
	}

	// Every record boundary.
	for k := 0; k <= numOps; k++ {
		cut := int64(walHeaderSize + k*walRecordSize)
		t.Run(fmt.Sprintf("boundary-%d", k), func(t *testing.T) { check(t, cut, k) })
	}
	// Torn bytes inside records: a partial record must roll back to the
	// preceding boundary.
	for _, within := range []int64{1, 7, 8, 9, walRecordSize - 1} {
		for _, k := range []int{0, 1, numOps / 2, numOps - 1} {
			cut := int64(walHeaderSize+k*walRecordSize) + within
			t.Run(fmt.Sprintf("torn-%d+%d", k, within), func(t *testing.T) { check(t, cut, k) })
		}
	}
	// Torn mid-header: the segment is discarded entirely.
	t.Run("torn-header", func(t *testing.T) { check(t, walHeaderSize-3, 0) })
}

// TestRecoveryAfterTruncationIsRepeatable re-opens a truncated store
// twice: the first writable open truncates the torn tail, the second
// must see a clean log and identical state.
func TestRecoveryAfterTruncationIsRepeatable(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 6)
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 10, 23)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(walDir(dir), segmentFileName(1))
	fi, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := s2.Index().Persistent()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if fi2, _ := os.Stat(segPath); (fi2.Size()-walHeaderSize)%walRecordSize != 0 {
		t.Fatalf("torn tail not truncated to a record boundary: %d bytes", fi2.Size())
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	requireStateEqual(t, st2, s3.Index().Persistent())
}

func TestCheckpointPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 6)
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops1 := applyOps(t, d, 20, 31)
	e1, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if e1 != uint64(len(ops1)) {
		t.Fatalf("checkpoint epoch %d, want %d", e1, len(ops1))
	}
	// Idempotent: no new epochs, second checkpoint is a no-op.
	if e, err := s.Checkpoint(); err != nil || e != e1 {
		t.Fatalf("repeat checkpoint: epoch %d err %v", e, err)
	}

	applyOps(t, d, 15, 37)
	e2, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 5, 41)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Layout: exactly KeepSnapshots=2 snapshots (epochs e1, e2), CURRENT
	// names the newest, and the initial segment (wholly ≤ e1) is pruned.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.qbss"))
	if len(snaps) != 2 {
		t.Fatalf("kept %d snapshots %v, want 2", len(snaps), snaps)
	}
	cur, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		t.Fatal(err)
	}
	if want := snapshotFileName(e2) + "\n"; string(cur) != want {
		t.Fatalf("CURRENT = %q, want %q", cur, want)
	}
	if _, err := os.Stat(filepath.Join(walDir(dir), segmentFileName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 should have been pruned (err=%v)", err)
	}

	s2, err := Open(dir, Options{Dynamic: dynamic.Options{CompactFraction: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	requireStateEqual(t, d.Persistent(), s2.Index().Persistent())
}

// TestFallbackToOlderSnapshot corrupts the newest snapshot; recovery
// must fall back to the previous generation and replay a longer WAL
// suffix to the same final state.
func TestFallbackToOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 6)
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 10, 43)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 10, 47)
	e2, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 4, 53)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the newest snapshot's payload region.
	newest := filepath.Join(dir, snapshotFileName(e2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Dynamic: dynamic.Options{CompactFraction: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	requireStateEqual(t, d.Persistent(), s2.Index().Persistent())
}

// TestCompactionRecordReplay checkpoints nothing but logs a compaction
// epoch; recovery must replay the marker and land on the same epoch and
// state.
func TestCompactionRecordReplay(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 6)
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 8, 59)
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 8, 61)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Dynamic: dynamic.Options{CompactFraction: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	requireStateEqual(t, d.Persistent(), s2.Index().Persistent())
}

// TestConcurrentWritesDuringCheckpoint hammers the index with writers
// while checkpoints run — the -race CI coverage for the checkpoint
// path. Afterwards, a reopen must reproduce the final live state.
func TestConcurrentWritesDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 6)
	s, err := Create(dir, d, Options{SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	var wg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := d.NumVertices()
			for i := 0; i < 40; i++ {
				u := graph.V(rng.Intn(n))
				w := graph.V(rng.Intn(n))
				if u == w {
					continue
				}
				_, _ = d.ApplyEdge(u, w, !d.HasEdge(u, w))
			}
		}(int64(100 + wid))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			if _, err := s.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Dynamic: dynamic.Options{CompactFraction: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	requireStateEqual(t, d.Persistent(), s2.Index().Persistent())
}

func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 6)
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 10, 67)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	before := dirListing(t, dir)
	s2, err := Open(dir, Options{ReadOnly: true, Dynamic: dynamic.Options{CompactFraction: -1}})
	if err != nil {
		t.Fatal(err)
	}
	requireStateEqual(t, d.Persistent(), s2.Index().Persistent())
	if _, err := s2.Checkpoint(); err != ErrReadOnly {
		t.Fatalf("read-only checkpoint: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if after := dirListing(t, dir); !slicesEqual(before, after) {
		t.Fatalf("read-only open changed the data dir:\n%v\n%v", before, after)
	}
}

// TestWritableOpenExcluded: a live writable store must reject a second
// writable open (which would truncate segments the first process is
// appending to) while still admitting read-only opens.
func TestWritableOpenExcluded(t *testing.T) {
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		t.Skip("flock-based exclusion is unix-only")
	}
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 4)
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second writable open of a live store succeeded")
	}
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only open of a live store: %v", err)
	}
	_ = ro.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("writable open after close: %v", err)
	}
	_ = s2.Close()
}

// TestDamagedSnapshotRetired: after a fallback recovery, the corrupt
// newer snapshot must not count as an intact generation — a writable
// open deletes it, and a subsequent checkpoint keeps the valid fallback
// rather than retiring it in favour of garbage.
func TestDamagedSnapshotRetired(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 6)
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 8, 71)
	e1, err := s.Checkpoint() // snapshots now: 0, e1
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 8, 73)
	e2, err := s.Checkpoint() // snapshots now: e1, e2
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 4, 79)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	newest := filepath.Join(dir, snapshotFileName(e2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Dynamic: dynamic.Options{CompactFraction: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot %s not retired by writable open (err=%v)", newest, err)
	}
	requireStateEqual(t, d.Persistent(), s2.Index().Persistent())

	// Checkpoint after the fallback: the intact e1 generation must be the
	// one retained alongside the new snapshot, and recovery must still
	// work if the new snapshot is damaged too.
	applyOps(t, s2.Index(), 3, 83)
	e3, err := s2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName(e1))); err != nil {
		t.Fatalf("intact fallback snapshot %d was pruned: %v", e1, err)
	}
	live := s2.Index().Persistent()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, snapshotFileName(e3)))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName(e3)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{Dynamic: dynamic.Options{CompactFraction: -1}})
	if err != nil {
		t.Fatalf("recovery from intact fallback failed: %v", err)
	}
	defer s3.Close()
	requireStateEqual(t, live, s3.Index().Persistent())
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 4)
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	if _, err := Create(dir, newDynamic(t, g, 4), Options{}); err == nil {
		t.Fatal("second Create on the same dir succeeded")
	}
}

// dirListing returns a stable "<relpath> <size>" inventory of a tree.
func dirListing(t testing.TB, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(p string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(dir, p)
		out = append(out, fmt.Sprintf("%s %d", rel, fi.Size()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// copyTree copies a data dir (flat files + wal subdir) for
// crash-simulation tests.
func copyTree(t testing.TB, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, p)
		target := filepath.Join(dst, rel)
		if fi.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, fi.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}
