// Package store is the durability subsystem: it persists a dynamic QbS
// index to a data directory as a versioned snapshot plus a write-ahead
// log, and recovers the exact pre-crash state on open — restart costs a
// file read and a replay of the post-snapshot tail instead of minutes of
// landmark BFSes.
//
// # Data-directory layout
//
//	<dir>/
//	  CURRENT                  name of the live snapshot (atomic rename)
//	  snapshot-<epoch>.qbss    index snapshot, format v3 (newest + one prior kept)
//	  wal/
//	    seg-<seq>.wal          write-ahead log segments, monotone seq
//
// A *directed* store (CreateDi/OpenDi) is a single immutable snapshot —
// the directed index has no dynamic subsystem, hence no WAL:
//
//	<dir>/
//	  directed.qbss            directed index snapshot, format v4
//
// # Snapshot format (v3)
//
// One self-describing, checksummed file holding everything a snapshot
// epoch needs: the graph (CSR), the landmark set, the σ matrix, the
// per-landmark distance and label columns, and the Δ lists. All
// integers are little-endian.
//
//	[0,4)    magic "QBS3"
//	[4,8)    u32 version = 3
//	[8,16)   u64 epoch
//	[16,24)  u64 numVertices
//	[24,32)  u64 numArcs
//	[32,36)  u32 numLandmarks (R)
//	[36,40)  u32 numSections (= 8)
//	[40,44)  u32 headerCRC — crc32c over [0,40) and the section table
//	[44,48)  padding
//	[48,304) section table: 8 × {u32 kind, u32 _, u64 offset, u64 length,
//	         u32 crc32c, u32 _}
//	[304,…)  section payloads, each 8-byte aligned, zero padded
//
// Sections, in fixed order: graph offsets ((n+1)×i64), graph adjacency
// (arcs×i32), landmarks (R×i32), σ (R²×u8), label columns (R·n×u8,
// column-major), distance columns (R·n×i32, column-major), Δ counts
// (numMeta×u32, meta-edges in the deterministic order derived from σ)
// and Δ edges (Σcounts × {i32,i32}).
//
// The layout is chosen for zero-copy load: the whole file is read (or
// mmapped) into one arena and every bulk array — labels, distances, the
// CSR, Δ — is a typed view sliced straight out of it, with no
// element-by-element decode on little-endian hosts. The copy-on-write
// discipline of the dynamic index guarantees adopted state is never
// written, so views into a read-only mapping are safe for the life of
// the process.
//
// # Snapshot format (v4, directed flavor)
//
// Format v4 extends v3 with a flags word and the directed flavor; it
// does not change the undirected layout. The compatibility rule:
// undirected snapshots keep being written as v3 and every v3 file keeps
// loading unchanged — v4 is additive, introduced only for directed
// snapshots, which a v3 reader could not represent (dual CSR, two label
// matrices, asymmetric σ).
//
// A directed snapshot reuses the v3 header geometry with magic "QBS4",
// version 4, epoch fixed to 0 (directed indexes are immutable), and the
// previously-padding bytes [44,48) as a little-endian u32 flags word
// (bit 0 = directed, required). The header CRC at [40,44) covers
// [0,40), the flags word and the section table. Ten sections follow in
// fixed order, each 8-byte aligned and crc32c-checksummed exactly as in
// v3:
//
//	out offsets ((n+1)×i64), out adjacency (arcs×i32),
//	in offsets  ((n+1)×i64), in adjacency  (arcs×i32),
//	landmarks (R×i32), σ (R²×u8, row-major, row = from-rank),
//	labelFrom (n·R×u8, row-major), labelTo (n·R×u8, row-major),
//	Δ counts (numMeta×i32, meta-arcs in the canonical (from, to) rank
//	order derived from σ), Δ arcs (Σcounts × {i32 from, i32 to})
//
// Load is zero-copy as in v3: the dual CSR, both label matrices, σ and
// Δ are typed views into the file arena; only the O(|R|³) meta state
// (APSP, arc ids) is recomputed. Opening a v4 file with the undirected
// loader (or vice versa) fails with an error naming the right entry
// point rather than a checksum mismatch.
//
// # WAL format
//
// Edge mutations are logged before their epoch is published. Segments
// rotate at a size threshold and at every checkpoint; a checkpoint
// prunes segments whose records all precede the oldest retained
// snapshot.
//
//	segment header (16 bytes): magic "QBSW", u32 version = 1, u64 seq
//	record (25 bytes): u32 payloadLen (= 17), u32 crc32c(payload),
//	                   payload = u64 epoch, u8 op, i32 u, i32 w
//
// Ops: 1 insert, 2 delete, 3 compaction marker (epoch advance with no
// edge change; u = w = 0). fsync policy is configurable: every append
// (the durable default) or batched every N appends.
//
// # Recovery invariants
//
// Open loads the newest snapshot that validates (CURRENT first, then
// any on-disk snapshot, newest epoch first) and replays WAL records with
// epoch > snapshot epoch through the ordinary incremental-repair path.
// The invariants that make this exact:
//
//   - Logged-before-published: a record reaches the WAL (and, under the
//     default sync policy, the disk) before its epoch is visible, so no
//     acknowledged update can be lost.
//   - Sequential epochs: every epoch advance — updates and compactions —
//     is logged in order with no gaps; replay verifies the sequence and
//     fails loudly on divergence instead of guessing.
//   - Repair ≡ rebuild: incremental repair produces bit-identical
//     labels, σ and Δ to a from-scratch build (the PR 1 oracle
//     property), so replaying the logged updates reproduces the exact
//     pre-crash index, and compaction markers need only advance the
//     epoch.
//   - Torn tails: a crash mid-append leaves a partial or CRC-failing
//     record at the end of the last segment; replay stops at the last
//     valid record and a writable open truncates the tail. Corruption
//     anywhere else (a middle segment, an unreadable snapshot with no
//     older fallback) is an error, never a silent partial recovery.
package store
