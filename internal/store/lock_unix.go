//go:build linux || darwin

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDataDir takes the store's exclusive writer lock: an flock on
// <dir>/LOCK. A second writable open of the same directory would
// otherwise scan — and truncate — segments the first process is still
// appending to. The kernel drops the lock when the process dies, so a
// crashed writer never wedges recovery.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: %s is locked by another writer: %w", dir, err)
	}
	return f, nil
}

func unlockDataDir(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	_ = f.Close()
}
