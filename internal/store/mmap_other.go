//go:build !linux && !darwin

package store

// mmapFile is unavailable on this platform; openArena falls back to a
// single whole-file read.
func mmapFile(string) ([]byte, bool) { return nil, false }
