package store

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"qbs/internal/dynamic"
	"qbs/internal/graph"
)

// Real kill-and-recover smoke: a child process (this test binary
// re-executed) creates a store and applies a deterministic update
// stream; the parent SIGKILLs it mid-WAL and verifies that recovery
// lands on a state bit-identical to a never-crashed index that applied
// exactly the surviving prefix. Two rounds, so the second round also
// exercises reopening (and continuing) a store that was itself born
// from crash recovery.

const (
	crashEnvFlag = "QBS_STORE_CRASH_CHILD"
	crashEnvDir  = "QBS_STORE_CRASH_DIR"

	crashGraphN    = 400
	crashGraphM    = 3
	crashGraphSeed = 7
	crashLandmarks = 6
	crashOpSeed    = 97
)

func crashGraph() *graph.Graph {
	return graph.BarabasiAlbert(crashGraphN, crashGraphM, crashGraphSeed)
}

// crashOpStream drives the shared deterministic mutation stream against
// d, one applied update per call to step. Both the child (live) and the
// parent (reference) walk the identical sequence: the rng candidates
// are fixed, and every decision depends only on the evolving graph
// state, so "the first k applied updates" is well defined across
// processes.
func crashOpStream(d *dynamic.Index, applied int) func() error {
	rng := rand.New(rand.NewSource(crashOpSeed))
	n := d.NumVertices()
	// Fast-forward the candidate stream past the updates already applied.
	done := 0
	var redo *dynamic.Index
	if applied > 0 {
		var err error
		redo, err = dynamic.New(crashGraph(), crashGraph().TopDegreeVertices(crashLandmarks), dynamic.Options{CompactFraction: -1})
		if err != nil {
			panic(err)
		}
	}
	step := func(target *dynamic.Index) error {
		for {
			u := graph.V(rng.Intn(n))
			w := graph.V(rng.Intn(n))
			if u == w {
				continue
			}
			insert := !target.HasEdge(u, w)
			var ok bool
			var err error
			if insert {
				ok, err = target.AddEdge(u, w)
			} else {
				ok, err = target.RemoveEdge(u, w)
			}
			if err != nil {
				continue // diameter-bound rejection: deterministic, skip
			}
			if ok {
				return nil
			}
		}
	}
	for done < applied {
		if err := step(redo); err != nil {
			panic(err)
		}
		done++
	}
	return func() error { return step(d) }
}

// TestCrashChildProcess is the child body; it only runs when re-executed
// by TestKillAndRecover.
func TestCrashChildProcess(t *testing.T) {
	if os.Getenv(crashEnvFlag) != "1" {
		t.Skip("crash-test child helper")
	}
	dir := os.Getenv(crashEnvDir)
	opts := Options{Dynamic: dynamic.Options{CompactFraction: -1}}
	var s *Store
	if Exists(dir) {
		var err error
		s, err = Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		g := crashGraph()
		d, err := dynamic.New(g, g.TopDegreeVertices(crashLandmarks), dynamic.Options{CompactFraction: -1})
		if err != nil {
			t.Fatal(err)
		}
		s, err = Create(dir, d, opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	d := s.Index()
	step := crashOpStream(d, int(d.Epoch()))
	fmt.Println("READY")
	for i := 0; i < 1_000_000; i++ { // runs until killed
		if err := step(); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			fmt.Printf("EPOCH %d\n", d.Epoch())
		}
	}
}

func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	for round := 0; round < 2; round++ {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChildProcess$", "-test.v")
		cmd.Env = append(os.Environ(), crashEnvFlag+"=1", crashEnvDir+"="+dir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Let it get through setup and some amount of WAL traffic, then
		// kill it without any warning.
		sc := bufio.NewScanner(out)
		ready := false
		deadline := time.After(30 * time.Second)
		lines := make(chan string)
		go func() {
			for sc.Scan() {
				lines <- sc.Text()
			}
			close(lines)
		}()
	wait:
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					break wait
				}
				if strings.HasPrefix(line, "READY") {
					ready = true
					time.Sleep(time.Duration(20+round*35) * time.Millisecond)
					break wait
				}
			case <-deadline:
				t.Fatal("child never became ready")
			}
		}
		if !ready {
			t.Fatal("child exited before READY")
		}
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		_ = cmd.Wait()
		go func() {
			for range lines { // drain
			}
		}()

		// Recover and verify against the never-crashed reference.
		s, err := Open(dir, Options{Dynamic: dynamic.Options{CompactFraction: -1}})
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		epoch := s.Index().Epoch()
		t.Logf("round %d: recovered at epoch %d", round, epoch)
		g := crashGraph()
		ref, err := dynamic.New(g, g.TopDegreeVertices(crashLandmarks), dynamic.Options{CompactFraction: -1})
		if err != nil {
			t.Fatal(err)
		}
		refStep := crashOpStream(ref, 0)
		for ref.Epoch() < epoch {
			if err := refStep(); err != nil {
				t.Fatal(err)
			}
		}
		requireStateEqual(t, ref.Persistent(), s.Index().Persistent())

		// The recovered index answers queries correctly.
		cur := s.Index().CurrentGraph().Materialize()
		for i := 0; i < 10; i++ {
			u := graph.V((i * 53) % crashGraphN)
			v := graph.V((i * 131) % crashGraphN)
			want := s.Index().Distance(u, v)
			got := int32(len(shortestPathBFS(cur, u, v)))
			if want == graph.InfDist {
				if got != 0 {
					t.Fatalf("round %d: SPG(%d,%d) should be disconnected", round, u, v)
				}
			} else if got-1 != want {
				t.Fatalf("round %d: distance(%d,%d) = %d, BFS says %d", round, u, v, want, got-1)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// shortestPathBFS returns one shortest u–v path (nil when disconnected)
// — an oracle kept deliberately independent of the repo's BFS code.
func shortestPathBFS(g *graph.Graph, u, v graph.V) []graph.V {
	if u == v {
		return []graph.V{u}
	}
	prev := make([]graph.V, g.NumVertices())
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = u
	queue := []graph.V{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.Neighbors(x) {
			if prev[y] != -1 {
				continue
			}
			prev[y] = x
			if y == v {
				var path []graph.V
				for at := v; ; at = prev[at] {
					path = append(path, at)
					if at == u {
						return path
					}
				}
			}
			queue = append(queue, y)
		}
	}
	return nil
}
