package store

import (
	"qbs/internal/obs"
)

// Durable-store instrumentation, registered on the process-wide
// registry: WAL append and fsync latency distributions, checkpoint
// duration, and the size of the last written snapshot. The series
// aggregate across every Store in the process (stores live in
// throwaway directories, so a per-directory label would be noise).
var (
	mWALAppendNs  = obs.Default.Histogram("qbs_wal_append_ns", "")
	mWALFsyncNs   = obs.Default.Histogram("qbs_wal_fsync_ns", "")
	mWALRecords   = obs.Default.Counter("qbs_wal_records_total", "")
	mCheckpoints  = obs.Default.Counter("qbs_checkpoints_total", "")
	mCheckpointNs = obs.Default.Gauge("qbs_checkpoint_last_ns", "")
	mSnapshotSize = obs.Default.Gauge("qbs_snapshot_bytes", "")
)
