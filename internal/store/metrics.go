package store

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"qbs/internal/obs"
)

// Durable-store instrumentation, registered on the process-wide
// registry: WAL append and fsync latency distributions, checkpoint
// duration, and the size of the last written snapshot. The series
// aggregate across every Store in the process (stores live in
// throwaway directories, so a per-directory label would be noise).
var (
	mWALAppendNs  = obs.Default.Histogram("qbs_wal_append_ns", "")
	mWALFsyncNs   = obs.Default.Histogram("qbs_wal_fsync_ns", "")
	mWALRecords   = obs.Default.Counter("qbs_wal_records_total", "")
	mCheckpoints  = obs.Default.Counter("qbs_checkpoints_total", "")
	mCheckpointNs = obs.Default.Gauge("qbs_checkpoint_last_ns", "")
	mSnapshotSize = obs.Default.Gauge("qbs_snapshot_bytes", "")
)

// Structured events on the process journal: durability faults and
// lifecycle transitions that previously vanished into returned errors.
// fsync errors carry a tight rate limit — a dying disk fails every
// batch and must not wash the journal.
var (
	evFsyncError      = obs.DefaultJournal.DefRate("store", "fsync_error", obs.LevelError, 2, 4)
	evCheckpoint      = obs.DefaultJournal.Def("store", "checkpoint", obs.LevelInfo)
	evCheckpointError = obs.DefaultJournal.Def("store", "checkpoint_error", obs.LevelError)
	evSnapshotRetired = obs.DefaultJournal.Def("store", "snapshot_retired", obs.LevelWarn)
	evSnapshotPruned  = obs.DefaultJournal.Def("store", "snapshot_pruned", obs.LevelDebug)
)

// qbs_build_info is the standard build-identity gauge (constant 1, all
// information in the labels): the Go toolchain, the module version when
// built from a tagged checkout, and the on-disk format versions this
// binary reads and writes. It lives in the store package because store
// owns the format version constants and is linked into every binary
// that exposes a mux (server, router, replica).
func init() {
	version := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	labels := fmt.Sprintf(
		`go_version=%q,module_version=%q,snapshot_format="%d",dynamic_snapshot_format="%d",wal_format="%d"`,
		runtime.Version(), version, snapVersion, diSnapVersion, walVersion)
	obs.Default.Gauge("qbs_build_info", labels).Set(1)
}
