package store

import (
	"testing"

	"qbs/internal/dynamic"
)

// collect drains ReadWAL into a slice.
func collect(t *testing.T, s *Store, from uint64, max int) ([]WALRecord, bool) {
	t.Helper()
	var recs []WALRecord
	_, _, gap, err := s.ReadWAL(from, max, func(r WALRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, gap
}

// TestReadWALStreamsContiguously drives updates across several segment
// rotations and checks the tail reader returns exactly the suffix asked
// for, in contiguous epoch order, from any starting point.
func TestReadWALStreamsContiguously(t *testing.T) {
	g := testGraph(t)
	d := newDynamic(t, g, 4)
	s, err := Create(t.TempDir(), d, Options{SegmentBytes: 2 << 10, SyncEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ops := applyOps(t, d, 500, 11)
	top := d.Epoch()
	if top != uint64(len(ops)) {
		t.Fatalf("epoch %d after %d ops", top, len(ops))
	}

	for _, from := range []uint64{0, 1, 250, top - 1, top} {
		recs, gap := collect(t, s, from, 0)
		if gap {
			t.Fatalf("gap reported from %d on an unpruned log", from)
		}
		if len(recs) != int(top-from) {
			t.Fatalf("from %d: %d records, want %d", from, len(recs), top-from)
		}
		for i, r := range recs {
			if r.Epoch != from+1+uint64(i) {
				t.Fatalf("from %d: record %d has epoch %d", from, i, r.Epoch)
			}
		}
	}

	// The per-call cap truncates without reporting a gap.
	recs, gap := collect(t, s, 0, 100)
	if gap || len(recs) != 100 || recs[99].Epoch != 100 {
		t.Fatalf("capped read: %d records, gap=%v", len(recs), gap)
	}

	// Replayed against the records, ops must round-trip.
	for i, op := range ops {
		r := recs[i%100]
		if i >= 100 {
			break
		}
		if (r.Op == WALInsert) != op.insert || r.U != op.u || r.W != op.w {
			t.Fatalf("record %d: %+v does not match applied op %+v", i, r, op)
		}
	}
}

// TestReadWALRetainAndGap checks the retention floor: checkpoints prune
// up to min(snapshot, floor), a held floor preserves the suffix, and a
// released floor produces a detectable gap.
func TestReadWALRetainAndGap(t *testing.T) {
	g := testGraph(t)
	d := newDynamic(t, g, 4)
	s, err := Create(t.TempDir(), d, Options{SegmentBytes: 1 << 10, SyncEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	applyOps(t, d, 120, 12)
	s.SetWALRetain(60) // a replica parked at epoch 60

	// Two checkpoints normally prune everything the snapshots cover.
	applyOps(t, d, 120, 13)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 120, 14)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	if recs, gap := collect(t, s, 60, 0); gap || len(recs) != int(d.Epoch()-60) {
		t.Fatalf("floor not honoured: %d records, gap=%v", len(recs), gap)
	}

	// Release the floor: the next checkpoint prunes past 60 and the
	// reader reports the gap instead of silently skipping epochs.
	s.SetWALRetain(^uint64(0))
	applyOps(t, d, 40, 15)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, gap := collect(t, s, 60, 0); !gap {
		t.Fatal("pruned log served from epoch 60 without reporting a gap")
	}
	// From the newest snapshot the log is still contiguous.
	if recs, gap := collect(t, s, d.Epoch(), 0); gap || len(recs) != 0 {
		t.Fatalf("tip read: %d records, gap=%v", len(recs), gap)
	}
}

// TestLoadSnapshotPlusStreamReplayMatchesLive is the storage-level
// replication round trip, no HTTP: bootstrap from the snapshot file,
// feed the WAL records through ApplyStream, land bit-identical.
func TestLoadSnapshotPlusStreamReplayMatchesLive(t *testing.T) {
	g := testGraph(t)
	d := newDynamic(t, g, 4)
	dir := t.TempDir()
	s, err := Create(dir, d, Options{SegmentBytes: 2 << 10, SyncEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	applyOps(t, d, 150, 21)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyOps(t, d, 150, 22)

	path, snapEpoch, err := s.NewestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	rd, loadedEpoch, err := LoadSnapshot(path, false, dynamic.Options{CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if loadedEpoch != snapEpoch || rd.Epoch() != snapEpoch {
		t.Fatalf("loaded epoch %d/%d, want %d", loadedEpoch, rd.Epoch(), snapEpoch)
	}

	var ops []dynamic.ReplayOp
	if _, gap := collect(t, s, rd.Epoch(), 0); gap {
		t.Fatal("gap below the newest snapshot")
	}
	_, _, _, err = s.ReadWAL(rd.Epoch(), 0, func(r WALRecord) error {
		ops = append(ops, dynamic.ReplayOp{
			Epoch: r.Epoch, U: r.U, W: r.W,
			Insert:  r.Op == WALInsert,
			Compact: r.Op == WALCompact,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	applied, err := rd.ApplyStream(ops)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(ops) {
		t.Fatalf("applied %d of %d ops", applied, len(ops))
	}
	// Re-applying the same stream is a no-op (idempotent skip).
	if again, err := rd.ApplyStream(ops); err != nil || again != 0 {
		t.Fatalf("re-apply: %d ops applied, err=%v", again, err)
	}

	if rd.Epoch() != d.Epoch() {
		t.Fatalf("replayed epoch %d, live %d", rd.Epoch(), d.Epoch())
	}
	pw, pg := d.Persistent(), rd.Persistent()
	for r := range pw.Labels {
		for v := range pw.Labels[r] {
			if pw.Labels[r][v] != pg.Labels[r][v] || pw.Dists[r][v] != pg.Dists[r][v] {
				t.Fatalf("column %d vertex %d diverged", r, v)
			}
		}
	}
	for i := range pw.Sigma {
		if pw.Sigma[i] != pg.Sigma[i] {
			t.Fatalf("sigma[%d] diverged", i)
		}
	}
}

// TestWALFrameCodecRoundTrip pins the wire framing: encode → decode is
// the identity, and a flipped byte is rejected.
func TestWALFrameCodecRoundTrip(t *testing.T) {
	rec := WALRecord{Epoch: 12345, U: 7, W: 4242, Op: WALDelete}
	frame := EncodeWALFrame(nil, rec)
	if len(frame) != WALRecordSize {
		t.Fatalf("frame size %d, want %d", len(frame), WALRecordSize)
	}
	back, err := DecodeWALFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if back != rec {
		t.Fatalf("round trip %+v != %+v", back, rec)
	}
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := DecodeWALFrame(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	if _, err := DecodeWALFrame(frame[:10]); err == nil {
		t.Fatal("short frame accepted")
	}
}

// TestReadWALReadOnlyServesLiveWriterAppends: a read-only open tolerates
// observing a consistent prefix of a live writer's log, and its ReadWAL
// must keep serving records the writer appends after the open — the scan
// is unbounded past the open-time epoch. The returned limit, though,
// stays at the open-time epoch: an empty read beyond it is "nothing
// visible yet", never a gap.
func TestReadWALReadOnlyServesLiveWriterAppends(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	d := newDynamic(t, g, 4)
	s, err := Create(dir, d, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	applyOps(t, d, 30, 81)

	ro, err := Open(dir, Options{ReadOnly: true, Dynamic: dynamic.Options{CompactFraction: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	roEpoch := ro.Index().Epoch()

	// The writer moves on after the read-only open.
	applyOps(t, d, 20, 82)
	tip := d.Epoch()

	var recs []WALRecord
	n, limit, gap, err := ro.ReadWAL(roEpoch, 0, func(r WALRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gap || n != int(tip-roEpoch) {
		t.Fatalf("read-only tail past open-time epoch: %d records (want %d), gap=%v", n, tip-roEpoch, gap)
	}
	for i, r := range recs {
		if r.Epoch != roEpoch+1+uint64(i) {
			t.Fatalf("record %d has epoch %d", i, r.Epoch)
		}
	}
	if limit != roEpoch {
		t.Fatalf("read-only limit %d, want open-time epoch %d", limit, roEpoch)
	}
	// An empty read at the writer's tip must not look like a gap to a
	// caller comparing against the returned limit.
	n, limit, gap, err = ro.ReadWAL(tip, 0, func(WALRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || gap || limit > tip {
		t.Fatalf("tip read on read-only store: n=%d gap=%v limit=%d", n, gap, limit)
	}
}
