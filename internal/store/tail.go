package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"qbs/internal/dynamic"
	"qbs/internal/graph"
)

// Replication read surface: the primary side of WAL shipping. A store
// already orders every epoch advance as one fixed-size CRC-framed log
// record; replication is then just reading those records back out —
// ReadWAL serves any suffix of the log to a tailing replica, and
// SetWALRetain parks the pruning floor so a checkpoint never deletes a
// segment a registered replica still needs. See internal/replica for
// the HTTP protocol layered on top.

// WALRecord is one logged epoch advance as exposed to replication
// consumers. Op is one of WALInsert, WALDelete, WALCompact.
type WALRecord struct {
	Epoch uint64
	U, W  graph.V
	Op    uint8
}

// WAL record operations (the on-disk op codes).
const (
	WALInsert  = recInsert
	WALDelete  = recDelete
	WALCompact = recCompact
)

// WALRecordSize is the framed size of one log record — the unit of the
// replication wire format and of byte-lag accounting.
const WALRecordSize = walRecordSize

// decodeWALFrame validates one framed record (length, checksum, op) and
// decodes it. It is the single framing authority shared by recovery
// scans, the tail reader and (via internal/replica) the wire protocol.
func decodeWALFrame(b []byte) (walRecord, bool) {
	if binary.LittleEndian.Uint32(b[0:]) != walPayload ||
		binary.LittleEndian.Uint32(b[4:]) != crc32.Checksum(b[8:walRecordSize], crcTable) {
		return walRecord{}, false
	}
	op := b[16]
	if op != recInsert && op != recDelete && op != recCompact {
		return walRecord{}, false
	}
	return walRecord{
		epoch: binary.LittleEndian.Uint64(b[8:]),
		op:    op,
		u:     graph.V(binary.LittleEndian.Uint32(b[17:])),
		w:     graph.V(binary.LittleEndian.Uint32(b[21:])),
	}, true
}

// EncodeWALFrame appends the wire framing of rec to dst — byte-identical
// to the on-disk record, checksum included, so a replica can validate
// shipped records exactly as recovery validates the log.
func EncodeWALFrame(dst []byte, rec WALRecord) []byte {
	var b [walRecordSize]byte
	binary.LittleEndian.PutUint32(b[0:], walPayload)
	binary.LittleEndian.PutUint64(b[8:], rec.Epoch)
	b[16] = rec.Op
	binary.LittleEndian.PutUint32(b[17:], uint32(rec.U))
	binary.LittleEndian.PutUint32(b[21:], uint32(rec.W))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(b[8:], crcTable))
	return append(dst, b[:]...)
}

// DecodeWALFrame decodes one shipped frame (the inverse of
// EncodeWALFrame), rejecting bad checksums and unknown ops.
func DecodeWALFrame(b []byte) (WALRecord, error) {
	if len(b) < walRecordSize {
		return WALRecord{}, fmt.Errorf("store: short WAL frame (%d bytes)", len(b))
	}
	rec, ok := decodeWALFrame(b[:walRecordSize])
	if !ok {
		return WALRecord{}, fmt.Errorf("store: corrupt WAL frame")
	}
	return WALRecord{Epoch: rec.epoch, U: rec.u, W: rec.w, Op: rec.op}, nil
}

// DurableEpoch returns the newest epoch replication can currently
// serve: everything fsynced so far. On a read-only store (no writer)
// every on-disk record is as durable as it will get, so the index epoch
// is returned.
func (s *Store) DurableEpoch() uint64 {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.w == nil {
		return s.d.Epoch()
	}
	return s.syncedEpoch
}

// NewestSnapshot returns the path and epoch of the newest intact
// snapshot — the bootstrap image replication serves.
func (s *Store) NewestSnapshot() (string, uint64, error) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if len(s.snaps) == 0 {
		return "", 0, fmt.Errorf("store: no snapshot in %s", s.dir)
	}
	epoch := s.snaps[len(s.snaps)-1]
	return filepath.Join(s.dir, snapshotFileName(epoch)), epoch, nil
}

// SetWALRetain bounds checkpoint pruning: segments holding any record
// with epoch > floor survive even when every retained snapshot covers
// them. The replication primary parks the floor at the least advanced
// registered replica so a tailing replica never finds its next record
// pruned from under it. The initial floor (no registered replicas) is
// MaxUint64 — no constraint.
func (s *Store) SetWALRetain(floor uint64) {
	s.walMu.Lock()
	s.retain = floor
	s.walMu.Unlock()
}

// tailSyncInterval rate-limits replication-driven fsyncs: a record is
// never shipped before it is durable, but tip-chasing replicas force at
// most one extra fsync per this interval instead of collapsing the
// primary's SyncEvery batching into one fsync per poll per replica.
const tailSyncInterval = 10 * time.Millisecond

// ReadWAL streams log records with epoch > from, in epoch order, to fn
// — at most max of them (max <= 0 means 65536). Only durable records
// are served: a record is fsynced before it is ever shipped, so a
// replica can never apply an epoch that a recovered primary lost. When
// batched appends are pending (SyncEvery > 1), ReadWAL flushes them at
// most once per tailSyncInterval and meanwhile serves up to the last
// fsynced record — bounding both the extra fsync load and the extra
// replication lag. Reading the segment files directly is safe
// concurrently with the writer: a partially written tail record simply
// ends the scan until the next call. Record positioning is O(log
// segment) via binary search over the fixed-size records, so a
// caught-up replica polling at the tip costs a few small reads per
// poll.
//
// gap reports that the log could not supply the contiguous successor of
// from (epoch from+1 was pruned or lost): the caller must re-bootstrap
// from a snapshot instead of tailing.
func (s *Store) ReadWAL(from uint64, max int, fn func(WALRecord) error) (n int, gap bool, err error) {
	if max <= 0 {
		max = 1 << 16
	}
	limit := ^uint64(0)
	s.walMu.Lock()
	if s.w != nil && !s.closed {
		if s.syncedEpoch < s.lastAppended && time.Since(s.lastTailSync) >= tailSyncInterval {
			if err := s.w.sync(); err != nil {
				s.walMu.Unlock()
				return 0, false, err
			}
			s.syncedEpoch = s.lastAppended
			s.lastTailSync = time.Now()
		}
		limit = s.syncedEpoch
	}
	s.walMu.Unlock()
	segs, err := listSegments(walDir(s.dir))
	if err != nil {
		return 0, false, err
	}
	// Segments are epoch-ordered, so the first one that can contain
	// from+1 is the newest whose first record is at or before it;
	// earlier segments hold only covered records. Walking back from the
	// tail keeps a caught-up poll at O(1) opens even when retention
	// leases have let old segments pile up.
	start := 0
	for i := len(segs) - 1; i >= 0; i-- {
		first, ok := segmentFirstEpoch(segs[i])
		if ok && first <= from+1 {
			start = i
			break
		}
	}
	expect := from + 1
	for _, seg := range segs[start:] {
		if n >= max {
			break
		}
		delivered, err := tailSegment(seg, from, limit, max-n, &expect, fn)
		n += delivered
		if err != nil {
			return n, false, err
		}
	}
	// A clean tail delivers from+1 first and consecutive epochs after
	// it; expect trails the stream, so any jump shows up here.
	return n, expect != from+1+uint64(n), nil
}

// segmentFirstEpoch reads the epoch of a segment's first complete valid
// record. ok is false for empty, torn-at-birth or unreadable segments —
// callers treat those as "scan it to be sure".
func segmentFirstEpoch(seg segmentFile) (uint64, bool) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var b [walHeaderSize + walRecordSize]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return 0, false
	}
	if string(b[:4]) != walMagic ||
		binary.LittleEndian.Uint32(b[4:]) != walVersion ||
		binary.LittleEndian.Uint64(b[8:]) != seg.seq {
		return 0, false
	}
	rec, ok := decodeWALFrame(b[walHeaderSize:])
	if !ok {
		return 0, false
	}
	return rec.epoch, true
}

// tailSegment streams the records of one segment with from < epoch <=
// limit to fn, at most max of them (limit is the durability horizon —
// records past it exist but are not yet fsynced). expect is the
// contiguity cursor shared across segments: it advances by one per
// delivered record, so the caller can detect pruned or lost epochs.
// Invalid frames end the scan silently — they are the torn tail the
// writer is still extending (or recovery will truncate).
func tailSegment(seg segmentFile, from, limit uint64, max int, expect *uint64, fn func(WALRecord) error) (int, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // pruned between listing and open: records were covered
		}
		return 0, err
	}
	defer f.Close()

	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, nil
	}
	if string(hdr[:4]) != walMagic ||
		binary.LittleEndian.Uint32(hdr[4:]) != walVersion ||
		binary.LittleEndian.Uint64(hdr[8:]) != seg.seq {
		return 0, nil
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	count := (size - walHeaderSize) / walRecordSize
	if count <= 0 {
		return 0, nil
	}

	// Binary search for the first record with epoch > from. Epochs are
	// strictly increasing within a segment; a probe that fails to
	// validate can only be the torn tail, so the search moves left.
	var buf [walRecordSize]byte
	probe := func(i int64) (walRecord, bool) {
		if _, err := f.ReadAt(buf[:], walHeaderSize+i*walRecordSize); err != nil {
			return walRecord{}, false
		}
		return decodeWALFrame(buf[:])
	}
	lo, hi := int64(0), count
	for lo < hi {
		mid := (lo + hi) / 2
		rec, ok := probe(mid)
		if !ok || rec.epoch > from {
			hi = mid
		} else {
			lo = mid + 1
		}
	}

	n := 0
	for i := lo; i < count && n < max; i++ {
		rec, ok := probe(i)
		if !ok {
			break // torn tail
		}
		if rec.epoch > limit {
			break // not yet durable; served after the next tail sync
		}
		if rec.epoch <= from {
			continue
		}
		if err := fn(WALRecord{Epoch: rec.epoch, U: rec.u, W: rec.w, Op: rec.op}); err != nil {
			return n, err
		}
		n++
		if rec.epoch == *expect {
			*expect++
		}
	}
	return n, nil
}

// LoadSnapshot restores a dynamic index from a single snapshot file —
// no data directory, no WAL, nothing written. This is the read-replica
// bootstrap path: the file a primary shipped is decoded with the same
// zero-copy arena views and validation as Open, and subsequent log
// records are applied through the dynamic replay seam. It returns the
// index and the epoch the snapshot captured.
func LoadSnapshot(path string, useMMap bool, opts dynamic.Options) (*dynamic.Index, uint64, error) {
	ar, err := openArena(path, useMMap)
	if err != nil {
		return nil, 0, err
	}
	ls, err := decodeSnapshot(ar.data)
	if err != nil {
		return nil, 0, fmt.Errorf("store: snapshot %s: %w", filepath.Base(path), err)
	}
	d, err := dynamic.Restore(ls.g, ls.landmarks, ls.dists, ls.labels, ls.sigma, ls.delta, ls.epoch, opts)
	if err != nil {
		return nil, 0, fmt.Errorf("store: restore: %w", err)
	}
	return d, ls.epoch, nil
}
