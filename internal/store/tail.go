package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"qbs/internal/dynamic"
	"qbs/internal/graph"
	"qbs/internal/obs"
)

// Replication read surface: the primary side of WAL shipping. A store
// already orders every epoch advance as one fixed-size CRC-framed log
// record; replication is then just reading those records back out —
// ReadWAL serves any suffix of the log to a tailing replica, and
// SetWALRetain parks the pruning floor so a checkpoint never deletes a
// segment a registered replica still needs. See internal/replica for
// the HTTP protocol layered on top.

// WALRecord is one logged epoch advance as exposed to replication
// consumers. Op is one of WALInsert, WALDelete, WALCompact.
type WALRecord struct {
	Epoch uint64
	U, W  graph.V
	Op    uint8
}

// WAL record operations (the on-disk op codes).
const (
	WALInsert  = recInsert
	WALDelete  = recDelete
	WALCompact = recCompact
)

// WALRecordSize is the framed size of one log record — the unit of the
// replication wire format and of byte-lag accounting.
const WALRecordSize = walRecordSize

// decodeWALFrame validates one framed record (length, checksum, op) and
// decodes it. It is the single framing authority shared by recovery
// scans, the tail reader and (via internal/replica) the wire protocol.
func decodeWALFrame(b []byte) (walRecord, bool) {
	if binary.LittleEndian.Uint32(b[0:]) != walPayload ||
		binary.LittleEndian.Uint32(b[4:]) != crc32.Checksum(b[8:walRecordSize], crcTable) {
		return walRecord{}, false
	}
	op := b[16]
	if op != recInsert && op != recDelete && op != recCompact {
		return walRecord{}, false
	}
	return walRecord{
		epoch: binary.LittleEndian.Uint64(b[8:]),
		op:    op,
		u:     graph.V(binary.LittleEndian.Uint32(b[17:])),
		w:     graph.V(binary.LittleEndian.Uint32(b[21:])),
	}, true
}

// EncodeWALFrame appends the wire framing of rec to dst — byte-identical
// to the on-disk record, checksum included, so a replica can validate
// shipped records exactly as recovery validates the log.
func EncodeWALFrame(dst []byte, rec WALRecord) []byte {
	var b [walRecordSize]byte
	binary.LittleEndian.PutUint32(b[0:], walPayload)
	binary.LittleEndian.PutUint64(b[8:], rec.Epoch)
	b[16] = rec.Op
	binary.LittleEndian.PutUint32(b[17:], uint32(rec.U))
	binary.LittleEndian.PutUint32(b[21:], uint32(rec.W))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(b[8:], crcTable))
	return append(dst, b[:]...)
}

// DecodeWALFrame decodes one shipped frame (the inverse of
// EncodeWALFrame), rejecting bad checksums and unknown ops.
func DecodeWALFrame(b []byte) (WALRecord, error) {
	if len(b) < walRecordSize {
		return WALRecord{}, fmt.Errorf("store: short WAL frame (%d bytes)", len(b))
	}
	rec, ok := decodeWALFrame(b[:walRecordSize])
	if !ok {
		return WALRecord{}, fmt.Errorf("store: corrupt WAL frame")
	}
	return WALRecord{Epoch: rec.epoch, U: rec.u, W: rec.w, Op: rec.op}, nil
}

// DurableEpoch returns the newest epoch replication can currently
// serve: everything fsynced so far. On a read-only store (no writer)
// every on-disk record is as durable as it will get, so the index epoch
// is returned.
func (s *Store) DurableEpoch() uint64 {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.w == nil {
		return s.d.Epoch()
	}
	return s.syncedEpoch
}

// NewestSnapshot returns the path and epoch of the newest intact
// snapshot — the bootstrap image replication serves.
func (s *Store) NewestSnapshot() (string, uint64, error) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if len(s.snaps) == 0 {
		return "", 0, fmt.Errorf("store: no snapshot in %s", s.dir)
	}
	epoch := s.snaps[len(s.snaps)-1]
	return filepath.Join(s.dir, snapshotFileName(epoch)), epoch, nil
}

// SetWALRetain bounds checkpoint pruning: segments holding any record
// with epoch > floor survive even when every retained snapshot covers
// them. The replication primary parks the floor at the least advanced
// registered replica so a tailing replica never finds its next record
// pruned from under it. The initial floor (no registered replicas) is
// MaxUint64 — no constraint.
func (s *Store) SetWALRetain(floor uint64) {
	s.walMu.Lock()
	s.retain = floor
	s.walMu.Unlock()
}

// tailSyncInterval rate-limits replication-driven fsyncs: a record is
// never shipped before it is durable, but tip-chasing replicas force at
// most one extra fsync per this interval instead of collapsing the
// primary's SyncEvery batching into one fsync per poll per replica.
const tailSyncInterval = 10 * time.Millisecond

// tailChunkRecords is how many records one delivery pread covers
// (512 × 25 B = 12.5 KiB per syscall).
const tailChunkRecords = 512

// ReadWAL streams log records with epoch > from, in epoch order, to fn
// — at most max of them (max <= 0 means 65536). Only durable records
// are served: a record is fsynced before it is ever shipped, so a
// replica can never apply an epoch that a recovered primary lost. When
// batched appends are pending (SyncEvery > 1), ReadWAL flushes them at
// most once per tailSyncInterval and meanwhile serves up to the last
// fsynced record — bounding both the extra fsync load and the extra
// replication lag. Reading the segment files directly is safe
// concurrently with the writer: a partially written tail record simply
// ends the scan until the next call. Record positioning is O(log
// segment) via binary search over the fixed-size records, so a
// caught-up replica polling at the tip costs a few small reads per
// poll.
//
// limit is the serving floor the scan guaranteed — the newest epoch
// this call promises to have delivered if it was present. Callers
// inferring pruning from an empty read must compare against this
// returned value, not re-read DurableEpoch afterwards: the horizon can
// advance during the scan (a concurrent write fsyncs), and a fresher
// value would claim records the scan never looked for, turning a
// caught-up tail into a spurious gap.
//
// gap reports that the log could not supply the contiguous successor of
// from (epoch from+1 was pruned or lost): the caller must re-bootstrap
// from a snapshot instead of tailing.
func (s *Store) ReadWAL(from uint64, max int, fn func(WALRecord) error) (n int, limit uint64, gap bool, err error) {
	if max <= 0 {
		max = 1 << 16
	}
	scanLimit := ^uint64(0)
	s.walMu.Lock()
	if s.w == nil {
		// No writer: every complete on-disk record is served unbounded —
		// read-only opens tolerate observing a consistent prefix of a
		// live writer's log, and those appends are past this process's
		// view. The promised floor is still only the open-time epoch:
		// records beyond it may exist without this store knowing, so an
		// empty read up there is "nothing visible yet", not a gap.
		limit = s.d.Epoch()
	} else {
		if !s.closed && s.syncedEpoch < s.lastAppended && time.Since(s.lastTailSync) >= tailSyncInterval {
			if err := s.w.sync(); err != nil {
				s.walMu.Unlock()
				return 0, 0, false, err
			}
			s.syncedEpoch = s.lastAppended
			s.lastTailSync = time.Now()
		}
		limit = s.syncedEpoch
		scanLimit = limit
	}
	s.walMu.Unlock()
	segs, err := listSegments(walDir(s.dir))
	if err != nil {
		return 0, limit, false, err
	}
	// Segments are epoch-ordered, so the first one that can contain
	// from+1 is the newest whose first record is at or before it;
	// earlier segments hold only covered records. Walking back from the
	// tail keeps a caught-up poll at O(1) opens even when retention
	// leases have let old segments pile up.
	start := 0
	for i := len(segs) - 1; i >= 0; i-- {
		first, ok := segmentFirstEpoch(segs[i])
		if ok && first <= from+1 {
			start = i
			break
		}
	}
	expect := from + 1
	for _, seg := range segs[start:] {
		if n >= max {
			break
		}
		delivered, err := tailSegment(seg, from, scanLimit, max-n, &expect, fn)
		n += delivered
		if err != nil {
			return n, limit, false, err
		}
	}
	// A clean tail delivers from+1 first and consecutive epochs after
	// it; expect trails the stream, so any jump shows up here.
	return n, limit, expect != from+1+uint64(n), nil
}

// segmentFirstEpoch reads the epoch of a segment's first complete valid
// record. ok is false for empty, torn-at-birth or unreadable segments —
// callers treat those as "scan it to be sure".
func segmentFirstEpoch(seg segmentFile) (uint64, bool) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var b [walHeaderSize + walRecordSize]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return 0, false
	}
	if string(b[:4]) != walMagic ||
		binary.LittleEndian.Uint32(b[4:]) != walVersion ||
		binary.LittleEndian.Uint64(b[8:]) != seg.seq {
		return 0, false
	}
	rec, ok := decodeWALFrame(b[walHeaderSize:])
	if !ok {
		return 0, false
	}
	return rec.epoch, true
}

// tailSegment streams the records of one segment with from < epoch <=
// limit to fn, at most max of them (limit is the durability horizon —
// records past it exist but are not yet fsynced). expect is the
// contiguity cursor shared across segments: it advances by one per
// delivered record, so the caller can detect pruned or lost epochs.
// Invalid frames end the scan silently — they are the torn tail the
// writer is still extending (or recovery will truncate).
func tailSegment(seg segmentFile, from, limit uint64, max int, expect *uint64, fn func(WALRecord) error) (int, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // pruned between listing and open: records were covered
		}
		return 0, err
	}
	defer f.Close()

	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, nil
	}
	if string(hdr[:4]) != walMagic ||
		binary.LittleEndian.Uint32(hdr[4:]) != walVersion ||
		binary.LittleEndian.Uint64(hdr[8:]) != seg.seq {
		return 0, nil
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	count := (size - walHeaderSize) / walRecordSize
	if count <= 0 {
		return 0, nil
	}

	// Binary search for the first record with epoch > from. Epochs are
	// strictly increasing within a segment; a probe that fails to
	// validate can only be the torn tail, so the search moves left.
	var buf [walRecordSize]byte
	probe := func(i int64) (walRecord, bool) {
		if _, err := f.ReadAt(buf[:], walHeaderSize+i*walRecordSize); err != nil {
			return walRecord{}, false
		}
		return decodeWALFrame(buf[:])
	}
	lo, hi := int64(0), count
	for lo < hi {
		mid := (lo + hi) / 2
		rec, ok := probe(mid)
		if !ok || rec.epoch > from {
			hi = mid
		} else {
			lo = mid + 1
		}
	}

	// Deliver in chunked sequential reads: after the binary search the
	// records are contiguous, and one pread per 25-byte record would
	// cost a catch-up batch ~65k syscalls; one pread per chunk serves
	// the same batch in a handful.
	n := 0
	var chunk []byte // allocated on first delivery: a caught-up poll delivers nothing
	i := lo
scan:
	for i < count && n < max {
		if chunk == nil {
			chunk = make([]byte, tailChunkRecords*walRecordSize)
		}
		span := count - i
		if span > tailChunkRecords {
			span = tailChunkRecords
		}
		b := chunk[:span*walRecordSize]
		m, rerr := f.ReadAt(b, walHeaderSize+i*walRecordSize)
		complete := int64(m / walRecordSize) // a partial trailing record is the torn tail
		if complete == 0 {
			// A real read error must propagate (the primary answers 500
			// and the replica retries); swallowing it would make the
			// segment look empty — an apparent gap, and a 410 that parks
			// the replica permanently over a transient I/O failure.
			if rerr != nil && rerr != io.EOF {
				return n, rerr
			}
			break
		}
		for j := int64(0); j < complete && n < max; j++ {
			rec, ok := decodeWALFrame(b[j*walRecordSize : (j+1)*walRecordSize])
			if !ok {
				break scan // torn tail
			}
			if rec.epoch > limit {
				break scan // not yet durable; served after the next tail sync
			}
			if rec.epoch <= from {
				continue
			}
			if err := fn(WALRecord{Epoch: rec.epoch, U: rec.u, W: rec.w, Op: rec.op}); err != nil {
				return n, err
			}
			n++
			if rec.epoch == *expect {
				*expect++
			}
		}
		i += complete
		if complete < span {
			if rerr != nil && rerr != io.EOF {
				return n, rerr
			}
			break // short read: current end of the segment
		}
	}
	return n, nil
}

// LoadSnapshot restores a dynamic index from a single snapshot file —
// no data directory, no WAL, nothing written. This is the read-replica
// bootstrap path: the file a primary shipped is decoded with the same
// zero-copy arena views and validation as Open, and subsequent log
// records are applied through the dynamic replay seam. It returns the
// index and the epoch the snapshot captured.
func LoadSnapshot(path string, useMMap bool, opts dynamic.Options) (*dynamic.Index, uint64, error) {
	tb := obs.DefaultTracer.Begin("store.snapshot_load", "", 0, false)
	fail := func(err error) (*dynamic.Index, uint64, error) {
		tb.MarkError()
		obs.DefaultTracer.Finish(tb)
		return nil, 0, err
	}
	ar, err := openArena(path, useMMap)
	if err != nil {
		return fail(err)
	}
	ls, err := decodeSnapshot(ar.data)
	if err != nil {
		return fail(fmt.Errorf("store: snapshot %s: %w", filepath.Base(path), err))
	}
	d, err := dynamic.Restore(ls.g, ls.landmarks, ls.dists, ls.labels, ls.sigma, ls.delta, ls.epoch, opts)
	if err != nil {
		return fail(fmt.Errorf("store: restore: %w", err))
	}
	tb.Root().SetInt("epoch", int64(ls.epoch))
	tb.Root().SetInt("bytes", int64(len(ar.data)))
	obs.DefaultTracer.Finish(tb)
	return d, ls.epoch, nil
}
