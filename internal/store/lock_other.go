//go:build !linux && !darwin

package store

import "os"

// No flock on this platform: writable opens are not mutually excluded.
// (An O_EXCL lock file would be worse — it survives crashes and would
// block the very recovery the store exists for.)
func lockDataDir(string) (*os.File, error) { return nil, nil }

func unlockDataDir(*os.File) {}
