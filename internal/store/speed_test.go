package store

import (
	"testing"
	"time"

	"qbs/internal/dynamic"
	"qbs/internal/graph"
)

// TestOpenBeatsRebuild is the PR 3 acceptance regression: opening a
// saved large-graph index must be at least 10× faster than rebuilding
// it from the graph. The graph is sized so both numbers are well above
// timer noise (build ≈ 1s, open ≈ tens of ms); the comparison takes the
// fastest of two opens to shave cold-cache scheduling jitter.
func TestOpenBeatsRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second build; skipped in -short mode")
	}
	g := graph.BarabasiAlbert(200000, 6, 7)
	landmarks := g.TopDegreeVertices(64)

	t0 := time.Now()
	d, err := dynamic.New(g, landmarks, dynamic.Options{CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	build := time.Since(t0)

	dir := t.TempDir()
	s, err := Create(dir, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	open := time.Duration(1<<63 - 1)
	for rep := 0; rep < 2; rep++ {
		t0 = time.Now()
		s2, err := Open(dir, Options{MMap: true})
		if err != nil {
			t.Fatal(err)
		}
		if el := time.Since(t0); el < open {
			open = el
		}
		if got := s2.Index().NumEdges(); got != g.NumEdges() {
			t.Fatalf("recovered %d edges, want %d", got, g.NumEdges())
		}
		_ = s2.Close()
	}

	ratio := float64(build) / float64(open)
	t.Logf("build=%v open=%v ratio=%.1f×", build, open, ratio)
	if ratio < 10 {
		t.Fatalf("open is only %.1f× faster than rebuild (build=%v open=%v), want ≥10×", ratio, build, open)
	}
}
