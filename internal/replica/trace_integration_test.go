package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"qbs/internal/graph"
	"qbs/internal/obs"
)

// fetchTraceJSON pulls /debug/traces/{id} from base, returning nil on
// 404. Trace retention happens in middleware after the response body is
// written, so callers poll with waitForTrace rather than calling this
// once.
func fetchTraceJSON(t *testing.T, base, id string) *obs.StoredTrace {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: status %d", id, resp.StatusCode)
	}
	var st obs.StoredTrace
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode trace %s: %v", id, err)
	}
	return &st
}

// waitForTrace polls the merged trace until every span in want has been
// retained (the tiers finish their spans asynchronously with respect to
// the proxied response).
func waitForTrace(t *testing.T, base, id string, want ...string) *obs.StoredTrace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fetchTraceJSON(t, base, id)
		if st != nil {
			names := map[string]int{}
			for _, sp := range st.Spans {
				names[sp.Name]++
			}
			ok := true
			for _, w := range want {
				if names[w] == 0 {
					ok = false
				}
			}
			if ok {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never assembled spans %v (got %+v)", id, want, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// spanByName returns the first span with the given name, failing when
// absent.
func spanByName(t *testing.T, st *obs.StoredTrace, name string) obs.StoredSpan {
	t.Helper()
	for _, sp := range st.Spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("trace %s has no span %q: %+v", st.TraceID, name, st.Spans)
	return obs.StoredSpan{}
}

// attrInt reads an integer attribute back out of the JSON round-trip
// (numbers decode as float64).
func attrInt(sp obs.StoredSpan, key string) (int64, bool) {
	v, ok := sp.Attrs[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return int64(n), true
	case int64:
		return n, true
	}
	return 0, false
}

// TestTraceTreeAcrossTiersWithFailover is the tentpole acceptance path:
// a sampled read through the router hits a replica that answers 503,
// fails over to the primary, and the resulting trace — fetched from the
// router's /debug/traces/{id} — is one tree: the router root, both
// per-attempt child spans (backend + attempt + status attrs), the
// primary server's root parented to the successful attempt via
// traceparent, and the engine's stage spans beneath it. The retry
// counter and the router latency histogram carry exemplars naming the
// same trace ID.
func TestTraceTreeAcrossTiersWithFailover(t *testing.T) {
	fix := newPrimaryFixture(t, 1<<20, PrimaryOptions{})

	// A lame replica: probes answer with the primary's tip epoch so it
	// stays in the read pool, but every read is 503 — the shape of a
	// replica stuck behind min_epoch, which must trigger a retry.
	lame := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/epoch" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"epoch":%d}`, fix.d.Epoch())
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(lame.Close)

	// One synchronous sweep at construction marks the lame replica
	// healthy; the hour-long interval keeps routing deterministic after.
	rt := NewRouter(fix.ts.URL, []string{lame.URL}, RouterOptions{
		HealthInterval: time.Hour, Seed: 1,
	})
	t.Cleanup(rt.Stop)
	rtTS := httptest.NewServer(rt)
	t.Cleanup(rtTS.Close)
	if h := rt.ReplicaHealth(); len(h) != 1 || !h[0] {
		t.Fatalf("lame replica should have probed healthy, got %v", h)
	}

	// The client forces sampling via the W3C sampled flag: every tier
	// must then retain its spans regardless of latency.
	const traceID = "deadbeefcafef00d"
	req, _ := http.NewRequest(http.MethodGet, rtTS.URL+"/spg?u=0&v=5", nil)
	req.Header.Set(obs.TraceparentHeader, "00-0000000000000000"+traceID+"-00000000000000aa-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed read: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != traceID {
		t.Fatalf("response trace ID %q, want %q", got, traceID)
	}

	st := waitForTrace(t, rtTS.URL, traceID, "router", "router.attempt", "/spg", "stage:sketch")
	if st.TraceID != traceID {
		t.Fatalf("merged trace ID %q, want %q", st.TraceID, traceID)
	}
	if st.Root != "router" {
		t.Fatalf("merged trace root %q, want router (router view wins the merge)", st.Root)
	}

	// The two attempts hang under the router root and name who was tried.
	routerRoot := spanByName(t, st, "router")
	if routerRoot.ParentID != "00000000000000aa" {
		t.Fatalf("router root parent %q, want the client's traceparent span", routerRoot.ParentID)
	}
	var attempts []obs.StoredSpan
	for _, sp := range st.Spans {
		if sp.Name == "router.attempt" {
			attempts = append(attempts, sp)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("got %d router.attempt spans, want 2 (replica then primary): %+v", len(attempts), attempts)
	}
	byAttempt := map[int64]obs.StoredSpan{}
	for _, sp := range attempts {
		if sp.ParentID != routerRoot.SpanID {
			t.Fatalf("attempt span %s parented to %q, want router root %s", sp.SpanID, sp.ParentID, routerRoot.SpanID)
		}
		n, ok := attrInt(sp, "attempt")
		if !ok {
			t.Fatalf("attempt span %s missing attempt attr: %v", sp.SpanID, sp.Attrs)
		}
		byAttempt[n] = sp
	}
	first, second := byAttempt[0], byAttempt[1]
	if first.Attrs["backend"] != lame.URL {
		t.Fatalf("attempt 0 backend %v, want the lame replica %s", first.Attrs["backend"], lame.URL)
	}
	if n, _ := attrInt(first, "status"); n != http.StatusServiceUnavailable {
		t.Fatalf("attempt 0 status %d, want 503", n)
	}
	if second.Attrs["backend"] != fix.ts.URL {
		t.Fatalf("attempt 1 backend %v, want the primary %s", second.Attrs["backend"], fix.ts.URL)
	}
	if n, _ := attrInt(second, "status"); n != http.StatusOK {
		t.Fatalf("attempt 1 status %d, want 200", n)
	}

	// The primary's server root joined the tree through traceparent: its
	// parent is the successful attempt span, and the engine's stage
	// breakdown hangs beneath it.
	serverRoot := spanByName(t, st, "/spg")
	if serverRoot.ParentID != second.SpanID {
		t.Fatalf("server root parent %q, want attempt-1 span %s", serverRoot.ParentID, second.SpanID)
	}
	for _, stage := range []string{"stage:sketch", "stage:expand", "stage:extract", "stage:serialize"} {
		sp := spanByName(t, st, stage)
		if sp.ParentID != serverRoot.SpanID {
			t.Fatalf("%s parented to %q, want server root %s", stage, sp.ParentID, serverRoot.SpanID)
		}
	}

	// Every span resolves into one tree: parents are either in-trace or
	// the client's external traceparent span.
	ids := map[string]bool{"00000000000000aa": true}
	for _, sp := range st.Spans {
		ids[sp.SpanID] = true
	}
	for _, sp := range st.Spans {
		if sp.ParentID != "" && !ids[sp.ParentID] {
			t.Fatalf("span %s (%s) has dangling parent %q", sp.SpanID, sp.Name, sp.ParentID)
		}
	}

	// The retry counter's exemplar and the router latency histogram both
	// link back to this trace in the Prometheus exposition.
	rtText := fetchProm(t, rtTS.URL)
	if !strings.Contains(rtText, `qbs_router_retries_total 1 # {trace_id="`+traceID+`"} 1`) {
		t.Fatalf("retries counter lacks the failover exemplar:\n%s", rtText)
	}
	if !strings.Contains(rtText, `trace_id="`+traceID+`"} `) {
		t.Fatal("router exposition carries no exemplar for the trace")
	}
	re := `qbs_router_request_ns{quantile=`
	found := false
	for _, line := range strings.Split(rtText, "\n") {
		if strings.HasPrefix(line, re) && strings.Contains(line, `trace_id="`+traceID+`"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("router latency histogram lacks a trace exemplar:\n%s", rtText)
	}

	// Build info rides along on the router mux (process-wide registry).
	if !strings.Contains(rtText, "qbs_build_info{") {
		t.Fatal("qbs_build_info missing from the router exposition")
	}
}

// TestTraceCapturesWALAppend drives a sampled write through the router
// and asserts the primary's WAL append shows up as a child span in the
// trace fetched back through the router.
func TestTraceCapturesWALAppend(t *testing.T) {
	fix := newPrimaryFixture(t, 1<<20, PrimaryOptions{})
	rt := NewRouter(fix.ts.URL, nil, RouterOptions{HealthInterval: time.Hour, Seed: 1})
	t.Cleanup(rt.Stop)
	rtTS := httptest.NewServer(rt)
	t.Cleanup(rtTS.Close)

	// Pick a non-edge so the insert actually applies (and therefore logs).
	u, v := graph.V(150), graph.V(151)
	for fix.d.HasEdge(u, v) {
		v++
	}

	const traceID = "feedfacecafebeef"
	body := strings.NewReader(`{"u":` + strconv.Itoa(int(u)) + `,"v":` + strconv.Itoa(int(v)) + `}`)
	req, _ := http.NewRequest(http.MethodPost, rtTS.URL+"/edges", body)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-0000000000000000"+traceID+"-0000000000000001-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed write: status %d", resp.StatusCode)
	}

	st := waitForTrace(t, rtTS.URL, traceID, "router", "router.attempt", "/edges", "wal.append")
	edges := spanByName(t, st, "/edges")
	wal := spanByName(t, st, "wal.append")
	if wal.ParentID != edges.SpanID {
		t.Fatalf("wal.append parented to %q, want the /edges server root %s", wal.ParentID, edges.SpanID)
	}
	if _, ok := attrInt(wal, "epoch"); !ok {
		t.Fatalf("wal.append span missing epoch attr: %v", wal.Attrs)
	}
}
