package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"qbs/internal/datasets"
	"qbs/internal/workload"
)

// TestMultiProcessReplicationSmoke is the CI replication smoke: real
// qbs-server processes — a primary, one replica, a router — with 500
// MixedOps (writes and reads) driven through the router, asserting zero
// request errors and primary/replica epoch convergence.
func TestMultiProcessReplicationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short mode")
	}
	bin := buildServer(t)
	tmp := t.TempDir()

	pAddr, rAddr, rtAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	pURL, rURL, rtURL := "http://"+pAddr, "http://"+rAddr, "http://"+rtAddr

	const (
		dataset = "DO"
		scale   = 0.1
		seed    = 7
	)
	primary := startProc(t, bin, "-primary", "-data", filepath.Join(tmp, "pdata"),
		"-dataset", dataset, "-scale", fmt.Sprint(scale), "-landmarks", "8",
		"-sync-every", "64", "-addr", pAddr)
	waitHTTP(t, pURL+"/healthz", 60*time.Second)

	replica := startProc(t, bin, "-replica-of", pURL, "-data", filepath.Join(tmp, "rdata"),
		"-poll", "5ms", "-addr", rAddr)
	waitHTTP(t, rURL+"/healthz", 60*time.Second)

	router := startProc(t, bin, "-router", pURL+","+rURL, "-addr", rtAddr)
	waitHTTP(t, rtURL+"/epoch", 60*time.Second)
	_ = router

	// The same deterministic generator the server used: MixedOps over
	// the regenerated analog tracks the evolving edge set, so deletes
	// always target live edges.
	spec, err := datasets.ByKey(dataset)
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Generate(scale)
	ops := workload.MixedOps(g, 500, 0.4, seed)
	queries, inserts, deletes := workload.CountKinds(ops)
	t.Logf("driving %d queries + %d mutations through the router", queries, inserts+deletes)

	client := &http.Client{Timeout: 30 * time.Second}
	for i, op := range ops {
		var resp *http.Response
		var err error
		switch op.Kind {
		case workload.OpQuery:
			resp, err = client.Get(fmt.Sprintf("%s/spg?u=%d&v=%d", rtURL, op.U, op.V))
		case workload.OpInsert:
			resp, err = client.Post(rtURL+"/edges", "application/json",
				strings.NewReader(fmt.Sprintf(`{"u":%d,"v":%d}`, op.U, op.V)))
		case workload.OpDelete:
			req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/edges?u=%d&v=%d", rtURL, op.U, op.V), nil)
			resp, err = client.Do(req)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("op %d (kind %d): status %d: %s", i, op.Kind, resp.StatusCode, body)
		}
	}

	// Convergence: the replica reaches the primary's epoch.
	deadline := time.Now().Add(60 * time.Second)
	for {
		pe, pok := fetchEpoch(client, pURL)
		re, rok := fetchEpoch(client, rURL)
		if pok && rok && pe == re && pe > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: primary epoch %d (ok=%v), replica epoch %d (ok=%v)", pe, pok, re, rok)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The replica's /metrics must agree: zero epoch lag, zero errors on
	// its query endpoints.
	resp, err := client.Get(rURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Endpoints map[string]struct {
			Requests uint64 `json:"requests"`
			Errors   uint64 `json:"errors"`
		} `json:"endpoints"`
		Replication *struct {
			LagEpochs uint64 `json:"lag_epochs"`
		} `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Replication == nil {
		t.Fatal("replica /metrics missing replication section")
	}
	if m.Replication.LagEpochs != 0 {
		t.Fatalf("replica still lagging %d epochs after convergence", m.Replication.LagEpochs)
	}
	for ep, c := range m.Endpoints {
		if c.Errors != 0 {
			t.Fatalf("replica endpoint %s reported %d errors", ep, c.Errors)
		}
	}
	_ = primary
	_ = replica
}

// buildServer compiles cmd/qbs-server once into the test temp dir.
func buildServer(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	bin := filepath.Join(t.TempDir(), "qbs-server")
	cmd := exec.Command("go", "build", "-o", bin, "qbs/cmd/qbs-server")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build qbs-server: %v\n%s", err, out)
	}
	return bin
}

// startProc launches one qbs-server and arranges teardown + log capture.
func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %v: %v", args, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			<-done
		}
		if t.Failed() {
			t.Logf("qbs-server %v output:\n%s", args, out.String())
		}
	})
	return cmd
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

func waitHTTP(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", url)
}

// fetchEpoch reads GET /epoch off a live server.
func fetchEpoch(client *http.Client, base string) (uint64, bool) {
	resp, err := client.Get(base + "/epoch")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	var body struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, false
	}
	return body.Epoch, true
}
