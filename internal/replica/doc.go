// Package replica is the read-scaling subsystem: WAL-shipped read
// replicas of a durable dynamic index, plus an epoch-aware query router
// in front of them.
//
// # Topology
//
//	                  writes (POST/DELETE /edges, POST /checkpoint)
//	clients ──► router ───────────────────────────────► primary
//	               │                                      │  snapshot +
//	               │ reads (GET /spg /distance ...)       │  WAL tail
//	               ├──────────► replica 1 ◄───────────────┤
//	               └──────────► replica 2 ◄───────────────┘
//
// The primary is an ordinary mutable durable server (internal/server
// over a qbs.DynamicIndex with a store) that additionally serves two
// replication endpoints. Replicas are read-only servers that bootstrap
// from the primary's newest snapshot and stay fresh by tailing its
// write-ahead log through the dynamic replay seam — by the
// repair-equals-rebuild invariant they converge to bit-identical
// labels, σ and Δ at every epoch. The router fans reads across healthy
// replicas and forwards writes to the primary.
//
// # Wire protocol
//
// Replication is two HTTP GET endpoints on the primary:
//
//	GET /replication/snapshot?replica=<id>
//
// returns the newest intact snapshot file verbatim (the store's v3
// format, decoded on the replica with the same zero-copy loaders as
// crash recovery). The X-Qbs-Snapshot-Epoch header carries the epoch
// the image captured. Passing a replica id registers a retention lease
// at that epoch before the body is served, so the log suffix the
// replica needs next cannot be pruned while it loads.
//
//	GET /replication/wal?from=<epoch>&replica=<id>&max=<n>
//
// returns the log records with epoch > from, oldest first, at most n of
// them (default 65536). The body is a sequence of fixed-size 25-byte
// frames byte-identical to the on-disk WAL record framing — u32 payload
// length, u32 CRC-32C over the rest, u64 epoch, u8 op (1 insert,
// 2 delete, 3 compaction), u32 u, u32 w — so the replica validates
// shipped records exactly as recovery validates the log. The
// X-Qbs-Wal-Tip header carries the primary's current epoch, from which
// the replica derives its lag (exposed via GET /metrics). An empty body
// means the replica is caught up; it polls again after its poll
// interval. Each request renews the caller's retention lease at `from`.
//
// If the primary cannot supply the contiguous successor of `from` (the
// records were pruned — possible only when the replica's lease expired)
// it answers 410 Gone. The replica then parks its tail loop with
// ErrWALTruncated and keeps serving its last applied epoch on the query
// endpoints — but its /healthz and /epoch turn 503 so routers and
// monitors take it out of rotation; restarting the replica process
// re-bootstraps it from a fresh snapshot. The same 503 gating applies
// when the tail loop has been failing for any other reason (unreachable
// primary, decode or apply errors) past a short grace window: a replica
// that has stopped advancing must not keep passing health checks.
//
// The router answers GET /healthz and GET /metrics locally — its own
// routability (at least one healthy backend) and the routing table —
// rather than proxying them to a random backend; all other GETs fan out
// to the replicas.
//
// Every proxied request carries an X-Qbs-Trace-Id header: the client's
// if it sent one, minted by the router otherwise, and held constant
// across read retries and the primary failover — so one query is one
// trace ID at every hop, correlating the router's routing decision with
// the backend's per-stage spans and slow-query log entry (GET
// /debug/slowlog on any backend). The router's own /metrics additionally
// serves the Prometheus text exposition (?format=prometheus) with
// per-backend pick counters and healthy/epoch/inflight gauges plus
// retry/failover totals; see internal/obs.
//
// # Traceparent hop semantics
//
// Alongside X-Qbs-Trace-Id, every hop speaks the W3C traceparent
// header (00-<trace-id>-<parent-span-id>-<flags>). Inbound, the router
// adopts the client's trace ID and records its root span under the
// client's span ID; the sampled flag (01) force-retains the trace at
// every tier regardless of latency. Outbound, the router opens one
// child span per forward attempt — carrying the backend URL, the
// attempt ordinal, and the response status — and sends a traceparent
// naming *that attempt span* as the parent, so the backend's server
// root attaches under the exact attempt that reached it. After a
// failover the retained tree therefore shows which replica failed and
// which backend finally answered, span by span. The replica's apply
// loop records its own root spans (replica.apply, with wal.fetch and
// apply.batch children) for each non-empty batch it applies — those are
// process-local roots, not children of any request.
//
// GET /debug/traces lists each tier's retained traces; GET
// /debug/traces/{id} on the router assembles the full cross-process
// tree by merging its own spans with each backend's view of the same
// trace ID (backends that dropped the trace contribute nothing). The
// router's retry counter and latency histogram carry OpenMetrics
// exemplars naming retained trace IDs, linking alert series to stored
// trees; see internal/obs and README "Distributed tracing".
//
// # Retention leases
//
// Each registered replica holds a lease (id → lowest epoch still
// needed, renewed by every replication request, expiring after
// PrimaryOptions.LeaseTTL). The primary keeps the store's WAL pruning
// floor at the minimum leased epoch, so checkpoints — which normally
// delete every segment the retained snapshots cover — never delete a
// segment a live replica has yet to fetch. Expired leases lift the
// floor again: a replica that stalls past its TTL re-bootstraps instead
// of holding the log hostage forever.
//
// # Consistency semantics
//
// Replication is asynchronous: a replica serves the epoch it has
// applied, typically one poll interval behind the primary. Reads that
// need read-your-writes pass min_epoch=<epoch> (the epoch a write
// response reported): a replica still behind answers 503 + Retry-After
// and the router retries the read on another backend, falling back to
// the primary, which is always current. A record is fsynced before it
// is ever shipped (ReadWAL flushes batched appends first), so even with
// SyncEvery > 1 a replica can never apply an epoch that a power loss
// erases from the primary — replicas are always at or behind what a
// recovered primary would replay.
//
// A replica applies compaction markers by republishing its state at the
// new epoch (labels are already bit-identical); it never compacts its
// own overlay, so a very long-lived replica accumulates overlay drift
// and should periodically re-bootstrap — the same snapshot fetch as
// cold start.
package replica
