package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"qbs/internal/obs"
	"qbs/internal/store"
)

// evLeaseExpired records a replica retention lease lapsing: the next
// poll from that replica can land on a pruned suffix and 410-park it,
// so the expiry is the first cause in that incident chain.
var evLeaseExpired = obs.DefaultJournal.Def("primary", "lease_expired", obs.LevelWarn)

// Wire protocol constants shared by both ends.
const (
	snapshotPath = "/replication/snapshot"
	walPath      = "/replication/wal"

	hdrSnapshotEpoch = "X-Qbs-Snapshot-Epoch"
	hdrWalTip        = "X-Qbs-Wal-Tip"

	defaultMaxBatch = 1 << 16 // records per /replication/wal response
)

// PrimaryOptions tunes the primary-side replication handler.
type PrimaryOptions struct {
	// LeaseTTL expires replica retention leases that stop renewing
	// (0 = 60s). An expired lease releases its WAL segments to pruning;
	// a replica that outlives its lease parks on the resulting 410 and
	// must be restarted to re-bootstrap from a fresh snapshot. Keep it
	// at several seconds or more: a bootstrapping replica renews every
	// 2s (bootstrapKeepaliveTick), and a TTL inside that cadence can
	// expire its lease mid-download.
	LeaseTTL time.Duration
	// MaxBatch caps records per /replication/wal response (0 = 65536).
	MaxBatch int
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 60 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = defaultMaxBatch
	}
	return o
}

// Primary serves a durable store's snapshot and WAL tail to replicas
// and keeps the store's pruning floor below every live lease. Mount it
// at /replication/ alongside the ordinary serving mux, and Close it
// when the server shuts down (it runs a lease-expiry janitor so a dead
// last replica cannot pin WAL retention forever).
type Primary struct {
	st   *store.Store
	opts PrimaryOptions
	mux  *http.ServeMux

	mu     sync.Mutex
	leases map[string]lease
	closed bool // no new retention promises after Close

	stop chan struct{}
	wg   sync.WaitGroup
}

// lease is one replica's retention claim: records with epoch > epoch
// must survive pruning until seen+TTL.
type lease struct {
	epoch uint64
	seen  time.Time
}

// NewPrimary wraps st's replication read surface in an HTTP handler.
func NewPrimary(st *store.Store, opts PrimaryOptions) *Primary {
	p := &Primary{
		st:     st,
		opts:   opts.withDefaults(),
		leases: map[string]lease{},
		stop:   make(chan struct{}),
	}
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("GET "+snapshotPath, p.handleSnapshot)
	p.mux.HandleFunc("GET "+walPath, p.handleWAL)
	p.wg.Add(1)
	go p.janitor()
	return p
}

// ServeHTTP implements http.Handler.
func (p *Primary) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.mux.ServeHTTP(w, r) }

// Close stops the lease janitor and releases every retention lease,
// lifting the store's WAL pruning floor. The handler itself keeps
// answering reads, but makes no further retention promises — with the
// janitor gone nothing would ever expire a lease again, and a floor
// left parked would pin WAL segments (and disk growth) forever. A
// replica still tailing after Close may find its suffix pruned and
// re-bootstrap, exactly as if its lease had expired.
func (p *Primary) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.wg.Wait()
	p.mu.Lock()
	p.closed = true
	clear(p.leases)
	p.st.SetWALRetain(^uint64(0))
	p.mu.Unlock()
}

// janitor expires leases on a timer: renewals already recompute the
// floor, but when the *last* replica goes away no renewal ever comes,
// and without this sweep its expired lease would pin WAL retention (and
// disk growth) forever.
func (p *Primary) janitor() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.opts.LeaseTTL / 2)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.mu.Lock()
			p.refloorLocked()
			p.mu.Unlock()
		}
	}
}

// renewLease records that replica id still needs records beyond epoch,
// drops expired leases, and pushes the recomputed floor into the store.
func (p *Primary) renewLease(id string, epoch uint64) {
	if id == "" {
		return // anonymous reader: served, but not retained for
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return // the janitor is gone; a lease granted now could never expire
	}
	p.leases[id] = lease{epoch: epoch, seen: time.Now()}
	p.refloorLocked()
}

// refloorLocked drops expired leases and pushes the recomputed floor
// into the store. Caller holds p.mu — the store call stays inside the
// lock so two concurrent recomputations cannot apply floors out of
// order and prune past a live replica.
func (p *Primary) refloorLocked() {
	now := time.Now()
	floor := ^uint64(0)
	for rid, l := range p.leases {
		if now.Sub(l.seen) > p.opts.LeaseTTL {
			delete(p.leases, rid)
			evLeaseExpired.Emit(obs.Str("replica", rid), obs.Int("epoch", int64(l.epoch)))
			continue
		}
		if l.epoch < floor {
			floor = l.epoch
		}
	}
	p.st.SetWALRetain(floor)
}

// Leases returns the live (id, epoch) retention leases — observability
// for tests and operators. Reading the leases also sweeps expired ones
// and refreshes the store's retention floor, so what it reports is
// exactly what pruning will honour.
func (p *Primary) Leases() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refloorLocked()
	out := make(map[string]uint64, len(p.leases))
	for id, l := range p.leases {
		out[id] = l.epoch
	}
	return out
}

func (p *Primary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("replica")
	var (
		f     *os.File
		epoch uint64
	)
	// Resolve the newest snapshot, register the lease at its epoch, then
	// confirm it is *still* the newest before shipping it. A checkpoint
	// completing between resolve and lease can delete the chosen file
	// (KeepSnapshots overflow) or prune the post-snapshot WAL suffix the
	// lease was meant to protect; an unchanged newest epoch on re-check
	// proves no checkpoint landed in that window, so the lease provably
	// covers the shipped epoch. On a retry the checkpoint's own newer
	// snapshot is picked up instead. Once the file is open, later
	// deletion is harmless (the fd keeps the inode).
	for attempt := 0; ; attempt++ {
		path, e, err := p.st.NewestSnapshot()
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		p.renewLease(id, e)
		if _, e2, err2 := p.st.NewestSnapshot(); err2 != nil || e2 != e {
			if attempt < 8 {
				continue
			}
			if err2 != nil {
				httpError(w, http.StatusServiceUnavailable, err2.Error())
			} else {
				httpError(w, http.StatusServiceUnavailable, "snapshot churn: checkpoints outpacing bootstrap; retry")
			}
			return
		}
		f, err = os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				// Pruned between resolve and open: the same transient
				// churn as a failed re-check — retry, and exhaust to the
				// retryable 503, not a server-fault 500.
				if attempt < 8 {
					continue
				}
				httpError(w, http.StatusServiceUnavailable, "snapshot churn: checkpoints outpacing bootstrap; retry")
				return
			}
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		epoch = e
		break
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	w.Header().Set(hdrSnapshotEpoch, strconv.FormatUint(epoch, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

func (p *Primary) handleWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("from") == "" {
		httpError(w, http.StatusBadRequest, "missing required parameter \"from\"")
		return
	}
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter \"from\" must be a non-negative integer, got %q", q.Get("from")))
		return
	}
	max := p.opts.MaxBatch
	if raw := q.Get("max"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter \"max\" must be a positive integer, got %q", raw))
			return
		}
		if n < max {
			max = n
		}
	}
	p.renewLease(q.Get("replica"), from)

	// Read the tip before the records: the log is written before the
	// epoch publishes, so tip read after could trail a shipped record;
	// read before, it can only undercount lag, never invert it.
	tip := p.st.Index().Epoch()
	body := make([]byte, 0, 4096)
	n, limit, gap, err := p.st.ReadWAL(from, max, func(rec store.WALRecord) error {
		body = store.EncodeWALFrame(body, rec)
		return nil
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// An empty read below the durable limit is also a gap: the record for
	// from+1 was fsynced before the scan started, so if the scan cannot
	// see it, it was pruned — without this check a write-quiet primary
	// would keep answering 200/empty and the truncated replica would
	// serve stale data with a healthy-looking tail loop. The comparison
	// must use the limit the scan itself ran against: a fresher
	// DurableEpoch() read here could count a record fsynced *during* the
	// scan and 410 a perfectly caught-up replica into a permanent park.
	// (The durable limit, not the published tip: records past the
	// durability horizon are legitimately withheld, not pruned.)
	if !gap && n == 0 && limit > from {
		gap = true
	}
	if gap {
		httpError(w, http.StatusGone, fmt.Sprintf(
			"log no longer holds epoch %d (pruned); re-bootstrap from /replication/snapshot", from+1))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Header().Set(hdrWalTip, strconv.FormatUint(tip, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// httpError writes the JSON error envelope the serving API uses. The
// message goes through the real JSON encoder: %q would emit Go escapes
// (\x1b and friends, legal in Go strings, illegal in JSON) for control
// bytes that os error strings can carry via file paths.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(append(body, '\n'))
}
