package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qbs"
	"qbs/internal/dynamic"
	"qbs/internal/obs"
	"qbs/internal/server"
	"qbs/internal/store"
)

// ErrWALTruncated reports that the primary pruned past this replica's
// position (410 Gone from /replication/wal): tailing cannot continue
// and the replica must be restarted to re-bootstrap from a snapshot.
var ErrWALTruncated = errors.New("replica: primary pruned past our epoch; re-bootstrap required")

// Options tunes a read replica.
type Options struct {
	// Dir caches the bootstrap snapshot (a temp dir when empty).
	Dir string
	// ID names this replica in the primary's retention leases (a
	// host/pid-derived id when empty).
	ID string
	// MMap maps the bootstrap snapshot instead of reading it.
	MMap bool
	// PollInterval is the WAL tail poll cadence (0 = 25ms); it bounds
	// steady-state replication lag.
	PollInterval time.Duration
	// MaxBatch caps records fetched per poll (0 = 65536).
	MaxBatch int
	// Client issues the replication requests (nil = a client with dial
	// and response-header timeouts but no overall deadline: the snapshot
	// bootstrap streams an arbitrarily large body, and a whole-request
	// timeout would cut it off mid-transfer — the very case the lease
	// keepalive exists to survive. Tail polls are separately bounded by
	// tailPollTimeout). A custom client with an overall Timeout caps the
	// bootstrap download at that timeout.
	Client *http.Client
	// RepairBudget tunes the dynamic repair path as in
	// qbs.DynamicOptions. Compaction is always disabled on replicas:
	// epochs are primary-owned.
	RepairBudget int
	// Journal receives the replica's structured events (bootstrap,
	// tail errors, terminal parks); nil = obs.DefaultJournal.
	Journal *obs.Journal
	// SlowLog sets the serving mux's slow-query log threshold
	// (0 = the server's 100ms default), mirroring qbs-server -slowlog.
	SlowLog time.Duration
}

func (o Options) withDefaults() Options {
	if o.PollInterval <= 0 {
		o.PollInterval = 25 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = defaultMaxBatch
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
			TLSHandshakeTimeout:   10 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
		}}
	}
	if o.ID == "" {
		o.ID = fmt.Sprintf("replica-%d-%d", os.Getpid(), time.Now().UnixNano())
	}
	if o.Journal == nil {
		o.Journal = obs.DefaultJournal
	}
	return o
}

// bootstrapKeepaliveTick is how often a bootstrapping replica renews
// its retention lease while the snapshot downloads and restores.
// PrimaryOptions.LeaseTTL values below a few of these ticks can expire
// the lease mid-bootstrap and 410-park the replica on its first poll.
const bootstrapKeepaliveTick = 2 * time.Second

// Replica is a live read replica: an index bootstrapped from the
// primary's snapshot, kept fresh by a background WAL tail loop, served
// read-only.
type Replica struct {
	primary string
	opts    Options
	dir     string // bootstrap snapshot cache
	ownDir  bool   // dir was auto-created; removed on Stop
	d       *dynamic.Index
	qd      *qbs.DynamicIndex

	tip          atomic.Uint64 // primary epoch from the last poll
	fetched      atomic.Uint64 // records applied over the replica's lifetime
	failing      atomic.Pointer[error]
	failingSince atomic.Int64 // unix nanos of the first poll failure in the current streak (0 = healthy)

	// Apply-path series on the replica's own registry, stacked onto the
	// serving mux's Prometheus exposition by Handler().
	reg     *obs.Registry
	applyNs *obs.Histogram // ApplyStream latency per non-empty batch
	applied *obs.Counter   // WAL records applied

	// Structured events: the tail loop's failure and recovery
	// transitions, which previously only surfaced as a health-check
	// flip with the error string lost.
	journal       *obs.Journal
	evBootstrap   *obs.EventDef
	evTailError   *obs.EventDef
	evTailRecover *obs.EventDef
	evParked      *obs.EventDef

	stop chan struct{}
	wg   sync.WaitGroup
}

// Journal returns the journal the replica's events land in.
func (r *Replica) Journal() *obs.Journal { return r.journal }

// Registry returns the replica's metrics registry (apply-batch latency
// and applied-record series).
func (r *Replica) Registry() *obs.Registry { return r.reg }

// Start bootstraps a replica of the primary at primaryURL — fetches the
// newest snapshot, loads it with the zero-copy snapshot loader, and
// begins tailing the WAL — and returns once the replica is serving
// (possibly still behind; see Status for lag).
func Start(primaryURL string, opts Options) (*Replica, error) {
	opts = opts.withDefaults()
	primaryURL = strings.TrimRight(primaryURL, "/")
	if _, err := url.Parse(primaryURL); err != nil {
		return nil, fmt.Errorf("replica: primary url: %w", err)
	}
	dir, ownDir := opts.Dir, false
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "qbs-replica-"); err != nil {
			return nil, err
		}
		ownDir = true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	cleanup := func() {
		if ownDir {
			os.RemoveAll(dir)
		}
	}
	// A bootstrap can outlast the primary's lease TTL (big snapshot,
	// slow link, long restore): keep the retention lease warm with tiny
	// WAL fetches until tailing proper takes over, or a checkpoint in
	// that window could prune the suffix this replica is about to need.
	keepStop := make(chan struct{})
	var keepWG sync.WaitGroup
	keepLease := func(epoch uint64) {
		keepWG.Add(1)
		go func() {
			defer keepWG.Done()
			// Renew well inside any sane LeaseTTL (the primary documents
			// ~3× this tick as its floor). The fetch is max=1 — one tiny
			// request per tick, only while the bootstrap is in flight.
			ticker := time.NewTicker(bootstrapKeepaliveTick)
			defer ticker.Stop()
			for {
				select {
				case <-keepStop:
					return
				case <-ticker.C:
					resp, err := opts.Client.Get(fmt.Sprintf("%s%s?from=%d&replica=%s&max=1",
						primaryURL, walPath, epoch, url.QueryEscape(opts.ID)))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						_ = resp.Body.Close()
					}
				}
			}
		}()
	}
	endKeep := func() {
		close(keepStop)
		keepWG.Wait()
	}
	path, epoch, err := fetchSnapshot(opts.Client, primaryURL, opts.ID, dir, keepLease)
	if err != nil {
		endKeep()
		cleanup()
		return nil, err
	}
	d, _, err := store.LoadSnapshot(path, opts.MMap, dynamic.Options{
		RepairBudget:    opts.RepairBudget,
		CompactFraction: -1, // replicas never self-compact: epochs are primary-owned
	})
	endKeep()
	if err != nil {
		cleanup()
		return nil, err
	}

	r := &Replica{
		primary: primaryURL,
		opts:    opts,
		dir:     dir,
		ownDir:  ownDir,
		d:       d,
		qd:      qbs.AdoptDynamic(d),
		reg:     obs.NewRegistry(),
		stop:    make(chan struct{}),
	}
	r.applyNs = r.reg.Histogram("qbs_replica_apply_batch_ns", "")
	r.applied = r.reg.Counter("qbs_replica_applied_records_total", "")
	r.journal = opts.Journal
	r.evBootstrap = r.journal.Def("replica", "bootstrap", obs.LevelInfo)
	// Tail errors repeat every poll tick while the primary is down;
	// rate-limit so a long outage keeps room in the ring for other tiers.
	r.evTailError = r.journal.DefRate("replica", "tail_error", obs.LevelError, 2, 4)
	r.evTailRecover = r.journal.Def("replica", "tail_recovered", obs.LevelInfo)
	r.evParked = r.journal.Def("replica", "wal_truncated", obs.LevelError)
	r.tip.Store(epoch)
	r.evBootstrap.Emit(obs.Str("replica", opts.ID), obs.Int("epoch", int64(epoch)))
	r.wg.Add(1)
	go r.tailLoop()
	return r, nil
}

// bootstrapStallTimeout aborts a snapshot download whose body stops
// flowing: the transfer may legitimately take arbitrarily long (that is
// why the default client has no overall deadline), but a stalled-open
// connection must convert to an error — otherwise Start hangs forever
// while the lease keepalive pins the primary's WAL retention.
const bootstrapStallTimeout = 30 * time.Second

// fetchSnapshot downloads the primary's newest snapshot into dir and
// returns its path and epoch. onEpoch fires as soon as the epoch header
// arrives (before the body transfers) so the caller can start its lease
// keepalive. The write is atomic (temp file + rename) so a killed
// replica never leaves a half-written bootstrap image for its successor
// to trip over.
func fetchSnapshot(client *http.Client, primary, id, dir string, onEpoch func(uint64)) (string, uint64, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		primary+snapshotPath+"?replica="+url.QueryEscape(id), nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("replica: fetch snapshot: %w", err)
	}
	defer resp.Body.Close()
	// Watchdog: cancel the request when a full stall interval passes
	// with zero bytes of body progress.
	var progress atomic.Int64
	watchStop := make(chan struct{})
	defer close(watchStop)
	go func() {
		ticker := time.NewTicker(bootstrapStallTimeout)
		defer ticker.Stop()
		last := int64(0)
		for {
			select {
			case <-watchStop:
				return
			case <-ticker.C:
				cur := progress.Load()
				if cur == last {
					cancel()
					return
				}
				last = cur
			}
		}
	}()
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("replica: fetch snapshot: primary answered %s", resp.Status)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(hdrSnapshotEpoch), 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("replica: fetch snapshot: bad %s header %q", hdrSnapshotEpoch, resp.Header.Get(hdrSnapshotEpoch))
	}
	if onEpoch != nil {
		onEpoch(epoch)
	}
	final := filepath.Join(dir, "bootstrap.qbss")
	tmp, err := os.CreateTemp(dir, "bootstrap-*.qbss.tmp")
	if err != nil {
		return "", 0, err
	}
	if _, err := io.Copy(tmp, progressReader{resp.Body, &progress}); err != nil {
		_ = tmp.Close()
		os.Remove(tmp.Name())
		if ctx.Err() != nil {
			err = fmt.Errorf("no body progress for %v (stalled transfer): %w", bootstrapStallTimeout, err)
		}
		return "", 0, fmt.Errorf("replica: fetch snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", 0, err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return "", 0, err
	}
	return final, epoch, nil
}

// progressReader counts bytes through for the bootstrap stall watchdog.
type progressReader struct {
	r io.Reader
	n *atomic.Int64
}

func (p progressReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	p.n.Add(int64(n))
	return n, err
}

// tailLoop polls the primary's WAL until Stop. Transient fetch errors
// are retried on the next tick — the tail resumes from the last applied
// epoch, so an interrupted replica catches up exactly where it left
// off. A 410 (pruned past us) is terminal: the loop parks with
// ErrWALTruncated and the replica keeps serving its last epoch.
func (r *Replica) tailLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.opts.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			for {
				select {
				case <-r.stop:
					return // don't let a long catch-up drain block Stop
				default:
				}
				pollStart := time.Now()
				n, err := r.pollOnce()
				if err != nil {
					r.failing.Store(&err)
					// The streak starts when the failing poll *started*:
					// a poll that hung before erroring already spent its
					// whole duration not advancing, and that time counts
					// against the health grace window.
					r.failingSince.CompareAndSwap(0, pollStart.UnixNano())
					if errors.Is(err, ErrWALTruncated) {
						r.evParked.Emit(obs.Str("replica", r.opts.ID), obs.Int("epoch", int64(r.d.Epoch())))
						return
					}
					r.evTailError.Emit(obs.Str("replica", r.opts.ID), obs.Str("error", err.Error()))
					break
				}
				if r.failingSince.Load() != 0 {
					r.evTailRecover.Emit(obs.Str("replica", r.opts.ID), obs.Int("epoch", int64(r.d.Epoch())))
				}
				r.failing.Store(nil)
				r.failingSince.Store(0)
				// Drained when the primary had nothing, or we have
				// reached the tip it reported. Comparing n against our
				// own MaxBatch would throttle catch-up to one of the
				// *primary's* (possibly smaller) batches per tick.
				if n == 0 || r.d.Epoch() >= r.tip.Load() {
					break // wait for the next tick
				}
			}
		}
	}
}

// tailPollTimeout bounds one WAL fetch end to end. The configured
// client's own timeout (default 30s) is sized for the snapshot
// download; a tail poll moves at most MaxBatch small frames, and a
// black-holed primary (dropping packets, not refusing) must convert to
// a poll error quickly or the health gate's grace window never starts
// counting — this cap bounds stale-but-healthy serving to roughly
// tailPollTimeout + the grace window instead of the client timeout.
const tailPollTimeout = 5 * time.Second

// pollOnce fetches and applies one batch of records past the replica's
// current epoch, returning how many arrived.
func (r *Replica) pollOnce() (int, error) {
	from := r.d.Epoch()
	fetchStart := time.Now()
	u := fmt.Sprintf("%s%s?from=%d&replica=%s&max=%d",
		r.primary, walPath, from, url.QueryEscape(r.opts.ID), r.opts.MaxBatch)
	ctx, cancel := context.WithTimeout(context.Background(), tailPollTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return 0, ErrWALTruncated
	default:
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("replica: wal fetch: primary answered %s", resp.Status)
	}
	if tip, err := strconv.ParseUint(resp.Header.Get(hdrWalTip), 10, 64); err == nil {
		r.tip.Store(tip)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, int64(r.opts.MaxBatch+1)*store.WALRecordSize))
	if err != nil {
		return 0, err
	}
	ops := make([]dynamic.ReplayOp, 0, len(body)/store.WALRecordSize)
	for off := 0; off+store.WALRecordSize <= len(body); off += store.WALRecordSize {
		rec, err := store.DecodeWALFrame(body[off:])
		if err != nil {
			return len(ops), fmt.Errorf("replica: %w", err)
		}
		ops = append(ops, dynamic.ReplayOp{
			Epoch:   rec.Epoch,
			U:       rec.U,
			W:       rec.W,
			Insert:  rec.Op == store.WALInsert,
			Compact: rec.Op == store.WALCompact,
		})
	}
	// Non-empty batches get a root trace: the tail fetch and the apply
	// are its child spans, so a lagging replica's slow batches show up
	// in /debug/traces with the hop (fetch vs apply) attributed. Empty
	// polls are not traced — a 5s long-poll wait is not a slow apply.
	var tb *obs.TraceBuf
	if len(ops) > 0 {
		tb = obs.DefaultTracer.Begin("replica.apply", "", 0, false)
		root := tb.Root()
		root.SetStr("replica", r.opts.ID)
		root.SetInt("records", int64(len(ops)))
		root.SetInt("from_epoch", int64(from))
		tb.AddSpan("wal.fetch", fetchStart, time.Since(fetchStart))
	}
	applyStart := time.Now()
	if _, err := r.d.ApplyStream(ops); err != nil {
		tb.MarkError()
		obs.DefaultTracer.Finish(tb)
		return len(ops), fmt.Errorf("replica: apply: %w", err)
	}
	applyDur := time.Since(applyStart)
	if len(ops) > 0 {
		tb.AddSpan("apply.batch", applyStart, applyDur)
		r.applyNs.Observe(applyDur)
		r.applied.Add(int64(len(ops)))
	}
	// The primary only ships epochs past `from`, so a full apply must
	// land exactly on the last shipped epoch. Falling short means some
	// op was silently skipped as "already covered" — i.e. this index
	// advanced outside the tail loop (a local write on the adopted
	// serving index) and is now diverging; fail loudly instead of
	// serving corrupt answers with zero reported lag.
	if len(ops) > 0 && r.d.Epoch() != ops[len(ops)-1].Epoch {
		tb.MarkError()
		obs.DefaultTracer.Finish(tb)
		return len(ops), fmt.Errorf("replica: index at epoch %d after applying through %d — local writes bypassed the tail loop; restart the replica",
			r.d.Epoch(), ops[len(ops)-1].Epoch)
	}
	if id, kept := obs.DefaultTracer.Finish(tb); kept {
		r.applyNs.SetExemplar(int64(applyDur), id)
	}
	r.fetched.Add(uint64(len(ops)))
	return len(ops), nil
}

// Index returns the replica's serving surface (reads only are
// meaningful; it has no durable store and must not be written to).
func (r *Replica) Index() *qbs.DynamicIndex { return r.qd }

// Dynamic exposes the underlying dynamic index for white-box state
// comparisons in tests and the bench harness.
func (r *Replica) Dynamic() *dynamic.Index { return r.d }

// Epoch returns the last epoch the replica has applied and published.
func (r *Replica) Epoch() uint64 { return r.d.Epoch() }

// Err returns the current tail-loop failure, if any (nil while the
// loop is healthy; errors.Is(err, ErrWALTruncated) once tailing has
// parked for good).
func (r *Replica) Err() error {
	if errp := r.failing.Load(); errp != nil {
		return *errp
	}
	return nil
}

// Status reports replication lag for /metrics.
func (r *Replica) Status() server.ReplicationStatus {
	epoch := r.d.Epoch()
	tip := r.tip.Load()
	if tip < epoch {
		tip = epoch
	}
	return server.ReplicationStatus{
		PrimaryEpoch: tip,
		Epoch:        epoch,
		LagBytes:     int64(tip-epoch) * store.WALRecordSize,
	}
}

// unhealthyAfter is how long the tail loop may fail continuously before
// the replica stops passing health checks: a grace window for transient
// primary hiccups (a restart, a dropped connection) so one bad poll does
// not flap the routing table. Worst-case detection of a stopped replica
// is tailPollTimeout (a hanging poll must first time out) plus this
// window.
func (r *Replica) unhealthyAfter() time.Duration {
	if d := 10 * r.opts.PollInterval; d > time.Second {
		return d
	}
	return time.Second
}

// unhealthy reports why the replica should fail health checks: a
// terminal park (ErrWALTruncated) immediately, or any other tail-loop
// error that has persisted past the grace window — a replica whose
// polls keep failing (apply divergence, decode errors, unreachable
// primary) has stopped advancing just as surely as a parked one, and
// must not keep answering 200 until lag-based eviction notices.
func (r *Replica) unhealthy() (error, bool) {
	err := r.Err()
	if err == nil {
		return nil, false
	}
	if errors.Is(err, ErrWALTruncated) {
		return err, true
	}
	since := r.failingSince.Load()
	return err, since != 0 && time.Since(time.Unix(0, since)) > r.unhealthyAfter()
}

// Handler returns the replica's HTTP read surface: the ordinary
// read-only dynamic API (/spg, /distance, /sketch, /paths, /stats,
// /epoch, /healthz) plus /metrics with replication lag. min_epoch
// gating comes with the server: a read the replica cannot yet answer
// consistently gets 503 + Retry-After.
//
// Once the tail loop has parked terminally (ErrWALTruncated) — or has
// been failing for longer than the grace window for any other reason —
// /healthz and /epoch turn 503 so routers and monitors take the frozen
// replica out of rotation; otherwise it would keep passing health
// checks and serve silently stale answers until drift happened to
// exceed the router's lag bound. The query endpoints stay up for direct
// debugging.
func (r *Replica) Handler() http.Handler {
	srv := server.NewDynamicReadOnly(r.qd)
	srv.SetReplicationStatus(r.Status)
	srv.AddRegistry(r.reg)
	srv.SetJournal(r.journal)
	if r.opts.SlowLog > 0 {
		srv.SetSlowLogThreshold(r.opts.SlowLog)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/healthz" || req.URL.Path == "/epoch" {
			if err, bad := r.unhealthy(); bad {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable,
					fmt.Sprintf("replica not advancing: %v", err))
				return
			}
		}
		srv.ServeHTTP(w, req)
	})
}

// Stop ends the tail loop. The replica keeps serving its last applied
// epoch; it just stops advancing. An auto-created cache dir is removed
// (unlinking under a live arena view is safe: the mapping or heap copy
// outlives the file).
func (r *Replica) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
	if r.ownDir {
		os.RemoveAll(r.dir)
	}
}
