package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"qbs/internal/obs"
)

// TestObservabilitySmoke is the CI observability smoke: a real
// qbs-server process scraped over Prometheus text (validated: parseable,
// no duplicate series, no interleaved families), a 1-second CPU profile
// pulled from the -debug-addr side channel, and a qbs-bench -json run
// whose record must carry the query latency percentiles.
func TestObservabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short mode")
	}
	bin := buildServer(t)
	addr, dbgAddr := freeAddr(t), freeAddr(t)
	url, dbgURL := "http://"+addr, "http://"+dbgAddr

	startProc(t, bin, "-dataset", "DO", "-scale", "0.1", "-landmarks", "8",
		"-addr", addr, "-debug-addr", dbgAddr, "-slowlog", "1ns",
		"-log-level", "debug", "-profile-every", "1s")
	waitHTTP(t, url+"/healthz", 60*time.Second)

	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 5; i++ {
		resp, err := client.Get(fmt.Sprintf("%s/spg?u=0&v=%d", url, 10+i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: status %d", i, resp.StatusCode)
		}
	}

	// Prometheus scrape on the serving mux: valid exposition with the
	// per-endpoint and query-stage series.
	resp, err := client.Get(url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{"qbs_http_requests_total", "qbs_query_stage_ns", "qbs_goroutines"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("exposition missing %q", want)
		}
	}

	// The slow log captured the queries (threshold forced to 1ns).
	resp, err = client.Get(url + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	var slow struct {
		Entries []struct {
			TraceID string `json:"trace_id"`
		} `json:"entries"`
	}
	err = json.NewDecoder(resp.Body).Decode(&slow)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Entries) == 0 || slow.Entries[0].TraceID == "" {
		t.Fatalf("slowlog empty or missing trace IDs: %+v", slow)
	}

	// The debug side channel serves pprof: pull a 1-second CPU profile.
	// Go has one CPU profiler per process, so the fetch answers 500
	// whenever the flight recorder's own capture holds it — retry, as an
	// operator would.
	profClient := &http.Client{Timeout: 30 * time.Second}
	pprofDeadline := time.Now().Add(20 * time.Second)
	for {
		resp, err = profClient.Get(dbgURL + "/debug/pprof/profile?seconds=1")
		if err != nil {
			t.Fatal(err)
		}
		prof, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK && len(prof) > 0 {
			break
		}
		if time.Now().After(pprofDeadline) {
			t.Fatalf("pprof profile: status %d, %d bytes", resp.StatusCode, len(prof))
		}
		time.Sleep(200 * time.Millisecond)
	}

	// The event journal rides on the serving mux: -log-level debug means
	// process lifecycle (and any debug-level engine records) are
	// admitted, and every event names its component and level.
	resp, err = client.Get(url + "/debug/logs?n=50")
	if err != nil {
		t.Fatal(err)
	}
	var logs struct {
		MinLevel string `json:"journal_min_level"`
		Events   []struct {
			Component string `json:"component"`
			Event     string `json:"event"`
			Level     string `json:"level"`
		} `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&logs)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if logs.MinLevel != "debug" {
		t.Fatalf("journal min level %q, want debug (-log-level)", logs.MinLevel)
	}
	lifecycle := false
	for _, ev := range logs.Events {
		if ev.Component == "" || ev.Event == "" || ev.Level == "" {
			t.Fatalf("malformed journal event: %+v", ev)
		}
		lifecycle = lifecycle || (ev.Component == "process" && ev.Event == "lifecycle")
	}
	if !lifecycle {
		t.Fatalf("journal holds no process lifecycle event: %+v", logs.Events)
	}

	// The default SLOs are live and burn-rate windows render.
	resp, err = client.Get(url + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var slos struct {
		SLOs []obs.SLOView `json:"slos"`
	}
	err = json.NewDecoder(resp.Body).Decode(&slos)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(slos.SLOs) == 0 || len(slos.SLOs[0].Windows) == 0 {
		t.Fatalf("/debug/slo empty or missing burn windows: %+v", slos)
	}

	// -profile-every has the flight recorder sampling: wait for a
	// capture, then pull its raw pprof bytes by ID.
	var profs struct {
		Profiles []struct {
			ID   uint64 `json:"id"`
			Kind string `json:"kind"`
		} `json:"profiles"`
	}
	profDeadline := time.Now().Add(15 * time.Second)
	for len(profs.Profiles) == 0 {
		if time.Now().After(profDeadline) {
			t.Fatal("flight recorder captured nothing with -profile-every 100ms")
		}
		time.Sleep(100 * time.Millisecond)
		resp, err = client.Get(url + "/debug/profiles")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&profs)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	p := profs.Profiles[0]
	resp, err = client.Get(fmt.Sprintf("%s/debug/profiles/%d", url, p.ID))
	if err != nil {
		t.Fatal(err)
	}
	rawProf, _ := io.ReadAll(resp.Body)
	kind := resp.Header.Get("X-Qbs-Profile-Kind")
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(rawProf) == 0 || kind != p.Kind {
		t.Fatalf("profile %d: status %d, %d bytes, kind %q (want %q)",
			p.ID, resp.StatusCode, len(rawProf), kind, p.Kind)
	}

	// The journal also renders on the -debug-addr side channel.
	resp, err = client.Get(dbgURL + "/debug/logs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	code := resp.StatusCode
	_ = resp.Body.Close()
	if code != http.StatusOK {
		t.Fatalf("debug side-channel /debug/logs: status %d", code)
	}

	// qbs-bench -json: the perf record carries p50/p99 and the
	// histogram summary.
	benchBin := buildBinary(t, "qbs/cmd/qbs-bench")
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	cmd := exec.Command(benchBin, "-json", jsonPath, "-datasets", "DO", "-scale", "0.05", "-queries", "64")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("qbs-bench -json: %v\n%s", err, out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Datasets []struct {
			QueryP50Ns int64 `json:"query_p50_ns"`
			QueryP99Ns int64 `json:"query_p99_ns"`
			Histogram  struct {
				Count uint64 `json:"count"`
				P50   int64  `json:"p50_ns"`
				P99   int64  `json:"p99_ns"`
			} `json:"latency_histogram"`
		} `json:"datasets"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Datasets) != 1 {
		t.Fatalf("%d datasets in bench record, want 1", len(snap.Datasets))
	}
	d := snap.Datasets[0]
	if d.QueryP50Ns <= 0 || d.QueryP99Ns < d.QueryP50Ns {
		t.Fatalf("bad percentiles: p50=%d p99=%d", d.QueryP50Ns, d.QueryP99Ns)
	}
	if d.Histogram.Count != 64 || d.Histogram.P50 <= 0 || d.Histogram.P99 < d.Histogram.P50 {
		t.Fatalf("bad histogram summary: %+v", d.Histogram)
	}
}

// buildBinary compiles one main package into the test temp dir.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}
