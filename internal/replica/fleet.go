package replica

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"qbs/internal/obs"
)

// Fleet view: the router already probes every backend for health; the
// fleet scraper goes one layer deeper on a slower cadence, pulling each
// backend's /metrics exposition and /debug/slo so one endpoint answers
// "which box is the problem" — per-backend epoch, error-event volume,
// burn rates, and anomaly flags — without an operator visiting N muxes.

// fleetStallScrapes is how many consecutive scrapes a backend's epoch
// may sit frozen — while the primary's advances — before the backend is
// flagged stalled. One scrape of tolerance absorbs sampling skew
// between the primary's scrape and the replica's.
const fleetStallScrapes = 2

// FleetBackend is one backend's row in /debug/fleet.
type FleetBackend struct {
	URL       string `json:"url"`
	Role      string `json:"role"`
	Reachable bool   `json:"reachable"`
	Healthy   bool   `json:"healthy"` // the router's routing bit
	// Epoch is the backend's own qbs_epoch sample — what the backend
	// says it serves, as opposed to the probe-loop epoch the router
	// routes on.
	Epoch       uint64        `json:"epoch"`
	Inflight    float64       `json:"inflight"`
	ErrorEvents float64       `json:"error_events_total"`
	FastBurn    bool          `json:"fast_burn"`
	SLOs        []obs.SLOView `json:"slos,omitempty"`
	Anomalies   []string      `json:"anomalies,omitempty"`
}

// fleetState is the double-buffered scrape result plus the stall
// bookkeeping that spans scrapes.
type fleetState struct {
	mu        sync.Mutex
	rows      map[*backend]*FleetBackend
	scrapedAt int64 // unix nanos of the last completed sweep

	lastEpoch  map[*backend]uint64
	frozenFor  map[*backend]int // consecutive scrapes with a frozen epoch
	lastTip    uint64           // primary epoch at the previous scrape
	anomalyCnt int
}

func newFleetState() *fleetState {
	return &fleetState{
		rows:      map[*backend]*FleetBackend{},
		lastEpoch: map[*backend]uint64{},
		frozenFor: map[*backend]int{},
	}
}

// row returns the last scraped row for b (zero-valued before the first
// sweep finishes).
func (fs *fleetState) row(b *backend) FleetBackend {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if r := fs.rows[b]; r != nil {
		return *r
	}
	return FleetBackend{URL: b.url, Role: b.role}
}

// fleetLoop re-scrapes the fleet on the configured cadence.
func (rt *Router) fleetLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opts.FleetInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.scrapeFleet()
		}
	}
}

// scrapeFleet pulls every backend's exposition and SLO state and
// recomputes the anomaly flags.
func (rt *Router) scrapeFleet() {
	type scraped struct {
		b   *backend
		row *FleetBackend
	}
	backends := append([]*backend{rt.primary}, rt.replicas...)
	results := make([]scraped, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			results[i] = scraped{b, rt.scrapeBackend(b)}
		}(i, b)
	}
	wg.Wait()

	fs := rt.fleet
	fs.mu.Lock()
	defer fs.mu.Unlock()
	tip := results[0].row.Epoch // primary scraped first
	tipAdvanced := tip > fs.lastTip
	anomalies := 0
	for _, res := range results {
		row := res.row
		row.Healthy = res.b.healthy.Load()
		if !row.Reachable {
			row.Anomalies = append(row.Anomalies, "unreachable")
		} else if res.b != rt.primary {
			// Stall detection: the backend answers its mux but its epoch
			// is frozen while the primary's advances — the replica serves
			// stale answers with a working HTTP surface, the failure mode
			// health probes alone cannot see quickly.
			if row.Epoch == fs.lastEpoch[res.b] && tipAdvanced {
				fs.frozenFor[res.b]++
			} else if row.Epoch != fs.lastEpoch[res.b] {
				fs.frozenFor[res.b] = 0
			}
			if fs.frozenFor[res.b] >= fleetStallScrapes && row.Epoch < tip {
				row.Anomalies = append(row.Anomalies, "stalled")
			}
			fs.lastEpoch[res.b] = row.Epoch
		}
		if row.FastBurn {
			row.Anomalies = append(row.Anomalies, "slo_fast_burn")
		}
		anomalies += len(row.Anomalies)
		fs.rows[res.b] = row
	}
	fs.lastTip = tip
	fs.anomalyCnt = anomalies
	fs.scrapedAt = time.Now().UnixNano()
}

// scrapeBackend fetches one backend's /metrics (Prometheus text) and
// /debug/slo. Partial answers degrade gracefully: a backend without the
// SLO endpoint still contributes its metric samples.
func (rt *Router) scrapeBackend(b *backend) *FleetBackend {
	row := &FleetBackend{URL: b.url, Role: b.role}
	body, ok := rt.fleetGet(b.url + "/metrics?format=prometheus")
	if !ok {
		return row
	}
	row.Reachable = true
	for _, s := range obs.ParseSamples(body) {
		switch s.Name {
		case "qbs_epoch":
			row.Epoch = uint64(s.Value)
		case "qbs_http_inflight":
			row.Inflight += s.Value
		case "qbs_events_total":
			if lvl, ok := s.Label("level"); ok && lvl == "error" {
				row.ErrorEvents += s.Value
			}
		}
	}
	if body, ok := rt.fleetGet(b.url + "/debug/slo"); ok {
		var resp struct {
			SLOs []obs.SLOView `json:"slos"`
		}
		if json.Unmarshal(body, &resp) == nil {
			row.SLOs = resp.SLOs
			for _, v := range resp.SLOs {
				row.FastBurn = row.FastBurn || v.FastBurn
			}
		}
	}
	return row
}

func (rt *Router) fleetGet(url string) ([]byte, bool) {
	resp, err := rt.probeClient.Get(url)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return nil, false
	}
	return body, true
}

// registerFleetSeries exposes b's scraped state as qbs_fleet_* gauges
// on the router registry (distinct from qbs_router_backend_*, which is
// the probe loop's routing view).
func (rt *Router) registerFleetSeries(b *backend) {
	lbl := `backend="` + obs.EscapeLabel(b.url) + `",role="` + b.role + `"`
	bool01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	rt.reg.GaugeFunc("qbs_fleet_backend_up", lbl, func() float64 {
		return bool01(rt.fleet.row(b).Reachable)
	})
	rt.reg.GaugeFunc("qbs_fleet_backend_epoch", lbl, func() float64 {
		return float64(rt.fleet.row(b).Epoch)
	})
	rt.reg.GaugeFunc("qbs_fleet_backend_error_events", lbl, func() float64 {
		return rt.fleet.row(b).ErrorEvents
	})
	rt.reg.GaugeFunc("qbs_fleet_backend_anomalous", lbl, func() float64 {
		return bool01(len(rt.fleet.row(b).Anomalies) > 0)
	})
}

// ScrapeFleetNow forces one synchronous fleet sweep — tests and the
// first /debug/fleet hit after startup use it instead of waiting a
// cadence.
func (rt *Router) ScrapeFleetNow() { rt.scrapeFleet() }

// FleetAnomalies returns every currently flagged (backend URL, anomaly)
// pair, for tests and the qbs-server log line.
func (rt *Router) FleetAnomalies() map[string][]string {
	out := map[string][]string{}
	fs := rt.fleet
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for b, row := range fs.rows {
		if len(row.Anomalies) > 0 {
			out[b.url] = append([]string(nil), row.Anomalies...)
		}
	}
	return out
}

// serveFleet renders /debug/fleet: one row per backend plus the sweep
// timestamp. A sweep is forced when none has completed yet.
func (rt *Router) serveFleet(w http.ResponseWriter, _ *http.Request) {
	fs := rt.fleet
	fs.mu.Lock()
	stale := fs.scrapedAt == 0
	fs.mu.Unlock()
	if stale {
		rt.scrapeFleet()
	}
	fs.mu.Lock()
	resp := struct {
		ScrapedUnixNs int64          `json:"scraped_unix_ns"`
		AnomalyCount  int            `json:"anomaly_count"`
		Backends      []FleetBackend `json:"backends"`
	}{ScrapedUnixNs: fs.scrapedAt, AnomalyCount: fs.anomalyCnt}
	for _, b := range append([]*backend{rt.primary}, rt.replicas...) {
		if row := fs.rows[b]; row != nil {
			resp.Backends = append(resp.Backends, *row)
		} else {
			resp.Backends = append(resp.Backends, FleetBackend{URL: b.url, Role: b.role})
		}
	}
	fs.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
