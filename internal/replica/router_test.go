package replica

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a scriptable upstream: answers /epoch and /spg with
// configurable status, and counts what reaches it.
type fakeBackend struct {
	name    string
	epoch   atomic.Uint64
	failAll atomic.Bool // every endpoint answers 503
	fail503 atomic.Bool // queries answer 503, /epoch stays healthy
	reads   atomic.Int64
	writes  atomic.Int64
	ts      *httptest.Server
}

func newFakeBackend(t *testing.T, name string, epoch uint64) *fakeBackend {
	t.Helper()
	b := &fakeBackend{name: name}
	b.epoch.Store(epoch)
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b.failAll.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		switch {
		case r.URL.Path == "/epoch":
			fmt.Fprintf(w, `{"epoch":%d,"edges":0}`, b.epoch.Load())
		case r.Method != http.MethodGet:
			b.writes.Add(1)
			fmt.Fprintf(w, `{"applied":true,"epoch":%d,"edges":0}`, b.epoch.Add(1))
		case b.fail503.Load():
			http.Error(w, "behind", http.StatusServiceUnavailable)
		default:
			b.reads.Add(1)
			fmt.Fprintf(w, `{"backend":%q}`, b.name)
		}
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func routeGet(t *testing.T, rt *Router, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestRouterSpreadsReadsAndRoutesWrites: reads land on replicas, writes
// on the primary, and both replicas see traffic.
func TestRouterSpreadsReadsAndRoutesWrites(t *testing.T) {
	prim := newFakeBackend(t, "primary", 10)
	r1 := newFakeBackend(t, "r1", 10)
	r2 := newFakeBackend(t, "r2", 10)
	rt := NewRouter(prim.ts.URL, []string{r1.ts.URL, r2.ts.URL}, RouterOptions{
		HealthInterval: 20 * time.Millisecond, Seed: 1,
	})
	defer rt.Stop()

	for i := 0; i < 60; i++ {
		if rec := routeGet(t, rt, "/spg?u=0&v=1"); rec.Code != 200 {
			t.Fatalf("read %d: status %d", i, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/edges", strings.NewReader(`{"u":0,"v":1}`)))
	if rec.Code != 200 {
		t.Fatalf("write status %d", rec.Code)
	}
	if prim.reads.Load() != 0 {
		t.Fatalf("primary served %d reads while both replicas were healthy", prim.reads.Load())
	}
	if prim.writes.Load() != 1 || r1.writes.Load() != 0 || r2.writes.Load() != 0 {
		t.Fatalf("writes landed wrong: primary=%d r1=%d r2=%d", prim.writes.Load(), r1.writes.Load(), r2.writes.Load())
	}
	if r1.reads.Load() == 0 || r2.reads.Load() == 0 {
		t.Fatalf("reads not spread: r1=%d r2=%d", r1.reads.Load(), r2.reads.Load())
	}
}

// TestRouterFailoverOn503 is the satellite failover test: a replica
// that starts answering 503 loses its reads to the other backends with
// zero client-visible errors, and is evicted once its health probe
// fails too.
func TestRouterFailoverOn503(t *testing.T) {
	prim := newFakeBackend(t, "primary", 10)
	good := newFakeBackend(t, "good", 10)
	bad := newFakeBackend(t, "bad", 10)
	rt := NewRouter(prim.ts.URL, []string{good.ts.URL, bad.ts.URL}, RouterOptions{
		HealthInterval: 20 * time.Millisecond, Seed: 2,
	})
	defer rt.Stop()

	// Phase 1: bad 503s its queries but still answers /epoch. Every
	// routed read must still succeed via retry on the good backends.
	bad.fail503.Store(true)
	for i := 0; i < 40; i++ {
		if rec := routeGet(t, rt, "/distance?u=0&v=1"); rec.Code != 200 {
			t.Fatalf("read %d: status %d (failover failed)", i, rec.Code)
		}
	}
	if good.reads.Load() == 0 {
		t.Fatal("good replica saw no reads")
	}

	// Phase 2: bad fails its health probe entirely → evicted.
	bad.failAll.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := rt.ReplicaHealth()
		if len(h) == 2 && h[0] && !h[1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bad replica not evicted: health=%v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	before := bad.reads.Load()
	for i := 0; i < 20; i++ {
		if rec := routeGet(t, rt, "/distance?u=0&v=1"); rec.Code != 200 {
			t.Fatalf("read %d after eviction: status %d", i, rec.Code)
		}
	}
	if bad.reads.Load() != before {
		t.Fatal("evicted replica still receiving reads")
	}

	// Phase 3: bad recovers → readmitted.
	bad.failAll.Store(false)
	bad.fail503.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if h := rt.ReplicaHealth(); h[1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered replica not readmitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterEvictsLaggingReplica: a replica whose epoch trails the
// primary past MaxLagEpochs is evicted until it catches up.
func TestRouterEvictsLaggingReplica(t *testing.T) {
	prim := newFakeBackend(t, "primary", 5000)
	lagging := newFakeBackend(t, "lagging", 100)
	rt := NewRouter(prim.ts.URL, []string{lagging.ts.URL}, RouterOptions{
		HealthInterval: 20 * time.Millisecond, MaxLagEpochs: 1000, Seed: 3,
	})
	defer rt.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := rt.ReplicaHealth(); !h[0] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lagging replica not evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// With no healthy replica, reads fall back to the primary.
	if rec := routeGet(t, rt, "/distance?u=0&v=1"); rec.Code != 200 {
		t.Fatalf("fallback read status %d", rec.Code)
	}
	if prim.reads.Load() == 0 {
		t.Fatal("primary did not take the fallback read")
	}

	// Catch-up readmits it.
	lagging.epoch.Store(5000)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if h := rt.ReplicaHealth(); h[0] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("caught-up replica not readmitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterAnswersHealthAndMetricsLocally: /healthz and /metrics are
// the router's own endpoints — a load balancer probing the router must
// see the router's routability, not one random backend's health, and
// the routing table is state only the router holds. Neither request may
// be proxied to a backend.
func TestRouterAnswersHealthAndMetricsLocally(t *testing.T) {
	prim := newFakeBackend(t, "primary", 10)
	r1 := newFakeBackend(t, "r1", 10)
	rt := NewRouter(prim.ts.URL, []string{r1.ts.URL}, RouterOptions{
		HealthInterval: 20 * time.Millisecond, Seed: 5,
	})
	defer rt.Stop()

	rec := routeGet(t, rt, "/healthz")
	if rec.Code != 200 {
		t.Fatalf("/healthz status %d", rec.Code)
	}
	if rec.Header().Get("X-Qbs-Backend") != "" {
		t.Fatal("/healthz was proxied to a backend")
	}
	var hz struct {
		Status  string `json:"status"`
		Healthy int    `json:"healthy_backends"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil || hz.Status != "ok" || hz.Healthy != 2 {
		t.Fatalf("/healthz body %q (err %v)", rec.Body.String(), err)
	}

	rec = routeGet(t, rt, "/metrics")
	if rec.Code != 200 || rec.Header().Get("X-Qbs-Backend") != "" {
		t.Fatalf("/metrics status %d, proxied=%v", rec.Code, rec.Header().Get("X-Qbs-Backend") != "")
	}
	var m struct {
		Primary  routerBackendMetrics   `json:"primary"`
		Replicas []routerBackendMetrics `json:"replicas"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Primary.URL != prim.ts.URL || !m.Primary.Healthy || m.Primary.Epoch != 10 {
		t.Fatalf("primary row %+v", m.Primary)
	}
	if len(m.Replicas) != 1 || m.Replicas[0].URL != r1.ts.URL || !m.Replicas[0].Healthy {
		t.Fatalf("replica rows %+v", m.Replicas)
	}
	if got := prim.reads.Load() + r1.reads.Load(); got != 0 {
		t.Fatalf("%d local-endpoint requests reached a backend", got)
	}

	// HEAD routes like GET: /healthz answered locally (load balancers
	// commonly probe with HEAD), and a HEAD read must not be treated as
	// a write and forwarded to the primary.
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("HEAD", "/healthz", nil))
	if rec.Code != 200 || rec.Header().Get("X-Qbs-Backend") != "" {
		t.Fatalf("HEAD /healthz: status %d, proxied=%v", rec.Code, rec.Header().Get("X-Qbs-Backend") != "")
	}
	writesBefore := prim.writes.Load()
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("HEAD", "/spg?u=0&v=1", nil))
	if rec.Code != 200 {
		t.Fatalf("HEAD read: status %d", rec.Code)
	}
	if prim.writes.Load() != writesBefore {
		t.Fatal("HEAD read forwarded to the primary as a write")
	}

	// Every backend down: the router itself reports unroutable.
	prim.failAll.Store(true)
	r1.failAll.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rec := routeGet(t, rt, "/healthz"); rec.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/healthz stayed 200 with every backend down")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
