package replica

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qbs/internal/obs"
)

// traceBackend records the X-Qbs-Trace-Id of every query that reaches
// it and can be told to answer 503 (the retriable signal).
type traceBackend struct {
	mu    sync.Mutex
	ids   []string
	fail  atomic.Bool
	epoch uint64
	ts    *httptest.Server
}

func newTraceBackend(t *testing.T, epoch uint64) *traceBackend {
	t.Helper()
	b := &traceBackend{epoch: epoch}
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/epoch" {
			fmt.Fprintf(w, `{"epoch":%d,"edges":0}`, b.epoch)
			return
		}
		b.mu.Lock()
		b.ids = append(b.ids, r.Header.Get(obs.TraceHeader))
		b.mu.Unlock()
		if b.fail.Load() {
			http.Error(w, "behind", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set(obs.TraceHeader, r.Header.Get(obs.TraceHeader))
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func (b *traceBackend) seen() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.ids...)
}

// TestRouterInjectsTraceID: a read without a client trace ID reaches
// the backend with a router-minted one, and a client-supplied ID passes
// through verbatim.
func TestRouterInjectsTraceID(t *testing.T) {
	prim := newTraceBackend(t, 5)
	r1 := newTraceBackend(t, 5)
	rt := NewRouter(prim.ts.URL, []string{r1.ts.URL}, RouterOptions{
		HealthInterval: time.Hour, Seed: 1,
	})
	defer rt.Stop()

	rec := routeGet(t, rt, "/spg?u=0&v=1")
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	ids := r1.seen()
	if len(ids) != 1 || ids[0] == "" {
		t.Fatalf("backend saw trace IDs %v, want one minted ID", ids)
	}
	if got := rec.Header().Get(obs.TraceHeader); got != ids[0] {
		t.Fatalf("response trace ID %q, backend saw %q", got, ids[0])
	}

	req := httptest.NewRequest("GET", "/spg?u=0&v=1", nil)
	req.Header.Set(obs.TraceHeader, "0123456789abcdef")
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	ids = r1.seen()
	if last := ids[len(ids)-1]; last != "0123456789abcdef" {
		t.Fatalf("client trace ID rewritten to %q", last)
	}
}

// TestRouterRetriesKeepTraceID: when the chosen replicas answer 503
// and the read fails over to the primary, every hop of the one request
// carries the same trace ID — and the retry/failover counters advance.
func TestRouterRetriesKeepTraceID(t *testing.T) {
	prim := newTraceBackend(t, 5)
	r1 := newTraceBackend(t, 5)
	r2 := newTraceBackend(t, 5)
	r1.fail.Store(true)
	r2.fail.Store(true)
	rt := NewRouter(prim.ts.URL, []string{r1.ts.URL, r2.ts.URL}, RouterOptions{
		HealthInterval: time.Hour, Seed: 1,
	})
	defer rt.Stop()

	rec := routeGet(t, rt, "/spg?u=0&v=1")
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var ids []string
	for _, b := range []*traceBackend{r1, r2, prim} {
		ids = append(ids, b.seen()...)
	}
	if len(ids) != 3 {
		t.Fatalf("expected 3 hops, saw %d (%v)", len(ids), ids)
	}
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("trace ID changed across retries: %v", ids)
		}
	}
	if rt.retries.Load() != 2 {
		t.Fatalf("retries %d, want 2", rt.retries.Load())
	}
	if rt.failovers.Load() != 1 {
		t.Fatalf("failovers %d, want 1", rt.failovers.Load())
	}
}

// TestRouterPrometheusMetrics: the router's /metrics answers its
// pre-existing JSON by default and a valid Prometheus exposition with
// the routing-decision series on request; HEAD probes answer 200 with
// no body.
func TestRouterPrometheusMetrics(t *testing.T) {
	prim := newTraceBackend(t, 5)
	r1 := newTraceBackend(t, 5)
	rt := NewRouter(prim.ts.URL, []string{r1.ts.URL}, RouterOptions{
		HealthInterval: time.Hour, Seed: 1,
	})
	defer rt.Stop()
	routeGet(t, rt, "/spg?u=0&v=1")

	rec := routeGet(t, rt, "/metrics")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}

	rec = routeGet(t, rt, "/metrics?format=prometheus")
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prometheus content type %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{"qbs_router_picks_total", "qbs_router_backend_healthy", "qbs_router_retries_total"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	for _, path := range []string{"/metrics", "/healthz"} {
		req := httptest.NewRequest("HEAD", path, nil)
		hrec := httptest.NewRecorder()
		rt.ServeHTTP(hrec, req)
		if hrec.Code != 200 || hrec.Body.Len() != 0 {
			t.Fatalf("HEAD %s: status %d body %q", path, hrec.Code, hrec.Body.String())
		}
	}
}
