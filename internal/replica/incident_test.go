package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qbs/internal/obs"
	"qbs/internal/workload"
)

// fetchJSON decodes base+path into out, failing on transport errors or
// non-200 answers.
func fetchJSON(t *testing.T, base, path string, out any) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// fetchEvents pulls a tier's /debug/logs page.
func fetchEvents(t *testing.T, base, query string) []obs.EventView {
	t.Helper()
	var page struct {
		Events []obs.EventView `json:"events"`
	}
	fetchJSON(t, base, "/debug/logs"+query, &page)
	return page.Events
}

// hasEvent reports whether evs contains (component, event), optionally
// restricted to a trace ID ("" matches any).
func hasEvent(evs []obs.EventView, component, event, traceID string) bool {
	for _, ev := range evs {
		if ev.Component == component && ev.Event == event &&
			(traceID == "" || ev.TraceID == traceID) {
			return true
		}
	}
	return false
}

// TestIncidentControlPlaneAcrossTiers is the control-plane acceptance
// path: a router + primary + WAL-shipped replica serve a Zipfian mixed
// workload, then the replica's replication feed is cut while the
// primary keeps writing. The diagnostics stack must tell the whole
// story end to end:
//
//   - the replica and the router journal error events that share the
//     failing request's trace ID (/debug/logs on both tiers),
//   - the fleet view flags the replica as stalled — epoch frozen while
//     the primary's advances — on /debug/fleet,
//   - the routed-read SLO fast-burns and the flight recorder
//     auto-captures a profile, retrievable by ID over HTTP,
//   - every tier's exposition stays valid and carries the new metric
//     families.
func TestIncidentControlPlaneAcrossTiers(t *testing.T) {
	fix := newPrimaryFixture(t, 1<<20, PrimaryOptions{})

	// The replica tails the primary through a stallable feed: flipping
	// the switch black-holes /replication/ (500s) while the primary's
	// own mux stays up — the shape of a partitioned replication link.
	primURL, err := url.Parse(fix.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(primURL)
	var stalled atomic.Bool
	feed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stalled.Load() && strings.HasPrefix(r.URL.Path, "/replication/") {
			http.Error(w, "injected link outage", http.StatusInternalServerError)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(feed.Close)

	// Per-tier journals so /debug/logs stays attributable even with all
	// three tiers in one process.
	repJ := obs.NewJournal(256, obs.Default)
	rep, err := Start(feed.URL, Options{PollInterval: 5 * time.Millisecond, Journal: repJ})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
	repTS := httptest.NewServer(rep.Handler())
	t.Cleanup(repTS.Close)

	rtJ := obs.NewJournal(256, obs.Default)
	rt := NewRouter(fix.ts.URL, []string{repTS.URL}, RouterOptions{
		// Only the synchronous startup sweep runs: the stalled replica
		// keeps its routing slot, so reads exercise the 503 → failover
		// path instead of being silently steered away.
		HealthInterval: time.Hour,
		Seed:           1,
		Journal:        rtJ,
		FleetInterval:  -1, // sweeps driven explicitly below
	})
	t.Cleanup(rt.Stop)
	rtTS := httptest.NewServer(rt)
	t.Cleanup(rtTS.Close)
	// Continuous profiling on: interval captures are far away, but the
	// 1s trigger poll watches the SLO and the error-spike window.
	rt.FlightRecorder().Start(time.Hour)

	// Healthy phase: Zipfian mixed operations through the router. Writes
	// forward to the primary; reads fan to the replica.
	client := rtTS.Client()
	do := func(req *http.Request) int {
		t.Helper()
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	for i, op := range workload.MixedOps(fix.g, 30, 0.4, 11) {
		var req *http.Request
		switch op.Kind {
		case workload.OpInsert:
			body := strings.NewReader(fmt.Sprintf(`{"u":%d,"v":%d}`, op.U, op.V))
			req, _ = http.NewRequest(http.MethodPost, rtTS.URL+"/edges", body)
			req.Header.Set("Content-Type", "application/json")
		case workload.OpDelete:
			req, _ = http.NewRequest(http.MethodDelete,
				fmt.Sprintf("%s/edges?u=%d&v=%d", rtTS.URL, op.U, op.V), nil)
		default:
			req, _ = http.NewRequest(http.MethodGet,
				fmt.Sprintf("%s/spg?u=%d&v=%d", rtTS.URL, op.U, op.V), nil)
		}
		if code := do(req); code != http.StatusOK {
			t.Fatalf("healthy op %d (kind %d): status %d", i, op.Kind, code)
		}
	}
	for _, p := range workload.ZipfPairs(fix.g.NumVertices(), 30, 1.2, 11) {
		req, _ := http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/spg?u=%d&v=%d", rtTS.URL, p.U, p.V), nil)
		if code := do(req); code != http.StatusOK {
			t.Fatalf("healthy zipf read %v: status %d", p, code)
		}
	}

	waitCatchUp := func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for rep.Epoch() < fix.d.Epoch() {
			if time.Now().After(deadline) {
				t.Fatalf("replica stuck at epoch %d, primary at %d", rep.Epoch(), fix.d.Epoch())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitCatchUp()

	// Baseline fleet sweep: everything reachable, nothing anomalous.
	rt.ScrapeFleetNow()
	if an := rt.FleetAnomalies(); len(an) != 0 {
		t.Fatalf("healthy fleet reports anomalies: %v", an)
	}

	// ---- Incident: cut the replication feed, keep the primary writing.
	stalled.Store(true)
	frozenAt := rep.Epoch()
	fix.mutate(t, 8, 21)
	if fix.d.Epoch() <= frozenAt {
		t.Fatalf("primary epoch did not advance past %d", frozenAt)
	}

	// The replica's tail loop must journal the link failure.
	deadline := time.Now().Add(5 * time.Second)
	for !hasEvent(fetchEvents(t, repTS.URL, "?min_level=error"), "replica", "tail_error", "") {
		if time.Now().After(deadline) {
			t.Fatal("replica journalled no tail_error after the feed was cut")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// (a) One read-your-writes request with an explicit trace ID: the
	// stalled replica 503s it (min_epoch unsatisfied), the router fails
	// over to the primary and answers 200. Both tiers must hold an
	// error event carrying that same trace ID.
	const traceID = "incident0123456789abcdef"
	req, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/spg?u=0&v=9&min_epoch=%d", rtTS.URL, fix.d.Epoch()), nil)
	req.Header.Set(obs.TraceHeader, traceID)
	if code := do(req); code != http.StatusOK {
		t.Fatalf("failover read: status %d", code)
	}
	repErrs := fetchEvents(t, repTS.URL, "?min_level=error")
	if !hasEvent(repErrs, "http", "request_error", traceID) {
		t.Fatalf("replica journal lacks http/request_error with trace %s: %+v", traceID, repErrs)
	}
	rtErrs := fetchEvents(t, rtTS.URL, "?min_level=error")
	if !hasEvent(rtErrs, "router", "primary_failover", traceID) {
		t.Fatalf("router journal lacks router/primary_failover with trace %s: %+v", traceID, rtErrs)
	}

	// (c, part 1) A burst of unanswerable reads: min_epoch beyond every
	// backend, so the router's own answer is 503 and the routed-read
	// SLO records bad events until the fast-burn alarm trips.
	farAhead := fix.d.Epoch() + 1000
	for _, p := range workload.ZipfPairs(fix.g.NumVertices(), 12, 1.2, 13) {
		req, _ := http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/spg?u=%d&v=%d&min_epoch=%d", rtTS.URL, p.U, p.V, farAhead), nil)
		if code := do(req); code != http.StatusServiceUnavailable {
			t.Fatalf("unanswerable read %v: status %d, want 503", p, code)
		}
	}
	if !rt.SLOs().FastBurn() {
		t.Fatal("routed-read SLO did not fast-burn after the 503 burst")
	}
	var sloPage struct {
		SLOs []obs.SLOView `json:"slos"`
	}
	fetchJSON(t, rtTS.URL, "/debug/slo", &sloPage)
	burning := false
	for _, v := range sloPage.SLOs {
		burning = burning || v.FastBurn
	}
	if !burning {
		t.Fatalf("/debug/slo shows no fast-burning objective: %+v", sloPage.SLOs)
	}

	// (b) Two more fleet sweeps with the primary still advancing: the
	// replica's epoch is frozen while the tip moves, which must raise
	// the stalled flag (fleetStallScrapes consecutive observations).
	fix.mutate(t, 4, 22)
	rt.ScrapeFleetNow()
	fix.mutate(t, 4, 23)
	rt.ScrapeFleetNow()
	anomalies := rt.FleetAnomalies()
	found := false
	for _, a := range anomalies[repTS.URL] {
		found = found || a == "stalled"
	}
	if !found {
		t.Fatalf("fleet did not flag the frozen replica as stalled: %v", anomalies)
	}
	var fleet struct {
		AnomalyCount int            `json:"anomaly_count"`
		Backends     []FleetBackend `json:"backends"`
	}
	fetchJSON(t, rtTS.URL, "/debug/fleet", &fleet)
	if fleet.AnomalyCount == 0 {
		t.Fatal("/debug/fleet reports zero anomalies mid-incident")
	}
	var repRow, primRow *FleetBackend
	for i := range fleet.Backends {
		switch fleet.Backends[i].Role {
		case "replica":
			repRow = &fleet.Backends[i]
		case "primary":
			primRow = &fleet.Backends[i]
		}
	}
	if repRow == nil || primRow == nil {
		t.Fatalf("/debug/fleet missing a tier: %+v", fleet.Backends)
	}
	if !repRow.Reachable {
		t.Fatal("stalled replica should still be reachable (its mux is up)")
	}
	stalledFlag := false
	for _, a := range repRow.Anomalies {
		stalledFlag = stalledFlag || a == "stalled"
	}
	if !stalledFlag {
		t.Fatalf("replica fleet row lacks the stalled anomaly: %+v", repRow)
	}
	if repRow.Epoch >= primRow.Epoch {
		t.Fatalf("replica epoch %d not behind primary %d in the fleet view",
			repRow.Epoch, primRow.Epoch)
	}

	// (c, part 2) The flight recorder's trigger poll (1s cadence) sees
	// the fast-burning SLO / error spike and auto-captures. The profile
	// must then be retrievable by ID over the router mux.
	deadline = time.Now().Add(8 * time.Second)
	var captured []obs.ProfileInfo
	for len(captured) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight recorder never auto-captured during the incident")
		}
		time.Sleep(50 * time.Millisecond)
		captured = rt.FlightRecorder().Profiles()
	}
	switch captured[0].Trigger {
	case "slo_fast_burn", "error_event_spike":
	default:
		t.Fatalf("capture attributed to %q, want an incident trigger", captured[0].Trigger)
	}
	var profPage struct {
		Profiles []obs.ProfileInfo `json:"profiles"`
	}
	fetchJSON(t, rtTS.URL, "/debug/profiles", &profPage)
	if len(profPage.Profiles) == 0 {
		t.Fatal("/debug/profiles lists nothing after an auto-capture")
	}
	p := profPage.Profiles[0]
	resp, err := http.Get(fmt.Sprintf("%s/debug/profiles/%d", rtTS.URL, p.ID))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch profile %d: status %d", p.ID, resp.StatusCode)
	}
	if kind := resp.Header.Get("X-Qbs-Profile-Kind"); kind != p.Kind {
		t.Fatalf("profile %d kind header %q, want %q", p.ID, kind, p.Kind)
	}
	if len(body) == 0 {
		t.Fatalf("profile %d has an empty body", p.ID)
	}

	// Every mux still renders a valid exposition carrying the new
	// families, and the fleet gauge mirrors the anomaly.
	primText := fetchProm(t, fix.ts.URL)
	repText := fetchProm(t, repTS.URL)
	rtText := fetchProm(t, rtTS.URL)
	for _, fam := range []string{"qbs_events_total", "qbs_slo_burn_rate"} {
		for name, text := range map[string]string{"primary": primText, "replica": repText, "router": rtText} {
			if !strings.Contains(text, fam) {
				t.Fatalf("%s exposition lacks %s", name, fam)
			}
		}
	}
	anomalous := fmt.Sprintf(`qbs_fleet_backend_anomalous{backend="%s",role="replica"}`, repTS.URL)
	if v := seriesValue(t, rtText, anomalous); v != 1 {
		t.Fatalf("fleet anomalous gauge = %v, want 1", v)
	}
	if v := seriesValue(t, rtText, "qbs_fleet_backend_up"); v != 1 {
		t.Fatal("fleet up gauge for the primary should be 1")
	}
}
